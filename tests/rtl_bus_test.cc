#include <gtest/gtest.h>

#include "src/riscv/isa.h"
#include "src/rtl/sim.h"
#include "src/soc/bus.h"

namespace parfait::soc {
namespace {

TEST(WireTrace, FirstDivergence) {
  rtl::WireTrace a(10);
  rtl::WireTrace b(10);
  EXPECT_EQ(rtl::FirstDivergence(a, b), -1);
  b[7].tx_valid = true;
  EXPECT_EQ(rtl::FirstDivergence(a, b), 7);
  b[7].tx_valid = false;
  b.push_back({});
  EXPECT_EQ(rtl::FirstDivergence(a, b), 10);  // Length mismatch at the shorter length.
}

TEST(WireTrace, FormatSample) {
  rtl::WireSample s;
  s.tx_valid = true;
  s.tx_data = 0xab;
  EXPECT_NE(rtl::FormatSample(s).find("0xab"), std::string::npos);
}

class BusTest : public testing::Test {
 protected:
  BusTest() : bus_(BusConfig{}) {}
  Bus bus_;
};

TEST_F(BusTest, RamReadWriteRoundTrip) {
  ASSERT_TRUE(bus_.Write(kRamBase + 16, 4, rtl::Word::Clean(0xdeadbeef)));
  rtl::Word w;
  ASSERT_TRUE(bus_.Read(kRamBase + 16, 4, &w));
  EXPECT_EQ(w.bits, 0xdeadbeefu);
  // Byte access into the same word.
  ASSERT_TRUE(bus_.Read(kRamBase + 17, 1, &w));
  EXPECT_EQ(w.bits, 0xbeu);
}

TEST_F(BusTest, RomIsReadOnly) {
  EXPECT_FALSE(bus_.Write(kRomBase, 4, rtl::Word::Clean(1)));
}

TEST_F(BusTest, UnmappedAddressFails) {
  rtl::Word w;
  EXPECT_FALSE(bus_.Read(0x60000000, 4, &w));
  EXPECT_FALSE(bus_.Write(0x60000000, 4, rtl::Word::Clean(1)));
}

TEST_F(BusTest, FramPersistsThroughDump) {
  ASSERT_TRUE(bus_.Write(kFramBase + 4, 4, rtl::Word::Clean(0x12345678)));
  Bytes dump = bus_.DumpFram();
  EXPECT_EQ(LoadLe32(dump.data() + 4), 0x12345678u);
}

TEST_F(BusTest, TaintPropagatesThroughMemoryWhenTracking) {
  bus_.set_taint_tracking(true);
  ASSERT_TRUE(bus_.Write(kRamBase, 4, rtl::Word::Tainted(0x11)));
  rtl::Word w;
  ASSERT_TRUE(bus_.Read(kRamBase, 4, &w));
  EXPECT_TRUE(w.AnyTaint());
  // Clean overwrite clears the taint.
  ASSERT_TRUE(bus_.Write(kRamBase, 4, rtl::Word::Clean(0x22)));
  ASSERT_TRUE(bus_.Read(kRamBase, 4, &w));
  EXPECT_FALSE(w.AnyTaint());
}

TEST_F(BusTest, TaintInvisibleWhenNotTracking) {
  ASSERT_TRUE(bus_.Write(kRamBase, 4, rtl::Word::Tainted(0x11)));
  rtl::Word w;
  ASSERT_TRUE(bus_.Read(kRamBase, 4, &w));
  EXPECT_FALSE(w.AnyTaint());
}

TEST_F(BusTest, FetchDecodesAndCachesRomInstructions) {
  Bytes rom(8);
  StoreLe32(rom.data(), riscv::Encode(riscv::Instr{riscv::Op::kAddi, 5, 0, 0, 42}));
  StoreLe32(rom.data() + 4, 0xffffffff);  // Undecodable.
  bus_.LoadRom(rom);
  uint32_t raw = 0;
  const riscv::Instr* i0 = bus_.Fetch(kRomBase, &raw);
  ASSERT_NE(i0, nullptr);
  EXPECT_EQ(i0->op, riscv::Op::kAddi);
  EXPECT_EQ(raw, riscv::Encode(*i0));
  EXPECT_EQ(bus_.Fetch(kRomBase + 4, nullptr), nullptr);
  // Second fetch hits the cache and yields the same decode.
  EXPECT_EQ(bus_.Fetch(kRomBase, nullptr), i0);
}

TEST_F(BusTest, MisalignedFetchFails) {
  EXPECT_EQ(bus_.Fetch(kRomBase + 2, nullptr), nullptr);
}

TEST_F(BusTest, UartLoopback) {
  // Host presents a byte; firmware-style MMIO reads it and echoes it back.
  rtl::WireInput in;
  in.rx_valid = true;
  in.rx_data = 0x5a;
  bus_.BeginCycle(in);
  rtl::Word status;
  ASSERT_TRUE(bus_.Read(kUartStatus, 4, &status));
  EXPECT_EQ(status.bits & 1u, 1u);  // rx byte ready.
  rtl::Word data;
  ASSERT_TRUE(bus_.Read(kUartRxData, 4, &data));
  EXPECT_EQ(data.bits, 0x5au);
  ASSERT_TRUE(bus_.Write(kUartTxData, 4, data));
  rtl::WireSample out = bus_.EndCycle();
  EXPECT_TRUE(out.tx_valid);
  EXPECT_EQ(out.tx_data, 0x5a);
}

TEST_F(BusTest, UartBackpressure) {
  // With host tx_ready low, the tx byte stays pending across cycles.
  rtl::WireInput stall;
  stall.tx_ready = false;
  bus_.BeginCycle(stall);
  ASSERT_TRUE(bus_.Write(kUartTxData, 4, rtl::Word::Clean(0x77)));
  rtl::WireSample s1 = bus_.EndCycle();
  EXPECT_TRUE(s1.tx_valid);
  bus_.BeginCycle(stall);
  rtl::WireSample s2 = bus_.EndCycle();
  EXPECT_TRUE(s2.tx_valid);  // Still pending.
  rtl::WireInput ready;
  bus_.BeginCycle(ready);
  rtl::WireSample s3 = bus_.EndCycle();
  EXPECT_TRUE(s3.tx_valid);  // Consumed this cycle...
  bus_.BeginCycle(ready);
  rtl::WireSample s4 = bus_.EndCycle();
  EXPECT_FALSE(s4.tx_valid);  // ...gone afterwards.
}

TEST_F(BusTest, UartRxFlowControl) {
  rtl::WireInput in;
  in.rx_valid = true;
  in.rx_data = 1;
  bus_.BeginCycle(in);
  rtl::WireSample s = bus_.EndCycle();
  EXPECT_FALSE(s.rx_ready);  // Buffer full until the CPU reads it.
  in.rx_data = 2;
  bus_.BeginCycle(in);  // Offered byte must be dropped, not overwrite.
  rtl::Word data;
  ASSERT_TRUE(bus_.Read(kUartRxData, 4, &data));
  EXPECT_EQ(data.bits, 1u);
  s = bus_.EndCycle();
  EXPECT_TRUE(s.rx_ready);
}

TEST_F(BusTest, SetFramTaintIsRangeScoped) {
  bus_.set_taint_tracking(true);
  bus_.SetFramTaint(8, 4, true);
  rtl::Word w;
  ASSERT_TRUE(bus_.Read(kFramBase + 8, 4, &w));
  EXPECT_TRUE(w.AnyTaint());
  ASSERT_TRUE(bus_.Read(kFramBase + 12, 4, &w));
  EXPECT_FALSE(w.AnyTaint());
}

}  // namespace
}  // namespace parfait::soc
