#include <gtest/gtest.h>

#include "src/crypto/p256.h"
#include "src/support/bytes.h"
#include "src/support/rng.h"

namespace parfait::crypto {
namespace {

Bn256 FromHexBn(const std::string& hex) {
  Bytes b = FromHex(hex);
  EXPECT_EQ(b.size(), 32u);
  return Bn256::FromBytes(std::span<const uint8_t, 32>(b.data(), 32));
}

Bn256 SmallScalar(uint32_t v) {
  Bn256 r = Bn256::Zero();
  r.limb[0] = v;
  return r;
}

Bn256 RandomScalar(Rng& rng) {
  const P256& curve = P256::Get();
  Bn256 r;
  for (auto& l : r.limb) {
    l = rng.Next32();
  }
  return curve.scalar().Reduce(r);
}

std::string AffineHex(const P256Point& p) {
  const P256& curve = P256::Get();
  Bn256 x;
  Bn256 y;
  uint32_t finite = curve.ToAffine(p, &x, &y);
  if (finite == 0) {
    return "infinity";
  }
  Bytes xb(32);
  Bytes yb(32);
  x.ToBytes(std::span<uint8_t, 32>(xb.data(), 32));
  y.ToBytes(std::span<uint8_t, 32>(yb.data(), 32));
  return ToHex(xb) + ":" + ToHex(yb);
}

TEST(P256, GeneratorIsOnCurve) {
  const P256& curve = P256::Get();
  Bn256 gx = FromHexBn("6b17d1f2e12c4247f8bce6e563a440f277037d812deb33a0f4a13945d898c296");
  Bn256 gy = FromHexBn("4fe342e2fe1a7f9b8ee7eb4a7c0f9e162bce33576b315ececbb6406837bf51f5");
  EXPECT_EQ(curve.IsOnCurve(gx, gy), 0xffffffffu);
}

TEST(P256, OffCurvePointRejected) {
  const P256& curve = P256::Get();
  Bn256 gx = FromHexBn("6b17d1f2e12c4247f8bce6e563a440f277037d812deb33a0f4a13945d898c296");
  Bn256 bad_y = FromHexBn("4fe342e2fe1a7f9b8ee7eb4a7c0f9e162bce33576b315ececbb6406837bf51f6");
  EXPECT_EQ(curve.IsOnCurve(gx, bad_y), 0u);
}

// Known x-coordinate of 2G (SEC reference value). Combined with the on-curve check
// below, this pins down 2G completely up to the sign of y.
TEST(P256, TwoGXCoordinate) {
  const P256& curve = P256::Get();
  P256Point p = curve.Double(curve.generator());
  Bn256 x;
  Bn256 y;
  ASSERT_NE(curve.ToAffine(p, &x, &y), 0u);
  Bytes xb(32);
  x.ToBytes(std::span<uint8_t, 32>(xb.data(), 32));
  EXPECT_EQ(ToHex(xb), "7cf27b188d034f7e8a52380304b51ac3c08969e277f21b35a60b48fc47669978");
}

TEST(P256, DoubleMatchesAdd) {
  const P256& curve = P256::Get();
  P256Point d = curve.Double(curve.generator());
  P256Point a = curve.Add(curve.generator(), curve.generator());
  EXPECT_EQ(AffineHex(d), AffineHex(a));
}

TEST(P256, TwoGOnCurve) {
  const P256& curve = P256::Get();
  P256Point p = curve.Double(curve.generator());
  Bn256 x;
  Bn256 y;
  ASSERT_NE(curve.ToAffine(p, &x, &y), 0u);
  EXPECT_EQ(curve.IsOnCurve(x, y), 0xffffffffu);
}

TEST(P256, ScalarMulSmallValuesMatchRepeatedAdd) {
  const P256& curve = P256::Get();
  P256Point acc = curve.Infinity();
  for (uint32_t k = 1; k <= 8; k++) {
    acc = curve.Add(acc, curve.generator());
    P256Point via_mul = curve.ScalarBaseMul(SmallScalar(k));
    EXPECT_EQ(AffineHex(via_mul), AffineHex(acc)) << "k=" << k;
  }
}

TEST(P256, ScalarMulZeroIsInfinity) {
  const P256& curve = P256::Get();
  P256Point p = curve.ScalarBaseMul(Bn256::Zero());
  Bn256 x;
  Bn256 y;
  EXPECT_EQ(curve.ToAffine(p, &x, &y), 0u);
}

TEST(P256, OrderTimesGeneratorIsInfinity) {
  const P256& curve = P256::Get();
  P256Point p = curve.ScalarBaseMul(curve.order());
  Bn256 x;
  Bn256 y;
  EXPECT_EQ(curve.ToAffine(p, &x, &y), 0u);
}

TEST(P256, AddInfinityIsIdentity) {
  const P256& curve = P256::Get();
  P256Point inf = curve.Infinity();
  P256Point g = curve.generator();
  EXPECT_EQ(AffineHex(curve.Add(g, inf)), AffineHex(g));
  EXPECT_EQ(AffineHex(curve.Add(inf, g)), AffineHex(g));
  EXPECT_EQ(AffineHex(curve.Add(inf, inf)), "infinity");
}

TEST(P256, AddOppositePointsIsInfinity) {
  const P256& curve = P256::Get();
  P256Point g = curve.generator();
  P256Point neg = g;
  neg.y = curve.field().Sub(Bn256::Zero(), g.y);
  EXPECT_EQ(AffineHex(curve.Add(g, neg)), "infinity");
}

TEST(P256, ScalarMulCommutesThroughComposition) {
  // (k1 * (k2 * G)) == (k2 * (k1 * G)) == (k1*k2 mod n) * G — a strong randomized
  // correctness check of the whole group-law implementation.
  const P256& curve = P256::Get();
  const Monty& sc = curve.scalar();
  Rng rng(42);
  for (int trial = 0; trial < 3; trial++) {
    Bn256 k1 = RandomScalar(rng);
    Bn256 k2 = RandomScalar(rng);
    P256Point a = curve.ScalarMul(k1, curve.ScalarBaseMul(k2));
    P256Point b = curve.ScalarMul(k2, curve.ScalarBaseMul(k1));
    Bn256 prod = sc.FromMont(sc.Mul(sc.ToMont(k1), sc.ToMont(k2)));
    P256Point c = curve.ScalarBaseMul(prod);
    EXPECT_EQ(AffineHex(a), AffineHex(b)) << "trial " << trial;
    EXPECT_EQ(AffineHex(a), AffineHex(c)) << "trial " << trial;
  }
}

TEST(P256, ScalarMulDistributesOverAdd) {
  // (k1 + k2) * G == k1*G + k2*G.
  const P256& curve = P256::Get();
  const Monty& sc = curve.scalar();
  Rng rng(43);
  Bn256 k1 = RandomScalar(rng);
  Bn256 k2 = RandomScalar(rng);
  Bn256 sum = sc.Add(k1, k2);
  P256Point lhs = curve.ScalarBaseMul(sum);
  P256Point rhs = curve.Add(curve.ScalarBaseMul(k1), curve.ScalarBaseMul(k2));
  EXPECT_EQ(AffineHex(lhs), AffineHex(rhs));
}

TEST(P256, RandomMultiplesAreOnCurve) {
  const P256& curve = P256::Get();
  Rng rng(44);
  for (int trial = 0; trial < 3; trial++) {
    Bn256 k = RandomScalar(rng);
    P256Point p = curve.ScalarBaseMul(k);
    Bn256 x;
    Bn256 y;
    ASSERT_NE(curve.ToAffine(p, &x, &y), 0u);
    EXPECT_EQ(curve.IsOnCurve(x, y), 0xffffffffu);
  }
}

TEST(P256, AffineRoundTrip) {
  const P256& curve = P256::Get();
  Rng rng(45);
  Bn256 k = RandomScalar(rng);
  P256Point p = curve.ScalarBaseMul(k);
  Bn256 x;
  Bn256 y;
  ASSERT_NE(curve.ToAffine(p, &x, &y), 0u);
  P256Point q = curve.FromAffine(x, y);
  EXPECT_EQ(AffineHex(p), AffineHex(q));
}

}  // namespace
}  // namespace parfait::crypto
