// Tests for the multi-process shard layer (src/support/shard.h): spec parsing,
// round-robin ownership, merge validation, cross-shard lowest-failure settlement,
// and the end-to-end guarantee the layer exists for — a table4-mini hardware
// verification suite run as 3 shards, serialized through the shard-file JSON and
// merged, is byte-identical to the unsharded run's report, telemetry counters and
// all.
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "src/knox2/cosim.h"
#include "src/knox2/leakage.h"
#include "src/knox2/units.h"
#include "src/support/json.h"
#include "src/support/rng.h"
#include "src/support/shard.h"

namespace parfait {
namespace {

using shard::MergeShardRecords;
using shard::MergedReportJson;
using shard::ParseShardFile;
using shard::ParseShardSpec;
using shard::RowOutcome;
using shard::ShardFile;
using shard::ShardFileJson;
using shard::ShardSpec;
using shard::UnitRecord;

// ---------------------------------------------------------------------------
// Spec parsing and ownership.

TEST(ShardSpec, ParsesValidSpecs) {
  std::string error;
  auto spec = ParseShardSpec("1/1", &error);
  ASSERT_TRUE(spec.has_value());
  EXPECT_EQ(spec->index, 1);
  EXPECT_EQ(spec->count, 1);
  EXPECT_FALSE(spec->active());

  spec = ParseShardSpec("2/3", &error);
  ASSERT_TRUE(spec.has_value());
  EXPECT_EQ(spec->index, 2);
  EXPECT_EQ(spec->count, 3);
  EXPECT_TRUE(spec->active());
}

TEST(ShardSpec, RejectsMalformedSpecs) {
  std::string error;
  for (const char* bad : {"", "3", "0/3", "4/3", "-1/3", "1/0", "1/2x", "a/b", "1/"}) {
    EXPECT_FALSE(ParseShardSpec(bad, &error).has_value()) << bad;
    EXPECT_NE(error.find("K/M"), std::string::npos);
  }
}

TEST(ShardSpec, RoundRobinOwnershipPartitionsOrdinals) {
  for (uint64_t ordinal = 0; ordinal < 20; ordinal++) {
    int owners = 0;
    for (int k = 1; k <= 3; k++) {
      if ((ShardSpec{k, 3}).Owns(ordinal)) {
        owners++;
      }
    }
    EXPECT_EQ(owners, 1) << "ordinal " << ordinal;
  }
  // A 1/1 spec owns everything.
  EXPECT_TRUE((ShardSpec{1, 1}).Owns(0));
  EXPECT_TRUE((ShardSpec{1, 1}).Owns(17));
}

// ---------------------------------------------------------------------------
// Merge validation and settlement over synthetic records.

UnitRecord MakeRecord(uint64_t ordinal, uint32_t row, bool ok,
                      const std::string& divergence = "") {
  UnitRecord record;
  record.ordinal = ordinal;
  record.row = row;
  record.row_label = "row" + std::to_string(row);
  record.kind = "cosim";
  record.label = "unit " + std::to_string(ordinal);
  record.ok = ok;
  record.divergence = divergence;
  record.cycles = 100 + ordinal;
  record.telemetry.AddCounter("t/units", 1);
  record.telemetry.RecordValue("t/cycles_per_unit", 100 + ordinal);
  return record;
}

std::vector<ShardFile> ShardRecords(const std::vector<UnitRecord>& records, int count) {
  std::vector<ShardFile> shards(count);
  for (int k = 1; k <= count; k++) {
    shards[k - 1].bench = "synthetic";
    shards[k - 1].spec = ShardSpec{k, count};
    for (const UnitRecord& record : records) {
      if (shards[k - 1].spec.Owns(record.ordinal)) {
        shards[k - 1].records.push_back(record);
      }
    }
  }
  return shards;
}

TEST(ShardMerge, LowestFailureSettlesAcrossShardBoundaries) {
  // Failures at ordinals 4 (owned by shard 2/3) and 2 (owned by shard 3/3): the
  // fold must report ordinal 2's divergence no matter which shard carried it.
  std::vector<UnitRecord> records;
  for (uint64_t i = 0; i < 6; i++) {
    bool ok = i != 2 && i != 4;
    records.push_back(MakeRecord(i, 0, ok, ok ? "" : "fail@" + std::to_string(i)));
  }
  std::vector<ShardFile> shards = ShardRecords(records, 3);
  // Present the shards out of order: merge sorts by ordinal before folding.
  std::swap(shards[0], shards[2]);

  std::vector<UnitRecord> merged;
  std::string error;
  ASSERT_TRUE(MergeShardRecords(shards, &merged, &error)) << error;
  ASSERT_EQ(merged.size(), 6u);
  std::vector<RowOutcome> rows = shard::FoldRows(merged);
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_FALSE(rows[0].ok);
  EXPECT_EQ(rows[0].divergence, "fail@2");
  EXPECT_EQ(rows[0].units, 6u);
  EXPECT_EQ(rows[0].telemetry.CounterValue("t/units"), 6u);
}

TEST(ShardMerge, RejectsIncompleteOrInconsistentShardSets) {
  std::vector<UnitRecord> records;
  for (uint64_t i = 0; i < 6; i++) {
    records.push_back(MakeRecord(i, 0, true));
  }
  std::string error;
  std::vector<UnitRecord> merged;

  // Missing shard.
  std::vector<ShardFile> shards = ShardRecords(records, 3);
  shards.pop_back();
  EXPECT_FALSE(MergeShardRecords(shards, &merged, &error));
  EXPECT_NE(error.find("missing shard"), std::string::npos);

  // Duplicate shard.
  shards = ShardRecords(records, 3);
  shards[1] = shards[0];
  EXPECT_FALSE(MergeShardRecords(shards, &merged, &error));
  EXPECT_NE(error.find("twice"), std::string::npos);

  // A record the shard does not own.
  shards = ShardRecords(records, 3);
  shards[0].records.push_back(MakeRecord(1, 0, true));
  EXPECT_FALSE(MergeShardRecords(shards, &merged, &error));
  EXPECT_NE(error.find("foreign"), std::string::npos);

  // Mixed benches.
  shards = ShardRecords(records, 3);
  shards[2].bench = "other";
  EXPECT_FALSE(MergeShardRecords(shards, &merged, &error));
  EXPECT_NE(error.find("mix"), std::string::npos);

  // A missing ordinal (dropped record) fails the exact-coverage check.
  shards = ShardRecords(records, 3);
  shards[0].records.pop_back();
  EXPECT_FALSE(MergeShardRecords(shards, &merged, &error));
  EXPECT_NE(error.find("exactly once"), std::string::npos);
}

// ---------------------------------------------------------------------------
// End to end: a table4-mini suite (hasher on both CPUs, sliced at 1000
// instructions) sharded 3 ways through the JSON round trip merges to a report
// byte-identical to the unsharded fold.

void RunMiniSuite(std::vector<UnitRecord>* records) {
  uint64_t ordinal = 0;
  uint32_t row_index = 0;
  for (soc::CpuKind cpu : {soc::CpuKind::kIbexLite, soc::CpuKind::kPicoLite}) {
    const hsm::App& app = hsm::HasherApp();
    hsm::HsmBuildOptions build;
    build.cpu = cpu;
    hsm::HsmSystem system(app, build);
    std::string label = std::string(soc::CpuKindName(cpu)) + "/" + app.name();

    Rng rng(SplitSeed(7, row_index));
    Bytes state = rng.RandomBytes(app.state_size());
    Bytes cmd(app.command_size(), 0);
    cmd[0] = 2;  // Hash: long enough to slice.
    for (size_t i = 1; i < cmd.size() && i <= 32; i++) {
      cmd[i] = rng.Byte();
    }
    Bytes variant = knox2::MakeSecretVariant(app, state, rng);

    auto plan = knox2::PlanHandleUnits(system, state, cmd, 1000);
    ASSERT_TRUE(plan.ok) << plan.error;
    ASSERT_GT(plan.num_units(), 3u);
    auto plan_b = knox2::PlanHandleUnits(system, variant, cmd, 1000);
    ASSERT_TRUE(plan_b.ok) << plan_b.error;
    ASSERT_TRUE(knox2::PlansAligned(plan, plan_b));

    for (size_t k = 0; k < plan.num_units(); k++) {
      auto r = knox2::RunCosimUnit(system, state, cmd, plan, k, knox2::CosimOptions{});
      UnitRecord record;
      record.ordinal = ordinal++;
      record.row = row_index;
      record.row_label = label;
      record.kind = "cosim";
      record.label = "unit " + std::to_string(k);
      record.ok = r.ok;
      record.divergence = r.divergence;
      record.cycles = r.stats.cycles;
      record.telemetry = knox2::CosimUnitTelemetry(r, k);
      records->push_back(std::move(record));
    }
    for (size_t k = 0; k < plan.num_units(); k++) {
      auto r = knox2::RunSelfCompUnit(system, state, variant, cmd, plan, plan_b, k,
                                      knox2::SelfCompOptions{}.max_cycles_per_command);
      UnitRecord record;
      record.ordinal = ordinal++;
      record.row = row_index;
      record.row_label = label;
      record.kind = "selfcomp";
      record.label = "unit " + std::to_string(k);
      record.ok = r.ok;
      record.divergence = r.divergence;
      record.cycles = 2 * r.cycles;
      record.telemetry = knox2::SelfCompUnitTelemetry(r, k);
      records->push_back(std::move(record));
    }
    row_index++;
  }
}

TEST(ShardEndToEnd, ThreeShardMergeIsByteIdenticalToUnsharded) {
  std::vector<UnitRecord> records;
  RunMiniSuite(&records);
  ASSERT_GT(records.size(), 12u);

  // Unsharded reference: fold everything directly.
  std::vector<RowOutcome> reference_rows = shard::FoldRows(records);
  ASSERT_EQ(reference_rows.size(), 2u);
  EXPECT_TRUE(reference_rows[0].ok) << reference_rows[0].divergence;
  EXPECT_TRUE(reference_rows[1].ok) << reference_rows[1].divergence;
  std::string reference = MergedReportJson("table4_mini", reference_rows);

  // Sharded: write each shard's records through the JSON serialization, parse them
  // back (the cross-process path), merge, fold, and re-render.
  std::vector<ShardFile> shards;
  for (int k = 1; k <= 3; k++) {
    ShardSpec spec{k, 3};
    std::vector<UnitRecord> owned;
    for (const UnitRecord& record : records) {
      if (spec.Owns(record.ordinal)) {
        owned.push_back(record);
      }
    }
    std::string file_json =
        ShardFileJson("table4_mini", spec, "{\"source\":\"test\"}", owned);
    std::string error;
    auto parsed = json::Parse(file_json, &error);
    ASSERT_TRUE(parsed.has_value()) << error;
    ShardFile shard;
    ASSERT_TRUE(ParseShardFile(*parsed, &shard, &error)) << error;
    EXPECT_EQ(shard.bench, "table4_mini");
    EXPECT_EQ(shard.records.size(), owned.size());
    shards.push_back(std::move(shard));
  }
  std::vector<UnitRecord> merged;
  std::string error;
  ASSERT_TRUE(MergeShardRecords(shards, &merged, &error)) << error;
  ASSERT_EQ(merged.size(), records.size());
  std::string combined = MergedReportJson("table4_mini", shard::FoldRows(merged));

  // Byte identity — rows, cycle counts, telemetry counters, and histogram
  // summaries all survived the shard round trip exactly.
  EXPECT_EQ(reference, combined);
}

}  // namespace
}  // namespace parfait
