// Theory tests: the IPR definition, the three proof strategies, and transitivity,
// validated on toy machines with known leaky and non-leaky variants. These play the
// role of the paper's once-and-for-all Coq proofs: the implications are exercised
// executably, and deliberately broken links must be caught.
#include <gtest/gtest.h>

#include "src/ipr/equivalence.h"
#include "src/ipr/ipr.h"
#include "src/ipr/lockstep.h"
#include "src/ipr/state_machine.h"
#include "src/ipr/transitivity.h"
#include "src/support/bytes.h"

namespace parfait::ipr {
namespace {

// ---- Toy specification: a secret-holding counter HSM. ----
// Commands: SetSecret(v), Bump, Read. Read returns counter; secret never leaves.
struct ToySpecState {
  uint8_t secret = 0;
  uint8_t counter = 0;
};
struct ToyCmd {
  enum class Kind : uint8_t { kSetSecret, kBump, kRead } kind;
  uint8_t arg = 0;
};
using ToyResp = uint8_t;  // Read -> counter; others -> 0.

StateMachine<ToySpecState, ToyCmd, ToyResp> ToySpec() {
  return {ToySpecState{},
          [](const ToySpecState& s, const ToyCmd& c) -> std::pair<ToySpecState, ToyResp> {
            ToySpecState next = s;
            switch (c.kind) {
              case ToyCmd::Kind::kSetSecret:
                next.secret = c.arg;
                return {next, 0};
              case ToyCmd::Kind::kBump:
                next.counter = static_cast<uint8_t>(next.counter + next.secret);
                return {next, 0};
              case ToyCmd::Kind::kRead:
                return {next, s.counter};
            }
            return {next, 0};
          }};
}

// ---- Byte-level implementations of the toy spec. ----
// State: [secret, counter]. Command: [tag, arg]. Response: [tag_echo, value].
Bytes ToyEncodeState(const ToySpecState& s) { return Bytes{s.secret, s.counter}; }

Bytes ToyEncodeCommand(const ToyCmd& c) {
  return Bytes{static_cast<uint8_t>(static_cast<int>(c.kind) + 1), c.arg};
}

std::optional<ToyCmd> ToyDecodeCommand(const Bytes& b) {
  if (b.size() != 2 || b[0] < 1 || b[0] > 3) {
    return std::nullopt;
  }
  return ToyCmd{static_cast<ToyCmd::Kind>(b[0] - 1), b[1]};
}

Bytes ToyEncodeResponse(const std::optional<ToyResp>& r) {
  if (!r.has_value()) {
    return Bytes{0, 0};
  }
  return Bytes{1, *r};
}

ToyResp ToyDecodeResponse(const Bytes& b) { return b.size() == 2 ? b[1] : 0; }

enum class ImplFlavor {
  kFaithful,
  kLeakSecretInPadding,   // Response byte 0 leaks the secret's parity.
  kCorruptOnJunk,         // Undecodable commands bump the counter (figure 6b violation).
};

StateMachine<Bytes, Bytes, Bytes> ToyImpl(ImplFlavor flavor) {
  return {Bytes{0, 0}, [flavor](const Bytes& s, const Bytes& c) -> std::pair<Bytes, Bytes> {
            Bytes next = s;
            auto decoded = ToyDecodeCommand(c);
            if (!decoded.has_value()) {
              if (flavor == ImplFlavor::kCorruptOnJunk) {
                next[1] = static_cast<uint8_t>(next[1] + 1);
              }
              return {next, Bytes{0, 0}};
            }
            uint8_t out = 0;
            switch (decoded->kind) {
              case ToyCmd::Kind::kSetSecret:
                next[0] = decoded->arg;
                break;
              case ToyCmd::Kind::kBump:
                next[1] = static_cast<uint8_t>(next[1] + next[0]);
                break;
              case ToyCmd::Kind::kRead:
                out = next[1];
                break;
            }
            Bytes resp{1, out};
            if (flavor == ImplFlavor::kLeakSecretInPadding) {
              resp[0] = static_cast<uint8_t>(1 | ((next[0] & 1) << 4));
            }
            return {next, resp};
          }};
}

LockstepCodecs<ToySpecState, ToyCmd, ToyResp> ToyCodecs() {
  return {ToyEncodeCommand, ToyDecodeResponse, ToyDecodeCommand, ToyEncodeResponse,
          ToyEncodeState};
}

ToyCmd GenToyCmd(Rng& rng) {
  ToyCmd c;
  c.kind = static_cast<ToyCmd::Kind>(rng.Below(3));
  c.arg = rng.Byte();
  return c;
}

ToySpecState GenToyState(Rng& rng) { return ToySpecState{rng.Byte(), rng.Byte()}; }

Bytes GenJunk(Rng& rng) {
  Bytes b{rng.Byte(), rng.Byte()};
  if (b[0] >= 1 && b[0] <= 3) {
    b[0] = 0;  // Force undecodable.
  }
  return b;
}

std::string ShowCmd(const ToyCmd& c) {
  return std::to_string(static_cast<int>(c.kind)) + ":" + std::to_string(c.arg);
}

std::string ShowResp(const ToyResp& r) { return std::to_string(r); }
std::string ShowBytes(const Bytes& b) { return ToHex(b); }

// ---- Lockstep strategy ----

TEST(Lockstep, FaithfulImplPasses) {
  auto result = CheckLockstep<ToySpecState, ToyCmd, ToyResp>(
      ToyImpl(ImplFlavor::kFaithful), ToySpec(), ToyCodecs(), GenToyState, GenToyCmd, GenJunk,
      ShowCmd);
  EXPECT_TRUE(result.ok) << result.failure;
}

TEST(Lockstep, PaddingLeakIsCaught) {
  auto result = CheckLockstep<ToySpecState, ToyCmd, ToyResp>(
      ToyImpl(ImplFlavor::kLeakSecretInPadding), ToySpec(), ToyCodecs(), GenToyState,
      GenToyCmd, GenJunk, ShowCmd);
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.failure.find("responses diverge"), std::string::npos);
}

TEST(Lockstep, JunkCorruptionIsCaught) {
  auto result = CheckLockstep<ToySpecState, ToyCmd, ToyResp>(
      ToyImpl(ImplFlavor::kCorruptOnJunk), ToySpec(), ToyCodecs(), GenToyState, GenToyCmd,
      GenJunk, ShowCmd);
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.failure.find("figure 6b"), std::string::npos);
}

// ---- Lockstep implies IPR: run the full IPR checker with the implied witnesses. ----

TEST(Ipr, LockstepWitnessesSatisfyIpr) {
  auto codecs = ToyCodecs();
  auto result = CheckIpr<Bytes, ToySpecState, ToyCmd, ToyResp, Bytes, Bytes>(
      ToyImpl(ImplFlavor::kFaithful), ToySpec(), BuildLockstepDriver(codecs),
      BuildLockstepEmulator(codecs), GenToyCmd,
      [](Rng& rng) {
        Bytes b{rng.Byte(), rng.Byte()};
        return b;
      },
      ShowResp, ShowBytes);
  EXPECT_TRUE(result.ok) << result.counterexample;
}

TEST(Ipr, LeakyImplFailsIpr) {
  auto codecs = ToyCodecs();
  auto result = CheckIpr<Bytes, ToySpecState, ToyCmd, ToyResp, Bytes, Bytes>(
      ToyImpl(ImplFlavor::kLeakSecretInPadding), ToySpec(), BuildLockstepDriver(codecs),
      BuildLockstepEmulator(codecs), GenToyCmd,
      [](Rng& rng) {
        Bytes b{rng.Byte(), rng.Byte()};
        return b;
      },
      ShowResp, ShowBytes);
  EXPECT_FALSE(result.ok);
}

// ---- Equivalence strategy ----

TEST(Equivalence, SameMachinePasses) {
  auto result = CheckObservationalEquivalence<Bytes, Bytes, Bytes, Bytes>(
      ToyImpl(ImplFlavor::kFaithful), ToyImpl(ImplFlavor::kFaithful),
      [](Rng& rng) {
        Bytes b{rng.Byte(), rng.Byte()};
        return b;
      },
      ShowBytes);
  EXPECT_TRUE(result.ok) << result.counterexample;
}

TEST(Equivalence, DifferentMachinesFail) {
  // Exposing the padding leak needs a decodable set-secret(odd) followed by another
  // decodable command within one trial — rare for uniform 2-byte commands (~1.6% per
  // 16-op trial), so give the checker enough trials that detection is not seed luck.
  EquivalenceCheckOptions options;
  options.trials = 2048;
  auto result = CheckObservationalEquivalence<Bytes, Bytes, Bytes, Bytes>(
      ToyImpl(ImplFlavor::kFaithful), ToyImpl(ImplFlavor::kLeakSecretInPadding),
      [](Rng& rng) {
        Bytes b{rng.Byte(), rng.Byte()};
        return b;
      },
      ShowBytes, options);
  EXPECT_FALSE(result.ok);
}

TEST(Equivalence, IdentityWitnessesSatisfyIpr) {
  auto result = CheckIpr<Bytes, Bytes, Bytes, Bytes, Bytes, Bytes>(
      ToyImpl(ImplFlavor::kFaithful), ToyImpl(ImplFlavor::kFaithful),
      IdentityDriver<Bytes, Bytes>(), IdentityEmulator<Bytes, Bytes>(),
      [](Rng& rng) {
        Bytes b{rng.Byte(), rng.Byte()};
        return b;
      },
      [](Rng& rng) {
        Bytes b{rng.Byte(), rng.Byte()};
        return b;
      },
      ShowBytes, ShowBytes);
  EXPECT_TRUE(result.ok) << result.counterexample;
}

// ---- Transitivity: a three-level tower (typed spec / byte impl / framed wire). ----

// Level 3 ("wire"): like the byte impl but every command/response is framed with a
// length prefix, and one mid-level op is one low-level op.
StateMachine<Bytes, Bytes, Bytes> WireImpl(ImplFlavor flavor) {
  auto inner = ToyImpl(flavor);
  return {inner.init, [inner](const Bytes& s, const Bytes& framed) -> std::pair<Bytes, Bytes> {
            if (framed.size() < 1 || framed[0] != framed.size() - 1) {
              return {s, Bytes{0}};  // Malformed frame: canonical error, state kept.
            }
            Bytes unframed(framed.begin() + 1, framed.end());
            auto [next, resp] = inner.step(s, unframed);
            Bytes out;
            out.push_back(static_cast<uint8_t>(resp.size()));
            out.insert(out.end(), resp.begin(), resp.end());
            return {next, out};
          }};
}

Driver<Bytes, Bytes, Bytes, Bytes> FramingDriver() {
  return [](const Bytes& command, const std::function<Bytes(const Bytes&)>& lowop) {
    Bytes framed;
    framed.push_back(static_cast<uint8_t>(command.size()));
    framed.insert(framed.end(), command.begin(), command.end());
    Bytes out = lowop(framed);
    if (out.size() < 1 || out[0] != out.size() - 1) {
      return Bytes{};
    }
    return Bytes(out.begin() + 1, out.end());
  };
}

EmulatorFactory<Bytes, Bytes, Bytes, Bytes> FramingEmulator() {
  class Framing final : public Emulator<Bytes, Bytes, Bytes, Bytes> {
   public:
    Bytes OnCommand(const Bytes& framed,
                    const std::function<Bytes(const Bytes&)>& spec) override {
      if (framed.size() < 1 || framed[0] != framed.size() - 1) {
        return Bytes{0};
      }
      Bytes resp = spec(Bytes(framed.begin() + 1, framed.end()));
      Bytes out;
      out.push_back(static_cast<uint8_t>(resp.size()));
      out.insert(out.end(), resp.begin(), resp.end());
      return out;
    }
  };
  return []() { return std::make_unique<Framing>(); };
}

TEST(Transitivity, ComposedTowerSatisfiesIpr) {
  // spec (typed) ≈ byte impl ≈ framed wire impl, composed end-to-end.
  auto codecs = ToyCodecs();
  auto driver = ComposeDrivers<ToyCmd, ToyResp, Bytes, Bytes, Bytes, Bytes>(
      BuildLockstepDriver(codecs), FramingDriver());
  auto emulator = ComposeEmulators<Bytes, Bytes, Bytes, Bytes, ToyCmd, ToyResp>(
      FramingEmulator(), BuildLockstepEmulator(codecs));
  auto result = CheckIpr<Bytes, ToySpecState, ToyCmd, ToyResp, Bytes, Bytes>(
      WireImpl(ImplFlavor::kFaithful), ToySpec(), driver, emulator, GenToyCmd,
      [](Rng& rng) {
        // Adversarial wire input: mostly well-framed, sometimes garbage.
        Bytes b;
        size_t n = rng.Below(4);
        b.push_back(rng.Bool() ? static_cast<uint8_t>(n) : rng.Byte());
        for (size_t i = 0; i < n; i++) {
          b.push_back(rng.Byte());
        }
        return b;
      },
      ShowResp, ShowBytes);
  EXPECT_TRUE(result.ok) << result.counterexample;
}

TEST(Transitivity, BrokenBottomLinkFailsComposedIpr) {
  auto codecs = ToyCodecs();
  auto driver = ComposeDrivers<ToyCmd, ToyResp, Bytes, Bytes, Bytes, Bytes>(
      BuildLockstepDriver(codecs), FramingDriver());
  auto emulator = ComposeEmulators<Bytes, Bytes, Bytes, Bytes, ToyCmd, ToyResp>(
      FramingEmulator(), BuildLockstepEmulator(codecs));
  auto result = CheckIpr<Bytes, ToySpecState, ToyCmd, ToyResp, Bytes, Bytes>(
      WireImpl(ImplFlavor::kLeakSecretInPadding), ToySpec(), driver, emulator, GenToyCmd,
      [](Rng& rng) {
        Bytes b{2, rng.Byte(), rng.Byte()};
        return b;
      },
      ShowResp, ShowBytes);
  EXPECT_FALSE(result.ok);
}

}  // namespace
}  // namespace parfait::ipr
