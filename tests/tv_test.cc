// Tests for the translation validator: the clean verdict over both stock firmware
// apps, witness serialization, the seeded-miscompilation harness (each mutant class
// must be rejected with a provenance chain naming the originating source statement),
// and the determinism contract (bit-identical output run-to-run and across thread
// counts).
#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "src/analysis/tv/tv.h"
#include "src/hsm/app.h"
#include "src/hsm/hsm_system.h"
#include "src/minicc/codegen.h"
#include "src/minicc/parser.h"
#include "src/riscv/witness.h"

namespace parfait::analysis {
namespace {

using hsm::HsmBuildOptions;
using hsm::HsmSystem;
using minicc::Mutation;
using minicc::MutationKind;

TvConfig QuietConfig() {
  TvConfig config;
  config.emit_evidence = false;
  return config;
}

// Full deterministic rendering of a report, used to compare runs byte-for-byte.
std::string Render(const TvReport& report) {
  std::ostringstream out;
  out << "ok=" << report.ok << " error=" << report.error << "\n";
  for (const TvFunctionResult& fr : report.functions) {
    out << fr.name << " validated=" << fr.validated << " steps=" << fr.stats.steps
        << " terms=" << fr.stats.terms << " stmts=" << fr.stats.stmts
        << " sb=" << fr.stats.secret_branches << " sa=" << fr.stats.secret_addresses
        << "\n";
    for (const TvFinding& f : fr.findings) {
      out << "  " << TvFindingKindName(f.kind) << " pc=" << f.pc << " line=" << f.line
          << " " << f.detail << "\n";
      for (const std::string& hop : f.provenance) {
        out << "    " << hop << "\n";
      }
    }
  }
  out << report.telemetry.ToJson() << "\n";
  return out.str();
}

void ExpectClean(const TvReport& report) {
  ASSERT_TRUE(report.ok) << report.error;
  EXPECT_TRUE(report.Clean());
  EXPECT_FALSE(report.functions.empty());
  for (const TvFunctionResult& fr : report.functions) {
    EXPECT_TRUE(fr.validated) << fr.name;
    EXPECT_TRUE(fr.findings.empty()) << fr.name << ": " << fr.findings[0].detail;
  }
}

TEST(TvTest, HasherValidatesClean) {
  HsmSystem system(hsm::HasherApp(), HsmBuildOptions{});
  TvReport report = ValidateSystem(system, QuietConfig());
  ExpectClean(report);
  EXPECT_EQ(report.telemetry.CounterValue("tv/functions"),
            report.telemetry.CounterValue("tv/validated"));
  // boot.s is hand assembly: present in the CFG, absent from the witness.
  EXPECT_GE(report.telemetry.CounterValue("tv/unwitnessed_functions"), 1u);
}

TEST(TvTest, EcdsaValidatesClean) {
  HsmSystem system(hsm::EcdsaApp(), HsmBuildOptions{});
  TvReport report = ValidateSystem(system, QuietConfig());
  ExpectClean(report);
  EXPECT_GT(report.telemetry.CounterValue("tv/stmts"), 500u);
}

// The tentpole: the optimizing generator's output validates clean through the
// relaxed simulation relation, with promotions and transformer entries actually
// exercised (a vacuous pass with zero promotions would not test anything).
TEST(TvTest, HasherValidatesCleanAtO2) {
  HsmBuildOptions build;
  build.opt_level = 2;
  HsmSystem system(hsm::HasherApp(), build);
  TvReport report = ValidateSystem(system, QuietConfig());
  ExpectClean(report);
  EXPECT_GT(report.telemetry.CounterValue("tv/promoted_slots"), 0u);
  EXPECT_GT(report.telemetry.CounterValue("tv/xforms"), 0u);
}

TEST(TvTest, EcdsaValidatesCleanAtO2) {
  HsmBuildOptions build;
  build.opt_level = 2;
  HsmSystem system(hsm::EcdsaApp(), build);
  TvReport report = ValidateSystem(system, QuietConfig());
  ExpectClean(report);
  EXPECT_GT(report.telemetry.CounterValue("tv/promoted_slots"), 0u);
  EXPECT_GT(report.telemetry.CounterValue("tv/xforms"), 0u);
}

// An O0 witness that smuggles in O2 claims (a promotion save set or transformer
// entries) must be rejected, not silently honored.
TEST(TvTest, O0WitnessClaimingO2TransformsIsRejected) {
  HsmSystem system(hsm::HasherApp(), HsmBuildOptions{});
  riscv::Witness witness = system.witness();
  riscv::WitnessFunction* target = nullptr;
  for (auto& wf : witness.functions) {
    if (!wf.stmts.empty()) {
      target = &wf;
      break;
    }
  }
  ASSERT_NE(target, nullptr);
  riscv::WitnessXform bogus;
  bogus.pass = riscv::WitnessXform::kConstFold;
  bogus.site = target->body_begin;
  target->xforms.push_back(bogus);

  auto unit = minicc::Parse(system.firmware_source());
  ASSERT_TRUE(unit.ok()) << unit.error();
  TvReport report =
      ValidateTranslation(unit.value(), system.image(), witness, QuietConfig());
  ASSERT_TRUE(report.ok) << report.error;
  bool rejected = false;
  for (const TvFunctionResult& fr : report.functions) {
    if (fr.name != target->name) {
      continue;
    }
    for (const TvFinding& f : fr.findings) {
      rejected = rejected || f.kind == TvFindingKind::kWitnessInvalid;
    }
  }
  EXPECT_TRUE(rejected);
}

// A lying transformer entry (an immediate-form claim whose site holds a different
// instruction) must fail structurally even though the lockstep walk would pass.
TEST(TvTest, LyingTransformerEntryIsRejected) {
  HsmBuildOptions build;
  build.opt_level = 2;
  HsmSystem system(hsm::HasherApp(), build);
  riscv::Witness witness = system.witness();
  riscv::WitnessFunction* target = nullptr;
  riscv::WitnessXform* entry = nullptr;
  for (auto& wf : witness.functions) {
    for (auto& x : wf.xforms) {
      if (x.pass == riscv::WitnessXform::kImmForm) {
        target = &wf;
        entry = &x;
        break;
      }
    }
    if (entry != nullptr) {
      break;
    }
  }
  ASSERT_NE(entry, nullptr);
  entry->imm += 1;  // The instruction at the site no longer matches the claim.

  auto unit = minicc::Parse(system.firmware_source());
  ASSERT_TRUE(unit.ok()) << unit.error();
  TvReport report =
      ValidateTranslation(unit.value(), system.image(), witness, QuietConfig());
  ASSERT_TRUE(report.ok) << report.error;
  bool rejected = false;
  for (const TvFunctionResult& fr : report.functions) {
    if (fr.name != target->name) {
      continue;
    }
    for (const TvFinding& f : fr.findings) {
      rejected = rejected || f.kind == TvFindingKind::kWitnessInvalid;
    }
  }
  EXPECT_TRUE(rejected);
}

TEST(TvTest, OnlyFunctionFilter) {
  HsmSystem system(hsm::HasherApp(), HsmBuildOptions{});
  TvConfig config = QuietConfig();
  config.only_function = "rotr32";
  TvReport report = ValidateSystem(system, config);
  ASSERT_TRUE(report.ok) << report.error;
  ASSERT_EQ(report.functions.size(), 1u);
  EXPECT_EQ(report.functions[0].name, "rotr32");
  EXPECT_TRUE(report.functions[0].validated);
}

TEST(TvTest, WitnessRoundTripsThroughText) {
  HsmSystem system(hsm::HasherApp(), HsmBuildOptions{});
  const riscv::Witness& witness = system.witness();
  ASSERT_FALSE(witness.functions.empty());
  auto reparsed = riscv::Witness::FromText(witness.ToText());
  ASSERT_TRUE(reparsed.ok()) << reparsed.error();
  EXPECT_EQ(reparsed.value(), witness);
  EXPECT_EQ(reparsed.value().ToText(), witness.ToText());
}

// The O2 witness carries fields the O0 one never populates: the promoted-register
// save set, per-local register assignments, and the per-pass transformer entries.
// All of them must survive the text round trip exactly.
TEST(TvTest, O2WitnessRoundTripsThroughText) {
  HsmBuildOptions build;
  build.opt_level = 2;
  HsmSystem system(hsm::HasherApp(), build);
  const riscv::Witness& witness = system.witness();
  EXPECT_EQ(witness.opt_level, 2);

  bool saw_saved_regs = false, saw_promoted_local = false;
  bool saw_promote = false, saw_const_fold = false, saw_imm_form = false,
       saw_addr_fold = false;
  for (const riscv::WitnessFunction& wf : witness.functions) {
    saw_saved_regs = saw_saved_regs || !wf.saved_regs.empty();
    for (const riscv::WitnessLocal& l : wf.locals) {
      saw_promoted_local = saw_promoted_local || l.reg >= 0;
    }
    for (const riscv::WitnessXform& x : wf.xforms) {
      saw_promote = saw_promote || x.pass == riscv::WitnessXform::kPromoteReg;
      saw_const_fold = saw_const_fold || x.pass == riscv::WitnessXform::kConstFold;
      saw_imm_form = saw_imm_form || x.pass == riscv::WitnessXform::kImmForm;
      saw_addr_fold = saw_addr_fold || x.pass == riscv::WitnessXform::kAddrFold;
    }
  }
  EXPECT_TRUE(saw_saved_regs);
  EXPECT_TRUE(saw_promoted_local);
  EXPECT_TRUE(saw_promote);
  EXPECT_TRUE(saw_const_fold);
  EXPECT_TRUE(saw_imm_form);
  EXPECT_TRUE(saw_addr_fold);

  auto reparsed = riscv::Witness::FromText(witness.ToText());
  ASSERT_TRUE(reparsed.ok()) << reparsed.error();
  EXPECT_EQ(reparsed.value(), witness);
  EXPECT_EQ(reparsed.value().ToText(), witness.ToText());
}

// A corrupted witness must fail validation, never pass vacuously: shift one
// statement range and expect a finding in that function.
TEST(TvTest, CorruptedWitnessIsRejected) {
  HsmSystem system(hsm::HasherApp(), HsmBuildOptions{});
  riscv::Witness witness = system.witness();
  ASSERT_FALSE(witness.functions.empty());
  riscv::WitnessFunction* target = nullptr;
  for (auto& wf : witness.functions) {
    if (!wf.stmts.empty()) {
      target = &wf;
      break;
    }
  }
  ASSERT_NE(target, nullptr);
  target->stmts[0].begin += 4;

  auto unit = minicc::Parse(system.firmware_source());
  ASSERT_TRUE(unit.ok()) << unit.error();
  TvReport report =
      ValidateTranslation(unit.value(), system.image(), witness, QuietConfig());
  ASSERT_TRUE(report.ok) << report.error;
  bool found = false;
  for (const TvFunctionResult& fr : report.functions) {
    if (fr.name == target->name) {
      found = true;
      EXPECT_FALSE(fr.validated);
      EXPECT_FALSE(fr.findings.empty());
    }
  }
  EXPECT_TRUE(found);
}

struct MutantCase {
  MutationKind kind;
  const char* function;
  int site;
  int opt_level = 0;
};

// Builds the hasher firmware with one seeded miscompilation and validates it.
TvReport RunMutant(const MutantCase& mc) {
  HsmBuildOptions build;
  build.opt_level = mc.opt_level;
  build.mutation = Mutation{mc.kind, mc.function, mc.site};
  HsmSystem system(hsm::HasherApp(), build);
  return ValidateSystem(system, QuietConfig());
}

// Every mutant must be rejected inside the mutated function, with a provenance
// chain that names the originating source statement (kind + line) and the asm pc.
void ExpectCaught(const TvReport& report, const char* function) {
  ASSERT_TRUE(report.ok) << report.error;
  const TvFunctionResult* mutated = nullptr;
  for (const TvFunctionResult& fr : report.functions) {
    if (fr.name == function) {
      mutated = &fr;
    } else {
      EXPECT_TRUE(fr.validated) << fr.name << " flagged by an unrelated mutation";
    }
  }
  ASSERT_NE(mutated, nullptr);
  EXPECT_FALSE(mutated->validated);
  ASSERT_FALSE(mutated->findings.empty());
  const TvFinding& f = mutated->findings[0];
  EXPECT_EQ(f.function, function);
  EXPECT_GT(f.line, 0) << "finding must name the originating source line";
  ASSERT_GE(f.provenance.size(), 3u);
  EXPECT_NE(f.provenance[0].find("asm 0x"), std::string::npos) << f.provenance[0];
  EXPECT_NE(f.provenance[1].find("source line"), std::string::npos) << f.provenance[1];
  EXPECT_NE(f.provenance[2].find(function), std::string::npos) << f.provenance[2];
}

TEST(TvMutationTest, WrongRegisterSubstitutionCaught) {
  // rotr32's `32 - n`: swapping the sub operands yields n - 32, which breaks the
  // simulation relation when the rotated value is consumed.
  TvReport report = RunMutant({MutationKind::kWrongRegister, "rotr32", 0});
  ExpectCaught(report, "rotr32");
}

TEST(TvMutationTest, DroppedStoreCaught) {
  // handle's first assignment (the response-clearing loop): the store never
  // reaches memory, so the queued source-level write is left unconsumed.
  TvReport report = RunMutant({MutationKind::kDroppedStore, "handle", 0});
  ExpectCaught(report, "handle");
  bool missing = false;
  for (const TvFunctionResult& fr : report.functions) {
    for (const TvFinding& f : fr.findings) {
      if (f.kind == TvFindingKind::kMissingEffect ||
          f.kind == TvFindingKind::kValueMismatch) {
        missing = true;
      }
    }
  }
  EXPECT_TRUE(missing);
}

TEST(TvMutationTest, SwappedBranchPolarityCaught) {
  // handle's first loop branch: beq becomes bne, inverting the loop condition.
  TvReport report = RunMutant({MutationKind::kSwappedBranch, "handle", 0});
  ExpectCaught(report, "handle");
  bool polarity = false;
  for (const TvFunctionResult& fr : report.functions) {
    for (const TvFinding& f : fr.findings) {
      if (f.kind == TvFindingKind::kBranchMismatch &&
          f.detail.find("polarity") != std::string::npos) {
        polarity = true;
      }
    }
  }
  EXPECT_TRUE(polarity);
}

TEST(TvMutationTest, StrengthReducedMulCaught) {
  // sha256_compress's `i * 4`: the mul becomes a repeated-addition loop whose trip
  // count is data-dependent — a compiler-introduced timing channel. The validator
  // rejects the unexpected branch mid-expression.
  TvReport report = RunMutant({MutationKind::kStrengthReducedMul, "sha256_compress", 0});
  ExpectCaught(report, "sha256_compress");
  bool unjustified = false;
  for (const TvFunctionResult& fr : report.functions) {
    for (const TvFinding& f : fr.findings) {
      if (f.kind == TvFindingKind::kUnjustifiedBranch ||
          f.kind == TvFindingKind::kBranchMismatch ||
          f.kind == TvFindingKind::kUnjustifiedInstr) {
        unjustified = true;
      }
    }
  }
  EXPECT_TRUE(unjustified);
}

// Scans a report for a finding of one of the given kinds in any function.
bool HasFindingKind(const TvReport& report, std::initializer_list<TvFindingKind> kinds) {
  for (const TvFunctionResult& fr : report.functions) {
    for (const TvFinding& f : fr.findings) {
      for (TvFindingKind k : kinds) {
        if (f.kind == k) {
          return true;
        }
      }
    }
  }
  return false;
}

TEST(TvMutationTest, ClobberedSavedRegPromotionCaught) {
  // O2 promotes sha256_compress's hottest scalars into s-registers; skipping the
  // prologue save of the first one clobbers the caller's value. The validator's
  // promoted-register save check rejects the prologue.
  TvReport report =
      RunMutant({MutationKind::kClobberedSavedReg, "sha256_compress", 0, /*opt=*/2});
  ExpectCaught(report, "sha256_compress");
  EXPECT_TRUE(HasFindingKind(report, {TvFindingKind::kAbiViolation}));
}

TEST(TvMutationTest, DroppedRestoreCaught) {
  // Skipping the epilogue reload of the first promoted register leaves the local's
  // final value in a callee-saved register at return — an ABI violation the
  // epilogue check pins to the entry value.
  TvReport report =
      RunMutant({MutationKind::kDroppedRestore, "sha256_compress", 0, /*opt=*/2});
  ExpectCaught(report, "sha256_compress");
  EXPECT_TRUE(HasFindingKind(report, {TvFindingKind::kAbiViolation}));
}

TEST(TvMutationTest, WrongConstFoldCaught) {
  // blake2s's parameter-block word `0x01010000 ^ 32` folds at compile time; an
  // off-by-one fold produces the right instruction shape with the wrong constant,
  // which the relation catches where the value is consumed.
  TvReport report = RunMutant({MutationKind::kWrongConstFold, "blake2s", 0, /*opt=*/2});
  ExpectCaught(report, "blake2s");
  EXPECT_TRUE(HasFindingKind(report, {TvFindingKind::kEffectMismatch,
                                      TvFindingKind::kValueMismatch,
                                      TvFindingKind::kBranchMismatch}));
}

TEST(TvMutationTest, BadAddrFoldCaught) {
  // The folded address computation fuses an addi into a load/store offset; adding
  // 4 there reads one word past the intended element. Two transformer entries pin
  // that final instruction — the const-index fold's (recorded before the mutation
  // fires) and the fuse's (after) — so the mutated offset makes the witness
  // contradict its own binary and VerifyXforms rejects it structurally, before
  // the lockstep walk would flag the address itself.
  TvReport report =
      RunMutant({MutationKind::kBadAddrFold, "sha256_compress", 0, /*opt=*/2});
  ExpectCaught(report, "sha256_compress");
  EXPECT_TRUE(HasFindingKind(report, {TvFindingKind::kWitnessInvalid}));
  bool addr_fold = false;
  for (const TvFunctionResult& fr : report.functions) {
    for (const TvFinding& f : fr.findings) {
      addr_fold = addr_fold || f.detail.find("address-fold") != std::string::npos;
    }
  }
  EXPECT_TRUE(addr_fold);
}

TEST(TvDeterminismTest, RunToRunAndThreadCountIndependent) {
  HsmSystem system(hsm::EcdsaApp(), HsmBuildOptions{});
  TvConfig serial = QuietConfig();
  serial.num_threads = 1;
  std::string first = Render(ValidateSystem(system, serial));
  std::string second = Render(ValidateSystem(system, serial));
  EXPECT_EQ(first, second);

  TvConfig parallel = QuietConfig();
  parallel.num_threads = 4;
  std::string threaded = Render(ValidateSystem(system, parallel));
  EXPECT_EQ(first, threaded);
}

TEST(TvDeterminismTest, MutantReportIsDeterministic) {
  MutantCase mc{MutationKind::kSwappedBranch, "handle", 0};
  std::string first = Render(RunMutant(mc));
  std::string second = Render(RunMutant(mc));
  EXPECT_EQ(first, second);
}

TEST(TvDeterminismTest, O2ReportIsThreadCountIndependent) {
  HsmBuildOptions build;
  build.opt_level = 2;
  HsmSystem system(hsm::EcdsaApp(), build);
  TvConfig serial = QuietConfig();
  serial.num_threads = 1;
  std::string first = Render(ValidateSystem(system, serial));
  TvConfig parallel = QuietConfig();
  parallel.num_threads = 4;
  std::string threaded = Render(ValidateSystem(system, parallel));
  EXPECT_EQ(first, threaded);
}

}  // namespace
}  // namespace parfait::analysis
