// Tests for the translation validator: the clean verdict over both stock firmware
// apps, witness serialization, the seeded-miscompilation harness (each mutant class
// must be rejected with a provenance chain naming the originating source statement),
// and the determinism contract (bit-identical output run-to-run and across thread
// counts).
#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "src/analysis/tv/tv.h"
#include "src/hsm/app.h"
#include "src/hsm/hsm_system.h"
#include "src/minicc/codegen.h"
#include "src/minicc/parser.h"
#include "src/riscv/witness.h"

namespace parfait::analysis {
namespace {

using hsm::HsmBuildOptions;
using hsm::HsmSystem;
using minicc::Mutation;
using minicc::MutationKind;

TvConfig QuietConfig() {
  TvConfig config;
  config.emit_evidence = false;
  return config;
}

// Full deterministic rendering of a report, used to compare runs byte-for-byte.
std::string Render(const TvReport& report) {
  std::ostringstream out;
  out << "ok=" << report.ok << " error=" << report.error << "\n";
  for (const TvFunctionResult& fr : report.functions) {
    out << fr.name << " validated=" << fr.validated << " steps=" << fr.stats.steps
        << " terms=" << fr.stats.terms << " stmts=" << fr.stats.stmts
        << " sb=" << fr.stats.secret_branches << " sa=" << fr.stats.secret_addresses
        << "\n";
    for (const TvFinding& f : fr.findings) {
      out << "  " << TvFindingKindName(f.kind) << " pc=" << f.pc << " line=" << f.line
          << " " << f.detail << "\n";
      for (const std::string& hop : f.provenance) {
        out << "    " << hop << "\n";
      }
    }
  }
  out << report.telemetry.ToJson() << "\n";
  return out.str();
}

void ExpectClean(const TvReport& report) {
  ASSERT_TRUE(report.ok) << report.error;
  EXPECT_TRUE(report.Clean());
  EXPECT_FALSE(report.functions.empty());
  for (const TvFunctionResult& fr : report.functions) {
    EXPECT_TRUE(fr.validated) << fr.name;
    EXPECT_TRUE(fr.findings.empty()) << fr.name << ": " << fr.findings[0].detail;
  }
}

TEST(TvTest, HasherValidatesClean) {
  HsmSystem system(hsm::HasherApp(), HsmBuildOptions{});
  TvReport report = ValidateSystem(system, QuietConfig());
  ExpectClean(report);
  EXPECT_EQ(report.telemetry.CounterValue("tv/functions"),
            report.telemetry.CounterValue("tv/validated"));
  // boot.s is hand assembly: present in the CFG, absent from the witness.
  EXPECT_GE(report.telemetry.CounterValue("tv/unwitnessed_functions"), 1u);
}

TEST(TvTest, EcdsaValidatesClean) {
  HsmSystem system(hsm::EcdsaApp(), HsmBuildOptions{});
  TvReport report = ValidateSystem(system, QuietConfig());
  ExpectClean(report);
  EXPECT_GT(report.telemetry.CounterValue("tv/stmts"), 500u);
}

TEST(TvTest, OnlyFunctionFilter) {
  HsmSystem system(hsm::HasherApp(), HsmBuildOptions{});
  TvConfig config = QuietConfig();
  config.only_function = "rotr32";
  TvReport report = ValidateSystem(system, config);
  ASSERT_TRUE(report.ok) << report.error;
  ASSERT_EQ(report.functions.size(), 1u);
  EXPECT_EQ(report.functions[0].name, "rotr32");
  EXPECT_TRUE(report.functions[0].validated);
}

TEST(TvTest, WitnessRoundTripsThroughText) {
  HsmSystem system(hsm::HasherApp(), HsmBuildOptions{});
  const riscv::Witness& witness = system.witness();
  ASSERT_FALSE(witness.functions.empty());
  auto reparsed = riscv::Witness::FromText(witness.ToText());
  ASSERT_TRUE(reparsed.ok()) << reparsed.error();
  EXPECT_EQ(reparsed.value(), witness);
  EXPECT_EQ(reparsed.value().ToText(), witness.ToText());
}

// A corrupted witness must fail validation, never pass vacuously: shift one
// statement range and expect a finding in that function.
TEST(TvTest, CorruptedWitnessIsRejected) {
  HsmSystem system(hsm::HasherApp(), HsmBuildOptions{});
  riscv::Witness witness = system.witness();
  ASSERT_FALSE(witness.functions.empty());
  riscv::WitnessFunction* target = nullptr;
  for (auto& wf : witness.functions) {
    if (!wf.stmts.empty()) {
      target = &wf;
      break;
    }
  }
  ASSERT_NE(target, nullptr);
  target->stmts[0].begin += 4;

  auto unit = minicc::Parse(system.firmware_source());
  ASSERT_TRUE(unit.ok()) << unit.error();
  TvReport report =
      ValidateTranslation(unit.value(), system.image(), witness, QuietConfig());
  ASSERT_TRUE(report.ok) << report.error;
  bool found = false;
  for (const TvFunctionResult& fr : report.functions) {
    if (fr.name == target->name) {
      found = true;
      EXPECT_FALSE(fr.validated);
      EXPECT_FALSE(fr.findings.empty());
    }
  }
  EXPECT_TRUE(found);
}

struct MutantCase {
  MutationKind kind;
  const char* function;
  int site;
};

// Builds the hasher firmware with one seeded miscompilation and validates it.
TvReport RunMutant(const MutantCase& mc) {
  HsmBuildOptions build;
  build.mutation = Mutation{mc.kind, mc.function, mc.site};
  HsmSystem system(hsm::HasherApp(), build);
  return ValidateSystem(system, QuietConfig());
}

// Every mutant must be rejected inside the mutated function, with a provenance
// chain that names the originating source statement (kind + line) and the asm pc.
void ExpectCaught(const TvReport& report, const char* function) {
  ASSERT_TRUE(report.ok) << report.error;
  const TvFunctionResult* mutated = nullptr;
  for (const TvFunctionResult& fr : report.functions) {
    if (fr.name == function) {
      mutated = &fr;
    } else {
      EXPECT_TRUE(fr.validated) << fr.name << " flagged by an unrelated mutation";
    }
  }
  ASSERT_NE(mutated, nullptr);
  EXPECT_FALSE(mutated->validated);
  ASSERT_FALSE(mutated->findings.empty());
  const TvFinding& f = mutated->findings[0];
  EXPECT_EQ(f.function, function);
  EXPECT_GT(f.line, 0) << "finding must name the originating source line";
  ASSERT_GE(f.provenance.size(), 3u);
  EXPECT_NE(f.provenance[0].find("asm 0x"), std::string::npos) << f.provenance[0];
  EXPECT_NE(f.provenance[1].find("source line"), std::string::npos) << f.provenance[1];
  EXPECT_NE(f.provenance[2].find(function), std::string::npos) << f.provenance[2];
}

TEST(TvMutationTest, WrongRegisterSubstitutionCaught) {
  // rotr32's `32 - n`: swapping the sub operands yields n - 32, which breaks the
  // simulation relation when the rotated value is consumed.
  TvReport report = RunMutant({MutationKind::kWrongRegister, "rotr32", 0});
  ExpectCaught(report, "rotr32");
}

TEST(TvMutationTest, DroppedStoreCaught) {
  // handle's first assignment (the response-clearing loop): the store never
  // reaches memory, so the queued source-level write is left unconsumed.
  TvReport report = RunMutant({MutationKind::kDroppedStore, "handle", 0});
  ExpectCaught(report, "handle");
  bool missing = false;
  for (const TvFunctionResult& fr : report.functions) {
    for (const TvFinding& f : fr.findings) {
      if (f.kind == TvFindingKind::kMissingEffect ||
          f.kind == TvFindingKind::kValueMismatch) {
        missing = true;
      }
    }
  }
  EXPECT_TRUE(missing);
}

TEST(TvMutationTest, SwappedBranchPolarityCaught) {
  // handle's first loop branch: beq becomes bne, inverting the loop condition.
  TvReport report = RunMutant({MutationKind::kSwappedBranch, "handle", 0});
  ExpectCaught(report, "handle");
  bool polarity = false;
  for (const TvFunctionResult& fr : report.functions) {
    for (const TvFinding& f : fr.findings) {
      if (f.kind == TvFindingKind::kBranchMismatch &&
          f.detail.find("polarity") != std::string::npos) {
        polarity = true;
      }
    }
  }
  EXPECT_TRUE(polarity);
}

TEST(TvMutationTest, StrengthReducedMulCaught) {
  // sha256_compress's `i * 4`: the mul becomes a repeated-addition loop whose trip
  // count is data-dependent — a compiler-introduced timing channel. The validator
  // rejects the unexpected branch mid-expression.
  TvReport report = RunMutant({MutationKind::kStrengthReducedMul, "sha256_compress", 0});
  ExpectCaught(report, "sha256_compress");
  bool unjustified = false;
  for (const TvFunctionResult& fr : report.functions) {
    for (const TvFinding& f : fr.findings) {
      if (f.kind == TvFindingKind::kUnjustifiedBranch ||
          f.kind == TvFindingKind::kBranchMismatch ||
          f.kind == TvFindingKind::kUnjustifiedInstr) {
        unjustified = true;
      }
    }
  }
  EXPECT_TRUE(unjustified);
}

TEST(TvDeterminismTest, RunToRunAndThreadCountIndependent) {
  HsmSystem system(hsm::EcdsaApp(), HsmBuildOptions{});
  TvConfig serial = QuietConfig();
  serial.num_threads = 1;
  std::string first = Render(ValidateSystem(system, serial));
  std::string second = Render(ValidateSystem(system, serial));
  EXPECT_EQ(first, second);

  TvConfig parallel = QuietConfig();
  parallel.num_threads = 4;
  std::string threaded = Render(ValidateSystem(system, parallel));
  EXPECT_EQ(first, threaded);
}

TEST(TvDeterminismTest, MutantReportIsDeterministic) {
  MutantCase mc{MutationKind::kSwappedBranch, "handle", 0};
  std::string first = Render(RunMutant(mc));
  std::string second = Render(RunMutant(mc));
  EXPECT_EQ(first, second);
}

}  // namespace
}  // namespace parfait::analysis
