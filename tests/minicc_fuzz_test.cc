// Randomized differential testing of the MiniC compiler: generate random programs
// whose result is computable by a host-side oracle, compile them at O0 and O2, run
// both on the abstract machine, and require all three answers to agree. This is the
// compiler-level analog of the paper's translation-validation stance: we never trust
// the compiler, we check each binary.
#include <gtest/gtest.h>

#include <sstream>

#include "src/minicc/compiler.h"
#include "src/riscv/machine.h"
#include "src/support/rng.h"

namespace parfait::minicc {
namespace {

using riscv::Machine;
using riscv::Value;

// A tiny generator of random straight-line MiniC functions over u32 variables with a
// host-side interpreter as the oracle. Shapes generated: variable declarations,
// assignments through random expressions, array writes/reads, a bounded loop, and
// constant-constant subexpressions that O2 folds away (so the O0-vs-O2 leg covers
// the optimizer's transformations, not just shared straight-line lowering).
class ProgramGen {
 public:
  explicit ProgramGen(uint64_t seed) : rng_(seed) {}

  struct Generated {
    std::string source;
    uint32_t expected;
  };

  Generated Generate() {
    vars_.clear();
    body_.str("");
    // Seed variables with known constants.
    int nvars = 3 + static_cast<int>(rng_.Below(4));
    for (int i = 0; i < nvars; i++) {
      uint32_t v = rng_.Next32();
      std::string name = "v" + std::to_string(i);
      body_ << "  u32 " << name << " = " << v << "u;\n";
      vars_.push_back({name, v});
    }
    // Array with known contents.
    body_ << "  u32 arr[8];\n";
    for (int i = 0; i < 8; i++) {
      arr_[i] = rng_.Next32();
      body_ << "  arr[" << i << "] = " << arr_[i] << "u;\n";
    }
    // Random statements.
    int nstmts = 4 + static_cast<int>(rng_.Below(8));
    for (int i = 0; i < nstmts; i++) {
      GenStatement();
    }
    // A bounded accumulation loop (exercises branches + phi-like flows).
    uint32_t trip = 1 + static_cast<uint32_t>(rng_.Below(6));
    auto [expr, value] = GenExpr(2);
    body_ << "  u32 acc = 0;\n";
    body_ << "  for (u32 i = 0; i < " << trip << "; i = i + 1) { acc = acc + (" << expr
          << ") + i; }\n";
    uint32_t acc = 0;
    for (uint32_t i = 0; i < trip; i++) {
      acc += value + i;
    }
    // Final result mixes everything.
    uint32_t expected = acc;
    std::string result = "acc";
    for (const auto& [name, value2] : vars_) {
      result = "(" + result + " ^ " + name + ")";
      expected ^= value2;
    }
    for (int i = 0; i < 8; i++) {
      result = "(" + result + " + arr[" + std::to_string(i) + "])";
      expected += arr_[i];
    }
    Generated g;
    g.source = "u32 f(void) {\n" + body_.str() + "  return " + result + ";\n}\n";
    g.expected = expected;
    return g;
  }

 private:
  void GenStatement() {
    if (rng_.Below(4) == 0) {
      // Array store at a random index.
      uint32_t idx = static_cast<uint32_t>(rng_.Below(8));
      auto [expr, value] = GenExpr(2);
      body_ << "  arr[" << idx << "] = " << expr << ";\n";
      arr_[idx] = value;
      return;
    }
    // Assignment to a random variable.
    size_t target = rng_.Below(vars_.size());
    auto [expr, value] = GenExpr(3);
    body_ << "  " << vars_[target].first << " = " << expr << ";\n";
    vars_[target].second = value;
  }

  // Returns (expression text, oracle value).
  std::pair<std::string, uint32_t> GenExpr(int depth) {
    if (depth == 0 || rng_.Below(3) == 0) {
      switch (rng_.Below(4)) {
        case 0: {
          uint32_t v = rng_.Below(2) == 0 ? static_cast<uint32_t>(rng_.Below(256))
                                          : rng_.Next32();
          return {std::to_string(v) + "u", v};
        }
        case 1: {
          size_t i = rng_.Below(vars_.size());
          return {vars_[i].first, vars_[i].second};
        }
        case 2: {
          uint32_t i = static_cast<uint32_t>(rng_.Below(8));
          return {"arr[" + std::to_string(i) + "]", arr_[i]};
        }
        default: {
          // Constant-constant subexpression: O2's constant folder collapses this
          // to a single literal (and then picks an immediate form for whatever
          // consumes it), so the differential leg exercises both passes.
          uint32_t a = static_cast<uint32_t>(rng_.Below(1u << 16));
          uint32_t b = static_cast<uint32_t>(rng_.Below(256));
          static const char* kFoldOps[] = {"+", "-", "*", "&", "|", "^"};
          int op = static_cast<int>(rng_.Below(6));
          uint32_t v = 0;
          switch (op) {
            case 0: v = a + b; break;
            case 1: v = a - b; break;
            case 2: v = a * b; break;
            case 3: v = a & b; break;
            case 4: v = a | b; break;
            default: v = a ^ b; break;
          }
          return {"(" + std::to_string(a) + "u " + kFoldOps[op] + " " +
                      std::to_string(b) + "u)",
                  v};
        }
      }
    }
    auto [lhs, lv] = GenExpr(depth - 1);
    auto [rhs, rv] = GenExpr(depth - 1);
    static const char* kOps[] = {"+", "-", "*", "&", "|", "^", "<<", ">>", "<", "=="};
    const char* op = kOps[rng_.Below(10)];
    uint32_t value = 0;
    std::string rhs_text = rhs;
    if (op[0] == '<' && op[1] == '<') {
      uint32_t sh = rv & 31;
      rhs_text = std::to_string(sh) + "u";
      value = lv << sh;
    } else if (op[0] == '>' && op[1] == '>') {
      uint32_t sh = rv & 31;
      rhs_text = std::to_string(sh) + "u";
      value = lv >> sh;
    } else if (op[0] == '+' && op[1] == 0) {
      value = lv + rv;
    } else if (op[0] == '-') {
      value = lv - rv;
    } else if (op[0] == '*') {
      value = lv * rv;
    } else if (op[0] == '&') {
      value = lv & rv;
    } else if (op[0] == '|') {
      value = lv | rv;
    } else if (op[0] == '^') {
      value = lv ^ rv;
    } else if (op[0] == '<') {
      value = lv < rv ? 1 : 0;
    } else {  // ==
      value = lv == rv ? 1 : 0;
    }
    return {"(" + lhs + " " + op + " " + rhs_text + ")", value};
  }

  Rng rng_;
  std::vector<std::pair<std::string, uint32_t>> vars_;
  uint32_t arr_[8];
  std::ostringstream body_;
};

uint32_t CompileAndRun(const std::string& source, int opt_level, bool* ok,
                       std::string* diag) {
  riscv::Program program;
  CodegenOptions options;
  options.opt_level = opt_level;
  auto compiled = CompileSource(source, options, &program);
  if (!compiled.ok()) {
    *ok = false;
    *diag = "compile: " + compiled.error();
    return 0;
  }
  auto image = program.Link(0, 0x20000000);
  if (!image.ok()) {
    *ok = false;
    *diag = "link: " + image.error();
    return 0;
  }
  Machine m;
  m.AddRegion("rom", 0, 1 << 20, false);
  m.AddRegion("ram", 0x20000000, 1 << 20, true);
  m.WriteMemory(0, image.value().rom);
  m.set_reg(2, Value::Defined(0x20000000 + (1 << 20)));
  auto result = m.CallFunction(image.value().SymbolOrDie("f"), {}, 10'000'000);
  if (result != Machine::StepResult::kHalt || !m.reg(10).defined) {
    *ok = false;
    *diag = "run: " + m.fault_reason();
    return 0;
  }
  *ok = true;
  return m.reg(10).bits;
}

class MiniccFuzz : public testing::TestWithParam<uint64_t> {};

TEST_P(MiniccFuzz, RandomProgramsAgreeAcrossOptLevelsAndOracle) {
  ProgramGen gen(GetParam());
  for (int trial = 0; trial < 40; trial++) {
    auto program = gen.Generate();
    bool ok0 = false;
    bool ok2 = false;
    std::string d0;
    std::string d2;
    uint32_t r0 = CompileAndRun(program.source, 0, &ok0, &d0);
    uint32_t r2 = CompileAndRun(program.source, 2, &ok2, &d2);
    ASSERT_TRUE(ok0) << d0 << "\n" << program.source;
    ASSERT_TRUE(ok2) << d2 << "\n" << program.source;
    EXPECT_EQ(r0, program.expected) << "O0 disagrees with the oracle:\n" << program.source;
    EXPECT_EQ(r2, program.expected) << "O2 disagrees with the oracle:\n" << program.source;
    EXPECT_EQ(r0, r2) << program.source;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MiniccFuzz, testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

}  // namespace
}  // namespace parfait::minicc
