// Knox2 checks on the real HSMs: assembly-circuit co-simulation, the emulator-based
// wire-level IPR equivalence, and the self-composition leakage check — plus injected
// bugs from the paper's section 7.2 that each check must catch.
#include <gtest/gtest.h>

#include "src/knox2/cosim.h"
#include "src/knox2/emulator.h"
#include "src/knox2/leakage.h"
#include "src/knox2/units.h"
#include "src/platform/firmware.h"
#include "src/support/rng.h"

namespace parfait::knox2 {
namespace {

using hsm::App;
using hsm::HsmBuildOptions;
using hsm::HsmSystem;
using soc::CpuKind;

class HasherKnox2 : public testing::TestWithParam<CpuKind> {};

TEST_P(HasherKnox2, CosimPassesOnBothCpus) {
  const App& app = hsm::HasherApp();
  HsmBuildOptions options;
  options.cpu = GetParam();
  HsmSystem system(app, options);
  Rng rng(21);
  Bytes state = rng.RandomBytes(app.state_size());
  for (int i = 0; i < 3; i++) {
    Bytes cmd = i == 2 ? app.RandomInvalidCommand(rng) : app.RandomValidCommand(rng);
    auto result = CosimHandleStep(system, state, cmd);
    ASSERT_TRUE(result.ok) << result.divergence;
    EXPECT_GT(result.stats.instructions, 100u);
    EXPECT_GT(result.stats.branch_syncs, 0u);
    EXPECT_GT(result.stats.call_syncs, 0u);
    state = result.final_state;
  }
}

INSTANTIATE_TEST_SUITE_P(Cpus, HasherKnox2,
                         testing::Values(CpuKind::kIbexLite, CpuKind::kPicoLite),
                         [](const testing::TestParamInfo<CpuKind>& info) {
                           return soc::CpuKindName(info.param);
                         });

TEST(Knox2Cosim, EcdsaSignCosimPasses) {
  const App& app = hsm::EcdsaApp();
  HsmSystem system(app, HsmBuildOptions{});
  Rng rng(22);
  Bytes state = rng.RandomBytes(app.state_size());
  Bytes cmd(app.command_size(), 0);
  cmd[0] = 2;  // Sign.
  for (size_t i = 1; i <= 32; i++) {
    cmd[i] = rng.Byte();
  }
  auto result = CosimHandleStep(system, state, cmd);
  ASSERT_TRUE(result.ok) << result.divergence;
  EXPECT_GT(result.stats.instructions, 1'000'000u);  // Tens of millions of cycles (§5.1).
  EXPECT_GT(result.stats.cycles, result.stats.instructions);
}

TEST(Knox2Cosim, VariableLatencyMulIsFunctionallyTransparent) {
  // The variable-latency multiplier changes *timing*, not values: the retirement
  // stream still matches, so cosim passes; self-composition (below, and the attack
  // matrix) is the checker responsible for the timing channel. This test documents
  // the division of labour between the two checks.
  const App& app = hsm::HasherApp();
  HsmBuildOptions options;
  options.variable_latency_mul = true;
  HsmSystem system(app, options);
  Rng rng(23);
  Bytes state = rng.RandomBytes(app.state_size());
  Bytes cmd = app.RandomValidCommand(rng);
  auto result = CosimHandleStep(system, state, cmd);
  EXPECT_TRUE(result.ok) << result.divergence;  // Functionally still correct.
}

TEST(Knox2Cosim, OptimizedFirmwareAlsoVerifies) {
  // The O2 (unverified-compiler stand-in) output also passes translation validation —
  // the paper's point that validating the particular binary subsumes compiler trust.
  const App& app = hsm::HasherApp();
  HsmBuildOptions options;
  options.opt_level = 2;
  HsmSystem system(app, options);
  Rng rng(31);
  Bytes state = rng.RandomBytes(app.state_size());
  Bytes cmd = app.RandomValidCommand(rng);
  auto result = CosimHandleStep(system, state, cmd);
  EXPECT_TRUE(result.ok) << result.divergence;
}

TEST(Knox2Cosim, CatchesHardwareRetirementBug) {
  // The load-use hazard bug makes the circuit compute wrong values; cosim must flag a
  // register or retirement divergence during handle().
  const App& app = hsm::HasherApp();
  HsmBuildOptions options;
  options.load_use_hazard_bug = true;
  HsmSystem system(app, options);
  Rng rng(32);
  Bytes state = rng.RandomBytes(app.state_size());
  Bytes cmd = app.RandomValidCommand(rng);
  auto result = CosimHandleStep(system, state, cmd);
  EXPECT_FALSE(result.ok);
}

TEST(Knox2Units, SlicedCosimMatchesMonolithic) {
  // Work-unit slicing must not change the verdict or the final machine-side state:
  // the sliced run is the same co-simulation cut at plan boundaries.
  const App& app = hsm::HasherApp();
  for (CpuKind cpu : {CpuKind::kIbexLite, CpuKind::kPicoLite}) {
    HsmBuildOptions build;
    build.cpu = cpu;
    HsmSystem system(app, build);
    Rng rng(41);
    Bytes state = rng.RandomBytes(app.state_size());
    Bytes cmd = app.RandomValidCommand(rng);
    cmd[0] = 2;  // Hash: the long command, so handle() spans several units.

    auto mono = CosimHandleStep(system, state, cmd);
    ASSERT_TRUE(mono.ok) << mono.divergence;

    HandlePlan plan = PlanHandleUnits(system, state, cmd, /*unit_instructions=*/1000);
    ASSERT_TRUE(plan.ok) << soc::CpuKindName(cpu) << ": " << plan.error;
    ASSERT_GT(plan.num_units(), 1u);

    CosimOptions options;
    options.unit_instructions = 1000;
    options.num_threads = 2;
    auto sliced = CosimHandleStep(system, state, cmd, options);
    ASSERT_TRUE(sliced.ok) << soc::CpuKindName(cpu) << ": " << sliced.divergence;
    EXPECT_EQ(sliced.final_state, mono.final_state);
    EXPECT_EQ(sliced.final_response, mono.final_response);
    EXPECT_EQ(sliced.stats.instructions, mono.stats.instructions);
    EXPECT_EQ(sliced.telemetry.CounterValue("knox2/cosim/units"), plan.num_units());
  }
}

TEST(Knox2Units, SlicedCosimIsThreadCountInvariant) {
  // For a fixed slicing, the folded report (including the telemetry snapshot) is
  // byte-identical at every thread count.
  const App& app = hsm::HasherApp();
  HsmSystem system(app, HsmBuildOptions{});
  Rng rng(42);
  Bytes state = rng.RandomBytes(app.state_size());
  Bytes cmd = app.RandomValidCommand(rng);
  cmd[0] = 2;
  CosimOptions options;
  options.unit_instructions = 1000;
  options.num_threads = 1;
  auto serial = CosimHandleStep(system, state, cmd, options);
  options.num_threads = 3;
  auto parallel = CosimHandleStep(system, state, cmd, options);
  EXPECT_EQ(serial.ok, parallel.ok);
  EXPECT_EQ(serial.divergence, parallel.divergence);
  EXPECT_EQ(serial.final_state, parallel.final_state);
  EXPECT_EQ(serial.final_response, parallel.final_response);
  EXPECT_TRUE(serial.telemetry == parallel.telemetry)
      << serial.telemetry.ToJson() << "\nvs\n"
      << parallel.telemetry.ToJson();
}

TEST(Knox2Units, SlicedCosimCatchesHardwareRetirementBug) {
  // The load-use hazard bug must still be caught when the run is sliced, and the
  // settled divergence must be schedule-independent (lowest-ordinal unit wins).
  const App& app = hsm::HasherApp();
  HsmBuildOptions build;
  build.load_use_hazard_bug = true;
  HsmSystem system(app, build);
  Rng rng(32);  // Same inputs as the monolithic CatchesHardwareRetirementBug test.
  Bytes state = rng.RandomBytes(app.state_size());
  Bytes cmd = app.RandomValidCommand(rng);
  CosimOptions options;
  options.unit_instructions = 1000;
  options.num_threads = 3;
  auto sliced = CosimHandleStep(system, state, cmd, options);
  EXPECT_FALSE(sliced.ok);
  options.num_threads = 1;
  auto serial = CosimHandleStep(system, state, cmd, options);
  EXPECT_FALSE(serial.ok);
  EXPECT_EQ(sliced.divergence, serial.divergence);
}

TEST(Knox2Units, SlicedSelfCompMatchesJoint) {
  const App& app = hsm::HasherApp();
  HsmSystem system(app, HsmBuildOptions{});
  Rng rng(43);
  Bytes state_a = rng.RandomBytes(app.state_size());
  Bytes state_b = MakeSecretVariant(app, state_a, rng);
  Bytes cmd = app.RandomValidCommand(rng);
  cmd[0] = 2;

  auto joint = CheckSelfComposition(system, state_a, state_b, {cmd});
  ASSERT_TRUE(joint.ok) << joint.divergence;

  SelfCompOptions options;
  options.unit_instructions = 1000;
  options.num_threads = 2;
  auto sliced = CheckSelfComposition(system, state_a, state_b, {cmd}, options);
  ASSERT_TRUE(sliced.ok) << sliced.divergence;
  EXPECT_EQ(sliced.checks_run, 1);
  EXPECT_GT(sliced.telemetry.CounterValue("knox2/selfcomp/units"), 1u);

  // Thread-count invariance of the sliced report.
  options.num_threads = 1;
  auto serial = CheckSelfComposition(system, state_a, state_b, {cmd}, options);
  EXPECT_EQ(serial.cycles, sliced.cycles);
  EXPECT_TRUE(serial.telemetry == sliced.telemetry)
      << serial.telemetry.ToJson() << "\nvs\n"
      << sliced.telemetry.ToJson();
}

TEST(Knox2Units, SlicedSelfCompCatchesVariableLatencyMultiplier) {
  // Timing leakage is still caught under slicing: a variable-latency multiply fed by
  // the secret makes some segment's cycle count differ between the two instances.
  std::string mul_app = R"(
void handle(u8 *state, u8 *cmd, u8 *resp) {
  for (u32 i = 0; i < RESPONSE_SIZE; i = i + 1) { resp[i] = 0; }
  u32 tag = (u32)cmd[0];
  if (tag == 2) {
    u32 s = ((u32)state[0] << 24) | ((u32)state[1] << 16) | ((u32)state[2] << 8)
            | (u32)state[3];
    u32 acc = 0;
    for (u32 i = 0; i < 2048; i = i + 1) { acc = acc + s * (u32)cmd[1 + (i & 31)]; }
    resp[0] = 2;
    resp[1] = (u8)acc;
    return;
  }
}
)";
  const App& app = hsm::HasherApp();
  HsmBuildOptions build;
  build.source_override = mul_app;
  build.variable_latency_mul = true;
  HsmSystem system(app, build);
  Bytes state_a(app.state_size(), 0);
  state_a[3] = 1;  // Small multiplier operand.
  Bytes state_b(app.state_size(), 0xff);  // Large multiplier operand.
  Bytes cmd(app.command_size(), 7);
  cmd[0] = 2;
  SelfCompOptions options;
  options.unit_instructions = 1000;
  options.num_threads = 2;
  auto sliced = CheckSelfComposition(system, state_a, state_b, {cmd}, options);
  EXPECT_FALSE(sliced.ok);
  options.num_threads = 1;
  auto serial = CheckSelfComposition(system, state_a, state_b, {cmd}, options);
  EXPECT_FALSE(serial.ok);
  EXPECT_EQ(sliced.divergence, serial.divergence);
}

TEST(Knox2WireIpr, HasherPasses) {
  const App& app = hsm::HasherApp();
  HsmSystem system(app, HsmBuildOptions{});
  Rng rng(24);
  Bytes state = rng.RandomBytes(app.state_size());
  WireIprOptions options;
  options.commands = 3;
  options.noise_bytes = 2;
  auto result = CheckWireIpr(system, state, options);
  EXPECT_TRUE(result.ok) << result.divergence;
  EXPECT_GT(result.cycles, 10'000u);
}

TEST(Knox2WireIpr, BatchedTrialsAreScheduleInvariant) {
  const App& app = hsm::HasherApp();
  HsmSystem system(app, HsmBuildOptions{});
  Rng rng(27);
  Bytes state = rng.RandomBytes(app.state_size());
  WireIprOptions options;
  options.commands = 1;
  options.noise_bytes = 1;
  options.trials = 4;
  options.trial_batch = 2;
  options.num_threads = 3;
  auto batched = CheckWireIpr(system, state, options);
  EXPECT_TRUE(batched.ok) << batched.divergence;
  EXPECT_EQ(batched.telemetry.CounterValue("knox2/wire_ipr/trials"), 4u);

  options.trial_batch = 1;
  options.num_threads = 1;
  auto serial = CheckWireIpr(system, state, options);
  EXPECT_TRUE(serial.ok) << serial.divergence;
  EXPECT_EQ(batched.cycles, serial.cycles);
  EXPECT_EQ(batched.checks_run, serial.checks_run);
  EXPECT_TRUE(batched.telemetry == serial.telemetry)
      << batched.telemetry.ToJson() << "\nvs\n"
      << serial.telemetry.ToJson();
}

TEST(Knox2WireIpr, CatchesSecretDependentTiming) {
  // §7.2 "timing leakage from branching on a secret": a hasher variant that
  // early-exits the HMAC when the secret's first byte is zero. The emulator's dummy
  // circuit (zero state) takes the fast path while the real circuit (random secret)
  // takes the slow one — the wire traces diverge.
  std::string leaky = platform::ReadFirmwareFile("hash.c") + R"(
void handle(u8 *state, u8 *cmd, u8 *resp) {
  for (u32 i = 0; i < RESPONSE_SIZE; i = i + 1) { resp[i] = 0; }
  u32 tag = (u32)cmd[0];
  if (tag == 1) {
    for (u32 i = 0; i < 32; i = i + 1) { state[i] = cmd[1 + i]; }
    resp[0] = 1;
    return;
  }
  if (tag == 2) {
    u8 digest[32];
    if (state[0] == 0) {
      for (u32 i = 0; i < 32; i = i + 1) { digest[i] = 0; }  /* "fast path" */
    } else {
      hmac_blake2s(digest, state, cmd + 1, 32);
    }
    resp[0] = 2;
    for (u32 i = 0; i < 32; i = i + 1) { resp[1 + i] = digest[i]; }
    return;
  }
}
)";
  const App& app = hsm::HasherApp();
  HsmBuildOptions options;
  options.source_override = leaky;
  HsmSystem system(app, options);
  Rng rng(25);
  Bytes state = rng.RandomBytes(app.state_size());
  state[0] |= 1;  // Real secret takes the slow path; the emulator's dummy is zero.
  WireIprOptions wire_options;
  wire_options.commands = 2;
  wire_options.noise_bytes = 0;
  auto result = CheckWireIpr(system, state, wire_options);
  EXPECT_FALSE(result.ok);

  // Batched trials settle the same counterexample at any schedule: the leak fires
  // in every trial, so the lowest failing trial (trial 0) is the one reported
  // whether trials run on one lane or race across three.
  wire_options.trials = 3;
  wire_options.trial_batch = 1;
  wire_options.num_threads = 3;
  auto raced = CheckWireIpr(system, state, wire_options);
  wire_options.num_threads = 1;
  auto ordered = CheckWireIpr(system, state, wire_options);
  EXPECT_FALSE(raced.ok);
  EXPECT_FALSE(ordered.ok);
  EXPECT_EQ(raced.divergence, ordered.divergence);
  EXPECT_EQ(raced.cycles, ordered.cycles);
  EXPECT_TRUE(raced.telemetry == ordered.telemetry);
}

TEST(Knox2SelfComp, HasherConstantTime) {
  const App& app = hsm::HasherApp();
  HsmSystem system(app, HsmBuildOptions{});
  Rng rng(26);
  Bytes state_a = rng.RandomBytes(app.state_size());
  Bytes state_b = MakeSecretVariant(app, state_a, rng);
  std::vector<Bytes> commands;
  for (int i = 0; i < 3; i++) {
    commands.push_back(app.RandomValidCommand(rng));
  }
  auto result = CheckSelfComposition(system, state_a, state_b, commands);
  EXPECT_TRUE(result.ok) << result.divergence;
}

TEST(Knox2SelfComp, CatchesVariableLatencyMultiplier) {
  // §7.2 "hardware-level timing leakage from a variable-latency arithmetic
  // instruction": the hasher's compression function multiplies... it does not, so use
  // a variant app that multiplies by a secret byte. With the variable-latency
  // multiplier configured, two secrets of different magnitude give different timing.
  std::string mul_app = R"(
void handle(u8 *state, u8 *cmd, u8 *resp) {
  for (u32 i = 0; i < RESPONSE_SIZE; i = i + 1) { resp[i] = 0; }
  u32 tag = (u32)cmd[0];
  if (tag == 1) {
    for (u32 i = 0; i < 32; i = i + 1) { state[i] = cmd[1 + i]; }
    resp[0] = 1;
    return;
  }
  if (tag == 2) {
    u32 s = ((u32)state[0] << 24) | ((u32)state[1] << 16) | ((u32)state[2] << 8)
            | (u32)state[3];
    u32 acc = 0;
    for (u32 i = 0; i < 32; i = i + 1) { acc = acc + s * (u32)cmd[1 + i]; }
    resp[0] = 2;
    resp[1] = (u8)acc;
    return;
  }
}
)";
  const App& app = hsm::HasherApp();
  HsmBuildOptions options;
  options.source_override = mul_app;
  options.variable_latency_mul = true;
  HsmSystem system(app, options);
  Rng rng(27);
  Bytes state_a(app.state_size(), 0);
  state_a[3] = 1;  // Small multiplier operand.
  Bytes state_b(app.state_size(), 0xff);  // Large multiplier operand.
  Bytes cmd(app.command_size(), 7);
  cmd[0] = 2;
  auto result = CheckSelfComposition(system, state_a, state_b, {cmd});
  EXPECT_FALSE(result.ok);

  // With the fixed-latency multiplier the same app is constant-time.
  options.variable_latency_mul = false;
  HsmSystem fixed_system(app, options);
  auto fixed = CheckSelfComposition(fixed_system, state_a, state_b, {cmd});
  EXPECT_TRUE(fixed.ok) << fixed.divergence;
}

TEST(Knox2Taint, CleanHasherHasNoLeaks) {
  const App& app = hsm::HasherApp();
  HsmBuildOptions options;
  options.taint_tracking = true;
  HsmSystem system(app, options);
  Rng rng(28);
  Bytes state = rng.RandomBytes(app.state_size());
  Bytes cmd = app.RandomValidCommand(rng);
  cmd[0] = 2;
  auto taint = RunTaintCheck(system, state, {cmd});
  for (const auto& leak : taint.leaks) {
    ADD_FAILURE() << leak.what;
  }
  EXPECT_EQ(taint.checks_run, 1);
  EXPECT_EQ(taint.telemetry.CounterValue("knox2/taint/commands"), 1u);
  EXPECT_EQ(taint.telemetry.CounterValue("knox2/taint/leaks"), 0u);
}

TEST(Knox2Taint, FlagsSecretBranch) {
  std::string leaky = R"(
void handle(u8 *state, u8 *cmd, u8 *resp) {
  for (u32 i = 0; i < RESPONSE_SIZE; i = i + 1) { resp[i] = 0; }
  if (state[0] == cmd[0]) {
    resp[0] = 1;
  } else {
    resp[0] = 2;
  }
}
)";
  const App& app = hsm::HasherApp();
  HsmBuildOptions options;
  options.source_override = leaky;
  options.taint_tracking = true;
  HsmSystem system(app, options);
  Rng rng(29);
  Bytes state = rng.RandomBytes(app.state_size());
  Bytes cmd = app.RandomValidCommand(rng);
  auto taint = RunTaintCheck(system, state, {cmd});
  bool found = false;
  for (const auto& leak : taint.leaks) {
    if (leak.what.find("branch") != std::string::npos) {
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

}  // namespace
}  // namespace parfait::knox2
