// Equivalence proofs for the simulator fast paths (machine.h "Performance
// architecture"): decode caches, the word-packed definedness bitmap, and the
// dirty-page journal must be invisible — every observable (memory bytes, per-byte
// definedness, registers, pc, instret, fetch results) stays bit-identical to the
// plain interpretation.
#include <gtest/gtest.h>

#include <memory>

#include "src/riscv/assembler.h"
#include "src/riscv/machine.h"
#include "src/riscv/translator.h"
#include "src/support/bytes.h"

namespace parfait::riscv {
namespace {

constexpr uint32_t kRomBase = 0x00000000;
constexpr uint32_t kRamBase = 0x20000000;
constexpr uint32_t kRomSize = 64 * 1024;
constexpr uint32_t kRamSize = 64 * 1024;

// Hand-encoded RV32I words for code planted in RAM.
constexpr uint32_t kAddiA0X0_1 = 0x00100513;  // addi a0, x0, 1
constexpr uint32_t kAddiA0X0_2 = 0x00200513;  // addi a0, x0, 2
constexpr uint32_t kEcall = 0x00000073;

Bytes Word(uint32_t w) {
  Bytes b(4);
  StoreLe32(b.data(), w);
  return b;
}

// Assembles and loads a program the way ModelAsm loads an image: ROM read-only, RAM
// writable and *initially undefined* (so the definedness bitmap paths are exercised),
// sp at the top of RAM, pc at _start.
Machine Load(const std::string& asm_text) {
  auto program = ParseAssembly(asm_text);
  EXPECT_TRUE(program.ok()) << program.error();
  auto image = program.value().Link(kRomBase, kRamBase);
  EXPECT_TRUE(image.ok()) << image.error();
  Machine m;
  m.AddRegion("rom", kRomBase, kRomSize, /*writable=*/false);
  m.AddRegion("ram", kRamBase, kRamSize, /*writable=*/true, /*initially_defined=*/false);
  m.WriteMemory(kRomBase, image.value().rom);
  const Image& img = image.value();
  if (img.data_size > 0) {
    Bytes init = m.ReadMemory(img.SymbolOrDie("__data_lma"), img.data_size);
    m.WriteMemory(img.SymbolOrDie("__data_start"), init);
  }
  m.set_pc(image.value().SymbolOrDie("_start"));
  m.set_reg(2, Value::Defined(kRamBase + kRamSize));  // sp at top of RAM.
  return m;
}

// Full observable-state comparison: bytes, per-byte definedness, registers, pc,
// instret, fault reason.
void ExpectSameState(const Machine& a, const Machine& b) {
  EXPECT_EQ(a.ReadMemory(kRomBase, kRomSize), b.ReadMemory(kRomBase, kRomSize));
  EXPECT_EQ(a.ReadMemory(kRamBase, kRamSize), b.ReadMemory(kRamBase, kRamSize));
  for (uint32_t addr = kRamBase; addr < kRamBase + kRamSize; addr++) {
    if (a.AllDefined(addr, 1) != b.AllDefined(addr, 1)) {
      FAIL() << "definedness mismatch at 0x" << std::hex << addr;
    }
  }
  for (uint8_t i = 0; i < 32; i++) {
    EXPECT_EQ(a.reg(i), b.reg(i)) << "register x" << int{i};
  }
  EXPECT_EQ(a.pc(), b.pc());
  EXPECT_EQ(a.instret(), b.instret());
  EXPECT_EQ(a.fault_reason(), b.fault_reason());
}

// A run that dirties many pages (word and byte stores across 16 KiB of RAM) and ends
// with registers derived from loads, covering store/load fast paths.
constexpr const char* kDirtyingProgram = R"(
  _start:
    li t0, 0x20000000
    li t1, 0
    li t2, 64
  loop:
    sw t1, 0(t0)
    sb t1, 5(t0)
    addi t0, t0, 256
    addi t1, t1, 1
    blt t1, t2, loop
    li t3, 0x20000000
    lw a0, 0(t3)
    lb a1, 261(t3)
    ecall
)";

TEST(MachineJournal, FastResetMatchesFreshMachine) {
  Machine proto = Load(kDirtyingProgram);
  proto.EnableDirtyJournal();
  Machine fresh = proto;   // Never run: the oracle.
  Machine reused = proto;  // Run, then fast-reset.

  ASSERT_EQ(reused.Run(100000), Machine::StepResult::kHalt) << reused.fault_reason();
  EXPECT_GT(reused.instret(), 0u);
  reused.ResetTo(proto);
  EXPECT_EQ(reused.TakePerfCounters().fast_resets, 1u);
  ExpectSameState(reused, fresh);
}

TEST(MachineJournal, RunAfterFastResetMatchesRunOnFreshMachine) {
  Machine proto = Load(kDirtyingProgram);
  proto.EnableDirtyJournal();
  Machine fresh = proto;
  Machine reused = proto;

  ASSERT_EQ(reused.Run(100000), Machine::StepResult::kHalt) << reused.fault_reason();
  reused.ResetTo(proto);
  ASSERT_EQ(reused.Run(100000), Machine::StepResult::kHalt) << reused.fault_reason();
  ASSERT_EQ(fresh.Run(100000), Machine::StepResult::kHalt) << fresh.fault_reason();
  ExpectSameState(reused, fresh);
}

TEST(MachineJournal, ResetRestoresSelfModifiedCode) {
  // Code lives in (writable, journaled) RAM; the run overwrites it. Reset must
  // restore both the bytes and the fetch behavior (no stale local decode entries).
  Machine proto;
  proto.AddRegion("ram", kRamBase, kRamSize, /*writable=*/true);
  proto.WriteMemory(kRamBase, Word(kAddiA0X0_1));
  proto.WriteMemory(kRamBase + 4, Word(kEcall));
  proto.set_pc(kRamBase);
  proto.EnableDirtyJournal();

  Machine m = proto;
  ASSERT_EQ(m.Run(10), Machine::StepResult::kHalt);
  EXPECT_EQ(m.reg(10), Value::Defined(1));

  m.WriteMemory(kRamBase, Word(kAddiA0X0_2));
  m.set_pc(kRamBase);
  ASSERT_EQ(m.Run(10), Machine::StepResult::kHalt);
  EXPECT_EQ(m.reg(10), Value::Defined(2));

  m.ResetTo(proto);
  ASSERT_EQ(m.Run(10), Machine::StepResult::kHalt);
  EXPECT_EQ(m.reg(10), Value::Defined(1));
}

TEST(MachineDecode, StoreEvictsCachedDecode) {
  // Executed stores (not just WriteMemory) must invalidate the per-machine decode
  // cache: the program rewrites its RAM continuation and jumps to it.
  Machine m = Load(R"(
    _start:
      li t0, 0x20000000
      li t1, 0x00100513
      sw t1, 0(t0)
      li t1, 0x00000073
      sw t1, 4(t0)
      jr t0
  )");
  // First, execute planted RAM code once so its decode is cached.
  m.WriteMemory(kRamBase, Word(kAddiA0X0_2));
  m.WriteMemory(kRamBase + 4, Word(kEcall));
  uint32_t start = m.pc();
  m.set_pc(kRamBase);
  ASSERT_EQ(m.Run(10), Machine::StepResult::kHalt);
  EXPECT_EQ(m.reg(10), Value::Defined(2));
  // The ROM program overwrites word 0 with "addi a0, x0, 1"; a stale cache entry
  // would still yield 2.
  m.set_pc(start);
  ASSERT_EQ(m.Run(1000), Machine::StepResult::kHalt) << m.fault_reason();
  EXPECT_EQ(m.reg(10), Value::Defined(1));
}

TEST(MachineDecode, SharedCacheMatchesUncachedRun) {
  const char* program = R"(
    _start:
      li a0, 0
      li t1, 10
    loop:
      addi a0, a0, 3
      addi t1, t1, -1
      bnez t1, loop
      ecall
  )";
  Machine plain = Load(program);
  Machine cached = Load(program);
  auto cache = std::make_shared<DecodeCache>(kRomBase, cached.ReadMemory(kRomBase, kRomSize));
  cached.AttachDecodeCache(cache);

  ASSERT_EQ(plain.Run(1000), Machine::StepResult::kHalt);
  ASSERT_EQ(cached.Run(1000), Machine::StepResult::kHalt);
  EXPECT_EQ(plain.reg(10), cached.reg(10));
  EXPECT_EQ(plain.instret(), cached.instret());
  EXPECT_EQ(plain.pc(), cached.pc());
  auto perf = cached.TakePerfCounters();
  if (cached.backend() == Machine::Backend::kDBT) {
    // DBT dispatches whole blocks instead of per-instruction decode lookups.
    EXPECT_GT(perf.block_hits, 0u);
  } else {
    EXPECT_GT(perf.decode_hits, 0u);
  }
}

// The benchmark "before" leg (DisableDecodeCache: linear region scan, byte-per-byte
// definedness shadow, Decode() on every fetch) must stay bit-equivalent to the
// production fast paths across stores, loads, and definedness propagation.
TEST(MachineDecode, ReferenceModeMatchesCachedRun) {
  Machine cached = Load(kDirtyingProgram);
  auto cache = std::make_shared<DecodeCache>(kRomBase, cached.ReadMemory(kRomBase, kRomSize));
  cached.AttachDecodeCache(cache);
  Machine reference = Load(kDirtyingProgram);
  reference.DisableDecodeCache();

  EXPECT_EQ(cached.PeekInstr().has_value(), reference.PeekInstr().has_value());
  ASSERT_EQ(cached.Run(100000), Machine::StepResult::kHalt) << cached.fault_reason();
  ASSERT_EQ(reference.Run(100000), Machine::StepResult::kHalt)
      << reference.fault_reason();
  ExpectSameState(cached, reference);
  EXPECT_EQ(reference.TakePerfCounters().decode_hits, 0u);
}

TEST(MachineDecode, OneCacheServesManyMachines) {
  const char* program = R"(
    _start:
      li a0, 123
      ecall
  )";
  Machine a = Load(program);
  auto cache = std::make_shared<DecodeCache>(kRomBase, a.ReadMemory(kRomBase, kRomSize));
  a.AttachDecodeCache(cache);
  Machine b = a;  // Copies share the cache (shared_ptr, immutable).
  ASSERT_EQ(a.Run(10), Machine::StepResult::kHalt);
  ASSERT_EQ(b.Run(10), Machine::StepResult::kHalt);
  EXPECT_EQ(a.reg(10), Value::Defined(123));
  EXPECT_EQ(b.reg(10), Value::Defined(123));
}

TEST(MachineDecode, PeekInstrServedByCache) {
  Machine m = Load(R"(
    _start:
      li a0, 5
      ecall
  )");
  auto cache = std::make_shared<DecodeCache>(kRomBase, m.ReadMemory(kRomBase, kRomSize));
  m.AttachDecodeCache(cache);
  auto peek = m.PeekInstr();
  ASSERT_TRUE(peek.has_value());
  auto perf = m.TakePerfCounters();
  EXPECT_GT(perf.decode_hits, 0u);
  // Peek must agree with what Step executes.
  ASSERT_EQ(m.Step(), Machine::StepResult::kOk);
  EXPECT_EQ(m.reg(peek->rd), Value::Defined(5));
}

TEST(MachineDefinedness, PartialWriteLeavesWordUndefined) {
  Machine m = Load(R"(
    _start:
      li t0, 0x20000100
      li t1, 0xaa
      sb t1, 0(t0)
      lw a0, 0(t0)
      sb t1, 1(t0)
      sb t1, 2(t0)
      sb t1, 3(t0)
      lw a1, 0(t0)
      ecall
  )");
  ASSERT_EQ(m.Run(1000), Machine::StepResult::kHalt) << m.fault_reason();
  EXPECT_FALSE(m.reg(10).defined) << "3 of 4 bytes never written";
  EXPECT_EQ(m.reg(11), Value::Defined(0xaaaaaaaa));
  EXPECT_TRUE(m.AllDefined(0x20000100, 4));
  EXPECT_FALSE(m.AllDefined(0x20000104, 1));
}

TEST(MachineDefinedness, UndefinednessTravelsThroughMemory) {
  Machine m = Load(R"(
    _start:
      li t0, 0x20000200
      lw a0, 0(t0)
      sw a0, 8(t0)
      lw a1, 8(t0)
      li a2, 7
      ecall
  )");
  ASSERT_EQ(m.Run(1000), Machine::StepResult::kHalt) << m.fault_reason();
  EXPECT_FALSE(m.reg(10).defined) << "load of never-written RAM";
  EXPECT_FALSE(m.reg(11).defined) << "undef store then load";
  EXPECT_EQ(m.reg(12), Value::Defined(7));
  EXPECT_FALSE(m.AllDefined(0x20000208, 4));
}

TEST(MachineDefinedness, UndefinedStoreIntoDefinedRegionBreaksUniformity) {
  // A region that is uniformly defined must materialize its bitmap when an undefined
  // value lands in it, and only the stored bytes become undefined.
  Machine n;
  n.AddRegion("code", kRomBase, 4096, /*writable=*/false);
  n.AddRegion("ram", kRamBase, 4096, /*writable=*/true, /*initially_defined=*/true);
  n.AddRegion("scratch", 0x30000000, 4096, /*writable=*/true, /*initially_defined=*/false);
  // lw a0, 0(t0); sw a0, 0(t1); ecall   with t0 -> scratch, t1 -> ram.
  n.WriteMemory(kRomBase + 0, Word(0x0002a503));  // lw a0, 0(t0)
  n.WriteMemory(kRomBase + 4, Word(0x00a32023));  // sw a0, 0(t1)
  n.WriteMemory(kRomBase + 8, Word(kEcall));
  n.set_reg(5, Value::Defined(0x30000000));  // t0
  n.set_reg(6, Value::Defined(kRamBase));    // t1
  n.set_pc(kRomBase);
  ASSERT_EQ(n.Run(10), Machine::StepResult::kHalt) << n.fault_reason();
  EXPECT_FALSE(n.reg(10).defined);
  EXPECT_FALSE(n.AllDefined(kRamBase, 4)) << "stored undefined bytes";
  EXPECT_TRUE(n.AllDefined(kRamBase + 4, 4092 - 4)) << "rest of the region untouched";
}

TEST(MachineDefinedness, WriteMemoryDefinesBytes) {
  Machine m;
  m.AddRegion("ram", kRamBase, 4096, /*writable=*/true, /*initially_defined=*/false);
  EXPECT_FALSE(m.AllDefined(kRamBase, 1));
  m.WriteMemory(kRamBase + 8, Bytes{1, 2, 3});
  EXPECT_TRUE(m.AllDefined(kRamBase + 8, 3));
  EXPECT_FALSE(m.AllDefined(kRamBase + 8, 4));
  EXPECT_FALSE(m.AllDefined(kRamBase + 7, 2));
  EXPECT_EQ(m.ReadMemory(kRamBase + 8, 3), (Bytes{1, 2, 3}));
}

TEST(MachineDefinedness, FetchFromUndefinedMemoryFaults) {
  Machine m;
  m.AddRegion("ram", kRamBase, 4096, /*writable=*/true, /*initially_defined=*/false);
  m.set_pc(kRamBase);
  EXPECT_EQ(m.Step(), Machine::StepResult::kFault);
  EXPECT_TRUE(m.fault_reason().find("instruction fetch of undefined memory") == 0)
      << m.fault_reason();
}

TEST(MachineRegions, LookupHitsLastHitCache) {
  Machine m = Load(kDirtyingProgram);
  ASSERT_EQ(m.Run(100000), Machine::StepResult::kHalt);
  auto perf = m.TakePerfCounters();
  EXPECT_GT(perf.region_cache_hits, 0u);
}

// ---------------------------------------------------------------------------
// DBT backend equivalence proofs. Each test pins the backend explicitly (the
// PARFAIT_BACKEND default additionally runs the *whole* file under DBT in CI),
// with the reference interpreter or the cached interpreter as the oracle.
// ---------------------------------------------------------------------------

TEST(MachineDbt, MatchesReferenceInterpreterOnDirtyingProgram) {
  Machine reference = Load(kDirtyingProgram);
  reference.DisableDecodeCache();
  Machine interp = Load(kDirtyingProgram);
  interp.SetBackend(Machine::Backend::kInterpreter);
  Machine dbt = Load(kDirtyingProgram);
  dbt.SetBackend(Machine::Backend::kDBT);

  ASSERT_EQ(reference.Run(100000), Machine::StepResult::kHalt) << reference.fault_reason();
  ASSERT_EQ(interp.Run(100000), Machine::StepResult::kHalt) << interp.fault_reason();
  ASSERT_EQ(dbt.Run(100000), Machine::StepResult::kHalt) << dbt.fault_reason();
  ExpectSameState(dbt, reference);
  ExpectSameState(dbt, interp);
}

TEST(MachineDbt, SharedTranslationCacheMatchesAndLinks) {
  Machine interp = Load(kDirtyingProgram);
  interp.SetBackend(Machine::Backend::kInterpreter);
  Machine dbt = Load(kDirtyingProgram);
  auto decode = std::make_shared<DecodeCache>(kRomBase, dbt.ReadMemory(kRomBase, kRomSize));
  dbt.AttachDecodeCache(decode);
  dbt.AttachTranslationCache(std::make_shared<SharedTranslationCache>(decode));
  dbt.SetBackend(Machine::Backend::kDBT);

  ASSERT_EQ(interp.Run(100000), Machine::StepResult::kHalt) << interp.fault_reason();
  ASSERT_EQ(dbt.Run(100000), Machine::StepResult::kHalt) << dbt.fault_reason();
  ExpectSameState(dbt, interp);
  auto perf = dbt.TakePerfCounters();
  EXPECT_GT(perf.block_translations, 0u);
  EXPECT_GT(perf.block_hits, 0u);
  // The loop's backward branch is a static edge: taken iterations chain directly.
  EXPECT_GT(perf.block_links, 0u);
}

TEST(MachineDbt, OneTranslationCacheServesManyMachines) {
  Machine a = Load(kDirtyingProgram);
  auto decode = std::make_shared<DecodeCache>(kRomBase, a.ReadMemory(kRomBase, kRomSize));
  a.AttachDecodeCache(decode);
  a.AttachTranslationCache(std::make_shared<SharedTranslationCache>(decode));
  a.SetBackend(Machine::Backend::kDBT);
  Machine b = a;  // Copies share the translation cache (shared_ptr, immutable).
  ASSERT_EQ(a.Run(100000), Machine::StepResult::kHalt);
  ASSERT_EQ(b.Run(100000), Machine::StepResult::kHalt);
  ExpectSameState(a, b);
  // The first machine translated the reachable blocks; the copy reused them all.
  EXPECT_GT(a.TakePerfCounters().block_translations, 0u);
  EXPECT_EQ(b.TakePerfCounters().block_translations, 0u);
}

TEST(MachineDbt, StoreToCodeInvalidatesTranslatedBlocks) {
  // The StoreEvictsCachedDecode scenario under DBT: the ROM program rewrites the
  // RAM continuation it already executed (and that DBT already translated).
  auto build = [] {
    Machine m = Load(R"(
      _start:
        li t0, 0x20000000
        li t1, 0x00100513
        sw t1, 0(t0)
        li t1, 0x00000073
        sw t1, 4(t0)
        jr t0
    )");
    m.WriteMemory(kRamBase, Word(kAddiA0X0_2));
    m.WriteMemory(kRamBase + 4, Word(kEcall));
    return m;
  };
  Machine interp = build();
  interp.SetBackend(Machine::Backend::kInterpreter);
  Machine dbt = build();
  dbt.SetBackend(Machine::Backend::kDBT);
  for (Machine* m : {&interp, &dbt}) {
    uint32_t start = m->pc();
    m->set_pc(kRamBase);
    ASSERT_EQ(m->Run(10), Machine::StepResult::kHalt);
    EXPECT_EQ(m->reg(10), Value::Defined(2));
    m->set_pc(start);
    ASSERT_EQ(m->Run(1000), Machine::StepResult::kHalt) << m->fault_reason();
    EXPECT_EQ(m->reg(10), Value::Defined(1));
  }
  ExpectSameState(dbt, interp);
  EXPECT_GT(dbt.TakePerfCounters().block_invalidations, 0u);
}

TEST(MachineDbt, SelfInvalidatingBlockBailsAndRetranslates) {
  // A block that overwrites its *own* later instructions mid-execution: the store
  // retires, the dead block bails to dispatch, and the rewritten code runs.
  auto build = [] {
    Machine m;
    m.AddRegion("ram", kRamBase, 4096, /*writable=*/true);
    m.WriteMemory(kRamBase + 0, Word(0x0062a423));  // sw t1, 8(t0)
    m.WriteMemory(kRamBase + 4, Word(0x00000013));  // nop
    m.WriteMemory(kRamBase + 8, Word(kAddiA0X0_2)); // overwritten before it runs
    m.WriteMemory(kRamBase + 12, Word(kEcall));
    m.set_reg(5, Value::Defined(kRamBase));          // t0
    m.set_reg(6, Value::Defined(kAddiA0X0_1));       // t1: the replacement word
    m.set_pc(kRamBase);
    return m;
  };
  Machine interp = build();
  interp.SetBackend(Machine::Backend::kInterpreter);
  Machine dbt = build();
  dbt.SetBackend(Machine::Backend::kDBT);
  ASSERT_EQ(interp.Run(10), Machine::StepResult::kHalt) << interp.fault_reason();
  ASSERT_EQ(dbt.Run(10), Machine::StepResult::kHalt) << dbt.fault_reason();
  EXPECT_EQ(interp.reg(10), Value::Defined(1)) << "interpreter must see the rewrite";
  EXPECT_EQ(dbt.reg(10), Value::Defined(1)) << "translated block must not run stale code";
  EXPECT_EQ(dbt.instret(), interp.instret());
  EXPECT_EQ(dbt.pc(), interp.pc());
  EXPECT_GT(dbt.TakePerfCounters().block_invalidations, 0u);
}

TEST(MachineDbt, FaultPcAndReasonMatchInterpreter) {
  const char* program = R"(
    _start:
      li t0, 0x20000001
      lw a0, 0(t0)
      ecall
  )";
  Machine interp = Load(program);
  interp.SetBackend(Machine::Backend::kInterpreter);
  Machine dbt = Load(program);
  dbt.SetBackend(Machine::Backend::kDBT);
  ASSERT_EQ(interp.Run(100), Machine::StepResult::kFault);
  ASSERT_EQ(dbt.Run(100), Machine::StepResult::kFault);
  // Fault strings embed pc and instret, so string equality pins both.
  EXPECT_EQ(dbt.fault_reason(), interp.fault_reason());
  EXPECT_TRUE(dbt.fault_reason().find("misaligned load") == 0) << dbt.fault_reason();
  ExpectSameState(dbt, interp);
}

TEST(MachineDbt, StepLimitMatchesInterpreterMidBlock) {
  // Budgets that end inside a translated block must retire exactly the same
  // instructions the interpreter would.
  for (uint64_t budget : {1u, 2u, 3u, 7u, 57u, 58u, 59u}) {
    Machine interp = Load(kDirtyingProgram);
    interp.SetBackend(Machine::Backend::kInterpreter);
    Machine dbt = Load(kDirtyingProgram);
    dbt.SetBackend(Machine::Backend::kDBT);
    Machine::StepResult ri = interp.Run(budget);
    Machine::StepResult rd = dbt.Run(budget);
    EXPECT_EQ(ri, rd) << "budget " << budget;
    ExpectSameState(dbt, interp);
  }
}

}  // namespace
}  // namespace parfait::riscv
