#include <gtest/gtest.h>

#include "src/crypto/ecdsa.h"
#include "src/crypto/hmac.h"
#include "src/support/bytes.h"
#include "src/support/rng.h"

namespace parfait::crypto {
namespace {

std::array<uint8_t, 32> RandomScalarBytes(Rng& rng) {
  std::array<uint8_t, 32> out;
  rng.Fill(out);
  out[0] &= 0x7f;  // Comfortably below the group order.
  if (std::all_of(out.begin(), out.end(), [](uint8_t b) { return b == 0; })) {
    out[31] = 1;
  }
  return out;
}

TEST(Ecdsa, SignVerifyRoundTrip) {
  Rng rng(1);
  auto key = RandomScalarBytes(rng);
  auto nonce = RandomScalarBytes(rng);
  std::array<uint8_t, 32> msg;
  rng.Fill(msg);

  EcdsaSignature sig;
  ASSERT_TRUE(EcdsaSign(msg, key, nonce, &sig));

  std::array<uint8_t, 32> px;
  std::array<uint8_t, 32> py;
  ASSERT_TRUE(EcdsaPublicKey(key, px, py));
  EXPECT_TRUE(EcdsaVerify(msg, px, py, sig));
}

TEST(Ecdsa, VerifyRejectsWrongMessage) {
  Rng rng(2);
  auto key = RandomScalarBytes(rng);
  auto nonce = RandomScalarBytes(rng);
  std::array<uint8_t, 32> msg;
  rng.Fill(msg);

  EcdsaSignature sig;
  ASSERT_TRUE(EcdsaSign(msg, key, nonce, &sig));
  std::array<uint8_t, 32> px;
  std::array<uint8_t, 32> py;
  ASSERT_TRUE(EcdsaPublicKey(key, px, py));

  msg[7] ^= 1;
  EXPECT_FALSE(EcdsaVerify(msg, px, py, sig));
}

TEST(Ecdsa, VerifyRejectsTamperedSignature) {
  Rng rng(3);
  auto key = RandomScalarBytes(rng);
  auto nonce = RandomScalarBytes(rng);
  std::array<uint8_t, 32> msg;
  rng.Fill(msg);

  EcdsaSignature sig;
  ASSERT_TRUE(EcdsaSign(msg, key, nonce, &sig));
  std::array<uint8_t, 32> px;
  std::array<uint8_t, 32> py;
  ASSERT_TRUE(EcdsaPublicKey(key, px, py));

  EcdsaSignature bad = sig;
  bad.s[31] ^= 1;
  EXPECT_FALSE(EcdsaVerify(msg, px, py, bad));
  bad = sig;
  bad.r[0] ^= 0x80;
  EXPECT_FALSE(EcdsaVerify(msg, px, py, bad));
}

TEST(Ecdsa, VerifyRejectsWrongKey) {
  Rng rng(4);
  auto key = RandomScalarBytes(rng);
  auto other_key = RandomScalarBytes(rng);
  auto nonce = RandomScalarBytes(rng);
  std::array<uint8_t, 32> msg;
  rng.Fill(msg);

  EcdsaSignature sig;
  ASSERT_TRUE(EcdsaSign(msg, key, nonce, &sig));
  std::array<uint8_t, 32> px;
  std::array<uint8_t, 32> py;
  ASSERT_TRUE(EcdsaPublicKey(other_key, px, py));
  EXPECT_FALSE(EcdsaVerify(msg, px, py, sig));
}

TEST(Ecdsa, DeterministicGivenSameNonce) {
  Rng rng(5);
  auto key = RandomScalarBytes(rng);
  auto nonce = RandomScalarBytes(rng);
  std::array<uint8_t, 32> msg;
  rng.Fill(msg);

  EcdsaSignature s1;
  EcdsaSignature s2;
  ASSERT_TRUE(EcdsaSign(msg, key, nonce, &s1));
  ASSERT_TRUE(EcdsaSign(msg, key, nonce, &s2));
  EXPECT_EQ(s1.r, s2.r);
  EXPECT_EQ(s1.s, s2.s);
}

TEST(Ecdsa, DifferentNoncesGiveDifferentSignatures) {
  Rng rng(6);
  auto key = RandomScalarBytes(rng);
  auto n1 = RandomScalarBytes(rng);
  auto n2 = RandomScalarBytes(rng);
  std::array<uint8_t, 32> msg;
  rng.Fill(msg);

  EcdsaSignature s1;
  EcdsaSignature s2;
  ASSERT_TRUE(EcdsaSign(msg, key, n1, &s1));
  ASSERT_TRUE(EcdsaSign(msg, key, n2, &s2));
  EXPECT_NE(s1.r, s2.r);
}

TEST(Ecdsa, ZeroNonceFailsWithZeroedOutput) {
  Rng rng(7);
  auto key = RandomScalarBytes(rng);
  std::array<uint8_t, 32> zero_nonce{};
  std::array<uint8_t, 32> msg;
  rng.Fill(msg);

  EcdsaSignature sig;
  sig.r.fill(0xaa);
  sig.s.fill(0xbb);
  EXPECT_FALSE(EcdsaSign(msg, key, zero_nonce, &sig));
  EXPECT_EQ(sig.r, (std::array<uint8_t, 32>{}));
  EXPECT_EQ(sig.s, (std::array<uint8_t, 32>{}));
}

TEST(Ecdsa, ZeroKeyFails) {
  Rng rng(8);
  std::array<uint8_t, 32> zero_key{};
  auto nonce = RandomScalarBytes(rng);
  std::array<uint8_t, 32> msg;
  rng.Fill(msg);
  EcdsaSignature sig;
  EXPECT_FALSE(EcdsaSign(msg, zero_key, nonce, &sig));
}

TEST(Ecdsa, OutOfRangeNonceFails) {
  Rng rng(9);
  auto key = RandomScalarBytes(rng);
  std::array<uint8_t, 32> huge_nonce;
  huge_nonce.fill(0xff);  // >= n.
  std::array<uint8_t, 32> msg;
  rng.Fill(msg);
  EcdsaSignature sig;
  EXPECT_FALSE(EcdsaSign(msg, key, huge_nonce, &sig));
}

TEST(Ecdsa, PublicKeyRejectsZero) {
  std::array<uint8_t, 32> zero{};
  std::array<uint8_t, 32> px;
  std::array<uint8_t, 32> py;
  EXPECT_FALSE(EcdsaPublicKey(zero, px, py));
}

TEST(Ecdsa, HmacDerivedNoncePipelineMatchesSpec) {
  // The exact construction from the paper's figure 4: nonce = HMAC-SHA256(prf_key,
  // big-endian counter).
  Rng rng(10);
  auto prf_key = rng.RandomBytes(32);
  auto key = RandomScalarBytes(rng);
  std::array<uint8_t, 32> msg;
  rng.Fill(msg);

  uint8_t counter_bytes[8];
  StoreBe64(counter_bytes, 41);
  auto nonce = HmacSha256(prf_key, std::span<const uint8_t>(counter_bytes, 8));

  EcdsaSignature sig;
  ASSERT_TRUE(EcdsaSign(msg, key, nonce, &sig));
  std::array<uint8_t, 32> px;
  std::array<uint8_t, 32> py;
  ASSERT_TRUE(EcdsaPublicKey(key, px, py));
  EXPECT_TRUE(EcdsaVerify(msg, px, py, sig));
}

class EcdsaManyKeys : public testing::TestWithParam<uint64_t> {};

TEST_P(EcdsaManyKeys, RoundTrip) {
  Rng rng(GetParam());
  auto key = RandomScalarBytes(rng);
  auto nonce = RandomScalarBytes(rng);
  std::array<uint8_t, 32> msg;
  rng.Fill(msg);
  EcdsaSignature sig;
  ASSERT_TRUE(EcdsaSign(msg, key, nonce, &sig));
  std::array<uint8_t, 32> px;
  std::array<uint8_t, 32> py;
  ASSERT_TRUE(EcdsaPublicKey(key, px, py));
  EXPECT_TRUE(EcdsaVerify(msg, px, py, sig));
}

INSTANTIATE_TEST_SUITE_P(Seeds, EcdsaManyKeys, testing::Values(100, 101, 102));

}  // namespace
}  // namespace parfait::crypto
