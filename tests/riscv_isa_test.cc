#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/riscv/assembler.h"
#include "src/riscv/disasm.h"
#include "src/riscv/isa.h"
#include "src/support/bytes.h"
#include "src/support/rng.h"

namespace parfait::riscv {
namespace {

// Assembles a single instruction line and returns its encoded word, or nullopt if
// the text fails to parse or link.
std::optional<uint32_t> AssembleOne(const std::string& line) {
  auto program = ParseAssembly("f:\n  " + line + "\n");
  if (!program.ok()) {
    return std::nullopt;
  }
  auto image = program.value().Link(0x0, 0x20000000);
  if (!image.ok() || image.value().rom.size() < 4) {
    return std::nullopt;
  }
  return LoadLe32(image.value().rom.data());
}

// assemble(disassemble(instr)) must reproduce a functionally identical instruction:
// the disassembler's text is valid assembler input and loses no operand information.
void ExpectDisasmRoundTrip(const Instr& in) {
  std::string text = Disassemble(in, /*pc=*/0);
  auto word = AssembleOne(text);
  ASSERT_TRUE(word.has_value()) << "unparseable disassembly: " << text;
  auto again = Decode(*word);
  ASSERT_TRUE(again.has_value()) << text;
  EXPECT_EQ(*again, in) << text;
}

TEST(Isa, EncodeDecodeRoundTripAllOps) {
  // Every opcode with representative operands survives an encode/decode round trip.
  const Op ops[] = {
      Op::kLui,   Op::kAuipc, Op::kJal,  Op::kJalr, Op::kBeq,   Op::kBne,    Op::kBlt,
      Op::kBge,   Op::kBltu,  Op::kBgeu, Op::kLb,   Op::kLh,    Op::kLw,     Op::kLbu,
      Op::kLhu,   Op::kSb,    Op::kSh,   Op::kSw,   Op::kAddi,  Op::kSlti,   Op::kSltiu,
      Op::kXori,  Op::kOri,   Op::kAndi, Op::kSlli, Op::kSrli,  Op::kSrai,   Op::kAdd,
      Op::kSub,   Op::kSll,   Op::kSlt,  Op::kSltu, Op::kXor,   Op::kSrl,    Op::kSra,
      Op::kOr,    Op::kAnd,   Op::kMul,  Op::kMulh, Op::kMulhsu, Op::kMulhu, Op::kDiv,
      Op::kDivu,  Op::kRem,   Op::kRemu, Op::kFence, Op::kEcall, Op::kEbreak,
  };
  for (Op op : ops) {
    Instr in{op, 0, 0, 0, 0};
    if (op == Op::kLui || op == Op::kAuipc) {
      in.rd = 5;
      in.imm = static_cast<int32_t>(0x12345000);
    } else if (op == Op::kJal) {
      in.rd = 1;
      in.imm = 2048;
    } else if (op == Op::kJalr || IsLoad(op)) {
      in.rd = 7;
      in.rs1 = 8;
      in.imm = -12;
    } else if (IsBranch(op)) {
      in.rs1 = 3;
      in.rs2 = 4;
      in.imm = -64;
    } else if (IsStore(op)) {
      in.rs1 = 9;
      in.rs2 = 10;
      in.imm = 40;
    } else if (op == Op::kSlli || op == Op::kSrli || op == Op::kSrai) {
      in.rd = 11;
      in.rs1 = 12;
      in.imm = 13;
    } else if (op == Op::kAddi || op == Op::kSlti || op == Op::kSltiu || op == Op::kXori ||
               op == Op::kOri || op == Op::kAndi) {
      in.rd = 14;
      in.rs1 = 15;
      in.imm = -1;
    } else if (op == Op::kFence || op == Op::kEcall || op == Op::kEbreak) {
      // No operands.
    } else {
      in.rd = 20;
      in.rs1 = 21;
      in.rs2 = 22;
    }
    uint32_t word = Encode(in);
    auto decoded = Decode(word);
    ASSERT_TRUE(decoded.has_value()) << Mnemonic(op);
    EXPECT_EQ(*decoded, in) << Mnemonic(op);
  }
}

TEST(Isa, KnownEncodings) {
  // Cross-checked against the RISC-V spec: addi x0,x0,0 (canonical NOP) is 0x00000013.
  EXPECT_EQ(Encode(Instr{Op::kAddi, 0, 0, 0, 0}), 0x00000013u);
  // ecall / ebreak.
  EXPECT_EQ(Encode(Instr{Op::kEcall, 0, 0, 0, 0}), 0x00000073u);
  EXPECT_EQ(Encode(Instr{Op::kEbreak, 0, 0, 0, 0}), 0x00100073u);
  // add x1, x2, x3 = 0x003100b3.
  EXPECT_EQ(Encode(Instr{Op::kAdd, 1, 2, 3, 0}), 0x003100b3u);
  // lui x5, 0x12345 (imm holds the shifted value).
  EXPECT_EQ(Encode(Instr{Op::kLui, 5, 0, 0, 0x12345000}), 0x123452b7u);
}

TEST(Isa, DecodeRejectsGarbage) {
  EXPECT_FALSE(Decode(0x00000000).has_value());
  EXPECT_FALSE(Decode(0xffffffff).has_value());
}

TEST(Isa, BranchImmediateSignedRange) {
  for (int32_t imm : {-4096, -2, 2, 4094}) {
    Instr in{Op::kBeq, 0, 1, 2, imm};
    auto decoded = Decode(Encode(in));
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(decoded->imm, imm) << imm;
  }
}

TEST(Isa, JalImmediateSignedRange) {
  for (int32_t imm : {-(1 << 20), -2, 2, (1 << 20) - 2}) {
    Instr in{Op::kJal, 1, 0, 0, imm};
    auto decoded = Decode(Encode(in));
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(decoded->imm, imm) << imm;
  }
}

TEST(Isa, RandomizedRoundTrip) {
  Rng rng(2024);
  int checked = 0;
  for (int i = 0; i < 20000; i++) {
    uint32_t word = rng.Next32();
    auto decoded = Decode(word);
    if (!decoded.has_value()) {
      continue;
    }
    checked++;
    // Re-encoding a decoded instruction must reproduce functionally identical decoding.
    auto again = Decode(Encode(*decoded));
    ASSERT_TRUE(again.has_value());
    EXPECT_EQ(*again, *decoded);
  }
  EXPECT_GT(checked, 100);  // Sanity: the decoder accepts a reasonable fraction.
}

TEST(Disasm, RoundTripEveryEncodableForm) {
  // Every opcode, swept over representative operand values spanning the encodable
  // range of each field (register extremes, immediate extremes, sign boundaries).
  const std::vector<uint8_t> regs = {0, 1, 2, 5, 15, 31};
  const std::vector<int32_t> imm12 = {-2048, -1, 0, 1, 2047};
  const std::vector<int32_t> shamt = {0, 1, 13, 31};
  const std::vector<int32_t> branch_imm = {-4096, -64, -2, 0, 2, 4094};
  const std::vector<int32_t> jal_imm = {-(1 << 20), -2, 0, 2, (1 << 20) - 2};
  const std::vector<int32_t> upper_imm = {0, 0x1000, 0x12345000,
                                          static_cast<int32_t>(0xfffff000)};

  const Op ops[] = {
      Op::kLui,   Op::kAuipc, Op::kJal,  Op::kJalr, Op::kBeq,   Op::kBne,    Op::kBlt,
      Op::kBge,   Op::kBltu,  Op::kBgeu, Op::kLb,   Op::kLh,    Op::kLw,     Op::kLbu,
      Op::kLhu,   Op::kSb,    Op::kSh,   Op::kSw,   Op::kAddi,  Op::kSlti,   Op::kSltiu,
      Op::kXori,  Op::kOri,   Op::kAndi, Op::kSlli, Op::kSrli,  Op::kSrai,   Op::kAdd,
      Op::kSub,   Op::kSll,   Op::kSlt,  Op::kSltu, Op::kXor,   Op::kSrl,    Op::kSra,
      Op::kOr,    Op::kAnd,   Op::kMul,  Op::kMulh, Op::kMulhsu, Op::kMulhu, Op::kDiv,
      Op::kDivu,  Op::kRem,   Op::kRemu, Op::kFence, Op::kEcall, Op::kEbreak,
  };
  for (Op op : ops) {
    if (op == Op::kFence || op == Op::kEcall || op == Op::kEbreak) {
      ExpectDisasmRoundTrip(Instr{op, 0, 0, 0, 0});
    } else if (op == Op::kLui || op == Op::kAuipc) {
      for (uint8_t rd : regs) {
        for (int32_t imm : upper_imm) {
          ExpectDisasmRoundTrip(Instr{op, rd, 0, 0, imm});
        }
      }
    } else if (op == Op::kJal) {
      for (uint8_t rd : regs) {
        for (int32_t imm : jal_imm) {
          ExpectDisasmRoundTrip(Instr{op, rd, 0, 0, imm});
        }
      }
    } else if (op == Op::kJalr || IsLoad(op)) {
      for (uint8_t rd : regs) {
        for (uint8_t rs1 : regs) {
          for (int32_t imm : imm12) {
            ExpectDisasmRoundTrip(Instr{op, rd, rs1, 0, imm});
          }
        }
      }
    } else if (IsBranch(op)) {
      for (uint8_t rs1 : regs) {
        for (uint8_t rs2 : regs) {
          for (int32_t imm : branch_imm) {
            ExpectDisasmRoundTrip(Instr{op, 0, rs1, rs2, imm});
          }
        }
      }
    } else if (IsStore(op)) {
      for (uint8_t rs1 : regs) {
        for (uint8_t rs2 : regs) {
          for (int32_t imm : imm12) {
            ExpectDisasmRoundTrip(Instr{op, 0, rs1, rs2, imm});
          }
        }
      }
    } else if (op == Op::kSlli || op == Op::kSrli || op == Op::kSrai) {
      for (uint8_t rd : regs) {
        for (uint8_t rs1 : regs) {
          for (int32_t imm : shamt) {
            ExpectDisasmRoundTrip(Instr{op, rd, rs1, 0, imm});
          }
        }
      }
    } else if (op == Op::kAddi || op == Op::kSlti || op == Op::kSltiu || op == Op::kXori ||
               op == Op::kOri || op == Op::kAndi) {
      for (uint8_t rd : regs) {
        for (uint8_t rs1 : regs) {
          for (int32_t imm : imm12) {
            ExpectDisasmRoundTrip(Instr{op, rd, rs1, 0, imm});
          }
        }
      }
    } else {
      for (uint8_t rd : regs) {
        for (uint8_t rs1 : regs) {
          for (uint8_t rs2 : regs) {
            ExpectDisasmRoundTrip(Instr{op, rd, rs1, rs2, 0});
          }
        }
      }
    }
  }
}

TEST(Disasm, RoundTripRandomizedDecodes) {
  // Any word the decoder accepts must survive decode -> disassemble -> reassemble
  // with identical decoded semantics (raw words may differ where encodings have
  // don't-care bits, e.g. fence).
  Rng rng(77);
  int checked = 0;
  for (int i = 0; i < 20000 && checked < 500; i++) {
    uint32_t word = rng.Next32();
    auto decoded = Decode(word);
    if (!decoded.has_value()) {
      continue;
    }
    checked++;
    ExpectDisasmRoundTrip(*decoded);
  }
  EXPECT_GT(checked, 100);
}

TEST(Isa, RegisterNames) {
  EXPECT_STREQ(RegName(0), "zero");
  EXPECT_STREQ(RegName(2), "sp");
  EXPECT_STREQ(RegName(10), "a0");
  EXPECT_EQ(RegFromName("a0"), 10);
  EXPECT_EQ(RegFromName("x31"), 31);
  EXPECT_EQ(RegFromName("fp"), 8);
  EXPECT_FALSE(RegFromName("x32").has_value());
  EXPECT_FALSE(RegFromName("bogus").has_value());
}

TEST(Isa, MnemonicRoundTrip) {
  EXPECT_EQ(OpFromMnemonic("mulhu"), Op::kMulhu);
  EXPECT_STREQ(Mnemonic(Op::kMulhu), "mulhu");
  EXPECT_FALSE(OpFromMnemonic("nonsense").has_value());
}

TEST(Isa, Classification) {
  EXPECT_TRUE(IsBranch(Op::kBgeu));
  EXPECT_FALSE(IsBranch(Op::kJal));
  EXPECT_TRUE(IsJump(Op::kJalr));
  EXPECT_TRUE(IsLoad(Op::kLbu));
  EXPECT_TRUE(IsStore(Op::kSh));
  EXPECT_TRUE(IsMulDiv(Op::kRemu));
  EXPECT_FALSE(IsMulDiv(Op::kAdd));
}

}  // namespace
}  // namespace parfait::riscv
