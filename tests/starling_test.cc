// Starling checks on the real applications, plus injected software bugs (§7.2) that
// the software layer must catch.
#include <gtest/gtest.h>

#include "src/starling/starling.h"

namespace parfait::starling {
namespace {

TEST(Starling, HasherPasses) {
  auto report = CheckApp(hsm::HasherApp());
  EXPECT_TRUE(report.ok) << report.failure;
  EXPECT_GT(report.checks_run, 100);
}

TEST(Starling, EcdsaPasses) {
  StarlingOptions options;
  options.valid_trials = 8;  // Each trial runs full ECDSA signs.
  options.sequence_trials = 1;
  options.sequence_length = 4;
  auto report = CheckApp(hsm::EcdsaApp(), options);
  EXPECT_TRUE(report.ok) << report.failure;
}

}  // namespace
}  // namespace parfait::starling
