// Tests for the leakage-contract subsystem (src/contract/): text-format
// round-trip and strict rejection, the single soc-id refusal shared by lint, TV,
// and Knox2, the conformance pass, and the divergence experiment the ISSUE pins:
// weakening a contract (mul latency marked non-leaking) must flip a seeded
// secret-dependent-mul mutant from caught to missed in both the static lint and
// the dynamic taint emulator, byte-identically at any thread count.
#include "src/contract/contract.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/analysis/lint.h"
#include "src/analysis/tv/tv.h"
#include "src/contract/conformance.h"
#include "src/hsm/app.h"
#include "src/hsm/hsm_system.h"
#include "src/knox2/leakage.h"
#include "src/support/rng.h"

namespace parfait::contract {
namespace {

using hsm::HsmBuildOptions;
using hsm::HsmSystem;

TEST(ContractFormat, SerializeParseRoundTripsByteIdentically) {
  for (const char* soc : {"ibex_lite", "pico_lite", "ibex_lite_vlm", "pico_lite_vlm"}) {
    LeakageContract original = BuiltinContract(soc);
    std::string text = SerializeContract(original);
    auto reparsed = ParseContract(text);
    ASSERT_TRUE(reparsed.ok()) << soc << ": " << reparsed.error();
    EXPECT_EQ(reparsed.value(), original) << soc;
    EXPECT_EQ(SerializeContract(reparsed.value()), text) << soc;
  }
}

TEST(ContractFormat, ParsesEntriesInAnyOrder) {
  std::string text =
      "contract pico_lite v3\n"
      "alu: none\n"
      "div: latency(operands)\n"
      "store: address\n"
      "load: address\n"
      "mul: none\n"
      "jump: target\n"
      "branch: target\n";
  auto parsed = ParseContract(text);
  ASSERT_TRUE(parsed.ok()) << parsed.error();
  EXPECT_EQ(parsed.value().soc, "pico_lite");
  EXPECT_EQ(parsed.value().version, 3);
  EXPECT_TRUE(parsed.value().Leaks(InstrClass::kBranch, kObsTarget));
  EXPECT_FALSE(parsed.value().Leaks(InstrClass::kMul, kObsLatency));
}

TEST(ContractFormat, RejectsMalformedContracts) {
  struct Case {
    const char* name;
    std::string text;
    const char* expect;  // Substring of the error message.
  };
  const std::string valid_tail =
      "branch: target\njump: target\nload: address\nstore: address\n"
      "mul: none\ndiv: latency(operands)\nalu: none\n";
  const Case cases[] = {
      {"empty", "", "missing"},
      {"bad header keyword", "leakage ibex_lite v1\n" + valid_tail, "header"},
      {"bad soc id", "contract Ibex-Lite v1\n" + valid_tail, "SoC id"},
      {"bad version", "contract ibex_lite 1\n" + valid_tail, "version"},
      {"trailing header token", "contract ibex_lite v1 extra\n" + valid_tail, "header"},
      {"unknown class", "contract ibex_lite v1\nvec: none\n" + valid_tail,
       "unknown instruction class"},
      {"duplicate class", "contract ibex_lite v1\nbranch: target\n" + valid_tail,
       "duplicate"},
      {"missing observation kind", "contract ibex_lite v1\nmul:\njump: target\n"
                                   "load: address\nstore: address\nbranch: target\n"
                                   "div: none\nalu: none\n",
       "missing observation"},
      {"unknown observation", "contract ibex_lite v1\nmul: sparkles\njump: target\n"
                              "load: address\nstore: address\nbranch: target\n"
                              "div: none\nalu: none\n",
       "unknown observation"},
      {"inapplicable observation", "contract ibex_lite v1\nalu: target\njump: target\n"
                                   "load: address\nstore: address\nbranch: target\n"
                                   "div: none\nmul: none\n",
       "does not apply"},
      {"missing class",
       "contract ibex_lite v1\nbranch: target\njump: target\nload: address\n"
       "store: address\nmul: none\ndiv: none\n",
       "missing entry"},
  };
  for (const Case& c : cases) {
    auto parsed = ParseContract(c.text);
    ASSERT_FALSE(parsed.ok()) << c.name;
    EXPECT_NE(parsed.error().find(c.expect), std::string::npos)
        << c.name << ": " << parsed.error();
  }
}

TEST(ContractFormat, DiffExplainsPerClassChanges) {
  LeakageContract a = BuiltinContract("ibex_lite");
  LeakageContract b = BuiltinContract("ibex_lite_vlm");
  std::vector<std::string> diffs = DiffContracts(a, b);
  ASSERT_EQ(diffs.size(), 2u);
  EXPECT_EQ(diffs[0], "soc: ibex_lite -> ibex_lite_vlm");
  EXPECT_EQ(diffs[1], "mul: none -> latency(operands)");
  EXPECT_TRUE(DiffContracts(a, a).empty());
}

TEST(ContractFormat, BuiltinsCoverTheModeledSocs) {
  EXPECT_TRUE(HasBuiltinContract("pico_lite_vlm"));
  EXPECT_FALSE(HasBuiltinContract("rocket"));
  EXPECT_FALSE(BuiltinContract("ibex_lite").Leaks(InstrClass::kMul, kObsLatency));
  EXPECT_TRUE(BuiltinContract("ibex_lite_vlm").Leaks(InstrClass::kMul, kObsLatency));
  EXPECT_TRUE(BuiltinContract("pico_lite").Leaks(InstrClass::kDiv, kObsLatency));
  EXPECT_EQ(ContractMismatch(BuiltinContract("ibex_lite"), "ibex_lite"), "");
  EXPECT_NE(ContractMismatch(BuiltinContract("ibex_lite"), "pico_lite"), "");
}

// The single mismatch check, exercised end-to-end in each layer: lint, TV, and
// Knox2 all refuse a contract whose soc id disagrees with the target system.

TEST(ContractRefusal, LintRefusesMismatchedSocId) {
  HsmSystem system(hsm::HasherApp(), HsmBuildOptions{});
  analysis::LintConfig config = analysis::ConfigForSystem(system);
  config.contract = BuiltinContract("pico_lite");
  analysis::LintReport report = analysis::RunLint(system.image(), config);
  EXPECT_FALSE(report.ok);
  EXPECT_NE(report.error.find("pico_lite"), std::string::npos) << report.error;
}

TEST(ContractRefusal, TvRefusesMismatchedSocId) {
  HsmSystem system(hsm::HasherApp(), HsmBuildOptions{});
  LeakageContract wrong = BuiltinContract("pico_lite");
  analysis::TvConfig config;
  config.contract = &wrong;
  analysis::TvReport report = analysis::ValidateSystem(system, config);
  EXPECT_FALSE(report.ok);
  EXPECT_NE(report.error.find("pico_lite"), std::string::npos) << report.error;
}

TEST(ContractRefusal, Knox2RefusesMismatchedSocId) {
  HsmBuildOptions build;
  build.taint_tracking = true;
  HsmSystem system(hsm::HasherApp(), build);
  LeakageContract wrong = BuiltinContract("pico_lite");
  knox2::TaintCheckOptions options;
  options.contract = &wrong;
  Rng rng(11);
  Bytes state = rng.RandomBytes(hsm::HasherApp().state_size());
  knox2::TaintCheckResult result = knox2::RunTaintCheck(
      system, state, {hsm::HasherApp().RandomValidCommand(rng)}, options);
  EXPECT_NE(result.error.find("pico_lite"), std::string::npos) << result.error;
  EXPECT_TRUE(result.leaks.empty());
  EXPECT_EQ(result.checks_run, 0);
}

TEST(Conformance, StockFirmwareIsCleanAgainstItsOwnContract) {
  HsmSystem system(hsm::HasherApp(), HsmBuildOptions{});
  ConformanceReport report = CheckConformance(system, BuiltinContract(system.soc_id()));
  ASSERT_TRUE(report.ok) << report.error;
  EXPECT_TRUE(report.Clean());
  EXPECT_EQ(report.soc_id, "ibex_lite");
  EXPECT_GT(report.telemetry.CounterValue("contract/static_checks"), 0u);
}

TEST(Conformance, RefusesMismatchAndTaintlessDynamic) {
  HsmSystem system(hsm::HasherApp(), HsmBuildOptions{});
  ConformanceReport mismatched =
      CheckConformance(system, BuiltinContract("pico_lite"));
  EXPECT_FALSE(mismatched.ok);
  ConformanceOptions dynamic;
  dynamic.dynamic_check = true;
  ConformanceReport taintless =
      CheckConformance(system, BuiltinContract("ibex_lite"), dynamic);
  EXPECT_FALSE(taintless.ok);
  EXPECT_NE(taintless.error.find("taint_tracking"), std::string::npos) << taintless.error;
}

// The divergence experiment: a secret-dependent multiply on the variable-latency
// multiplier. The honest `_vlm` contract catches it in both the static lint and
// the dynamic taint emulator; the weakened contract (mul: none, same soc id so it
// is accepted) makes both layers miss it — proving the layers really do consume
// the artifact rather than private policy tables.

const char* kSecretMulApp = R"(
void handle(u8 *state, u8 *cmd, u8 *resp) {
  for (u32 i = 0; i < RESPONSE_SIZE; i = i + 1) { resp[i] = 0; }
  u32 tag = (u32)cmd[0];
  if (tag == 2) {
    u32 s = ((u32)state[0] << 24) | ((u32)state[1] << 16) | ((u32)state[2] << 8)
            | (u32)state[3];
    u32 acc = 0;
    for (u32 i = 0; i < 32; i = i + 1) { acc = acc + s * (u32)cmd[1 + i]; }
    resp[0] = 2;
    resp[1] = (u8)acc;
    return;
  }
}
)";

HsmSystem MulMutantSystem() {
  HsmBuildOptions build;
  build.source_override = kSecretMulApp;
  build.variable_latency_mul = true;
  build.taint_tracking = true;
  return HsmSystem(hsm::HasherApp(), build);
}

LeakageContract WeakenedVlmContract() {
  LeakageContract weakened = BuiltinContract("ibex_lite_vlm");
  weakened.obs[static_cast<size_t>(InstrClass::kMul)] = kObsNone;
  return weakened;
}

size_t CountLintSecretMuls(const analysis::LintReport& report) {
  size_t n = 0;
  for (const analysis::Finding& f : report.findings) {
    n += f.kind == analysis::FindingKind::kSecretMul ? 1 : 0;
  }
  return n;
}

TEST(ContractDivergence, WeakenedContractFlipsLintFromCaughtToMissed) {
  HsmSystem system = MulMutantSystem();
  analysis::LintConfig config = analysis::ConfigForSystem(system);
  ASSERT_TRUE(config.contract.Leaks(InstrClass::kMul, kObsLatency));
  analysis::LintReport caught = analysis::RunLint(system.image(), config);
  ASSERT_TRUE(caught.ok) << caught.error;
  EXPECT_GT(CountLintSecretMuls(caught), 0u);

  config.contract = WeakenedVlmContract();
  analysis::LintReport missed = analysis::RunLint(system.image(), config);
  ASSERT_TRUE(missed.ok) << missed.error;
  EXPECT_EQ(CountLintSecretMuls(missed), 0u);
}

// Flattens a taint run for byte-identity comparisons across thread counts.
std::string TaintSignature(const knox2::TaintCheckResult& result) {
  std::string sig;
  for (const soc::TaintLeak& leak : result.leaks) {
    char buf[16];
    std::snprintf(buf, sizeof(buf), "%08x ", leak.pc);
    sig += buf;
    sig += leak.what;
    sig += '\n';
  }
  return sig;
}

TEST(ContractDivergence, WeakenedContractFlipsKnox2ByteIdenticallyAtAnyThreadCount) {
  HsmSystem system = MulMutantSystem();
  const hsm::App& app = hsm::HasherApp();
  Rng rng(28);
  Bytes state = rng.RandomBytes(app.state_size());
  std::vector<Bytes> commands;
  for (int i = 0; i < 3; i++) {
    Bytes cmd = app.RandomValidCommand(rng);
    cmd[0] = 2;  // Reach the secret multiply.
    commands.push_back(cmd);
  }

  LeakageContract honest = BuiltinContract("ibex_lite_vlm");
  LeakageContract weakened = WeakenedVlmContract();
  std::string honest_sig, weakened_sig;
  for (int threads : {1, 4}) {
    knox2::TaintCheckOptions options;
    options.num_threads = threads;
    options.contract = &honest;
    knox2::TaintCheckResult caught = knox2::RunTaintCheck(system, state, commands, options);
    ASSERT_TRUE(caught.error.empty()) << caught.error;
    EXPECT_FALSE(caught.leaks.empty()) << "threads=" << threads;
    bool mul_leak = false;
    for (const soc::TaintLeak& leak : caught.leaks) {
      mul_leak |= leak.what.find("mul") != std::string::npos;
    }
    EXPECT_TRUE(mul_leak) << "threads=" << threads;

    options.contract = &weakened;
    knox2::TaintCheckResult missed = knox2::RunTaintCheck(system, state, commands, options);
    ASSERT_TRUE(missed.error.empty()) << missed.error;
    EXPECT_TRUE(missed.leaks.empty()) << "threads=" << threads;

    if (threads == 1) {
      honest_sig = TaintSignature(caught);
      weakened_sig = TaintSignature(missed);
    } else {
      EXPECT_EQ(TaintSignature(caught), honest_sig);
      EXPECT_EQ(TaintSignature(missed), weakened_sig);
    }
  }
}

TEST(ContractDivergence, ConformancePassSeesTheSameFlip) {
  HsmSystem system = MulMutantSystem();
  ConformanceOptions options;
  options.dynamic_check = true;
  options.commands = 3;
  ConformanceReport caught =
      CheckConformance(system, BuiltinContract("ibex_lite_vlm"), options);
  ASSERT_TRUE(caught.ok) << caught.error;
  EXPECT_FALSE(caught.Clean());

  ConformanceReport missed = CheckConformance(system, WeakenedVlmContract(), options);
  ASSERT_TRUE(missed.ok) << missed.error;
  EXPECT_EQ(CountLintSecretMuls(missed.lint), 0u);
}

}  // namespace
}  // namespace parfait::contract
