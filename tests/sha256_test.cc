#include <gtest/gtest.h>

#include <string>

#include "src/crypto/sha256.h"
#include "src/support/bytes.h"
#include "src/support/rng.h"

namespace parfait::crypto {
namespace {

Bytes Ascii(const std::string& s) { return Bytes(s.begin(), s.end()); }

std::string HashHex(const Bytes& data) {
  auto d = Sha256::Hash(data);
  return ToHex(d);
}

// FIPS 180-4 / NIST CAVP known-answer vectors.
TEST(Sha256, EmptyString) {
  EXPECT_EQ(HashHex({}), "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256, Abc) {
  EXPECT_EQ(HashHex(Ascii("abc")),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256, TwoBlockMessage) {
  EXPECT_EQ(HashHex(Ascii("abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq")),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256, MillionAs) {
  Sha256 h;
  Bytes chunk(1000, 'a');
  for (int i = 0; i < 1000; i++) {
    h.Update(chunk);
  }
  EXPECT_EQ(ToHex(h.Final()),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256, IncrementalMatchesOneShot) {
  Rng rng(1234);
  for (int trial = 0; trial < 50; trial++) {
    Bytes data = rng.RandomBytes(rng.Below(500));
    auto oneshot = Sha256::Hash(data);
    Sha256 h;
    size_t pos = 0;
    while (pos < data.size()) {
      size_t take = std::min<size_t>(rng.Below(64) + 1, data.size() - pos);
      h.Update(std::span<const uint8_t>(data.data() + pos, take));
      pos += take;
    }
    EXPECT_EQ(h.Final(), oneshot) << "trial " << trial;
  }
}

// Length edge cases around the padding boundary (55/56/64 bytes).
class Sha256PaddingBoundary : public testing::TestWithParam<size_t> {};

TEST_P(Sha256PaddingBoundary, MatchesIncremental) {
  size_t n = GetParam();
  Bytes data(n, 0x5a);
  auto oneshot = Sha256::Hash(data);
  Sha256 h;
  for (size_t i = 0; i < n; i++) {
    h.Update(std::span<const uint8_t>(&data[i], 1));
  }
  EXPECT_EQ(h.Final(), oneshot);
}

INSTANTIATE_TEST_SUITE_P(Boundaries, Sha256PaddingBoundary,
                         testing::Values(0, 1, 54, 55, 56, 57, 63, 64, 65, 119, 120, 128));

TEST(Sha256, DistinctInputsDistinctDigests) {
  Rng rng(99);
  Bytes a = rng.RandomBytes(32);
  Bytes b = a;
  b[0] ^= 1;
  EXPECT_NE(Sha256::Hash(a), Sha256::Hash(b));
}

}  // namespace
}  // namespace parfait::crypto
