#include <gtest/gtest.h>

#include <string>

#include "src/crypto/blake2s.h"
#include "src/support/bytes.h"
#include "src/support/rng.h"

namespace parfait::crypto {
namespace {

Bytes Ascii(const std::string& s) { return Bytes(s.begin(), s.end()); }

// RFC 7693 appendix / reference-implementation known-answer vectors.
TEST(Blake2s, EmptyString) {
  EXPECT_EQ(ToHex(Blake2s::Hash({})),
            "69217a3079908094e11121d042354a7c1f55b6482ca1a51e1b250dfd1ed0eef9");
}

TEST(Blake2s, Abc) {
  EXPECT_EQ(ToHex(Blake2s::Hash(Ascii("abc"))),
            "508c5e8c327c14e2e1a72ba34eeb452f37458b209ed63a294d999b4c86675982");
}

TEST(Blake2s, IncrementalMatchesOneShot) {
  Rng rng(777);
  for (int trial = 0; trial < 50; trial++) {
    Bytes data = rng.RandomBytes(rng.Below(400));
    auto oneshot = Blake2s::Hash(data);
    Blake2s h;
    size_t pos = 0;
    while (pos < data.size()) {
      size_t take = std::min<size_t>(rng.Below(70) + 1, data.size() - pos);
      h.Update(std::span<const uint8_t>(data.data() + pos, take));
      pos += take;
    }
    EXPECT_EQ(h.Final(), oneshot) << "trial " << trial;
  }
}

class Blake2sBlockBoundary : public testing::TestWithParam<size_t> {};

TEST_P(Blake2sBlockBoundary, MatchesBytewise) {
  size_t n = GetParam();
  Bytes data(n, 0xa5);
  auto oneshot = Blake2s::Hash(data);
  Blake2s h;
  for (size_t i = 0; i < n; i++) {
    h.Update(std::span<const uint8_t>(&data[i], 1));
  }
  EXPECT_EQ(h.Final(), oneshot);
}

INSTANTIATE_TEST_SUITE_P(Boundaries, Blake2sBlockBoundary,
                         testing::Values(0, 1, 63, 64, 65, 127, 128, 129, 200));

TEST(Blake2s, DistinctInputsDistinctDigests) {
  Bytes a(64, 0);
  Bytes b(64, 0);
  b[63] = 1;
  EXPECT_NE(Blake2s::Hash(a), Blake2s::Hash(b));
}

TEST(Blake2s, LengthAffectsDigest) {
  Bytes a(64, 0);
  Bytes b(65, 0);
  EXPECT_NE(Blake2s::Hash(a), Blake2s::Hash(b));
}

}  // namespace
}  // namespace parfait::crypto
