// Tests for the telemetry subsystem: deterministic counter/histogram folds, RAII
// spans (closing on every exit path, exceptions included), evidence artifacts, the
// disabled-mode "records nothing" guarantee, and the Chrome-trace JSON sink.
#include "src/support/telemetry.h"

#include <gtest/gtest.h>

#include <cctype>
#include <cstdio>
#include <stdexcept>
#include <string>

#include "src/support/profiler.h"

namespace parfait::telemetry {
namespace {

// ---- A minimal JSON syntax checker (enough to validate the trace sink's output
// without a JSON dependency): values, objects, arrays, strings with escapes,
// numbers, true/false/null. ----

class JsonChecker {
 public:
  explicit JsonChecker(const std::string& text) : s_(text) {}

  bool Valid() {
    SkipWs();
    if (!Value()) {
      return false;
    }
    SkipWs();
    return pos_ == s_.size();
  }

 private:
  void SkipWs() {
    while (pos_ < s_.size() && (s_[pos_] == ' ' || s_[pos_] == '\t' || s_[pos_] == '\n' ||
                                s_[pos_] == '\r')) {
      pos_++;
    }
  }
  bool Literal(const char* lit) {
    size_t n = std::char_traits<char>::length(lit);
    if (s_.compare(pos_, n, lit) != 0) {
      return false;
    }
    pos_ += n;
    return true;
  }
  bool String() {
    if (pos_ >= s_.size() || s_[pos_] != '"') {
      return false;
    }
    pos_++;
    while (pos_ < s_.size() && s_[pos_] != '"') {
      if (s_[pos_] == '\\') {
        pos_++;
        if (pos_ >= s_.size()) {
          return false;
        }
        char e = s_[pos_];
        if (e == 'u') {
          for (int i = 0; i < 4; i++) {
            pos_++;
            if (pos_ >= s_.size() || !std::isxdigit(static_cast<unsigned char>(s_[pos_]))) {
              return false;
            }
          }
        } else if (e != '"' && e != '\\' && e != '/' && e != 'b' && e != 'f' && e != 'n' &&
                   e != 'r' && e != 't') {
          return false;
        }
      } else if (static_cast<unsigned char>(s_[pos_]) < 0x20) {
        return false;  // Control characters must be escaped.
      }
      pos_++;
    }
    if (pos_ >= s_.size()) {
      return false;
    }
    pos_++;  // Closing quote.
    return true;
  }
  bool Number() {
    size_t start = pos_;
    if (pos_ < s_.size() && s_[pos_] == '-') {
      pos_++;
    }
    while (pos_ < s_.size() && (std::isdigit(static_cast<unsigned char>(s_[pos_])) ||
                                s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E' ||
                                s_[pos_] == '+' || s_[pos_] == '-')) {
      pos_++;
    }
    return pos_ > start;
  }
  bool Value() {
    SkipWs();
    if (pos_ >= s_.size()) {
      return false;
    }
    char c = s_[pos_];
    if (c == '{') {
      pos_++;
      SkipWs();
      if (pos_ < s_.size() && s_[pos_] == '}') {
        pos_++;
        return true;
      }
      while (true) {
        SkipWs();
        if (!String()) {
          return false;
        }
        SkipWs();
        if (pos_ >= s_.size() || s_[pos_] != ':') {
          return false;
        }
        pos_++;
        if (!Value()) {
          return false;
        }
        SkipWs();
        if (pos_ < s_.size() && s_[pos_] == ',') {
          pos_++;
          continue;
        }
        break;
      }
      if (pos_ >= s_.size() || s_[pos_] != '}') {
        return false;
      }
      pos_++;
      return true;
    }
    if (c == '[') {
      pos_++;
      SkipWs();
      if (pos_ < s_.size() && s_[pos_] == ']') {
        pos_++;
        return true;
      }
      while (true) {
        if (!Value()) {
          return false;
        }
        SkipWs();
        if (pos_ < s_.size() && s_[pos_] == ',') {
          pos_++;
          continue;
        }
        break;
      }
      if (pos_ >= s_.size() || s_[pos_] != ']') {
        return false;
      }
      pos_++;
      return true;
    }
    if (c == '"') {
      return String();
    }
    if (c == 't') {
      return Literal("true");
    }
    if (c == 'f') {
      return Literal("false");
    }
    if (c == 'n') {
      return Literal("null");
    }
    return Number();
  }

  const std::string& s_;
  size_t pos_ = 0;
};

bool IsValidJson(const std::string& text) { return JsonChecker(text).Valid(); }

// ---- Deterministic aggregates ----

TEST(HistogramSummary, RecordTracksCountSumMinMax) {
  HistogramSummary h;
  h.Record(7);
  h.Record(3);
  h.Record(11);
  EXPECT_EQ(h.count, 3u);
  EXPECT_EQ(h.sum, 21u);
  EXPECT_EQ(h.min, 3u);
  EXPECT_EQ(h.max, 11u);
}

TEST(HistogramSummary, MergeIsOrderIndependent) {
  HistogramSummary a;
  a.Record(5);
  a.Record(9);
  HistogramSummary b;
  b.Record(2);

  HistogramSummary ab = a;
  ab.Merge(b);
  HistogramSummary ba = b;
  ba.Merge(a);
  EXPECT_EQ(ab, ba);
  EXPECT_EQ(ab.count, 3u);
  EXPECT_EQ(ab.min, 2u);
  EXPECT_EQ(ab.max, 9u);

  // Merging an empty summary is the identity (min stays untouched).
  HistogramSummary empty;
  HistogramSummary a2 = a;
  a2.Merge(empty);
  EXPECT_EQ(a2, a);
}

TEST(TelemetrySnapshot, CountersAccumulateAndMergeBitIdentically) {
  TelemetrySnapshot a;
  a.AddCounter("x/trials", 3);
  a.AddCounter("x/trials", 2);
  a.RecordValue("x/per_trial", 4);
  EXPECT_EQ(a.CounterValue("x/trials"), 5u);
  EXPECT_EQ(a.CounterValue("absent"), 0u);

  TelemetrySnapshot b;
  b.AddCounter("x/trials", 7);
  b.AddCounter("y/cycles", 100);
  b.RecordValue("x/per_trial", 9);

  // Simulates the 1-thread vs N-thread folds: the same per-trial deltas merged in
  // the same index order must be equal — and serialize byte-identically.
  TelemetrySnapshot merged_once;
  merged_once.Merge(a);
  merged_once.Merge(b);
  TelemetrySnapshot folded;
  folded.AddCounter("x/trials", 3);
  folded.AddCounter("x/trials", 2);
  folded.RecordValue("x/per_trial", 4);
  folded.AddCounter("x/trials", 7);
  folded.AddCounter("y/cycles", 100);
  folded.RecordValue("x/per_trial", 9);
  EXPECT_EQ(merged_once, folded);
  EXPECT_EQ(merged_once.ToJson(), folded.ToJson());
  EXPECT_EQ(merged_once.CounterValue("x/trials"), 12u);
}

TEST(TelemetrySnapshot, ToJsonIsSortedAndValid) {
  TelemetrySnapshot s;
  s.AddCounter("b", 2);
  s.AddCounter("a", 1);
  s.RecordValue("h", 5);
  std::string json = s.ToJson();
  EXPECT_TRUE(IsValidJson(json)) << json;
  // std::map ordering: "a" serializes before "b" regardless of insertion order.
  EXPECT_LT(json.find("\"a\""), json.find("\"b\""));
  EXPECT_EQ(json,
            "{\"counters\":{\"a\":1,\"b\":2},"
            "\"histograms\":{\"h\":{\"count\":1,\"sum\":5,\"min\":5,\"max\":5}}}");
}

TEST(Evidence, SerializesFieldsInInsertionOrderWithEscaping) {
  Evidence e;
  e.checker = "starling";
  e.Add("seed", uint64_t{1234});
  e.Add("failure", "line1\nline\"2\"");
  std::string json = e.ToJson();
  EXPECT_TRUE(IsValidJson(json)) << json;
  EXPECT_LT(json.find("seed"), json.find("failure"));
  EXPECT_NE(json.find("\\n"), std::string::npos);
  EXPECT_NE(json.find("\\\"2\\\""), std::string::npos);
}

// ---- Registry: disabled mode records nothing ----

TEST(Telemetry, DisabledRegistryRecordsNothing) {
  Telemetry t;
  ASSERT_FALSE(t.enabled());
  t.Count("x", 5);
  t.Record("h", 9);
  TelemetrySnapshot delta;
  delta.AddCounter("y", 1);
  t.Merge(delta);
  Evidence e;
  e.checker = "c";
  t.RecordEvidence(e);
  {
    Span span(t, "scope");
    Span nested(t, "inner");
  }
  EXPECT_TRUE(t.Snapshot().empty());
  EXPECT_TRUE(t.evidence().empty());
  EXPECT_TRUE(t.trace_events().empty());
}

TEST(Telemetry, EnabledRegistryAggregates) {
  Telemetry t;
  t.Enable();
  t.Count("x", 2);
  t.Count("x");
  t.Record("h", 4);
  TelemetrySnapshot delta;
  delta.AddCounter("x", 10);
  t.Merge(delta);
  auto snapshot = t.Snapshot();
  EXPECT_EQ(snapshot.CounterValue("x"), 13u);
  EXPECT_EQ(snapshot.histograms().at("h").sum, 4u);
  // Spans feed the span/<name> duration histogram even without tracing.
  { Span span(t, "work"); }
  EXPECT_EQ(t.Snapshot().histograms().at("span/work").count, 1u);
  // No tracing was armed, so no trace events accumulate.
  EXPECT_TRUE(t.trace_events().empty());

  t.Reset();
  EXPECT_TRUE(t.Snapshot().empty());
  EXPECT_TRUE(t.enabled()) << "Reset clears data, not flags";
}

// ---- Spans: nesting, exception safety, tracing ----

TEST(Telemetry, SpansNestAndCloseUnderExceptions) {
  Telemetry t;
  t.EnableTracing();
  try {
    Span outer(t, "outer");
    Span inner(t, "inner");
    throw std::runtime_error("boom");
  } catch (const std::runtime_error&) {
  }
  auto events = t.trace_events();
  ASSERT_EQ(events.size(), 2u);
  // Destruction order closes the inner span first; both events are complete ('X')
  // and the inner one nests within the outer's [ts, ts+dur] window.
  const TraceEvent& inner = events[0];
  const TraceEvent& outer = events[1];
  EXPECT_EQ(inner.name, "inner");
  EXPECT_EQ(outer.name, "outer");
  EXPECT_EQ(inner.ph, 'X');
  EXPECT_EQ(outer.ph, 'X');
  EXPECT_GE(inner.ts_ns, outer.ts_ns);
  EXPECT_LE(inner.ts_ns + inner.dur_ns, outer.ts_ns + outer.dur_ns);
  // Both spans also landed in the duration histograms.
  auto snapshot = t.Snapshot();
  EXPECT_EQ(snapshot.histograms().at("span/outer").count, 1u);
  EXPECT_EQ(snapshot.histograms().at("span/inner").count, 1u);
}

TEST(Telemetry, RecordEvidenceEmitsInstantEventWhenTracing) {
  Telemetry t;
  t.EnableTracing();
  Evidence e;
  e.checker = "starling";
  e.Add("trial_index", uint64_t{7});
  t.RecordEvidence(e);
  ASSERT_EQ(t.evidence().size(), 1u);
  EXPECT_EQ(t.evidence()[0].checker, "starling");
  auto events = t.trace_events();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].ph, 'i');
  EXPECT_EQ(events[0].name, "starling/counterexample");
  ASSERT_EQ(events[0].args.size(), 1u);
  EXPECT_EQ(events[0].args[0].first, "trial_index");
  EXPECT_EQ(events[0].args[0].second, "7");
}

// ---- The Chrome-trace JSON sink ----

TEST(Telemetry, TraceJsonIsValidChromeTrace) {
  Telemetry t;
  t.EnableTracing();
  {
    Span a(t, "phase/one");
    Span b(t, "phase\\with \"quotes\"");
  }
  Evidence e;
  e.checker = "knox2/selfcomp";
  e.Add("divergence", "handshake\ndiverged");
  t.RecordEvidence(e);

  std::string json = t.TraceJson();
  EXPECT_TRUE(IsValidJson(json)) << json;
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"displayTimeUnit\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
}

TEST(Telemetry, WriteTraceRoundTripsThroughAFile) {
  Telemetry t;
  t.EnableTracing();
  { Span span(t, "io"); }
  const std::string path = "telemetry_test_trace.json";
  ASSERT_TRUE(t.WriteTrace(path));
  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::string contents;
  char buf[4096];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    contents.append(buf, n);
  }
  std::fclose(f);
  std::remove(path.c_str());
  EXPECT_EQ(contents, t.TraceJson());
  EXPECT_TRUE(IsValidJson(contents)) << contents;
}

TEST(Telemetry, AddCompleteEventAppearsInTraceWithArgs) {
  Telemetry t;
  t.EnableTracing();
  t.AddCompleteEvent("knox2/cosim", 1000, 250, {{"unit", "app=ecdsa cmd=2"}});
  auto events = t.trace_events();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].name, "knox2/cosim");
  EXPECT_EQ(events[0].ph, 'X');
  EXPECT_EQ(events[0].ts_ns, 1000u);
  EXPECT_EQ(events[0].dur_ns, 250u);
  ASSERT_EQ(events[0].args.size(), 1u);
  EXPECT_EQ(events[0].args[0].first, "unit");
  EXPECT_EQ(events[0].args[0].second, "app=ecdsa cmd=2");
  std::string trace = t.TraceJson();
  EXPECT_TRUE(IsValidJson(trace)) << trace;
  EXPECT_NE(trace.find("app=ecdsa cmd=2"), std::string::npos);
}

TEST(Telemetry, AddCompleteEventIsANoOpWithoutTracing) {
  Telemetry t;
  t.Enable();  // Metrics on, tracing off.
  t.AddCompleteEvent("never", 0, 1, {});
  EXPECT_TRUE(t.trace_events().empty());
}

TEST(Telemetry, RegistryProbeCountsAcquisitionsWhenProfilerEnabled) {
  // The registry's hot mutex carries a contention probe (Probe::kTelemetryRegistry).
  // With the profiler armed, every Count/Record acquisition ticks the probe; the
  // probe itself never takes a lock, so this is safe inside the registry's own path.
  auto& prof = profiler::Profiler::Global();
  ASSERT_FALSE(prof.enabled());
  Telemetry t;
  t.Enable();
  prof.Enable();
  uint64_t before = prof.waits(profiler::Probe::kTelemetryRegistry).acquires;
  t.Count("probe/counter");
  t.Record("probe/histogram", 7);
  prof.Disable();
  uint64_t after = prof.waits(profiler::Probe::kTelemetryRegistry).acquires;
  prof.Reset();
  EXPECT_GE(after - before, 2u);
  // Disabled again: acquisitions no longer tick.
  uint64_t quiesced = prof.waits(profiler::Probe::kTelemetryRegistry).acquires;
  t.Count("probe/counter");
  EXPECT_EQ(prof.waits(profiler::Probe::kTelemetryRegistry).acquires, quiesced);
}

TEST(Telemetry, TelemetrySpanMacroUsesTheGlobalRegistry) {
  // The global registry is disabled in tests, so the macro must be a no-op that
  // still compiles and nests syntactically.
  ASSERT_FALSE(Telemetry::Global().enabled());
  size_t before = Telemetry::Global().trace_events().size();
  {
    TELEMETRY_SPAN("macro/outer");
    TELEMETRY_SPAN("macro/inner");
  }
  EXPECT_EQ(Telemetry::Global().trace_events().size(), before);
}

}  // namespace
}  // namespace parfait::telemetry
