// Tests for the static leakage lint: CFG recovery, the zero-findings verdict on the
// stock firmware, detection of seeded constant-time bugs with provenance, and the
// dynamic cross-check classification.
#include <gtest/gtest.h>

#include <string>

#include "src/analysis/cfg.h"
#include "src/analysis/crosscheck.h"
#include "src/analysis/lint.h"
#include "src/hsm/app.h"
#include "src/hsm/hsm_system.h"
#include "src/minicc/compiler.h"
#include "src/platform/firmware.h"

namespace parfait::analysis {
namespace {

using hsm::HsmBuildOptions;
using hsm::HsmSystem;

// The stock hasher handle() with a seeded secret-dependent branch: an early exit
// when the secret's first byte is zero (the same §7.2 bug knox2_test seeds).
std::string SecretBranchMutant() {
  return platform::ReadFirmwareFile("hash.c") + R"(
void handle(u8 *state, u8 *cmd, u8 *resp) {
  for (u32 i = 0; i < RESPONSE_SIZE; i = i + 1) { resp[i] = 0; }
  u32 tag = (u32)cmd[0];
  if (tag == 1) {
    for (u32 i = 0; i < 32; i = i + 1) { state[i] = cmd[1 + i]; }
    resp[0] = 1;
    return;
  }
  if (tag == 2) {
    u8 digest[32];
    if (state[0] == 0) {
      for (u32 i = 0; i < 32; i = i + 1) { digest[i] = 0; }  /* "fast path" */
    } else {
      hmac_blake2s(digest, state, cmd + 1, 32);
    }
    resp[0] = 2;
    for (u32 i = 0; i < 32; i = i + 1) { resp[1 + i] = digest[i]; }
    return;
  }
}
)";
}

// A seeded secret-indexed table lookup: the response leaks a cmd byte selected by
// the secret (a classic cache/SRAM-timing side channel shape).
std::string SecretIndexMutant(const char* guard_tag) {
  std::string source = platform::ReadFirmwareFile("hash.c") + R"(
void handle(u8 *state, u8 *cmd, u8 *resp) {
  for (u32 i = 0; i < RESPONSE_SIZE; i = i + 1) { resp[i] = 0; }
  u32 tag = (u32)cmd[0];
  if (tag == 1) {
    for (u32 i = 0; i < 32; i = i + 1) { state[i] = cmd[1 + i]; }
    resp[0] = 1;
    return;
  }
  if (tag == GUARD) {
    u8 digest[32];
    hmac_blake2s(digest, state, cmd + 1, 32);
    resp[0] = 2;
    for (u32 i = 0; i < 32; i = i + 1) { resp[1 + i] = digest[i]; }
    resp[1] = cmd[1 + ((u32)state[0] & 15)];  /* secret-indexed lookup */
    return;
  }
}
)";
  size_t at = source.find("GUARD");
  source.replace(at, 5, guard_tag);
  return source;
}

bool HasKind(const LintReport& report, FindingKind kind) {
  for (const Finding& f : report.findings) {
    if (f.kind == kind) {
      return true;
    }
  }
  return false;
}

TEST(Cfg, RecoversFunctionsFromSymbolSideTable) {
  HsmSystem system(hsm::HasherApp(), HsmBuildOptions{});
  auto cfg = BuildCfg(system.image());
  ASSERT_TRUE(cfg.ok()) << cfg.error();
  const Cfg& graph = cfg.value();
  EXPECT_GT(graph.functions.size(), 5u);
  EXPECT_GT(graph.instr_count, 100u);

  bool found_start = false;
  bool found_handle = false;
  for (const auto& [entry, fn] : graph.functions) {
    if (fn.name == "_start") {
      found_start = true;
    }
    if (fn.name == "handle") {
      found_handle = true;
    }
    // Blocks exactly partition the function extent.
    uint32_t expect = fn.entry;
    for (const auto& [start, block] : fn.blocks) {
      EXPECT_EQ(start, expect) << fn.name;
      EXPECT_GT(block.end, block.start);
      expect = block.end;
    }
    EXPECT_EQ(expect, fn.entry + fn.size) << fn.name;
    // FunctionContaining agrees with the extent.
    EXPECT_EQ(graph.FunctionContaining(fn.entry), &fn);
    EXPECT_EQ(graph.FunctionContaining(fn.entry + fn.size - 4), &fn);
  }
  EXPECT_TRUE(found_start);
  EXPECT_TRUE(found_handle);
  // O0 emits no computed jumps: every jalr is the `ret` shape.
  EXPECT_TRUE(graph.indirect_jumps.empty());
}

TEST(Lint, StockHasherIsClean) {
  HsmSystem system(hsm::HasherApp(), HsmBuildOptions{});
  LintReport report = RunLintForSystem(system);
  ASSERT_TRUE(report.ok) << report.error;
  EXPECT_TRUE(report.findings.empty());
  EXPECT_GT(report.telemetry.CounterValue("lint/instrs_analyzed"), 1000u);
  EXPECT_GT(report.telemetry.CounterValue("lint/fixpoint_iters"), 100u);
  EXPECT_EQ(report.telemetry.CounterValue("lint/findings"), 0u);
  EXPECT_EQ(report.caveats.unresolved_indirect_jumps, 0u);
  EXPECT_EQ(report.caveats.recursion_cutoffs, 0u);
}

TEST(Lint, StockEcdsaIsClean) {
  HsmSystem system(hsm::EcdsaApp(), HsmBuildOptions{});
  LintReport report = RunLintForSystem(system);
  ASSERT_TRUE(report.ok) << report.error;
  EXPECT_TRUE(report.findings.empty());
  EXPECT_EQ(report.caveats.unresolved_indirect_jumps, 0u);
}

TEST(Lint, DeterministicAcrossRuns) {
  HsmSystem system(hsm::HasherApp(), HsmBuildOptions{});
  LintReport a = RunLintForSystem(system);
  LintReport b = RunLintForSystem(system);
  ASSERT_TRUE(a.ok);
  ASSERT_TRUE(b.ok);
  EXPECT_EQ(a.findings.size(), b.findings.size());
  EXPECT_EQ(a.telemetry.ToJson(), b.telemetry.ToJson());
}

TEST(Lint, FlagsSeededSecretBranch) {
  HsmBuildOptions options;
  options.source_override = SecretBranchMutant();
  HsmSystem system(hsm::HasherApp(), options);
  LintReport report = RunLintForSystem(system);
  ASSERT_TRUE(report.ok) << report.error;
  ASSERT_TRUE(HasKind(report, FindingKind::kSecretBranch));

  const Finding* branch = nullptr;
  for (const Finding& f : report.findings) {
    if (f.kind == FindingKind::kSecretBranch) {
      branch = &f;
      break;
    }
  }
  EXPECT_EQ(branch->function, "handle");
  // The provenance chain explains the flow: a load of the secret, rooted at the
  // FRAM seed region.
  ASSERT_GE(branch->provenance.size(), 2u);
  EXPECT_NE(branch->provenance.front().find("loaded at pc"), std::string::npos);
  EXPECT_NE(branch->provenance.back().find("FRAM secret region"), std::string::npos);
}

TEST(Lint, FlagsSeededSecretIndexedLoad) {
  HsmBuildOptions options;
  options.source_override = SecretIndexMutant("2");
  HsmSystem system(hsm::HasherApp(), options);
  LintReport report = RunLintForSystem(system);
  ASSERT_TRUE(report.ok) << report.error;
  ASSERT_TRUE(HasKind(report, FindingKind::kSecretLoad));
  for (const Finding& f : report.findings) {
    if (f.kind == FindingKind::kSecretLoad) {
      EXPECT_EQ(f.function, "handle");
      EXPECT_NE(f.provenance.back().find("FRAM secret region"), std::string::npos);
    }
  }
}

TEST(CrossCheckTest, ConfirmsSeededBranch) {
  HsmBuildOptions options;
  options.source_override = SecretBranchMutant();
  options.taint_tracking = true;
  HsmSystem system(hsm::HasherApp(), options);
  LintReport report = RunLintForSystem(system);
  ASSERT_TRUE(report.ok) << report.error;
  ASSERT_FALSE(report.findings.empty());

  CrossCheckResult cross = CrossCheck(system, report);
  EXPECT_GE(cross.confirmed, 1);
  bool branch_confirmed = false;
  for (const auto& item : cross.items) {
    if (item.finding.kind == FindingKind::kSecretBranch && item.confirmed) {
      branch_confirmed = true;
      EXPECT_GT(item.dynamic_hits, 0u);
    }
  }
  EXPECT_TRUE(branch_confirmed);
  // The static pass predicted every dynamic violation the replay produced.
  EXPECT_TRUE(cross.unpredicted.empty());
}

TEST(CrossCheckTest, ConfirmsSeededIndexedLoad) {
  HsmBuildOptions options;
  options.source_override = SecretIndexMutant("2");
  options.taint_tracking = true;
  HsmSystem system(hsm::HasherApp(), options);
  LintReport report = RunLintForSystem(system);
  ASSERT_TRUE(report.ok) << report.error;

  CrossCheckResult cross = CrossCheck(system, report);
  bool load_confirmed = false;
  for (const auto& item : cross.items) {
    if (item.finding.kind == FindingKind::kSecretLoad && item.confirmed) {
      load_confirmed = true;
    }
  }
  EXPECT_TRUE(load_confirmed);
}

TEST(CrossCheckTest, ClassifiesUnreachedFinding) {
  // The bug hides behind tag 3, which RandomValidCommand never generates: the
  // static pass still flags it (every path is analyzed), the dynamic replay cannot
  // reach it, and the cross-check says so instead of silently dropping it.
  HsmBuildOptions options;
  options.source_override = SecretIndexMutant("3");
  options.taint_tracking = true;
  HsmSystem system(hsm::HasherApp(), options);
  LintReport report = RunLintForSystem(system);
  ASSERT_TRUE(report.ok) << report.error;
  ASSERT_TRUE(HasKind(report, FindingKind::kSecretLoad));

  CrossCheckResult cross = CrossCheck(system, report);
  EXPECT_GE(cross.unreached, 1);
  bool load_unreached = false;
  for (const auto& item : cross.items) {
    if (item.finding.kind == FindingKind::kSecretLoad && !item.confirmed) {
      load_unreached = true;
    }
  }
  EXPECT_TRUE(load_unreached);
}

TEST(SecretQualifier, AnnotatesSymbolSideTable) {
  // The MiniC `secret` storage qualifier flows into the assembler's symbol side
  // table as an annotation — the hook a source-level secret declaration uses to
  // reach the analyzer without an out-of-band region list.
  std::string source = R"(
secret u32 master_key[4];
u32 public_counter;
u32 touch() { return master_key[0] + public_counter; }
)";
  riscv::Program program;
  minicc::CodegenOptions options;
  auto compiled = minicc::CompileSource(source, options, &program);
  ASSERT_TRUE(compiled.ok()) << compiled.error();
  auto image = program.Link(0x0, 0x20000000);
  ASSERT_TRUE(image.ok()) << image.error();

  const riscv::SymbolInfo* key = image.value().FindSymbol("master_key");
  ASSERT_NE(key, nullptr);
  EXPECT_EQ(key->kind, riscv::SymbolKind::kObject);
  EXPECT_EQ(key->size, 16u);
  EXPECT_TRUE(key->HasAnnotation("secret"));

  const riscv::SymbolInfo* counter = image.value().FindSymbol("public_counter");
  ASSERT_NE(counter, nullptr);
  EXPECT_FALSE(counter->HasAnnotation("secret"));

  const riscv::SymbolInfo* fn = image.value().FindSymbol("touch");
  ASSERT_NE(fn, nullptr);
  EXPECT_EQ(fn->kind, riscv::SymbolKind::kFunction);
  EXPECT_GT(fn->size, 0u);
}

}  // namespace
}  // namespace parfait::analysis
