// Differential tests at the assembly level: the minicc-compiled firmware executed
// under the abstract RV32IM semantics (model-Asm, figure 8) must agree step-for-step
// with the natively compiled firmware (model-C). By IPR-by-equivalence, this is the
// translation-validation evidence that compilation preserved the whole-command state
// machine.
#include <gtest/gtest.h>

#include "src/hsm/app.h"
#include "src/platform/firmware.h"
#include "src/platform/model_asm.h"
#include "src/support/rng.h"

namespace parfait::platform {
namespace {

using hsm::App;

ModelAsm MakeModel(const App& app, int opt_level) {
  FirmwareConfig config;
  config.app_sources = app.FirmwareSources();
  config.state_size = static_cast<uint32_t>(app.state_size());
  config.command_size = static_cast<uint32_t>(app.command_size());
  config.response_size = static_cast<uint32_t>(app.response_size());
  config.opt_level = opt_level;
  auto image = BuildFirmware(config);
  EXPECT_TRUE(image.ok()) << image.error();
  ModelAsm::Sizes sizes{config.state_size, config.command_size, config.response_size};
  return ModelAsm(image.value(), sizes);
}

struct Case {
  const App* app;
  int opt_level;
};

class ModelAsmMatchesNative : public testing::TestWithParam<Case> {};

TEST_P(ModelAsmMatchesNative, CommandSequence) {
  const App& app = *GetParam().app;
  ModelAsm model = MakeModel(app, GetParam().opt_level);
  Rng rng(42);
  Bytes state = app.InitStateEncoded();
  int steps = app.state_size() > 40 ? 2 : 12;  // ECDSA steps are tens of millions of instrs.
  for (int i = 0; i < steps; i++) {
    Bytes cmd = rng.Below(4) == 0 ? app.RandomInvalidCommand(rng) : app.RandomValidCommand(rng);
    // Native (model-C) execution.
    Bytes native_state = state;
    Bytes native_cmd = cmd;
    Bytes native_resp(app.response_size());
    app.NativeHandle(native_state.data(), native_cmd.data(), native_resp.data());
    // Abstract-machine (model-Asm) execution.
    auto asm_result = model.Step(state, cmd, 400'000'000);
    ASSERT_TRUE(asm_result.ok) << asm_result.fault;
    EXPECT_EQ(asm_result.state, native_state) << app.name() << " step " << i;
    EXPECT_EQ(asm_result.response, native_resp) << app.name() << " step " << i;
    state = native_state;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AppsAndOptLevels, ModelAsmMatchesNative,
    testing::Values(Case{&hsm::HasherApp(), 0}, Case{&hsm::HasherApp(), 2},
                    Case{&hsm::EcdsaApp(), 0}, Case{&hsm::EcdsaApp(), 2}),
    [](const testing::TestParamInfo<Case>& info) {
      std::string name = info.param.app->state_size() > 40 ? "Ecdsa" : "Hasher";
      return name + "_O" + std::to_string(info.param.opt_level);
    });

TEST(ModelAsm, O2ExecutesFewerInstructionsThanO0) {
  const App& app = hsm::HasherApp();
  Rng rng(7);
  Bytes cmd = app.RandomValidCommand(rng);
  cmd[0] = 2;
  uint64_t counts[2];
  int idx = 0;
  for (int opt : {0, 2}) {
    ModelAsm model = MakeModel(app, opt);
    auto r = model.Step(app.InitStateEncoded(), cmd, 100'000'000);
    ASSERT_TRUE(r.ok) << r.fault;
    counts[idx++] = r.instret;
  }
  EXPECT_LT(counts[1], counts[0]);
}

TEST(ModelAsm, FaultsAreReportedNotSilent) {
  const App& app = hsm::HasherApp();
  ModelAsm model = MakeModel(app, 0);
  Bytes cmd = Bytes(app.command_size(), 0);
  cmd[0] = 2;
  auto r = model.Step(app.InitStateEncoded(), cmd, /*max_steps=*/100);  // Too few steps.
  EXPECT_FALSE(r.ok);
  EXPECT_FALSE(r.fault.empty());
}

}  // namespace
}  // namespace parfait::platform
