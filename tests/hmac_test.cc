#include <gtest/gtest.h>

#include <string>

#include "src/crypto/hmac.h"
#include "src/support/bytes.h"
#include "src/support/rng.h"

namespace parfait::crypto {
namespace {

Bytes Ascii(const std::string& s) { return Bytes(s.begin(), s.end()); }

// RFC 4231 test case 1.
TEST(HmacSha256, Rfc4231Case1) {
  Bytes key(20, 0x0b);
  EXPECT_EQ(ToHex(HmacSha256(key, Ascii("Hi There"))),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7");
}

// RFC 4231 test case 2 ("Jefe").
TEST(HmacSha256, Rfc4231Case2) {
  EXPECT_EQ(ToHex(HmacSha256(Ascii("Jefe"), Ascii("what do ya want for nothing?"))),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
}

// RFC 4231 test case 3: 20x 0xaa key, 50x 0xdd data.
TEST(HmacSha256, Rfc4231Case3) {
  Bytes key(20, 0xaa);
  Bytes data(50, 0xdd);
  EXPECT_EQ(ToHex(HmacSha256(key, data)),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe");
}

// Classic "quick brown fox" vector.
TEST(HmacSha256, QuickBrownFox) {
  EXPECT_EQ(
      ToHex(HmacSha256(Ascii("key"), Ascii("The quick brown fox jumps over the lazy dog"))),
      "f7bc83f430538424b13298e6aa6fb143ef4d59a14946175997479dbc2d1a3cd8");
}

TEST(HmacSha256, LongKeyIsHashed) {
  // Keys longer than the block size are hashed first; check self-consistency: a long key
  // and its SHA-256 digest produce the same MAC.
  Bytes long_key(100, 0x42);
  auto digest = Sha256::Hash(long_key);
  Bytes digest_key(digest.begin(), digest.end());
  Bytes data = Ascii("message");
  EXPECT_EQ(HmacSha256(long_key, data), HmacSha256(digest_key, data));
}

TEST(HmacSha256, KeySensitivity) {
  Bytes k1(32, 0x01);
  Bytes k2(32, 0x01);
  k2[31] ^= 0x80;
  Bytes data = Ascii("same data");
  EXPECT_NE(HmacSha256(k1, data), HmacSha256(k2, data));
}

TEST(HmacBlake2s, Deterministic) {
  Rng rng(5);
  Bytes key = rng.RandomBytes(32);
  Bytes data = rng.RandomBytes(64);
  EXPECT_EQ(HmacBlake2s(key, data), HmacBlake2s(key, data));
}

TEST(HmacBlake2s, DataSensitivity) {
  Bytes key(32, 0x7);
  Bytes d1(10, 0);
  Bytes d2(10, 0);
  d2[5] = 1;
  EXPECT_NE(HmacBlake2s(key, d1), HmacBlake2s(key, d2));
}

TEST(HmacBlake2s, DiffersFromHmacSha256) {
  Bytes key(32, 0x7);
  Bytes data(16, 0x9);
  EXPECT_NE(HmacBlake2s(key, data), HmacSha256(key, data));
}

class HmacKeyLengths : public testing::TestWithParam<size_t> {};

TEST_P(HmacKeyLengths, AllKeyLengthsWork) {
  Bytes key(GetParam(), 0x33);
  Bytes data = Ascii("x");
  auto mac1 = HmacSha256(key, data);
  auto mac2 = HmacSha256(key, data);
  EXPECT_EQ(mac1, mac2);
  auto mac_b = HmacBlake2s(key, data);
  EXPECT_EQ(mac_b.size(), 32u);
}

INSTANTIATE_TEST_SUITE_P(Lengths, HmacKeyLengths, testing::Values(0, 1, 31, 32, 63, 64, 65, 128));

}  // namespace
}  // namespace parfait::crypto
