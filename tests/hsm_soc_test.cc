// End-to-end: the complete HSMs running on the simulated SoCs, checked against their
// application specifications through the wire-level driver. This exercises the whole
// stack of table 1 in one go: spec -> bytes -> firmware -> cycles -> wires.
#include <gtest/gtest.h>

#include "src/crypto/ecdsa.h"
#include "src/hsm/hsm_system.h"
#include "src/support/rng.h"

namespace parfait::hsm {
namespace {

using soc::CpuKind;

class HasherOnSoc : public testing::TestWithParam<CpuKind> {};

TEST_P(HasherOnSoc, MatchesSpecOverCommandSequence) {
  const App& app = HasherApp();
  HsmBuildOptions options;
  options.cpu = GetParam();
  HsmSystem system(app, options);
  auto soc = system.NewSoc();
  soc::WireHost host(soc.get());

  Rng rng(11);
  Bytes state = app.InitStateEncoded();
  for (int i = 0; i < 6; i++) {
    Bytes cmd = rng.Below(4) == 0 ? app.RandomInvalidCommand(rng) : app.RandomValidCommand(rng);
    auto wire_resp = host.Transact(cmd, app.response_size(), 30'000'000);
    ASSERT_TRUE(wire_resp.has_value()) << soc->cpu().fault();
    auto spec = app.SpecStepEncoded(state, cmd);
    if (spec.has_value()) {
      EXPECT_EQ(*wire_resp, spec->second) << "step " << i;
      state = spec->first;
    } else {
      EXPECT_EQ(*wire_resp, app.EncodeResponseNone()) << "step " << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Cpus, HasherOnSoc, testing::Values(CpuKind::kIbexLite, CpuKind::kPicoLite),
                         [](const testing::TestParamInfo<CpuKind>& info) {
                           return soc::CpuKindName(info.param);
                         });

TEST(EcdsaOnSoc, SignatureVerifiesAgainstHostCrypto) {
  const App& app = EcdsaApp();
  HsmBuildOptions options;
  options.cpu = CpuKind::kIbexLite;
  HsmSystem system(app, options);
  auto soc = system.NewSoc();
  soc::WireHost host(soc.get());

  Rng rng(12);
  // Initialize with known keys.
  Bytes init(app.command_size());
  rng.Fill(init);
  init[0] = 1;
  init[33] &= 0x7f;  // sig_key < 2^255.
  auto init_resp = host.Transact(init, app.response_size(), 10'000'000);
  ASSERT_TRUE(init_resp.has_value()) << soc->cpu().fault();
  EXPECT_EQ((*init_resp)[0], 1);

  // Sign a message on the SoC.
  Bytes sign(app.command_size(), 0);
  sign[0] = 2;
  for (int i = 1; i <= 32; i++) {
    sign[i] = rng.Byte();
  }
  auto sig_resp = host.Transact(sign, app.response_size(), 600'000'000);
  ASSERT_TRUE(sig_resp.has_value()) << soc->cpu().fault();
  ASSERT_EQ((*sig_resp)[0], 2) << "expected Signature Some";

  // The signature must verify under the host crypto against the installed key.
  std::array<uint8_t, 32> sig_key;
  std::copy(init.begin() + 33, init.begin() + 65, sig_key.begin());
  std::array<uint8_t, 32> px;
  std::array<uint8_t, 32> py;
  ASSERT_TRUE(crypto::EcdsaPublicKey(sig_key, px, py));
  crypto::EcdsaSignature sig;
  std::copy(sig_resp->begin() + 1, sig_resp->begin() + 33, sig.r.begin());
  std::copy(sig_resp->begin() + 33, sig_resp->begin() + 65, sig.s.begin());
  std::array<uint8_t, 32> msg;
  std::copy(sign.begin() + 1, sign.begin() + 33, msg.begin());
  EXPECT_TRUE(crypto::EcdsaVerify(msg, px, py, sig));

  // And the whole exchange must match the spec step-for-step.
  auto spec1 = app.SpecStepEncoded(app.InitStateEncoded(), init);
  ASSERT_TRUE(spec1.has_value());
  auto spec2 = app.SpecStepEncoded(spec1->first, sign);
  ASSERT_TRUE(spec2.has_value());
  EXPECT_EQ(*sig_resp, spec2->second);
}

TEST(HasherOnSocTaint, NoControlFlowLeaksFromSecrets) {
  const App& app = HasherApp();
  HsmBuildOptions options;
  options.taint_tracking = true;
  HsmSystem system(app, options);

  Rng rng(13);
  Bytes secret_state = rng.RandomBytes(app.state_size());
  auto soc = system.NewSocWithFram(system.MakeFram(secret_state));
  system.SeedSecretTaint(*soc);
  soc::WireHost host(soc.get());

  Bytes hash_cmd = app.RandomValidCommand(rng);
  hash_cmd[0] = 2;
  ASSERT_TRUE(host.Transact(hash_cmd, app.response_size(), 30'000'000).has_value());
  for (const auto& leak : soc->bus().leaks()) {
    ADD_FAILURE() << "taint policy violation: " << leak.what << " at pc 0x" << std::hex
                  << leak.pc;
  }
}

TEST(HasherOnSoc, StatePersistsAcrossPowerCycle) {
  const App& app = HasherApp();
  HsmSystem system(app, HsmBuildOptions{});
  Rng rng(14);

  Bytes init = app.RandomValidCommand(rng);
  init[0] = 1;
  Bytes hash_cmd = app.RandomValidCommand(rng);
  hash_cmd[0] = 2;

  Bytes fram;
  Bytes resp_before;
  {
    auto soc = system.NewSoc();
    soc::WireHost host(soc.get());
    ASSERT_TRUE(host.Transact(init, app.response_size(), 30'000'000).has_value());
    auto r = host.Transact(hash_cmd, app.response_size(), 30'000'000);
    ASSERT_TRUE(r.has_value());
    resp_before = *r;
    fram = soc->bus().DumpFram();
  }
  auto soc = system.NewSocWithFram(fram);
  soc::WireHost host(soc.get());
  auto r = host.Transact(hash_cmd, app.response_size(), 30'000'000);
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(*r, resp_before);  // Same secret, same digest, across the power cycle.
}

}  // namespace
}  // namespace parfait::hsm
