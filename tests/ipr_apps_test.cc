// The generic IPR machinery applied to the *real* applications: the specification
// (through its codecs) and the natively compiled firmware handle are both modeled as
// byte-level whole-command state machines, and IPR-by-equivalence plus the full
// figure 5 checker are run over them. This is the executable version of the paper's
// claim that the same once-proven theory applies at every level.
#include <gtest/gtest.h>

#include "src/hsm/app.h"
#include "src/ipr/equivalence.h"
#include "src/ipr/ipr.h"
#include "src/ipr/state_machine.h"

namespace parfait::ipr {
namespace {

using hsm::App;

// The specification as a byte-level machine: decode -> typed step -> encode, with the
// canonical None response for undecodable commands (state unchanged).
StateMachine<Bytes, Bytes, Bytes> SpecMachine(const App& app) {
  return {app.InitStateEncoded(),
          [&app](const Bytes& state, const Bytes& cmd) -> std::pair<Bytes, Bytes> {
            auto step = app.SpecStepEncoded(state, cmd);
            if (!step.has_value()) {
              return {state, app.EncodeResponseNone()};
            }
            return {step->first, step->second};
          }};
}

// The implementation as a byte-level machine: one handle() invocation per step.
StateMachine<Bytes, Bytes, Bytes> ImplMachine(const App& app) {
  return {app.InitStateEncoded(),
          [&app](const Bytes& state, const Bytes& cmd) -> std::pair<Bytes, Bytes> {
            Bytes next = state;
            Bytes mutable_cmd = cmd;
            Bytes resp(app.response_size());
            app.NativeHandle(next.data(), mutable_cmd.data(), resp.data());
            return {next, resp};
          }};
}

std::function<Bytes(Rng&)> CommandGen(const App& app) {
  return [&app](Rng& rng) {
    return rng.Below(3) == 0 ? app.RandomInvalidCommand(rng) : app.RandomValidCommand(rng);
  };
}

std::string ShowBytes(const Bytes& b) { return ToHex(b); }

TEST(IprApps, HasherSpecAndImplAreObservationallyEquivalent) {
  const App& app = hsm::HasherApp();
  auto result = CheckObservationalEquivalence<Bytes, Bytes, Bytes, Bytes>(
      SpecMachine(app), ImplMachine(app), CommandGen(app), ShowBytes);
  EXPECT_TRUE(result.ok) << result.counterexample;
}

TEST(IprApps, HasherSatisfiesIprWithIdentityWitnesses) {
  const App& app = hsm::HasherApp();
  auto result = CheckIpr<Bytes, Bytes, Bytes, Bytes, Bytes, Bytes>(
      ImplMachine(app), SpecMachine(app), IdentityDriver<Bytes, Bytes>(),
      IdentityEmulator<Bytes, Bytes>(), CommandGen(app), CommandGen(app), ShowBytes,
      ShowBytes);
  EXPECT_TRUE(result.ok) << result.counterexample;
}

TEST(IprApps, EcdsaSpecAndImplAreObservationallyEquivalent) {
  const App& app = hsm::EcdsaApp();
  EquivalenceCheckOptions options;
  options.trials = 2;  // Each op is a full ECDSA sign.
  options.ops_per_trial = 3;
  auto result = CheckObservationalEquivalence<Bytes, Bytes, Bytes, Bytes>(
      SpecMachine(app), ImplMachine(app), CommandGen(app), ShowBytes, options);
  EXPECT_TRUE(result.ok) << result.counterexample;
}

TEST(IprApps, MutatedImplIsDistinguished) {
  // Sanity for the checker itself: an implementation that zeroes the state's last
  // byte on Initialize must be distinguishable from the spec.
  const App& app = hsm::HasherApp();
  StateMachine<Bytes, Bytes, Bytes> mutant = {
      app.InitStateEncoded(),
      [&app](const Bytes& state, const Bytes& cmd) -> std::pair<Bytes, Bytes> {
        Bytes next = state;
        Bytes mutable_cmd = cmd;
        Bytes resp(app.response_size());
        app.NativeHandle(next.data(), mutable_cmd.data(), resp.data());
        if (!next.empty() && cmd[0] == 1) {
          next.back() = 0;
        }
        return {next, resp};
      }};
  auto result = CheckObservationalEquivalence<Bytes, Bytes, Bytes, Bytes>(
      SpecMachine(app), mutant, CommandGen(app), ShowBytes);
  EXPECT_FALSE(result.ok);
}

}  // namespace
}  // namespace parfait::ipr
