// Tests for the profiler support stack: the JSON reader (src/support/json.h), the
// profiler event/probe/lane machinery (src/support/profiler.h), and the report /
// attribution / diff layer behind `parfait-prof` (src/support/prof.h).
#include <cstdint>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "src/support/json.h"
#include "src/support/parallel.h"
#include "src/support/prof.h"
#include "src/support/profiler.h"

namespace parfait {
namespace {

using json::Value;
using prof::Attribution;
using prof::Direction;
using prof::SpanEvent;
using profiler::LaneRecord;
using profiler::Probe;
using profiler::ProfEvent;
using profiler::Profiler;
using profiler::WorkSpan;

// ---------------------------------------------------------------------------
// JSON parser.

TEST(Json, ParsesScalarsAndContainers) {
  std::string error;
  auto v = json::Parse(
      R"({"a": 1.5, "b": "text", "c": [true, false, null], "d": {"nested": -2e3}})",
      &error);
  ASSERT_TRUE(v.has_value()) << error;
  ASSERT_TRUE(v->is_object());
  EXPECT_DOUBLE_EQ(v->NumberOr("a", 0), 1.5);
  EXPECT_EQ(v->StringOr("b", ""), "text");
  const Value* c = v->Find("c");
  ASSERT_NE(c, nullptr);
  ASSERT_TRUE(c->is_array());
  ASSERT_EQ(c->AsArray().size(), 3u);
  EXPECT_TRUE(c->AsArray()[0].AsBool());
  EXPECT_TRUE(c->AsArray()[2].is_null());
  const Value* d = v->Find("d");
  ASSERT_NE(d, nullptr);
  EXPECT_DOUBLE_EQ(d->NumberOr("nested", 0), -2000.0);
}

TEST(Json, ObjectMembersKeepFileOrder) {
  auto v = json::Parse(R"({"z": 1, "a": 2, "m": 3})");
  ASSERT_TRUE(v.has_value());
  const auto& members = v->AsObject();
  ASSERT_EQ(members.size(), 3u);
  EXPECT_EQ(members[0].first, "z");
  EXPECT_EQ(members[1].first, "a");
  EXPECT_EQ(members[2].first, "m");
}

TEST(Json, DecodesEscapesIncludingSurrogatePairs) {
  auto v = json::Parse(R"(["a\"b\\c\n", "é", "😀"])");
  ASSERT_TRUE(v.has_value());
  const auto& items = v->AsArray();
  EXPECT_EQ(items[0].AsString(), "a\"b\\c\n");
  EXPECT_EQ(items[1].AsString(), "\xc3\xa9");          // U+00E9 as UTF-8.
  EXPECT_EQ(items[2].AsString(), "\xf0\x9f\x98\x80");  // U+1F600 as UTF-8.
}

TEST(Json, RejectsMalformedInput) {
  std::string error;
  EXPECT_FALSE(json::Parse("{", &error).has_value());
  EXPECT_FALSE(json::Parse("[1, 2,]", &error).has_value());
  EXPECT_FALSE(json::Parse("01", &error).has_value());
  EXPECT_FALSE(json::Parse("{} trailing", &error).has_value());
  EXPECT_NE(error.find("at byte"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Amdahl serial-fraction estimate.

TEST(Amdahl, RecoversKnownSerialFractions) {
  // s = 0.5 on 2 threads: t2 = t1 * (0.5 + 0.5/2) = 0.75 * t1.
  EXPECT_NEAR(prof::AmdahlSerialFraction(10.0, 7.5, 2), 0.5, 1e-9);
  // Perfect scaling => fully parallel.
  EXPECT_NEAR(prof::AmdahlSerialFraction(10.0, 2.5, 4), 0.0, 1e-9);
  // No scaling at all => fully serial.
  EXPECT_NEAR(prof::AmdahlSerialFraction(10.0, 10.0, 4), 1.0, 1e-9);
}

TEST(Amdahl, ClampsAndDegenerates) {
  // A slowdown (t_n > t_1) would give s > 1; clamped.
  EXPECT_DOUBLE_EQ(prof::AmdahlSerialFraction(10.0, 12.0, 2), 1.0);
  // Superlinear scaling would give s < 0; clamped.
  EXPECT_DOUBLE_EQ(prof::AmdahlSerialFraction(10.0, 1.0, 2), 0.0);
  // One thread or zero times estimate nothing: report fully serial.
  EXPECT_DOUBLE_EQ(prof::AmdahlSerialFraction(10.0, 10.0, 1), 1.0);
  EXPECT_DOUBLE_EQ(prof::AmdahlSerialFraction(0.0, 5.0, 2), 1.0);
}

// ---------------------------------------------------------------------------
// Wall-time attribution.

SpanEvent MakeSpan(const char* category, const char* unit, uint64_t start,
                   uint64_t dur, int tid) {
  SpanEvent e;
  e.category = category;
  e.unit = unit;
  e.start_ns = start;
  e.dur_ns = dur;
  e.tid = tid;
  return e;
}

TEST(Attribution, NestedTaggedSpansAreUnionedNotSummed) {
  // An outer [0,100) span with a nested [10,50) span: summing would claim 140 of a
  // 100 ns window; the union claims exactly 100.
  std::vector<SpanEvent> events = {
      MakeSpan("row", "app=a", 0, 100, 0),
      MakeSpan("cmd", "app=a cmd=1", 10, 40, 0),
  };
  Attribution a = prof::ComputeAttribution(events, 0);
  EXPECT_EQ(a.attributed_ns, 100u);
  EXPECT_EQ(a.window_ns, 100u);
  EXPECT_DOUBLE_EQ(a.fraction, 1.0);
}

TEST(Attribution, UntaggedTimeWidensTheWindowOnly) {
  // Tagged [0,50), untagged [50,100): half the thread's window is attributed.
  std::vector<SpanEvent> events = {
      MakeSpan("work", "unit=x", 0, 50, 0),
      MakeSpan("misc", "", 50, 50, 0),
  };
  Attribution a = prof::ComputeAttribution(events, 0);
  EXPECT_EQ(a.attributed_ns, 50u);
  EXPECT_EQ(a.window_ns, 100u);
  EXPECT_DOUBLE_EQ(a.fraction, 0.5);
}

TEST(Attribution, PoolIdleIsExcludedFromTheDenominator) {
  std::vector<SpanEvent> events = {
      MakeSpan("work", "unit=x", 0, 50, 0),
      MakeSpan("misc", "", 50, 50, 0),
  };
  // 50 ns of the 100 ns window was measured worker sleep: 50 / (100 - 50) = 1.
  Attribution a = prof::ComputeAttribution(events, 50);
  EXPECT_EQ(a.pool_idle_ns, 50u);
  EXPECT_DOUBLE_EQ(a.fraction, 1.0);
}

TEST(Attribution, SumsWindowsAcrossThreadsAndClampsAtOne) {
  std::vector<SpanEvent> events = {
      MakeSpan("work", "unit=x", 0, 100, 0),
      MakeSpan("work", "unit=y", 0, 100, 1),
  };
  Attribution a = prof::ComputeAttribution(events, 150);
  EXPECT_EQ(a.attributed_ns, 200u);
  EXPECT_EQ(a.window_ns, 200u);
  // 200 / (200 - 150) would be 4; the fraction is clamped.
  EXPECT_DOUBLE_EQ(a.fraction, 1.0);
}

TEST(Attribution, EmptyInputIsZeroNotNan) {
  Attribution a = prof::ComputeAttribution({}, 0);
  EXPECT_EQ(a.attributed_ns, 0u);
  EXPECT_EQ(a.window_ns, 0u);
  EXPECT_DOUBLE_EQ(a.fraction, 0.0);
}

// ---------------------------------------------------------------------------
// Profiler event buffers, probes, and lanes.

TEST(ProfilerEvents, CollectSortsByStartThenTid) {
  Profiler p;
  p.Enable();
  p.RecordEvent("b", "u2", 200, 10);
  p.RecordEvent("a", "u1", 100, 10);
  p.RecordEvent("c", "u3", 150, 10);
  std::vector<ProfEvent> events = p.Collect();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].start_ns, 100u);
  EXPECT_EQ(events[1].start_ns, 150u);
  EXPECT_EQ(events[2].start_ns, 200u);
  EXPECT_STREQ(events[0].category, "a");
}

TEST(ProfilerEvents, DisabledProfilerRecordsNothing) {
  Profiler p;
  p.RecordEvent("never", "u", 0, 1);
  {
    WorkSpan span(p, "never");
    EXPECT_FALSE(span.active());
    span.Annotate("ignored");
  }
  EXPECT_TRUE(p.Collect().empty());
}

TEST(ProfilerEvents, WorkSpanRecordsCategoryAndUnit) {
  Profiler p;
  p.Enable();
  {
    WorkSpan span(p, "test/span");
    ASSERT_TRUE(span.active());
    span.Annotate("app=demo cmd=3");
  }
  std::vector<ProfEvent> events = p.Collect();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_STREQ(events[0].category, "test/span");
  EXPECT_EQ(events[0].unit, "app=demo cmd=3");
}

TEST(ProfilerEvents, ResetClearsEventsAndBuffersStayUsable) {
  Profiler p;
  p.Enable();
  for (int i = 0; i < 600; i++) {  // Spill past one 256-event chunk.
    p.RecordEvent("e", "", static_cast<uint64_t>(i), 1);
  }
  EXPECT_EQ(p.Collect().size(), 600u);
  p.Reset();
  EXPECT_TRUE(p.Collect().empty());
  p.RecordEvent("after", "", 1, 1);
  EXPECT_EQ(p.Collect().size(), 1u);
}

TEST(ProfilerProbes, WaitStatsAccumulate) {
  Profiler p;
  p.Enable();
  p.AddAcquire(Probe::kPoolQueue);
  p.AddAcquire(Probe::kPoolQueue);
  p.AddWait(Probe::kPoolQueue, 500);
  profiler::WaitStats w = p.waits(Probe::kPoolQueue);
  EXPECT_EQ(w.acquires, 3u);  // AddWait counts the acquisition too.
  EXPECT_EQ(w.contended, 1u);
  EXPECT_EQ(w.wait_ns, 500u);
  EXPECT_EQ(p.waits(Probe::kTranslateLock).acquires, 0u);
}

TEST(ProfilerLanes, LaneRecordsMergeByIndexAcrossPools) {
  Profiler p;
  p.Enable();
  LaneRecord first;
  first.tasks = 5;
  first.busy_ns = 100;
  first.queue_depth_max = 3;
  LaneRecord second;
  second.tasks = 7;
  second.steals = 2;
  second.busy_ns = 50;
  second.queue_depth_max = 1;
  p.AddLaneRecord(1, first);
  p.AddLaneRecord(1, second);  // Same lane, a later pool: counters fold together.
  auto lanes = p.lanes();
  ASSERT_EQ(lanes.size(), 1u);
  EXPECT_EQ(lanes[1].tasks, 12u);
  EXPECT_EQ(lanes[1].steals, 2u);
  EXPECT_EQ(lanes[1].busy_ns, 150u);
  EXPECT_EQ(lanes[1].queue_depth_max, 3u);  // Max, not sum.
}

TEST(ProfilerLanes, ForkJoinCallerIsFoldedAsLaneZero) {
  auto& prof = Profiler::Global();
  ASSERT_FALSE(prof.enabled());
  prof.Enable();
  {
    // ThreadPool(1) spawns no workers: every index runs on the calling thread, so
    // the only lane the teardown can publish is the caller's lane 0.
    ThreadPool pool(1);
    ParallelFor(pool, 7, [](size_t) {});
  }
  auto lanes = prof.lanes();
  prof.Disable();
  prof.Reset();
  ASSERT_EQ(lanes.count(0), 1u);
  EXPECT_EQ(lanes[0].tasks, 7u);
  EXPECT_GT(lanes[0].busy_ns, 0u);
}

// ---------------------------------------------------------------------------
// ProfileJson: the runtime-only "profile" section of BENCH_*.json.

TEST(ProfileJson, IsValidJsonWithAllSections) {
  Profiler p;
  p.Enable();
  p.RecordEvent("knox2/cosim", "app=ecdsa cmd=2", 0, 1000);
  p.RecordEvent("knox2/cosim", "app=ecdsa cmd=2", 1000, 500);
  p.AddWait(Probe::kTranslateLock, 42);
  LaneRecord lane;
  lane.tasks = 3;
  lane.busy_ns = 900;
  lane.idle_ns = 100;
  p.AddLaneRecord(1, lane);

  std::string error;
  auto v = json::Parse(prof::ProfileJson(p), &error);
  ASSERT_TRUE(v.has_value()) << error;
  ASSERT_NE(v->Find("waits"), nullptr);
  ASSERT_NE(v->Find("lanes"), nullptr);
  ASSERT_NE(v->Find("units"), nullptr);
  ASSERT_NE(v->Find("parallelism"), nullptr);
  ASSERT_NE(v->Find("attribution"), nullptr);

  // Parallelism histogram: both events carry a unit tag and ran on this thread, so
  // one lane ran 2 units; the longest (1000ns) is 2/3 of the 1500ns unit time.
  const Value* par = v->Find("parallelism");
  const Value* per_lane = par->Find("units_per_lane");
  ASSERT_NE(per_lane, nullptr);
  ASSERT_EQ(per_lane->AsObject().size(), 1u);
  EXPECT_DOUBLE_EQ(per_lane->AsObject().begin()->second.AsNumber(), 2.0);
  EXPECT_DOUBLE_EQ(par->NumberOr("max_unit_ns", 0), 1000.0);
  EXPECT_DOUBLE_EQ(par->NumberOr("total_unit_ns", 0), 1500.0);
  EXPECT_DOUBLE_EQ(par->NumberOr("max_unit_fraction", 0), 0.6667);

  // The two same-unit events aggregate into one row with summed time.
  const Value* units = v->Find("units");
  ASSERT_EQ(units->AsArray().size(), 1u);
  EXPECT_EQ(units->AsArray()[0].StringOr("unit", ""), "app=ecdsa cmd=2");
  EXPECT_DOUBLE_EQ(units->AsArray()[0].NumberOr("total_ns", 0), 1500.0);
  EXPECT_DOUBLE_EQ(units->AsArray()[0].NumberOr("count", 0), 2.0);

  const Value* waits = v->Find("waits");
  const Value* translate = waits->Find("translate_lock");
  ASSERT_NE(translate, nullptr);
  EXPECT_DOUBLE_EQ(translate->NumberOr("wait_ns", 0), 42.0);
}

TEST(ProfileJson, IsDeterministicForTheSameRecording) {
  Profiler p;
  p.Enable();
  p.RecordEvent("b", "u2", 50, 10);
  p.RecordEvent("a", "u1", 10, 20);
  p.AddAcquire(Probe::kPoolQueue);
  EXPECT_EQ(prof::ProfileJson(p), prof::ProfileJson(p));
}

TEST(ProfileJson, RollsUpBeyondMaxUnitsIntoOther) {
  Profiler p;
  p.Enable();
  p.RecordEvent("cat", "u1", 0, 100);
  p.RecordEvent("cat", "u2", 0, 50);
  p.RecordEvent("cat", "u3", 0, 25);
  auto v = json::Parse(prof::ProfileJson(p, /*max_units=*/2));
  ASSERT_TRUE(v.has_value());
  const auto& units = v->Find("units")->AsArray();
  ASSERT_EQ(units.size(), 3u);  // Two kept + "(other)".
  EXPECT_EQ(units[0].StringOr("unit", ""), "u1");
  EXPECT_EQ(units[2].StringOr("category", ""), "(other)");
  // Totals still add up: 100 + 50 kept, 25 rolled up.
  EXPECT_DOUBLE_EQ(units[2].NumberOr("total_ns", 0), 25.0);
}

// ---------------------------------------------------------------------------
// Metric classification and diffing (the CI perf gate).

TEST(ClassifyMetric, DirectionTable) {
  EXPECT_EQ(prof::ClassifyMetric("machine_dbt.dbt_instr_per_s"),
            Direction::kHigherBetter);
  EXPECT_EQ(prof::ClassifyMetric("legs.0.speedup"), Direction::kHigherBetter);
  EXPECT_EQ(prof::ClassifyMetric("soc.throughput"), Direction::kHigherBetter);
  EXPECT_EQ(prof::ClassifyMetric("lanes.1.utilization"), Direction::kHigherBetter);
  EXPECT_EQ(prof::ClassifyMetric("legs.0.serial_seconds"), Direction::kLowerBetter);
  EXPECT_EQ(prof::ClassifyMetric("machine_setup.before_us"), Direction::kLowerBetter);
  EXPECT_EQ(prof::ClassifyMetric("phase_ms"), Direction::kLowerBetter);
  // serial_fraction is lower-better even though a *_per_s-style suffix matcher
  // might otherwise be tempted; it is checked first.
  EXPECT_EQ(prof::ClassifyMetric("legs.0.serial_fraction"), Direction::kLowerBetter);
  EXPECT_EQ(prof::ClassifyMetric("machine_dbt.block_translations"), Direction::kInfo);
  EXPECT_EQ(prof::ClassifyMetric("serial.cycles"), Direction::kInfo);
}

TEST(Diff, GatesASeededSyntheticRegression) {
  // The committed-baseline shape: halve a higher-better throughput metric and
  // check the diff flags exactly that leaf as a regression.
  auto before = json::Parse(
      R"({"bench":"b","machine_dbt":{"dbt_instr_per_s":400000000,"block_hits":100},
          "machine_setup":{"after_us":0.20}})");
  auto after = json::Parse(
      R"({"bench":"b","machine_dbt":{"dbt_instr_per_s":200000000,"block_hits":95},
          "machine_setup":{"after_us":0.205}})");
  ASSERT_TRUE(before.has_value() && after.has_value());
  prof::DiffOptions options;
  options.max_regression_pct = 5.0;
  prof::DiffResult result = prof::Diff(*before, *after, options);
  EXPECT_EQ(result.regressions, 1);
  bool found = false;
  for (const auto& entry : result.entries) {
    if (entry.path == "machine_dbt.dbt_instr_per_s") {
      found = true;
      EXPECT_TRUE(entry.regression);
      EXPECT_NEAR(entry.change_pct, -50.0, 1e-6);
    } else {
      // block_hits is informational; after_us moved +2.5%, within tolerance.
      EXPECT_FALSE(entry.regression);
    }
  }
  EXPECT_TRUE(found);
  EXPECT_NE(prof::RenderDiff(result).find("REGRESSION"), std::string::npos);
}

TEST(Diff, LowerBetterMetricsGateOnIncrease) {
  auto before = json::Parse(R"({"legs":[{"serial_seconds":10.0,"speedup":1.5}]})");
  auto after = json::Parse(R"({"legs":[{"serial_seconds":12.0,"speedup":1.5}]})");
  prof::DiffResult result = prof::Diff(*before, *after, prof::DiffOptions{});
  EXPECT_EQ(result.regressions, 1);
  ASSERT_FALSE(result.entries.empty());
  EXPECT_EQ(result.entries[0].path, "legs[0].serial_seconds");
  EXPECT_TRUE(result.entries[0].regression);
}

TEST(Diff, ChangesWithinToleranceAndImprovementsPass) {
  auto before = json::Parse(R"({"x_per_s":100.0,"y_seconds":10.0})");
  auto after = json::Parse(R"({"x_per_s":97.0,"y_seconds":8.0})");  // -3%, faster.
  prof::DiffResult result = prof::Diff(*before, *after, prof::DiffOptions{});
  EXPECT_EQ(result.regressions, 0);
}

TEST(Diff, SkipsRuntimeOnlySubtrees) {
  // profile/meta/pool/evidence leaves are schedule-dependent: never compared.
  auto before = json::Parse(
      R"({"a_per_s":100,"profile":{"attribution":{"fraction":1.0}},
          "meta":{"threads":2},"pool":{"idle_ns":5}})");
  auto after = json::Parse(
      R"({"a_per_s":100,"profile":{"attribution":{"fraction":0.1}},
          "meta":{"threads":8},"pool":{"idle_ns":500000}})");
  prof::DiffResult result = prof::Diff(*before, *after, prof::DiffOptions{});
  EXPECT_EQ(result.regressions, 0);
  for (const auto& entry : result.entries) {
    EXPECT_EQ(entry.path.find("profile"), std::string::npos);
    EXPECT_EQ(entry.path.find("meta"), std::string::npos);
    EXPECT_EQ(entry.path.find("pool"), std::string::npos);
  }
}

// ---------------------------------------------------------------------------
// Report rendering.

TEST(RenderReport, RendersBenchShapeWithSerialFraction) {
  auto root = json::Parse(
      R"({"bench":"table4_hardware_verification",
          "meta":{"backend":"interp","threads":2,"build":"Release","git":"abc"},
          "legs":[{"backend":"interp","threads":2,"serial_seconds":10.0,
                   "parallel_seconds":7.5,"speedup":1.333,"outcomes_identical":true}]})");
  ASSERT_TRUE(root.has_value());
  std::string out, error;
  ASSERT_TRUE(prof::RenderReport(*root, &out, &error)) << error;
  EXPECT_NE(out.find("table4_hardware_verification"), std::string::npos);
  EXPECT_NE(out.find("serial fraction"), std::string::npos);
  // s = (2 * 7.5 / 10 - 1) / 1 = 0.5.
  EXPECT_NE(out.find("0.50"), std::string::npos);
}

TEST(RenderReport, RendersTraceShape) {
  auto root = json::Parse(
      R"({"traceEvents":[
            {"name":"lint/run","ph":"X","ts":0,"dur":1000000,"tid":0,
             "args":{"unit":"app=ecdsa"}},
            {"name":"lint/fixpoint","ph":"X","ts":100,"dur":5000,"tid":0}]})");
  ASSERT_TRUE(root.has_value());
  std::string out, error;
  ASSERT_TRUE(prof::RenderReport(*root, &out, &error)) << error;
  EXPECT_NE(out.find("lint/run"), std::string::npos);
}

TEST(RenderReport, RejectsUnknownShapes) {
  auto root = json::Parse(R"({"something":"else"})");
  ASSERT_TRUE(root.has_value());
  std::string out, error;
  EXPECT_FALSE(prof::RenderReport(*root, &out, &error));
  EXPECT_FALSE(error.empty());
}

TEST(RenderReport, CommittedBaselineRendersDeterministically) {
  // The committed table-4 baseline (bench/baselines/) must parse, render with all
  // profile sections present, and render identically across calls.
  std::string path = std::string(PARFAIT_SOURCE_DIR) + "/bench/baselines/parallel.json";
  std::string error;
  auto root = json::ParseFile(path, &error);
  ASSERT_TRUE(root.has_value()) << error;
  std::string out1, out2;
  ASSERT_TRUE(prof::RenderReport(*root, &out1, &error)) << error;
  ASSERT_TRUE(prof::RenderReport(*root, &out2, &error)) << error;
  EXPECT_EQ(out1, out2);
  EXPECT_NE(out1.find("serial fraction"), std::string::npos);
  EXPECT_NE(out1.find("attribution"), std::string::npos);
  EXPECT_NE(out1.find("lanes"), std::string::npos);
  // The acceptance bar for the committed profile: >= 95% wall-time attribution.
  const json::Value* attribution = root->Find("profile")->Find("attribution");
  ASSERT_NE(attribution, nullptr);
  EXPECT_GE(attribution->NumberOr("fraction", 0), 0.95);
}

TEST(RenderReport, CommittedSimperfBaselineParses) {
  std::string path = std::string(PARFAIT_SOURCE_DIR) + "/bench/baselines/simperf.json";
  std::string error;
  auto root = json::ParseFile(path, &error);
  ASSERT_TRUE(root.has_value()) << error;
  // The profiler-off overhead recorded by micro_sim must stay within the <= 1%
  // disabled-mode budget.
  const json::Value* off = root->Find("profiler_off");
  ASSERT_NE(off, nullptr);
  EXPECT_LE(off->NumberOr("overhead_pct", 100.0), 1.0);
  std::string out;
  ASSERT_TRUE(prof::RenderReport(*root, &out, &error)) << error;
}

}  // namespace
}  // namespace parfait
