#include <gtest/gtest.h>

#include "src/support/bytes.h"
#include "src/support/loc.h"
#include "src/support/rng.h"

namespace parfait {
namespace {

TEST(Bytes, HexRoundTrip) {
  Bytes data = {0x00, 0x01, 0xab, 0xff, 0x7f};
  EXPECT_EQ(ToHex(data), "0001abff7f");
  EXPECT_EQ(FromHex("0001abff7f"), data);
  EXPECT_EQ(FromHex("0x0001ABFF7F"), data);
}

TEST(Bytes, HexEmpty) {
  EXPECT_EQ(ToHex({}), "");
  EXPECT_TRUE(FromHex("").empty());
}

TEST(Bytes, EndianLe32) {
  uint8_t buf[4];
  StoreLe32(buf, 0x12345678);
  EXPECT_EQ(buf[0], 0x78);
  EXPECT_EQ(buf[3], 0x12);
  EXPECT_EQ(LoadLe32(buf), 0x12345678u);
}

TEST(Bytes, EndianBe32) {
  uint8_t buf[4];
  StoreBe32(buf, 0x12345678);
  EXPECT_EQ(buf[0], 0x12);
  EXPECT_EQ(buf[3], 0x78);
  EXPECT_EQ(LoadBe32(buf), 0x12345678u);
}

TEST(Bytes, EndianLe64) {
  uint8_t buf[8];
  StoreLe64(buf, 0x0102030405060708ULL);
  EXPECT_EQ(buf[0], 0x08);
  EXPECT_EQ(buf[7], 0x01);
  EXPECT_EQ(LoadLe64(buf), 0x0102030405060708ULL);
}

TEST(Bytes, EndianBe64) {
  uint8_t buf[8];
  StoreBe64(buf, 0x0102030405060708ULL);
  EXPECT_EQ(buf[0], 0x01);
  EXPECT_EQ(buf[7], 0x08);
  EXPECT_EQ(LoadBe64(buf), 0x0102030405060708ULL);
}

TEST(Bytes, ConstantTimeEqual) {
  Bytes a = {1, 2, 3};
  Bytes b = {1, 2, 3};
  Bytes c = {1, 2, 4};
  Bytes d = {1, 2};
  EXPECT_TRUE(ConstantTimeEqual(a, b));
  EXPECT_FALSE(ConstantTimeEqual(a, c));
  EXPECT_FALSE(ConstantTimeEqual(a, d));
  EXPECT_TRUE(ConstantTimeEqual({}, {}));
}

TEST(Bytes, ConstantTimeSelect) {
  Bytes a = {0xaa, 0xbb};
  Bytes b = {0x11, 0x22};
  Bytes out(2);
  ConstantTimeSelect(0xff, a, b, out);
  EXPECT_EQ(out, a);
  ConstantTimeSelect(0x00, a, b, out);
  EXPECT_EQ(out, b);
}

TEST(Bytes, Concat) {
  Bytes a = {1, 2};
  Bytes b = {3};
  EXPECT_EQ(Concat(a, b), (Bytes{1, 2, 3}));
}

TEST(Rng, Deterministic) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; i++) {
    EXPECT_EQ(a.Next64(), b.Next64());
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  EXPECT_NE(a.Next64(), b.Next64());
}

TEST(Rng, BelowInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; i++) {
    EXPECT_LT(rng.Below(17), 17u);
  }
}

TEST(Rng, FillChangesBuffer) {
  Rng rng(9);
  Bytes buf(64, 0);
  rng.Fill(buf);
  int nonzero = 0;
  for (uint8_t b : buf) {
    nonzero += (b != 0);
  }
  EXPECT_GT(nonzero, 32);  // Overwhelmingly likely.
}

TEST(Loc, CountsCodeLines) {
  std::string path = testing::TempDir() + "/loc_test.cc";
  FILE* f = fopen(path.c_str(), "w");
  ASSERT_NE(f, nullptr);
  fputs("// comment only\n\nint x;\n/* block\ncomment */\nint y; // trailing\n", f);
  fclose(f);
  EXPECT_EQ(CountLoc(path), 2u);
}

TEST(Loc, MissingFileIsZero) { EXPECT_EQ(CountLoc("/nonexistent/file.cc"), 0u); }

}  // namespace
}  // namespace parfait
