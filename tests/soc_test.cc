#include <gtest/gtest.h>

#include "src/platform/firmware.h"
#include "src/soc/soc.h"
#include "src/support/rng.h"

namespace parfait::soc {
namespace {

// A minimal test application: state is a 4-byte counter; command is 4 bytes.
// handle() adds the command word into the counter and responds with the new counter
// value XORed with 0xff in the second word.
const char kCounterApp[] = R"(
u32 load_le32(u8 *p) {
  return (u32)p[0] | ((u32)p[1] << 8) | ((u32)p[2] << 16) | ((u32)p[3] << 24);
}
void store_le32(u8 *p, u32 v) {
  p[0] = (u8)v;
  p[1] = (u8)(v >> 8);
  p[2] = (u8)(v >> 16);
  p[3] = (u8)(v >> 24);
}
void handle(u8 *state, u8 *cmd, u8 *resp) {
  u32 counter = load_le32(state);
  u32 arg = load_le32(cmd);
  counter = counter + arg;
  store_le32(state, counter);
  store_le32(resp, counter);
  store_le32(resp + 4, counter ^ 0xffffffff);
}
)";

riscv::Image BuildCounterImage(int opt_level = 0) {
  platform::FirmwareConfig config;
  config.app_sources = kCounterApp;
  config.state_size = 4;
  config.command_size = 4;
  config.response_size = 8;
  config.opt_level = opt_level;
  auto image = platform::BuildFirmware(config);
  EXPECT_TRUE(image.ok()) << image.error();
  return image.value();
}

SocConfig MakeConfig(CpuKind kind) {
  SocConfig config;
  config.cpu_kind = kind;
  return config;
}

Bytes CommandWord(uint32_t v) {
  Bytes b(4);
  StoreLe32(b.data(), v);
  return b;
}

class SocBothCpus : public testing::TestWithParam<CpuKind> {};

TEST_P(SocBothCpus, CounterAppEndToEnd) {
  riscv::Image image = BuildCounterImage();
  Soc soc(image, MakeConfig(GetParam()));
  WireHost host(&soc);

  auto r1 = host.Transact(CommandWord(5), 8, 2'000'000);
  ASSERT_TRUE(r1.has_value()) << soc.cpu().fault();
  EXPECT_EQ(LoadLe32(r1->data()), 5u);
  EXPECT_EQ(LoadLe32(r1->data() + 4), ~5u);

  auto r2 = host.Transact(CommandWord(7), 8, 2'000'000);
  ASSERT_TRUE(r2.has_value());
  EXPECT_EQ(LoadLe32(r2->data()), 12u);  // State persisted across commands.
}

TEST_P(SocBothCpus, StatePersistsAcrossPowerCycles) {
  riscv::Image image = BuildCounterImage();
  Bytes fram;
  {
    Soc soc(image, MakeConfig(GetParam()));
    WireHost host(&soc);
    auto r = host.Transact(CommandWord(41), 8, 2'000'000);
    ASSERT_TRUE(r.has_value());
    fram = soc.bus().DumpFram();
  }
  // Power-cycle: fresh SoC, persistent FRAM.
  Soc soc(image, MakeConfig(GetParam()));
  soc.bus().LoadFram(fram, {});
  WireHost host(&soc);
  auto r = host.Transact(CommandWord(1), 8, 2'000'000);
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(LoadLe32(r->data()), 42u);
}

TEST_P(SocBothCpus, CrashBeforeCommitKeepsOldState) {
  riscv::Image image = BuildCounterImage();
  // Run a complete command first so state = 10.
  Bytes fram;
  {
    Soc soc(image, MakeConfig(GetParam()));
    WireHost host(&soc);
    ASSERT_TRUE(host.Transact(CommandWord(10), 8, 2'000'000).has_value());
    fram = soc.bus().DumpFram();
  }
  // Feed the next command but cut power in the middle of processing: step a bounded
  // number of cycles, well before the response completes.
  {
    Soc soc(image, MakeConfig(GetParam()));
    soc.bus().LoadFram(fram, {});
    WireHost host(&soc);
    rtl::WireInput in;
    // Present the command bytes by hand, then run a few hundred cycles and "cut power".
    auto partial = host.Transact(CommandWord(90), /*response_size=*/1, /*max_cycles=*/600);
    (void)partial;  // Timeout expected; we only care about FRAM contents.
    fram = soc.bus().DumpFram();
  }
  // After the crash, recovery must observe either the old state (10) or, if the cut
  // came after the commit point, the new state (100). Nothing else.
  Soc soc(image, MakeConfig(GetParam()));
  soc.bus().LoadFram(fram, {});
  WireHost host(&soc);
  auto r = host.Transact(CommandWord(0), 8, 2'000'000);
  ASSERT_TRUE(r.has_value());
  uint32_t value = LoadLe32(r->data());
  EXPECT_TRUE(value == 10u || value == 100u) << value;
}

TEST_P(SocBothCpus, O2FirmwareBehavesIdentically) {
  riscv::Image o0 = BuildCounterImage(0);
  riscv::Image o2 = BuildCounterImage(2);
  Soc soc0(o0, MakeConfig(GetParam()));
  Soc soc2(o2, MakeConfig(GetParam()));
  WireHost h0(&soc0);
  WireHost h2(&soc2);
  auto r0 = h0.Transact(CommandWord(123), 8, 2'000'000);
  auto r2 = h2.Transact(CommandWord(123), 8, 2'000'000);
  ASSERT_TRUE(r0.has_value());
  ASSERT_TRUE(r2.has_value());
  EXPECT_EQ(*r0, *r2);
  // O2 firmware should finish in fewer cycles.
  EXPECT_LT(soc2.cycles(), soc0.cycles());
}

TEST_P(SocBothCpus, DeterministicWireTraces) {
  riscv::Image image = BuildCounterImage();
  rtl::WireTrace traces[2];
  for (int i = 0; i < 2; i++) {
    Soc soc(image, MakeConfig(GetParam()));
    WireHost host(&soc);
    ASSERT_TRUE(host.Transact(CommandWord(9), 8, 2'000'000).has_value());
    traces[i] = host.trace();
  }
  EXPECT_EQ(rtl::FirstDivergence(traces[0], traces[1]), -1);
}

INSTANTIATE_TEST_SUITE_P(Cpus, SocBothCpus, testing::Values(CpuKind::kIbexLite, CpuKind::kPicoLite),
                         [](const testing::TestParamInfo<CpuKind>& info) {
                           return CpuKindName(info.param);
                         });

TEST(SocTiming, PicoLiteTakesMoreCyclesThanIbexLite) {
  riscv::Image image = BuildCounterImage();
  uint64_t cycles[2];
  int i = 0;
  for (CpuKind kind : {CpuKind::kIbexLite, CpuKind::kPicoLite}) {
    Soc soc(image, MakeConfig(kind));
    WireHost host(&soc);
    ASSERT_TRUE(host.Transact(CommandWord(3), 8, 4'000'000).has_value());
    cycles[i++] = soc.cycles();
  }
  EXPECT_LT(cycles[0], cycles[1]);
}

TEST(SocTiming, VariableLatencyMultiplierChangesTiming) {
  // Same program, multiplier operand magnitude differs -> cycle counts differ when the
  // variable-latency multiplier is configured (the §7.2 hardware timing bug).
  const char kMulApp[] = R"(
u32 load_le32(u8 *p) {
  return (u32)p[0] | ((u32)p[1] << 8) | ((u32)p[2] << 16) | ((u32)p[3] << 24);
}
void store_le32(u8 *p, u32 v) {
  p[0] = (u8)v;
  p[1] = (u8)(v >> 8);
  p[2] = (u8)(v >> 16);
  p[3] = (u8)(v >> 24);
}
void handle(u8 *state, u8 *cmd, u8 *resp) {
  u32 a = load_le32(state);
  u32 r = 0;
  for (u32 i = 0; i < 64; i = i + 1) { r = r + a * a; }
  store_le32(resp, r);
  state[0] = state[0];
  cmd[0] = cmd[0];
}
)";
  platform::FirmwareConfig fw;
  fw.app_sources = kMulApp;
  fw.state_size = 4;
  fw.command_size = 4;
  fw.response_size = 4;
  auto image = platform::BuildFirmware(fw);
  ASSERT_TRUE(image.ok()) << image.error();

  auto run_with_state = [&](uint32_t state_word, bool variable) {
    SocConfig config;
    config.cpu_kind = CpuKind::kIbexLite;
    config.cpu.variable_latency_mul = variable;
    Soc soc(image.value(), config);
    // Pre-seed FRAM copy A with the state word (flag = 0).
    Bytes fram(4 + 4, 0);
    StoreLe32(fram.data() + 4, state_word);
    soc.bus().LoadFram(fram, {});
    WireHost host(&soc);
    EXPECT_TRUE(host.Transact(CommandWord(0), 4, 4'000'000).has_value());
    return soc.cycles();
  };

  // Fixed-latency multiplier: timing independent of the (secret) state operand.
  EXPECT_EQ(run_with_state(1, false), run_with_state(0xffffffff, false));
  // Variable-latency multiplier: timing depends on the operand.
  EXPECT_NE(run_with_state(1, true), run_with_state(0xffffffff, true));
}

TEST(SocTaint, TaintedBranchIsFlagged) {
  const char kLeakyApp[] = R"(
void handle(u8 *state, u8 *cmd, u8 *resp) {
  if (state[0] == 1) {
    resp[0] = 1;
  } else {
    resp[0] = 2;
  }
  cmd[0] = cmd[0];
}
)";
  platform::FirmwareConfig fw;
  fw.app_sources = kLeakyApp;
  fw.state_size = 4;
  fw.command_size = 4;
  fw.response_size = 4;
  auto image = platform::BuildFirmware(fw);
  ASSERT_TRUE(image.ok()) << image.error();
  SocConfig config;
  config.taint_tracking = true;
  Soc soc(image.value(), config);
  // Taint the state bytes in FRAM (the secret), not the journal flag.
  Bytes fram(8, 0);
  soc.bus().LoadFram(fram, {});
  soc.bus().SetFramTaint(4, 4, true);
  WireHost host(&soc);
  ASSERT_TRUE(host.Transact(CommandWord(0), 4, 4'000'000).has_value());
  bool branch_leak = false;
  for (const auto& leak : soc.bus().leaks()) {
    if (leak.what.find("branch") != std::string::npos) {
      branch_leak = true;
    }
  }
  EXPECT_TRUE(branch_leak);
}

TEST(SocTaint, ConstantTimeAppHasNoControlLeaks) {
  const char kCtApp[] = R"(
void handle(u8 *state, u8 *cmd, u8 *resp) {
  u32 eq = (u32)state[0] ^ (u32)cmd[0];
  u32 mask = 0 - ((eq | (0 - eq)) >> 31);
  resp[0] = (u8)(1 & ~mask) | (u8)(2 & mask);
}
)";
  platform::FirmwareConfig fw;
  fw.app_sources = kCtApp;
  fw.state_size = 4;
  fw.command_size = 4;
  fw.response_size = 4;
  auto image = platform::BuildFirmware(fw);
  ASSERT_TRUE(image.ok()) << image.error();
  SocConfig config;
  config.taint_tracking = true;
  Soc soc(image.value(), config);
  Bytes fram(8, 0);
  soc.bus().LoadFram(fram, {});
  soc.bus().SetFramTaint(4, 4, true);
  WireHost host(&soc);
  ASSERT_TRUE(host.Transact(CommandWord(0), 4, 4'000'000).has_value());
  for (const auto& leak : soc.bus().leaks()) {
    EXPECT_TRUE(leak.what.find("branch") == std::string::npos &&
                leak.what.find("address") == std::string::npos)
        << leak.what;
  }
}

}  // namespace
}  // namespace parfait::soc
