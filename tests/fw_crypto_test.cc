// Differential tests: the MiniC firmware crypto (compiled natively) against the host
// crypto library. This is the correctness anchor for the whole firmware stack — if
// these pass, the bytes computed by handle() at the C level match the specification's
// crypto, and the remaining levels are checked by translation validation.
#include <gtest/gtest.h>

#include "src/crypto/blake2s.h"
#include "src/crypto/ecdsa.h"
#include "src/crypto/hmac.h"
#include "src/crypto/sha256.h"
#include "src/hsm/app.h"
#include "src/hsm/fw_native.h"
#include "src/support/rng.h"

namespace parfait::hsm {
namespace {

TEST(FwCrypto, Sha256MatchesHost) {
  Rng rng(1);
  for (size_t len : {0u, 1u, 8u, 55u, 56u, 63u, 64u, 65u, 72u, 96u, 105u, 128u, 200u}) {
    Bytes msg = rng.RandomBytes(len);
    uint8_t out[32];
    NativeSha256(out, msg.data(), static_cast<uint32_t>(len));
    auto expect = crypto::Sha256::Hash(msg);
    EXPECT_EQ(Bytes(out, out + 32), Bytes(expect.begin(), expect.end())) << "len=" << len;
  }
}

TEST(FwCrypto, HmacSha256MatchesHost) {
  Rng rng(2);
  for (size_t len : {0u, 8u, 32u, 64u}) {
    Bytes key = rng.RandomBytes(32);
    Bytes msg = rng.RandomBytes(len);
    uint8_t out[32];
    NativeHmacSha256(out, key.data(), msg.data(), static_cast<uint32_t>(len));
    auto expect = crypto::HmacSha256(key, msg);
    EXPECT_EQ(Bytes(out, out + 32), Bytes(expect.begin(), expect.end())) << "len=" << len;
  }
}

TEST(FwCrypto, Blake2sMatchesHost) {
  Rng rng(3);
  for (size_t len : {0u, 1u, 32u, 63u, 64u, 65u, 96u, 128u, 129u, 200u}) {
    Bytes msg = rng.RandomBytes(len);
    uint8_t out[32];
    NativeBlake2s(out, msg.data(), static_cast<uint32_t>(len));
    auto expect = crypto::Blake2s::Hash(msg);
    EXPECT_EQ(Bytes(out, out + 32), Bytes(expect.begin(), expect.end())) << "len=" << len;
  }
}

TEST(FwCrypto, HmacBlake2sMatchesHost) {
  Rng rng(4);
  for (size_t len : {0u, 32u, 64u}) {
    Bytes key = rng.RandomBytes(32);
    Bytes msg = rng.RandomBytes(len);
    uint8_t out[32];
    NativeHmacBlake2s(out, key.data(), msg.data(), static_cast<uint32_t>(len));
    auto expect = crypto::HmacBlake2s(key, msg);
    EXPECT_EQ(Bytes(out, out + 32), Bytes(expect.begin(), expect.end())) << "len=" << len;
  }
}

TEST(FwCrypto, EcdsaSignMatchesHost) {
  Rng rng(5);
  for (int trial = 0; trial < 3; trial++) {
    std::array<uint8_t, 32> msg;
    std::array<uint8_t, 32> key;
    std::array<uint8_t, 32> nonce;
    rng.Fill(msg);
    rng.Fill(key);
    rng.Fill(nonce);
    key[0] &= 0x7f;
    nonce[0] &= 0x7f;
    uint8_t fw_sig[64];
    uint32_t fw_ok = EcdsaNativeSign(fw_sig, msg.data(), key.data(), nonce.data());
    crypto::EcdsaSignature host_sig;
    bool host_ok = crypto::EcdsaSign(msg, key, nonce, &host_sig);
    EXPECT_EQ(fw_ok != 0, host_ok) << "trial " << trial;
    EXPECT_EQ(Bytes(fw_sig, fw_sig + 32), Bytes(host_sig.r.begin(), host_sig.r.end()));
    EXPECT_EQ(Bytes(fw_sig + 32, fw_sig + 64), Bytes(host_sig.s.begin(), host_sig.s.end()));
  }
}

TEST(FwCrypto, EcdsaSignVerifiesWithHost) {
  Rng rng(6);
  std::array<uint8_t, 32> msg;
  std::array<uint8_t, 32> key;
  std::array<uint8_t, 32> nonce;
  rng.Fill(msg);
  rng.Fill(key);
  rng.Fill(nonce);
  key[0] &= 0x7f;
  nonce[0] &= 0x7f;
  uint8_t fw_sig[64];
  ASSERT_NE(EcdsaNativeSign(fw_sig, msg.data(), key.data(), nonce.data()), 0u);
  std::array<uint8_t, 32> px;
  std::array<uint8_t, 32> py;
  ASSERT_TRUE(crypto::EcdsaPublicKey(key, px, py));
  crypto::EcdsaSignature sig;
  std::copy(fw_sig, fw_sig + 32, sig.r.begin());
  std::copy(fw_sig + 32, fw_sig + 64, sig.s.begin());
  EXPECT_TRUE(crypto::EcdsaVerify(msg, px, py, sig));
}

TEST(FwCrypto, EcdsaRejectsOutOfRangeInputs) {
  std::array<uint8_t, 32> msg{};
  std::array<uint8_t, 32> zero{};
  std::array<uint8_t, 32> good{};
  good[31] = 5;
  std::array<uint8_t, 32> huge;
  huge.fill(0xff);
  uint8_t sig[64];
  EXPECT_EQ(EcdsaNativeSign(sig, msg.data(), zero.data(), good.data()), 0u);
  EXPECT_EQ(EcdsaNativeSign(sig, msg.data(), good.data(), zero.data()), 0u);
  EXPECT_EQ(EcdsaNativeSign(sig, msg.data(), huge.data(), good.data()), 0u);
  // Failure output is all zeros (the masking discipline).
  EXPECT_EQ(Bytes(sig, sig + 64), Bytes(64, 0));
}

// App-level differential: the native firmware handle against the spec step for long
// random command sequences (effectively the Starling Some-case on real workloads).
class FwAppAgainstSpec : public testing::TestWithParam<const App*> {};

TEST_P(FwAppAgainstSpec, SequencesMatchSpec) {
  const App& app = *GetParam();
  Rng rng(7);
  Bytes state = app.InitStateEncoded();
  int steps = app.state_size() > 40 ? 4 : 50;  // ECDSA signing is expensive.
  for (int i = 0; i < steps; i++) {
    Bytes cmd = app.RandomValidCommand(rng);
    auto spec = app.SpecStepEncoded(state, cmd);
    ASSERT_TRUE(spec.has_value());
    Bytes impl_state = state;
    Bytes impl_cmd = cmd;
    Bytes impl_resp(app.response_size());
    app.NativeHandle(impl_state.data(), impl_cmd.data(), impl_resp.data());
    EXPECT_EQ(impl_state, spec->first) << app.name() << " step " << i << " state mismatch";
    EXPECT_EQ(impl_resp, spec->second) << app.name() << " step " << i << " response mismatch";
    state = spec->first;
  }
}

TEST_P(FwAppAgainstSpec, InvalidCommandsAreNoneCase) {
  const App& app = *GetParam();
  Rng rng(8);
  Bytes state = app.InitStateEncoded();
  for (int i = 0; i < 20; i++) {
    Bytes cmd = app.RandomInvalidCommand(rng);
    ASSERT_FALSE(app.SpecStepEncoded(state, cmd).has_value());
    Bytes impl_state = state;
    Bytes impl_cmd = cmd;
    Bytes impl_resp(app.response_size(), 0xaa);
    app.NativeHandle(impl_state.data(), impl_cmd.data(), impl_resp.data());
    EXPECT_EQ(impl_state, state) << "state must be unchanged";
    EXPECT_EQ(impl_resp, app.EncodeResponseNone()) << "response must be canonical";
  }
}

INSTANTIATE_TEST_SUITE_P(Apps, FwAppAgainstSpec, testing::Values(&EcdsaApp(), &HasherApp()),
                         [](const testing::TestParamInfo<const App*>& info) {
                           return info.param == &EcdsaApp() ? "Ecdsa" : "Hasher";
                         });

TEST(FwApp, EcdsaCounterMaxReturnsNone) {
  const App& app = EcdsaApp();
  Bytes state = app.InitStateEncoded();
  // Install keys, then force the counter to max.
  Rng rng(9);
  Bytes init = app.RandomValidCommand(rng);
  init[0] = 1;
  Bytes resp(app.response_size());
  app.NativeHandle(state.data(), init.data(), resp.data());
  std::fill(state.begin() + 32, state.begin() + 40, 0xff);

  Bytes sign_cmd(app.command_size(), 0);
  sign_cmd[0] = 2;
  Bytes impl_state = state;
  app.NativeHandle(impl_state.data(), sign_cmd.data(), resp.data());
  EXPECT_EQ(resp[0], 3);  // Signature None.
  EXPECT_EQ(Bytes(resp.begin() + 1, resp.end()), Bytes(64, 0));
  EXPECT_EQ(impl_state, state);  // Counter not incremented at max.

  // And the spec agrees.
  auto spec = app.SpecStepEncoded(state, sign_cmd);
  ASSERT_TRUE(spec.has_value());
  EXPECT_EQ(spec->first, impl_state);
  EXPECT_EQ(spec->second, resp);
}

}  // namespace
}  // namespace parfait::hsm
