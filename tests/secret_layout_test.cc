// Tests that hsm::SecretLayout — the single source of truth for where secrets live —
// agrees byte-for-byte with what is actually linked into both firmware apps: the
// FRAM journal constants compiled into sys.c, the sys_state buffer's linked extent,
// and the in-bounds/shape invariants the taint seeders rely on.
#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <string>

#include "src/hsm/app.h"
#include "src/hsm/hsm_system.h"
#include "src/hsm/secret_layout.h"
#include "src/minicc/parser.h"
#include "src/soc/bus.h"

namespace parfait::hsm {
namespace {

// The enum constants the firmware was actually compiled with, pulled from the same
// translation unit the compiler consumed.
std::map<std::string, uint32_t> FirmwareEnums(const HsmSystem& system) {
  auto unit = minicc::Parse(system.firmware_source());
  EXPECT_TRUE(unit.ok()) << unit.error();
  std::map<std::string, uint32_t> out;
  if (unit.ok()) {
    for (const auto& e : unit.value().enums) {
      out[e.name] = e.value;
    }
  }
  return out;
}

void CheckLayoutAgainstFirmware(const App& app) {
  SecretLayout layout = SecretLayout::ForApp(app);
  HsmSystem system(app, HsmBuildOptions{});
  auto enums = FirmwareEnums(system);

  // The journal geometry sys.c compiles against must be the geometry SecretLayout
  // declares: flag word at the FRAM base, copy A right after it, copy B one state
  // size further.
  ASSERT_TRUE(enums.count("FRAM_FLAG"));
  ASSERT_TRUE(enums.count("FRAM_COPY_A"));
  ASSERT_TRUE(enums.count("STATE_SIZE"));
  EXPECT_EQ(enums["FRAM_FLAG"], soc::kFramBase + layout.flag_offset);
  EXPECT_EQ(enums["FRAM_COPY_A"], soc::kFramBase + layout.copy_a_offset);
  EXPECT_EQ(enums["STATE_SIZE"], layout.state_size);
  EXPECT_EQ(layout.state_size, app.state_size());
  EXPECT_EQ(layout.copy_b_offset, layout.copy_a_offset + layout.state_size);
  EXPECT_EQ(layout.JournalSize(), layout.copy_b_offset + layout.state_size);

  // The linked sys_state buffer (the RAM copy handle() computes over) must have
  // exactly one state copy's extent.
  const riscv::SymbolInfo* sys_state = system.image().FindSymbol("sys_state");
  ASSERT_NE(sys_state, nullptr);
  EXPECT_EQ(sys_state->size, layout.state_size);

  // Declared secret ranges stay inside one state copy and do not overlap (the
  // Knox2 partner-state generator flips them independently).
  ASSERT_FALSE(layout.state_regions.empty());
  uint32_t prev_end = 0;
  for (const SecretRegion& r : layout.state_regions) {
    EXPECT_GT(r.length, 0u);
    EXPECT_GE(r.offset, prev_end) << "regions must be sorted and disjoint";
    EXPECT_LE(r.offset + r.length, layout.state_size);
    prev_end = r.offset + r.length;
  }

  // FRAM-relative regions: one image of the declared ranges per journal copy,
  // shifted to each copy's base, all inside the journal extent.
  auto fram = layout.FramSecretRegions();
  ASSERT_EQ(fram.size(), 2 * layout.state_regions.size());
  for (size_t i = 0; i < layout.state_regions.size(); i++) {
    const SecretRegion& src = layout.state_regions[i];
    EXPECT_EQ(fram[i].offset, layout.copy_a_offset + src.offset);
    EXPECT_EQ(fram[i].length, src.length);
    const SecretRegion& b = fram[layout.state_regions.size() + i];
    EXPECT_EQ(b.offset, layout.copy_b_offset + src.offset);
    EXPECT_EQ(b.length, src.length);
  }
  for (const SecretRegion& r : fram) {
    EXPECT_GE(r.offset, layout.copy_a_offset) << "flag word must never be secret";
    EXPECT_LE(r.offset + r.length, layout.JournalSize());
  }

  // MakeFram builds exactly one journal and places the state at copy A.
  Bytes state(app.state_size(), 0xab);
  Bytes fram_bytes = system.MakeFram(state);
  ASSERT_EQ(fram_bytes.size(), layout.JournalSize());
  for (uint32_t i = 0; i < layout.state_size; i++) {
    EXPECT_EQ(fram_bytes[layout.copy_a_offset + i], 0xab);
  }
}

TEST(SecretLayoutTest, HasherLayoutMatchesLinkedFirmware) {
  CheckLayoutAgainstFirmware(HasherApp());
}

TEST(SecretLayoutTest, EcdsaLayoutMatchesLinkedFirmware) {
  CheckLayoutAgainstFirmware(EcdsaApp());
}

}  // namespace
}  // namespace parfait::hsm
