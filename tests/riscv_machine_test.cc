#include <gtest/gtest.h>

#include "src/riscv/assembler.h"
#include "src/riscv/machine.h"

namespace parfait::riscv {
namespace {

constexpr uint32_t kRomBase = 0x00000000;
constexpr uint32_t kRamBase = 0x20000000;

// Assembles, links, and loads a program; the machine gets ROM, RAM, and a stack.
Machine Load(const std::string& asm_text) {
  auto program = ParseAssembly(asm_text);
  EXPECT_TRUE(program.ok()) << program.error();
  auto image = program.value().Link(kRomBase, kRamBase);
  EXPECT_TRUE(image.ok()) << image.error();
  Machine m;
  m.AddRegion("rom", kRomBase, 64 * 1024, /*writable=*/false);
  m.AddRegion("ram", kRamBase, 64 * 1024, /*writable=*/true);
  m.WriteMemory(kRomBase, image.value().rom);
  // Act as the loader: copy the .data load image from ROM into RAM (on the SoC, the
  // platform boot code performs this copy).
  const Image& img = image.value();
  if (img.data_size > 0) {
    uint32_t lma = img.SymbolOrDie("__data_lma");
    Bytes init = m.ReadMemory(lma, img.data_size);
    m.WriteMemory(img.SymbolOrDie("__data_start"), init);
  }
  m.set_pc(image.value().SymbolOrDie("_start"));
  m.set_reg(2, Value::Defined(kRamBase + 64 * 1024));  // sp at top of RAM.
  return m;
}

uint32_t RunAndGetA0(const std::string& asm_text, uint64_t max_steps = 100000) {
  Machine m = Load(asm_text);
  auto result = m.Run(max_steps);
  EXPECT_EQ(result, Machine::StepResult::kHalt) << m.fault_reason();
  EXPECT_TRUE(m.reg(10).defined);
  return m.reg(10).bits;
}

TEST(Machine, BasicArithmetic) {
  EXPECT_EQ(RunAndGetA0(R"(
    _start:
      li a0, 40
      addi a0, a0, 2
      ecall
  )"),
            42u);
}

TEST(Machine, LargeImmediateLi) {
  EXPECT_EQ(RunAndGetA0(R"(
    _start:
      li a0, 0x12345678
      ecall
  )"),
            0x12345678u);
}

TEST(Machine, NegativeLi) {
  EXPECT_EQ(RunAndGetA0(R"(
    _start:
      li a0, -1
      ecall
  )"),
            0xffffffffu);
}

TEST(Machine, LoadStoreRoundTrip) {
  EXPECT_EQ(RunAndGetA0(R"(
    _start:
      li t0, 0x20000100
      li t1, 0xcafebabe
      sw t1, 0(t0)
      lw a0, 0(t0)
      ecall
  )"),
            0xcafebabeu);
}

TEST(Machine, ByteAndHalfAccess) {
  EXPECT_EQ(RunAndGetA0(R"(
    _start:
      li t0, 0x20000100
      li t1, 0x804020ff
      sw t1, 0(t0)
      lbu a0, 3(t0)       # 0x80
      lb t2, 3(t0)        # sign-extended 0xffffff80
      add a0, a0, t2
      lhu t3, 0(t0)       # 0x20ff
      add a0, a0, t3
      ecall
  )"),
            0x80u + 0xffffff80u + 0x20ffu);
}

TEST(Machine, BranchesAndLoops) {
  // Sum 1..10 = 55.
  EXPECT_EQ(RunAndGetA0(R"(
    _start:
      li a0, 0
      li t0, 1
      li t1, 11
    loop:
      add a0, a0, t0
      addi t0, t0, 1
      bne t0, t1, loop
      ecall
  )"),
            55u);
}

TEST(Machine, FunctionCallAndReturn) {
  EXPECT_EQ(RunAndGetA0(R"(
    _start:
      li a0, 5
      call double_it
      call double_it
      ecall
    double_it:
      add a0, a0, a0
      ret
  )"),
            20u);
}

TEST(Machine, MulDivSemantics) {
  EXPECT_EQ(RunAndGetA0(R"(
    _start:
      li t0, -7
      li t1, 3
      mul a0, t0, t1       # -21
      div t2, t0, t1       # -2 (truncated toward zero)
      add a0, a0, t2
      rem t3, t0, t1       # -1
      add a0, a0, t3
      ecall
  )"),
            static_cast<uint32_t>(-21 + -2 + -1));
}

TEST(Machine, MulhuComputesHighWord) {
  EXPECT_EQ(RunAndGetA0(R"(
    _start:
      li t0, 0x80000000
      li t1, 4
      mulhu a0, t0, t1
      ecall
  )"),
            2u);
}

TEST(Machine, DivByZeroIsAllOnes) {
  EXPECT_EQ(RunAndGetA0(R"(
    _start:
      li t0, 9
      li t1, 0
      divu a0, t0, t1
      ecall
  )"),
            0xffffffffu);
}

TEST(Machine, ShiftOps) {
  EXPECT_EQ(RunAndGetA0(R"(
    _start:
      li t0, 0x80000000
      srai a0, t0, 4       # 0xf8000000
      srli t1, t0, 4       # 0x08000000
      add a0, a0, t1
      ecall
  )"),
            0xf8000000u + 0x08000000u);
}

TEST(Machine, SltVariants) {
  EXPECT_EQ(RunAndGetA0(R"(
    _start:
      li t0, -1
      li t1, 1
      slt a0, t0, t1       # 1 (signed)
      sltu t2, t0, t1      # 0 (unsigned: 0xffffffff > 1)
      slli a0, a0, 1
      add a0, a0, t2
      ecall
  )"),
            2u);
}

TEST(Machine, DataSectionSymbols) {
  EXPECT_EQ(RunAndGetA0(R"(
    _start:
      la t0, table
      lw a0, 4(t0)
      ecall
    .data
    table: .word 17, 99, 3
  )"),
            99u);
}

TEST(Machine, RodataIsReadOnly) {
  Machine m = Load(R"(
    _start:
      la t0, konst
      li t1, 5
      sw t1, 0(t0)
      ecall
    .rodata
    konst: .word 7
  )");
  EXPECT_EQ(m.Run(100), Machine::StepResult::kFault);
  EXPECT_NE(m.fault_reason().find("store"), std::string::npos);
}

TEST(Machine, OutOfBoundsLoadFaults) {
  Machine m = Load(R"(
    _start:
      li t0, 0x90000000
      lw a0, 0(t0)
      ecall
  )");
  EXPECT_EQ(m.Run(100), Machine::StepResult::kFault);
}

TEST(Machine, MisalignedLoadFaults) {
  Machine m = Load(R"(
    _start:
      li t0, 0x20000101
      lw a0, 0(t0)
      ecall
  )");
  EXPECT_EQ(m.Run(100), Machine::StepResult::kFault);
  EXPECT_NE(m.fault_reason().find("misaligned"), std::string::npos);
}

TEST(Machine, UndefinedRegisterPropagates) {
  // t2 is never written: arithmetic on it yields undef, branching on undef faults.
  Machine m = Load(R"(
    _start:
      add t3, t2, t2
      beq t3, zero, _start
      ecall
  )");
  EXPECT_EQ(m.Run(100), Machine::StepResult::kFault);
  EXPECT_NE(m.fault_reason().find("undefined"), std::string::npos);
}

TEST(Machine, UndefinednessFlowsThroughMemory) {
  // Storing an undefined register is legal (CompCert stores Vundef bytes); loading it
  // back yields Undef, and *using* it (branching) is what faults.
  Machine m = Load(R"(
    _start:
      li t0, 0x20000100
      sw t4, 0(t0)
      lw t5, 0(t0)
      beq t5, zero, _start
      ecall
  )");
  EXPECT_EQ(m.Run(100), Machine::StepResult::kFault);
  EXPECT_NE(m.fault_reason().find("undefined"), std::string::npos);
}

TEST(Machine, UninitializedStackReadsAreUndef) {
  Machine m;
  m.AddRegion("stack", 0x30000000, 4096, /*writable=*/true, /*initially_defined=*/false);
  auto program = ParseAssembly(R"(
    f:
      lw a0, 0(sp)
      ret
  )");
  ASSERT_TRUE(program.ok());
  auto image = program.value().Link(kRomBase, kRamBase);
  ASSERT_TRUE(image.ok());
  m.AddRegion("rom", kRomBase, 4096, false);
  m.WriteMemory(kRomBase, image.value().rom);
  m.set_reg(2, Value::Defined(0x30000100));
  EXPECT_EQ(m.CallFunction(image.value().SymbolOrDie("f"), {}, 100),
            Machine::StepResult::kHalt);
  EXPECT_FALSE(m.reg(10).defined);
}

TEST(Machine, X0AlwaysZero) {
  EXPECT_EQ(RunAndGetA0(R"(
    _start:
      li t0, 7
      add zero, t0, t0
      mv a0, zero
      ecall
  )"),
            0u);
}

TEST(Machine, CallFunctionHelper) {
  auto program = ParseAssembly(R"(
    sum3:
      add a0, a0, a1
      add a0, a0, a2
      ret
  )");
  ASSERT_TRUE(program.ok()) << program.error();
  auto image = program.value().Link(kRomBase, kRamBase);
  ASSERT_TRUE(image.ok());
  Machine m;
  m.AddRegion("rom", kRomBase, 4096, false);
  m.AddRegion("stack", 0x7f000000, 1 << 20, true);
  m.WriteMemory(kRomBase, image.value().rom);
  m.set_reg(2, Value::Defined(0x7f000000 + (1 << 20)));
  auto result = m.CallFunction(image.value().SymbolOrDie("sum3"), {10, 20, 12}, 1000);
  EXPECT_EQ(result, Machine::StepResult::kHalt) << m.fault_reason();
  EXPECT_EQ(m.reg(10).bits, 42u);
}

TEST(Machine, StepLimitFaults) {
  Machine m = Load(R"(
    _start:
      j _start
  )");
  EXPECT_EQ(m.Run(10), Machine::StepResult::kFault);
  EXPECT_NE(m.fault_reason().find("step limit"), std::string::npos);
}

TEST(Machine, InstretCounts) {
  Machine m = Load(R"(
    _start:
      nop
      nop
      nop
      ecall
  )");
  EXPECT_EQ(m.Run(100), Machine::StepResult::kHalt);
  EXPECT_EQ(m.instret(), 4u);
}

TEST(Machine, DataInitImageInRom) {
  // .data contents are linked into ROM at __data_lma; a loader (or boot code) copies
  // them to RAM. Verify the symbols and the load image.
  auto program = ParseAssembly(R"(
    _start: ecall
    .data
    xyz: .word 0xabad1dea
  )");
  ASSERT_TRUE(program.ok());
  auto image = program.value().Link(kRomBase, kRamBase);
  ASSERT_TRUE(image.ok());
  const Image& img = image.value();
  uint32_t lma = img.SymbolOrDie("__data_lma");
  uint32_t vma = img.SymbolOrDie("xyz");
  EXPECT_EQ(vma, kRamBase);
  EXPECT_EQ(parfait::LoadLe32(img.rom.data() + (lma - kRomBase)), 0xabad1deau);
}

}  // namespace
}  // namespace parfait::riscv
