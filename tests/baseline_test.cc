// Tests for the shared baseline-file handling (tools/baseline.h): the atomic
// rewrite must either fully replace the baseline or leave the original untouched
// and report the failure, so a CLI never exits 0 over a stale baseline.
#include "tools/baseline.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <set>
#include <string>
#include <vector>

namespace parfait::tools {
namespace {

namespace fs = std::filesystem;

class BaselineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("parfait_baseline_test_" +
            std::to_string(::testing::UnitTest::GetInstance()->random_seed()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fs::create_directories(dir_);
  }
  void TearDown() override {
    std::error_code ec;
    fs::remove_all(dir_, ec);
  }
  std::string Path(const std::string& name) const { return (dir_ / name).string(); }

  fs::path dir_;
};

TEST_F(BaselineTest, WriteThenLoadRoundTrips) {
  std::string path = Path("b.txt");
  std::vector<std::string> lines = {"ecdsa 0x00000010 secret-mul",
                                    "hasher 0x00000020 secret-branch"};
  std::string error;
  ASSERT_TRUE(WriteBaselineAtomic(path, "# header\n", lines, &error)) << error;

  std::set<std::string> loaded;
  ASSERT_TRUE(LoadBaseline(path, &loaded, &error)) << error;
  EXPECT_EQ(loaded, std::set<std::string>(lines.begin(), lines.end()));
  // No leftover temp file from the atomic rewrite.
  EXPECT_FALSE(fs::exists(path + ".tmp"));
}

TEST_F(BaselineTest, LoadSkipsCommentsAndBlankLines) {
  std::string path = Path("b.txt");
  {
    std::ofstream out(path);
    out << "# comment\n\nkey one\n# another\nkey two\n\n";
  }
  std::set<std::string> loaded;
  std::string error;
  ASSERT_TRUE(LoadBaseline(path, &loaded, &error)) << error;
  EXPECT_EQ(loaded, (std::set<std::string>{"key one", "key two"}));
}

TEST_F(BaselineTest, LoadMissingFileFails) {
  std::set<std::string> loaded;
  std::string error;
  EXPECT_FALSE(LoadBaseline(Path("nope.txt"), &loaded, &error));
  EXPECT_NE(error.find("cannot read"), std::string::npos) << error;
}

TEST_F(BaselineTest, WriteIntoMissingDirectoryFails) {
  std::string path = Path("no_such_dir/b.txt");
  std::string error;
  EXPECT_FALSE(WriteBaselineAtomic(path, "# h\n", {"k"}, &error));
  EXPECT_FALSE(error.empty());
  EXPECT_FALSE(fs::exists(path + ".tmp"));
}

TEST_F(BaselineTest, RenameFailureKeepsOriginalAndReports) {
  // A directory at the destination makes the final rename fail; the original
  // baseline (here: absent) must stay untouched and the temp file cleaned up.
  std::string path = Path("victim");
  fs::create_directories(fs::path(path) / "occupied");
  std::string error;
  EXPECT_FALSE(WriteBaselineAtomic(path, "# h\n", {"k"}, &error));
  EXPECT_NE(error.find("rename"), std::string::npos) << error;
  EXPECT_FALSE(fs::exists(path + ".tmp"));
  EXPECT_TRUE(fs::is_directory(path));
}

TEST_F(BaselineTest, UpdatePreservesUnrelatedEntriesAtomically) {
  std::string path = Path("b.txt");
  std::string error;
  ASSERT_TRUE(WriteBaselineAtomic(path, "# h\n", {"old entry"}, &error)) << error;
  ASSERT_TRUE(WriteBaselineAtomic(path, "# h\n", {"new entry"}, &error)) << error;
  std::set<std::string> loaded;
  ASSERT_TRUE(LoadBaseline(path, &loaded, &error)) << error;
  EXPECT_EQ(loaded, (std::set<std::string>{"new entry"}));
}

}  // namespace
}  // namespace parfait::tools
