#include <gtest/gtest.h>

#include "src/minicc/compiler.h"
#include "src/riscv/machine.h"

namespace parfait::minicc {
namespace {

using riscv::Machine;
using riscv::Value;

constexpr uint32_t kRomBase = 0x00000000;
constexpr uint32_t kRamBase = 0x20000000;
constexpr uint32_t kStackBase = 0x70000000;
constexpr uint32_t kStackSize = 1 << 20;

struct Compiled {
  riscv::Image image;
  Machine machine;
};

// Compiles MiniC, links, loads, and prepares a machine with ROM/RAM/stack.
Compiled CompileAndLoad(const std::string& source, int opt_level) {
  riscv::Program program;
  CodegenOptions options;
  options.opt_level = opt_level;
  auto compiled = CompileSource(source, options, &program);
  EXPECT_TRUE(compiled.ok()) << compiled.error();
  auto image = program.Link(kRomBase, kRamBase);
  EXPECT_TRUE(image.ok()) << image.error();
  Compiled out{image.value(), Machine()};
  Machine& m = out.machine;
  m.AddRegion("rom", kRomBase, 1 << 20, false);
  m.AddRegion("ram", kRamBase, 1 << 20, true);
  m.AddRegion("stack", kStackBase, kStackSize, true);
  m.WriteMemory(kRomBase, out.image.rom);
  if (out.image.data_size > 0) {
    auto init = m.ReadMemory(out.image.SymbolOrDie("__data_lma"), out.image.data_size);
    m.WriteMemory(out.image.SymbolOrDie("__data_start"), init);
  }
  m.set_reg(2, Value::Defined(kStackBase + kStackSize));
  return out;
}

// Compiles and calls `fn(args)` returning a0.
uint32_t RunFn(const std::string& source, const std::string& fn,
               const std::vector<uint32_t>& args, int opt_level,
               uint64_t max_steps = 10'000'000) {
  Compiled c = CompileAndLoad(source, opt_level);
  auto result = c.machine.CallFunction(c.image.SymbolOrDie(fn), args, max_steps);
  EXPECT_EQ(result, Machine::StepResult::kHalt) << c.machine.fault_reason();
  EXPECT_TRUE(c.machine.reg(10).defined);
  return c.machine.reg(10).bits;
}

// Every behavioural test runs at both optimization levels: O0 is the CompCert
// stand-in, O2 the GCC stand-in, and they must agree (Table 5's premise).
class MiniccExec : public testing::TestWithParam<int> {
 protected:
  int opt() const { return GetParam(); }
};

TEST_P(MiniccExec, ReturnConstant) {
  EXPECT_EQ(RunFn("u32 f(void) { return 42; }", "f", {}, opt()), 42u);
}

TEST_P(MiniccExec, Arithmetic) {
  EXPECT_EQ(RunFn("u32 f(u32 a, u32 b) { return (a + b) * 2 - a / b; }", "f", {10, 5}, opt()),
            (10u + 5u) * 2u - 10u / 5u);
}

TEST_P(MiniccExec, UnsignedWrapAround) {
  EXPECT_EQ(RunFn("u32 f(u32 a) { return a + 1; }", "f", {0xffffffff}, opt()), 0u);
}

TEST_P(MiniccExec, BitwiseOps) {
  EXPECT_EQ(RunFn("u32 f(u32 a, u32 b) { return (a & b) | (a ^ b); }", "f",
                  {0xf0f0f0f0, 0x0ff00ff0}, opt()),
            (0xf0f0f0f0u & 0x0ff00ff0u) | (0xf0f0f0f0u ^ 0x0ff00ff0u));
}

TEST_P(MiniccExec, Shifts) {
  EXPECT_EQ(RunFn("u32 f(u32 a) { return (a << 4) + (a >> 28); }", "f", {0x80000001}, opt()),
            (0x80000001u << 4) + (0x80000001u >> 28));
}

TEST_P(MiniccExec, Comparisons) {
  const std::string src = R"(
    u32 f(u32 a, u32 b) {
      u32 r = 0;
      if (a < b) { r = r + 1; }
      if (a > b) { r = r + 2; }
      if (a <= b) { r = r + 4; }
      if (a >= b) { r = r + 8; }
      if (a == b) { r = r + 16; }
      if (a != b) { r = r + 32; }
      return r;
    }
  )";
  EXPECT_EQ(RunFn(src, "f", {3, 7}, opt()), 1u + 4u + 32u);
  EXPECT_EQ(RunFn(src, "f", {7, 7}, opt()), 4u + 8u + 16u);
  EXPECT_EQ(RunFn(src, "f", {9, 7}, opt()), 2u + 8u + 32u);
  // Comparisons are unsigned: 0xffffffff > 1.
  EXPECT_EQ(RunFn(src, "f", {0xffffffff, 1}, opt()), 2u + 8u + 32u);
}

TEST_P(MiniccExec, WhileLoopSum) {
  EXPECT_EQ(RunFn(R"(
    u32 f(u32 n) {
      u32 sum = 0;
      u32 i = 1;
      while (i <= n) { sum = sum + i; i = i + 1; }
      return sum;
    }
  )",
                  "f", {100}, opt()),
            5050u);
}

TEST_P(MiniccExec, ForLoopWithBreakContinue) {
  EXPECT_EQ(RunFn(R"(
    u32 f(void) {
      u32 sum = 0;
      for (u32 i = 0; i < 100; i = i + 1) {
        if (i == 50) { break; }
        if ((i & 1) == 1) { continue; }
        sum = sum + i;
      }
      return sum;
    }
  )",
                  "f", {}, opt()),
            [] {
              uint32_t sum = 0;
              for (uint32_t i = 0; i < 100; i++) {
                if (i == 50) break;
                if ((i & 1) == 1) continue;
                sum += i;
              }
              return sum;
            }());
}

TEST_P(MiniccExec, NestedCalls) {
  EXPECT_EQ(RunFn(R"(
    u32 add(u32 a, u32 b) { return a + b; }
    u32 mul2(u32 a) { return a * 2; }
    u32 f(u32 x) { return add(mul2(x), add(x, mul2(add(x, 1)))); }
  )",
                  "f", {5}, opt()),
            10u + (5u + 12u));
}

TEST_P(MiniccExec, Recursion) {
  EXPECT_EQ(RunFn(R"(
    u32 fib(u32 n) {
      if (n < 2) { return n; }
      return fib(n - 1) + fib(n - 2);
    }
  )",
                  "fib", {15}, opt()),
            610u);
}

TEST_P(MiniccExec, LocalArrays) {
  EXPECT_EQ(RunFn(R"(
    u32 f(void) {
      u32 a[8];
      for (u32 i = 0; i < 8; i = i + 1) { a[i] = i * i; }
      u32 sum = 0;
      for (u32 i = 0; i < 8; i = i + 1) { sum = sum + a[i]; }
      return sum;
    }
  )",
                  "f", {}, opt()),
            140u);
}

TEST_P(MiniccExec, ByteArraysAndTruncation) {
  EXPECT_EQ(RunFn(R"(
    u32 f(u32 x) {
      u8 b[4];
      b[0] = (u8)x;
      b[1] = (u8)(x >> 8);
      b[2] = (u8)(x >> 16);
      b[3] = (u8)(x >> 24);
      return (u32)b[0] + ((u32)b[1] << 8) + ((u32)b[2] << 16) + ((u32)b[3] << 24);
    }
  )",
                  "f", {0xdeadbeef}, opt()),
            0xdeadbeefu);
}

TEST_P(MiniccExec, PointerArithmetic) {
  EXPECT_EQ(RunFn(R"(
    u32 f(void) {
      u32 a[4];
      u32 *p = a;
      *p = 10;
      *(p + 1) = 20;
      p = p + 2;
      *p = 30;
      p[1] = 40;
      return a[0] + a[1] + a[2] + a[3];
    }
  )",
                  "f", {}, opt()),
            100u);
}

TEST_P(MiniccExec, PointerParams) {
  EXPECT_EQ(RunFn(R"(
    void swap(u32 *a, u32 *b) {
      u32 t = *a;
      *a = *b;
      *b = t;
    }
    u32 f(void) {
      u32 x = 3;
      u32 y = 4;
      swap(&x, &y);
      return x * 10 + y;
    }
  )",
                  "f", {}, opt()),
            43u);
}

TEST_P(MiniccExec, GlobalsAndEnums) {
  EXPECT_EQ(RunFn(R"(
    enum { N = 5, BASE = 100 };
    u32 counter = 7;
    const u32 table[N] = {1, 2, 3, 4, 5};
    u32 scratch[N];
    u32 f(void) {
      u32 sum = BASE + counter;
      for (u32 i = 0; i < N; i = i + 1) {
        scratch[i] = table[i] * 2;
        sum = sum + scratch[i];
      }
      counter = counter + 1;
      sum = sum + counter;
      return sum;
    }
  )",
                  "f", {}, opt()),
            100u + 7u + 2u * 15u + 8u);
}

TEST_P(MiniccExec, MulhuBuiltin) {
  EXPECT_EQ(RunFn("u32 f(u32 a, u32 b) { return __mulhu(a, b); }", "f",
                  {0x12345678, 0x9abcdef0}, opt()),
            static_cast<uint32_t>((0x12345678ULL * 0x9abcdef0ULL) >> 32));
}

TEST_P(MiniccExec, ShortCircuitAnd) {
  // The right operand must not execute when the left is false (would fault: null deref).
  EXPECT_EQ(RunFn(R"(
    u32 g;
    u32 touch(u32 v) { g = g + 1; return v; }
    u32 f(u32 a) {
      g = 0;
      u32 r = 0;
      if (a && touch(1)) { r = 1; }
      return r * 100 + g;
    }
  )",
                  "f", {0}, opt()),
            0u);
}

TEST_P(MiniccExec, ShortCircuitOr) {
  EXPECT_EQ(RunFn(R"(
    u32 g;
    u32 touch(u32 v) { g = g + 1; return v; }
    u32 f(u32 a) {
      g = 0;
      u32 r = 0;
      if (a || touch(1)) { r = 1; }
      return r * 100 + g;
    }
  )",
                  "f", {5}, opt()),
            100u);
}

TEST_P(MiniccExec, UnaryOps) {
  EXPECT_EQ(RunFn("u32 f(u32 a) { return (-a) + (~a) + (!a) + !(!a); }", "f", {9}, opt()),
            (0u - 9u) + ~9u + 0u + 1u);
}

TEST_P(MiniccExec, DivModByNonPowerOfTwo) {
  EXPECT_EQ(RunFn("u32 f(u32 a, u32 b) { return (a / b) * 1000 + a % b; }", "f", {12345, 67},
                  opt()),
            (12345u / 67u) * 1000u + 12345u % 67u);
}

TEST_P(MiniccExec, CastIntToPointer) {
  // MMIO-style access: write through a pointer cast from an integer address. RAM base
  // is 0x20000000 in the test harness.
  EXPECT_EQ(RunFn(R"(
    u32 f(void) {
      *(volatile u32 *)0x20000400 = 77;
      return *(volatile u32 *)0x20000400;
    }
  )",
                  "f", {}, opt()),
            77u);
}

TEST_P(MiniccExec, MemcpyStyleLoop) {
  EXPECT_EQ(RunFn(R"(
    void copy(u8 *dst, u8 *src, u32 n) {
      for (u32 i = 0; i < n; i = i + 1) { dst[i] = src[i]; }
    }
    u32 f(void) {
      u8 a[16];
      u8 b[16];
      for (u32 i = 0; i < 16; i = i + 1) { a[i] = (u8)(i * 3); }
      copy(b, a, 16);
      u32 sum = 0;
      for (u32 i = 0; i < 16; i = i + 1) { sum = sum + b[i]; }
      return sum;
    }
  )",
                  "f", {}, opt()),
            [] {
              uint32_t sum = 0;
              for (uint32_t i = 0; i < 16; i++) {
                sum += static_cast<uint8_t>(i * 3);
              }
              return sum;
            }());
}

TEST_P(MiniccExec, ManyLocalsExceedRegisterFile) {
  // More locals than promotable registers: spills must still be correct at O2.
  EXPECT_EQ(RunFn(R"(
    u32 f(u32 x) {
      u32 a = x + 1;  u32 b = x + 2;  u32 c = x + 3;  u32 d = x + 4;
      u32 e = x + 5;  u32 g = x + 6;  u32 h = x + 7;  u32 i = x + 8;
      u32 j = x + 9;  u32 k = x + 10; u32 l = x + 11; u32 m = x + 12;
      u32 n = x + 13; u32 o = x + 14; u32 p = x + 15; u32 q = x + 16;
      return a + b + c + d + e + g + h + i + j + k + l + m + n + o + p + q;
    }
  )",
                  "f", {10}, opt()),
            16u * 10u + (16u * 17u) / 2u);
}

TEST_P(MiniccExec, AssignmentAsExpression) {
  EXPECT_EQ(RunFn(R"(
    u32 f(void) {
      u32 a;
      u32 b;
      a = (b = 21) + 21;
      return a + b;
    }
  )",
                  "f", {}, opt()),
            63u);
}

TEST_P(MiniccExec, GlobalByteBuffer) {
  EXPECT_EQ(RunFn(R"(
    u8 buf[8];
    u32 f(u32 x) {
      buf[0] = (u8)x;
      buf[7] = (u8)(x + 1);
      return (u32)buf[0] * 256 + (u32)buf[7];
    }
  )",
                  "f", {0xab}, opt()),
            0xabu * 256u + 0xacu);
}

INSTANTIATE_TEST_SUITE_P(OptLevels, MiniccExec, testing::Values(0, 2),
                         [](const testing::TestParamInfo<int>& info) {
                           return "O" + std::to_string(info.param);
                         });

TEST(MiniccErrors, UndefinedVariable) {
  riscv::Program p;
  auto r = CompileSource("u32 f(void) { return nope; }", {}, &p);
  EXPECT_FALSE(r.ok());
  EXPECT_NE(r.error().find("undefined variable"), std::string::npos);
}

TEST(MiniccErrors, UndefinedFunction) {
  riscv::Program p;
  auto r = CompileSource("u32 f(void) { return g(); }", {}, &p);
  EXPECT_FALSE(r.ok());
}

TEST(MiniccErrors, CompoundAssignmentRejected) {
  riscv::Program p;
  auto r = CompileSource("u32 f(u32 a) { a += 1; return a; }", {}, &p);
  EXPECT_FALSE(r.ok());
}

TEST(MiniccErrors, WrongArgCount) {
  riscv::Program p;
  auto r = CompileSource("u32 g(u32 a) { return a; } u32 f(void) { return g(1, 2); }", {}, &p);
  EXPECT_FALSE(r.ok());
}

TEST(MiniccErrors, DuplicateFunction) {
  riscv::Program p;
  auto r = CompileSource("u32 f(void) { return 1; } u32 f(void) { return 2; }", {}, &p);
  EXPECT_FALSE(r.ok());
}

TEST(MiniccErrors, SyntaxError) {
  riscv::Program p;
  auto r = CompileSource("u32 f(void) { return 1 +; }", {}, &p);
  EXPECT_FALSE(r.ok());
}

TEST(MiniccO2, GeneratesFewerInstructions) {
  // The optimizing code generator must produce a meaningfully smaller .text for
  // register-heavy loop code — this is the mechanism behind the Table 5 speedup.
  const std::string src = R"(
    u32 f(u32 n) {
      u32 sum = 0;
      for (u32 i = 0; i < n; i = i + 1) { sum = sum + i * 4 + 1; }
      return sum;
    }
  )";
  auto text_size = [&](int opt_level) {
    riscv::Program p;
    CodegenOptions o;
    o.opt_level = opt_level;
    auto r = CompileSource(src, o, &p);
    EXPECT_TRUE(r.ok()) << r.error();
    auto img = p.Link(0, 0x20000000);
    EXPECT_TRUE(img.ok());
    return img.value().rom.size();
  };
  EXPECT_LT(text_size(2), text_size(0));
}

TEST(MiniccO2, ExecutesFewerInstructionsInLoops) {
  const std::string src = R"(
    u32 f(u32 n) {
      u32 sum = 0;
      for (u32 i = 0; i < n; i = i + 1) { sum = sum + i; }
      return sum;
    }
  )";
  uint64_t counts[2];
  int idx = 0;
  for (int opt_level : {0, 2}) {
    Compiled c = CompileAndLoad(src, opt_level);
    auto result = c.machine.CallFunction(c.image.SymbolOrDie("f"), {1000}, 1'000'000);
    ASSERT_EQ(result, Machine::StepResult::kHalt);
    EXPECT_EQ(c.machine.reg(10).bits, 499500u);
    counts[idx++] = c.machine.instret();
  }
  EXPECT_LT(counts[1] * 2, counts[0]);  // O2 at least 2x fewer dynamic instructions.
}

}  // namespace
}  // namespace parfait::minicc
