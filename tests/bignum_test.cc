#include <gtest/gtest.h>

#include "src/crypto/bignum.h"
#include "src/support/bytes.h"
#include "src/support/rng.h"

namespace parfait::crypto {
namespace {

Bn256 FromHexBn(const std::string& hex) {
  Bytes b = FromHex(hex);
  EXPECT_EQ(b.size(), 32u);
  return Bn256::FromBytes(std::span<const uint8_t, 32>(b.data(), 32));
}

Bn256 Random(Rng& rng) {
  Bn256 r;
  for (auto& l : r.limb) {
    l = rng.Next32();
  }
  return r;
}

const char kP256Prime[] = "ffffffff00000001000000000000000000000000ffffffffffffffffffffffff";
const char kP256Order[] = "ffffffff00000000ffffffffffffffffbce6faada7179e84f3b9cac2fc632551";

TEST(Bn256, BytesRoundTrip) {
  Rng rng(1);
  for (int i = 0; i < 20; i++) {
    Bytes b = rng.RandomBytes(32);
    Bn256 v = Bn256::FromBytes(std::span<const uint8_t, 32>(b.data(), 32));
    Bytes out(32);
    v.ToBytes(std::span<uint8_t, 32>(out.data(), 32));
    EXPECT_EQ(out, b);
  }
}

TEST(Bn256, ByteOrderIsBigEndian) {
  Bn256 one = FromHexBn("0000000000000000000000000000000000000000000000000000000000000001");
  EXPECT_EQ(one, Bn256::One());
  Bn256 big = FromHexBn("0100000000000000000000000000000000000000000000000000000000000000");
  EXPECT_EQ(big.limb[7], 0x01000000u);
  EXPECT_EQ(big.limb[0], 0u);
}

TEST(Bn256, AddSubInverse) {
  Rng rng(2);
  for (int i = 0; i < 100; i++) {
    Bn256 a = Random(rng);
    Bn256 b = Random(rng);
    Bn256 sum;
    uint32_t carry = BnAdd(sum, a, b);
    Bn256 back;
    uint32_t borrow = BnSub(back, sum, b);
    EXPECT_EQ(back, a);
    EXPECT_EQ(carry, borrow);  // Overflow on add shows up as borrow on the way back.
  }
}

TEST(Bn256, GeMask) {
  Bn256 a = FromHexBn("0000000000000000000000000000000000000000000000000000000000000005");
  Bn256 b = FromHexBn("0000000000000000000000000000000000000000000000000000000000000003");
  EXPECT_EQ(BnGeMask(a, b), 0xffffffffu);
  EXPECT_EQ(BnGeMask(b, a), 0u);
  EXPECT_EQ(BnGeMask(a, a), 0xffffffffu);
}

TEST(Bn256, IsZeroMask) {
  EXPECT_EQ(BnIsZeroMask(Bn256::Zero()), 0xffffffffu);
  EXPECT_EQ(BnIsZeroMask(Bn256::One()), 0u);
  Bn256 high = Bn256::Zero();
  high.limb[7] = 1;
  EXPECT_EQ(BnIsZeroMask(high), 0u);
}

TEST(Bn256, Cmov) {
  Bn256 a = Bn256::One();
  Bn256 b = Bn256::Zero();
  BnCmov(b, a, 0xffffffffu);
  EXPECT_EQ(b, a);
  Bn256 c = Bn256::Zero();
  BnCmov(c, a, 0);
  EXPECT_EQ(c, Bn256::Zero());
}

class MontyTest : public testing::TestWithParam<const char*> {
 protected:
  MontyTest() : m_(FromHexBn(GetParam())) {}
  Bn256 RandomMod(Rng& rng) {
    Bn256 r = Random(rng);
    // Clear the top bit twice over to land below the modulus (both P-256 moduli exceed
    // 2^255), then a conditional subtract for safety.
    return m_.Reduce(r);
  }
  Monty m_;
};

TEST_P(MontyTest, OneIsMultiplicativeIdentity) {
  Rng rng(3);
  for (int i = 0; i < 20; i++) {
    Bn256 a = RandomMod(rng);
    Bn256 am = m_.ToMont(a);
    Bn256 prod = m_.Mul(am, m_.r_mod_m());  // a * 1 in Montgomery domain.
    EXPECT_EQ(m_.FromMont(prod), a);
  }
}

TEST_P(MontyTest, ToFromMontRoundTrip) {
  Rng rng(4);
  for (int i = 0; i < 50; i++) {
    Bn256 a = RandomMod(rng);
    EXPECT_EQ(m_.FromMont(m_.ToMont(a)), a);
  }
}

TEST_P(MontyTest, MulCommutative) {
  Rng rng(5);
  for (int i = 0; i < 50; i++) {
    Bn256 a = m_.ToMont(RandomMod(rng));
    Bn256 b = m_.ToMont(RandomMod(rng));
    EXPECT_EQ(m_.Mul(a, b), m_.Mul(b, a));
  }
}

TEST_P(MontyTest, MulAssociative) {
  Rng rng(6);
  for (int i = 0; i < 30; i++) {
    Bn256 a = m_.ToMont(RandomMod(rng));
    Bn256 b = m_.ToMont(RandomMod(rng));
    Bn256 c = m_.ToMont(RandomMod(rng));
    EXPECT_EQ(m_.Mul(m_.Mul(a, b), c), m_.Mul(a, m_.Mul(b, c)));
  }
}

TEST_P(MontyTest, MulDistributesOverAdd) {
  Rng rng(7);
  for (int i = 0; i < 30; i++) {
    Bn256 a = m_.ToMont(RandomMod(rng));
    Bn256 b = m_.ToMont(RandomMod(rng));
    Bn256 c = m_.ToMont(RandomMod(rng));
    Bn256 lhs = m_.Mul(a, m_.Add(b, c));
    Bn256 rhs = m_.Add(m_.Mul(a, b), m_.Mul(a, c));
    EXPECT_EQ(lhs, rhs);
  }
}

TEST_P(MontyTest, AddSubRoundTrip) {
  Rng rng(8);
  for (int i = 0; i < 50; i++) {
    Bn256 a = RandomMod(rng);
    Bn256 b = RandomMod(rng);
    EXPECT_EQ(m_.Sub(m_.Add(a, b), b), a);
  }
}

TEST_P(MontyTest, SubSelfIsZero) {
  Rng rng(9);
  Bn256 a = RandomMod(rng);
  EXPECT_EQ(m_.Sub(a, a), Bn256::Zero());
}

TEST_P(MontyTest, InverseTimesSelfIsOne) {
  Rng rng(10);
  for (int i = 0; i < 10; i++) {
    Bn256 a = RandomMod(rng);
    if (a == Bn256::Zero()) {
      continue;
    }
    Bn256 am = m_.ToMont(a);
    Bn256 inv = m_.Inverse(am);
    Bn256 prod = m_.Mul(am, inv);
    EXPECT_EQ(prod, m_.r_mod_m()) << "iteration " << i;
  }
}

TEST_P(MontyTest, PowMatchesRepeatedMul) {
  Rng rng(11);
  Bn256 a = m_.ToMont(RandomMod(rng));
  Bn256 exp = Bn256::Zero();
  exp.limb[0] = 5;
  Bn256 expect = a;
  for (int i = 0; i < 4; i++) {
    expect = m_.Mul(expect, a);
  }
  EXPECT_EQ(m_.Pow(a, exp), expect);
}

TEST_P(MontyTest, PowZeroExponentIsOne) {
  Rng rng(12);
  Bn256 a = m_.ToMont(RandomMod(rng));
  EXPECT_EQ(m_.Pow(a, Bn256::Zero()), m_.r_mod_m());
}

TEST_P(MontyTest, ReduceIdempotent) {
  Rng rng(13);
  for (int i = 0; i < 50; i++) {
    Bn256 a = Random(rng);
    Bn256 r = m_.Reduce(a);
    EXPECT_EQ(BnGeMask(r, m_.modulus()), 0u);  // r < m.
    EXPECT_EQ(m_.Reduce(r), r);
  }
}

INSTANTIATE_TEST_SUITE_P(P256Moduli, MontyTest, testing::Values(kP256Prime, kP256Order));

// Fermat: a^(m-1) == 1 mod m for prime m — a direct primality-flavored check that the
// Montgomery machinery agrees with number theory.
TEST(Monty, FermatLittleTheorem) {
  Monty m(FromHexBn(kP256Prime));
  Rng rng(14);
  Bn256 a = m.Reduce(Random(rng));
  Bn256 am = m.ToMont(a);
  Bn256 exp;
  Bn256 one = Bn256::One();
  BnSub(exp, m.modulus(), one);
  EXPECT_EQ(m.Pow(am, exp), m.r_mod_m());
}

}  // namespace
}  // namespace parfait::crypto
