#include <gtest/gtest.h>

#include "src/riscv/assembler.h"
#include "src/riscv/disasm.h"

namespace parfait::riscv {
namespace {

Image Link(const std::string& src, uint32_t rom = 0, uint32_t ram = 0x20000000) {
  auto program = ParseAssembly(src);
  EXPECT_TRUE(program.ok()) << program.error();
  auto image = program.value().Link(rom, ram);
  EXPECT_TRUE(image.ok()) << image.error();
  return image.value();
}

Instr DecodeAt(const Image& img, uint32_t addr) {
  uint32_t word = LoadLe32(img.rom.data() + (addr - img.rom_base));
  auto decoded = Decode(word);
  EXPECT_TRUE(decoded.has_value());
  return *decoded;
}

TEST(Assembler, BasicInstructionForms) {
  Image img = Link(R"(
    f:
      add a0, a1, a2
      addi t0, t1, -5
      lw s1, 8(sp)
      sw s1, -4(sp)
      slli a0, a0, 3
  )");
  EXPECT_EQ(DecodeAt(img, 0), (Instr{Op::kAdd, 10, 11, 12, 0}));
  EXPECT_EQ(DecodeAt(img, 4), (Instr{Op::kAddi, 5, 6, 0, -5}));
  EXPECT_EQ(DecodeAt(img, 8), (Instr{Op::kLw, 9, 2, 0, 8}));
  EXPECT_EQ(DecodeAt(img, 12), (Instr{Op::kSw, 0, 2, 9, -4}));
  EXPECT_EQ(DecodeAt(img, 16), (Instr{Op::kSlli, 10, 10, 0, 3}));
}

TEST(Assembler, BranchTargetsResolve) {
  Image img = Link(R"(
    start:
      beq a0, a1, done
      nop
    done:
      ret
  )");
  Instr b = DecodeAt(img, 0);
  EXPECT_EQ(b.op, Op::kBeq);
  EXPECT_EQ(b.imm, 8);  // start+8 == done.
}

TEST(Assembler, BackwardBranch) {
  Image img = Link(R"(
    loop:
      addi a0, a0, -1
      bnez a0, loop
  )");
  Instr b = DecodeAt(img, 4);
  EXPECT_EQ(b.op, Op::kBne);
  EXPECT_EQ(b.imm, -4);
}

TEST(Assembler, HiLoRelocations) {
  Image img = Link(R"(
    f:
      lui t0, %hi(var)
      addi t0, t0, %lo(var)
      ret
    .data
    var: .word 1
  )");
  Instr lui = DecodeAt(img, 0);
  Instr addi = DecodeAt(img, 4);
  uint32_t var = img.SymbolOrDie("var");
  uint32_t reconstructed = static_cast<uint32_t>(lui.imm) + static_cast<uint32_t>(addi.imm);
  EXPECT_EQ(reconstructed, var);
}

TEST(Assembler, HiLoWithNegativeLowPart) {
  // An address whose low 12 bits exceed 0x7ff forces the %hi rounding compensation.
  auto program = ParseAssembly(R"(
    f:
      lui t0, %hi(X)
      addi t0, t0, %lo(X)
    .equ X, 0x12345fff
  )");
  ASSERT_TRUE(program.ok());
  auto image = program.value().Link(0, 0x20000000);
  ASSERT_TRUE(image.ok());
  Instr lui = DecodeAt(image.value(), 0);
  Instr addi = DecodeAt(image.value(), 4);
  EXPECT_EQ(static_cast<uint32_t>(lui.imm) + static_cast<uint32_t>(addi.imm), 0x12345fffu);
  EXPECT_LT(addi.imm, 0);  // The compensation case.
}

TEST(Assembler, PseudoInstructions) {
  Image img = Link(R"(
    f:
      nop
      mv a0, a1
      not a0, a0
      neg a1, a0
      seqz a2, a1
      snez a3, a1
      jr ra
  )");
  EXPECT_EQ(DecodeAt(img, 0), (Instr{Op::kAddi, 0, 0, 0, 0}));
  EXPECT_EQ(DecodeAt(img, 4), (Instr{Op::kAddi, 10, 11, 0, 0}));
  EXPECT_EQ(DecodeAt(img, 8), (Instr{Op::kXori, 10, 10, 0, -1}));
  EXPECT_EQ(DecodeAt(img, 12), (Instr{Op::kSub, 11, 0, 10, 0}));
  EXPECT_EQ(DecodeAt(img, 16), (Instr{Op::kSltiu, 12, 11, 0, 1}));
  EXPECT_EQ(DecodeAt(img, 20), (Instr{Op::kSltu, 13, 0, 11, 0}));
  EXPECT_EQ(DecodeAt(img, 24), (Instr{Op::kJalr, 0, 1, 0, 0}));
}

TEST(Assembler, LiExpansion) {
  Image img = Link(R"(
    f:
      li a0, 100
      li a1, 0x12345678
  )");
  // Small immediate: single addi.
  EXPECT_EQ(DecodeAt(img, 0), (Instr{Op::kAddi, 10, 0, 0, 100}));
  // Large: lui + addi.
  EXPECT_EQ(DecodeAt(img, 4).op, Op::kLui);
  EXPECT_EQ(DecodeAt(img, 8).op, Op::kAddi);
}

TEST(Assembler, SwappedBranchPseudos) {
  Image img = Link(R"(
    f:
      bgt a0, a1, f
      bleu a0, a1, f
  )");
  Instr bgt = DecodeAt(img, 0);
  EXPECT_EQ(bgt.op, Op::kBlt);
  EXPECT_EQ(bgt.rs1, 11);  // Operands swapped.
  EXPECT_EQ(bgt.rs2, 10);
  EXPECT_EQ(DecodeAt(img, 4).op, Op::kBgeu);
}

TEST(Assembler, DataDirectives) {
  Image img = Link(R"(
    .rodata
    tbl: .word 1, 2, 0xdeadbeef
    bs:  .byte 0x11, 0x22
    .align 2
    after: .word 5
  )");
  uint32_t tbl = img.SymbolOrDie("tbl");
  EXPECT_EQ(LoadLe32(img.rom.data() + tbl), 1u);
  EXPECT_EQ(LoadLe32(img.rom.data() + tbl + 8), 0xdeadbeefu);
  uint32_t bs = img.SymbolOrDie("bs");
  EXPECT_EQ(img.rom[bs], 0x11);
  EXPECT_EQ(img.SymbolOrDie("after") % 4, 0u);
}

TEST(Assembler, WordSymbolEmitsAbsoluteAddress) {
  Image img = Link(R"(
    f: ret
    .rodata
    ptr: .word f
  )");
  uint32_t ptr = img.SymbolOrDie("ptr");
  EXPECT_EQ(LoadLe32(img.rom.data() + ptr), img.SymbolOrDie("f"));
}

TEST(Assembler, EquConstants) {
  // .equ names are symbols, usable via %hi/%lo and la (li needs a numeric literal).
  Image img = Link(R"(
    .equ MAGIC, 0xcafe
    f:
      la a0, MAGIC
  )");
  EXPECT_EQ(img.SymbolOrDie("MAGIC"), 0xcafeu);
  Instr lui = DecodeAt(img, 0);
  Instr addi = DecodeAt(img, 4);
  EXPECT_EQ(static_cast<uint32_t>(lui.imm) + static_cast<uint32_t>(addi.imm), 0xcafeu);
}

TEST(Assembler, Errors) {
  EXPECT_FALSE(ParseAssembly("f:\n  bogus a0, a1\n").ok());
  EXPECT_FALSE(ParseAssembly("f:\n  add a0\n").ok());
  // An unknown symbol in .word parses (symbols resolve at link time) but fails to link.
  auto undef_word = ParseAssembly(".word zzz\n");
  ASSERT_TRUE(undef_word.ok());
  EXPECT_FALSE(undef_word.value().Link(0, 0x20000000).ok());
  // A label colliding with a constant is a duplicate symbol at link time.
  auto dup = ParseAssembly(".equ a, 1\na:\n  ret\n");
  ASSERT_TRUE(dup.ok());
  EXPECT_FALSE(dup.value().Link(0, 0x20000000).ok());
  auto undef = ParseAssembly("f:\n  j nowhere\n");
  ASSERT_TRUE(undef.ok());
  EXPECT_FALSE(undef.value().Link(0, 0x20000000).ok());
}

TEST(Assembler, BranchOutOfRange) {
  std::string src = "f:\n  beq a0, a1, far\n";
  for (int i = 0; i < 1100; i++) {
    src += "  nop\n";
  }
  src += "far:\n  ret\n";
  auto program = ParseAssembly(src);
  ASSERT_TRUE(program.ok());
  EXPECT_FALSE(program.value().Link(0, 0x20000000).ok());
}

TEST(Disasm, FormatsCommonInstructions) {
  EXPECT_EQ(Disassemble(Instr{Op::kAddi, 2, 2, 0, -32}), "addi sp, sp, -32");
  EXPECT_EQ(Disassemble(Instr{Op::kLw, 10, 2, 0, 12}), "lw a0, 12(sp)");
  EXPECT_EQ(Disassemble(Instr{Op::kSw, 0, 2, 1, 28}), "sw ra, 28(sp)");
  EXPECT_EQ(Disassemble(Instr{Op::kAdd, 10, 11, 12, 0}), "add a0, a1, a2");
  EXPECT_EQ(Disassemble(Instr{Op::kBne, 0, 5, 6, -8}, 0x100), "bne t0, t1, 0x000000f8");
  EXPECT_EQ(Disassemble(Instr{Op::kEcall, 0, 0, 0, 0}), "ecall");
}

TEST(Disasm, ImageListingHasLabelsAndAddresses) {
  Image img = Link(R"(
    main:
      li a0, 1
      call helper
      ret
    helper:
      add a0, a0, a0
      ret
  )");
  std::string listing = DisassembleImage(img);
  EXPECT_NE(listing.find("main:"), std::string::npos);
  EXPECT_NE(listing.find("helper:"), std::string::npos);
  EXPECT_NE(listing.find("add a0, a0, a0"), std::string::npos);
  EXPECT_NE(listing.find("00000000:"), std::string::npos);
}

TEST(Assembler, PopLastPlainInstr) {
  Program p;
  p.Emit(Instr{Op::kAddi, 5, 5, 0, 4});
  auto popped = p.PopLastPlainInstr();
  ASSERT_TRUE(popped.has_value());
  EXPECT_EQ(*popped, (Instr{Op::kAddi, 5, 5, 0, 4}));
  // Nothing left.
  EXPECT_FALSE(p.PopLastPlainInstr().has_value());
  // A label at the end blocks popping (it would silently rebind).
  p.Emit(Instr{Op::kAddi, 5, 5, 0, 4});
  p.DefineLabel("end");
  EXPECT_FALSE(p.PopLastPlainInstr().has_value());
}

}  // namespace
}  // namespace parfait::riscv
