// Tests for the parallel verification engine: the SplitSeed stream derivation, the
// work-stealing ThreadPool, ParallelFor/ParallelReduce scheduling, and the end-to-end
// determinism guarantee — checkers must produce bit-identical reports at every thread
// count, because a verification result that depends on scheduling is not a result.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <map>
#include <set>
#include <string>
#include <thread>
#include <type_traits>
#include <vector>

#include "src/hsm/app.h"
#include "src/ipr/equivalence.h"
#include "src/ipr/lockstep.h"
#include "src/ipr/state_machine.h"
#include "src/platform/firmware.h"
#include "src/platform/model_asm.h"
#include "src/riscv/translator.h"
#include "src/starling/starling.h"
#include "src/support/parallel.h"
#include "src/support/profiler.h"
#include "src/support/rng.h"
#include "src/support/telemetry.h"

namespace parfait {
namespace {

// ---- SplitSeed: independent deterministic streams ----

TEST(SplitSeed, IsDeterministic) {
  EXPECT_EQ(SplitSeed(42, 7), SplitSeed(42, 7));
  EXPECT_NE(SplitSeed(42, 7), SplitSeed(42, 8));
  EXPECT_NE(SplitSeed(42, 7), SplitSeed(43, 7));
}

TEST(SplitSeed, StreamsAreDistinct) {
  // No collisions across a realistic trial range, including the all-zero seed (a
  // plain xor/add scheme would degenerate there).
  for (uint64_t base : {uint64_t{0}, uint64_t{42}, uint64_t{0xdeadbeef}}) {
    std::set<uint64_t> seen;
    for (uint64_t trial = 0; trial < 4096; trial++) {
      seen.insert(SplitSeed(base, trial));
    }
    EXPECT_EQ(seen.size(), 4096u) << "collision under base seed " << base;
  }
}

TEST(SplitSeed, AdjacentStreamsDecorrelate) {
  // First draws from adjacent trial streams should not be related by small deltas.
  Rng a(SplitSeed(1, 0));
  Rng b(SplitSeed(1, 1));
  uint64_t xa = a.Next64();
  uint64_t xb = b.Next64();
  EXPECT_NE(xa, xb);
  EXPECT_NE(xa + 1, xb);
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng parent(99);
  Rng child = parent.Fork();
  EXPECT_NE(parent.Next64(), child.Next64());
  static_assert(!std::is_copy_constructible_v<Rng>,
                "Rng must not be silently copyable: a copied generator replays the "
                "same stream, which breaks trial independence");
}

// ---- ThreadPool / ParallelFor ----

TEST(ParallelFor, RunsEveryIndexExactlyOnce) {
  for (int threads : {1, 2, 8}) {
    ThreadPool pool(threads);
    constexpr size_t kN = 10'000;
    std::vector<std::atomic<int>> hits(kN);
    ParallelFor(pool, kN, [&](size_t i) { hits[i].fetch_add(1); });
    for (size_t i = 0; i < kN; i++) {
      ASSERT_EQ(hits[i].load(), 1) << "index " << i << " at " << threads << " threads";
    }
  }
}

TEST(ParallelFor, HandlesEmptyAndSingletonRanges) {
  ThreadPool pool(4);
  ParallelFor(pool, 0, [&](size_t) { FAIL() << "body must not run for n = 0"; });
  std::atomic<int> count{0};
  ParallelFor(pool, 1, [&](size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 1);
}

TEST(ThreadPool, SingleThreadPoolRunsInline) {
  // ThreadPool(1) must not spawn workers: the caller is the only lane, so bodies run
  // on the calling thread (this is what makes num_threads=1 strictly serial).
  ThreadPool pool(1);
  EXPECT_EQ(pool.lanes(), 1);
  std::thread::id caller = std::this_thread::get_id();
  ParallelFor(pool, 16, [&](size_t) { EXPECT_EQ(std::this_thread::get_id(), caller); });
}

TEST(ThreadPool, OversubscriptionIsAllowed) {
  // Determinism tests need 8 lanes even on a 1-core machine.
  ThreadPool pool(8);
  EXPECT_EQ(pool.lanes(), 8);
  std::atomic<int> count{0};
  ParallelFor(pool, 100, [&](size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, WorkerStatsAccountForScheduledTasks) {
  // One entry per spawned worker (the calling lane is untracked), and the workers'
  // task counts never exceed what was actually scheduled.
  ThreadPool pool(4);
  EXPECT_EQ(pool.WorkerStats().size(), 3u);
  constexpr size_t kN = 2'000;
  std::atomic<int> count{0};
  ParallelFor(pool, kN, [&](size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), static_cast<int>(kN));
  uint64_t worker_tasks = 0;
  for (const PoolLaneStats& lane : pool.WorkerStats()) {
    EXPECT_LE(lane.steals, lane.tasks_run);
    worker_tasks += lane.tasks_run;
  }
  // ParallelFor schedules in chunks, so the exact split caller-vs-workers is
  // schedule-dependent; the workers can never have run more than everything.
  EXPECT_LE(worker_tasks, kN);

  ThreadPool serial(1);
  EXPECT_TRUE(serial.WorkerStats().empty());
}

TEST(ThreadPool, BusyTimeAndQueueDepthRequireProfilingToBeArmed) {
  // With telemetry and the profiler both disabled there are no per-task clock
  // reads and no queue-depth samples — the stats stay zero.
  ASSERT_FALSE(telemetry::Telemetry::Global().enabled());
  ASSERT_FALSE(profiler::Profiler::Global().enabled());
  {
    ThreadPool pool(4);
    ParallelFor(pool, 500, [](size_t) {});
    for (const PoolLaneStats& lane : pool.WorkerStats()) {
      EXPECT_EQ(lane.busy_ns, 0u);
      EXPECT_EQ(lane.queue_depth_samples, 0u);
    }
  }

  // Armed: workers that ran tasks have measured busy time, and queue pushes were
  // depth-sampled. Workers publish busy time after the task body returns, which can
  // lag the fork-join barrier — so observe through the profiler's folded lane
  // records after teardown (the join orders every publish before the fold).
  profiler::Profiler::Global().Enable();
  {
    ThreadPool pool(4);
    ParallelFor(pool, 500, [](size_t) {
      std::this_thread::sleep_for(std::chrono::microseconds(1));
    });
  }
  std::map<int, profiler::LaneRecord> lanes = profiler::Profiler::Global().lanes();
  profiler::Profiler::Global().Disable();
  profiler::Profiler::Global().Reset();
  uint64_t total_samples = 0;
  for (const auto& [index, lane] : lanes) {
    if (lane.tasks > 0) {
      EXPECT_GT(lane.busy_ns, 0u);
    }
    total_samples += lane.queue_depth_samples;
    // The sampled average can never exceed the sampled max.
    if (lane.queue_depth_samples > 0) {
      EXPECT_LE(lane.queue_depth_sum,
                lane.queue_depth_max * lane.queue_depth_samples);
    }
  }
  EXPECT_GT(total_samples, 0u);
}

TEST(ThreadPool, TeardownFoldsLaneRecordsIntoTheProfiler) {
  auto& prof = profiler::Profiler::Global();
  ASSERT_FALSE(prof.enabled());
  prof.Enable();
  uint64_t scheduled = 0;
  {
    ThreadPool pool(4);
    std::atomic<int> count{0};
    ParallelFor(pool, 1'000, [&](size_t) { count.fetch_add(1); });
    EXPECT_EQ(count.load(), 1'000);
    for (const PoolLaneStats& lane : pool.WorkerStats()) {
      scheduled += lane.tasks_run;
    }
  }  // ~ThreadPool folds lane records.
  std::map<int, profiler::LaneRecord> lanes = prof.lanes();
  prof.Disable();
  prof.Reset();
  // Worker lanes are numbered from 1 and their task counts are pool tasks (the
  // WorkerStats totals); lane 0 is the fork-join caller, folded alongside them with
  // its claimed ParallelFor indices. The caller always at least reaches the join
  // barrier, so lane 0 is present whenever the pool ran a region under profiling.
  ASSERT_FALSE(lanes.empty());
  ASSERT_EQ(lanes.count(0), 1u);
  uint64_t worker_folded = 0;
  for (const auto& [lane, record] : lanes) {
    EXPECT_GE(lane, 0);
    EXPECT_LE(lane, 3);
    if (lane >= 1) {
      worker_folded += record.tasks;
    }
  }
  EXPECT_EQ(worker_folded, scheduled);
  EXPECT_LE(lanes.at(0).tasks, 1'000u);
}

TEST(ThreadPool, TeardownDoesNotFoldWhenProfilerDisabled) {
  auto& prof = profiler::Profiler::Global();
  ASSERT_FALSE(prof.enabled());
  {
    ThreadPool pool(4);
    ParallelFor(pool, 100, [](size_t) {});
  }
  EXPECT_TRUE(prof.lanes().empty());
}

// ---- ParallelReduce: lowest-failure settlement ----

TEST(ParallelReduce, ReportsLowestFailureIndex) {
  // Failures at 900, 40, and 7: the settled failure must be 7 at every thread count,
  // even if a worker discovers 900 first.
  for (int threads : {1, 2, 8}) {
    ThreadPool pool(threads);
    auto outcome = ParallelReduce<int>(
        pool, 1000, [](size_t i) { return static_cast<int>(i); },
        [](const int& v) { return v == 900 || v == 40 || v == 7; });
    ASSERT_TRUE(outcome.first_failure.has_value());
    EXPECT_EQ(*outcome.first_failure, 7u);
    // The settlement invariant: everything below the reported failure ran, so
    // index-ordered aggregation over [0, first_failure] is schedule-independent.
    for (size_t i = 0; i <= 7; i++) {
      ASSERT_TRUE(outcome.results[i].has_value());
      EXPECT_EQ(*outcome.results[i], static_cast<int>(i));
    }
  }
}

TEST(ParallelReduce, FailureShortCircuitsWithoutDeadlock) {
  // An early failure must let the remaining trials be skipped — and the reduce must
  // still join all in-flight work and return (no deadlock, no lost wakeup).
  ThreadPool pool(8);
  std::atomic<size_t> bodies_run{0};
  auto outcome = ParallelReduce<bool>(
      pool, 100'000,
      [&](size_t i) {
        bodies_run.fetch_add(1);
        return i == 3;  // Injected failing trial.
      },
      [](const bool& failed) { return failed; });
  ASSERT_TRUE(outcome.first_failure.has_value());
  EXPECT_EQ(*outcome.first_failure, 3u);
  // Skipping must actually happen: nowhere near all 100k bodies should run once the
  // failure at index 3 settles.
  EXPECT_LT(bodies_run.load(), 100'000u);
}

TEST(ParallelReduce, NoFailureRunsEverything) {
  ThreadPool pool(4);
  auto outcome = ParallelReduce<size_t>(
      pool, 512, [](size_t i) { return i * 2; }, [](const size_t&) { return false; });
  EXPECT_FALSE(outcome.first_failure.has_value());
  for (size_t i = 0; i < 512; i++) {
    ASSERT_TRUE(outcome.results[i].has_value());
    EXPECT_EQ(*outcome.results[i], i * 2);
  }
}

// ---- End-to-end determinism: identical checker reports at 1, 2, and 8 threads ----

TEST(Determinism, CheckAppReportsAreThreadCountInvariant) {
  starling::StarlingOptions base;
  base.valid_trials = 24;
  base.invalid_trials = 64;
  base.sequence_trials = 2;
  base.sequence_length = 6;

  base.num_threads = 1;
  auto serial = starling::CheckApp(hsm::HasherApp(), base);
  EXPECT_TRUE(serial.ok) << serial.failure;
  for (int threads : {2, 8}) {
    starling::StarlingOptions options = base;
    options.num_threads = threads;
    auto report = starling::CheckApp(hsm::HasherApp(), options);
    EXPECT_EQ(report.ok, serial.ok) << "at " << threads << " threads";
    EXPECT_EQ(report.failure, serial.failure) << "at " << threads << " threads";
    EXPECT_EQ(report.checks_run, serial.checks_run) << "at " << threads << " threads";
    // The telemetry snapshot is part of the determinism contract: the fold over
    // trial-index order must be bit-identical at every thread count (ToJson is
    // byte-identical for equal snapshots, and readable when they are not).
    EXPECT_EQ(report.telemetry.ToJson(), serial.telemetry.ToJson())
        << "at " << threads << " threads";
  }
  // The snapshot actually carries the trial accounting.
  EXPECT_EQ(serial.telemetry.CounterValue("starling/trials/valid"), 24u);
  EXPECT_EQ(serial.telemetry.CounterValue("starling/trials/invalid"), 64u);
  EXPECT_EQ(serial.telemetry.CounterValue("starling/trials/sequence"), 2u);
  EXPECT_EQ(serial.telemetry.CounterValue("starling/checks"),
            static_cast<uint64_t>(serial.checks_run));
}

// A deliberately buggy toy machine so the *failure* report, not just success, is
// checked for thread-count invariance. Spec: one-byte counter; command [1, v] adds v.
// The impl mis-adds for v >= 200, so some trials fail and some pass.
ipr::StateMachine<uint8_t, uint8_t, uint8_t> CounterSpec() {
  return {0, [](const uint8_t& s, const uint8_t& v) -> std::pair<uint8_t, uint8_t> {
            return {static_cast<uint8_t>(s + v), static_cast<uint8_t>(s + v)};
          }};
}

ipr::StateMachine<Bytes, Bytes, Bytes> CounterImpl(bool buggy) {
  return {Bytes{0}, [buggy](const Bytes& s, const Bytes& c) -> std::pair<Bytes, Bytes> {
            if (c.size() != 2 || c[0] != 1) {
              return {s, Bytes{0, 0}};
            }
            uint8_t v = c[1];
            if (buggy && v >= 200) {
              v = static_cast<uint8_t>(v + 1);
            }
            uint8_t next = static_cast<uint8_t>(s[0] + v);
            return {Bytes{next}, Bytes{1, next}};
          }};
}

ipr::LockstepCodecs<uint8_t, uint8_t, uint8_t> CounterCodecs() {
  return {[](const uint8_t& v) { return Bytes{1, v}; },
          [](const Bytes& b) { return b.size() == 2 ? b[1] : uint8_t{0}; },
          [](const Bytes& b) -> std::optional<uint8_t> {
            if (b.size() != 2 || b[0] != 1) {
              return std::nullopt;
            }
            return b[1];
          },
          [](const std::optional<uint8_t>& r) {
            return r.has_value() ? Bytes{1, *r} : Bytes{0, 0};
          },
          [](const uint8_t& s) { return Bytes{s}; }};
}

ipr::LockstepCheckResult RunCounterLockstep(bool buggy, int threads) {
  ipr::LockstepCheckOptions options;
  options.trials = 256;
  options.num_threads = threads;
  return ipr::CheckLockstep<uint8_t, uint8_t, uint8_t>(
      CounterImpl(buggy), CounterSpec(), CounterCodecs(),
      [](Rng& rng) { return rng.Byte(); }, [](Rng& rng) { return rng.Byte(); },
      [](Rng& rng) {
        Bytes b{rng.Byte(), rng.Byte()};
        if (b[0] == 1) {
          b[0] = 0;  // Force undecodable.
        }
        return b;
      },
      [](const uint8_t& v) { return std::to_string(static_cast<int>(v)); }, options);
}

TEST(Determinism, CheckLockstepReportsAreThreadCountInvariant) {
  auto serial_pass = RunCounterLockstep(/*buggy=*/false, /*threads=*/1);
  EXPECT_TRUE(serial_pass.ok) << serial_pass.failure;
  auto serial_fail = RunCounterLockstep(/*buggy=*/true, /*threads=*/1);
  EXPECT_FALSE(serial_fail.ok);
  ASSERT_TRUE(serial_fail.evidence.has_value());
  for (int threads : {2, 8}) {
    auto pass = RunCounterLockstep(false, threads);
    EXPECT_EQ(pass.ok, serial_pass.ok) << "at " << threads << " threads";
    EXPECT_EQ(pass.failure, serial_pass.failure) << "at " << threads << " threads";
    EXPECT_EQ(pass.checks_run, serial_pass.checks_run) << "at " << threads << " threads";
    EXPECT_EQ(pass.telemetry.ToJson(), serial_pass.telemetry.ToJson())
        << "at " << threads << " threads";
    // The failing run must settle on the same lowest failing trial, hence the exact
    // same failure message, telemetry fold, and counterexample artifact, regardless
    // of which worker found a failure first.
    auto fail = RunCounterLockstep(true, threads);
    EXPECT_EQ(fail.ok, serial_fail.ok) << "at " << threads << " threads";
    EXPECT_EQ(fail.failure, serial_fail.failure) << "at " << threads << " threads";
    EXPECT_EQ(fail.checks_run, serial_fail.checks_run) << "at " << threads << " threads";
    EXPECT_EQ(fail.telemetry.ToJson(), serial_fail.telemetry.ToJson())
        << "at " << threads << " threads";
    ASSERT_TRUE(fail.evidence.has_value());
    EXPECT_EQ(fail.evidence->ToJson(), serial_fail.evidence->ToJson())
        << "at " << threads << " threads";
  }
  // A passing run folds every trial; the snapshot carries the same accounting the
  // report does.
  EXPECT_EQ(serial_pass.telemetry.CounterValue("ipr/lockstep/trials"), 256u);
  EXPECT_EQ(serial_pass.telemetry.CounterValue("ipr/lockstep/codec_checks") +
                serial_pass.telemetry.CounterValue("ipr/lockstep/fig6a_checks") +
                serial_pass.telemetry.CounterValue("ipr/lockstep/fig6b_checks"),
            static_cast<uint64_t>(serial_pass.checks_run));
}

// ---- Decode-cache modes: reports invariant under shared / per-thread / no cache ----
//
// The simulator fast paths (machine templates, dirty-page reset, shared decode cache)
// must be invisible to the checkers: an equivalence run whose impl leg executes the
// real firmware under model-Asm has to produce bit-identical reports whether the ROM
// decode cache is one immutable object shared across all worker threads, one copy per
// thread, or absent — at every thread count.

platform::ModelAsm MakeHasherModel() {
  const hsm::App& app = hsm::HasherApp();
  platform::FirmwareConfig config;
  config.app_sources = app.FirmwareSources();
  config.state_size = static_cast<uint32_t>(app.state_size());
  config.command_size = static_cast<uint32_t>(app.command_size());
  config.response_size = static_cast<uint32_t>(app.response_size());
  config.opt_level = 2;
  auto image = platform::BuildFirmware(config);
  EXPECT_TRUE(image.ok()) << image.error();
  platform::ModelAsm::Sizes sizes{config.state_size, config.command_size,
                                  config.response_size};
  return platform::ModelAsm(image.value(), sizes);
}

ipr::EquivalenceCheckResult RunModelAsmEquivalence(const platform::ModelAsm& model,
                                                   int threads) {
  const hsm::App& app = hsm::HasherApp();
  ipr::StateMachine<Bytes, Bytes, Bytes> spec = {
      app.InitStateEncoded(),
      [&app](const Bytes& state, const Bytes& cmd) -> std::pair<Bytes, Bytes> {
        auto step = app.SpecStepEncoded(state, cmd);
        if (!step.has_value()) {
          return {state, app.EncodeResponseNone()};
        }
        return {step->first, step->second};
      }};
  ipr::StateMachine<Bytes, Bytes, Bytes> impl = {
      app.InitStateEncoded(),
      [&model](const Bytes& state, const Bytes& cmd) -> std::pair<Bytes, Bytes> {
        auto step = model.Step(state, cmd, 100'000'000);
        EXPECT_TRUE(step.ok) << step.fault;
        return {step.state, step.response};
      }};
  ipr::EquivalenceCheckOptions options;
  options.trials = 8;
  options.ops_per_trial = 6;
  options.num_threads = threads;
  return ipr::CheckObservationalEquivalence<Bytes, Bytes, Bytes, Bytes>(
      spec, impl, [&app](Rng& rng) {
        return rng.Below(3) == 0 ? app.RandomInvalidCommand(rng)
                                 : app.RandomValidCommand(rng);
      },
      [](const Bytes& b) { return ToHex(b); }, options);
}

TEST(Determinism, ModelAsmReportsAreCacheModeAndThreadCountInvariant) {
  platform::ModelAsm model = MakeHasherModel();

  // Baseline: no prebuilt decode cache, strictly serial.
  platform::ModelAsm::SetDecodeCacheMode(platform::DecodeCacheMode::kOff);
  auto baseline = RunModelAsmEquivalence(model, 1);
  EXPECT_TRUE(baseline.ok) << baseline.counterexample;
  EXPECT_GT(baseline.checks_run, 0);

  for (auto mode : {platform::DecodeCacheMode::kShared, platform::DecodeCacheMode::kPerThread,
                    platform::DecodeCacheMode::kOff}) {
    platform::ModelAsm::SetDecodeCacheMode(mode);
    for (int threads : {1, 2, 8}) {
      auto report = RunModelAsmEquivalence(model, threads);
      std::string where = "mode " + std::to_string(static_cast<int>(mode)) + ", " +
                          std::to_string(threads) + " threads";
      EXPECT_EQ(report.ok, baseline.ok) << where;
      EXPECT_EQ(report.counterexample, baseline.counterexample) << where;
      EXPECT_EQ(report.checks_run, baseline.checks_run) << where;
      EXPECT_EQ(report.telemetry.ToJson(), baseline.telemetry.ToJson()) << where;
    }
  }
  // Restore the default so test order cannot leak a mode into other suites.
  platform::ModelAsm::SetDecodeCacheMode(platform::DecodeCacheMode::kShared);
}

// ---- Simulator backends: the DBT must be invisible to the checkers too ----
//
// Same contract as the decode-cache modes, one level up: an equivalence run whose
// impl leg executes firmware under model-Asm must produce bit-identical reports
// whether the machines run under the interpreter or the block-translation backend,
// under every cache mode, at every thread count.

TEST(Determinism, ModelAsmReportsAreBackendAndThreadCountInvariant) {
  platform::ModelAsm model = MakeHasherModel();
  platform::ModelAsm::SetBackend(riscv::Machine::Backend::kInterpreter);
  platform::ModelAsm::SetDecodeCacheMode(platform::DecodeCacheMode::kShared);
  auto baseline = RunModelAsmEquivalence(model, 1);
  EXPECT_TRUE(baseline.ok) << baseline.counterexample;
  EXPECT_GT(baseline.checks_run, 0);

  for (auto be : {riscv::Machine::Backend::kInterpreter, riscv::Machine::Backend::kDBT}) {
    platform::ModelAsm::SetBackend(be);
    for (auto mode : {platform::DecodeCacheMode::kShared,
                      platform::DecodeCacheMode::kPerThread, platform::DecodeCacheMode::kOff}) {
      platform::ModelAsm::SetDecodeCacheMode(mode);
      for (int threads : {1, 2, 8}) {
        auto report = RunModelAsmEquivalence(model, threads);
        std::string where = "backend " + std::to_string(static_cast<int>(be)) + ", mode " +
                            std::to_string(static_cast<int>(mode)) + ", " +
                            std::to_string(threads) + " threads";
        EXPECT_EQ(report.ok, baseline.ok) << where;
        EXPECT_EQ(report.counterexample, baseline.counterexample) << where;
        EXPECT_EQ(report.checks_run, baseline.checks_run) << where;
        EXPECT_EQ(report.telemetry.ToJson(), baseline.telemetry.ToJson()) << where;
      }
    }
  }
  platform::ModelAsm::SetBackend(riscv::Machine::DefaultBackend());
  platform::ModelAsm::SetDecodeCacheMode(platform::DecodeCacheMode::kShared);
}

TEST(Determinism, DbtBlockCountersAreThreadCountInvariant) {
  // The machine/block_* counters ModelAsm flushes into the global registry are part
  // of the determinism contract: with the shared translation cache, translation
  // happens exactly once per block process-wide (so the total is the unique block
  // count), and hits/links/invalidations are per-command deterministic — the folded
  // totals for a fixed workload must be bit-identical at every thread count.
  const hsm::App& app = hsm::HasherApp();
  std::vector<Bytes> commands;
  Rng rng(123);
  for (int i = 0; i < 48; i++) {
    commands.push_back(app.RandomValidCommand(rng));
  }
  Bytes state = app.InitStateEncoded();

  platform::ModelAsm::SetBackend(riscv::Machine::Backend::kDBT);
  platform::ModelAsm::SetDecodeCacheMode(platform::DecodeCacheMode::kShared);
  auto& t = telemetry::Telemetry::Global();
  bool was_enabled = t.enabled();
  t.Enable();

  std::map<std::string, uint64_t> baseline;
  for (int threads : {1, 2, 8}) {
    // A fresh model per run: fresh image caches, so every run translates from cold.
    platform::ModelAsm model = MakeHasherModel();
    t.Reset();
    ThreadPool pool(threads);
    std::atomic<int> failures{0};
    ParallelFor(pool, commands.size(), [&](size_t i) {
      auto step = model.Step(state, commands[i], 100'000'000);
      if (!step.ok) {
        failures.fetch_add(1);
      }
    });
    EXPECT_EQ(failures.load(), 0) << "at " << threads << " threads";
    auto snap = t.Snapshot();
    for (const char* name : {"machine/block_translations", "machine/block_hits",
                             "machine/block_invalidations", "machine/block_links"}) {
      uint64_t v = snap.CounterValue(name);
      if (threads == 1) {
        baseline[name] = v;
      } else {
        EXPECT_EQ(v, baseline[name]) << name << " at " << threads << " threads";
      }
    }
  }
  if (riscv::Dbt::Supported()) {
    EXPECT_GT(baseline["machine/block_translations"], 0u);
    EXPECT_GT(baseline["machine/block_hits"], 0u);
    EXPECT_GT(baseline["machine/block_links"], 0u);
  }

  t.Reset();
  if (!was_enabled) {
    t.Disable();
  }
  platform::ModelAsm::SetBackend(riscv::Machine::DefaultBackend());
}

TEST(Determinism, SharedPrototypeSurvivesConcurrentFirstUse) {
  // Hammer one ModelAsm from many threads with no warm-up: the lazily built
  // prototype and shared cache must come up exactly once and every thread must see
  // the same results (this is the TSan target for the template machinery).
  platform::ModelAsm model = MakeHasherModel();
  platform::ModelAsm::SetDecodeCacheMode(platform::DecodeCacheMode::kShared);
  const hsm::App& app = hsm::HasherApp();
  Rng rng(7);
  Bytes cmd = app.RandomValidCommand(rng);
  Bytes state = app.InitStateEncoded();
  auto expected = model.Step(state, cmd, 100'000'000);
  ASSERT_TRUE(expected.ok) << expected.fault;

  platform::ModelAsm fresh = MakeHasherModel();
  ThreadPool pool(8);
  std::atomic<int> mismatches{0};
  ParallelFor(pool, 64, [&](size_t) {
    auto got = fresh.Step(state, cmd, 100'000'000);
    if (!got.ok || got.state != expected.state || got.response != expected.response ||
        got.instret != expected.instret) {
      mismatches.fetch_add(1);
    }
  });
  EXPECT_EQ(mismatches.load(), 0);
}

}  // namespace
}  // namespace parfait
