// Differential fuzzing of the three simulator backends (machine.h "Performance
// architecture", translator.h): seeded random RV32IM programs — including misaligned
// and out-of-bounds accesses, division corner cases, undecodable words, partially
// undefined code and data, and stores into the executing code — must leave the
// reference interpreter (no decode cache), the decode-cache interpreter, and the DBT
// backend in bit-identical final states: memory bytes, per-byte definedness,
// registers, pc, instret, and the exact fault string (which carries the faulting pc
// and instret). The step budgets are drawn small on purpose so block-boundary
// accounting and mid-block step limits are fuzzed too.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "src/riscv/machine.h"
#include "src/riscv/translator.h"
#include "src/support/bytes.h"
#include "src/support/rng.h"

namespace parfait::riscv {
namespace {

constexpr uint32_t kRomBase = 0x00000000;
constexpr uint32_t kRomSize = 16 * 1024;
constexpr uint32_t kRamBase = 0x20000000;
constexpr uint32_t kRamSize = 16 * 1024;
constexpr uint32_t kCodeWords = 192;  // Program size, in words.

// ---- Random program generation ----

// Register values are biased toward "interesting" addresses and division corner
// cases so loads/stores land in (and just outside) the regions and div/rem hit the
// RISC-V-defined edge results (x/0 = -1, rem 0x80000000 / -1, ...).
uint32_t RandomRegValue(Rng& rng, uint32_t code_base) {
  switch (rng.Below(8)) {
    case 0: return code_base + (rng.Below(kCodeWords) << 2);       // In the code.
    case 1: return kRamBase + rng.Below(kRamSize);                 // In RAM data.
    case 2: return kRamBase + kRamSize - 4 + rng.Below(16);       // Region edge.
    case 3: return 0;
    case 4: return 0xffffffffu;                                    // -1.
    case 5: return 0x80000000u;                                    // INT_MIN.
    case 6: return rng.Next32() & 0xff;
    default: return rng.Next32();
  }
}

uint32_t EncodeIType(uint32_t imm12, uint32_t rs1, uint32_t f3, uint32_t rd,
                     uint32_t opcode) {
  return (imm12 << 20) | (rs1 << 15) | (f3 << 12) | (rd << 7) | opcode;
}

uint32_t EncodeRType(uint32_t f7, uint32_t rs2, uint32_t rs1, uint32_t f3, uint32_t rd,
                     uint32_t opcode) {
  return (f7 << 25) | (rs2 << 20) | (rs1 << 15) | (f3 << 12) | (rd << 7) | opcode;
}

uint32_t EncodeSType(uint32_t imm12, uint32_t rs2, uint32_t rs1, uint32_t f3) {
  return ((imm12 >> 5) << 25) | (rs2 << 20) | (rs1 << 15) | (f3 << 12) |
         ((imm12 & 0x1f) << 7) | 0x23;
}

uint32_t EncodeBType(int32_t offset, uint32_t rs2, uint32_t rs1, uint32_t f3) {
  uint32_t imm = static_cast<uint32_t>(offset);
  return (((imm >> 12) & 1) << 31) | (((imm >> 5) & 0x3f) << 25) | (rs2 << 20) |
         (rs1 << 15) | (f3 << 12) | (((imm >> 1) & 0xf) << 8) | (((imm >> 11) & 1) << 7) |
         0x63;
}

uint32_t EncodeJal(int32_t offset, uint32_t rd) {
  uint32_t imm = static_cast<uint32_t>(offset);
  return (((imm >> 20) & 1) << 31) | (((imm >> 1) & 0x3ff) << 21) |
         (((imm >> 11) & 1) << 20) | (((imm >> 12) & 0xff) << 12) | (rd << 7) | 0x6f;
}

// One random instruction for the word at index `i` of the program. Offsets are
// small so memory traffic clusters around the register bases (hitting the code as
// often as the data), and branch/jal targets stay inside (or just past) the code.
uint32_t RandomInstr(Rng& rng, uint32_t i) {
  uint32_t rd = rng.Below(32);
  uint32_t rs1 = rng.Below(32);
  uint32_t rs2 = rng.Below(32);
  uint32_t imm12 = rng.Below(64);  // Small positive offsets.
  switch (rng.Below(16)) {
    case 0: case 1: case 2: {  // ALU immediate.
      static constexpr uint32_t kF3[] = {0, 2, 3, 4, 6, 7};
      return EncodeIType(rng.Next32() & 0xfff, rs1, kF3[rng.Below(6)], rd, 0x13);
    }
    case 3: {  // Shift immediate.
      uint32_t f3 = rng.Bool() ? 1 : 5;
      uint32_t f7 = (f3 == 5 && rng.Bool()) ? 0x20 : 0;
      return EncodeRType(f7, rng.Below(32), rs1, f3, rd, 0x13);
    }
    case 4: case 5: {  // ALU register (RV32I).
      uint32_t f3 = rng.Below(8);
      uint32_t f7 = (f3 == 0 || f3 == 5) && rng.Bool() ? 0x20 : 0;
      return EncodeRType(f7, rs2, rs1, f3, rd, 0x33);
    }
    case 6: {  // M extension: mul/div/rem family (division corner cases included).
      return EncodeRType(1, rs2, rs1, rng.Below(8), rd, 0x33);
    }
    case 7: {  // lui / auipc.
      return ((rng.Next32() & 0xfffff) << 12) | (rd << 7) | (rng.Bool() ? 0x37 : 0x17);
    }
    case 8: case 9: {  // Load: lb/lh/lw/lbu/lhu (f3 6/7 undecodable on purpose).
      return EncodeIType(imm12, rs1, rng.Below(6), rd, 0x03);
    }
    case 10: case 11: {  // Store: sb/sh/sw. Can hit the executing code itself.
      return EncodeSType(imm12, rs2, rs1, rng.Below(3));
    }
    case 12: {  // Branch inside the code (forward-biased so loops stay rare).
      int32_t target = static_cast<int32_t>(rng.Below(kCodeWords + 2)) * 4;
      int32_t offset = target - static_cast<int32_t>(i * 4);
      static constexpr uint32_t kF3[] = {0, 1, 4, 5, 6, 7};
      return EncodeBType(offset, rs2, rs1, kF3[rng.Below(6)]);
    }
    case 13: {  // jal inside the code, or jalr through a register.
      if (rng.Bool()) {
        int32_t target = static_cast<int32_t>(rng.Below(kCodeWords + 2)) * 4;
        return EncodeJal(target - static_cast<int32_t>(i * 4), rng.Below(2));
      }
      return EncodeIType(rng.Below(16) * 2, rs1, 0, rd, 0x67);  // jalr
    }
    case 14: {  // ecall (the halt path) — kept rare so programs run a while.
      return rng.Below(4) == 0 ? 0x00000073 : EncodeIType(1, rs1, 0, rd, 0x13);
    }
    default:  // Raw random word: frequently undecodable.
      return rng.Next32();
  }
}

// ---- Machine construction ----

struct Program {
  std::vector<uint32_t> words;
  std::vector<bool> defined;  // Undefined code words exercise the fetch-fault path.
  Bytes data;                 // Initial contents of the low RAM data window.
  uint32_t data_len = 0;
};

Program RandomProgram(Rng& rng) {
  Program p;
  p.words.reserve(kCodeWords);
  p.defined.assign(kCodeWords, true);
  for (uint32_t i = 0; i < kCodeWords; i++) {
    p.words.push_back(RandomInstr(rng, i));
  }
  // A few undefined code words ("instruction fetch of undefined memory").
  for (int k = 0; k < 3; k++) {
    p.defined[rng.Below(kCodeWords)] = false;
  }
  p.data_len = 256 + rng.Below(256);
  p.data = rng.RandomBytes(p.data_len);
  return p;
}

// Builds one machine for the trial. When `code_in_rom` the program sits in the
// read-only region (the shared-cache configuration); otherwise it sits at the base
// of RAM, where stores can reach it (the self-modifying configuration).
Machine MakeMachine(const Program& p, Rng& reg_rng, bool code_in_rom) {
  Machine m;
  m.AddRegion("rom", kRomBase, kRomSize, /*writable=*/false);
  m.AddRegion("ram", kRamBase, kRamSize, /*writable=*/true, /*initially_defined=*/false);
  uint32_t code_base = code_in_rom ? kRomBase : kRamBase;
  for (uint32_t i = 0; i < kCodeWords; i++) {
    if (!p.defined[i] && !code_in_rom) {
      continue;  // Leave the word undefined (ROM is always fully defined).
    }
    Bytes b(4);
    StoreLe32(b.data(), p.words[i]);
    m.WriteMemory(code_base + i * 4, b);
  }
  uint32_t data_base = code_in_rom ? kRamBase : kRamBase + kCodeWords * 4;
  m.WriteMemory(data_base, p.data);
  for (uint8_t r = 1; r < 32; r++) {
    if (reg_rng.Below(8) == 0) {
      continue;  // Leave this register undefined.
    }
    m.set_reg(r, Value::Defined(RandomRegValue(reg_rng, code_base)));
  }
  m.set_pc(code_base);
  return m;
}

void ExpectSameState(const Machine& a, const Machine& b, const std::string& where) {
  EXPECT_EQ(a.ReadMemory(kRomBase, kRomSize), b.ReadMemory(kRomBase, kRomSize)) << where;
  EXPECT_EQ(a.ReadMemory(kRamBase, kRamSize), b.ReadMemory(kRamBase, kRamSize)) << where;
  for (uint32_t off = 0; off < kRamSize; off += 64) {
    if (a.AllDefined(kRamBase + off, 64) != b.AllDefined(kRamBase + off, 64)) {
      for (uint32_t i = 0; i < 64; i++) {
        ASSERT_EQ(a.AllDefined(kRamBase + off + i, 1), b.AllDefined(kRamBase + off + i, 1))
            << where << ": definedness mismatch at ram+0x" << std::hex << (off + i);
      }
    }
  }
  for (uint8_t i = 0; i < 32; i++) {
    EXPECT_EQ(a.reg(i), b.reg(i)) << where << ": register x" << int{i};
  }
  EXPECT_EQ(a.pc(), b.pc()) << where;
  EXPECT_EQ(a.instret(), b.instret()) << where;
  EXPECT_EQ(a.fault_reason(), b.fault_reason()) << where;
}

// One differential trial: the same program and initial state run under all three
// backends with the same step budget must agree on result and final state.
void RunTrial(uint64_t seed, bool code_in_rom) {
  Rng rng(seed);
  Program p = RandomProgram(rng);
  uint64_t reg_seed = rng.Next64();
  // Budgets: tiny (mid-block limits), medium, and "to completion".
  uint64_t budget;
  switch (rng.Below(4)) {
    case 0: budget = 1 + rng.Below(70); break;
    case 1: budget = 200 + rng.Below(400); break;
    default: budget = 20'000; break;
  }

  Rng ref_regs(reg_seed);
  Machine ref = MakeMachine(p, ref_regs, code_in_rom);
  ref.DisableDecodeCache();  // The reference interpreter: no fast paths at all.

  Rng interp_regs(reg_seed);
  Machine interp = MakeMachine(p, interp_regs, code_in_rom);
  interp.SetBackend(Machine::Backend::kInterpreter);

  Rng dbt_regs(reg_seed);
  Machine dbt = MakeMachine(p, dbt_regs, code_in_rom);
  dbt.SetBackend(Machine::Backend::kDBT);
  if (code_in_rom) {
    // The shared-cache configuration: one immutable decode cache and one shared
    // translation cache, as ModelAsm attaches them.
    Bytes rom = dbt.ReadMemory(kRomBase, kRomSize);
    auto decode = std::make_shared<const DecodeCache>(kRomBase, rom);
    interp.AttachDecodeCache(decode);
    dbt.AttachDecodeCache(decode);
    dbt.AttachTranslationCache(std::make_shared<SharedTranslationCache>(decode));
  }

  auto r_ref = ref.Run(budget);
  auto r_interp = interp.Run(budget);
  auto r_dbt = dbt.Run(budget);

  std::string where = "seed " + std::to_string(seed) +
                      (code_in_rom ? " (rom)" : " (ram)") +
                      ", budget " + std::to_string(budget);
  EXPECT_EQ(r_interp, r_ref) << where;
  EXPECT_EQ(r_dbt, r_ref) << where;
  ExpectSameState(interp, ref, where + " [interp vs ref]");
  ExpectSameState(dbt, ref, where + " [dbt vs ref]");
}

TEST(DbtFuzz, SelfModifyingCodeInRamMatchesReferenceInterpreter) {
  // Code in writable RAM: stores can rewrite the executing program, so this leg
  // fuzzes the local block caches, store invalidation, and the mid-block bail-out.
  for (uint64_t trial = 0; trial < 600; trial++) {
    RunTrial(SplitSeed(0xdb7, trial), /*code_in_rom=*/false);
    if (::testing::Test::HasFatalFailure()) {
      return;
    }
  }
}

TEST(DbtFuzz, RomProgramsMatchUnderSharedTranslationCache) {
  // Code in ROM behind a shared decode + translation cache: fuzzes superblock
  // formation, block linking, and the shared publication path.
  for (uint64_t trial = 0; trial < 400; trial++) {
    RunTrial(SplitSeed(0x5a7ed, trial), /*code_in_rom=*/true);
    if (::testing::Test::HasFatalFailure()) {
      return;
    }
  }
}

TEST(DbtFuzz, DbtStateIsThreadCountAndRerunInvariant) {
  // The same trial re-run under DBT must be exactly reproducible (fresh machines,
  // fresh caches) — the machine-level face of the determinism contract.
  for (uint64_t trial = 0; trial < 8; trial++) {
    uint64_t seed = SplitSeed(0x4e4e, trial);
    RunTrial(seed, false);
    RunTrial(seed, false);
  }
}

}  // namespace
}  // namespace parfait::riscv
