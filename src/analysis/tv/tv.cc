#include "src/analysis/tv/tv.h"

#include <algorithm>
#include <array>
#include <cstdio>
#include <deque>
#include <map>
#include <optional>
#include <set>

#include "src/analysis/cfg.h"
#include "src/analysis/tv/term.h"
#include "src/hsm/hsm_system.h"
#include "src/minicc/parser.h"
#include "src/riscv/disasm.h"
#include "src/riscv/isa.h"
#include "src/support/bytes.h"
#include "src/support/parallel.h"

namespace parfait::analysis {

namespace {

using minicc::Expr;
using minicc::Stmt;
using minicc::Type;
using riscv::Instr;
using riscv::Op;
using tv::BinOp;
using tv::FreshTag;
using tv::TermArena;
using tv::TermId;

// Must match the code generator's temp-stack and spill layout (codegen.cc).
constexpr int kNumSpillSlots = 12;
// Caller-saved registers a call or loop iteration may clobber: ra, t0-t6, a0-a7.
constexpr uint8_t kCallerSaved[] = {1, 5, 6, 7, 10, 11, 12, 13, 14, 15, 16, 17,
                                    28, 29, 30, 31};
// All callee-saved registers (s0-s11); their entry values must survive the call.
constexpr uint8_t kCalleeSaved[] = {8, 9, 18, 19, 20, 21, 22, 23, 24, 25, 26, 27};
// Registers the O2 generator may promote locals into (s1..s11; s0 is never used).
constexpr uint8_t kPromotable[] = {9, 18, 19, 20, 21, 22, 23, 24, 25, 26, 27};

std::string Hex(uint32_t v) {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "0x%08x", v);
  return buf;
}

const char* StmtKindName(Stmt::Kind kind) {
  switch (kind) {
    case Stmt::Kind::kExpr: return "expression";
    case Stmt::Kind::kDecl: return "declaration";
    case Stmt::Kind::kIf: return "if";
    case Stmt::Kind::kWhile: return "while";
    case Stmt::Kind::kFor: return "for";
    case Stmt::Kind::kReturn: return "return";
    case Stmt::Kind::kBlock: return "block";
    case Stmt::Kind::kBreak: return "break";
    case Stmt::Kind::kContinue: return "continue";
  }
  return "?";
}

// A global as the mirror sees it: linked address plus source-level type and the
// secret annotation that seeds taint.
struct GlobalVar {
  uint32_t addr = 0;
  Type type;
  uint32_t array_size = 0;
  bool secret = false;
};

// Shared, read-only context for all function validations.
struct UnitIndex {
  std::map<std::string, const minicc::Function*> functions;
  std::map<std::string, uint32_t> function_addrs;  // From the linked image.
  std::map<std::string, GlobalVar> globals;
};

// A source-level memory/call effect queued by the mirror in evaluation order; the
// interpreter must consume them in program order (memory extensionality).
struct Effect {
  enum class Kind : uint8_t { kLoad, kStore, kCall };
  Kind kind = Kind::kLoad;
  uint8_t size = 4;
  TermId addr = 0;
  TermId value = 0;  // Load: the fresh result term. Store: the stored value.
  std::string callee;
  std::vector<TermId> args;
  TermId result = 0;
  bool returns_value = false;
  int line = 0;
};

const char* EffectKindName(Effect::Kind kind) {
  switch (kind) {
    case Effect::Kind::kLoad: return "load";
    case Effect::Kind::kStore: return "store";
    case Effect::Kind::kCall: return "call";
  }
  return "?";
}

// Joint machine state: asm registers and frame slots keyed by offset from the
// post-prologue sp, plus the source mirror's environment for tracked scalars.
struct State {
  std::array<TermId, 32> regs{};
  std::map<int32_t, TermId> frame;
  std::map<int, TermId> env;  // Slot index -> value (tracked scalars only).
};

// Mirror of codegen's per-local slot assignment, re-derived from the AST and
// cross-checked against the (untrusted) witness.
struct SlotInfo {
  std::string name;
  Type type;
  uint32_t array_size = 0;
  int frame_offset = -1;
  uint32_t bytes = 0;
  int reg = -1;  // Callee-saved register the O2 generator promoted this slot into.
  bool is_param = false;
  bool tracked = false;  // Scalar whose address is never taken: modeled in env.
};

class FunctionValidator {
 public:
  FunctionValidator(const UnitIndex& index, const minicc::Function& fn,
                    const riscv::Image& image, const riscv::WitnessFunction& wf,
                    const riscv::SymbolNamer& namer, const TvConfig& config,
                    int opt_level, TvFunctionResult* out)
      : index_(index),
        fn_(fn),
        image_(image),
        wf_(wf),
        namer_(namer),
        config_(config),
        opt_level_(opt_level),
        out_(out) {}

  void Run() {
    out_->name = wf_.name;
    if (!CheckWitnessShape() || !VerifyXforms()) {
      Finalize();
      return;
    }
    if (WalkFunction()) {
      SweepUnvisited();
    }
    Finalize();
  }

 private:
  enum class StopKind : uint8_t { kTarget, kBranch, kJump, kRet, kFail };
  struct Stop {
    StopKind kind = StopKind::kFail;
    Instr instr{};
    uint32_t pc = 0;
  };
  struct LoopCtx {
    uint32_t break_target = 0;
    uint32_t continue_target = 0;
    State head;              // State at the loop head after havocking.
    std::set<int32_t> havoc_offsets;  // Frame keys havocked at the head.
    std::set<int> havoc_slots;        // Env keys havocked at the head.
    std::set<int> havoc_regs;         // Promoted s-registers havocked at the head.
  };

  uint32_t Abs(uint32_t offset) const { return image_.rom_base + offset; }

  void Finalize() {
    out_->validated = out_->findings.empty();
    out_->stats.terms = arena_.size();
  }

  // --- Findings -------------------------------------------------------------

  bool Flag(TvFindingKind kind, uint32_t pc, const std::string& detail) {
    failed_ = true;
    if (out_->findings.size() >= 16) {
      return false;
    }
    TvFinding f;
    f.function = wf_.name;
    f.pc = pc;
    f.kind = kind;
    f.line = stmt_line_;
    f.detail = detail;
    if (pc != 0) {
      auto in = InstrAt(pc);
      f.provenance.push_back(
          "asm " + Hex(pc) + ": " +
          (in.has_value() ? riscv::Disassemble(*in, pc, namer_) : std::string(".word")));
    }
    if (stmt_line_ > 0) {
      f.provenance.push_back("statement '" + std::string(StmtKindName(stmt_kind_)) +
                             "' at source line " + std::to_string(stmt_line_));
    }
    f.provenance.push_back("function " + wf_.name + " (declared at line " +
                           std::to_string(fn_.line) + ", asm [" + Hex(Abs(wf_.begin)) +
                           ", " + Hex(Abs(wf_.end)) + "))");
    out_->findings.push_back(std::move(f));
    return false;
  }

  bool FlagStop(const Stop& st, const std::string& context) {
    switch (st.kind) {
      case StopKind::kFail:
        return false;  // Already flagged.
      case StopKind::kBranch:
        return Flag(TvFindingKind::kUnjustifiedBranch, st.pc,
                    "conditional branch with no source counterpart " + context +
                        (arena_.secret(ReadReg(st.instr.rs1))
                             ? " (condition is secret-dependent: timing leak)"
                             : ""));
      case StopKind::kJump:
        return Flag(TvFindingKind::kUnjustifiedBranch, st.pc,
                    "jump with no source counterpart " + context);
      case StopKind::kRet:
        return Flag(TvFindingKind::kStructureMismatch, st.pc,
                    "unexpected return sequence " + context);
      case StopKind::kTarget:
        return Flag(TvFindingKind::kStructureMismatch, st.pc,
                    "unexpected statement-range end " + context);
    }
    return false;
  }

  // --- Witness shape checks -------------------------------------------------

  // Replays codegen's prepass: collects parameter and declaration slots in the same
  // order, marks address-taken locals, then re-derives the frame layout and demands
  // the witness agree. After this the witness adds no authority of its own.
  void PrepassExpr(const Expr& e, std::vector<std::map<std::string, int>>* scopes) {
    auto lookup = [&](const std::string& name) {
      for (auto it = scopes->rbegin(); it != scopes->rend(); ++it) {
        auto found = it->find(name);
        if (found != it->end()) {
          return found->second;
        }
      }
      return -1;
    };
    if (e.kind == Expr::Kind::kAddrOf && e.lhs->kind == Expr::Kind::kVar) {
      int slot = lookup(e.lhs->name);
      if (slot >= 0) {
        addr_taken_.insert(slot);
      }
    }
    if (e.lhs) PrepassExpr(*e.lhs, scopes);
    if (e.rhs) PrepassExpr(*e.rhs, scopes);
    for (const auto& a : e.args) {
      PrepassExpr(*a, scopes);
    }
  }

  void PrepassStmt(const Stmt& s, std::vector<std::map<std::string, int>>* scopes) {
    switch (s.kind) {
      case Stmt::Kind::kBlock:
        scopes->push_back({});
        for (const auto& sub : s.stmts) {
          PrepassStmt(*sub, scopes);
        }
        scopes->pop_back();
        break;
      case Stmt::Kind::kDecl: {
        if (s.decl_init) {
          PrepassExpr(*s.decl_init, scopes);
        }
        SlotInfo slot;
        slot.name = s.decl_name;
        slot.type = s.decl_type;
        slot.array_size = s.decl_array_size;
        int index = static_cast<int>(slots_.size());
        slots_.push_back(slot);
        scopes->back()[s.decl_name] = index;
        break;
      }
      case Stmt::Kind::kIf:
        PrepassExpr(*s.expr, scopes);
        PrepassStmt(*s.body, scopes);
        if (s.else_body) {
          PrepassStmt(*s.else_body, scopes);
        }
        break;
      case Stmt::Kind::kWhile:
        PrepassExpr(*s.expr, scopes);
        PrepassStmt(*s.body, scopes);
        break;
      case Stmt::Kind::kFor:
        scopes->push_back({});
        if (s.init) PrepassStmt(*s.init, scopes);
        if (s.expr) PrepassExpr(*s.expr, scopes);
        if (s.post) PrepassExpr(*s.post, scopes);
        PrepassStmt(*s.body, scopes);
        scopes->pop_back();
        break;
      case Stmt::Kind::kReturn:
      case Stmt::Kind::kExpr:
        if (s.expr) {
          PrepassExpr(*s.expr, scopes);
        }
        break;
      case Stmt::Kind::kBreak:
      case Stmt::Kind::kContinue:
        break;
    }
  }

  bool CheckWitnessShape() {
    stmt_line_ = fn_.line;
    stmt_kind_ = Stmt::Kind::kBlock;
    if (wf_.begin >= wf_.end || (wf_.end - wf_.begin) % 4 != 0 ||
        wf_.begin > wf_.body_begin || wf_.body_begin > wf_.epilogue ||
        wf_.epilogue > wf_.end || Abs(wf_.end) > image_.rom_base + image_.rom.size()) {
      return Flag(TvFindingKind::kWitnessInvalid, Abs(wf_.begin),
                  "witnessed function extents are inconsistent");
    }
    if (opt_level_ == 0 && (!wf_.saved_regs.empty() || !wf_.xforms.empty())) {
      return Flag(TvFindingKind::kWitnessInvalid, Abs(wf_.begin),
                  "O0 witness claims O2 transformations");
    }
    // The witnessed promotion register set is an untrusted claim; before anything
    // leans on it, require it be a duplicate-free set of promotable s-registers.
    // Its semantic content (saves, restores, per-slot values) is re-proved by the
    // prologue/epilogue checks and the lockstep walk.
    std::set<int> claimed_regs;
    for (uint8_t r : wf_.saved_regs) {
      bool promotable = false;
      for (uint8_t p : kPromotable) {
        promotable = promotable || p == r;
      }
      if (!promotable || !claimed_regs.insert(r).second) {
        return Flag(TvFindingKind::kWitnessInvalid, Abs(wf_.begin),
                    "witnessed save set is not a duplicate-free set of promotable "
                    "s-registers");
      }
    }
    // Parameters first (slot index == parameter index), then declarations in the
    // same pre-order codegen uses.
    for (const auto& p : fn_.params) {
      SlotInfo slot;
      slot.name = p.name;
      slot.type = p.type;
      slot.is_param = true;
      slots_.push_back(slot);
    }
    if (fn_.params.size() > 7) {
      return Flag(TvFindingKind::kUnsupported, Abs(wf_.begin), "more than 7 parameters");
    }
    {
      std::vector<std::map<std::string, int>> scopes;
      scopes.push_back({});
      for (size_t i = 0; i < fn_.params.size(); i++) {
        scopes.back()[fn_.params[i].name] = static_cast<int>(i);
      }
      PrepassStmt(*fn_.body, &scopes);
    }
    if (slots_.size() != wf_.locals.size()) {
      return Flag(TvFindingKind::kWitnessInvalid, Abs(wf_.begin),
                  "witness declares " + std::to_string(wf_.locals.size()) +
                      " locals, source has " + std::to_string(slots_.size()));
    }
    // Re-derive the frame layout: [12 spill words][non-promoted locals][saved
    // s-registers][ra], 16-aligned (the O0 layout is the same with an empty save
    // area). Promotions come from the witness but are admitted only when sound:
    // a tracked (never address-taken), non-u8 scalar, in a claimed register no
    // other local shares.
    int offset = 4 * kNumSpillSlots;
    std::set<int> promoted_regs_seen;
    for (size_t i = 0; i < slots_.size(); i++) {
      SlotInfo& slot = slots_[i];
      const riscv::WitnessLocal& wl = wf_.locals[i];
      uint32_t count = slot.array_size == 0 ? 1 : slot.array_size;
      slot.bytes = (count * static_cast<uint32_t>(slot.type.Size()) + 3) & ~3u;
      slot.tracked = slot.array_size == 0 &&
                     addr_taken_.count(static_cast<int>(i)) == 0;
      bool is_u8 = !slot.type.IsPointer() && slot.type.Size() == 1;
      if (wl.reg >= 0) {
        if (!slot.tracked || is_u8 || claimed_regs.count(wl.reg) == 0 ||
            !promoted_regs_seen.insert(wl.reg).second) {
          return Flag(TvFindingKind::kWitnessInvalid, Abs(wf_.begin),
                      "witness promotes local '" + wl.name +
                          "' unsoundly (not a tracked word-sized scalar, register "
                          "not in the save set, or register reuse)");
        }
        slot.reg = wl.reg;
        slot.frame_offset = -1;
      } else {
        slot.frame_offset = offset;
        offset += static_cast<int>(slot.bytes);
      }
      if (wl.name != slot.name || wl.array_size != slot.array_size ||
          wl.frame_offset != slot.frame_offset ||
          wl.elem_size != static_cast<uint8_t>(slot.type.Size()) ||
          (wl.is_param != 0) != slot.is_param ||
          (wl.is_ptr != 0) != slot.type.IsPointer() || (wl.is_u8 != 0) != is_u8) {
        return Flag(TvFindingKind::kWitnessInvalid, Abs(wf_.begin),
                    "witness local '" + wl.name + "' contradicts slot '" + slot.name +
                        "' derived from the source");
      }
    }
    // Every promotion must carry exactly one matching transformer entry and every
    // promotion transformer must name a promoted local — a dropped entry would let
    // a later serialization bug silently shrink the checked promotion map.
    std::set<std::pair<int, int>> promote_claims;
    for (const riscv::WitnessXform& x : wf_.xforms) {
      if (x.pass != riscv::WitnessXform::kPromoteReg) {
        continue;
      }
      if (x.slot < 0 || x.slot >= static_cast<int>(slots_.size()) ||
          slots_[x.slot].reg != x.reg ||
          !promote_claims.insert({x.slot, x.reg}).second) {
        return Flag(TvFindingKind::kWitnessInvalid, Abs(wf_.begin),
                    "promotion transformer entry does not match a promoted local");
      }
    }
    for (size_t i = 0; i < slots_.size(); i++) {
      if (slots_[i].reg >= 0 &&
          promote_claims.count({static_cast<int>(i), slots_[i].reg}) == 0) {
        return Flag(TvFindingKind::kWitnessInvalid, Abs(wf_.begin),
                    "promoted local '" + slots_[i].name +
                        "' has no promotion transformer entry");
      }
    }
    out_->stats.promoted_slots += promoted_regs_seen.size();
    int saved_base = offset;
    int ra_offset = saved_base + 4 * static_cast<int>(wf_.saved_regs.size());
    int frame = (ra_offset + 4 + 15) & ~15;
    if (wf_.spill_base != 0 || wf_.saved_base != saved_base ||
        wf_.ra_offset != ra_offset || wf_.frame_size != frame) {
      return Flag(TvFindingKind::kWitnessInvalid, Abs(wf_.begin),
                  "witness frame layout contradicts the layout derived from the source");
    }
    frame_size_ = frame;
    ra_offset_ = ra_offset;
    saved_base_ = saved_base;
    stmt_line_ = 0;
    return true;
  }

  // --- Transformer verification ---------------------------------------------

  // Structural check of the per-pass witness transformer entries: each names a
  // site inside the function, and passes that selected an instruction must point
  // at an instruction of the pass's class carrying the recorded immediate. The
  // *semantics* of every transformation is re-proved by the lockstep walk — these
  // checks pin the claims to real instructions so a lying entry cannot stand in
  // for a justification.
  bool VerifyXforms() {
    stmt_line_ = fn_.line;
    stmt_kind_ = Stmt::Kind::kBlock;
    for (const riscv::WitnessXform& x : wf_.xforms) {
      uint32_t pc = Abs(x.site);
      if (x.site < wf_.begin || x.site >= wf_.end) {
        return Flag(TvFindingKind::kWitnessInvalid, pc,
                    "transformer entry site lies outside the function");
      }
      switch (x.pass) {
        case riscv::WitnessXform::kPromoteReg:
          if (x.site >= wf_.body_begin) {
            return Flag(TvFindingKind::kWitnessInvalid, pc,
                        "promotion transformer site is not in the prologue");
          }
          break;
        case riscv::WitnessXform::kConstFold:
          // Nothing was emitted; the folded value is re-proved wherever the
          // constant is consumed (store/branch/argument/return term equality).
          break;
        case riscv::WitnessXform::kImmForm: {
          auto in = InstrAt(pc);
          if (!in.has_value() || !ImmFormMatches(*in, x)) {
            return Flag(TvFindingKind::kWitnessInvalid, pc,
                        "immediate-form transformer entry does not describe the "
                        "instruction at its site");
          }
          break;
        }
        case riscv::WitnessXform::kAddrFold: {
          auto in = InstrAt(pc);
          bool ok = in.has_value() &&
                    (in->op == Op::kLw || in->op == Op::kLbu || in->op == Op::kSw ||
                     in->op == Op::kSb || in->op == Op::kAddi) &&
                    in->imm == x.imm;
          if (!ok) {
            return Flag(TvFindingKind::kWitnessInvalid, pc,
                        "address-fold transformer entry does not match the folded "
                        "memory operand at its site");
          }
          break;
        }
        default:
          return Flag(TvFindingKind::kWitnessInvalid, pc,
                      "unknown transformer pass " + std::to_string(x.pass));
      }
      out_->stats.xforms++;
    }
    stmt_line_ = 0;
    return true;
  }

  // Maps codegen's BinopCode discriminator (1-based: + - * / % & | ^ << >> ==
  // != < > <= >=) to the immediate instruction the pass is allowed to select.
  static bool ImmFormMatches(const Instr& in, const riscv::WitnessXform& x) {
    int32_t b = x.imm;
    switch (x.op) {
      case 1: return in.op == Op::kAddi && in.imm == b;    // +
      case 2: return in.op == Op::kAddi && in.imm == -b;   // -
      case 3: {                                            // * by a power of two
        uint32_t ub = static_cast<uint32_t>(b);
        if (ub == 0 || (ub & (ub - 1)) != 0) {
          return false;
        }
        int shift = 0;
        while ((ub >> shift) != 1) {
          shift++;
        }
        return in.op == Op::kSlli && in.imm == shift;
      }
      case 6: return in.op == Op::kAndi && in.imm == b;    // &
      case 7: return in.op == Op::kOri && in.imm == b;     // |
      case 8: return in.op == Op::kXori && in.imm == b;    // ^
      case 9: return in.op == Op::kSlli && in.imm == b;    // <<
      case 10: return in.op == Op::kSrli && in.imm == b;   // >>
      case 13: return in.op == Op::kSltiu && in.imm == b;  // <
      default: return false;
    }
  }

  // --- Frame classification -------------------------------------------------

  enum class Region : uint8_t { kDirect, kMem, kOut };

  // Classifies an access at fp (offset from the post-prologue sp, in [0, frame)):
  // kDirect slots are tracked scalars and bookkeeping (spill/ra/padding) handled via
  // the exact frame map; kMem extents (arrays, address-taken scalars) must pair with
  // a source-level effect.
  Region Classify(int64_t fp) const {
    if (fp < 0 || fp >= frame_size_) {
      return Region::kOut;
    }
    for (const SlotInfo& slot : slots_) {
      if (slot.frame_offset < 0) {
        continue;  // Promoted to a register; occupies no frame extent.
      }
      if (fp >= slot.frame_offset &&
          fp < slot.frame_offset + static_cast<int>(slot.bytes)) {
        return slot.tracked ? Region::kDirect : Region::kMem;
      }
    }
    return Region::kDirect;  // Spill area, saved-register area, ra slot, padding.
  }

  // --- Register / memory primitives ----------------------------------------

  TermId ReadReg(uint8_t reg) {
    return reg == 0 ? arena_.Const(0) : state_.regs[reg];
  }
  void WriteReg(uint8_t reg, TermId v) {
    if (reg != 0) {
      state_.regs[reg] = v;
    }
  }
  TermId Mask8(TermId v) { return arena_.Bin(BinOp::kAnd, v, arena_.Const(0xff)); }
  TermId SpSlotAddr(int frame_offset) {
    return arena_.Bin(BinOp::kAdd, arena_.SpEntry(),
                      arena_.Const(static_cast<uint32_t>(frame_offset - frame_size_)));
  }
  static uint8_t AccessSize(const Type& t) {
    return t.IsPointer() || t.Size() == 4 ? 4 : 1;
  }

  std::optional<Instr> InstrAt(uint32_t pc) const {
    if (pc < image_.rom_base || pc + 4 > image_.rom_base + image_.rom.size()) {
      return std::nullopt;
    }
    return riscv::Decode(LoadLe32(image_.rom.data() + (pc - image_.rom_base)));
  }

  // --- Interpreter ----------------------------------------------------------

  bool StepAlu(const Instr& in, uint32_t pc) {
    auto imm = [&] { return arena_.Const(static_cast<uint32_t>(in.imm)); };
    auto bin = [&](BinOp op, TermId a, TermId b) {
      WriteReg(in.rd, arena_.Bin(op, a, b));
      return true;
    };
    switch (in.op) {
      case Op::kLui: WriteReg(in.rd, arena_.Const(static_cast<uint32_t>(in.imm))); return true;
      case Op::kAuipc: WriteReg(in.rd, arena_.Const(pc + static_cast<uint32_t>(in.imm))); return true;
      case Op::kAddi: return bin(BinOp::kAdd, ReadReg(in.rs1), imm());
      case Op::kAndi: return bin(BinOp::kAnd, ReadReg(in.rs1), imm());
      case Op::kOri: return bin(BinOp::kOr, ReadReg(in.rs1), imm());
      case Op::kXori: return bin(BinOp::kXor, ReadReg(in.rs1), imm());
      case Op::kSltiu: return bin(BinOp::kSltu, ReadReg(in.rs1), imm());
      case Op::kSlli: return bin(BinOp::kSll, ReadReg(in.rs1), imm());
      case Op::kSrli: return bin(BinOp::kSrl, ReadReg(in.rs1), imm());
      case Op::kAdd: return bin(BinOp::kAdd, ReadReg(in.rs1), ReadReg(in.rs2));
      case Op::kSub: return bin(BinOp::kSub, ReadReg(in.rs1), ReadReg(in.rs2));
      case Op::kAnd: return bin(BinOp::kAnd, ReadReg(in.rs1), ReadReg(in.rs2));
      case Op::kOr: return bin(BinOp::kOr, ReadReg(in.rs1), ReadReg(in.rs2));
      case Op::kXor: return bin(BinOp::kXor, ReadReg(in.rs1), ReadReg(in.rs2));
      case Op::kSll: return bin(BinOp::kSll, ReadReg(in.rs1), ReadReg(in.rs2));
      case Op::kSrl: return bin(BinOp::kSrl, ReadReg(in.rs1), ReadReg(in.rs2));
      case Op::kSltu: return bin(BinOp::kSltu, ReadReg(in.rs1), ReadReg(in.rs2));
      case Op::kMul: return bin(BinOp::kMul, ReadReg(in.rs1), ReadReg(in.rs2));
      case Op::kMulhu: return bin(BinOp::kMulhu, ReadReg(in.rs1), ReadReg(in.rs2));
      case Op::kDivu: return bin(BinOp::kDivu, ReadReg(in.rs1), ReadReg(in.rs2));
      case Op::kRemu: return bin(BinOp::kRemu, ReadReg(in.rs1), ReadReg(in.rs2));
      case Op::kLw: return InterpLoad(in, pc, 4);
      case Op::kLbu: return InterpLoad(in, pc, 1);
      case Op::kSw: return InterpStore(in, pc, 4);
      case Op::kSb: return InterpStore(in, pc, 1);
      default:
        return Flag(TvFindingKind::kUnsupported, pc,
                    "instruction outside the validated output language");
    }
  }

  bool InterpLoad(const Instr& in, uint32_t pc, uint8_t size) {
    TermId addr = arena_.Bin(BinOp::kAdd, ReadReg(in.rs1),
                             arena_.Const(static_cast<uint32_t>(in.imm)));
    auto disp = arena_.SpDisplacement(addr);
    if (disp.has_value()) {
      int64_t fp = *disp + frame_size_;
      Region r = Classify(fp);
      if (r == Region::kOut) {
        return Flag(TvFindingKind::kUnexpectedEffect, pc,
                    "sp-relative load outside the function's frame");
      }
      if (r == Region::kDirect) {
        auto it = state_.frame.find(static_cast<int32_t>(fp));
        TermId v;
        if (it != state_.frame.end()) {
          v = it->second;
        } else {
          v = arena_.Fresh(FreshTag::kUninit);
          state_.frame[static_cast<int32_t>(fp)] = v;
        }
        WriteReg(in.rd, size == 1 ? Mask8(v) : v);
        return true;
      }
    }
    // Pairs with the next source-level read.
    if (queue_.empty()) {
      return Flag(TvFindingKind::kUnexpectedEffect, pc,
                  "load has no pending source-level memory read");
    }
    Effect ef = std::move(queue_.front());
    queue_.pop_front();
    if (ef.kind != Effect::Kind::kLoad) {
      return Flag(TvFindingKind::kEffectMismatch, pc,
                  std::string("source expects a ") + EffectKindName(ef.kind) +
                      " next (line " + std::to_string(ef.line) +
                      "), asm performs a load");
    }
    if (ef.size != size) {
      return Flag(TvFindingKind::kEffectMismatch, pc,
                  "load width " + std::to_string(size) + " != source width " +
                      std::to_string(ef.size));
    }
    if (ef.addr != addr) {
      return Flag(TvFindingKind::kEffectMismatch, pc,
                  "load address " + arena_.Str(addr) + " != source address " +
                      arena_.Str(ef.addr));
    }
    if (arena_.secret(addr)) {
      out_->stats.secret_addresses++;
    }
    WriteReg(in.rd, ef.value);
    return true;
  }

  bool InterpStore(const Instr& in, uint32_t pc, uint8_t size) {
    TermId addr = arena_.Bin(BinOp::kAdd, ReadReg(in.rs1),
                             arena_.Const(static_cast<uint32_t>(in.imm)));
    TermId value = ReadReg(in.rs2);
    auto disp = arena_.SpDisplacement(addr);
    if (disp.has_value()) {
      int64_t fp = *disp + frame_size_;
      Region r = Classify(fp);
      if (r == Region::kOut) {
        return Flag(TvFindingKind::kUnexpectedEffect, pc,
                    "sp-relative store outside the function's frame");
      }
      // The prologue homes parameters into their slots (including address-taken
      // ones) before any source statement runs; those stores are bookkeeping.
      if (r == Region::kDirect || in_prologue_) {
        state_.frame[static_cast<int32_t>(fp)] = value;
        return true;
      }
    }
    if (queue_.empty()) {
      return Flag(TvFindingKind::kUnexpectedEffect, pc,
                  "store has no pending source-level memory write");
    }
    Effect ef = std::move(queue_.front());
    queue_.pop_front();
    if (ef.kind != Effect::Kind::kStore) {
      return Flag(TvFindingKind::kEffectMismatch, pc,
                  std::string("source expects a ") + EffectKindName(ef.kind) +
                      " next (line " + std::to_string(ef.line) +
                      "), asm performs a store");
    }
    if (ef.size != size) {
      return Flag(TvFindingKind::kEffectMismatch, pc,
                  "store width " + std::to_string(size) + " != source width " +
                      std::to_string(ef.size));
    }
    if (ef.addr != addr) {
      return Flag(TvFindingKind::kEffectMismatch, pc,
                  "store address " + arena_.Str(addr) + " != source address " +
                      arena_.Str(ef.addr));
    }
    if (ef.value != value) {
      return Flag(TvFindingKind::kEffectMismatch, pc,
                  "stored value " + arena_.Str(value) + " != source value " +
                      arena_.Str(ef.value));
    }
    if (arena_.secret(addr)) {
      out_->stats.secret_addresses++;
    }
    return true;
  }

  bool HandleCall(const Instr& in, uint32_t pc) {
    uint32_t target = pc + static_cast<uint32_t>(in.imm);
    if (queue_.empty()) {
      return Flag(TvFindingKind::kUnexpectedEffect, pc,
                  "call with no pending source-level call");
    }
    Effect ef = std::move(queue_.front());
    queue_.pop_front();
    if (ef.kind != Effect::Kind::kCall) {
      return Flag(TvFindingKind::kEffectMismatch, pc,
                  std::string("source expects a ") + EffectKindName(ef.kind) +
                      " next (line " + std::to_string(ef.line) +
                      "), asm performs a call");
    }
    auto addr_it = index_.function_addrs.find(ef.callee);
    if (addr_it == index_.function_addrs.end()) {
      return Flag(TvFindingKind::kWitnessInvalid, pc,
                  "callee '" + ef.callee + "' has no linked address");
    }
    if (addr_it->second != target) {
      return Flag(TvFindingKind::kEffectMismatch, pc,
                  "call targets " + Hex(target) + " but source calls '" + ef.callee +
                      "' at " + Hex(addr_it->second));
    }
    for (size_t i = 0; i < ef.args.size(); i++) {
      TermId got = ReadReg(static_cast<uint8_t>(10 + i));
      if (got != ef.args[i]) {
        return Flag(TvFindingKind::kEffectMismatch, pc,
                    "argument " + std::to_string(i) + " of '" + ef.callee + "': asm " +
                        arena_.Str(got) + " != source " + arena_.Str(ef.args[i]));
      }
    }
    WriteReg(1, arena_.Const(pc + 4));
    for (uint8_t r : kCallerSaved) {
      if (r != 1) {
        WriteReg(r, arena_.Fresh(FreshTag::kHavoc));
      }
    }
    if (ef.returns_value) {
      WriteReg(10, ef.result);
    }
    return true;
  }

  // Interprets instructions until `target` is reached or control flow intervenes.
  Stop ExecTo(uint32_t target) {
    for (;;) {
      if (failed_) {
        return Stop{StopKind::kFail, {}, cur_};
      }
      if (cur_ == target) {
        return Stop{StopKind::kTarget, {}, cur_};
      }
      if (cur_ < Abs(wf_.begin) || cur_ >= Abs(wf_.end)) {
        Flag(TvFindingKind::kStructureMismatch, cur_, "walk left the function's range");
        return Stop{StopKind::kFail, {}, cur_};
      }
      if (++out_->stats.steps > config_.max_steps) {
        Flag(TvFindingKind::kUnsupported, cur_, "per-function step budget exhausted");
        return Stop{StopKind::kFail, {}, cur_};
      }
      auto in = InstrAt(cur_);
      if (!in.has_value()) {
        Flag(TvFindingKind::kUnsupported, cur_, "undecodable instruction word");
        return Stop{StopKind::kFail, {}, cur_};
      }
      if (riscv::IsBranch(in->op)) {
        return Stop{StopKind::kBranch, *in, cur_};
      }
      if (in->op == Op::kJal) {
        if (in->rd == 0) {
          return Stop{StopKind::kJump, *in, cur_};
        }
        if (in->rd == 1) {
          visited_.insert(cur_);
          if (!HandleCall(*in, cur_)) {
            return Stop{StopKind::kFail, {}, cur_};
          }
          cur_ += 4;
          continue;
        }
        Flag(TvFindingKind::kUnsupported, cur_, "jal with unusual link register");
        return Stop{StopKind::kFail, {}, cur_};
      }
      if (in->op == Op::kJalr) {
        return Stop{StopKind::kRet, *in, cur_};
      }
      if (in->op == Op::kEcall || in->op == Op::kEbreak || in->op == Op::kFence) {
        Flag(TvFindingKind::kUnsupported, cur_, "system instruction in compiled code");
        return Stop{StopKind::kFail, {}, cur_};
      }
      visited_.insert(cur_);
      if (!StepAlu(*in, cur_)) {
        return Stop{StopKind::kFail, {}, cur_};
      }
      cur_ += 4;
    }
  }

  // Marks the control instruction at cur_ as justified and moves past it.
  void Consume() {
    visited_.insert(cur_);
    cur_ += 4;
  }

  // --- Source mirror --------------------------------------------------------

  int LookupLocal(const std::string& name) const {
    for (auto it = scopes_.rbegin(); it != scopes_.rend(); ++it) {
      auto found = it->find(name);
      if (found != it->end()) {
        return found->second;
      }
    }
    return -1;
  }

  TermId QueueLoad(TermId addr, uint8_t size, bool secret_src, int line) {
    Effect ef;
    ef.kind = Effect::Kind::kLoad;
    ef.size = size;
    ef.addr = addr;
    ef.value = arena_.Fresh(FreshTag::kLoad, secret_src || arena_.secret(addr));
    ef.line = line;
    queue_.push_back(ef);
    return queue_.back().value;
  }

  void QueueStore(TermId addr, uint8_t size, TermId value, int line) {
    Effect ef;
    ef.kind = Effect::Kind::kStore;
    ef.size = size;
    ef.addr = addr;
    ef.value = value;
    ef.line = line;
    queue_.push_back(ef);
  }

  // Mirrors codegen's canonical O0 lowering of an lvalue address.
  // Sets *vtype to the pointed-to (stored/loaded) type.
  bool EvalAddr(const Expr& e, TermId* addr, Type* vtype) {
    out_->stats.steps++;
    switch (e.kind) {
      case Expr::Kind::kVar: {
        int si = LookupLocal(e.name);
        if (si >= 0) {
          const SlotInfo& slot = slots_[si];
          if (slot.tracked) {
            return Flag(TvFindingKind::kUnsupported, cur_,
                        "internal: address of a tracked local");
          }
          *addr = SpSlotAddr(slot.frame_offset);
          *vtype = slot.type;
          return true;
        }
        auto g = index_.globals.find(e.name);
        if (g != index_.globals.end()) {
          *addr = arena_.Const(g->second.addr);
          *vtype = g->second.type;
          return true;
        }
        return Flag(TvFindingKind::kUnsupported, cur_, "undefined variable " + e.name);
      }
      case Expr::Kind::kDeref: {
        Type t;
        if (!Eval(*e.lhs, addr, &t)) {
          return false;
        }
        if (!t.IsPointer()) {
          return Flag(TvFindingKind::kUnsupported, cur_, "dereference of non-pointer");
        }
        *vtype = Type{t.base, t.ptr - 1};
        return true;
      }
      case Expr::Kind::kIndex: {
        TermId base;
        Type bt;
        if (!Eval(*e.lhs, &base, &bt)) {
          return false;
        }
        if (!bt.IsPointer()) {
          return Flag(TvFindingKind::kUnsupported, cur_, "indexing a non-pointer");
        }
        TermId idx;
        Type it;
        if (!Eval(*e.rhs, &idx, &it)) {
          return false;
        }
        if (bt.PointeeSize() == 4) {
          idx = arena_.Bin(BinOp::kSll, idx, arena_.Const(2));
        }
        *addr = arena_.Bin(BinOp::kAdd, base, idx);
        *vtype = Type{bt.base, bt.ptr - 1};
        return true;
      }
      default:
        return Flag(TvFindingKind::kUnsupported, cur_, "expression is not an lvalue");
    }
  }

  // Mirrors codegen's canonical O0 lowering of an rvalue. For void calls *val is 0.
  bool Eval(const Expr& e, TermId* val, Type* type) {
    out_->stats.steps++;
    switch (e.kind) {
      case Expr::Kind::kIntLit:
        *val = arena_.Const(e.int_value);
        *type = Type{Type::Base::kU32, 0};
        return true;
      case Expr::Kind::kVar: {
        int si = LookupLocal(e.name);
        if (si >= 0) {
          const SlotInfo& slot = slots_[si];
          if (slot.array_size != 0) {
            *val = SpSlotAddr(slot.frame_offset);
            *type = Type{slot.type.base, slot.type.ptr + 1};
            return true;
          }
          if (slot.tracked) {
            auto env = state_.env.find(si);
            if (env == state_.env.end()) {
              return Flag(TvFindingKind::kUnsupported, cur_,
                          "internal: tracked local read before initialization record");
            }
            bool u8 = !slot.type.IsPointer() && slot.type.Size() == 1;
            *val = u8 ? Mask8(env->second) : env->second;
            *type = slot.type;
            return true;
          }
          *val = QueueLoad(SpSlotAddr(slot.frame_offset), AccessSize(slot.type),
                           /*secret_src=*/false, e.line);
          *type = slot.type;
          return true;
        }
        auto g = index_.globals.find(e.name);
        if (g != index_.globals.end()) {
          if (g->second.array_size != 0) {
            *val = arena_.Const(g->second.addr);
            *type = Type{g->second.type.base, g->second.type.ptr + 1};
            return true;
          }
          *val = QueueLoad(arena_.Const(g->second.addr), AccessSize(g->second.type),
                           g->second.secret, e.line);
          *type = g->second.type;
          return true;
        }
        return Flag(TvFindingKind::kUnsupported, cur_, "undefined variable " + e.name);
      }
      case Expr::Kind::kUnary: {
        TermId v;
        Type t;
        if (!Eval(*e.lhs, &v, &t)) {
          return false;
        }
        if (e.op == "-") {
          *val = arena_.Bin(BinOp::kSub, arena_.Const(0), v);
        } else if (e.op == "~") {
          *val = arena_.Bin(BinOp::kXor, v, arena_.Const(0xffffffffu));
        } else {  // "!"
          *val = arena_.Bin(BinOp::kSltu, v, arena_.Const(1));
        }
        *type = Type{Type::Base::kU32, 0};
        return true;
      }
      case Expr::Kind::kDeref:
      case Expr::Kind::kIndex: {
        TermId addr;
        Type vt;
        if (!EvalAddr(e, &addr, &vt)) {
          return false;
        }
        *val = QueueLoad(addr, AccessSize(vt), /*secret_src=*/false, e.line);
        *type = vt;
        return true;
      }
      case Expr::Kind::kAddrOf: {
        Type vt;
        if (!EvalAddr(*e.lhs, val, &vt)) {
          return false;
        }
        *type = Type{vt.base, vt.ptr + 1};
        return true;
      }
      case Expr::Kind::kCast: {
        TermId v;
        Type t;
        if (!Eval(*e.lhs, &v, &t)) {
          return false;
        }
        if (e.cast_type.base == Type::Base::kU8 && e.cast_type.ptr == 0) {
          v = Mask8(v);
        }
        *val = v;
        *type = e.cast_type;
        return true;
      }
      case Expr::Kind::kAssign:
        return EvalAssign(e, val, type);
      case Expr::Kind::kBinary:
        return EvalBinary(e, val, type);
      case Expr::Kind::kCall:
        return EvalCall(e, val, type);
    }
    return Flag(TvFindingKind::kUnsupported, cur_, "unhandled expression kind");
  }

  bool EvalAssign(const Expr& e, TermId* val, Type* type) {
    if (e.lhs->kind == Expr::Kind::kVar) {
      int si = LookupLocal(e.lhs->name);
      if (si >= 0 && slots_[si].tracked) {
        // Codegen materializes the slot address first (no effects), evaluates the
        // rhs, then stores; the store lands in the tracked slot as bookkeeping, so
        // the mirror only updates env and lets the boundary check compare.
        TermId v;
        Type rt;
        if (!Eval(*e.rhs, &v, &rt)) {
          return false;
        }
        state_.env[si] = v;
        *val = v;
        *type = slots_[si].type;
        return true;
      }
    }
    TermId addr;
    Type vt;
    if (!EvalAddr(*e.lhs, &addr, &vt)) {
      return false;
    }
    TermId v;
    Type rt;
    if (!Eval(*e.rhs, &v, &rt)) {
      return false;
    }
    QueueStore(addr, AccessSize(vt), v, e.line);
    *val = v;
    *type = vt;
    return true;
  }

  bool EvalBinary(const Expr& e, TermId* val, Type* type) {
    if (e.op == "&&" || e.op == "||") {
      return Flag(TvFindingKind::kUnsupported, cur_,
                  "short-circuit lowering is outside the validated subset");
    }
    TermId l, r;
    Type lt, rt;
    if (!Eval(*e.lhs, &l, &lt) || !Eval(*e.rhs, &r, &rt)) {
      return false;
    }
    auto scale = [&](TermId x, int elem) {
      return elem == 1 ? x : arena_.Bin(BinOp::kSll, x, arena_.Const(2));
    };
    Type result{Type::Base::kU32, 0};
    if (e.op == "+" && lt.IsPointer() && !rt.IsPointer()) {
      r = scale(r, lt.PointeeSize());
      result = lt;
    } else if (e.op == "+" && rt.IsPointer() && !lt.IsPointer()) {
      l = scale(l, rt.PointeeSize());
      result = rt;
    } else if (e.op == "-" && lt.IsPointer() && !rt.IsPointer()) {
      r = scale(r, lt.PointeeSize());
      result = lt;
    } else if (lt.IsPointer() || rt.IsPointer()) {
      if (e.op != "==" && e.op != "!=" && e.op != "<" && e.op != ">" && e.op != "<=" &&
          e.op != ">=") {
        return Flag(TvFindingKind::kUnsupported, cur_,
                    "unsupported pointer arithmetic with " + e.op);
      }
    }
    TermId one = arena_.Const(1);
    if (e.op == "+") *val = arena_.Bin(BinOp::kAdd, l, r);
    else if (e.op == "-") *val = arena_.Bin(BinOp::kSub, l, r);
    else if (e.op == "*") *val = arena_.Bin(BinOp::kMul, l, r);
    else if (e.op == "/") *val = arena_.Bin(BinOp::kDivu, l, r);
    else if (e.op == "%") *val = arena_.Bin(BinOp::kRemu, l, r);
    else if (e.op == "&") *val = arena_.Bin(BinOp::kAnd, l, r);
    else if (e.op == "|") *val = arena_.Bin(BinOp::kOr, l, r);
    else if (e.op == "^") *val = arena_.Bin(BinOp::kXor, l, r);
    else if (e.op == "<<") *val = arena_.Bin(BinOp::kSll, l, r);
    else if (e.op == ">>") *val = arena_.Bin(BinOp::kSrl, l, r);
    else if (e.op == "==")
      *val = arena_.Bin(BinOp::kSltu, arena_.Bin(BinOp::kSub, l, r), one);
    else if (e.op == "!=")
      *val = arena_.Bin(BinOp::kSltu, arena_.Const(0), arena_.Bin(BinOp::kSub, l, r));
    else if (e.op == "<") *val = arena_.Bin(BinOp::kSltu, l, r);
    else if (e.op == ">") *val = arena_.Bin(BinOp::kSltu, r, l);
    else if (e.op == "<=")
      *val = arena_.Bin(BinOp::kXor, arena_.Bin(BinOp::kSltu, r, l), one);
    else if (e.op == ">=")
      *val = arena_.Bin(BinOp::kXor, arena_.Bin(BinOp::kSltu, l, r), one);
    else
      return Flag(TvFindingKind::kUnsupported, cur_, "unknown operator " + e.op);
    *type = result;
    return true;
  }

  bool EvalCall(const Expr& e, TermId* val, Type* type) {
    if (e.name == "__mulhu") {
      TermId a, b;
      Type t;
      if (e.args.size() != 2 || !Eval(*e.args[0], &a, &t) || !Eval(*e.args[1], &b, &t)) {
        return failed_ ? false
                       : Flag(TvFindingKind::kUnsupported, cur_, "__mulhu takes 2 arguments");
      }
      *val = arena_.Bin(BinOp::kMulhu, a, b);
      *type = Type{Type::Base::kU32, 0};
      return true;
    }
    auto f = index_.functions.find(e.name);
    if (f == index_.functions.end()) {
      return Flag(TvFindingKind::kUnsupported, cur_, "call to undefined function " + e.name);
    }
    Effect ef;
    ef.kind = Effect::Kind::kCall;
    ef.callee = e.name;
    ef.line = e.line;
    bool secret_arg = false;
    for (const auto& arg : e.args) {
      TermId v;
      Type t;
      if (!Eval(*arg, &v, &t)) {
        return false;
      }
      secret_arg = secret_arg || arena_.secret(v);
      ef.args.push_back(v);
    }
    *type = f->second->return_type;
    ef.returns_value = !type->IsVoid();
    if (ef.returns_value) {
      ef.result = arena_.Fresh(FreshTag::kCallResult, secret_arg);
    }
    *val = ef.result;
    queue_.push_back(std::move(ef));
    return true;
  }

  // --- Boundary checks and joins --------------------------------------------

  // The simulation relation proper (relaxed for O2): at every statement boundary
  // the effect queue must be drained and every tracked scalar's mirror value must
  // equal its machine location's term — the frame slot at O0, the promoted
  // callee-saved register when the witness promoted it.
  bool BoundaryCheck(uint32_t end_pc) {
    if (!queue_.empty()) {
      const Effect& ef = queue_.front();
      return Flag(TvFindingKind::kMissingEffect, end_pc,
                  std::string("source-level ") + EffectKindName(ef.kind) +
                      " from line " + std::to_string(ef.line) +
                      " was never performed by the asm");
    }
    for (const auto& [si, v] : state_.env) {
      const SlotInfo& slot = slots_[si];
      if (slot.reg >= 0) {
        TermId got = state_.regs[slot.reg];
        if (got != v) {
          return Flag(TvFindingKind::kValueMismatch, end_pc,
                      "local '" + slot.name + "': promoted register " +
                          riscv::RegName(static_cast<uint8_t>(slot.reg)) + " holds " +
                          arena_.Str(got) + ", source value is " + arena_.Str(v));
        }
        continue;
      }
      auto it = state_.frame.find(slot.frame_offset);
      if (it == state_.frame.end() || it->second != v) {
        return Flag(TvFindingKind::kValueMismatch, end_pc,
                    "local '" + slot.name + "': frame slot holds " +
                        (it == state_.frame.end() ? std::string("nothing")
                                                  : arena_.Str(it->second)) +
                        ", source value is " + arena_.Str(v));
      }
    }
    return true;
  }

  // Merges `b` into state_ (which holds path `a`): tracked scalars get one shared
  // phi written to both env and their machine location (frame slot, or promoted
  // register) so the correspondence survives the join; everything else joins
  // pointwise.
  void JoinInto(const State& b) {
    std::set<int32_t> handled;
    std::set<int> handled_regs;
    std::set<int> keys;
    for (const auto& [k, v] : state_.env) keys.insert(k);
    for (const auto& [k, v] : b.env) keys.insert(k);
    for (int k : keys) {
      auto ia = state_.env.find(k);
      auto ib = b.env.find(k);
      if (ia != state_.env.end() && ib != b.env.end() && ia->second == ib->second) {
        continue;
      }
      TermId phi = arena_.Fresh(FreshTag::kPhi);
      state_.env[k] = phi;
      if (slots_[k].reg >= 0) {
        state_.regs[slots_[k].reg] = phi;
        handled_regs.insert(slots_[k].reg);
      } else {
        state_.frame[slots_[k].frame_offset] = phi;
        handled.insert(slots_[k].frame_offset);
      }
    }
    std::set<int32_t> offs;
    for (const auto& [k, v] : state_.frame) offs.insert(k);
    for (const auto& [k, v] : b.frame) offs.insert(k);
    for (int32_t off : offs) {
      if (handled.count(off)) {
        continue;
      }
      auto ia = state_.frame.find(off);
      auto ib = b.frame.find(off);
      if (ia != state_.frame.end() && ib != b.frame.end() && ia->second == ib->second) {
        continue;
      }
      state_.frame[off] = arena_.Fresh(FreshTag::kPhi);
    }
    for (int r = 1; r < 32; r++) {
      if (handled_regs.count(r)) {
        continue;
      }
      if (state_.regs[r] != b.regs[r]) {
        state_.regs[r] = arena_.Fresh(FreshTag::kPhi);
      }
    }
  }

  // Counts declaration statements in a subtree. Slots are numbered in the same
  // pre-order the walk declares them, so the `num_decls` slots starting at the
  // current decl_counter_ are exactly the subtree's declarations.
  static int CountDecls(const Stmt& s) {
    int n = s.kind == Stmt::Kind::kDecl ? 1 : 0;
    if (s.init) n += CountDecls(*s.init);
    if (s.body) n += CountDecls(*s.body);
    if (s.else_body) n += CountDecls(*s.else_body);
    for (const auto& sub : s.stmts) {
      n += CountDecls(*sub);
    }
    return n;
  }

  // Havocs what one loop iteration may change: tracked scalars assigned in the loop
  // (shared fresh term in env and their machine location), registers holding
  // promoted locals *declared* inside the body (dead at the head, so each
  // iteration may leave anything there), the spill area, and all caller-saved
  // registers. Everything else must be loop-invariant, which CheckLoopInvariant
  // enforces at every back edge.
  void HavocLoopHead(const std::set<int>& assigned, int body_decls, LoopCtx* ctx) {
    for (int si : assigned) {
      TermId h = arena_.Fresh(FreshTag::kHavoc);
      state_.env[si] = h;
      if (slots_[si].reg >= 0) {
        state_.regs[slots_[si].reg] = h;
        ctx->havoc_regs.insert(slots_[si].reg);
      } else {
        state_.frame[slots_[si].frame_offset] = h;
        ctx->havoc_offsets.insert(slots_[si].frame_offset);
      }
      ctx->havoc_slots.insert(si);
    }
    for (int si = decl_counter_; si < decl_counter_ + body_decls; si++) {
      if (slots_[si].reg >= 0) {
        state_.regs[slots_[si].reg] = arena_.Fresh(FreshTag::kHavoc);
        ctx->havoc_regs.insert(slots_[si].reg);
      }
    }
    for (auto& [off, v] : state_.frame) {
      if (off >= 0 && off < 4 * kNumSpillSlots) {
        v = arena_.Fresh(FreshTag::kHavoc);
        ctx->havoc_offsets.insert(off);
      }
    }
    for (uint8_t r : kCallerSaved) {
      state_.regs[r] = arena_.Fresh(FreshTag::kHavoc);
    }
    ctx->head = state_;
  }

  // At a back edge (or a break/continue leaving the iteration), every component not
  // havocked at the loop head must still hold its head value — the inductive step
  // that justifies resuming from the head state after the loop.
  bool CheckLoopInvariant(const LoopCtx& ctx, uint32_t pc) {
    for (uint8_t r : kCalleeSaved) {
      if (ctx.havoc_regs.count(r)) {
        continue;  // Holds a promoted loop-varying local; checked via env.
      }
      if (state_.regs[r] != ctx.head.regs[r]) {
        return Flag(TvFindingKind::kValueMismatch, pc,
                    std::string("callee-saved register ") + riscv::RegName(r) +
                        " is not loop-invariant");
      }
    }
    if (state_.regs[2] != ctx.head.regs[2]) {
      return Flag(TvFindingKind::kAbiViolation, pc, "sp is not loop-invariant");
    }
    for (const auto& [off, v] : ctx.head.frame) {
      if (ctx.havoc_offsets.count(off)) {
        continue;
      }
      auto it = state_.frame.find(off);
      if (it == state_.frame.end() || it->second != v) {
        return Flag(TvFindingKind::kValueMismatch, pc,
                    "frame slot at offset " + std::to_string(off) +
                        " is not loop-invariant");
      }
    }
    for (const auto& [si, v] : ctx.head.env) {
      if (ctx.havoc_slots.count(si)) {
        continue;
      }
      auto it = state_.env.find(si);
      if (it == state_.env.end() || it->second != v) {
        return Flag(TvFindingKind::kValueMismatch, pc,
                    "local '" + slots_[si].name + "' is not loop-invariant");
      }
    }
    return true;
  }

  // Collects tracked scalars assigned (by name) inside a loop; conservative under
  // shadowing, which only adds havoc.
  void CollectAssignedExpr(const Expr& e, std::set<int>* out) const {
    if (e.kind == Expr::Kind::kAssign && e.lhs->kind == Expr::Kind::kVar) {
      int si = LookupLocal(e.lhs->name);
      if (si >= 0 && slots_[si].tracked) {
        out->insert(si);
      }
    }
    if (e.lhs) CollectAssignedExpr(*e.lhs, out);
    if (e.rhs) CollectAssignedExpr(*e.rhs, out);
    for (const auto& a : e.args) {
      CollectAssignedExpr(*a, out);
    }
  }

  void CollectAssignedStmt(const Stmt& s, std::set<int>* out) const {
    if (s.expr) CollectAssignedExpr(*s.expr, out);
    if (s.decl_init) CollectAssignedExpr(*s.decl_init, out);
    if (s.post) CollectAssignedExpr(*s.post, out);
    if (s.init) CollectAssignedStmt(*s.init, out);
    if (s.body) CollectAssignedStmt(*s.body, out);
    if (s.else_body) CollectAssignedStmt(*s.else_body, out);
    for (const auto& sub : s.stmts) {
      CollectAssignedStmt(*sub, out);
    }
  }

  // --- Statement walk -------------------------------------------------------

  // Expects the conditional branch codegen emits for a false-condition skip:
  // `beq cond, x0, target`. Checks polarity (the swapped-branch mutation turns it
  // into bne), shape, and that the register holds exactly the mirrored condition.
  bool ExpectCondBranch(TermId cond, uint32_t stop_at, uint32_t* taken) {
    Stop st = ExecTo(stop_at);
    if (st.kind != StopKind::kBranch) {
      return FlagStop(st, "(expected the statement's conditional branch)");
    }
    std::string secret_note =
        arena_.secret(cond) ? " (condition is secret-dependent)" : "";
    if (st.instr.op == Op::kBne) {
      return Flag(TvFindingKind::kBranchMismatch, st.pc,
                  "branch polarity inverted: bne where beq was required" + secret_note);
    }
    if (st.instr.op != Op::kBeq || st.instr.rs2 != 0) {
      return Flag(TvFindingKind::kBranchMismatch, st.pc,
                  "branch shape differs from the canonical beq-against-zero" +
                      secret_note);
    }
    TermId got = ReadReg(st.instr.rs1);
    if (got != cond) {
      return Flag(TvFindingKind::kBranchMismatch, st.pc,
                  "branch condition " + arena_.Str(got) + " != source condition " +
                      arena_.Str(cond) + secret_note);
    }
    if (arena_.secret(cond)) {
      out_->stats.secret_branches++;
    }
    if (!queue_.empty()) {
      return Flag(TvFindingKind::kMissingEffect, st.pc,
                  "source effects still pending at the condition's branch");
    }
    *taken = st.pc + static_cast<uint32_t>(st.instr.imm);
    Consume();
    return true;
  }

  bool WalkStmt(const Stmt& s) {
    if (wc_ >= wf_.stmts.size()) {
      return Flag(TvFindingKind::kWitnessInvalid, cur_, "witness statement table exhausted");
    }
    const riscv::WitnessStmt& ws = wf_.stmts[wc_++];
    if (ws.kind != static_cast<uint8_t>(s.kind) || ws.line != s.line) {
      return Flag(TvFindingKind::kWitnessInvalid, cur_,
                  "witness statement record does not match the AST walk");
    }
    if (Abs(ws.begin) != cur_) {
      return Flag(TvFindingKind::kStructureMismatch, cur_,
                  "statement range begins at " + Hex(Abs(ws.begin)) +
                      " but the walk is at " + Hex(cur_));
    }
    int prev_line = stmt_line_;
    Stmt::Kind prev_kind = stmt_kind_;
    stmt_line_ = s.line;
    stmt_kind_ = s.kind;
    out_->stats.stmts++;
    bool ok = WalkStmtInner(s, ws);
    if (ok && cur_ != Abs(ws.end)) {
      ok = Flag(TvFindingKind::kStructureMismatch, cur_,
                "statement range ends at " + Hex(Abs(ws.end)) + " but the walk is at " +
                    Hex(cur_));
    }
    if (ok) {
      ok = BoundaryCheck(Abs(ws.end));
    }
    stmt_line_ = prev_line;
    stmt_kind_ = prev_kind;
    return ok;
  }

  bool WalkStmtInner(const Stmt& s, const riscv::WitnessStmt& ws) {
    switch (s.kind) {
      case Stmt::Kind::kBlock: {
        scopes_.push_back({});
        for (const auto& sub : s.stmts) {
          if (!WalkStmt(*sub)) {
            scopes_.pop_back();
            return false;
          }
        }
        scopes_.pop_back();
        return true;
      }
      case Stmt::Kind::kDecl: {
        int si = decl_counter_++;
        if (si >= static_cast<int>(slots_.size())) {
          return Flag(TvFindingKind::kWitnessInvalid, cur_, "declaration without a slot");
        }
        const SlotInfo& slot = slots_[si];
        if (s.decl_init) {
          TermId v;
          Type t;
          if (!Eval(*s.decl_init, &v, &t)) {
            return false;
          }
          if (slot.tracked) {
            state_.env[si] = v;
          } else {
            QueueStore(SpSlotAddr(slot.frame_offset), AccessSize(slot.type), v, s.line);
          }
          Stop st = ExecTo(Abs(ws.end));
          if (st.kind != StopKind::kTarget) {
            return FlagStop(st, "(inside a declaration)");
          }
        } else if (slot.tracked) {
          // Declaration-without-initializer fiction: the same fresh term stands
          // for the uninitialized value on both sides. For a promoted slot the
          // machine location is the register; the epilogue restore later erases
          // the fiction by reloading the caller's saved value.
          TermId u = arena_.Fresh(FreshTag::kUninit);
          state_.env[si] = u;
          if (slot.reg >= 0) {
            state_.regs[slot.reg] = u;
          } else {
            state_.frame[slot.frame_offset] = u;
          }
        }
        scopes_.back()[s.decl_name] = si;
        return true;
      }
      case Stmt::Kind::kExpr: {
        TermId v;
        Type t;
        if (!Eval(*s.expr, &v, &t)) {
          return false;
        }
        Stop st = ExecTo(Abs(ws.end));
        if (st.kind != StopKind::kTarget) {
          return FlagStop(st, "(inside an expression statement)");
        }
        return true;
      }
      case Stmt::Kind::kReturn: {
        TermId v = 0;
        Type t;
        if (s.expr && !Eval(*s.expr, &v, &t)) {
          return false;
        }
        Stop st = ExecTo(Abs(ws.end));
        if (st.kind != StopKind::kJump) {
          return FlagStop(st, "(return must end in a jump to the epilogue)");
        }
        uint32_t target = st.pc + static_cast<uint32_t>(st.instr.imm);
        if (target != Abs(wf_.epilogue)) {
          return Flag(TvFindingKind::kStructureMismatch, st.pc,
                      "return jumps to " + Hex(target) + ", not the epilogue");
        }
        if (s.expr) {
          TermId got = ReadReg(10);
          if (got != v) {
            return Flag(TvFindingKind::kValueMismatch, st.pc,
                        "return value: a0 holds " + arena_.Str(got) +
                            ", source returns " + arena_.Str(v));
          }
        }
        Consume();
        return true;
      }
      case Stmt::Kind::kBreak:
      case Stmt::Kind::kContinue: {
        if (loops_.empty()) {
          return Flag(TvFindingKind::kWitnessInvalid, cur_, "break/continue outside a loop");
        }
        const LoopCtx& ctx = loops_.back();
        Stop st = ExecTo(Abs(ws.end));
        if (st.kind != StopKind::kJump) {
          return FlagStop(st, "(break/continue must be a jump)");
        }
        uint32_t target = st.pc + static_cast<uint32_t>(st.instr.imm);
        uint32_t want =
            s.kind == Stmt::Kind::kBreak ? ctx.break_target : ctx.continue_target;
        if (target != want) {
          return Flag(TvFindingKind::kBranchMismatch, st.pc,
                      "jump targets " + Hex(target) + ", expected " + Hex(want));
        }
        if (!queue_.empty()) {
          return Flag(TvFindingKind::kMissingEffect, st.pc,
                      "source effects still pending at a loop exit edge");
        }
        if (!CheckLoopInvariant(ctx, st.pc)) {
          return false;
        }
        Consume();
        return true;
      }
      case Stmt::Kind::kIf: {
        TermId cond;
        Type t;
        if (!Eval(*s.expr, &cond, &t)) {
          return false;
        }
        uint32_t taken = 0;
        if (!ExpectCondBranch(cond, Abs(ws.end), &taken)) {
          return false;
        }
        State at_branch = state_;
        if (!WalkStmt(*s.body)) {
          return false;
        }
        if (s.else_body) {
          Stop st = ExecTo(Abs(ws.end));
          if (st.kind != StopKind::kJump) {
            return FlagStop(st, "(then-arm must end by jumping over the else-arm)");
          }
          if (st.pc + static_cast<uint32_t>(st.instr.imm) != Abs(ws.end)) {
            return Flag(TvFindingKind::kStructureMismatch, st.pc,
                        "then-arm jump does not land at the statement's end");
          }
          State then_exit = state_;
          Consume();
          if (cur_ != taken) {
            return Flag(TvFindingKind::kBranchMismatch, cur_,
                        "false-branch target " + Hex(taken) +
                            " is not the else-arm at " + Hex(cur_));
          }
          state_ = std::move(at_branch);
          if (!WalkStmt(*s.else_body)) {
            return false;
          }
          JoinInto(then_exit);
        } else {
          if (taken != Abs(ws.end)) {
            return Flag(TvFindingKind::kBranchMismatch, cur_,
                        "false-branch target " + Hex(taken) +
                            " does not skip the then-arm");
          }
          JoinInto(at_branch);
        }
        return true;
      }
      case Stmt::Kind::kWhile: {
        if (Abs(ws.aux0) != cur_) {
          return Flag(TvFindingKind::kWitnessInvalid, cur_,
                      "while-loop head landmark disagrees with the walk");
        }
        std::set<int> assigned;
        CollectAssignedExpr(*s.expr, &assigned);
        CollectAssignedStmt(*s.body, &assigned);
        LoopCtx ctx;
        ctx.break_target = Abs(ws.end);
        ctx.continue_target = Abs(ws.aux0);
        HavocLoopHead(assigned, CountDecls(*s.body), &ctx);
        TermId cond;
        Type t;
        if (!Eval(*s.expr, &cond, &t)) {
          return false;
        }
        uint32_t taken = 0;
        if (!ExpectCondBranch(cond, Abs(ws.end), &taken)) {
          return false;
        }
        if (taken != Abs(ws.end)) {
          return Flag(TvFindingKind::kBranchMismatch, cur_,
                      "loop-exit branch targets " + Hex(taken) + ", expected " +
                          Hex(Abs(ws.end)));
        }
        State exit_state = state_;
        loops_.push_back(std::move(ctx));
        bool ok = WalkStmt(*s.body);
        if (ok) {
          Stop st = ExecTo(Abs(ws.end));
          if (st.kind != StopKind::kJump) {
            ok = FlagStop(st, "(loop body must end with the back edge)");
          } else if (st.pc + static_cast<uint32_t>(st.instr.imm) != Abs(ws.aux0)) {
            ok = Flag(TvFindingKind::kStructureMismatch, st.pc,
                      "back edge does not return to the loop head");
          } else if (!queue_.empty()) {
            ok = Flag(TvFindingKind::kMissingEffect, st.pc,
                      "source effects still pending at the back edge");
          } else {
            ok = CheckLoopInvariant(loops_.back(), st.pc);
            if (ok) {
              Consume();
            }
          }
        }
        loops_.pop_back();
        if (!ok) {
          return false;
        }
        state_ = std::move(exit_state);
        return true;
      }
      case Stmt::Kind::kFor: {
        scopes_.push_back({});
        if (s.init && !WalkStmt(*s.init)) {
          scopes_.pop_back();
          return false;
        }
        bool ok = WalkForLoop(s, ws);
        scopes_.pop_back();
        return ok;
      }
    }
    return Flag(TvFindingKind::kUnsupported, cur_, "unhandled statement kind");
  }

  bool WalkForLoop(const Stmt& s, const riscv::WitnessStmt& ws) {
    if (Abs(ws.aux0) != cur_) {
      return Flag(TvFindingKind::kWitnessInvalid, cur_,
                  "for-loop head landmark disagrees with the walk");
    }
    std::set<int> assigned;
    if (s.expr) CollectAssignedExpr(*s.expr, &assigned);
    if (s.post) CollectAssignedExpr(*s.post, &assigned);
    CollectAssignedStmt(*s.body, &assigned);
    LoopCtx ctx;
    ctx.break_target = Abs(ws.end);
    ctx.continue_target = Abs(ws.aux1);
    HavocLoopHead(assigned, CountDecls(*s.body), &ctx);
    if (s.expr) {
      TermId cond;
      Type t;
      if (!Eval(*s.expr, &cond, &t)) {
        return false;
      }
      uint32_t taken = 0;
      if (!ExpectCondBranch(cond, Abs(ws.end), &taken)) {
        return false;
      }
      if (taken != Abs(ws.end)) {
        return Flag(TvFindingKind::kBranchMismatch, cur_,
                    "loop-exit branch targets " + Hex(taken) + ", expected " +
                        Hex(Abs(ws.end)));
      }
    }
    State exit_state = state_;
    loops_.push_back(std::move(ctx));
    bool ok = WalkStmt(*s.body);
    if (ok && cur_ != Abs(ws.aux1)) {
      ok = Flag(TvFindingKind::kStructureMismatch, cur_,
                "loop body does not end at the post-expression landmark");
    }
    if (ok && s.post) {
      TermId v;
      Type t;
      ok = Eval(*s.post, &v, &t);
    }
    if (ok) {
      Stop st = ExecTo(Abs(ws.end));
      if (st.kind != StopKind::kJump) {
        ok = FlagStop(st, "(for-loop must end with the back edge)");
      } else if (st.pc + static_cast<uint32_t>(st.instr.imm) != Abs(ws.aux0)) {
        ok = Flag(TvFindingKind::kStructureMismatch, st.pc,
                  "back edge does not return to the loop head");
      } else if (!queue_.empty()) {
        ok = Flag(TvFindingKind::kMissingEffect, st.pc,
                  "source effects still pending at the back edge");
      } else {
        ok = CheckLoopInvariant(loops_.back(), st.pc);
        if (ok) {
          Consume();
        }
      }
    }
    loops_.pop_back();
    if (!ok) {
      return false;
    }
    state_ = std::move(exit_state);
    return true;
  }

  // --- Prologue / body / epilogue -------------------------------------------

  bool WalkFunction() {
    // Prologue/epilogue findings carry the function's declaration line so their
    // provenance chain still names a source location.
    stmt_line_ = fn_.line;
    stmt_kind_ = Stmt::Kind::kBlock;
    // Entry state: unconstrained registers, with the ABI pins the epilogue check
    // will hold the function to.
    for (int r = 1; r < 32; r++) {
      state_.regs[r] = arena_.Fresh(FreshTag::kEntryReg);
    }
    state_.regs[1] = arena_.RaEntry();
    state_.regs[2] = arena_.SpEntry();
    for (uint8_t r : kCalleeSaved) {
      state_.regs[r] = arena_.SavedEntry(r);
    }
    for (size_t i = 0; i < fn_.params.size(); i++) {
      state_.regs[10 + i] = arena_.Arg(static_cast<uint32_t>(i));
    }
    cur_ = Abs(wf_.begin);
    in_prologue_ = true;
    Stop st = ExecTo(Abs(wf_.body_begin));
    in_prologue_ = false;
    if (st.kind != StopKind::kTarget) {
      return FlagStop(st, "(inside the prologue)");
    }
    auto sp_disp = arena_.SpDisplacement(ReadReg(2));
    if (!sp_disp.has_value() || *sp_disp != -frame_size_) {
      return Flag(TvFindingKind::kAbiViolation, cur_,
                  "prologue does not establish the witnessed frame size");
    }
    if (auto it = state_.frame.find(ra_offset_);
        it == state_.frame.end() || it->second != arena_.RaEntry()) {
      return Flag(TvFindingKind::kAbiViolation, cur_, "prologue does not save ra");
    }
    // Every promoted register's entry value must be parked in the save area
    // before the body may clobber it — the clobbered-promotion mutation skips
    // exactly this store.
    for (size_t i = 0; i < wf_.saved_regs.size(); i++) {
      uint8_t r = wf_.saved_regs[i];
      auto it = state_.frame.find(saved_base_ + 4 * static_cast<int32_t>(i));
      if (it == state_.frame.end() || it->second != arena_.SavedEntry(r)) {
        return Flag(TvFindingKind::kAbiViolation, cur_,
                    std::string("prologue does not save promoted register ") +
                        riscv::RegName(r) + " before the body clobbers it");
      }
    }
    // Parameter homing: each tracked parameter's machine location (frame slot, or
    // promoted register) must hold its argument.
    scopes_.push_back({});
    for (size_t i = 0; i < fn_.params.size(); i++) {
      scopes_.back()[fn_.params[i].name] = static_cast<int>(i);
      if (!slots_[i].tracked) {
        continue;
      }
      TermId want = arena_.Arg(static_cast<uint32_t>(i));
      if (slots_[i].reg >= 0) {
        if (state_.regs[slots_[i].reg] != want) {
          return Flag(TvFindingKind::kValueMismatch, cur_,
                      "parameter '" + fn_.params[i].name +
                          "' is not homed to its promoted register");
        }
      } else {
        auto it = state_.frame.find(slots_[i].frame_offset);
        if (it == state_.frame.end() || it->second != want) {
          return Flag(TvFindingKind::kValueMismatch, cur_,
                      "parameter '" + fn_.params[i].name + "' is not homed to its slot");
        }
      }
      state_.env[static_cast<int>(i)] = want;
    }
    decl_counter_ = static_cast<int>(fn_.params.size());

    if (!WalkStmt(*fn_.body)) {
      return false;
    }
    if (wc_ != wf_.stmts.size()) {
      return Flag(TvFindingKind::kWitnessInvalid, cur_,
                  "witness has statement records the source does not");
    }

    // Epilogue: restore ra/sp to their entry values and return.
    if (cur_ != Abs(wf_.epilogue)) {
      return Flag(TvFindingKind::kStructureMismatch, cur_,
                  "body does not fall through to the witnessed epilogue");
    }
    Stop ret = ExecTo(Abs(wf_.end));
    if (ret.kind != StopKind::kRet) {
      return FlagStop(ret, "(inside the epilogue)");
    }
    if (ret.instr.rd != 0 || ret.instr.rs1 != 1 || ret.instr.imm != 0) {
      return Flag(TvFindingKind::kAbiViolation, ret.pc,
                  "epilogue return is not jalr x0, ra, 0");
    }
    if (ReadReg(1) != arena_.RaEntry()) {
      return Flag(TvFindingKind::kAbiViolation, ret.pc,
                  "ra at return is " + arena_.Str(ReadReg(1)) + ", not its entry value");
    }
    if (ReadReg(2) != arena_.SpEntry()) {
      return Flag(TvFindingKind::kAbiViolation, ret.pc,
                  "sp at return is " + arena_.Str(ReadReg(2)) + ", not its entry value");
    }
    for (uint8_t r : kCalleeSaved) {
      if (ReadReg(r) != arena_.SavedEntry(r)) {
        return Flag(TvFindingKind::kAbiViolation, ret.pc,
                    std::string("callee-saved ") + riscv::RegName(r) +
                        " is clobbered at return");
      }
    }
    Consume();
    if (cur_ != Abs(wf_.end)) {
      return Flag(TvFindingKind::kStructureMismatch, cur_,
                  "instructions remain after the return");
    }
    return true;
  }

  // --- Leakage-preservation sweep -------------------------------------------

  // Every instruction in the function must have been justified by the lockstep
  // walk; anything else is a control or memory action with no source counterpart —
  // exactly the shape of an inserted timing channel. With a leakage contract
  // configured, unjustified non-control instructions whose class the contract
  // declares observable (load/store addresses, mul/div latency) are reported as
  // their own kind: they leak through timing even without transferring control.
  void SweepUnvisited() {
    int flagged = 0;
    uint32_t skipped = 0;
    for (uint32_t pc = Abs(wf_.begin); pc < Abs(wf_.end); pc += 4) {
      auto in = InstrAt(pc);
      bool observable =
          config_.contract != nullptr && in.has_value() &&
          config_.contract->ObsFor(contract::ClassOf(in->op)) != contract::kObsNone;
      if (visited_.count(pc)) {
        if (observable) {
          out_->stats.contract_sites++;
        }
        continue;
      }
      if (flagged >= 4) {
        skipped++;
        continue;
      }
      flagged++;
      bool is_control =
          in.has_value() && (riscv::IsBranch(in->op) || riscv::IsJump(in->op));
      // Flag() sets failed_, which is fine here: the walk is already complete.
      stmt_line_ = 0;
      if (is_control) {
        Flag(TvFindingKind::kUnjustifiedBranch, pc,
             "control transfer never justified by the source walk "
             "(potential timing channel)");
      } else if (observable) {
        Flag(TvFindingKind::kUnjustifiedObservation, pc,
             std::string("contract-observable instruction (") +
                 contract::InstrClassName(contract::ClassOf(in->op)) +
                 ") never justified by the source walk (potential timing channel)");
      } else {
        Flag(TvFindingKind::kUnjustifiedInstr, pc,
             "instruction never justified by the source walk");
      }
    }
    if (skipped > 0 && !out_->findings.empty()) {
      out_->findings.back().detail +=
          " (+" + std::to_string(skipped) + " more unjustified instructions)";
    }
  }

  const UnitIndex& index_;
  const minicc::Function& fn_;
  const riscv::Image& image_;
  const riscv::WitnessFunction& wf_;
  const riscv::SymbolNamer& namer_;
  const TvConfig& config_;
  const int opt_level_;
  TvFunctionResult* out_;

  TermArena arena_;
  State state_;
  std::deque<Effect> queue_;
  std::vector<SlotInfo> slots_;
  std::set<int> addr_taken_;
  std::vector<std::map<std::string, int>> scopes_;
  std::vector<LoopCtx> loops_;
  std::set<uint32_t> visited_;

  int frame_size_ = 0;
  int ra_offset_ = 0;
  int saved_base_ = 0;
  int decl_counter_ = 0;
  size_t wc_ = 0;  // Witness statement cursor.
  uint32_t cur_ = 0;
  bool in_prologue_ = false;
  bool failed_ = false;
  int stmt_line_ = 0;
  Stmt::Kind stmt_kind_ = Stmt::Kind::kBlock;
};

void EmitEvidence(const TvFinding& f) {
  telemetry::Evidence ev;
  ev.checker = "tv";
  ev.Add("pc", Hex(f.pc));
  ev.Add("kind", TvFindingKindName(f.kind));
  ev.Add("function", f.function);
  ev.Add("line", std::to_string(f.line));
  ev.Add("detail", f.detail);
  std::string chain;
  for (const std::string& hop : f.provenance) {
    if (!chain.empty()) {
      chain += " <- ";
    }
    chain += hop;
  }
  ev.Add("provenance", chain);
  telemetry::Telemetry::Global().RecordEvidence(ev);
}

}  // namespace

const char* TvFindingKindName(TvFindingKind kind) {
  switch (kind) {
    case TvFindingKind::kValueMismatch: return "value-mismatch";
    case TvFindingKind::kMissingEffect: return "missing-effect";
    case TvFindingKind::kEffectMismatch: return "effect-mismatch";
    case TvFindingKind::kUnexpectedEffect: return "unexpected-effect";
    case TvFindingKind::kBranchMismatch: return "branch-mismatch";
    case TvFindingKind::kUnjustifiedBranch: return "unjustified-branch";
    case TvFindingKind::kUnjustifiedObservation: return "unjustified-observation";
    case TvFindingKind::kUnjustifiedInstr: return "unjustified-instr";
    case TvFindingKind::kAbiViolation: return "abi-violation";
    case TvFindingKind::kStructureMismatch: return "structure-mismatch";
    case TvFindingKind::kWitnessInvalid: return "witness-invalid";
    case TvFindingKind::kUnsupported: return "unsupported";
  }
  return "?";
}

bool TvReport::Clean() const {
  if (!ok) {
    return false;
  }
  for (const TvFunctionResult& fr : functions) {
    if (!fr.findings.empty()) {
      return false;
    }
  }
  return true;
}

size_t TvReport::FindingCount() const {
  size_t n = 0;
  for (const TvFunctionResult& fr : functions) {
    n += fr.findings.size();
  }
  return n;
}

TvReport ValidateTranslation(const minicc::TranslationUnit& unit, const riscv::Image& image,
                             const riscv::Witness& witness, const TvConfig& config) {
  TvReport report;
  auto cfg = BuildCfg(image);
  if (!cfg.ok()) {
    report.error = "cfg: " + cfg.error();
    return report;
  }
  riscv::SymbolNamer namer(image);

  UnitIndex index;
  for (const auto& fn : unit.functions) {
    index.functions[fn.name] = &fn;
    auto addr = image.symbols.find(fn.name);
    if (addr != image.symbols.end()) {
      index.function_addrs[fn.name] = addr->second;
    }
  }
  for (const auto& g : unit.globals) {
    auto addr = image.symbols.find(g.name);
    if (addr == image.symbols.end()) {
      report.error = "global '" + g.name + "' has no linked address";
      return report;
    }
    index.globals[g.name] = GlobalVar{addr->second, g.type, g.array_size, g.is_secret};
  }

  // Select witnessed functions, cross-checking each against the image's recovered
  // CFG: the witnessed extent must be exactly the symbol-table function the CFG
  // builder found there.
  struct Job {
    const riscv::WitnessFunction* wf;
    const minicc::Function* fn;
    TvFinding pre;  // Set when the job fails before the walk (no fn, cfg mismatch).
    bool has_pre = false;
  };
  std::vector<Job> jobs;
  for (const riscv::WitnessFunction& wf : witness.functions) {
    if (!config.only_function.empty() && wf.name != config.only_function) {
      continue;
    }
    Job job;
    job.wf = &wf;
    auto fn_it = index.functions.find(wf.name);
    job.fn = fn_it == index.functions.end() ? nullptr : fn_it->second;
    if (witness.opt_level != 0 && witness.opt_level != 2) {
      job.has_pre = true;
      job.pre.kind = TvFindingKind::kUnsupported;
      job.pre.detail = "witness records opt_level " + std::to_string(witness.opt_level) +
                       "; only O0 and O2 output are in the validated subset";
    } else if (job.fn == nullptr) {
      job.has_pre = true;
      job.pre.kind = TvFindingKind::kWitnessInvalid;
      job.pre.detail = "witnessed function has no source counterpart";
    } else {
      uint32_t entry = image.rom_base + wf.begin;
      auto cfg_it = cfg.value().functions.find(entry);
      if (cfg_it == cfg.value().functions.end() || cfg_it->second.name != wf.name ||
          cfg_it->second.size != wf.end - wf.begin) {
        job.has_pre = true;
        job.pre.kind = TvFindingKind::kWitnessInvalid;
        job.pre.detail = "witnessed extent disagrees with the recovered CFG at " +
                         Hex(entry);
      }
    }
    if (job.has_pre) {
      job.pre.function = wf.name;
      job.pre.pc = image.rom_base + wf.begin;
      job.pre.line = wf.line;
      job.pre.provenance.push_back("function " + wf.name);
    }
    jobs.push_back(job);
  }

  // Validate every function in parallel; each job owns its arena, so the merged
  // output below is bit-identical regardless of thread count.
  std::vector<TvFunctionResult> results(jobs.size());
  ThreadPool pool(config.num_threads);
  ParallelFor(pool, jobs.size(), [&](size_t i) {
    const Job& job = jobs[i];
    if (job.has_pre) {
      results[i].name = job.wf->name;
      results[i].findings.push_back(job.pre);
      return;
    }
    FunctionValidator v(index, *job.fn, image, *job.wf, namer, config,
                        witness.opt_level, &results[i]);
    v.Run();
  });

  // Deterministic merge in witness (= emission) order.
  uint64_t validated = 0, findings = 0;
  for (TvFunctionResult& fr : results) {
    findings += fr.findings.size();
    validated += fr.validated ? 1 : 0;
    report.telemetry.AddCounter("tv/steps", fr.stats.steps);
    report.telemetry.AddCounter("tv/terms", fr.stats.terms);
    report.telemetry.AddCounter("tv/stmts", fr.stats.stmts);
    report.telemetry.AddCounter("tv/secret_branches", fr.stats.secret_branches);
    report.telemetry.AddCounter("tv/secret_addresses", fr.stats.secret_addresses);
    report.telemetry.AddCounter("tv/promoted_slots", fr.stats.promoted_slots);
    report.telemetry.AddCounter("tv/xforms", fr.stats.xforms);
    report.telemetry.AddCounter("tv/contract_sites", fr.stats.contract_sites);
    if (config.emit_evidence) {
      for (const TvFinding& f : fr.findings) {
        EmitEvidence(f);
      }
    }
    report.functions.push_back(std::move(fr));
  }
  report.telemetry.AddCounter("tv/functions", report.functions.size());
  report.telemetry.AddCounter("tv/validated", validated);
  report.telemetry.AddCounter("tv/findings", findings);

  // Functions in the image with no witness (boot.s assembly): counted, not walked.
  uint64_t unwitnessed = 0;
  for (const auto& [entry, fn_cfg] : cfg.value().functions) {
    if (witness.Find(fn_cfg.name) == nullptr) {
      unwitnessed++;
    }
  }
  report.telemetry.AddCounter("tv/unwitnessed_functions", unwitnessed);
  report.ok = true;
  return report;
}

TvReport ValidateSystem(const hsm::HsmSystem& system, const TvConfig& config) {
  TvConfig effective = config;
  if (effective.contract == nullptr) {
    effective.contract = &system.leakage_contract();
  } else {
    std::string mismatch =
        contract::ContractMismatch(*effective.contract, system.soc_id());
    if (!mismatch.empty()) {
      TvReport report;
      report.error = mismatch;
      return report;
    }
  }
  auto unit = minicc::Parse(system.firmware_source());
  if (!unit.ok()) {
    TvReport report;
    report.error = "re-parse of the firmware unit failed: " + unit.error();
    return report;
  }
  return ValidateTranslation(unit.value(), system.image(), system.witness(), effective);
}

}  // namespace parfait::analysis
