// Per-function translation validation of the MiniC -> RV32 compiler (O0 and O2).
//
// The O0 code generator is this repo's CompCert stand-in: the paper's pipeline
// assumes the compiler preserves both functional behavior and the leakage contract.
// The O2 generator plays the unverified fast baseline the paper measures against —
// and instead of trusting either, the validator re-checks every function of every
// build:
//
//   1. The compiler emits a *witness* side table (src/riscv/witness.h): per function,
//      the asm range of every source statement (in pre-order), the frame layout, and
//      per-local slot assignments. The witness is untrusted — every claim in it is
//      re-checked structurally (shape, layout recomputation) and operationally (the
//      lockstep walk below); a wrong witness makes validation fail, never pass.
//   2. For each function, the validator walks the source AST and the witnessed asm
//      ranges in lockstep over a hash-consed symbolic term domain (tv/term.h):
//      the source mirror replays the code generator's canonical O0 lowering, the
//      interpreter executes the actual instructions, and the simulation relation —
//      term-id equality for every tracked local (against its frame slot), every
//      branch condition, call argument, store value, and the return value — is
//      checked at every statement boundary and control transfer. Source-level memory
//      reads/writes/calls are queued as an effect trace in evaluation order and must
//      be consumed, in order, by matching asm accesses (memory extensionality).
//   3. Leakage preservation: every instruction in the function's range must have been
//      visited by the lockstep walk, so every branch and memory address in the asm is
//      justified by — and term-equal to — a source-level construct. Any residual
//      instruction (e.g. a strength-reduced multiply expanded into a data-dependent
//      loop) is flagged as unjustified: a timing channel with no source counterpart.
//      Secret-dependent branches/addresses (terms tainted from `secret` globals) are
//      inventoried in telemetry.
//
// O2 support is a *relaxed* simulation relation driven by the witness's per-pass
// transformer entries (promotion, constant folding, immediate forms, folded
// addresses): a tracked local's machine location may be a callee-saved register
// instead of a frame slot, and term normalization (constant folding, addi/sub and
// slli/mul canonicalization, add-chain flattening) absorbs the remaining
// instruction-selection differences, so the boundary relation stays term-id
// equality. Transformer entries are themselves untrusted and structurally pinned
// to the instructions they claim to describe (VerifyXforms).
//
// Scope: the validated subset is the O0 and O2 generators' output language;
// short-circuit lowering is reported as kUnsupported rather than trusted. Like the
// leakage lint, the validator assumes the source is memory-safe (an opaque pointer is
// assumed not to alias a scalar local whose address is never taken); this mirrors the
// paper's division of labor where memory safety is discharged at the source level.
//
// Mismatches are miscompilation findings with a provenance chain naming the asm
// instruction, the originating source statement (kind + line), and the function;
// findings are also emitted as telemetry Evidence (checker "tv"). Output is
// deterministic: per-function arenas, results merged in witness order, and therefore
// bit-identical run-to-run and independent of num_threads.
#ifndef PARFAIT_ANALYSIS_TV_TV_H_
#define PARFAIT_ANALYSIS_TV_TV_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/contract/contract.h"
#include "src/minicc/ast.h"
#include "src/riscv/assembler.h"
#include "src/riscv/witness.h"
#include "src/support/telemetry.h"

namespace parfait::hsm {
class HsmSystem;
}  // namespace parfait::hsm

namespace parfait::analysis {

enum class TvFindingKind : uint8_t {
  kValueMismatch,      // Simulation relation broken: asm value != source value.
  kMissingEffect,      // Source memory effect never performed by the asm.
  kEffectMismatch,     // Asm access pairs with the source effect but disagrees
                       // (kind, width, address, stored value, callee, argument).
  kUnexpectedEffect,   // Asm access with no pending source effect.
  kBranchMismatch,     // Branch shape/polarity/condition/target disagrees.
  kUnjustifiedBranch,  // Control transfer with no source counterpart (leakage).
  kUnjustifiedObservation,  // Unjustified instruction whose class bears a leakage-
                            // contract observation (address/latency): a potential
                            // side channel even though it transfers no control.
  kUnjustifiedInstr,   // Instruction never justified by the lockstep walk.
  kAbiViolation,       // Prologue/epilogue contract broken (ra/sp/s-regs).
  kStructureMismatch,  // Asm layout disagrees with the witnessed statement ranges.
  kWitnessInvalid,     // The witness itself is malformed or contradicts the AST.
  kUnsupported,        // Outside the validated subset (short-circuit, budget).
};

const char* TvFindingKindName(TvFindingKind kind);

struct TvFinding {
  std::string function;
  uint32_t pc = 0;  // Asm location (0 when the finding is source-side only).
  TvFindingKind kind = TvFindingKind::kWitnessInvalid;
  int line = 0;  // Source line of the statement being validated.
  std::string detail;
  std::vector<std::string> provenance;  // Leaf first: asm <- stmt <- function.
};

struct TvFunctionStats {
  uint64_t steps = 0;  // Instructions interpreted + source expressions mirrored.
  uint64_t terms = 0;
  uint64_t stmts = 0;
  uint64_t secret_branches = 0;   // Branch conditions derived from secrets.
  uint64_t secret_addresses = 0;  // Memory addresses derived from secrets.
  uint64_t promoted_slots = 0;    // Locals promoted to callee-saved registers (O2).
  uint64_t xforms = 0;            // Witness transformer entries verified (O2).
  uint64_t contract_sites = 0;    // Justified instructions whose class bears a
                                  // contract observation (0 without a contract).
};

struct TvFunctionResult {
  std::string name;
  bool validated = false;  // True when the walk completed with no findings.
  std::vector<TvFinding> findings;
  TvFunctionStats stats;
};

struct TvConfig {
  int num_threads = 1;  // 0 = hardware concurrency; results are thread-count independent.
  std::string only_function;  // When non-empty, validate just this function.
  uint64_t max_steps = 1u << 20;  // Per-function step budget.
  bool emit_evidence = true;      // Emit telemetry Evidence per finding.
  // Leakage contract for the target SoC. When set, the leakage-preservation sweep
  // classifies unjustified observation-bearing instructions (per the contract) as
  // kUnjustifiedObservation and counts contract-relevant sites the walk justified
  // (tv/contract_sites). ValidateSystem defaults this to the system's own contract
  // and refuses an explicit contract whose SoC id mismatches the system.
  const contract::LeakageContract* contract = nullptr;
};

struct TvReport {
  bool ok = false;  // The validator ran to completion (regardless of findings).
  std::string error;
  std::vector<TvFunctionResult> functions;  // In witness (= emission) order.
  telemetry::TelemetrySnapshot telemetry;

  bool Clean() const;
  size_t FindingCount() const;
};

// Validates `witness` against the source unit and the linked image. The unit must be
// the exact translation unit the compiler consumed (see HsmSystem::firmware_source).
TvReport ValidateTranslation(const minicc::TranslationUnit& unit, const riscv::Image& image,
                             const riscv::Witness& witness, const TvConfig& config);

// Re-parses the system's firmware unit and validates its witness against its image.
TvReport ValidateSystem(const hsm::HsmSystem& system, const TvConfig& config);

}  // namespace parfait::analysis

#endif  // PARFAIT_ANALYSIS_TV_TV_H_
