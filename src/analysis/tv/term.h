// Hash-consed symbolic term arena for the translation validator.
//
// Both sides of the lockstep walk (the MiniC source mirror and the RV32 interpreter)
// build terms in the same arena; because construction is normalizing and interning,
// the simulation relation at a block boundary reduces to TermId equality. Terms carry
// a secret bit (seeded from `secret`-annotated globals and propagated structurally)
// so the leakage pass can inventory secret-dependent branches and addresses.
//
// The arena is per-function and single-threaded; ids are dense uint32 indexes, which
// keeps states small (a machine state is 32 ids plus two small maps) and makes the
// validator's output independent of thread count.
#ifndef PARFAIT_ANALYSIS_TV_TERM_H_
#define PARFAIT_ANALYSIS_TV_TERM_H_

#include <cstdint>
#include <cstdio>
#include <map>
#include <optional>
#include <string>
#include <tuple>
#include <vector>

namespace parfait::analysis::tv {

using TermId = uint32_t;

enum class TermKind : uint8_t {
  kConst,       // a: the 32-bit value.
  kArg,         // a: parameter index (value of a0+i at function entry).
  kSpEntry,     // sp at function entry.
  kRaEntry,     // ra at function entry.
  kSavedEntry,  // op: callee-saved register number; its value at entry.
  kFresh,       // op: FreshTag; a: sequence number (never interned together).
  kBin,         // op: BinOp; a/b: operand ids.
};

enum class BinOp : uint8_t {
  kAdd,
  kSub,
  kMul,
  kMulhu,
  kDivu,
  kRemu,
  kAnd,
  kOr,
  kXor,
  kSll,
  kSrl,
  kSltu,
};

// What a fresh (uninterpreted) term stands for; used only for rendering and stats.
enum class FreshTag : uint8_t {
  kEntryReg,    // Unconstrained register value at function entry.
  kUninit,      // Uninitialized local.
  kLoad,        // Value read from memory (paired with a source-level read).
  kCallResult,  // Return value of a call.
  kHavoc,       // Clobbered across a call or a loop back edge.
  kPhi,         // Join of differing values at a control-flow merge.
};

struct TermNode {
  TermKind kind;
  uint8_t op = 0;  // BinOp, FreshTag, or saved-register number.
  bool secret = false;
  uint32_t a = 0;
  uint32_t b = 0;
};

class TermArena {
 public:
  TermArena() { nodes_.reserve(1024); }

  TermId Const(uint32_t v) { return Intern({TermKind::kConst, 0, false, v, 0}); }
  TermId Arg(uint32_t index) { return Intern({TermKind::kArg, 0, false, index, 0}); }
  TermId SpEntry() { return Intern({TermKind::kSpEntry, 0, false, 0, 0}); }
  TermId RaEntry() { return Intern({TermKind::kRaEntry, 0, false, 0, 0}); }
  TermId SavedEntry(uint8_t reg) { return Intern({TermKind::kSavedEntry, reg, false, 0, 0}); }

  TermId Fresh(FreshTag tag, bool secret = false) {
    nodes_.push_back({TermKind::kFresh, static_cast<uint8_t>(tag), secret, fresh_seq_++, 0});
    return static_cast<TermId>(nodes_.size() - 1);
  }

  // Normalizing binary constructor. Folds constants with RISC-V RV32 semantics
  // (matching both the hardware and the compiler's own folder), canonicalizes
  // constants to the right of commutative operators, applies identity rules, and
  // flattens add-of-constant chains so sp-relative addresses compare structurally.
  TermId Bin(BinOp op, TermId x, TermId y) {
    uint32_t cx = 0, cy = 0;
    bool xc = IsConst(x, &cx);
    bool yc = IsConst(y, &cy);
    if (xc && yc) {
      return Const(Fold(op, cx, cy));
    }
    if (xc && Commutative(op)) {
      std::swap(x, y);
      std::swap(cx, cy);
      std::swap(xc, yc);
    }
    if (yc) {
      switch (op) {
        case BinOp::kAdd:
          if (cy == 0) return x;
          if (nodes_[x].kind == TermKind::kBin &&
              static_cast<BinOp>(nodes_[x].op) == BinOp::kAdd &&
              nodes_[nodes_[x].b].kind == TermKind::kConst) {
            return Bin(BinOp::kAdd, nodes_[x].a, Const(nodes_[nodes_[x].b].a + cy));
          }
          break;
        case BinOp::kSub:
          // Subtracting a constant is addition of its negation; normalizing here
          // makes an O2 `addi rd, rs, -c` and an O0 `sub rd, rs, rc` build the
          // same term, and lets the add-of-constant chain flattening apply.
          return Bin(BinOp::kAdd, x, Const(0u - cy));
        case BinOp::kMul:
          if (cy == 1) return x;
          if (cy == 0) return Const(0);
          break;
        case BinOp::kAnd:
          if (cy == 0) return Const(0);
          if (cy == 0xffffffffu) return x;
          break;
        case BinOp::kOr:
          if (cy == 0) return x;
          if (cy == 0xffffffffu) return Const(0xffffffffu);
          break;
        case BinOp::kXor:
          if (cy == 0) return x;
          break;
        case BinOp::kSll:
          // Left shift by a constant is multiplication by a power of two; both
          // sides normalize to the multiply so the O2 strength-reduced `slli`
          // and the source-level `*` compare equal across opt levels.
          return Bin(BinOp::kMul, x, Const(1u << (cy & 31u)));
        case BinOp::kSrl:
          if ((cy & 31u) == 0) return x;
          break;
        default:
          break;
      }
    }
    bool secret = nodes_[x].secret || nodes_[y].secret;
    return Intern({TermKind::kBin, static_cast<uint8_t>(op), secret, x, y});
  }

  const TermNode& node(TermId id) const { return nodes_[id]; }
  bool secret(TermId id) const { return nodes_[id].secret; }
  size_t size() const { return nodes_.size(); }

  bool IsConst(TermId id, uint32_t* v) const {
    if (nodes_[id].kind != TermKind::kConst) {
      return false;
    }
    *v = nodes_[id].a;
    return true;
  }

  // If the term is sp-at-entry plus a constant, returns that displacement (the frame
  // occupies displacements [-frame_size, 0)). Add chains are flattened at
  // construction, so this only needs one level of recursion in practice.
  std::optional<int64_t> SpDisplacement(TermId id) const {
    const TermNode& n = nodes_[id];
    if (n.kind == TermKind::kSpEntry) {
      return 0;
    }
    if (n.kind == TermKind::kBin && static_cast<BinOp>(n.op) == BinOp::kAdd &&
        nodes_[n.b].kind == TermKind::kConst) {
      auto base = SpDisplacement(n.a);
      if (base.has_value()) {
        return *base + static_cast<int64_t>(static_cast<int32_t>(nodes_[n.b].a));
      }
    }
    return std::nullopt;
  }

  // Compact rendering for diagnostics, depth-capped.
  std::string Str(TermId id, int depth = 5) const {
    const TermNode& n = nodes_[id];
    switch (n.kind) {
      case TermKind::kConst: {
        char buf[16];
        std::snprintf(buf, sizeof(buf), n.a < 10 ? "%u" : "0x%x", n.a);
        return buf;
      }
      case TermKind::kArg:
        return "arg" + std::to_string(n.a);
      case TermKind::kSpEntry:
        return "sp@entry";
      case TermKind::kRaEntry:
        return "ra@entry";
      case TermKind::kSavedEntry:
        return "x" + std::to_string(n.op) + "@entry";
      case TermKind::kFresh:
        return std::string(FreshTagName(static_cast<FreshTag>(n.op))) + "#" +
               std::to_string(n.a) + (n.secret ? "!" : "");
      case TermKind::kBin:
        if (depth <= 0) {
          return "...";
        }
        return std::string("(") + BinOpName(static_cast<BinOp>(n.op)) + " " +
               Str(n.a, depth - 1) + " " + Str(n.b, depth - 1) + ")";
    }
    return "?";
  }

  static const char* BinOpName(BinOp op) {
    switch (op) {
      case BinOp::kAdd: return "add";
      case BinOp::kSub: return "sub";
      case BinOp::kMul: return "mul";
      case BinOp::kMulhu: return "mulhu";
      case BinOp::kDivu: return "divu";
      case BinOp::kRemu: return "remu";
      case BinOp::kAnd: return "and";
      case BinOp::kOr: return "or";
      case BinOp::kXor: return "xor";
      case BinOp::kSll: return "sll";
      case BinOp::kSrl: return "srl";
      case BinOp::kSltu: return "sltu";
    }
    return "?";
  }

  static const char* FreshTagName(FreshTag tag) {
    switch (tag) {
      case FreshTag::kEntryReg: return "reg";
      case FreshTag::kUninit: return "uninit";
      case FreshTag::kLoad: return "load";
      case FreshTag::kCallResult: return "call";
      case FreshTag::kHavoc: return "havoc";
      case FreshTag::kPhi: return "phi";
    }
    return "?";
  }

 private:
  static bool Commutative(BinOp op) {
    switch (op) {
      case BinOp::kAdd:
      case BinOp::kMul:
      case BinOp::kMulhu:
      case BinOp::kAnd:
      case BinOp::kOr:
      case BinOp::kXor:
        return true;
      default:
        return false;
    }
  }

  static uint32_t Fold(BinOp op, uint32_t a, uint32_t b) {
    switch (op) {
      case BinOp::kAdd: return a + b;
      case BinOp::kSub: return a - b;
      case BinOp::kMul: return a * b;
      case BinOp::kMulhu:
        return static_cast<uint32_t>((static_cast<uint64_t>(a) * b) >> 32);
      case BinOp::kDivu: return b == 0 ? 0xffffffffu : a / b;
      case BinOp::kRemu: return b == 0 ? a : a % b;
      case BinOp::kAnd: return a & b;
      case BinOp::kOr: return a | b;
      case BinOp::kXor: return a ^ b;
      case BinOp::kSll: return a << (b & 31u);
      case BinOp::kSrl: return a >> (b & 31u);
      case BinOp::kSltu: return a < b ? 1u : 0u;
    }
    return 0;
  }

  TermId Intern(TermNode n) {
    auto key = std::make_tuple(static_cast<uint8_t>(n.kind), n.op, n.a, n.b);
    auto [it, inserted] = interned_.try_emplace(key, static_cast<TermId>(nodes_.size()));
    if (inserted) {
      nodes_.push_back(n);
    }
    return it->second;
  }

  std::vector<TermNode> nodes_;
  std::map<std::tuple<uint8_t, uint8_t, uint32_t, uint32_t>, TermId> interned_;
  uint32_t fresh_seq_ = 0;
};

}  // namespace parfait::analysis::tv

#endif  // PARFAIT_ANALYSIS_TV_TERM_H_
