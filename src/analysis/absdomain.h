// Abstract domain for the static leakage lint: an unsigned-interval value domain
// paired with a three-point taint lattice and two kinds of provenance.
//
// The taint lattice orders Public < Unknown < Secret (join = max). `Unknown` is what
// untracked memory reads produce: it never fires a policy check (only Secret does),
// which is the documented precision/soundness trade recorded in DESIGN.md — the
// analyzer is sound for memory-safe firmware whose addresses it can bound.
//
// Intervals exist purely to keep taint precise: firmware loop counters, journal
// pointers, and rodata table indices must stay bounded or every array copy smears
// secret taint across the address space. Bounds are refined along branch edges via
// predicate provenance (PredNode): RV32 materializes comparisons into boolean
// registers (sltu/slt/xor+sltiu), so the boolean's abstract value carries *what was
// compared*, letting the branch edge refine the compared register or stack slot.
//
// Taint provenance (ProvNode) is the second chain: every load that turns a register
// secret records where the secret came from, so findings explain the flow from the
// FRAM seed region to the leaking instruction.
#ifndef PARFAIT_ANALYSIS_ABSDOMAIN_H_
#define PARFAIT_ANALYSIS_ABSDOMAIN_H_

#include <cstdint>
#include <deque>
#include <map>
#include <string>
#include <tuple>
#include <utility>

namespace parfait::analysis {

enum class Taint : uint8_t { kPublic = 0, kUnknown = 1, kSecret = 2 };

inline Taint JoinTaint(Taint a, Taint b) { return a > b ? a : b; }

// A node in a taint provenance chain (pcs of the loads that moved the secret, rooted
// at the seed region). Nodes are arena-owned and deduplicated on (pc, addr, parent),
// so chains stay compact across fixpoint iterations.
struct ProvNode {
  enum class Kind : uint8_t { kSeed, kLoad };
  Kind kind = Kind::kSeed;
  uint32_t pc = 0;    // Load site (kLoad) or 0 (kSeed).
  uint32_t addr = 0;  // Loaded-from address (lo bound) or seed region start.
  uint32_t size = 0;  // Seed region length (kSeed only).
  const ProvNode* parent = nullptr;
};

// Arena + dedup map for provenance nodes. Single-threaded; pointers stable.
class ProvArena {
 public:
  const ProvNode* Seed(uint32_t addr, uint32_t size) {
    return Intern(ProvNode{ProvNode::Kind::kSeed, 0, addr, size, nullptr});
  }
  const ProvNode* Load(uint32_t pc, uint32_t addr, const ProvNode* parent) {
    return Intern(ProvNode{ProvNode::Kind::kLoad, pc, addr, 0, parent});
  }

  size_t size() const { return nodes_.size(); }

 private:
  const ProvNode* Intern(const ProvNode& node) {
    auto key = std::make_tuple(static_cast<int>(node.kind), node.pc, node.addr,
                               node.size, node.parent);
    auto [it, inserted] = index_.try_emplace(key, nullptr);
    if (inserted) {
      nodes_.push_back(node);
      it->second = &nodes_.back();
    }
    return it->second;
  }

  std::deque<ProvNode> nodes_;  // deque: stable addresses.
  std::map<std::tuple<int, uint32_t, uint32_t, uint32_t, const ProvNode*>,
           const ProvNode*>
      index_;
};

// Where a register value was loaded from (for refining the backing stack slot when
// the register is compared and branched on). `version` is the state's store counter
// at load time: any intervening store invalidates the link.
struct SrcLoc {
  bool valid = false;
  uint32_t addr = 0;     // Word-aligned slot address.
  uint64_t version = 0;
};

// One side of a recorded comparison.
struct PredOperand {
  uint32_t lo = 0, hi = 0xffffffffu;  // Interval at compare time.
  uint8_t reg = 0;                    // Register that held it (0 = x0 / none).
  uint64_t reg_version = 0;           // Register def-counter at compare time.
  SrcLoc src;                         // Backing memory slot, if any.
};

// Predicate provenance for a materialized boolean:
//   kUlt:  value == 1  <=>  lhs  <u rhs
//   kEq:   value == 1  <=>  lhs  == rhs   (from xor+sltiu)
//   kDiff: value == 0  <=>  lhs  == rhs   (a raw xor; composes into kEq/kNe)
// `negated` flips the boolean sense (from `xori b, b, 1`).
struct PredNode {
  enum class Kind : uint8_t { kUlt, kEq, kDiff };
  Kind kind = Kind::kUlt;
  bool negated = false;
  PredOperand lhs;
  PredOperand rhs;
};

// Arena + dedup map for predicate nodes. Fixpoint iteration re-executes every
// compare many times with identical operand snapshots, so interning keeps the arena
// proportional to distinct (site, context) pairs, not to abstract steps. Past the
// cap, Intern returns nullptr — callers lose refinement precision, never soundness.
class PredArena {
 public:
  const PredNode* Intern(const PredNode& node) {
    auto key = std::make_tuple(static_cast<int>(node.kind), node.negated,
                               OperandKey(node.lhs), OperandKey(node.rhs));
    auto found = index_.find(key);
    if (found != index_.end()) {
      return found->second;
    }
    if (nodes_.size() >= kMaxNodes) {
      return nullptr;
    }
    nodes_.push_back(node);
    index_.emplace(key, &nodes_.back());
    return &nodes_.back();
  }
  size_t size() const { return nodes_.size(); }

 private:
  static constexpr size_t kMaxNodes = 1u << 20;
  using OpKey = std::tuple<uint32_t, uint32_t, uint8_t, uint64_t, bool, uint32_t, uint64_t>;
  static OpKey OperandKey(const PredOperand& op) {
    return {op.lo, op.hi, op.reg, op.reg_version, op.src.valid, op.src.addr, op.src.version};
  }

  std::deque<PredNode> nodes_;  // deque: stable addresses.
  std::map<std::tuple<int, bool, OpKey, OpKey>, const PredNode*> index_;
};

// An abstract value: unsigned interval + taint + provenance. The partial order /
// join used for fixpointing considers (lo, hi, taint) only; prov/pred/src are
// attributes that ride along (kept when both sides agree, dropped otherwise).
struct AbsVal {
  uint32_t lo = 0;
  uint32_t hi = 0xffffffffu;
  Taint taint = Taint::kPublic;
  const ProvNode* prov = nullptr;
  const PredNode* pred = nullptr;
  SrcLoc src;

  static AbsVal Const(uint32_t v) {
    AbsVal out;
    out.lo = out.hi = v;
    return out;
  }
  static AbsVal TopPublic() { return AbsVal{}; }
  static AbsVal TopUnknown() {
    AbsVal out;
    out.taint = Taint::kUnknown;
    return out;
  }
  static AbsVal TopSecret(const ProvNode* prov) {
    AbsVal out;
    out.taint = Taint::kSecret;
    out.prov = prov;
    return out;
  }

  bool IsConst() const { return lo == hi; }
  bool IsSecret() const { return taint == Taint::kSecret; }

  // Lattice equality (the fixpoint convergence test).
  bool SameAbstract(const AbsVal& o) const {
    return lo == o.lo && hi == o.hi && taint == o.taint;
  }

  // true if this subsumes `o` (o's interval inside ours, o's taint <= ours).
  bool Covers(const AbsVal& o) const {
    return lo <= o.lo && hi >= o.hi && taint >= o.taint;
  }
};

inline AbsVal JoinVal(const AbsVal& a, const AbsVal& b) {
  AbsVal out;
  out.lo = a.lo < b.lo ? a.lo : b.lo;
  out.hi = a.hi > b.hi ? a.hi : b.hi;
  out.taint = JoinTaint(a.taint, b.taint);
  // Keep the provenance of whichever side is secret (first wins on a tie: the
  // traversal order is deterministic, so so is this choice).
  out.prov = (a.taint == Taint::kSecret) ? a.prov
             : (b.taint == Taint::kSecret) ? b.prov
                                           : nullptr;
  out.pred = (a.pred == b.pred) ? a.pred : nullptr;
  if (a.src.valid && b.src.valid && a.src.addr == b.src.addr &&
      a.src.version == b.src.version) {
    out.src = a.src;
  }
  return out;
}

// Widening: escape changed bounds to the extremes so loop fixpoints terminate fast.
// Branch-edge refinement afterwards recovers the tight loop-body bounds.
inline AbsVal WidenVal(const AbsVal& prev, const AbsVal& next) {
  AbsVal out = JoinVal(prev, next);
  if (out.lo < prev.lo) {
    out.lo = 0;
  }
  if (out.hi > prev.hi) {
    out.hi = 0xffffffffu;
  }
  return out;
}

}  // namespace parfait::analysis

#endif  // PARFAIT_ANALYSIS_ABSDOMAIN_H_
