#include "src/analysis/crosscheck.h"

#include <cstdio>
#include <map>
#include <utility>

#include "src/knox2/leakage.h"
#include "src/support/rng.h"
#include "src/support/status.h"

namespace parfait::analysis {

CrossCheckResult CrossCheck(const hsm::HsmSystem& system, const LintReport& report,
                            const CrossCheckOptions& options) {
  TELEMETRY_SPAN("lint/crosscheck");
  PARFAIT_CHECK_MSG(system.options().taint_tracking,
                    "CrossCheck needs an HsmSystem built with taint_tracking");
  CrossCheckResult result;

  // Deterministic replay workload from the app's initial state.
  Rng rng(options.seed);
  std::vector<Bytes> commands;
  commands.reserve(static_cast<size_t>(options.commands));
  for (int i = 0; i < options.commands; i++) {
    commands.push_back(system.app().RandomValidCommand(rng));
  }
  knox2::TaintCheckOptions taint_options;
  taint_options.max_cycles_per_command = options.max_cycles_per_command;
  // Replay under the same contract the static lint checked against, so the two
  // sides agree on which observation classes count as sinks.
  taint_options.contract = &system.leakage_contract();
  knox2::TaintCheckResult dynamic =
      knox2::RunTaintCheck(system, system.app().InitStateEncoded(), commands, taint_options);

  // Dynamic violations keyed by (pc, what); values count occurrences.
  std::map<std::pair<uint32_t, std::string>, uint64_t> observed;
  for (const soc::TaintLeak& leak : dynamic.leaks) {
    observed[{leak.pc, leak.what}]++;
  }

  std::map<std::pair<uint32_t, std::string>, bool> predicted;
  for (const Finding& f : report.findings) {
    CrossCheckedFinding item;
    item.finding = f;
    auto key = std::make_pair(f.pc, std::string(FindingKindDynamicWhat(f.kind)));
    predicted[key] = true;
    auto it = observed.find(key);
    if (it != observed.end()) {
      item.confirmed = true;
      item.dynamic_hits = it->second;
      result.confirmed++;
    } else {
      result.unreached++;
    }
    result.items.push_back(std::move(item));
  }
  for (const auto& [key, hits] : observed) {
    if (predicted.count(key) == 0) {
      char buf[96];
      std::snprintf(buf, sizeof(buf), "pc 0x%08x: ", key.first);
      result.unpredicted.push_back(buf + key.second +
                                   " (x" + std::to_string(hits) + ")");
    }
  }

  result.telemetry.AddCounter("lint/crosscheck/findings", report.findings.size());
  result.telemetry.AddCounter("lint/crosscheck/confirmed", result.confirmed);
  result.telemetry.AddCounter("lint/crosscheck/unreached", result.unreached);
  result.telemetry.AddCounter("lint/crosscheck/unpredicted", result.unpredicted.size());
  result.telemetry.AddCounter("lint/crosscheck/commands", commands.size());
  telemetry::Telemetry::Global().Merge(result.telemetry);
  return result;
}

}  // namespace parfait::analysis
