// Control-flow-graph recovery over a linked RV32IM firmware image.
//
// Function extents come from the assembler's symbol side table (SymbolKind::kFunction
// entries carry sizes), so block discovery never has to guess where code ends — the
// paper's toolchain controls both producers (boot assembly and the MiniC compiler),
// and both mark their functions. Within a function, leaders are the entry, direct
// branch/jump targets, and the instruction after any control transfer.
//
// Indirect jumps (jalr) are classified here, not resolved: `jalr x0, ra, 0` with the
// callee's saved return address is the O0 return idiom and is handled symbolically by
// the abstract interpreter (it tracks ra's exact value), while any other jalr is
// recorded in `indirect_jumps` — a soundness caveat surfaced by the lint report when
// the interpreter cannot bound the target to a single symbol-table function entry.
#ifndef PARFAIT_ANALYSIS_CFG_H_
#define PARFAIT_ANALYSIS_CFG_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "src/riscv/assembler.h"
#include "src/riscv/isa.h"
#include "src/support/status.h"

namespace parfait::analysis {

// How a basic block ends.
enum class BlockExit : uint8_t {
  kFallThrough,  // Runs into the next block.
  kBranch,       // Conditional: taken target + fall-through.
  kJump,         // jal x0 (direct goto): single target.
  kCall,         // jal with a link register: target is a function entry; resumes after.
  kIndirect,     // jalr: return or computed jump, resolved by the interpreter.
  kHalt,         // ebreak / ecall.
};

struct Block {
  uint32_t start = 0;
  uint32_t end = 0;           // One past the last instruction byte.
  BlockExit exit = BlockExit::kFallThrough;
  uint32_t target = 0;        // kBranch / kJump taken target; kCall callee entry.
  // Successor block starts inside the same function (deterministically ordered).
  std::vector<uint32_t> succs;
};

struct FunctionCfg {
  std::string name;
  uint32_t entry = 0;
  uint32_t size = 0;
  // Blocks keyed by start pc (deterministic iteration).
  std::map<uint32_t, Block> blocks;
};

struct Cfg {
  // Functions keyed by entry pc.
  std::map<uint32_t, FunctionCfg> functions;
  // pcs of jalr instructions that are not the `ret` idiom's shape — candidates the
  // abstract interpreter must resolve or report.
  std::vector<uint32_t> indirect_jumps;
  uint32_t instr_count = 0;

  const FunctionCfg* FunctionAt(uint32_t entry) const {
    auto it = functions.find(entry);
    return it == functions.end() ? nullptr : &it->second;
  }
  // The function whose [entry, entry+size) extent contains pc, or nullptr.
  const FunctionCfg* FunctionContaining(uint32_t pc) const;
};

// Recovers per-function CFGs for every kFunction symbol in the image's side table.
// Fails on undecodable words inside a function extent or branch targets that escape
// their function.
Result<Cfg> BuildCfg(const riscv::Image& image);

}  // namespace parfait::analysis

#endif  // PARFAIT_ANALYSIS_CFG_H_
