// Cross-checks static lint findings against the knox2 dynamic taint emulator.
//
// The static analyzer over-approximates: a finding is a *potential* policy
// violation on some reachable path. Replaying the firmware under the cycle-level
// dynamic taint monitor (the same one knox2's cosimulation uses) classifies each
// finding: `confirmed` when the dynamic monitor records the same violation class at
// the same pc, `unreached` when the replayed command workload never tripped it —
// either a static false positive or a path the finite workload did not drive.
//
// The two policies agree by construction: FindingKindDynamicWhat maps each static
// finding kind to the exact violation string src/soc/cpu_common.cc records.
#ifndef PARFAIT_ANALYSIS_CROSSCHECK_H_
#define PARFAIT_ANALYSIS_CROSSCHECK_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/analysis/lint.h"
#include "src/hsm/hsm_system.h"
#include "src/support/telemetry.h"

namespace parfait::analysis {

struct CrossCheckOptions {
  // Replay workload: `commands` random well-formed commands from a fixed seed, so
  // the classification is deterministic.
  int commands = 8;
  uint64_t seed = 0x5eed;
  uint64_t max_cycles_per_command = 600'000'000;
};

struct CrossCheckedFinding {
  Finding finding;
  bool confirmed = false;
  // Dynamic evidence when confirmed: how many times the monitor recorded it.
  uint64_t dynamic_hits = 0;
};

struct CrossCheckResult {
  std::vector<CrossCheckedFinding> items;
  int confirmed = 0;
  int unreached = 0;
  // Dynamic violations that the static pass did NOT predict. Always empty when the
  // static pass is sound over the replayed paths; surfaced for regression tests.
  std::vector<std::string> unpredicted;
  telemetry::TelemetrySnapshot telemetry;
};

// Replays `system` (must be built with taint_tracking, and with the same
// variable-latency-mul setting the lint policy used) from the app's initial state
// and classifies every finding in `report`.
CrossCheckResult CrossCheck(const hsm::HsmSystem& system, const LintReport& report,
                            const CrossCheckOptions& options = {});

}  // namespace parfait::analysis

#endif  // PARFAIT_ANALYSIS_CROSSCHECK_H_
