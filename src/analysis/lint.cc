#include "src/analysis/lint.h"

#include <algorithm>
#include <array>
#include <cstdio>
#include <map>
#include <optional>
#include <set>
#include <utility>
#include <vector>

#include "src/riscv/disasm.h"
#include "src/riscv/isa.h"
#include "src/support/bytes.h"

namespace parfait::analysis {

namespace {

using riscv::Instr;
using riscv::Op;

// Memory map (mirrors src/soc/bus.h; sizes come from LintConfig).
constexpr uint32_t kRomBase = 0x00000000;
constexpr uint32_t kRamBase = 0x20000000;
constexpr uint32_t kFramBase = 0x40000000;
constexpr uint32_t kUartBase = 0x80000000;
constexpr uint32_t kUartSize = 16;

enum class Region : uint8_t { kNone, kRom, kRam, kFram, kUart };

std::string Hex(uint32_t v) {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "0x%08x", v);
  return buf;
}

// The abstract machine state at one program point: registers, word-granular memory
// slots, and the version counters that guard predicate/source-location validity.
// Versions only ever increase along paths and merge with max, so "version still
// matches" proves no intervening redefinition on any joined path.
struct AbsState {
  std::array<AbsVal, 32> regs;
  std::array<uint64_t, 32> reg_version{};
  // Sparse word-aligned slots over RAM/FRAM. Absent slot = TopPublic.
  std::map<uint32_t, AbsVal> mem;
  uint64_t store_version = 1;
};

bool IsDefaultSlot(const AbsVal& v) {
  return v.lo == 0 && v.hi == 0xffffffffu && v.taint == Taint::kPublic;
}

// Lattice equality over (lo, hi, taint); slots holding the region default compare
// equal to absent slots so states converge regardless of which slots materialized.
bool StatesSameAbstract(const AbsState& a, const AbsState& b) {
  for (int i = 0; i < 32; i++) {
    if (!a.regs[i].SameAbstract(b.regs[i])) {
      return false;
    }
  }
  auto ia = a.mem.begin();
  auto ib = b.mem.begin();
  while (ia != a.mem.end() || ib != b.mem.end()) {
    while (ia != a.mem.end() && IsDefaultSlot(ia->second)) ++ia;
    while (ib != b.mem.end() && IsDefaultSlot(ib->second)) ++ib;
    if (ia == a.mem.end() || ib == b.mem.end()) {
      return ia == a.mem.end() && ib == b.mem.end();
    }
    if (ia->first != ib->first || !ia->second.SameAbstract(ib->second)) {
      return false;
    }
    ++ia;
    ++ib;
  }
  return true;
}

uint64_t HashState(const AbsState& st) {
  uint64_t h = 1469598103934665603ull;
  auto mix = [&h](uint64_t v) {
    h ^= v;
    h *= 1099511628211ull;
  };
  for (int i = 0; i < 32; i++) {
    mix(st.regs[i].lo);
    mix(st.regs[i].hi);
    mix(static_cast<uint64_t>(st.regs[i].taint));
  }
  for (const auto& [addr, v] : st.mem) {
    if (IsDefaultSlot(v)) {
      continue;
    }
    mix(addr);
    mix(v.lo);
    mix(v.hi);
    mix(static_cast<uint64_t>(v.taint));
  }
  return h;
}

AbsState MergeStates(const AbsState& a, const AbsState& b, bool widen) {
  AbsState out;
  for (int i = 0; i < 32; i++) {
    out.regs[i] = widen ? WidenVal(a.regs[i], b.regs[i]) : JoinVal(a.regs[i], b.regs[i]);
    out.reg_version[i] = std::max(a.reg_version[i], b.reg_version[i]);
  }
  out.store_version = std::max(a.store_version, b.store_version);
  auto ia = a.mem.begin();
  auto ib = b.mem.begin();
  AbsVal dflt = AbsVal::TopPublic();
  while (ia != a.mem.end() || ib != b.mem.end()) {
    uint32_t key;
    const AbsVal* va = &dflt;
    const AbsVal* vb = &dflt;
    if (ib == b.mem.end() || (ia != a.mem.end() && ia->first < ib->first)) {
      key = ia->first;
      va = &ia->second;
      ++ia;
    } else if (ia == a.mem.end() || ib->first < ia->first) {
      key = ib->first;
      vb = &ib->second;
      ++ib;
    } else {
      key = ia->first;
      va = &ia->second;
      vb = &ib->second;
      ++ia;
      ++ib;
    }
    AbsVal merged = widen ? WidenVal(*va, *vb) : JoinVal(*va, *vb);
    if (!IsDefaultSlot(merged)) {
      out.mem.emplace_hint(out.mem.end(), key, merged);
    }
  }
  return out;
}

// Carries joined taint/provenance to a computed result (top interval by default).
AbsVal MergeTaint(const AbsVal& a, const AbsVal& b) {
  AbsVal out;
  out.taint = JoinTaint(a.taint, b.taint);
  out.prov = a.IsSecret() ? a.prov : (b.IsSecret() ? b.prov : nullptr);
  return out;
}

// Wraps a 64-bit interval back into u32 space: keeps it when the span fits and does
// not straddle the wrap point, otherwise leaves `out` at top.
AbsVal RangedWrap(int64_t lo64, int64_t hi64, AbsVal out) {
  if (hi64 - lo64 <= 0xffffffffll) {
    uint32_t wlo = static_cast<uint32_t>(lo64);
    uint32_t whi = static_cast<uint32_t>(hi64);
    if (wlo <= whi) {
      out.lo = wlo;
      out.hi = whi;
    }
  }
  return out;
}

AbsVal AddVals(const AbsVal& a, const AbsVal& b) {
  return RangedWrap(static_cast<int64_t>(a.lo) + b.lo, static_cast<int64_t>(a.hi) + b.hi,
                    MergeTaint(a, b));
}

AbsVal SubVals(const AbsVal& a, const AbsVal& b) {
  return RangedWrap(static_cast<int64_t>(a.lo) - b.hi, static_cast<int64_t>(a.hi) - b.lo,
                    MergeTaint(a, b));
}

uint32_t SignExt8(uint8_t v) { return static_cast<uint32_t>(static_cast<int32_t>(static_cast<int8_t>(v))); }
uint32_t SignExt16(uint16_t v) { return static_cast<uint32_t>(static_cast<int32_t>(static_cast<int16_t>(v))); }

// The relations a branch edge or a materialized boolean can assert.
enum class Rel : uint8_t { kNone, kUlt, kUge, kEq, kNe };

struct FindingKey {
  uint32_t pc;
  FindingKind kind;
  bool operator<(const FindingKey& o) const {
    return pc != o.pc ? pc < o.pc : kind < o.kind;
  }
};

class Interp {
 public:
  Interp(const riscv::Image& image, const LintConfig& config, const Cfg& graph)
      : image_(image), cfg_(config), graph_(graph), namer_(image) {
    decoded_.resize(cfg_.rom_size / 4);
    decoded_valid_.resize(cfg_.rom_size / 4, false);
    // End of statically-sized data in RAM: stack slots below sp and above this line
    // are dead frames, garbage-collected after every call return (the documented
    // memory-safety assumption: firmware never reads a popped frame).
    data_end_ = kRamBase;
    for (const riscv::SymbolInfo& sym : image.symbol_table) {
      if (sym.kind == riscv::SymbolKind::kObject && sym.addr >= kRamBase &&
          sym.addr < kRamBase + cfg_.ram_size) {
        data_end_ = std::max(data_end_, sym.addr + std::max<uint32_t>(sym.size, 4));
      }
    }
    data_end_ = (data_end_ + 3) & ~3u;
  }

  void Run(LintReport* report);

 private:
  struct CallOutcome {
    AbsState out;
    bool returned = false;
  };
  struct MemoEntry {
    AbsState in;
    AbsState out;
    bool returned = false;
  };

  const Instr& InstrAt(uint32_t pc) {
    size_t idx = pc / 4;
    if (!decoded_valid_[idx]) {
      uint32_t word = LoadLe32(image_.rom.data() + (pc - image_.rom_base));
      decoded_[idx] = *riscv::Decode(word);
      decoded_valid_[idx] = true;
    }
    return decoded_[idx];
  }

  static Region RegionOfByte(uint32_t addr, const LintConfig& cfg) {
    if (addr < kRomBase + cfg.rom_size) return Region::kRom;
    if (addr >= kRamBase && addr < kRamBase + cfg.ram_size) return Region::kRam;
    if (addr >= kFramBase && addr < kFramBase + cfg.fram_size) return Region::kFram;
    if (addr >= kUartBase && addr < kUartBase + kUartSize) return Region::kUart;
    return Region::kNone;
  }

  uint8_t RomByte(uint32_t addr) const {
    uint32_t off = addr - image_.rom_base;
    return off < image_.rom.size() ? image_.rom[off] : 0;
  }

  uint32_t RomRead(uint32_t addr, uint32_t size) const {
    uint32_t v = 0;
    for (uint32_t i = 0; i < size; i++) {
      v |= static_cast<uint32_t>(RomByte(addr + i)) << (8 * i);
    }
    return v;
  }

  void SetReg(AbsState& st, uint8_t rd, AbsVal v) {
    if (rd == 0) {
      return;
    }
    st.regs[rd] = v;
    st.reg_version[rd]++;
  }

  AbsVal ReadSlot(const AbsState& st, uint32_t word_addr) const {
    auto it = st.mem.find(word_addr);
    return it != st.mem.end() ? it->second : AbsVal::TopPublic();
  }

  PredOperand MakeOperand(const AbsState& st, uint8_t reg) const {
    PredOperand op;
    const AbsVal& v = st.regs[reg];
    op.lo = v.lo;
    op.hi = v.hi;
    op.reg = reg;
    op.reg_version = reg == 0 ? 0 : st.reg_version[reg];
    op.src = v.src;
    return op;
  }

  static PredOperand ConstOperand(uint32_t c) {
    PredOperand op;
    op.lo = op.hi = c;
    return op;
  }

  // --- Findings -------------------------------------------------------------

  std::vector<std::string> FormatProv(const ProvNode* p) const {
    std::vector<std::string> out;
    for (; p != nullptr; p = p->parent) {
      char buf[160];
      if (p->kind == ProvNode::Kind::kLoad) {
        const FunctionCfg* fn = graph_.FunctionContaining(p->pc);
        std::snprintf(buf, sizeof(buf), "loaded at pc %s <%s> from address %s",
                      Hex(p->pc).c_str(), fn ? fn->name.c_str() : "?", Hex(p->addr).c_str());
      } else {
        std::snprintf(buf, sizeof(buf), "seeded: FRAM secret region [%s, %s) (%u bytes)",
                      Hex(p->addr).c_str(), Hex(p->addr + p->size).c_str(), p->size);
      }
      out.emplace_back(buf);
    }
    if (out.empty()) {
      out.emplace_back("(no provenance recorded)");
    }
    return out;
  }

  void Flag(uint32_t pc, FindingKind kind, const AbsVal& guilty) {
    FindingKey key{pc, kind};
    if (findings_.count(key)) {
      return;
    }
    Finding f;
    f.pc = pc;
    f.kind = kind;
    f.instr = riscv::Disassemble(InstrAt(pc), pc, namer_);
    const FunctionCfg* fn = graph_.FunctionContaining(pc);
    f.function = fn ? fn->name : "?";
    f.provenance = FormatProv(guilty.prov);
    telemetry::Evidence ev;
    ev.checker = "lint";
    ev.Add("pc", Hex(pc));
    ev.Add("kind", FindingKindName(kind));
    ev.Add("instr", f.instr);
    ev.Add("function", f.function);
    std::string chain;
    for (const std::string& hop : f.provenance) {
      if (!chain.empty()) chain += " <- ";
      chain += hop;
    }
    ev.Add("provenance", chain);
    telemetry::Telemetry::Global().RecordEvidence(ev);
    findings_.emplace(key, std::move(f));
  }

  // --- Memory ---------------------------------------------------------------

  AbsVal LoadSub(const AbsVal& slot, Op op, uint32_t addr_if_const, bool addr_const) {
    AbsVal out = MergeTaint(slot, AbsVal{});
    if (addr_const && slot.IsConst()) {
      uint32_t sh = (op == Op::kLh || op == Op::kLhu) ? (addr_if_const & 2) * 8
                                                      : (addr_if_const & 3) * 8;
      uint32_t v = slot.lo >> sh;
      switch (op) {
        case Op::kLb: v = SignExt8(static_cast<uint8_t>(v)); break;
        case Op::kLbu: v = static_cast<uint8_t>(v); break;
        case Op::kLh: v = SignExt16(static_cast<uint16_t>(v)); break;
        default: v = static_cast<uint16_t>(v); break;
      }
      out.lo = out.hi = v;
      return out;
    }
    switch (op) {
      case Op::kLbu: out.lo = 0; out.hi = 0xff; break;
      case Op::kLhu: out.lo = 0; out.hi = 0xffff; break;
      default: break;  // lb/lh: sign extension wraps; stay top.
    }
    return out;
  }

  AbsVal ReadMem(uint32_t pc, const AbsVal& addr, Op op, const AbsState& st) {
    uint32_t size = (op == Op::kLw) ? 4 : (op == Op::kLh || op == Op::kLhu) ? 2 : 1;
    uint64_t last = static_cast<uint64_t>(addr.hi) + size - 1;
    uint64_t span = static_cast<uint64_t>(addr.hi) - addr.lo + size;
    Region r = RegionOfByte(addr.lo, cfg_);
    if (r == Region::kNone || last > 0xffffffffull ||
        RegionOfByte(static_cast<uint32_t>(last), cfg_) != r ||
        span > cfg_.range_access_cap) {
      caveats_.unresolved_loads++;
      return AbsVal::TopUnknown();
    }
    if (r == Region::kUart) {
      return AbsVal::TopPublic();
    }
    if (r == Region::kRom) {
      // Join the exact words/halfwords/bytes over the (bounded) range. Accesses are
      // assumed aligned to their size — the simulated cores fault on misalignment.
      uint32_t lo = 0xffffffffu, hi = 0;
      for (uint32_t a = addr.lo; a <= addr.hi; a += size) {
        uint32_t v = RomRead(a, size);
        if (op == Op::kLb) v = SignExt8(static_cast<uint8_t>(v));
        if (op == Op::kLh) v = SignExt16(static_cast<uint16_t>(v));
        lo = std::min(lo, v);
        hi = std::max(hi, v);
      }
      AbsVal out;
      out.lo = lo;
      out.hi = hi;
      return out;
    }
    // RAM / FRAM.
    if (addr.IsConst()) {
      uint32_t word_addr = addr.lo & ~3u;
      AbsVal slot = ReadSlot(st, word_addr);
      AbsVal out;
      if (op == Op::kLw) {
        out = slot;
        out.pred = nullptr;
        out.src = SrcLoc{true, word_addr, st.store_version};
      } else {
        out = LoadSub(slot, op, addr.lo, true);
      }
      if (out.IsSecret()) {
        out.prov = prov_.Load(pc, word_addr, slot.prov);
      }
      return out;
    }
    AbsVal joined;
    bool first = true;
    uint32_t secret_at = 0;
    const ProvNode* secret_prov = nullptr;
    for (uint32_t wa = addr.lo & ~3u; wa <= (static_cast<uint32_t>(last) & ~3u); wa += 4) {
      AbsVal slot = ReadSlot(st, wa);
      if (slot.IsSecret() && secret_prov == nullptr) {
        secret_at = wa;
        secret_prov = slot.prov;
      }
      joined = first ? slot : JoinVal(joined, slot);
      first = false;
    }
    AbsVal out = (op == Op::kLw) ? joined : LoadSub(joined, op, 0, false);
    out.pred = nullptr;
    out.src = SrcLoc{};
    if (out.IsSecret()) {
      out.prov = prov_.Load(pc, secret_prov != nullptr ? secret_at : addr.lo, secret_prov);
    }
    return out;
  }

  void WriteMem(const AbsVal& addr, const AbsVal& val, Op op, AbsState& st) {
    uint32_t size = (op == Op::kSw) ? 4 : (op == Op::kSh) ? 2 : 1;
    uint64_t last = static_cast<uint64_t>(addr.hi) + size - 1;
    uint64_t span = static_cast<uint64_t>(addr.hi) - addr.lo + size;
    Region r = RegionOfByte(addr.lo, cfg_);
    bool in_bounds = r != Region::kNone && last <= 0xffffffffull &&
                     RegionOfByte(static_cast<uint32_t>(last), cfg_) == r;
    if (r == Region::kUart && in_bounds) {
      return;  // TX is the declassification point: data may be secret, timing is not.
    }
    if (!in_bounds || r == Region::kRom || span > cfg_.range_access_cap) {
      // Dropped store: sound only under the memory-safety assumption (DESIGN.md).
      caveats_.unresolved_stores++;
      if (val.IsSecret()) {
        caveats_.unresolved_secret_stores++;
      }
      return;
    }
    if (addr.IsConst()) {
      uint32_t word_addr = addr.lo & ~3u;
      AbsVal stored;
      if (op == Op::kSw) {
        stored = val;
        stored.pred = nullptr;
        stored.src = SrcLoc{};
      } else {
        AbsVal old = ReadSlot(st, word_addr);
        stored = MergeTaint(old, val);
        if (old.IsConst() && val.IsConst()) {
          uint32_t sh = (op == Op::kSh) ? (addr.lo & 2) * 8 : (addr.lo & 3) * 8;
          uint32_t mask = (op == Op::kSh ? 0xffffu : 0xffu) << sh;
          stored.lo = stored.hi = (old.lo & ~mask) | ((val.lo << sh) & mask);
        }
      }
      if (IsDefaultSlot(stored)) {
        st.mem.erase(word_addr);
      } else {
        st.mem[word_addr] = stored;
      }
    } else {
      // Weak update: any word in the span may or may not have been written.
      AbsVal approx;
      approx.taint = val.taint;
      approx.prov = val.IsSecret() ? val.prov : nullptr;
      for (uint32_t wa = addr.lo & ~3u; wa <= (static_cast<uint32_t>(last) & ~3u); wa += 4) {
        auto it = st.mem.find(wa);
        if (it != st.mem.end()) {
          it->second = JoinVal(it->second, approx);
        } else if (!IsDefaultSlot(approx)) {
          st.mem.emplace(wa, JoinVal(AbsVal::TopPublic(), approx));
        }
      }
    }
    st.store_version++;
  }

  // --- Refinement -----------------------------------------------------------

  static bool ClampVal(AbsVal& v, uint32_t lo, uint32_t hi) {
    v.lo = std::max(v.lo, lo);
    v.hi = std::min(v.hi, hi);
    return v.lo <= v.hi;
  }

  // Constrains whatever still provably holds the compared value: the recorded
  // interval itself (feasibility), the register (if its def version is unchanged)
  // and the backing memory slot (if no store intervened).
  static bool RefineOperand(AbsState& st, const PredOperand& op, uint32_t lo, uint32_t hi) {
    if (std::max(op.lo, lo) > std::min(op.hi, hi)) {
      return false;
    }
    bool feasible = true;
    if (op.reg != 0 && st.reg_version[op.reg] == op.reg_version) {
      feasible = ClampVal(st.regs[op.reg], lo, hi) && feasible;
    }
    if (op.src.valid && op.src.version == st.store_version) {
      auto it = st.mem.find(op.src.addr);
      if (it != st.mem.end()) {
        feasible = ClampVal(it->second, lo, hi) && feasible;
      }
    }
    return feasible;
  }

  static bool ApplyRel(AbsState& st, Rel rel, const PredOperand& a, const PredOperand& b) {
    switch (rel) {
      case Rel::kUlt:  // a <u b
        if (b.hi == 0 || a.lo == 0xffffffffu) {
          return false;
        }
        return RefineOperand(st, a, 0, b.hi - 1) && RefineOperand(st, b, a.lo + 1, 0xffffffffu);
      case Rel::kUge:  // a >=u b
        return RefineOperand(st, a, b.lo, 0xffffffffu) && RefineOperand(st, b, 0, a.hi);
      case Rel::kEq: {
        uint32_t lo = std::max(a.lo, b.lo);
        uint32_t hi = std::min(a.hi, b.hi);
        if (lo > hi) {
          return false;
        }
        return RefineOperand(st, a, lo, hi) && RefineOperand(st, b, lo, hi);
      }
      case Rel::kNe: {
        if (a.lo == a.hi && b.lo == b.hi) {
          return a.lo != b.lo;
        }
        bool feasible = true;
        // Endpoint trimming against a constant side.
        if (b.lo == b.hi) {
          if (a.lo == b.lo) {
            feasible = RefineOperand(st, a, a.lo + 1, 0xffffffffu) && feasible;
          } else if (a.hi == b.lo) {
            feasible = RefineOperand(st, a, 0, a.hi - 1) && feasible;
          }
        }
        if (a.lo == a.hi) {
          if (b.lo == a.lo) {
            feasible = RefineOperand(st, b, b.lo + 1, 0xffffffffu) && feasible;
          } else if (b.hi == a.lo) {
            feasible = RefineOperand(st, b, 0, b.hi - 1) && feasible;
          }
        }
        return feasible;
      }
      case Rel::kNone:
        return true;
    }
    return true;
  }

  static bool ApplyPred(AbsState& st, const PredNode& p, bool value_true) {
    bool v = p.negated ? !value_true : value_true;
    switch (p.kind) {
      case PredNode::Kind::kUlt:
        return ApplyRel(st, v ? Rel::kUlt : Rel::kUge, p.lhs, p.rhs);
      case PredNode::Kind::kEq:
        return ApplyRel(st, v ? Rel::kEq : Rel::kNe, p.lhs, p.rhs);
      case PredNode::Kind::kDiff:
        return ApplyRel(st, v ? Rel::kNe : Rel::kEq, p.lhs, p.rhs);
    }
    return true;
  }

  // The edge relation a conditional branch asserts, or kNone when no sound unsigned
  // reading exists (signed compare over mixed-sign intervals).
  static Rel RelFor(Op op, bool taken, const AbsVal& a, const AbsVal& b) {
    bool unsigned_ok = true;
    if (op == Op::kBlt || op == Op::kBge) {
      bool both_nonneg = a.hi < 0x80000000u && b.hi < 0x80000000u;
      bool both_neg = a.lo >= 0x80000000u && b.lo >= 0x80000000u;
      unsigned_ok = both_nonneg || both_neg;  // Two's-complement order matches.
    }
    switch (op) {
      case Op::kBeq: return taken ? Rel::kEq : Rel::kNe;
      case Op::kBne: return taken ? Rel::kNe : Rel::kEq;
      case Op::kBltu: return taken ? Rel::kUlt : Rel::kUge;
      case Op::kBgeu: return taken ? Rel::kUge : Rel::kUlt;
      case Op::kBlt: return unsigned_ok ? (taken ? Rel::kUlt : Rel::kUge) : Rel::kNone;
      case Op::kBge: return unsigned_ok ? (taken ? Rel::kUge : Rel::kUlt) : Rel::kNone;
      default: return Rel::kNone;
    }
  }

  static bool EvalBranch(Op op, uint32_t a, uint32_t b) {
    switch (op) {
      case Op::kBeq: return a == b;
      case Op::kBne: return a != b;
      case Op::kBltu: return a < b;
      case Op::kBgeu: return a >= b;
      case Op::kBlt: return static_cast<int32_t>(a) < static_cast<int32_t>(b);
      case Op::kBge: return static_cast<int32_t>(a) >= static_cast<int32_t>(b);
      default: return false;
    }
  }

  // --- Instruction transfer functions --------------------------------------

  AbsVal EvalCompare(const AbsState& st, uint8_t rs1, const AbsVal& a, const AbsVal& b,
                     uint8_t rs2_reg, bool is_unsigned) {
    AbsVal out = MergeTaint(a, b);
    if (is_unsigned) {
      if (a.hi < b.lo) {
        out.lo = out.hi = 1;  // a <u b everywhere.
      } else if (a.lo >= b.hi) {
        out.lo = out.hi = 0;  // a >=u b everywhere.
      } else {
        out.lo = 0;
        out.hi = 1;
      }
      if (!out.IsConst()) {
        // The boolean carries what was compared: branch edges refine through it.
        PredNode n;
        n.kind = PredNode::Kind::kUlt;
        n.lhs = MakeOperand(st, rs1);
        n.lhs.lo = a.lo;
        n.lhs.hi = a.hi;
        n.lhs.src = a.src;
        n.rhs = rs2_reg != 0xff ? MakeOperand(st, rs2_reg) : ConstOperand(b.lo);
        if (rs2_reg != 0xff) {
          n.rhs.lo = b.lo;
          n.rhs.hi = b.hi;
          n.rhs.src = b.src;
        }
        out.pred = preds_.Intern(n);
      }
    } else {
      if (a.IsConst() && b.IsConst()) {
        out.lo = out.hi = static_cast<int32_t>(a.lo) < static_cast<int32_t>(b.lo) ? 1 : 0;
      } else {
        out.lo = 0;
        out.hi = 1;
      }
    }
    return out;
  }

  void Exec(uint32_t pc, const Instr& in, AbsState& st) {
    steps_++;
    uint32_t uimm = static_cast<uint32_t>(in.imm);
    AbsVal a = st.regs[in.rs1];
    AbsVal b = st.regs[in.rs2];
    switch (in.op) {
      case Op::kLui:
        SetReg(st, in.rd, AbsVal::Const(uimm));
        break;
      case Op::kAuipc:
        SetReg(st, in.rd, AbsVal::Const(pc + uimm));
        break;
      case Op::kAddi:
        // mv keeps the full value description (pred/src survive a register move).
        SetReg(st, in.rd, in.imm == 0 ? a : AddVals(a, AbsVal::Const(uimm)));
        break;
      case Op::kAdd:
        SetReg(st, in.rd, AddVals(a, b));
        break;
      case Op::kSub:
        SetReg(st, in.rd, SubVals(a, b));
        break;
      case Op::kAndi:
      case Op::kAnd: {
        AbsVal rhs = in.op == Op::kAndi ? AbsVal::Const(uimm) : b;
        AbsVal out = MergeTaint(a, rhs);
        if (a.IsConst() && rhs.IsConst()) {
          out.lo = out.hi = a.lo & rhs.lo;
        } else if (rhs.IsConst() && (~rhs.lo & (~rhs.lo + 1)) == 0) {
          // Alignment mask (all-ones above a power of two): monotone floor.
          out.lo = a.lo & rhs.lo;
          out.hi = a.hi & rhs.lo;
        } else {
          out.lo = 0;
          out.hi = std::min(a.hi, rhs.hi);
        }
        SetReg(st, in.rd, out);
        break;
      }
      case Op::kOri:
      case Op::kOr: {
        AbsVal rhs = in.op == Op::kOri ? AbsVal::Const(uimm) : b;
        AbsVal out = MergeTaint(a, rhs);
        if (a.IsConst() && rhs.IsConst()) {
          out.lo = out.hi = a.lo | rhs.lo;
        } else {
          out.lo = std::max(a.lo, rhs.lo);
          uint64_t cap = static_cast<uint64_t>(a.hi) + rhs.hi;
          out.hi = cap > 0xffffffffull ? 0xffffffffu : static_cast<uint32_t>(cap);
        }
        SetReg(st, in.rd, out);
        break;
      }
      case Op::kXori:
      case Op::kXor: {
        AbsVal rhs = in.op == Op::kXori ? AbsVal::Const(uimm) : b;
        AbsVal out = MergeTaint(a, rhs);
        if (a.IsConst() && rhs.IsConst()) {
          out.lo = out.hi = a.lo ^ rhs.lo;
        } else {
          uint64_t cap = static_cast<uint64_t>(a.hi) + rhs.hi;
          out.lo = 0;
          out.hi = cap > 0xffffffffull ? 0xffffffffu : static_cast<uint32_t>(cap);
        }
        // `xori b, b, 1` on a materialized boolean negates its predicate.
        if (in.op == Op::kXori && in.imm == 1 && a.pred != nullptr && a.hi <= 1) {
          PredNode n = *a.pred;
          n.negated = !n.negated;
          out.pred = preds_.Intern(n);
        }
        SetReg(st, in.rd, out);
        break;
      }
      case Op::kSlli:
      case Op::kSll:
      case Op::kSrli:
      case Op::kSrl:
      case Op::kSrai:
      case Op::kSra: {
        bool left = in.op == Op::kSlli || in.op == Op::kSll;
        bool arith = in.op == Op::kSrai || in.op == Op::kSra;
        bool imm_form = in.op == Op::kSlli || in.op == Op::kSrli || in.op == Op::kSrai;
        AbsVal amt = imm_form ? AbsVal::Const(uimm & 31u) : b;
        AbsVal out = MergeTaint(a, amt);
        if (amt.IsConst()) {
          uint32_t s = amt.lo & 31u;
          if (left) {
            if (a.hi <= (0xffffffffu >> s)) {
              out.lo = a.lo << s;
              out.hi = a.hi << s;
            }
          } else if (!arith || a.hi < 0x80000000u) {
            out.lo = a.lo >> s;
            out.hi = a.hi >> s;
          } else if (a.lo >= 0x80000000u) {
            out.lo = static_cast<uint32_t>(static_cast<int32_t>(a.lo) >> s);
            out.hi = static_cast<uint32_t>(static_cast<int32_t>(a.hi) >> s);
          }
        } else if (!left && (!arith || a.hi < 0x80000000u)) {
          out.lo = 0;
          out.hi = a.hi;  // A right shift never grows the value.
        }
        SetReg(st, in.rd, out);
        break;
      }
      case Op::kSlti:
        SetReg(st, in.rd, EvalCompare(st, in.rs1, a, AbsVal::Const(uimm), 0xff, false));
        break;
      case Op::kSltiu: {
        // `sltiu rd, rs, 1` is the canonical `rs == 0` / boolean-negate idiom.
        if (in.imm == 1 && a.pred != nullptr && a.hi <= 1) {
          AbsVal out = MergeTaint(a, AbsVal{});
          out.lo = 0;
          out.hi = 1;
          if (a.IsConst()) {
            out.lo = out.hi = a.lo == 0 ? 1 : 0;
          } else {
            PredNode n = *a.pred;
            n.negated = !n.negated;
            out.pred = preds_.Intern(n);
          }
          SetReg(st, in.rd, out);
        } else {
          SetReg(st, in.rd, EvalCompare(st, in.rs1, a, AbsVal::Const(uimm), 0xff, true));
        }
        break;
      }
      case Op::kSlt:
        SetReg(st, in.rd, EvalCompare(st, in.rs1, a, b, in.rs2, false));
        break;
      case Op::kSltu: {
        // `sltu rd, x0, rs` normalizes a boolean: forward the predicate unchanged.
        if (in.rs1 == 0 && b.pred != nullptr && b.hi <= 1) {
          AbsVal out = b;
          out.src = SrcLoc{};
          SetReg(st, in.rd, out);
        } else {
          SetReg(st, in.rd, EvalCompare(st, in.rs1, a, b, in.rs2, true));
        }
        break;
      }
      case Op::kMul:
      case Op::kMulh:
      case Op::kMulhsu:
      case Op::kMulhu: {
        if (cfg_.contract.Leaks(contract::InstrClass::kMul, contract::kObsLatency)) {
          contract_checks_++;
          if (a.IsSecret() || b.IsSecret()) {
            Flag(pc, FindingKind::kSecretMul, a.IsSecret() ? a : b);
          }
        }
        AbsVal out = MergeTaint(a, b);
        uint64_t plo = static_cast<uint64_t>(a.lo) * b.lo;
        uint64_t phi = static_cast<uint64_t>(a.hi) * b.hi;
        if (in.op == Op::kMul) {
          if (a.IsConst() && b.IsConst()) {
            out.lo = out.hi = static_cast<uint32_t>(plo);
          } else if (phi <= 0xffffffffull) {
            out.lo = static_cast<uint32_t>(plo);
            out.hi = static_cast<uint32_t>(phi);
          }
        } else if (in.op == Op::kMulhu) {
          out.lo = static_cast<uint32_t>(plo >> 32);
          out.hi = static_cast<uint32_t>(phi >> 32);
        } else if (a.IsConst() && b.IsConst()) {
          int64_t sa = static_cast<int32_t>(a.lo);
          int64_t sb_or_ub = in.op == Op::kMulh ? static_cast<int64_t>(static_cast<int32_t>(b.lo))
                                                : static_cast<int64_t>(b.lo);
          out.lo = out.hi = static_cast<uint32_t>((sa * sb_or_ub) >> 32);
        }
        SetReg(st, in.rd, out);
        break;
      }
      case Op::kDiv:
      case Op::kDivu:
      case Op::kRem:
      case Op::kRemu: {
        if (cfg_.contract.Leaks(contract::InstrClass::kDiv, contract::kObsLatency)) {
          contract_checks_++;
          if (a.IsSecret() || b.IsSecret()) {
            Flag(pc, FindingKind::kSecretDiv, a.IsSecret() ? a : b);
          }
        }
        AbsVal out = MergeTaint(a, b);
        if (a.IsConst() && b.IsConst()) {
          uint32_t x = a.lo, y = b.lo, v;
          int32_t sx = static_cast<int32_t>(x), sy = static_cast<int32_t>(y);
          bool ovf = sx == INT32_MIN && sy == -1;
          switch (in.op) {
            case Op::kDiv: v = y == 0 ? 0xffffffffu : (ovf ? x : static_cast<uint32_t>(sx / sy)); break;
            case Op::kDivu: v = y == 0 ? 0xffffffffu : x / y; break;
            case Op::kRem: v = y == 0 ? x : (ovf ? 0 : static_cast<uint32_t>(sx % sy)); break;
            default: v = y == 0 ? x : x % y; break;
          }
          out.lo = out.hi = v;
        } else if (in.op == Op::kDivu && b.lo > 0) {
          out.lo = a.lo / b.hi;
          out.hi = a.hi / b.lo;
        } else if (in.op == Op::kRemu && b.lo > 0) {
          out.lo = 0;
          out.hi = std::min(a.hi, b.hi - 1);
        }
        SetReg(st, in.rd, out);
        break;
      }
      case Op::kLb:
      case Op::kLh:
      case Op::kLw:
      case Op::kLbu:
      case Op::kLhu: {
        AbsVal addr = AddVals(a, AbsVal::Const(uimm));
        if (cfg_.contract.Leaks(contract::InstrClass::kLoad, contract::kObsAddress)) {
          contract_checks_++;
        }
        if (addr.IsSecret()) {
          // A secret address is unresolvable either way; the contract only decides
          // whether it is additionally a finding.
          if (cfg_.contract.Leaks(contract::InstrClass::kLoad, contract::kObsAddress)) {
            Flag(pc, FindingKind::kSecretLoad, addr);
          }
          SetReg(st, in.rd, AbsVal::TopSecret(prov_.Load(pc, addr.lo, addr.prov)));
          break;
        }
        SetReg(st, in.rd, ReadMem(pc, addr, in.op, st));
        break;
      }
      case Op::kSb:
      case Op::kSh:
      case Op::kSw: {
        AbsVal addr = AddVals(a, AbsVal::Const(uimm));
        if (cfg_.contract.Leaks(contract::InstrClass::kStore, contract::kObsAddress)) {
          contract_checks_++;
        }
        if (addr.IsSecret()) {
          if (cfg_.contract.Leaks(contract::InstrClass::kStore, contract::kObsAddress)) {
            Flag(pc, FindingKind::kSecretStore, addr);
          }
          break;
        }
        WriteMem(addr, b, in.op, st);
        break;
      }
      case Op::kFence:
      case Op::kEcall:
      case Op::kEbreak:
      case Op::kJal:
      case Op::kJalr:
      case Op::kBeq:
      case Op::kBne:
      case Op::kBlt:
      case Op::kBge:
      case Op::kBltu:
      case Op::kBgeu:
        break;  // Control transfers are handled as block terminators.
    }
  }

  // --- Fixpoint driver ------------------------------------------------------

  void Abort(std::string why) {
    if (!aborted_) {
      aborted_ = true;
      abort_reason_ = std::move(why);
    }
  }

  void GcDeadStack(AbsState& st) const {
    if (!st.regs[2].IsConst()) {
      return;
    }
    uint32_t sp = st.regs[2].lo;
    if (sp <= data_end_ || sp > kRamBase + cfg_.ram_size) {
      return;
    }
    auto it = st.mem.lower_bound(data_end_);
    while (it != st.mem.end() && it->first < sp) {
      it = st.mem.erase(it);
    }
  }

  CallOutcome CallInto(uint32_t entry, const AbsState& st, int depth) {
    CallOutcome none;
    const FunctionCfg* callee = graph_.FunctionAt(entry);
    if (callee == nullptr) {
      caveats_.unresolved_indirect_jumps++;
      return none;
    }
    if (depth >= cfg_.max_call_depth || in_progress_.count(entry) != 0) {
      caveats_.recursion_cutoffs++;
      return none;
    }
    in_progress_.insert(entry);
    CallOutcome out = AnalyzeFunction(*callee, st, depth + 1);
    in_progress_.erase(entry);
    if (out.returned) {
      GcDeadStack(out.out);
    }
    return out;
  }

  CallOutcome AnalyzeFunction(const FunctionCfg& fn, const AbsState& in, int depth) {
    CallOutcome result;
    if (aborted_) {
      return result;
    }
    uint64_t hash = HashState(in);
    auto& memo_bucket = memo_[std::make_pair(fn.entry, hash)];
    for (const MemoEntry& e : memo_bucket) {
      if (StatesSameAbstract(e.in, in)) {
        memo_hits_++;
        result.out = e.out;
        result.returned = e.returned;
        return result;
      }
    }
    memo_misses_++;
    std::optional<uint32_t> entry_ra;
    if (in.regs[1].IsConst()) {
      entry_ra = in.regs[1].lo;
    }

    std::map<uint32_t, AbsState> block_in;
    std::map<uint32_t, uint32_t> join_count;
    std::set<uint32_t> worklist;
    block_in.emplace(fn.entry, in);
    worklist.insert(fn.entry);
    AbsState ret_state;
    bool returned = false;

    auto propagate = [&](uint32_t succ, const AbsState& st) {
      auto it = block_in.find(succ);
      if (it == block_in.end()) {
        block_in.emplace(succ, st);
        worklist.insert(succ);
        return;
      }
      uint32_t& joins = join_count[succ];
      joins++;
      AbsState merged = MergeStates(it->second, st, joins > cfg_.widen_threshold);
      if (!StatesSameAbstract(merged, it->second)) {
        it->second = std::move(merged);
        worklist.insert(succ);
      }
    };
    auto merge_return = [&](const AbsState& st) {
      ret_state = returned ? MergeStates(ret_state, st, false) : st;
      returned = true;
    };

    while (!worklist.empty() && !aborted_) {
      uint32_t start = *worklist.begin();
      worklist.erase(worklist.begin());
      fixpoint_iters_++;
      if (steps_ > cfg_.max_abstract_steps) {
        Abort("abstract-step budget exhausted in " + fn.name);
        break;
      }
      const Block& blk = fn.blocks.at(start);
      AbsState st = block_in.at(start);
      bool has_term = blk.exit != BlockExit::kFallThrough;
      uint32_t body_end = has_term ? blk.end - 4 : blk.end;
      for (uint32_t pc = blk.start; pc < body_end; pc += 4) {
        Exec(pc, InstrAt(pc), st);
      }
      if (!has_term) {
        if (!blk.succs.empty()) {
          propagate(blk.succs[0], st);
        }
        continue;
      }
      uint32_t tpc = blk.end - 4;
      const Instr& term = InstrAt(tpc);
      steps_++;
      switch (blk.exit) {
        case BlockExit::kJump:
          propagate(blk.target, st);
          break;
        case BlockExit::kBranch: {
          AbsVal a = st.regs[term.rs1];
          AbsVal b = st.regs[term.rs2];
          if (cfg_.contract.Leaks(contract::InstrClass::kBranch, contract::kObsTarget)) {
            contract_checks_++;
            if (JoinTaint(a.taint, b.taint) == Taint::kSecret) {
              Flag(tpc, FindingKind::kSecretBranch, a.IsSecret() ? a : b);
            }
          }
          bool has_fall = blk.succs.size() > 1;
          if (a.IsConst() && b.IsConst()) {
            bool taken = EvalBranch(term.op, a.lo, b.lo);
            if (taken) {
              propagate(blk.target, st);
            } else if (has_fall) {
              propagate(blk.end, st);
            }
            break;
          }
          PredOperand oa = MakeOperand(st, term.rs1);
          PredOperand ob = MakeOperand(st, term.rs2);
          for (bool taken : {true, false}) {
            if (!taken && !has_fall) {
              continue;
            }
            AbsState edge = st;
            bool feasible = ApplyRel(edge, RelFor(term.op, taken, a, b), oa, ob);
            if (feasible && term.rs2 == 0 && a.pred != nullptr &&
                (term.op == Op::kBeq || term.op == Op::kBne)) {
              // Branch on a materialized boolean: taken beq means the boolean is 0.
              bool value_true = (term.op == Op::kBne) == taken;
              feasible = ApplyPred(edge, *a.pred, value_true);
            }
            if (feasible) {
              propagate(taken ? blk.target : blk.end, edge);
            }
          }
          break;
        }
        case BlockExit::kCall: {
          SetReg(st, term.rd, AbsVal::Const(tpc + 4));
          CallOutcome co = CallInto(blk.target, st, depth);
          if (co.returned && !blk.succs.empty()) {
            propagate(blk.succs[0], co.out);
          }
          break;
        }
        case BlockExit::kIndirect: {
          AbsVal target = AddVals(st.regs[term.rs1], AbsVal::Const(static_cast<uint32_t>(term.imm)));
          if (cfg_.contract.Leaks(contract::InstrClass::kJump, contract::kObsTarget)) {
            contract_checks_++;
          }
          if (target.IsSecret()) {
            if (cfg_.contract.Leaks(contract::InstrClass::kJump, contract::kObsTarget)) {
              Flag(tpc, FindingKind::kSecretJump, target);
            } else {
              // Still unresolvable; without the contract arming the check it is a
              // precision caveat rather than a finding.
              caveats_.unresolved_indirect_jumps++;
            }
            break;
          }
          SetReg(st, term.rd, AbsVal::Const(tpc + 4));
          if (!target.IsConst()) {
            caveats_.unresolved_indirect_jumps++;
            break;
          }
          uint32_t t = target.lo & ~1u;
          if (entry_ra.has_value() && t == *entry_ra) {
            merge_return(st);
            break;
          }
          if (term.rd != 0 && graph_.FunctionAt(t) != nullptr) {
            CallOutcome co = CallInto(t, st, depth);
            if (co.returned && fn.blocks.count(tpc + 4) != 0) {
              propagate(tpc + 4, co.out);
            }
            break;
          }
          if (fn.blocks.count(t) != 0) {
            propagate(t, st);  // Computed goto to a known block.
            break;
          }
          caveats_.unresolved_indirect_jumps++;
          break;
        }
        case BlockExit::kHalt:
          break;
        case BlockExit::kFallThrough:
          break;  // Unreachable: handled above.
      }
    }

    result.returned = returned;
    if (returned) {
      result.out = std::move(ret_state);
    }
    if (!aborted_) {
      memo_bucket.push_back(MemoEntry{in, result.out, result.returned});
    }
    return result;
  }

 public:
  // (Run is defined out of line below to keep the class readable.)

 private:
  const riscv::Image& image_;
  const LintConfig& cfg_;
  const Cfg& graph_;
  riscv::SymbolNamer namer_;
  std::vector<Instr> decoded_;
  std::vector<bool> decoded_valid_;
  uint32_t data_end_ = kRamBase;

  ProvArena prov_;
  PredArena preds_;
  std::map<FindingKey, Finding> findings_;
  LintCaveats caveats_;
  std::map<std::pair<uint32_t, uint64_t>, std::vector<MemoEntry>> memo_;
  std::set<uint32_t> in_progress_;
  uint64_t steps_ = 0;
  uint64_t fixpoint_iters_ = 0;
  uint64_t contract_checks_ = 0;  // Contract-armed check sites evaluated.
  uint64_t memo_hits_ = 0;
  uint64_t memo_misses_ = 0;
  bool aborted_ = false;
  std::string abort_reason_;
};

void Interp::Run(LintReport* report) {
  const FunctionCfg* entry_fn = nullptr;
  for (const auto& [entry, fn] : graph_.functions) {
    if (fn.name == cfg_.entry) {
      entry_fn = &fn;
      break;
    }
  }
  if (entry_fn == nullptr) {
    report->error = "entry symbol '" + cfg_.entry + "' is not a marked function";
    return;
  }

  AbsState init;
  for (int i = 0; i < 32; i++) {
    init.regs[i] = AbsVal::Const(0);  // Cores reset the register file to zero.
  }
  // Seed the secret journal slots; everything else in FRAM/RAM defaults to public
  // unknown (the journal flag and persisted counter are public by contract).
  for (const hsm::SecretRegion& r : cfg_.fram_secret_regions) {
    uint32_t begin = kFramBase + r.offset;
    const ProvNode* seed = prov_.Seed(begin, r.length);
    for (uint32_t wa = begin & ~3u; wa < begin + r.length; wa += 4) {
      init.mem[wa] = AbsVal::TopSecret(seed);
    }
  }

  AnalyzeFunction(*entry_fn, init, 0);

  report->ok = !aborted_;
  report->error = abort_reason_;
  report->findings.clear();
  report->findings.reserve(findings_.size());
  for (auto& [key, f] : findings_) {
    report->findings.push_back(std::move(f));
  }
  report->caveats = caveats_;

  telemetry::TelemetrySnapshot& t = report->telemetry;
  t.AddCounter("lint/instrs_analyzed", steps_);
  t.AddCounter("lint/fixpoint_iters", fixpoint_iters_);
  t.AddCounter("lint/contract_checks", contract_checks_);
  t.AddCounter("lint/findings", report->findings.size());
  t.AddCounter("lint/cfg_functions", graph_.functions.size());
  uint64_t blocks = 0;
  for (const auto& [entry, fn] : graph_.functions) {
    blocks += fn.blocks.size();
  }
  t.AddCounter("lint/cfg_blocks", blocks);
  t.AddCounter("lint/cfg_instrs", graph_.instr_count);
  t.AddCounter("lint/prov_nodes", prov_.size());
  t.AddCounter("lint/pred_nodes", preds_.size());
  t.AddCounter("lint/memo_hits", memo_hits_);
  t.AddCounter("lint/memo_misses", memo_misses_);
  t.AddCounter("lint/caveat_unresolved_loads", caveats_.unresolved_loads);
  t.AddCounter("lint/caveat_unresolved_stores", caveats_.unresolved_stores);
  t.AddCounter("lint/caveat_unresolved_secret_stores", caveats_.unresolved_secret_stores);
  t.AddCounter("lint/caveat_unresolved_indirect_jumps", caveats_.unresolved_indirect_jumps);
  t.AddCounter("lint/caveat_recursion_cutoffs", caveats_.recursion_cutoffs);
  telemetry::Telemetry::Global().Merge(t);
}

}  // namespace

const char* FindingKindName(FindingKind kind) {
  switch (kind) {
    case FindingKind::kSecretBranch: return "secret-branch";
    case FindingKind::kSecretJump: return "secret-jump";
    case FindingKind::kSecretLoad: return "secret-load";
    case FindingKind::kSecretStore: return "secret-store";
    case FindingKind::kSecretMul: return "secret-mul";
    case FindingKind::kSecretDiv: return "secret-div";
  }
  return "?";
}

const char* FindingKindDynamicWhat(FindingKind kind) {
  // Must match the strings recorded by src/soc/cpu_common.cc.
  switch (kind) {
    case FindingKind::kSecretBranch: return "branch on secret-derived condition";
    case FindingKind::kSecretJump: return "jump target derived from secret";
    case FindingKind::kSecretLoad: return "load address derived from secret";
    case FindingKind::kSecretStore: return "store address derived from secret";
    case FindingKind::kSecretMul: return "multiply with tainted operand";
    case FindingKind::kSecretDiv: return "divide with tainted operand";
  }
  return "?";
}

LintConfig ConfigForSystem(const hsm::HsmSystem& system) {
  LintConfig config;
  config.fram_secret_regions = hsm::SecretLayout::ForApp(system.app()).FramSecretRegions();
  config.contract = system.leakage_contract();
  config.soc_id = system.soc_id();
  return config;
}

LintReport RunLint(const riscv::Image& image, const LintConfig& config) {
  TELEMETRY_SPAN("lint/run");
  LintReport report;
  if (!config.soc_id.empty()) {
    std::string mismatch = contract::ContractMismatch(config.contract, config.soc_id);
    if (!mismatch.empty()) {
      report.error = mismatch;
      return report;
    }
  }
  auto cfg_result = BuildCfg(image);
  if (!cfg_result.ok()) {
    report.error = "CFG recovery failed: " + cfg_result.error();
    return report;
  }
  const Cfg graph = std::move(cfg_result).value();
  Interp interp(image, config, graph);
  interp.Run(&report);
  return report;
}

LintReport RunLintForSystem(const hsm::HsmSystem& system) {
  return RunLint(system.image(), ConfigForSystem(system));
}

}  // namespace parfait::analysis
