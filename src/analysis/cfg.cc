#include "src/analysis/cfg.h"

#include <algorithm>
#include <set>

#include "src/support/bytes.h"

namespace parfait::analysis {

namespace {

using riscv::Instr;
using riscv::Op;

bool IsCondBranch(Op op) {
  return op == Op::kBeq || op == Op::kBne || op == Op::kBlt || op == Op::kBge ||
         op == Op::kBltu || op == Op::kBgeu;
}

}  // namespace

const FunctionCfg* Cfg::FunctionContaining(uint32_t pc) const {
  auto it = functions.upper_bound(pc);
  if (it == functions.begin()) {
    return nullptr;
  }
  --it;
  if (pc >= it->second.entry && pc < it->second.entry + it->second.size) {
    return &it->second;
  }
  return nullptr;
}

Result<Cfg> BuildCfg(const riscv::Image& image) {
  Cfg cfg;
  for (const riscv::SymbolInfo& sym : image.symbol_table) {
    if (sym.kind != riscv::SymbolKind::kFunction) {
      continue;
    }
    FunctionCfg fn;
    fn.name = sym.name;
    fn.entry = sym.addr;
    fn.size = sym.size;
    if (sym.size == 0 || sym.addr % 4 != 0) {
      return Result<Cfg>::Error("function " + sym.name + " has no usable extent");
    }
    uint32_t end = sym.addr + sym.size;

    // Decode every word in the extent and collect leaders.
    std::map<uint32_t, Instr> instrs;
    std::set<uint32_t> leaders;
    leaders.insert(fn.entry);
    for (uint32_t pc = fn.entry; pc < end; pc += 4) {
      uint32_t offset = pc - image.rom_base;
      if (offset + 4 > image.rom.size()) {
        return Result<Cfg>::Error("function " + sym.name + " extends past ROM");
      }
      uint32_t word = LoadLe32(image.rom.data() + offset);
      auto decoded = riscv::Decode(word);
      if (!decoded.has_value()) {
        return Result<Cfg>::Error("undecodable word in " + sym.name + " at pc " +
                                  std::to_string(pc));
      }
      instrs[pc] = *decoded;
      cfg.instr_count++;
      const Instr& in = *decoded;
      if (IsCondBranch(in.op)) {
        uint32_t target = pc + static_cast<uint32_t>(in.imm);
        if (target < fn.entry || target >= end) {
          return Result<Cfg>::Error("branch escapes " + sym.name + " at pc " +
                                    std::to_string(pc));
        }
        leaders.insert(target);
        leaders.insert(pc + 4);
      } else if (in.op == Op::kJal) {
        uint32_t target = pc + static_cast<uint32_t>(in.imm);
        if (in.rd == 0) {
          // Direct goto; must stay inside the function (the in-tree producers never
          // emit tail jumps).
          if (target < fn.entry || target >= end) {
            return Result<Cfg>::Error("jump escapes " + sym.name + " at pc " +
                                      std::to_string(pc));
          }
          leaders.insert(target);
        }
        leaders.insert(pc + 4);
      } else if (in.op == Op::kJalr) {
        leaders.insert(pc + 4);
        if (!(in.rd == 0 && in.rs1 == 1 && in.imm == 0)) {
          // Not the `ret` shape; the interpreter must bound the target.
          cfg.indirect_jumps.push_back(pc);
        }
      } else if (in.op == Op::kEbreak || in.op == Op::kEcall) {
        leaders.insert(pc + 4);
      }
    }

    // Cut blocks at leaders.
    std::vector<uint32_t> sorted(leaders.begin(), leaders.end());
    sorted.erase(std::remove_if(sorted.begin(), sorted.end(),
                                [&](uint32_t pc) { return pc >= end; }),
                 sorted.end());
    for (size_t i = 0; i < sorted.size(); i++) {
      Block block;
      block.start = sorted[i];
      block.end = (i + 1 < sorted.size()) ? sorted[i + 1] : end;
      uint32_t last_pc = block.end - 4;
      const Instr& last = instrs.at(last_pc);
      if (IsCondBranch(last.op)) {
        block.exit = BlockExit::kBranch;
        block.target = last_pc + static_cast<uint32_t>(last.imm);
        block.succs = {block.target};
        if (block.end < end) {
          block.succs.push_back(block.end);
        }
      } else if (last.op == Op::kJal) {
        if (last.rd == 0) {
          block.exit = BlockExit::kJump;
          block.target = last_pc + static_cast<uint32_t>(last.imm);
          block.succs = {block.target};
        } else {
          block.exit = BlockExit::kCall;
          block.target = last_pc + static_cast<uint32_t>(last.imm);
          if (block.end < end) {
            block.succs = {block.end};
          }
        }
      } else if (last.op == Op::kJalr) {
        block.exit = BlockExit::kIndirect;
      } else if (last.op == Op::kEbreak || last.op == Op::kEcall) {
        block.exit = BlockExit::kHalt;
      } else {
        block.exit = BlockExit::kFallThrough;
        if (block.end < end) {
          block.succs = {block.end};
        }
      }
      fn.blocks[block.start] = std::move(block);
    }
    cfg.functions[fn.entry] = std::move(fn);
  }
  std::sort(cfg.indirect_jumps.begin(), cfg.indirect_jumps.end());
  return cfg;
}

}  // namespace parfait::analysis
