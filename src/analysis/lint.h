// Static constant-time / leakage lint over an assembled RV32IM firmware image.
//
// The analyzer abstract-interprets the whole program from `_start` over the CFG
// recovered in cfg.h, with the domain of absdomain.h: unsigned intervals keep
// addresses and loop counters bounded, the taint lattice tracks which values are
// secret-derived, and provenance chains explain every finding back to the FRAM seed
// region. The checks derive from the SoC's leakage contract (src/contract): a
// Secret value must never feed an observation the contract declares — a branch or
// jump target, a load/store address, a divide, and (under the `_vlm` contracts'
// latency(operands) entry) a multiply. The same artifact configures the dynamic
// taint monitor in src/soc/cpu_common.cc, so findings cross-check one-for-one.
//
// Analysis is context-sensitive: every call analyzes the callee in the caller's
// abstract state (memoized on abstract equality), which is what keeps the two
// case-study apps at zero findings — their length and bound parameters are exact
// constants per call site, never joined across sites.
//
// Soundness caveats (counted in LintReport::caveats, discussed in DESIGN.md):
// unresolvable indirect jumps, stores through unbounded addresses (dropped), and
// the memory-safety assumption that dead stack slots are not re-read.
#ifndef PARFAIT_ANALYSIS_LINT_H_
#define PARFAIT_ANALYSIS_LINT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/analysis/absdomain.h"
#include "src/analysis/cfg.h"
#include "src/contract/contract.h"
#include "src/hsm/hsm_system.h"
#include "src/hsm/secret_layout.h"
#include "src/riscv/assembler.h"
#include "src/support/status.h"
#include "src/support/telemetry.h"

namespace parfait::analysis {

// What the policy forbids doing with a Secret value. Matches the dynamic monitor's
// violation classes one-for-one so findings can be cross-checked (crosscheck.h).
enum class FindingKind : uint8_t {
  kSecretBranch,  // Conditional branch on a secret-derived condition.
  kSecretJump,    // jalr target derived from secret.
  kSecretLoad,    // Load address derived from secret.
  kSecretStore,   // Store address derived from secret.
  kSecretMul,     // Multiply with a tainted operand (variable-latency policy).
  kSecretDiv,     // Divide/remainder with a tainted operand.
};

const char* FindingKindName(FindingKind kind);
// The corresponding dynamic-monitor violation string (soc::TaintLeak::what).
const char* FindingKindDynamicWhat(FindingKind kind);

struct Finding {
  uint32_t pc = 0;
  FindingKind kind = FindingKind::kSecretBranch;
  std::string instr;     // Disassembly of the offending instruction.
  std::string function;  // Containing function (from the symbol side table).
  // Taint provenance, leak-site first: each line is one hop of the secret's journey
  // from the FRAM seed region to the flagged operand.
  std::vector<std::string> provenance;
};


// Precision/termination caveat counters. Nonzero values mean the analysis was
// sound-but-lossy somewhere; zero findings + zero caveats is the strongest verdict.
struct LintCaveats {
  uint64_t unresolved_loads = 0;    // Load address unbounded: result went to Unknown.
  uint64_t unresolved_stores = 0;   // Store address unbounded: store dropped.
  uint64_t unresolved_secret_stores = 0;  // ...and the dropped value was Secret.
  uint64_t unresolved_indirect_jumps = 0; // jalr target not provably a return/call.
  uint64_t recursion_cutoffs = 0;   // Call depth limit or recursive cycle hit.
};

struct LintConfig {
  // Memory map (defaults mirror src/soc/bus.h).
  uint32_t rom_size = 256 * 1024;
  uint32_t ram_size = 128 * 1024;
  uint32_t fram_size = 8 * 1024;
  // FRAM-relative secret byte ranges (hsm::SecretLayout::FramSecretRegions()).
  std::vector<hsm::SecretRegion> fram_secret_regions;
  // The leakage contract the checks derive from: a class is checked iff the
  // contract declares an observation for it (branch/jump target, load/store
  // address, mul/div latency). Defaults to the stock ibex_lite surface; mul is
  // armed by the `_vlm` contracts (formerly the --mul-policy special case).
  contract::LeakageContract contract = contract::BuiltinContract("ibex_lite");
  // When non-empty, RunLint refuses a contract whose `soc` disagrees with this
  // (ConfigForSystem fills in the system's soc_id()).
  std::string soc_id;
  std::string entry = "_start";
  // Fuel limits: the fixpoint is finite by construction (widening), these only
  // bound pathological inputs so the tool always terminates with an error.
  uint64_t max_abstract_steps = 200'000'000;
  uint32_t widen_threshold = 3;    // Joins per block edge before widening kicks in.
  uint32_t range_access_cap = 4096;  // Max bytes a ranged load/store may span.
  int max_call_depth = 64;
};

// Config for linting exactly what an HsmSystem runs: secret regions from the shared
// SecretLayout and the system's own leakage contract (BuiltinContract(soc_id())).
LintConfig ConfigForSystem(const hsm::HsmSystem& system);

struct LintReport {
  bool ok = false;      // Analysis ran to completion (fuel not exhausted, CFG valid).
  std::string error;    // When !ok.
  // Deduplicated findings, sorted by (pc, kind). Deterministic across runs.
  std::vector<Finding> findings;
  LintCaveats caveats;
  // lint/* counters: instrs_analyzed, fixpoint_iters, findings, cfg_functions,
  // cfg_blocks, prov_nodes, caveat counters. Deterministic (single fixpoint order).
  telemetry::TelemetrySnapshot telemetry;

  bool Clean() const { return ok && findings.empty(); }
};

// Runs the lint over a linked image. The image must carry a symbol side table with
// kFunction extents (the in-tree assembler always emits one).
LintReport RunLint(const riscv::Image& image, const LintConfig& config);

// Convenience: ConfigForSystem + RunLint over the system's image.
LintReport RunLintForSystem(const hsm::HsmSystem& system);

}  // namespace parfait::analysis

#endif  // PARFAIT_ANALYSIS_LINT_H_
