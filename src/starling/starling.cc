#include "src/starling/starling.h"

#include <cstring>

#include "src/support/bytes.h"
#include "src/support/parallel.h"
#include "src/support/profiler.h"
#include "src/support/rng.h"
#include "src/support/telemetry.h"

namespace parfait::starling {

namespace {

using hsm::App;

constexpr size_t kGuardSize = 64;
constexpr uint8_t kGuardByte = 0xc3;

// A buffer with guard zones on both sides (the memory-safety oracle standing in for
// Low*'s Stack-effect type checking).
class GuardedBuffer {
 public:
  GuardedBuffer(const Bytes& contents)
      : storage_(contents.size() + 2 * kGuardSize, kGuardByte) {
    std::memcpy(storage_.data() + kGuardSize, contents.data(), contents.size());
    payload_size_ = contents.size();
  }

  uint8_t* data() { return storage_.data() + kGuardSize; }
  Bytes payload() const {
    return Bytes(storage_.begin() + kGuardSize, storage_.begin() + kGuardSize + payload_size_);
  }
  bool GuardsIntact() const {
    for (size_t i = 0; i < kGuardSize; i++) {
      if (storage_[i] != kGuardByte ||
          storage_[kGuardSize + payload_size_ + i] != kGuardByte) {
        return false;
      }
    }
    return true;
  }

 private:
  Bytes storage_;
  size_t payload_size_;
};

struct HandleRun {
  Bytes state;
  Bytes response;
  bool guards_ok;
};

HandleRun RunHandle(const App& app, const Bytes& state, const Bytes& command) {
  GuardedBuffer st(state);
  GuardedBuffer cmd(command);
  GuardedBuffer resp(Bytes(app.response_size(), 0));
  app.NativeHandle(st.data(), cmd.data(), resp.data());
  return HandleRun{st.payload(), resp.payload(),
                   st.GuardsIntact() && cmd.GuardsIntact() && resp.GuardsIntact()};
}

// One trial's contribution to the report: the number of checks it completed, its
// telemetry deltas, and, if it failed, what went wrong plus the exact bytes that
// reproduce it. Trials are independent, so CheckApp can run them in any order on any
// number of threads and fold the outcomes by trial index.
struct TrialResult {
  int checks = 0;
  int handle_runs = 0;  // Guarded handle() invocations (3 guard-zone checks each).
  std::string failure;  // Empty = the trial passed.
  Bytes state;          // Filled on failure: the state the failing check saw.
  Bytes command;        // Filled on failure: the command the failing check saw.
};

// Figure 6(a) from an arbitrary (not just reachable) related state: the lockstep
// property quantifies over every state related by R, and every byte string is a
// valid state encoding for our apps.
TrialResult RunValidTrial(const App& app, Rng& rng) {
  TELEMETRY_SPAN("starling/valid_trial");
  TrialResult result;
  Bytes state = rng.RandomBytes(app.state_size());
  Bytes command = app.RandomValidCommand(rng);
  auto spec = app.SpecStepEncoded(state, command);
  if (!spec.has_value()) {
    result.failure = "RandomValidCommand produced an undecodable command";
  } else {
    HandleRun run = RunHandle(app, state, command);
    result.handle_runs++;
    result.checks++;
    if (!run.guards_ok) {
      result.failure = "guard zone clobbered (memory safety violation)";
    } else if (run.state != spec->first) {
      result.failure = "figure 6(a): post-state diverges from the specification";
    } else if (run.response != spec->second) {
      result.failure = "figure 6(a): response diverges from the specification";
    } else {
      // Determinism: a second run must be byte-identical.
      HandleRun again = RunHandle(app, state, command);
      result.handle_runs++;
      if (again.state != run.state || again.response != run.response) {
        result.failure = "handle() is not deterministic";
      }
    }
  }
  if (!result.failure.empty()) {
    result.state = state;
    result.command = command;
  }
  return result;
}

// Figure 6(b): undecodable commands leave the state untouched and answer with the
// canonical None response.
TrialResult RunInvalidTrial(const App& app, Rng& rng) {
  TELEMETRY_SPAN("starling/invalid_trial");
  TrialResult result;
  Bytes state = rng.RandomBytes(app.state_size());
  Bytes command = app.RandomInvalidCommand(rng);
  if (app.SpecStepEncoded(state, command).has_value()) {
    result.failure = "RandomInvalidCommand produced a decodable command";
  } else {
    HandleRun run = RunHandle(app, state, command);
    result.handle_runs++;
    result.checks++;
    if (!run.guards_ok) {
      result.failure = "guard zone clobbered on an invalid command";
    } else if (run.state != state) {
      result.failure = "figure 6(b): state changed on an undecodable command";
    } else if (run.response != app.EncodeResponseNone()) {
      result.failure = "figure 6(b): non-canonical response to an undecodable command";
    }
  }
  if (!result.failure.empty()) {
    result.state = state;
    result.command = command;
  }
  return result;
}

// A reachable-state sequence from the initial state (catches stateful drift that
// single-step checks from random states could miss, e.g. counter handling).
TrialResult RunSequenceTrial(const App& app, Rng& rng, int sequence_length) {
  TELEMETRY_SPAN("starling/sequence_trial");
  TrialResult result;
  Bytes state = app.InitStateEncoded();
  for (int i = 0; i < sequence_length; i++) {
    Bytes command =
        rng.Below(5) == 0 ? app.RandomInvalidCommand(rng) : app.RandomValidCommand(rng);
    auto spec = app.SpecStepEncoded(state, command);
    HandleRun run = RunHandle(app, state, command);
    result.handle_runs++;
    result.checks++;
    if (!run.guards_ok) {
      result.failure = "guard zone clobbered in a sequence";
    } else if (spec.has_value()) {
      if (run.state != spec->first || run.response != spec->second) {
        result.failure = "sequence step diverges from the specification";
      } else {
        state = spec->first;
      }
    } else if (run.state != state || run.response != app.EncodeResponseNone()) {
      result.failure = "sequence None-case diverges";
    }
    if (!result.failure.empty()) {
      result.state = state;  // The pre-step state the failing step saw.
      result.command = command;
      return result;
    }
  }
  return result;
}

}  // namespace

StarlingReport CheckApp(const App& app, const StarlingOptions& options) {
  TELEMETRY_SPAN("starling/check_app");
  // Trial index space: valid trials, then invalid trials, then sequences. Each trial
  // seeds its own RNG from (seed, index), so the generated test cases — and therefore
  // the whole report — do not depend on thread count or scheduling.
  size_t valid = options.valid_trials > 0 ? options.valid_trials : 0;
  size_t invalid = options.invalid_trials > 0 ? options.invalid_trials : 0;
  size_t sequences = options.sequence_trials > 0 ? options.sequence_trials : 0;
  size_t total = valid + invalid + sequences;

  ThreadPool pool(options.num_threads);
  auto outcome = ParallelReduce<TrialResult>(
      pool, total,
      [&](size_t index) {
        profiler::WorkSpan work_span("starling/trial");
        if (work_span.active()) {
          // Batches of 64 trials keep the unit cardinality low enough to read while
          // still localizing a slow stretch of the trial index space.
          const char* kind = index < valid             ? "valid"
                             : index < valid + invalid ? "invalid"
                                                       : "sequence";
          work_span.Annotate("app=" + std::string(app.name()) + " kind=" + kind +
                             " batch=" + std::to_string(index / 64));
        }
        Rng rng(SplitSeed(options.seed, index));
        if (index < valid) {
          return RunValidTrial(app, rng);
        }
        if (index < valid + invalid) {
          return RunInvalidTrial(app, rng);
        }
        return RunSequenceTrial(app, rng, options.sequence_length);
      },
      [](const TrialResult& result) { return !result.failure.empty(); });

  // Fold in index order. On failure only trials up to the (deterministic) lowest
  // failing index count — anything above it raced the cancellation. The same fold
  // produces the report's telemetry snapshot, so counters are bit-identical at every
  // thread count.
  StarlingReport report;
  size_t last = outcome.first_failure.value_or(total == 0 ? 0 : total - 1);
  for (size_t i = 0; i < total && i <= last; i++) {
    if (!outcome.results[i].has_value()) {
      continue;
    }
    const TrialResult& trial = *outcome.results[i];
    report.checks_run += trial.checks;
    const char* kind = i < valid             ? "starling/trials/valid"
                       : i < valid + invalid ? "starling/trials/invalid"
                                             : "starling/trials/sequence";
    report.telemetry.AddCounter(kind, 1);
    report.telemetry.AddCounter("starling/checks", trial.checks);
    report.telemetry.AddCounter("starling/handle_runs", trial.handle_runs);
    // RunHandle guards all three buffers (state, command, response).
    report.telemetry.AddCounter("starling/guard_zone_checks", 3 * trial.handle_runs);
    report.telemetry.RecordValue("starling/checks_per_trial", trial.checks);
  }
  if (outcome.first_failure.has_value()) {
    size_t f = *outcome.first_failure;
    const TrialResult& failing = *outcome.results[f];
    report.ok = false;
    report.failure = std::string(app.name()) + ": " + failing.failure;
    telemetry::Evidence evidence;
    evidence.checker = "starling";
    evidence.Add("app", app.name());
    evidence.Add("seed", options.seed);
    evidence.Add("trial_index", f);
    evidence.Add("trial_seed", SplitSeed(options.seed, f));
    evidence.Add("trial_kind", f < valid             ? "valid"
                               : f < valid + invalid ? "invalid"
                                                     : "sequence");
    evidence.Add("state_hex", ToHex(failing.state));
    evidence.Add("command_hex", ToHex(failing.command));
    evidence.Add("failure", failing.failure);
    report.evidence = evidence;
    telemetry::Telemetry::Global().RecordEvidence(evidence);
  }
  telemetry::Telemetry::Global().Merge(report.telemetry);
  return report;
}

}  // namespace parfait::starling
