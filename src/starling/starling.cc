#include "src/starling/starling.h"

#include <cstring>

#include "src/support/rng.h"

namespace parfait::starling {

namespace {

using hsm::App;

constexpr size_t kGuardSize = 64;
constexpr uint8_t kGuardByte = 0xc3;

// A buffer with guard zones on both sides (the memory-safety oracle standing in for
// Low*'s Stack-effect type checking).
class GuardedBuffer {
 public:
  GuardedBuffer(const Bytes& contents)
      : storage_(contents.size() + 2 * kGuardSize, kGuardByte) {
    std::memcpy(storage_.data() + kGuardSize, contents.data(), contents.size());
    payload_size_ = contents.size();
  }

  uint8_t* data() { return storage_.data() + kGuardSize; }
  Bytes payload() const {
    return Bytes(storage_.begin() + kGuardSize, storage_.begin() + kGuardSize + payload_size_);
  }
  bool GuardsIntact() const {
    for (size_t i = 0; i < kGuardSize; i++) {
      if (storage_[i] != kGuardByte ||
          storage_[kGuardSize + payload_size_ + i] != kGuardByte) {
        return false;
      }
    }
    return true;
  }

 private:
  Bytes storage_;
  size_t payload_size_;
};

struct HandleRun {
  Bytes state;
  Bytes response;
  bool guards_ok;
};

HandleRun RunHandle(const App& app, const Bytes& state, const Bytes& command) {
  GuardedBuffer st(state);
  GuardedBuffer cmd(command);
  GuardedBuffer resp(Bytes(app.response_size(), 0));
  app.NativeHandle(st.data(), cmd.data(), resp.data());
  return HandleRun{st.payload(), resp.payload(),
                   st.GuardsIntact() && cmd.GuardsIntact() && resp.GuardsIntact()};
}

}  // namespace

StarlingReport CheckApp(const App& app, const StarlingOptions& options) {
  StarlingReport report;
  Rng rng(options.seed);
  auto fail = [&](const std::string& what) {
    report.ok = false;
    report.failure = std::string(app.name()) + ": " + what;
    return report;
  };

  // Figure 6(a) from arbitrary (not just reachable) related states: the lockstep
  // property quantifies over every state related by R, and every byte string is a
  // valid state encoding for our apps.
  for (int i = 0; i < options.valid_trials; i++) {
    Bytes state = rng.RandomBytes(app.state_size());
    Bytes command = app.RandomValidCommand(rng);
    auto spec = app.SpecStepEncoded(state, command);
    if (!spec.has_value()) {
      return fail("RandomValidCommand produced an undecodable command");
    }
    HandleRun run = RunHandle(app, state, command);
    report.checks_run++;
    if (!run.guards_ok) {
      return fail("guard zone clobbered (memory safety violation)");
    }
    if (run.state != spec->first) {
      return fail("figure 6(a): post-state diverges from the specification");
    }
    if (run.response != spec->second) {
      return fail("figure 6(a): response diverges from the specification");
    }
    // Determinism: a second run must be byte-identical.
    HandleRun again = RunHandle(app, state, command);
    if (again.state != run.state || again.response != run.response) {
      return fail("handle() is not deterministic");
    }
  }

  // Figure 6(b): undecodable commands leave the state untouched and answer with the
  // canonical None response.
  for (int i = 0; i < options.invalid_trials; i++) {
    Bytes state = rng.RandomBytes(app.state_size());
    Bytes command = app.RandomInvalidCommand(rng);
    if (app.SpecStepEncoded(state, command).has_value()) {
      return fail("RandomInvalidCommand produced a decodable command");
    }
    HandleRun run = RunHandle(app, state, command);
    report.checks_run++;
    if (!run.guards_ok) {
      return fail("guard zone clobbered on an invalid command");
    }
    if (run.state != state) {
      return fail("figure 6(b): state changed on an undecodable command");
    }
    if (run.response != app.EncodeResponseNone()) {
      return fail("figure 6(b): non-canonical response to an undecodable command");
    }
  }

  // Reachable-state sequences from the initial state (catches stateful drift that
  // single-step checks from random states could miss, e.g. counter handling).
  for (int t = 0; t < options.sequence_trials; t++) {
    Bytes state = app.InitStateEncoded();
    for (int i = 0; i < options.sequence_length; i++) {
      Bytes command =
          rng.Below(5) == 0 ? app.RandomInvalidCommand(rng) : app.RandomValidCommand(rng);
      auto spec = app.SpecStepEncoded(state, command);
      HandleRun run = RunHandle(app, state, command);
      report.checks_run++;
      if (!run.guards_ok) {
        return fail("guard zone clobbered in a sequence");
      }
      if (spec.has_value()) {
        if (run.state != spec->first || run.response != spec->second) {
          return fail("sequence step diverges from the specification");
        }
        state = spec->first;
      } else {
        if (run.state != state || run.response != app.EncodeResponseNone()) {
          return fail("sequence None-case diverges");
        }
      }
    }
  }

  return report;
}

}  // namespace parfait::starling
