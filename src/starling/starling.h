// Starling: the software-verification framework (section 4).
//
// The paper encodes the lockstep property as the pre/postcondition of the Low* handle
// function (figure 7) and discharges it with F*. Here the same property is discharged
// by machine-checked property testing against the natively compiled firmware handle:
//   - figure 6(a): on decodable commands, handle() transforms the encoded state and
//     produces the encoded response that the specification step dictates;
//   - figure 6(b): on undecodable commands, the state is byte-identical and the
//     response is the canonical encode_response(None);
//   - memory safety (the Stack-effect guarantees of Low*): handle() never touches
//     bytes outside its three buffers, checked with guard zones;
//   - determinism: the response is a function of (state, command) alone.
#ifndef PARFAIT_STARLING_STARLING_H_
#define PARFAIT_STARLING_STARLING_H_

#include <cstdint>
#include <optional>
#include <string>

#include "src/hsm/app.h"
#include "src/support/telemetry.h"

namespace parfait::starling {

struct StarlingOptions {
  int valid_trials = 32;      // Figure 6(a) checks.
  int invalid_trials = 64;    // Figure 6(b) checks.
  int sequence_trials = 4;    // Multi-step reachable-state sequences.
  int sequence_length = 8;
  uint64_t seed = 1234;
  // Trials run concurrently on this many threads (0 = all hardware threads). Each
  // trial owns a SplitSeed-derived RNG stream and failures settle on the lowest
  // trial index, so the report is bit-identical at every thread count.
  int num_threads = 0;
};

struct StarlingReport {
  bool ok = true;
  std::string failure;
  int checks_run = 0;
  // Per-run counters and histograms (starling/trials/*, starling/checks,
  // starling/guard_zone_checks, ...), folded in trial-index order over the trials
  // that count — bit-identical at every thread count.
  telemetry::TelemetrySnapshot telemetry;
  // On failure: the replayable counterexample (seed, trial index, state/command hex).
  std::optional<telemetry::Evidence> evidence;
};

// Runs the full Starling check suite for an application.
StarlingReport CheckApp(const hsm::App& app, const StarlingOptions& options = {});

}  // namespace parfait::starling

#endif  // PARFAIT_STARLING_STARLING_H_
