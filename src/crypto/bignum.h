// 256-bit constant-time bignum arithmetic with Montgomery multiplication.
//
// This is the host-level arithmetic core beneath P-256 (field and scalar arithmetic).
// Everything here is branch-free with respect to operand values: control flow and memory
// access patterns depend only on sizes, never on the data, mirroring the HACL* bignum
// discipline that the paper's ECDSA HSM reuses (section 7.1). The MiniC firmware port in
// firmware/ follows this file operation-for-operation, which is what makes the
// Starling/Knox2 differential checks meaningful.
#ifndef PARFAIT_CRYPTO_BIGNUM_H_
#define PARFAIT_CRYPTO_BIGNUM_H_

#include <array>
#include <cstdint>
#include <span>

namespace parfait::crypto {

// A 256-bit unsigned integer as 8 little-endian 32-bit limbs.
struct Bn256 {
  std::array<uint32_t, 8> limb{};

  static Bn256 Zero() { return Bn256{}; }
  static Bn256 One() {
    Bn256 r;
    r.limb[0] = 1;
    return r;
  }
  // Big-endian 32-byte conversions (the crypto wire format).
  static Bn256 FromBytes(std::span<const uint8_t, 32> bytes);
  void ToBytes(std::span<uint8_t, 32> out) const;

  friend bool operator==(const Bn256& a, const Bn256& b) = default;
};

// r = a + b, returns the carry-out (0 or 1). Constant time.
uint32_t BnAdd(Bn256& r, const Bn256& a, const Bn256& b);

// r = a - b, returns the borrow-out (0 or 1). Constant time.
uint32_t BnSub(Bn256& r, const Bn256& a, const Bn256& b);

// Returns an all-ones mask if a >= b else 0. Constant time.
uint32_t BnGeMask(const Bn256& a, const Bn256& b);

// Returns an all-ones mask if a == 0 else 0. Constant time.
uint32_t BnIsZeroMask(const Bn256& a);

// r = mask ? a : r, where mask is 0 or all-ones. Constant time.
void BnCmov(Bn256& r, const Bn256& a, uint32_t mask);

// Montgomery context for an odd 256-bit modulus.
class Monty {
 public:
  // Builds the context: computes n0' = -m^-1 mod 2^32, R mod m, and R^2 mod m.
  explicit Monty(const Bn256& modulus);

  const Bn256& modulus() const { return m_; }
  const Bn256& r_mod_m() const { return r_; }     // The Montgomery representation of 1.
  const Bn256& rr_mod_m() const { return rr_; }   // Used by ToMont.

  // Montgomery product: returns a*b*R^-1 mod m. Inputs must be < m. Constant time.
  Bn256 Mul(const Bn256& a, const Bn256& b) const;

  // Converts into / out of the Montgomery domain.
  Bn256 ToMont(const Bn256& a) const { return Mul(a, rr_); }
  Bn256 FromMont(const Bn256& a) const { return Mul(a, Bn256::One()); }

  // Modular add/sub (operands and results < m, not Montgomery-specific). Constant time.
  Bn256 Add(const Bn256& a, const Bn256& b) const;
  Bn256 Sub(const Bn256& a, const Bn256& b) const;

  // Montgomery exponentiation with a *public* exponent (square-and-multiply; the
  // exponent's bit pattern may influence timing, which is fine because the exponents
  // used here — p-2 and n-2 for Fermat inversion — are public constants).
  Bn256 Pow(const Bn256& base_mont, const Bn256& public_exponent) const;

  // Modular inverse via Fermat's little theorem; modulus must be prime.
  // Input and output are in the Montgomery domain.
  Bn256 Inverse(const Bn256& a_mont) const;

  // Reduces a full-range 256-bit value into [0, m) (at most two conditional subtracts;
  // valid for the P-256 moduli where m > 2^254). Constant time.
  Bn256 Reduce(const Bn256& a) const;

 private:
  Bn256 m_;
  Bn256 r_;
  Bn256 rr_;
  uint32_t n0inv_ = 0;  // -m^-1 mod 2^32.
};

}  // namespace parfait::crypto

#endif  // PARFAIT_CRYPTO_BIGNUM_H_
