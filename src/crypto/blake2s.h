// BLAKE2s (RFC 7693), 256-bit output, with optional key (used in keyed mode by the
// password-hashing HSM's HMAC-Blake2s construction, figure 12).
#ifndef PARFAIT_CRYPTO_BLAKE2S_H_
#define PARFAIT_CRYPTO_BLAKE2S_H_

#include <array>
#include <cstdint>
#include <span>

#include "src/support/bytes.h"

namespace parfait::crypto {

class Blake2s {
 public:
  static constexpr size_t kDigestSize = 32;
  static constexpr size_t kBlockSize = 64;

  Blake2s();

  void Update(std::span<const uint8_t> data);
  std::array<uint8_t, kDigestSize> Final();

  static std::array<uint8_t, kDigestSize> Hash(std::span<const uint8_t> data);

 private:
  void Compress(const uint8_t* block, bool is_last);

  std::array<uint32_t, 8> h_;
  std::array<uint8_t, kBlockSize> buffer_;
  size_t buffer_len_ = 0;
  uint64_t counter_ = 0;
};

}  // namespace parfait::crypto

#endif  // PARFAIT_CRYPTO_BLAKE2S_H_
