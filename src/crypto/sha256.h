// SHA-256 (FIPS 180-4).
//
// This is the host-level reference implementation, used by the application
// specifications (figure 4's `hmac SHA2_256`) and by the test oracles that validate the
// MiniC firmware port. It is written constant-time with respect to the message contents
// (data-independent control flow and memory addressing), matching the HACL* discipline
// the paper builds on.
#ifndef PARFAIT_CRYPTO_SHA256_H_
#define PARFAIT_CRYPTO_SHA256_H_

#include <array>
#include <cstdint>
#include <span>

#include "src/support/bytes.h"

namespace parfait::crypto {

class Sha256 {
 public:
  static constexpr size_t kDigestSize = 32;
  static constexpr size_t kBlockSize = 64;

  Sha256();

  void Update(std::span<const uint8_t> data);
  std::array<uint8_t, kDigestSize> Final();

  // One-shot convenience.
  static std::array<uint8_t, kDigestSize> Hash(std::span<const uint8_t> data);

 private:
  void Compress(const uint8_t* block);

  std::array<uint32_t, 8> state_;
  std::array<uint8_t, kBlockSize> buffer_;
  size_t buffer_len_ = 0;
  uint64_t total_len_ = 0;
};

}  // namespace parfait::crypto

#endif  // PARFAIT_CRYPTO_SHA256_H_
