#include "src/crypto/ecdsa.h"

#include <cstring>

#include "src/crypto/p256.h"
#include "src/support/bytes.h"

namespace parfait::crypto {

namespace {

// Returns an all-ones mask iff 1 <= a < n.
uint32_t InRangeMask(const Bn256& a, const Bn256& n) {
  uint32_t nonzero = ~BnIsZeroMask(a);
  uint32_t below = ~BnGeMask(a, n);
  return nonzero & below;
}

}  // namespace

bool EcdsaSign(std::span<const uint8_t, 32> message, std::span<const uint8_t, 32> private_key,
               std::span<const uint8_t, 32> nonce, EcdsaSignature* sig) {
  const P256& curve = P256::Get();
  const Monty& sc = curve.scalar();

  Bn256 d = Bn256::FromBytes(private_key);
  Bn256 k = Bn256::FromBytes(nonce);
  Bn256 z = sc.Reduce(Bn256::FromBytes(message));

  uint32_t ok = InRangeMask(d, curve.order()) & InRangeMask(k, curve.order());

  // Substitute 1 for out-of-range secrets so the remaining computation is well-defined;
  // the result is discarded via the mask, keeping the whole path constant-time
  // (section 7.1's compute-then-mask discipline).
  Bn256 one = Bn256::One();
  Bn256 d_eff = d;
  Bn256 k_eff = k;
  BnCmov(d_eff, one, ~ok);
  BnCmov(k_eff, one, ~ok);

  P256Point big_r = curve.ScalarBaseMul(k_eff);
  Bn256 rx;
  Bn256 ry;
  curve.ToAffine(big_r, &rx, &ry);
  Bn256 r = sc.Reduce(rx);
  ok &= ~BnIsZeroMask(r);

  // s = k^-1 (z + r d) mod n, all in the Montgomery domain of n.
  Bn256 km = sc.ToMont(k_eff);
  Bn256 kinv = sc.Inverse(km);
  Bn256 rm = sc.ToMont(r);
  Bn256 dm = sc.ToMont(d_eff);
  Bn256 zm = sc.ToMont(z);
  Bn256 sm = sc.Mul(kinv, sc.Add(zm, sc.Mul(rm, dm)));
  Bn256 s = sc.FromMont(sm);
  ok &= ~BnIsZeroMask(s);

  uint8_t mask = static_cast<uint8_t>(ok & 0xff);
  std::array<uint8_t, 32> r_bytes;
  std::array<uint8_t, 32> s_bytes;
  r.ToBytes(r_bytes);
  s.ToBytes(s_bytes);
  for (int i = 0; i < 32; i++) {
    sig->r[i] = static_cast<uint8_t>(r_bytes[i] & mask);
    sig->s[i] = static_cast<uint8_t>(s_bytes[i] & mask);
  }
  return ok != 0;
}

bool EcdsaPublicKey(std::span<const uint8_t, 32> private_key, std::span<uint8_t, 32> pub_x,
                    std::span<uint8_t, 32> pub_y) {
  const P256& curve = P256::Get();
  Bn256 d = Bn256::FromBytes(private_key);
  if (InRangeMask(d, curve.order()) == 0) {
    return false;
  }
  P256Point q = curve.ScalarBaseMul(d);
  Bn256 x;
  Bn256 y;
  uint32_t finite = curve.ToAffine(q, &x, &y);
  x.ToBytes(pub_x);
  y.ToBytes(pub_y);
  return finite != 0;
}

bool EcdsaVerify(std::span<const uint8_t, 32> message, std::span<const uint8_t, 32> pub_x,
                 std::span<const uint8_t, 32> pub_y, const EcdsaSignature& sig) {
  const P256& curve = P256::Get();
  const Monty& sc = curve.scalar();

  Bn256 r = Bn256::FromBytes(std::span<const uint8_t, 32>(sig.r));
  Bn256 s = Bn256::FromBytes(std::span<const uint8_t, 32>(sig.s));
  if (InRangeMask(r, curve.order()) == 0 || InRangeMask(s, curve.order()) == 0) {
    return false;
  }
  Bn256 qx = Bn256::FromBytes(pub_x);
  Bn256 qy = Bn256::FromBytes(pub_y);
  if (curve.IsOnCurve(qx, qy) == 0) {
    return false;
  }
  Bn256 z = sc.Reduce(Bn256::FromBytes(message));

  Bn256 sm = sc.ToMont(s);
  Bn256 w = sc.Inverse(sm);
  Bn256 u1 = sc.FromMont(sc.Mul(sc.ToMont(z), w));
  Bn256 u2 = sc.FromMont(sc.Mul(sc.ToMont(r), w));

  P256Point q = curve.FromAffine(qx, qy);
  P256Point p1 = curve.ScalarBaseMul(u1);
  P256Point p2 = curve.ScalarMul(u2, q);
  P256Point sum = curve.Add(p1, p2);
  Bn256 x;
  Bn256 y;
  if (curve.ToAffine(sum, &x, &y) == 0) {
    return false;
  }
  Bn256 v = sc.Reduce(x);
  Bn256 diff;
  BnSub(diff, v, r);
  return BnIsZeroMask(diff) != 0;
}

}  // namespace parfait::crypto
