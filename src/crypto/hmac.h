// HMAC (RFC 2104) generic over the hash functions in this library.
//
// Both case-study HSM specifications use HMAC directly from the crypto substrate:
// the ECDSA signer derives nonces with HMAC-SHA256 (figure 4) and the password hasher
// computes HMAC-Blake2s over the password (figure 12).
#ifndef PARFAIT_CRYPTO_HMAC_H_
#define PARFAIT_CRYPTO_HMAC_H_

#include <array>
#include <cstdint>
#include <cstring>
#include <span>

#include "src/crypto/blake2s.h"
#include "src/crypto/sha256.h"

namespace parfait::crypto {

// H must expose kDigestSize, kBlockSize, Update, Final, and a default constructor.
template <typename H>
std::array<uint8_t, H::kDigestSize> Hmac(std::span<const uint8_t> key,
                                         std::span<const uint8_t> data) {
  std::array<uint8_t, H::kBlockSize> k0{};
  if (key.size() > H::kBlockSize) {
    H kh;
    kh.Update(key);
    auto kd = kh.Final();
    std::memcpy(k0.data(), kd.data(), kd.size());
  } else {
    std::memcpy(k0.data(), key.data(), key.size());
  }
  std::array<uint8_t, H::kBlockSize> ipad;
  std::array<uint8_t, H::kBlockSize> opad;
  for (size_t i = 0; i < H::kBlockSize; i++) {
    ipad[i] = static_cast<uint8_t>(k0[i] ^ 0x36);
    opad[i] = static_cast<uint8_t>(k0[i] ^ 0x5c);
  }
  H inner;
  inner.Update(ipad);
  inner.Update(data);
  auto inner_digest = inner.Final();
  H outer;
  outer.Update(opad);
  outer.Update(inner_digest);
  return outer.Final();
}

inline std::array<uint8_t, 32> HmacSha256(std::span<const uint8_t> key,
                                          std::span<const uint8_t> data) {
  return Hmac<Sha256>(key, data);
}

inline std::array<uint8_t, 32> HmacBlake2s(std::span<const uint8_t> key,
                                           std::span<const uint8_t> data) {
  return Hmac<Blake2s>(key, data);
}

}  // namespace parfait::crypto

#endif  // PARFAIT_CRYPTO_HMAC_H_
