// NIST P-256 (secp256r1) group arithmetic in Jacobian coordinates.
//
// All curve operations are branch-free with respect to secret data: point addition
// computes every case (general add, doubling, infinity) and selects the right one with
// constant-time masks, and scalar multiplication is a fixed 256-iteration
// double-and-add-always ladder. This matches the constant-time requirements the paper
// imposes on the ECDSA HSM's handle function (sections 2 and 7.1).
#ifndef PARFAIT_CRYPTO_P256_H_
#define PARFAIT_CRYPTO_P256_H_

#include <cstdint>

#include "src/crypto/bignum.h"

namespace parfait::crypto {

// A Jacobian-coordinate point with coordinates in the Montgomery domain of the field
// prime. The point at infinity is represented by Z == 0.
struct P256Point {
  Bn256 x;
  Bn256 y;
  Bn256 z;
};

class P256 {
 public:
  // Returns the process-wide curve context (constants are computed once).
  static const P256& Get();

  const Monty& field() const { return field_; }    // Arithmetic mod p.
  const Monty& scalar() const { return scalar_; }  // Arithmetic mod n (group order).
  const Bn256& order() const { return scalar_.modulus(); }
  const P256Point& generator() const { return g_; }
  const Bn256& b_mont() const { return b_mont_; }

  P256Point Infinity() const;

  // Point doubling and complete-by-masking addition (handles P==Q, P==-Q, infinity).
  P256Point Double(const P256Point& p) const;
  P256Point Add(const P256Point& p, const P256Point& q) const;

  // Constant-time scalar multiplication: k in [0, 2^256), point in Jacobian/Montgomery
  // form. Runs exactly 256 ladder iterations regardless of k.
  P256Point ScalarMul(const Bn256& k, const P256Point& p) const;
  P256Point ScalarBaseMul(const Bn256& k) const { return ScalarMul(k, g_); }

  // Converts to affine coordinates (out of the Montgomery domain). Returns an all-ones
  // mask if the point was finite, 0 if it was infinity (outputs are zero then).
  uint32_t ToAffine(const P256Point& p, Bn256* x, Bn256* y) const;

  // Builds a Jacobian/Montgomery point from affine coordinates (not validated).
  P256Point FromAffine(const Bn256& x, const Bn256& y) const;

  // Returns an all-ones mask if (x, y) is on the curve: y^2 == x^3 - 3x + b (mod p).
  uint32_t IsOnCurve(const Bn256& x, const Bn256& y) const;

 private:
  P256();

  Monty field_;
  Monty scalar_;
  P256Point g_;
  Bn256 b_mont_;
  Bn256 three_mont_;
};

}  // namespace parfait::crypto

#endif  // PARFAIT_CRYPTO_P256_H_
