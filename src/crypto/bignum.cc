#include "src/crypto/bignum.h"

#include "src/support/bytes.h"
#include "src/support/status.h"

namespace parfait::crypto {

Bn256 Bn256::FromBytes(std::span<const uint8_t, 32> bytes) {
  Bn256 r;
  for (int i = 0; i < 8; i++) {
    r.limb[i] = LoadBe32(bytes.data() + 4 * (7 - i));
  }
  return r;
}

void Bn256::ToBytes(std::span<uint8_t, 32> out) const {
  for (int i = 0; i < 8; i++) {
    StoreBe32(out.data() + 4 * (7 - i), limb[i]);
  }
}

uint32_t BnAdd(Bn256& r, const Bn256& a, const Bn256& b) {
  uint64_t carry = 0;
  for (int i = 0; i < 8; i++) {
    uint64_t t = static_cast<uint64_t>(a.limb[i]) + b.limb[i] + carry;
    r.limb[i] = static_cast<uint32_t>(t);
    carry = t >> 32;
  }
  return static_cast<uint32_t>(carry);
}

uint32_t BnSub(Bn256& r, const Bn256& a, const Bn256& b) {
  uint64_t borrow = 0;
  for (int i = 0; i < 8; i++) {
    uint64_t t = static_cast<uint64_t>(a.limb[i]) - b.limb[i] - borrow;
    r.limb[i] = static_cast<uint32_t>(t);
    borrow = (t >> 32) & 1;
  }
  return static_cast<uint32_t>(borrow);
}

uint32_t BnGeMask(const Bn256& a, const Bn256& b) {
  Bn256 scratch;
  uint32_t borrow = BnSub(scratch, a, b);
  // a >= b iff subtraction did not borrow.
  return borrow - 1;  // borrow==0 -> 0xffffffff, borrow==1 -> 0.
}

uint32_t BnIsZeroMask(const Bn256& a) {
  uint32_t acc = 0;
  for (int i = 0; i < 8; i++) {
    acc |= a.limb[i];
  }
  // acc == 0 -> all-ones.
  uint32_t nonzero = (acc | (0u - acc)) >> 31;  // 1 if acc != 0.
  return nonzero - 1;
}

void BnCmov(Bn256& r, const Bn256& a, uint32_t mask) {
  for (int i = 0; i < 8; i++) {
    r.limb[i] = (a.limb[i] & mask) | (r.limb[i] & ~mask);
  }
}

Monty::Monty(const Bn256& modulus) : m_(modulus) {
  PARFAIT_CHECK_MSG((m_.limb[0] & 1) != 0, "Montgomery modulus must be odd");
  // n0' = -m^-1 mod 2^32 via Newton's iteration: x_{k+1} = x_k * (2 - m*x_k).
  uint32_t m0 = m_.limb[0];
  uint32_t inv = m0;  // Correct to 3 bits (odd m0: m0*m0 = 1 mod 8).
  for (int i = 0; i < 4; i++) {
    inv *= 2 - m0 * inv;
  }
  n0inv_ = 0u - inv;
  // R mod m: shift 1 left 256 times with conditional subtracts.
  Bn256 r = Bn256::One();
  for (int i = 0; i < 256; i++) {
    uint32_t carry = BnAdd(r, r, r);
    Bn256 reduced;
    uint32_t borrow = BnSub(reduced, r, m_);
    // Keep the reduced value if the doubled value overflowed 2^256 or is >= m.
    uint32_t keep = (carry | (1 - borrow)) ? 0xffffffffu : 0;
    BnCmov(r, reduced, keep);
  }
  r_ = r;
  // R^2 mod m: shift R mod m left another 256 times.
  Bn256 rr = r_;
  for (int i = 0; i < 256; i++) {
    uint32_t carry = BnAdd(rr, rr, rr);
    Bn256 reduced;
    uint32_t borrow = BnSub(reduced, rr, m_);
    uint32_t keep = (carry | (1 - borrow)) ? 0xffffffffu : 0;
    BnCmov(rr, reduced, keep);
  }
  rr_ = rr;
}

Bn256 Monty::Mul(const Bn256& a, const Bn256& b) const {
  // CIOS (coarsely integrated operand scanning) Montgomery multiplication with
  // 32-bit limbs. t has 8 limbs plus a two-limb extension for the running carry.
  uint32_t t[10] = {0};
  for (int i = 0; i < 8; i++) {
    // t += a * b[i]
    uint64_t carry = 0;
    uint32_t bi = b.limb[i];
    for (int j = 0; j < 8; j++) {
      uint64_t v = static_cast<uint64_t>(a.limb[j]) * bi + t[j] + carry;
      t[j] = static_cast<uint32_t>(v);
      carry = v >> 32;
    }
    uint64_t v = static_cast<uint64_t>(t[8]) + carry;
    t[8] = static_cast<uint32_t>(v);
    t[9] = static_cast<uint32_t>(v >> 32);
    // m = t[0] * n0' mod 2^32; t += m * modulus; t >>= 32.
    uint32_t m = t[0] * n0inv_;
    carry = 0;
    for (int j = 0; j < 8; j++) {
      uint64_t w = static_cast<uint64_t>(m) * m_.limb[j] + t[j] + carry;
      if (j > 0) {
        t[j - 1] = static_cast<uint32_t>(w);
      }
      carry = w >> 32;
    }
    uint64_t w = static_cast<uint64_t>(t[8]) + carry;
    t[7] = static_cast<uint32_t>(w);
    t[8] = t[9] + static_cast<uint32_t>(w >> 32);
    t[9] = 0;
  }
  Bn256 r;
  for (int i = 0; i < 8; i++) {
    r.limb[i] = t[i];
  }
  // Final conditional subtract: result may be in [0, 2m).
  Bn256 reduced;
  uint32_t borrow = BnSub(reduced, r, m_);
  uint32_t keep = (t[8] != 0 || borrow == 0) ? 0xffffffffu : 0;
  BnCmov(r, reduced, keep);
  return r;
}

Bn256 Monty::Add(const Bn256& a, const Bn256& b) const {
  Bn256 r;
  uint32_t carry = BnAdd(r, a, b);
  Bn256 reduced;
  uint32_t borrow = BnSub(reduced, r, m_);
  uint32_t keep = (carry | (1 - borrow)) ? 0xffffffffu : 0;
  BnCmov(r, reduced, keep);
  return r;
}

Bn256 Monty::Sub(const Bn256& a, const Bn256& b) const {
  Bn256 r;
  uint32_t borrow = BnSub(r, a, b);
  Bn256 fixed;
  BnAdd(fixed, r, m_);
  uint32_t underflowed = 0u - borrow;  // all-ones iff a < b.
  BnCmov(r, fixed, underflowed);
  return r;
}

Bn256 Monty::Pow(const Bn256& base_mont, const Bn256& public_exponent) const {
  Bn256 acc = r_;  // 1 in the Montgomery domain.
  for (int i = 255; i >= 0; i--) {
    acc = Mul(acc, acc);
    uint32_t bit = (public_exponent.limb[i / 32] >> (i % 32)) & 1;
    if (bit != 0) {
      acc = Mul(acc, base_mont);
    }
  }
  return acc;
}

Bn256 Monty::Inverse(const Bn256& a_mont) const {
  Bn256 exp = m_;
  Bn256 two = Bn256::Zero();
  two.limb[0] = 2;
  BnSub(exp, m_, two);  // m - 2; modulus is prime, so no borrow.
  return Pow(a_mont, exp);
}

Bn256 Monty::Reduce(const Bn256& a) const {
  Bn256 r = a;
  for (int pass = 0; pass < 2; pass++) {
    Bn256 reduced;
    uint32_t borrow = BnSub(reduced, r, m_);
    uint32_t keep = 0u - (1 - borrow);
    BnCmov(r, reduced, keep);
  }
  return r;
}

}  // namespace parfait::crypto
