#include "src/crypto/blake2s.h"

#include <cstring>

namespace parfait::crypto {

namespace {

constexpr uint32_t kIv[8] = {0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a,
                             0x510e527f, 0x9b05688c, 0x1f83d9ab, 0x5be0cd19};

constexpr uint8_t kSigma[10][16] = {
    {0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15},
    {14, 10, 4, 8, 9, 15, 13, 6, 1, 12, 0, 2, 11, 7, 5, 3},
    {11, 8, 12, 0, 5, 2, 15, 13, 10, 14, 3, 6, 7, 1, 9, 4},
    {7, 9, 3, 1, 13, 12, 11, 14, 2, 6, 5, 10, 4, 0, 15, 8},
    {9, 0, 5, 7, 2, 4, 10, 15, 14, 1, 11, 12, 6, 8, 3, 13},
    {2, 12, 6, 10, 0, 11, 8, 3, 4, 13, 7, 5, 15, 14, 1, 9},
    {12, 5, 1, 15, 14, 13, 4, 10, 0, 7, 6, 3, 9, 2, 8, 11},
    {13, 11, 7, 14, 12, 1, 3, 9, 5, 0, 15, 4, 8, 6, 2, 10},
    {6, 15, 14, 9, 11, 3, 0, 8, 12, 2, 13, 7, 1, 4, 10, 5},
    {10, 2, 8, 4, 7, 6, 1, 5, 15, 11, 9, 14, 3, 12, 13, 0},
};

inline uint32_t Rotr(uint32_t x, unsigned n) { return (x >> n) | (x << (32 - n)); }

inline void G(uint32_t* v, int a, int b, int c, int d, uint32_t x, uint32_t y) {
  v[a] = v[a] + v[b] + x;
  v[d] = Rotr(v[d] ^ v[a], 16);
  v[c] = v[c] + v[d];
  v[b] = Rotr(v[b] ^ v[c], 12);
  v[a] = v[a] + v[b] + y;
  v[d] = Rotr(v[d] ^ v[a], 8);
  v[c] = v[c] + v[d];
  v[b] = Rotr(v[b] ^ v[c], 7);
}

}  // namespace

Blake2s::Blake2s() {
  for (int i = 0; i < 8; i++) {
    h_[i] = kIv[i];
  }
  // Parameter block: digest length 32, no key, fanout 1, depth 1.
  h_[0] ^= 0x01010000 ^ kDigestSize;
}

void Blake2s::Compress(const uint8_t* block, bool is_last) {
  uint32_t m[16];
  for (int i = 0; i < 16; i++) {
    m[i] = LoadLe32(block + 4 * i);
  }
  uint32_t v[16];
  for (int i = 0; i < 8; i++) {
    v[i] = h_[i];
    v[i + 8] = kIv[i];
  }
  v[12] ^= static_cast<uint32_t>(counter_);
  v[13] ^= static_cast<uint32_t>(counter_ >> 32);
  if (is_last) {
    v[14] = ~v[14];
  }
  for (int r = 0; r < 10; r++) {
    const uint8_t* s = kSigma[r];
    G(v, 0, 4, 8, 12, m[s[0]], m[s[1]]);
    G(v, 1, 5, 9, 13, m[s[2]], m[s[3]]);
    G(v, 2, 6, 10, 14, m[s[4]], m[s[5]]);
    G(v, 3, 7, 11, 15, m[s[6]], m[s[7]]);
    G(v, 0, 5, 10, 15, m[s[8]], m[s[9]]);
    G(v, 1, 6, 11, 12, m[s[10]], m[s[11]]);
    G(v, 2, 7, 8, 13, m[s[12]], m[s[13]]);
    G(v, 3, 4, 9, 14, m[s[14]], m[s[15]]);
  }
  for (int i = 0; i < 8; i++) {
    h_[i] ^= v[i] ^ v[i + 8];
  }
}

void Blake2s::Update(std::span<const uint8_t> data) {
  size_t offset = 0;
  while (offset < data.size()) {
    // Only flush a full buffer when more input follows: the final block must be
    // compressed with the last-block flag set, so it stays buffered until Final().
    if (buffer_len_ == kBlockSize) {
      counter_ += kBlockSize;
      Compress(buffer_.data(), /*is_last=*/false);
      buffer_len_ = 0;
    }
    size_t take = std::min(kBlockSize - buffer_len_, data.size() - offset);
    std::memcpy(buffer_.data() + buffer_len_, data.data() + offset, take);
    buffer_len_ += take;
    offset += take;
  }
}

std::array<uint8_t, Blake2s::kDigestSize> Blake2s::Final() {
  counter_ += buffer_len_;
  std::memset(buffer_.data() + buffer_len_, 0, kBlockSize - buffer_len_);
  Compress(buffer_.data(), /*is_last=*/true);
  std::array<uint8_t, kDigestSize> digest;
  for (int i = 0; i < 8; i++) {
    StoreLe32(digest.data() + 4 * i, h_[i]);
  }
  return digest;
}

std::array<uint8_t, Blake2s::kDigestSize> Blake2s::Hash(std::span<const uint8_t> data) {
  Blake2s h;
  h.Update(data);
  return h.Final();
}

}  // namespace parfait::crypto
