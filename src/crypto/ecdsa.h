// ECDSA over P-256 with caller-supplied deterministic nonces.
//
// The paper's ECDSA HSM (figure 4) derives each signing nonce as HMAC-SHA256(prf_key,
// counter) and signs the 32-byte message directly (HACL*'s `ecdsa_signature_agile
// NoHash`). Signing here follows the leakage discipline of section 7.1: the signature
// is computed unconditionally and the output is masked with 0xff/0x00 depending on
// whether all validity checks passed, so failure reasons are indistinguishable.
#ifndef PARFAIT_CRYPTO_ECDSA_H_
#define PARFAIT_CRYPTO_ECDSA_H_

#include <array>
#include <cstdint>
#include <span>

#include "src/crypto/bignum.h"

namespace parfait::crypto {

struct EcdsaSignature {
  std::array<uint8_t, 32> r;
  std::array<uint8_t, 32> s;
};

// Signs a 32-byte pre-hashed message with the given private key and nonce, both 32-byte
// big-endian scalars. Returns true and fills *sig on success; on failure (key or nonce
// out of range [1, n-1], or r == 0 or s == 0) returns false with *sig zeroed. The
// computation runs in constant time either way.
bool EcdsaSign(std::span<const uint8_t, 32> message, std::span<const uint8_t, 32> private_key,
               std::span<const uint8_t, 32> nonce, EcdsaSignature* sig);

// Derives the affine public key (x, y), each 32 bytes big-endian, from a private key.
// Returns false if the private key is out of range.
bool EcdsaPublicKey(std::span<const uint8_t, 32> private_key, std::span<uint8_t, 32> pub_x,
                    std::span<uint8_t, 32> pub_y);

// Verifies a signature against a 32-byte message and an affine public key.
bool EcdsaVerify(std::span<const uint8_t, 32> message, std::span<const uint8_t, 32> pub_x,
                 std::span<const uint8_t, 32> pub_y, const EcdsaSignature& sig);

}  // namespace parfait::crypto

#endif  // PARFAIT_CRYPTO_ECDSA_H_
