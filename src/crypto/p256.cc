#include "src/crypto/p256.h"

#include <span>

#include "src/support/bytes.h"
#include "src/support/status.h"

namespace parfait::crypto {

namespace {

Bn256 FromHexBn(const char* hex) {
  Bytes bytes = FromHex(hex);
  PARFAIT_CHECK(bytes.size() == 32);
  return Bn256::FromBytes(std::span<const uint8_t, 32>(bytes.data(), 32));
}

// NIST P-256 domain parameters.
const char kP[] = "ffffffff00000001000000000000000000000000ffffffffffffffffffffffff";
const char kN[] = "ffffffff00000000ffffffffffffffffbce6faada7179e84f3b9cac2fc632551";
const char kB[] = "5ac635d8aa3a93e7b3ebbd55769886bc651d06b0cc53b0f63bce3c3e27d2604b";
const char kGx[] = "6b17d1f2e12c4247f8bce6e563a440f277037d812deb33a0f4a13945d898c296";
const char kGy[] = "4fe342e2fe1a7f9b8ee7eb4a7c0f9e162bce33576b315ececbb6406837bf51f5";

void PointCmov(P256Point& r, const P256Point& a, uint32_t mask) {
  BnCmov(r.x, a.x, mask);
  BnCmov(r.y, a.y, mask);
  BnCmov(r.z, a.z, mask);
}

}  // namespace

const P256& P256::Get() {
  static const P256 instance;
  return instance;
}

P256::P256() : field_(FromHexBn(kP)), scalar_(FromHexBn(kN)) {
  b_mont_ = field_.ToMont(FromHexBn(kB));
  Bn256 three = Bn256::Zero();
  three.limb[0] = 3;
  three_mont_ = field_.ToMont(three);
  g_.x = field_.ToMont(FromHexBn(kGx));
  g_.y = field_.ToMont(FromHexBn(kGy));
  g_.z = field_.r_mod_m();  // 1 in the Montgomery domain.
}

P256Point P256::Infinity() const {
  P256Point p;
  p.x = field_.r_mod_m();
  p.y = field_.r_mod_m();
  p.z = Bn256::Zero();
  return p;
}

P256Point P256::Double(const P256Point& p) const {
  const Monty& f = field_;
  // "dbl-2001-b" for a = -3. Doubling infinity stays at infinity because Z3 is a
  // multiple of Z1.
  Bn256 delta = f.Mul(p.z, p.z);
  Bn256 gamma = f.Mul(p.y, p.y);
  Bn256 beta = f.Mul(p.x, gamma);
  Bn256 t0 = f.Sub(p.x, delta);
  Bn256 t1 = f.Add(p.x, delta);
  Bn256 t2 = f.Mul(t0, t1);
  Bn256 alpha = f.Add(f.Add(t2, t2), t2);  // 3 * (X - delta) * (X + delta).
  Bn256 beta2 = f.Add(beta, beta);
  Bn256 beta4 = f.Add(beta2, beta2);
  Bn256 beta8 = f.Add(beta4, beta4);
  P256Point r;
  r.x = f.Sub(f.Mul(alpha, alpha), beta8);
  Bn256 yz = f.Add(p.y, p.z);
  r.z = f.Sub(f.Sub(f.Mul(yz, yz), gamma), delta);
  Bn256 gamma2 = f.Mul(gamma, gamma);
  Bn256 g2x2 = f.Add(gamma2, gamma2);
  Bn256 g2x4 = f.Add(g2x2, g2x2);
  Bn256 g2x8 = f.Add(g2x4, g2x4);
  r.y = f.Sub(f.Mul(alpha, f.Sub(beta4, r.x)), g2x8);
  return r;
}

P256Point P256::Add(const P256Point& p, const P256Point& q) const {
  const Monty& f = field_;
  // General Jacobian addition; the degenerate cases (either operand at infinity, P == Q,
  // P == -Q) are computed alongside and merged with constant-time selects so the
  // operation is complete without data-dependent branches.
  Bn256 z1z1 = f.Mul(p.z, p.z);
  Bn256 z2z2 = f.Mul(q.z, q.z);
  Bn256 u1 = f.Mul(p.x, z2z2);
  Bn256 u2 = f.Mul(q.x, z1z1);
  Bn256 s1 = f.Mul(p.y, f.Mul(z2z2, q.z));
  Bn256 s2 = f.Mul(q.y, f.Mul(z1z1, p.z));
  Bn256 h = f.Sub(u2, u1);
  Bn256 rr = f.Sub(s2, s1);
  Bn256 h2 = f.Mul(h, h);
  Bn256 h3 = f.Mul(h2, h);
  Bn256 u1h2 = f.Mul(u1, h2);
  P256Point out;
  Bn256 rr2 = f.Mul(rr, rr);
  out.x = f.Sub(f.Sub(rr2, h3), f.Add(u1h2, u1h2));
  out.y = f.Sub(f.Mul(rr, f.Sub(u1h2, out.x)), f.Mul(s1, h3));
  out.z = f.Mul(f.Mul(p.z, q.z), h);

  uint32_t p_inf = BnIsZeroMask(p.z);
  uint32_t q_inf = BnIsZeroMask(q.z);
  uint32_t h_zero = BnIsZeroMask(h);
  uint32_t r_zero = BnIsZeroMask(rr);
  uint32_t finite = ~p_inf & ~q_inf;

  // Same x-coordinate: either a doubling (same y) or the result is infinity (opposite y).
  P256Point doubled = Double(p);
  PointCmov(out, doubled, finite & h_zero & r_zero);
  P256Point inf = Infinity();
  PointCmov(out, inf, finite & h_zero & ~r_zero);
  PointCmov(out, p, q_inf);
  PointCmov(out, q, p_inf);
  return out;
}

P256Point P256::ScalarMul(const Bn256& k, const P256Point& p) const {
  P256Point acc = Infinity();
  for (int i = 255; i >= 0; i--) {
    acc = Double(acc);
    P256Point sum = Add(acc, p);
    uint32_t bit = (k.limb[i / 32] >> (i % 32)) & 1;
    PointCmov(acc, sum, 0u - bit);
  }
  return acc;
}

uint32_t P256::ToAffine(const P256Point& p, Bn256* x, Bn256* y) const {
  const Monty& f = field_;
  uint32_t finite = ~BnIsZeroMask(p.z);
  Bn256 zinv = f.Inverse(p.z);  // 0 maps to 0; masked out below.
  Bn256 zinv2 = f.Mul(zinv, zinv);
  Bn256 zinv3 = f.Mul(zinv2, zinv);
  Bn256 xm = f.Mul(p.x, zinv2);
  Bn256 ym = f.Mul(p.y, zinv3);
  *x = f.FromMont(xm);
  *y = f.FromMont(ym);
  BnCmov(*x, Bn256::Zero(), ~finite);
  BnCmov(*y, Bn256::Zero(), ~finite);
  return finite;
}

P256Point P256::FromAffine(const Bn256& x, const Bn256& y) const {
  P256Point p;
  p.x = field_.ToMont(x);
  p.y = field_.ToMont(y);
  p.z = field_.r_mod_m();
  return p;
}

uint32_t P256::IsOnCurve(const Bn256& x, const Bn256& y) const {
  const Monty& f = field_;
  Bn256 xm = f.ToMont(x);
  Bn256 ym = f.ToMont(y);
  Bn256 lhs = f.Mul(ym, ym);
  Bn256 x2 = f.Mul(xm, xm);
  Bn256 x3 = f.Mul(x2, xm);
  Bn256 rhs = f.Add(f.Sub(x3, f.Mul(three_mont_, xm)), b_mont_);
  Bn256 diff = f.Sub(lhs, rhs);
  return BnIsZeroMask(diff);
}

}  // namespace parfait::crypto
