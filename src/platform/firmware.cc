#include "src/platform/firmware.h"

#include "src/minicc/compiler.h"

namespace parfait::platform {

std::string ReadFirmwareFile(const std::string& name) {
  return minicc::ReadFileOrDie(std::string(PARFAIT_FIRMWARE_DIR) + "/" + name);
}

std::string SizePrelude(const FirmwareConfig& config) {
  return "enum { STATE_SIZE = " + std::to_string(config.state_size) +
         ", COMMAND_SIZE = " + std::to_string(config.command_size) +
         ", RESPONSE_SIZE = " + std::to_string(config.response_size) + " };\n";
}

Result<riscv::Image> BuildFirmware(const FirmwareConfig& config, riscv::Witness* witness,
                                   std::string* unit_source) {
  // Boot assembly first so ROM starts with _start (not required, but keeps listings
  // readable and reset vectors simple).
  auto boot = riscv::ParseAssembly(ReadFirmwareFile("boot.s"));
  if (!boot.ok()) {
    return Result<riscv::Image>::Error("boot.s: " + boot.error());
  }
  riscv::Program program = std::move(boot).value();
  program.DefineConstant("STACK_TOP", config.ram_base + config.ram_size);
  program.SetSection(riscv::Section::kText);

  // One MiniC translation unit: size prelude + app sources + system software.
  std::string sys_sources = config.sys_sources_override.empty() ? ReadFirmwareFile("sys.c")
                                                               : config.sys_sources_override;
  std::string unit = SizePrelude(config) + config.app_sources + sys_sources;
  if (unit_source != nullptr) {
    *unit_source = unit;
  }
  minicc::CodegenOptions options;
  options.opt_level = config.opt_level;
  options.witness = witness;
  options.mutation = config.mutation;
  auto compiled = minicc::CompileSource(unit, options, &program);
  if (!compiled.ok()) {
    return Result<riscv::Image>::Error(compiled.error());
  }
  return program.Link(config.rom_base, config.ram_base);
}

}  // namespace parfait::platform
