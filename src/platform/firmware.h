// Firmware builder: app MiniC sources + system software + boot code -> linked image.
//
// This is the platform developer's toolchain path from the paper's figure 2: the app
// implementation (handle and its crypto substrate) is compiled together with the
// system software into a single firmware binary, which is then embedded in the SoC
// ROM. The opt_level selects between the O0 (CompCert stand-in) and O2 (GCC stand-in)
// code generators — only O0 output is "verified" in the paper's pipeline; Table 5
// measures what the O2 compiler would buy.
#ifndef PARFAIT_PLATFORM_FIRMWARE_H_
#define PARFAIT_PLATFORM_FIRMWARE_H_

#include <string>

#include "src/minicc/codegen.h"
#include "src/riscv/assembler.h"
#include "src/riscv/witness.h"
#include "src/support/status.h"

namespace parfait::platform {

struct FirmwareConfig {
  // Concatenated MiniC sources for the application: crypto substrate + handle().
  std::string app_sources;
  uint32_t state_size = 0;
  uint32_t command_size = 0;
  uint32_t response_size = 0;
  int opt_level = 0;
  // When non-empty, replaces firmware/sys.c (bug injection for the attack matrix).
  std::string sys_sources_override;
  // Seeded miscompilation for the translation-validator mutation harness.
  minicc::Mutation mutation;
  uint32_t rom_base = 0x00000000;
  uint32_t ram_base = 0x20000000;
  uint32_t ram_size = 128 * 1024;
};

// Compiles app sources + firmware/sys.c + firmware/boot.s and links the image.
// Exposed symbols of note: _start, main, handle, sys_state, sys_cmd, sys_resp.
// When `witness` is non-null it receives the compiler's translation witness; when
// `unit_source` is non-null it receives the exact MiniC translation unit that was
// compiled (prelude + app + sys), which is what the translation validator re-parses.
Result<riscv::Image> BuildFirmware(const FirmwareConfig& config,
                                   riscv::Witness* witness = nullptr,
                                   std::string* unit_source = nullptr);

// Reads a firmware source file from the in-tree firmware/ directory.
std::string ReadFirmwareFile(const std::string& name);

// Returns the prelude (size enums) generated for an app configuration; exposed so
// hosts can compile the same app sources natively with identical constants.
std::string SizePrelude(const FirmwareConfig& config);

}  // namespace parfait::platform

#endif  // PARFAIT_PLATFORM_FIRMWARE_H_
