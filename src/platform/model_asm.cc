#include "src/platform/model_asm.h"

#include <atomic>

#include "src/riscv/translator.h"
#include "src/support/status.h"
#include "src/support/telemetry.h"

namespace parfait::platform {

namespace {

constexpr uint32_t kStackExtension = 1 << 20;  // "Unbounded" stack headroom below RAM.
constexpr uint32_t kRomSize = 256 * 1024;

std::atomic<DecodeCacheMode> g_decode_cache_mode{DecodeCacheMode::kShared};
std::atomic<riscv::Machine::Backend> g_backend{riscv::Machine::DefaultBackend()};
std::atomic<uint64_t> g_next_instance_id{1};

// Thread-local machine reused across Step() calls on the same ModelAsm instance.
// Keyed by the instance id (never reused) plus the cache mode and backend, so a
// destroyed ModelAsm or a knob flip can only cause a rebuild, never a stale hit.
struct TlsStepContext {
  uint64_t instance_id = 0;
  DecodeCacheMode mode = DecodeCacheMode::kShared;
  riscv::Machine::Backend backend = riscv::Machine::Backend::kInterpreter;
  std::unique_ptr<riscv::Machine> machine;
};

// Per-thread decode cache for DecodeCacheMode::kPerThread.
struct TlsThreadCache {
  uint64_t instance_id = 0;
  std::shared_ptr<const riscv::DecodeCache> cache;
};

void FlushPerfCounters(riscv::Machine& m) {
  riscv::Machine::PerfCounters perf = m.TakePerfCounters();
  auto& t = telemetry::Telemetry::Global();
  if (perf.decode_hits > 0) {
    t.Count("machine/decode_hits", perf.decode_hits);
  }
  if (perf.region_cache_hits > 0) {
    t.Count("machine/region_cache_hits", perf.region_cache_hits);
  }
  if (perf.fast_resets > 0) {
    t.Count("machine/fast_resets", perf.fast_resets);
  }
  if (perf.block_translations > 0) {
    t.Count("machine/block_translations", perf.block_translations);
  }
  if (perf.block_hits > 0) {
    t.Count("machine/block_hits", perf.block_hits);
  }
  if (perf.block_invalidations > 0) {
    t.Count("machine/block_invalidations", perf.block_invalidations);
  }
  if (perf.block_links > 0) {
    t.Count("machine/block_links", perf.block_links);
  }
}

}  // namespace

ModelAsm::ModelAsm(const riscv::Image& image, const Sizes& sizes, uint32_t ram_size)
    : image_(image),
      sizes_(sizes),
      ram_size_(ram_size),
      instance_id_(g_next_instance_id.fetch_add(1, std::memory_order_relaxed)) {
  handle_addr_ = image_.SymbolOrDie("handle");
  state_addr_ = image_.SymbolOrDie("sys_state");
  command_addr_ = image_.SymbolOrDie("sys_cmd");
  response_addr_ = image_.SymbolOrDie("sys_resp");
}

void ModelAsm::SetDecodeCacheMode(DecodeCacheMode mode) {
  g_decode_cache_mode.store(mode, std::memory_order_relaxed);
}

DecodeCacheMode ModelAsm::decode_cache_mode() {
  return g_decode_cache_mode.load(std::memory_order_relaxed);
}

void ModelAsm::SetBackend(riscv::Machine::Backend backend) {
  g_backend.store(backend, std::memory_order_relaxed);
}

riscv::Machine::Backend ModelAsm::backend() {
  return g_backend.load(std::memory_order_relaxed);
}

void ModelAsm::FlushMachineCounters(riscv::Machine& m) { FlushPerfCounters(m); }

riscv::Machine ModelAsm::BuildPrototype() const {
  riscv::Machine m;
  uint32_t rom_base = image_.rom_base;
  uint32_t ram_base = image_.ram_base;
  m.AddRegion("rom", rom_base, kRomSize, /*writable=*/false);
  // RAM starts undefined (reading a never-written stack slot yields Vundef); the
  // loader then defines .data and .bss just as the boot code would.
  m.AddRegion("ram", ram_base, ram_size_, /*writable=*/true, /*initially_defined=*/false);
  m.AddRegion("stack_ext", ram_base - kStackExtension, kStackExtension, /*writable=*/true,
              /*initially_defined=*/false);
  m.WriteMemory(rom_base, image_.rom);
  if (image_.data_size > 0) {
    Bytes init = m.ReadMemory(image_.SymbolOrDie("__data_lma"), image_.data_size);
    m.WriteMemory(image_.SymbolOrDie("__data_start"), init);
  }
  uint32_t bss_size = image_.SymbolOrDie("__bss_size");
  if (bss_size > 0) {
    m.WriteMemory(image_.SymbolOrDie("__bss_start"), Bytes(bss_size, 0));
  }
  // Arm the journal after loading: the loader's writes are part of the template, not
  // per-call dirt, so resets must not replay them.
  m.EnableDirtyJournal();
  return m;
}

const riscv::Machine& ModelAsm::Prototype() const {
  std::lock_guard<std::mutex> lock(mu_);
  if (prototype_ == nullptr) {
    prototype_ = std::make_unique<const riscv::Machine>(BuildPrototype());
  }
  return *prototype_;
}

std::shared_ptr<const riscv::DecodeCache> ModelAsm::SharedCache() const {
  std::lock_guard<std::mutex> lock(mu_);
  if (shared_cache_ == nullptr) {
    // Cover the whole ROM region (the image plus its zero padding), so every
    // in-region fetch is a cache hit.
    Bytes rom(kRomSize, 0);
    std::copy(image_.rom.begin(), image_.rom.end(), rom.begin());
    shared_cache_ = std::make_shared<const riscv::DecodeCache>(image_.rom_base, rom);
  }
  return shared_cache_;
}

std::shared_ptr<riscv::SharedTranslationCache> ModelAsm::SharedBlocks() const {
  // SharedCache() takes mu_ itself, so resolve it before locking.
  std::shared_ptr<const riscv::DecodeCache> decode = SharedCache();
  std::lock_guard<std::mutex> lock(mu_);
  if (shared_blocks_ == nullptr) {
    shared_blocks_ = std::make_shared<riscv::SharedTranslationCache>(std::move(decode));
  }
  return shared_blocks_;
}

void ModelAsm::AttachCachePerMode(riscv::Machine& m) const {
  riscv::Machine::Backend be = backend();
  m.SetBackend(be);
  switch (decode_cache_mode()) {
    case DecodeCacheMode::kShared:
      m.AttachDecodeCache(SharedCache());
      if (be == riscv::Machine::Backend::kDBT && riscv::Dbt::Supported()) {
        m.AttachTranslationCache(SharedBlocks());
      }
      break;
    case DecodeCacheMode::kPerThread: {
      thread_local TlsThreadCache tls;
      if (tls.instance_id != instance_id_ || tls.cache == nullptr) {
        Bytes rom(kRomSize, 0);
        std::copy(image_.rom.begin(), image_.rom.end(), rom.begin());
        tls.cache = std::make_shared<const riscv::DecodeCache>(image_.rom_base, rom);
        tls.instance_id = instance_id_;
      }
      m.AttachDecodeCache(tls.cache);
      break;
    }
    case DecodeCacheMode::kOff:
      break;
  }
}

void ModelAsm::LoadCall(riscv::Machine& m, const Bytes& state, const Bytes& command,
                        uint32_t sp_override, uint32_t ra_override) const {
  PARFAIT_CHECK(state.size() == sizes_.state_size);
  PARFAIT_CHECK(command.size() == sizes_.command_size);
  // Load the state and command buffers (figure 8's storebytes calls).
  m.WriteMemory(state_addr_, state);
  m.WriteMemory(command_addr_, command);
  // The response buffer is conceptually freshly allocated; define it as zero.
  m.WriteMemory(response_addr_, Bytes(sizes_.response_size, 0));
  // Set up the call: sp at the top of RAM (or aligned with the circuit's sp), args in
  // a0..a2, ra at the sentinel (or aligned with the circuit's real return address).
  uint32_t ram_base = image_.ram_base;
  m.set_reg(2, riscv::Value::Defined(sp_override != 0 ? sp_override : ram_base + ram_size_));
  m.set_reg(1, riscv::Value::Defined(ra_override != 0 ? ra_override
                                                      : riscv::Machine::kReturnSentinel));
  m.set_reg(10, riscv::Value::Defined(state_addr_));
  m.set_reg(11, riscv::Value::Defined(command_addr_));
  m.set_reg(12, riscv::Value::Defined(response_addr_));
  m.set_pc(handle_addr_);
}

riscv::Machine ModelAsm::PrepareCall(const Bytes& state, const Bytes& command,
                                     uint32_t sp_override, uint32_t ra_override) const {
  riscv::Machine m = Prototype();  // Copy of the immutable template.
  AttachCachePerMode(m);
  LoadCall(m, state, command, sp_override, ra_override);
  return m;
}

riscv::Machine& ModelAsm::LeaseCall(const Bytes& state, const Bytes& command,
                                    uint32_t sp_override, uint32_t ra_override) const {
  // Same pool discipline as Step(): one machine per (thread, instance, mode, backend),
  // restored between leases through the dirty-page journal.
  thread_local TlsStepContext ctx;
  DecodeCacheMode mode = decode_cache_mode();
  riscv::Machine::Backend be = backend();
  const riscv::Machine& proto = Prototype();
  if (ctx.instance_id == instance_id_ && ctx.mode == mode && ctx.backend == be) {
    ctx.machine->ResetTo(proto);
  } else {
    ctx.machine = std::make_unique<riscv::Machine>(proto);
    AttachCachePerMode(*ctx.machine);
    ctx.instance_id = instance_id_;
    ctx.mode = mode;
    ctx.backend = be;
  }
  LoadCall(*ctx.machine, state, command, sp_override, ra_override);
  return *ctx.machine;
}

riscv::Machine ModelAsm::PrepareCallFresh(const Bytes& state, const Bytes& command,
                                          uint32_t sp_override) const {
  riscv::Machine m = BuildPrototype();
  LoadCall(m, state, command, sp_override, /*ra_override=*/0);
  return m;
}

ModelAsm::StepResult ModelAsm::Step(const Bytes& state, const Bytes& command,
                                    uint64_t max_steps) const {
  thread_local TlsStepContext ctx;
  DecodeCacheMode mode = decode_cache_mode();
  riscv::Machine::Backend be = backend();
  const riscv::Machine& proto = Prototype();
  if (ctx.instance_id == instance_id_ && ctx.mode == mode && ctx.backend == be) {
    ctx.machine->ResetTo(proto);
  } else {
    ctx.machine = std::make_unique<riscv::Machine>(proto);
    AttachCachePerMode(*ctx.machine);
    ctx.instance_id = instance_id_;
    ctx.mode = mode;
    ctx.backend = be;
  }
  riscv::Machine& m = *ctx.machine;
  LoadCall(m, state, command, /*sp_override=*/0, /*ra_override=*/0);
  auto run = m.Run(max_steps);
  StepResult result;
  result.instret = m.instret();
  FlushPerfCounters(m);
  if (run != riscv::Machine::StepResult::kHalt) {
    result.fault = m.fault_reason();
    return result;
  }
  result.ok = true;
  result.state = m.ReadMemory(state_addr_, sizes_.state_size);
  result.response = m.ReadMemory(response_addr_, sizes_.response_size);
  return result;
}

}  // namespace parfait::platform
