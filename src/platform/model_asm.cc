#include "src/platform/model_asm.h"

#include "src/support/status.h"

namespace parfait::platform {

namespace {

constexpr uint32_t kStackExtension = 1 << 20;  // "Unbounded" stack headroom below RAM.

}  // namespace

ModelAsm::ModelAsm(const riscv::Image& image, const Sizes& sizes, uint32_t ram_size)
    : image_(image), sizes_(sizes), ram_size_(ram_size) {
  handle_addr_ = image_.SymbolOrDie("handle");
  state_addr_ = image_.SymbolOrDie("sys_state");
  command_addr_ = image_.SymbolOrDie("sys_cmd");
  response_addr_ = image_.SymbolOrDie("sys_resp");
}

riscv::Machine ModelAsm::PrepareCall(const Bytes& state, const Bytes& command,
                                     uint32_t sp_override) const {
  PARFAIT_CHECK(state.size() == sizes_.state_size);
  PARFAIT_CHECK(command.size() == sizes_.command_size);
  riscv::Machine m;
  uint32_t rom_base = image_.rom_base;
  uint32_t ram_base = image_.ram_base;
  m.AddRegion("rom", rom_base, 256 * 1024, /*writable=*/false);
  // RAM starts undefined (reading a never-written stack slot yields Vundef); the
  // loader then defines .data and .bss just as the boot code would.
  m.AddRegion("ram", ram_base, ram_size_, /*writable=*/true, /*initially_defined=*/false);
  m.AddRegion("stack_ext", ram_base - kStackExtension, kStackExtension, /*writable=*/true,
              /*initially_defined=*/false);
  m.WriteMemory(rom_base, image_.rom);
  if (image_.data_size > 0) {
    Bytes init = m.ReadMemory(image_.SymbolOrDie("__data_lma"), image_.data_size);
    m.WriteMemory(image_.SymbolOrDie("__data_start"), init);
  }
  uint32_t bss_size = image_.SymbolOrDie("__bss_size");
  if (bss_size > 0) {
    m.WriteMemory(image_.SymbolOrDie("__bss_start"), Bytes(bss_size, 0));
  }
  // Load the state and command buffers (figure 8's storebytes calls).
  m.WriteMemory(state_addr_, state);
  m.WriteMemory(command_addr_, command);
  // The response buffer is conceptually freshly allocated; define it as zero.
  m.WriteMemory(response_addr_, Bytes(sizes_.response_size, 0));
  // Set up the call: sp at the top of RAM (or aligned with the circuit's sp), args in
  // a0..a2, ra at the sentinel.
  m.set_reg(2, riscv::Value::Defined(sp_override != 0 ? sp_override : ram_base + ram_size_));
  m.set_reg(1, riscv::Value::Defined(riscv::Machine::kReturnSentinel));
  m.set_reg(10, riscv::Value::Defined(state_addr_));
  m.set_reg(11, riscv::Value::Defined(command_addr_));
  m.set_reg(12, riscv::Value::Defined(response_addr_));
  m.set_pc(handle_addr_);
  return m;
}

ModelAsm::StepResult ModelAsm::Step(const Bytes& state, const Bytes& command,
                                    uint64_t max_steps) const {
  riscv::Machine m = PrepareCall(state, command);
  auto run = m.Run(max_steps);
  StepResult result;
  result.instret = m.instret();
  if (run != riscv::Machine::StepResult::kHalt) {
    result.fault = m.fault_reason();
    return result;
  }
  result.ok = true;
  result.state = m.ReadMemory(state_addr_, sizes_.state_size);
  result.response = m.ReadMemory(response_addr_, sizes_.response_size);
  return result;
}

}  // namespace parfait::platform
