// model-Asm: the assembly level's interpretation as a whole-command state machine.
//
// This is the paper's figure 8, executable: given a firmware image, a state buffer and
// a command buffer, run handle() under the abstract RV32IM semantics (Riscette analog)
// and return the updated state and the response. One call = one step of the
// whole-command state machine "App Impl [Asm]" of table 1.
//
// The machine's stack is *effectively unbounded*: an extension region below RAM lets
// the abstract semantics keep running where the bounded SoC RAM would overflow —
// exactly the gap the paper's Knox2 layer is responsible for catching (section 7.2,
// "stack overflow").
#ifndef PARFAIT_PLATFORM_MODEL_ASM_H_
#define PARFAIT_PLATFORM_MODEL_ASM_H_

#include <string>

#include "src/riscv/assembler.h"
#include "src/riscv/machine.h"
#include "src/support/bytes.h"

namespace parfait::platform {

class ModelAsm {
 public:
  struct Sizes {
    uint32_t state_size;
    uint32_t command_size;
    uint32_t response_size;
  };

  ModelAsm(const riscv::Image& image, const Sizes& sizes, uint32_t ram_size = 128 * 1024);

  struct StepResult {
    bool ok = false;
    std::string fault;
    Bytes state;
    Bytes response;
    uint64_t instret = 0;
  };

  // One whole-command step: fresh machine, buffers loaded, handle() run to completion.
  StepResult Step(const Bytes& state, const Bytes& command, uint64_t max_steps) const;

  // For instruction-level co-simulation (Knox2): a machine with buffers loaded and
  // pc/ra/args set up so that stepping executes handle() and halts at the sentinel.
  // sp_override (when nonzero) aligns the abstract stack pointer with the circuit's,
  // making the Knox2 pointer mapping the identity on stack addresses too.
  riscv::Machine PrepareCall(const Bytes& state, const Bytes& command,
                             uint32_t sp_override = 0) const;

  uint32_t handle_addr() const { return handle_addr_; }
  uint32_t state_addr() const { return state_addr_; }
  uint32_t command_addr() const { return command_addr_; }
  uint32_t response_addr() const { return response_addr_; }
  const Sizes& sizes() const { return sizes_; }

 private:
  riscv::Image image_;
  Sizes sizes_;
  uint32_t ram_size_;
  uint32_t handle_addr_;
  uint32_t state_addr_;
  uint32_t command_addr_;
  uint32_t response_addr_;
};

}  // namespace parfait::platform

#endif  // PARFAIT_PLATFORM_MODEL_ASM_H_
