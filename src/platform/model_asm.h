// model-Asm: the assembly level's interpretation as a whole-command state machine.
//
// This is the paper's figure 8, executable: given a firmware image, a state buffer and
// a command buffer, run handle() under the abstract RV32IM semantics (Riscette analog)
// and return the updated state and the response. One call = one step of the
// whole-command state machine "App Impl [Asm]" of table 1.
//
// The machine's stack is *effectively unbounded*: an extension region below RAM lets
// the abstract semantics keep running where the bounded SoC RAM would overflow —
// exactly the gap the paper's Knox2 layer is responsible for catching (section 7.2,
// "stack overflow").
//
// Machine templates: instead of rebuilding ~1.5 MiB of regions per call, the image is
// loaded once into an immutable prototype machine (lazily, under a lock). PrepareCall
// copies the prototype and writes only the per-call buffers/registers; Step() goes one
// step further and reuses a thread-local machine across calls, restoring it between
// calls through the dirty-page journal (Machine::ResetTo). The ROM is decoded once
// into a shared immutable DecodeCache attached to every machine the template spawns.
// All of this is exactly state-equivalent to the from-scratch build, which remains
// available as PrepareCallFresh() (the benchmark baseline and the equivalence oracle
// for tests/machine_test.cc).
#ifndef PARFAIT_PLATFORM_MODEL_ASM_H_
#define PARFAIT_PLATFORM_MODEL_ASM_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>

#include "src/riscv/assembler.h"
#include "src/riscv/machine.h"
#include "src/support/bytes.h"

namespace parfait::platform {

// How ModelAsm machines obtain their ROM decode cache. Process-wide knob; exists so
// the determinism tests can prove the checker outputs are identical whether the cache
// is shared across threads, per-thread, or absent.
enum class DecodeCacheMode {
  kShared,     // One immutable cache per image, shared across machines and threads.
  kPerThread,  // Each thread builds (and reuses) its own copy of the cache.
  kOff,        // No prebuilt cache; machines fall back to their lazy local cache.
};

class ModelAsm {
 public:
  struct Sizes {
    uint32_t state_size;
    uint32_t command_size;
    uint32_t response_size;
  };

  ModelAsm(const riscv::Image& image, const Sizes& sizes, uint32_t ram_size = 128 * 1024);

  struct StepResult {
    bool ok = false;
    std::string fault;
    Bytes state;
    Bytes response;
    uint64_t instret = 0;
  };

  // One whole-command step: buffers loaded, handle() run to completion. Internally
  // reuses a thread-local journaled machine (fast reset between calls).
  StepResult Step(const Bytes& state, const Bytes& command, uint64_t max_steps) const;

  // For instruction-level co-simulation (Knox2): a machine with buffers loaded and
  // pc/ra/args set up so that stepping executes handle() and halts at the sentinel.
  // sp_override (when nonzero) aligns the abstract stack pointer with the circuit's,
  // making the Knox2 pointer mapping the identity on stack addresses too.
  // ra_override (when nonzero) replaces the halt sentinel in ra with the circuit's
  // real return address, so the machine's stacked ra values are bit-identical to the
  // circuit's — required by the work-unit slicer, whose boundary snapshots are
  // injected into a circuit. With an override, Run() no longer self-halts at
  // handle()'s return; callers bound execution by instruction count instead.
  // Copies the image prototype rather than rebuilding it.
  riscv::Machine PrepareCall(const Bytes& state, const Bytes& command,
                             uint32_t sp_override = 0, uint32_t ra_override = 0) const;

  // The machine-pool variant of PrepareCall: leases a thread-local dirty-journaled
  // machine keyed by (instance, cache mode, backend), ResetTo's it against the
  // prototype (~0.13µs instead of a full prototype copy), and loads the call. The
  // reference stays valid until the next LeaseCall or Step on the same thread and
  // the same ModelAsm. This is what lets per-segment work units pay microseconds,
  // not milliseconds, of setup per unit.
  riscv::Machine& LeaseCall(const Bytes& state, const Bytes& command,
                            uint32_t sp_override = 0, uint32_t ra_override = 0) const;

  // The pre-template build path: constructs the machine from the image from scratch,
  // with no prototype and no decode cache. Kept as the state-equivalence oracle and
  // the "before" leg of the setup benchmarks.
  riscv::Machine PrepareCallFresh(const Bytes& state, const Bytes& command,
                                  uint32_t sp_override = 0) const;

  // Process-wide decode-cache mode (default kShared). Takes effect on machines
  // prepared after the call; thread-local Step() contexts rebuild on mode change.
  static void SetDecodeCacheMode(DecodeCacheMode mode);
  static DecodeCacheMode decode_cache_mode();

  // Process-wide simulator backend (default Machine::DefaultBackend, i.e. the
  // PARFAIT_BACKEND environment variable). Like the cache mode, it takes effect on
  // machines prepared after the call, and thread-local Step() contexts rebuild when
  // it changes. Under Backend::kDBT with DecodeCacheMode::kShared, machines also get
  // one shared ROM translation cache per image, built lazily next to SharedCache();
  // the other cache modes leave DBT machines on their per-machine block caches.
  static void SetBackend(riscv::Machine::Backend backend);
  static riscv::Machine::Backend backend();

  // Drains `m`'s perf counters into the global telemetry registry (the machine/*
  // counters: decode and block-cache statistics, fast resets). Step() does this for
  // its own machines; harnesses that run PrepareCall machines themselves (Knox2
  // co-simulation) call it so every backend's work is accounted the same way.
  static void FlushMachineCounters(riscv::Machine& m);

  uint32_t handle_addr() const { return handle_addr_; }
  uint32_t state_addr() const { return state_addr_; }
  uint32_t command_addr() const { return command_addr_; }
  uint32_t response_addr() const { return response_addr_; }
  const Sizes& sizes() const { return sizes_; }

 private:
  // Lazily built under mu_, then immutable (safe to read from any thread).
  const riscv::Machine& Prototype() const;
  std::shared_ptr<const riscv::DecodeCache> SharedCache() const;
  std::shared_ptr<riscv::SharedTranslationCache> SharedBlocks() const;

  // Builds the image-dependent machine state (ROM, .data, .bss) — everything that
  // does not depend on the call. The journal is armed after loading, so the loader's
  // writes are not replayed by every reset.
  riscv::Machine BuildPrototype() const;

  // Writes the per-call state: buffers, argument registers, sp, ra, pc.
  void LoadCall(riscv::Machine& m, const Bytes& state, const Bytes& command,
                uint32_t sp_override, uint32_t ra_override) const;

  // Attaches the ROM decode cache to `m` per the process-wide mode.
  void AttachCachePerMode(riscv::Machine& m) const;

  riscv::Image image_;
  Sizes sizes_;
  uint32_t ram_size_;
  uint32_t handle_addr_;
  uint32_t state_addr_;
  uint32_t command_addr_;
  uint32_t response_addr_;
  // Distinguishes this instance in thread-local caches. Never reused, so a stale
  // thread-local context can never be mistaken for a live one.
  uint64_t instance_id_;

  mutable std::mutex mu_;
  mutable std::unique_ptr<const riscv::Machine> prototype_;
  mutable std::shared_ptr<const riscv::DecodeCache> shared_cache_;
  mutable std::shared_ptr<riscv::SharedTranslationCache> shared_blocks_;
};

}  // namespace parfait::platform

#endif  // PARFAIT_PLATFORM_MODEL_ASM_H_
