// Minimal error-reporting vocabulary used across the toolchain components.
//
// The compiler, assembler, and checkers report rich diagnostics; the simulators use
// hard invariant checks (CHECK) because a violated invariant there indicates a bug in
// this repository, not in user input.
#ifndef PARFAIT_SUPPORT_STATUS_H_
#define PARFAIT_SUPPORT_STATUS_H_

#include <cstdio>
#include <cstdlib>
#include <optional>
#include <string>
#include <utility>

namespace parfait {

// Aborts with a message if cond is false. For internal invariants only.
#define PARFAIT_CHECK(cond)                                                            \
  do {                                                                                 \
    if (!(cond)) {                                                                     \
      std::fprintf(stderr, "CHECK failed at %s:%d: %s\n", __FILE__, __LINE__, #cond);  \
      std::abort();                                                                    \
    }                                                                                  \
  } while (0)

#define PARFAIT_CHECK_MSG(cond, ...)                                                   \
  do {                                                                                 \
    if (!(cond)) {                                                                     \
      std::fprintf(stderr, "CHECK failed at %s:%d: %s: ", __FILE__, __LINE__, #cond);  \
      std::fprintf(stderr, __VA_ARGS__);                                               \
      std::fprintf(stderr, "\n");                                                      \
      std::abort();                                                                    \
    }                                                                                  \
  } while (0)

// Result of a user-input-facing operation: either a value or a diagnostic string.
template <typename T>
class Result {
 public:
  // NOLINTNEXTLINE(google-explicit-constructor): implicit by design, mirrors expected<>.
  Result(T value) : value_(std::move(value)) {}

  static Result Error(std::string message) {
    Result r;
    r.error_ = std::move(message);
    return r;
  }

  bool ok() const { return value_.has_value(); }
  const T& value() const& {
    PARFAIT_CHECK_MSG(ok(), "Result::value on error: %s", error_.c_str());
    return *value_;
  }
  T&& value() && {
    PARFAIT_CHECK_MSG(ok(), "Result::value on error: %s", error_.c_str());
    return std::move(*value_);
  }
  const std::string& error() const { return error_; }

 private:
  Result() = default;
  std::optional<T> value_;
  std::string error_;
};

}  // namespace parfait

#endif  // PARFAIT_SUPPORT_STATUS_H_
