// Deterministic pseudo-random generator for property-based checking.
//
// All of the Parfait checkers (Starling lockstep checks, Knox2 wire-equivalence checks,
// IPR distinguisher search) are randomized; determinism given a seed makes failures
// reproducible, which the paper's "development cycle" discussion (section 8.1) relies on.
#ifndef PARFAIT_SUPPORT_RNG_H_
#define PARFAIT_SUPPORT_RNG_H_

#include <cstdint>
#include <span>

#include "src/support/bytes.h"

namespace parfait {

// SplitMix64-based generator: tiny, fast, and good enough for test-case generation.
class Rng {
 public:
  explicit Rng(uint64_t seed) : state_(seed) {}

  uint64_t Next64() {
    state_ += 0x9e3779b97f4a7c15ULL;
    uint64_t z = state_;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  uint32_t Next32() { return static_cast<uint32_t>(Next64()); }

  // Uniform in [0, bound). bound must be nonzero.
  uint64_t Below(uint64_t bound) { return Next64() % bound; }

  bool Bool() { return (Next64() & 1) != 0; }

  uint8_t Byte() { return static_cast<uint8_t>(Next64()); }

  void Fill(std::span<uint8_t> out) {
    for (auto& b : out) {
      b = Byte();
    }
  }

  Bytes RandomBytes(size_t n) {
    Bytes out(n);
    Fill(out);
    return out;
  }

  // Forks an independent stream (used when a checker spawns sub-generators).
  Rng Fork() { return Rng(Next64() ^ 0xa5a5a5a5deadbeefULL); }

 private:
  uint64_t state_;
};

}  // namespace parfait

#endif  // PARFAIT_SUPPORT_RNG_H_
