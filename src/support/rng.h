// Deterministic pseudo-random generator for property-based checking.
//
// All of the Parfait checkers (Starling lockstep checks, Knox2 wire-equivalence checks,
// IPR distinguisher search) are randomized; determinism given a seed makes failures
// reproducible, which the paper's "development cycle" discussion (section 8.1) relies on.
#ifndef PARFAIT_SUPPORT_RNG_H_
#define PARFAIT_SUPPORT_RNG_H_

#include <cstdint>
#include <span>

#include "src/support/bytes.h"

namespace parfait {

// Derives the seed of an independent stream from (base_seed, stream_index) with two
// rounds of SplitMix64/Murmur3 finalizer mixing. Checkers give every parallel trial
// its own stream via SplitSeed(options.seed, trial_index), which is what makes their
// reports bit-identical regardless of thread count or scheduling order (see
// src/support/parallel.h). Consecutive indices land on uncorrelated streams: the
// golden-gamma multiply spreads them 2^64/phi apart before the finalizers.
constexpr uint64_t SplitSeed(uint64_t base_seed, uint64_t stream_index) {
  uint64_t z = base_seed + (stream_index + 1) * 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  z ^= z >> 31;
  z = (z ^ (z >> 33)) * 0xff51afd7ed558ccdULL;
  z = (z ^ (z >> 33)) * 0xc4ceb9fe1a85ec53ULL;
  return z ^ (z >> 33);
}

// SplitMix64-based generator: tiny, fast, and good enough for test-case generation.
class Rng {
 public:
  explicit Rng(uint64_t seed) : state_(seed) {}

  // Copying an Rng aliases its stream: two copies yield the same "random" values,
  // which silently correlates trials that must be independent (a real hazard once
  // checkers shard across threads). Forks must be explicit; moves are fine.
  Rng(const Rng&) = delete;
  Rng& operator=(const Rng&) = delete;
  Rng(Rng&&) = default;
  Rng& operator=(Rng&&) = default;

  uint64_t Next64() {
    state_ += 0x9e3779b97f4a7c15ULL;
    uint64_t z = state_;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  uint32_t Next32() { return static_cast<uint32_t>(Next64()); }

  // Uniform in [0, bound). bound must be nonzero.
  uint64_t Below(uint64_t bound) { return Next64() % bound; }

  bool Bool() { return (Next64() & 1) != 0; }

  uint8_t Byte() { return static_cast<uint8_t>(Next64()); }

  void Fill(std::span<uint8_t> out) {
    for (auto& b : out) {
      b = Byte();
    }
  }

  Bytes RandomBytes(size_t n) {
    Bytes out(n);
    Fill(out);
    return out;
  }

  // Forks an independent stream (used when a checker spawns sub-generators).
  // Advances this generator once; the child is seeded through SplitSeed so parent
  // and child sequences are decorrelated even for adjacent states.
  Rng Fork() { return Rng(SplitSeed(state_, Next64())); }

 private:
  uint64_t state_;
};

}  // namespace parfait

#endif  // PARFAIT_SUPPORT_RNG_H_
