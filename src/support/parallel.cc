#include "src/support/parallel.h"

#include <chrono>
#include <thread>
#include <utility>

#include "src/support/profiler.h"
#include "src/support/telemetry.h"

namespace parfait {

namespace {

// Which worker of which pool the current thread is, so Submit can push to the local
// deque instead of round-robining. Null on non-pool threads.
struct WorkerIdentity {
  const ThreadPool* pool = nullptr;
  size_t index = 0;
};
thread_local WorkerIdentity t_identity;

}  // namespace

struct ThreadPool::Worker {
  std::mutex mu;
  std::deque<std::function<void()>> tasks;  // Guarded by mu.
  std::thread thread;
  // Scheduling telemetry. Relaxed atomics: each is written by one thread at a time
  // (the executing worker) but may be read concurrently by WorkerStats().
  std::atomic<uint64_t> tasks_run{0};
  std::atomic<uint64_t> steals{0};
  std::atomic<uint64_t> idle_ns{0};
  // Profiling-only fields (see PoolLaneStats): populated when the global telemetry
  // registry or profiler is enabled, zero otherwise.
  std::atomic<uint64_t> busy_ns{0};
  std::atomic<uint64_t> queue_depth_sum{0};
  std::atomic<uint64_t> queue_depth_samples{0};
  std::atomic<uint64_t> queue_depth_max{0};
};

namespace {

// Whether per-task clock reads are allowed: the disabled-mode cost contract forbids
// them unless someone armed telemetry or the profiler.
bool TimingOn() {
  return telemetry::Telemetry::Global().enabled() || profiler::Profiler::Global().enabled();
}

}  // namespace

int ResolveNumThreads(int num_threads) {
  if (num_threads > 0) {
    return num_threads;
  }
  unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

ThreadPool::ThreadPool(int num_threads) {
  int lanes = ResolveNumThreads(num_threads);
  workers_.reserve(lanes > 0 ? lanes - 1 : 0);
  for (int i = 0; i + 1 < lanes; i++) {
    workers_.push_back(std::make_unique<Worker>());
  }
  for (size_t i = 0; i < workers_.size(); i++) {
    workers_[i]->thread = std::thread([this, i] { WorkerLoop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(wake_mu_);
    stop_ = true;
  }
  wake_cv_.notify_all();
  for (auto& worker : workers_) {
    if (worker->thread.joinable()) {
      worker->thread.join();
    }
  }
  // The fork-join caller is lane 0: ParallelFor folds its execution in through
  // AddCallerStats, and it is published exactly like a worker lane below.
  PoolLaneStats caller;
  caller.tasks_run = caller_tasks_.load(std::memory_order_relaxed);
  caller.busy_ns = caller_busy_ns_.load(std::memory_order_relaxed);
  caller.idle_ns = caller_idle_ns_.load(std::memory_order_relaxed);
  // Fold pool-utilization telemetry into the global registry (no-op when disabled).
  auto& telemetry = telemetry::Telemetry::Global();
  if (telemetry.enabled() && (caller.tasks_run > 0 || !workers_.empty())) {
    telemetry::TelemetrySnapshot snapshot;
    std::vector<PoolLaneStats> lanes = WorkerStats();
    lanes.insert(lanes.begin(), caller);
    for (const PoolLaneStats& lane : lanes) {
      snapshot.AddCounter("pool/tasks", lane.tasks_run);
      snapshot.AddCounter("pool/steals", lane.steals);
      snapshot.AddCounter("pool/idle_ns", lane.idle_ns);
      snapshot.AddCounter("pool/busy_ns", lane.busy_ns);
      snapshot.RecordValue("pool/tasks_per_lane", lane.tasks_run);
      snapshot.RecordValue("pool/idle_ns_per_lane", lane.idle_ns);
    }
    telemetry.Merge(snapshot);
  }
  // Fold lane timelines into the profiler (no-op when disabled). Lane 0 is the
  // fork-join calling thread; worker lanes are numbered from 1.
  auto& prof = profiler::Profiler::Global();
  if (prof.enabled()) {
    if (caller.tasks_run > 0 || caller.busy_ns > 0 || caller.idle_ns > 0) {
      profiler::LaneRecord record;
      record.tasks = caller.tasks_run;
      record.busy_ns = caller.busy_ns;
      record.idle_ns = caller.idle_ns;
      prof.AddLaneRecord(0, record);
    }
    std::vector<PoolLaneStats> stats = WorkerStats();
    for (size_t i = 0; i < stats.size(); i++) {
      profiler::LaneRecord record;
      record.tasks = stats[i].tasks_run;
      record.steals = stats[i].steals;
      record.busy_ns = stats[i].busy_ns;
      record.idle_ns = stats[i].idle_ns;
      record.queue_depth_sum = stats[i].queue_depth_sum;
      record.queue_depth_samples = stats[i].queue_depth_samples;
      record.queue_depth_max = stats[i].queue_depth_max;
      prof.AddLaneRecord(static_cast<int>(i) + 1, record);
    }
  }
}

void ThreadPool::AddCallerStats(uint64_t tasks, uint64_t busy_ns, uint64_t idle_ns) {
  caller_tasks_.fetch_add(tasks, std::memory_order_relaxed);
  caller_busy_ns_.fetch_add(busy_ns, std::memory_order_relaxed);
  caller_idle_ns_.fetch_add(idle_ns, std::memory_order_relaxed);
}

std::vector<PoolLaneStats> ThreadPool::WorkerStats() const {
  std::vector<PoolLaneStats> stats;
  stats.reserve(workers_.size());
  for (const auto& worker : workers_) {
    stats.push_back({worker->tasks_run.load(std::memory_order_relaxed),
                     worker->steals.load(std::memory_order_relaxed),
                     worker->idle_ns.load(std::memory_order_relaxed),
                     worker->busy_ns.load(std::memory_order_relaxed),
                     worker->queue_depth_sum.load(std::memory_order_relaxed),
                     worker->queue_depth_samples.load(std::memory_order_relaxed),
                     worker->queue_depth_max.load(std::memory_order_relaxed)});
  }
  return stats;
}

void ThreadPool::Submit(std::function<void()> task) {
  if (workers_.empty()) {
    // No workers: run inline. Fork-join callers treat the calling thread as the one
    // lane, so this keeps ThreadPool(1) strictly serial.
    task();
    return;
  }
  size_t target;
  if (t_identity.pool == this) {
    target = t_identity.index;  // Local push: LIFO end, cache-warm.
  } else {
    target = next_worker_.fetch_add(1, std::memory_order_relaxed) % workers_.size();
  }
  {
    Worker& w = *workers_[target];
    profiler::TimedLock lock(w.mu, profiler::Probe::kPoolQueue);
    w.tasks.push_back(std::move(task));
    if (profiler::Profiler::Global().enabled()) {
      // Sample deque depth at push: the writer holds w.mu, so size() is exact.
      uint64_t depth = w.tasks.size();
      w.queue_depth_sum.fetch_add(depth, std::memory_order_relaxed);
      w.queue_depth_samples.fetch_add(1, std::memory_order_relaxed);
      uint64_t seen = w.queue_depth_max.load(std::memory_order_relaxed);
      while (depth > seen &&
             !w.queue_depth_max.compare_exchange_weak(seen, depth,
                                                      std::memory_order_relaxed)) {
      }
    }
  }
  // Fence the notify through wake_mu_ so it cannot land between a sleeping worker's
  // final empty-scan (done under wake_mu_) and its wait — either the scan sees this
  // push, or the worker is already waiting and the notify wakes it.
  { profiler::TimedLock lock(wake_mu_, profiler::Probe::kPoolWake); }
  wake_cv_.notify_one();
}

bool ThreadPool::RunOneTask(size_t self) {
  std::function<void()> task;
  bool stolen = false;
  // Own deque: pop the most recently pushed task (LIFO).
  {
    Worker& own = *workers_[self];
    profiler::TimedLock lock(own.mu, profiler::Probe::kPoolQueue);
    if (!own.tasks.empty()) {
      task = std::move(own.tasks.back());
      own.tasks.pop_back();
    }
  }
  // Steal: scan the other deques and take their oldest task (FIFO end).
  if (!task) {
    for (size_t k = 1; k < workers_.size() && !task; k++) {
      Worker& victim = *workers_[(self + k) % workers_.size()];
      profiler::TimedLock lock(victim.mu, profiler::Probe::kPoolQueue);
      if (!victim.tasks.empty()) {
        task = std::move(victim.tasks.front());
        victim.tasks.pop_front();
        stolen = true;
      }
    }
  }
  if (!task) {
    return false;
  }
  Worker& own = *workers_[self];
  own.tasks_run.fetch_add(1, std::memory_order_relaxed);
  if (stolen) {
    own.steals.fetch_add(1, std::memory_order_relaxed);
  }
  if (TimingOn()) {
    auto busy_start = std::chrono::steady_clock::now();
    task();
    own.busy_ns.fetch_add(std::chrono::duration_cast<std::chrono::nanoseconds>(
                              std::chrono::steady_clock::now() - busy_start)
                              .count(),
                          std::memory_order_relaxed);
  } else {
    task();
  }
  return true;
}

void ThreadPool::WorkerLoop(size_t self) {
  t_identity = {this, self};
  for (;;) {
    if (RunOneTask(self)) {
      continue;
    }
    std::unique_lock<std::mutex> lock(wake_mu_);
    if (stop_) {
      return;
    }
    // Re-check under the wake lock: a Submit may have raced the empty scan.
    bool any = false;
    for (auto& worker : workers_) {
      std::lock_guard<std::mutex> wlock(worker->mu);
      if (!worker->tasks.empty()) {
        any = true;
        break;
      }
    }
    if (any) {
      continue;
    }
    auto idle_start = std::chrono::steady_clock::now();
    wake_cv_.wait(lock);
    workers_[self]->idle_ns.fetch_add(
        std::chrono::duration_cast<std::chrono::nanoseconds>(std::chrono::steady_clock::now() -
                                                             idle_start)
            .count(),
        std::memory_order_relaxed);
  }
}

void ParallelFor(ThreadPool& pool, size_t n, const std::function<void(size_t)>& body) {
  if (n == 0) {
    return;
  }
  bool timing = TimingOn();
  int lanes = pool.lanes();
  if (lanes <= 1 || n == 1) {
    // Serial degenerate case: the caller is still lane 0, so its execution is
    // tracked the same way (body time only; there is no join wait).
    uint64_t busy_ns = 0;
    for (size_t i = 0; i < n; i++) {
      if (timing) {
        auto start = std::chrono::steady_clock::now();
        body(i);
        busy_ns += std::chrono::duration_cast<std::chrono::nanoseconds>(
                       std::chrono::steady_clock::now() - start)
                       .count();
      } else {
        body(i);
      }
    }
    pool.AddCallerStats(n, busy_ns, 0);
    return;
  }

  // Dynamic index claiming: every lane loops grabbing the next unclaimed index, which
  // self-balances regardless of how uneven the per-index cost is.
  struct Region {
    std::atomic<size_t> next{0};
    std::mutex mu;
    std::condition_variable done_cv;
    size_t active_runners = 0;  // Guarded by mu.
  };
  auto region = std::make_shared<Region>();
  auto run_lane = [region, n, &body] {
    for (;;) {
      size_t i = region->next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) {
        return;
      }
      body(i);
    }
  };

  size_t helpers = static_cast<size_t>(lanes - 1);
  if (helpers > n - 1) {
    helpers = n - 1;
  }
  region->active_runners = helpers;
  for (size_t h = 0; h < helpers; h++) {
    pool.Submit([region, run_lane] {
      run_lane();
      std::lock_guard<std::mutex> lock(region->mu);
      if (--region->active_runners == 0) {
        region->done_cv.notify_all();
      }
    });
  }
  // The calling thread is a lane too — lane 0. Its claimed indices and in-body
  // time are folded into the pool so utilization reports cover every lane; the
  // join-barrier wait below is its idle time.
  uint64_t caller_tasks = 0;
  uint64_t caller_busy_ns = 0;
  for (;;) {
    size_t i = region->next.fetch_add(1, std::memory_order_relaxed);
    if (i >= n) {
      break;
    }
    if (timing) {
      auto start = std::chrono::steady_clock::now();
      body(i);
      caller_busy_ns += std::chrono::duration_cast<std::chrono::nanoseconds>(
                            std::chrono::steady_clock::now() - start)
                            .count();
    } else {
      body(i);
    }
    caller_tasks++;
  }
  uint64_t caller_idle_ns = 0;
  {
    auto idle_start = std::chrono::steady_clock::now();
    std::unique_lock<std::mutex> lock(region->mu);
    region->done_cv.wait(lock, [&] { return region->active_runners == 0; });
    if (timing) {
      caller_idle_ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                           std::chrono::steady_clock::now() - idle_start)
                           .count();
    }
  }
  pool.AddCallerStats(caller_tasks, caller_busy_ns, caller_idle_ns);
}

}  // namespace parfait
