// Work-stealing thread pool and deterministic fork-join helpers for the checkers.
//
// Every Parfait checker (Starling trials, IPR lockstep/equivalence trials, Knox2
// self-composition pairs and taint runs) is a loop over independent randomized
// obligations. The pool runs those obligations concurrently while keeping every
// report bit-identical to a serial run — determinism is load-bearing for a
// verification tool, because a failure that appears only at some thread counts is a
// failure the developer cannot reproduce. Two mechanisms deliver it:
//
//   1. Seed splitting: each trial derives its own RNG stream via
//      SplitSeed(base_seed, trial_index) (src/support/rng.h), so the generated test
//      cases are a function of the trial index alone, never of scheduling.
//   2. Lowest-failure settlement: ParallelReduce short-circuits on failure, but a
//      trial may only be *skipped* when a failure at a strictly lower index is
//      already known. Consequently every trial below the final reported failure
//      index has run to completion, which makes the reported (index, payload) pair —
//      and any aggregate folded over trials up to that index — schedule-independent.
#ifndef PARFAIT_SUPPORT_PARALLEL_H_
#define PARFAIT_SUPPORT_PARALLEL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <limits>
#include <memory>
#include <mutex>
#include <optional>
#include <vector>

namespace parfait {

// Resolves a user-facing `num_threads` option: 0 means "all hardware threads";
// anything else is taken literally. Values above the core count are allowed and
// oversubscribe (the determinism tests run 8 threads on any machine).
int ResolveNumThreads(int num_threads);

// Per-worker execution statistics, for the pool-utilization telemetry and the
// profiler's lane timelines. These describe *scheduling* — they vary run to run and
// are deliberately outside the determinism contract (checker reports never include
// them). busy_ns and the queue-depth fields are only populated while the global
// telemetry registry or profiler is enabled (timing every task costs two clock
// reads, which the disabled-mode cost contract forbids).
struct PoolLaneStats {
  uint64_t tasks_run = 0;  // Tasks this worker executed (own deque + stolen).
  uint64_t steals = 0;     // Of those, tasks taken from another worker's deque.
  uint64_t idle_ns = 0;    // Time spent blocked waiting for work.
  uint64_t busy_ns = 0;    // Time spent inside task bodies (profiling only).
  // Deque depth sampled after each push onto this worker's deque (profiling only):
  // a persistently deep queue means submission outpaces the lane; persistently
  // empty queues under low utilization mean the workload does not decompose.
  uint64_t queue_depth_sum = 0;
  uint64_t queue_depth_samples = 0;
  uint64_t queue_depth_max = 0;
};

// A small work-stealing pool of `num_threads - 1` workers: the calling thread of a
// fork-join region is the remaining lane, so ThreadPool(1) spawns no threads at all
// and ParallelFor degenerates to a plain serial loop on the caller. Each worker owns
// a deque — LIFO for its own pushes, FIFO for thieves — so task-local submissions
// stay cache-warm while idle workers drain the other end.
class ThreadPool {
 public:
  explicit ThreadPool(int num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // Total parallelism of a fork-join region: workers plus the calling thread.
  int lanes() const { return static_cast<int>(workers_.size()) + 1; }

  // Schedules `task` on some worker. From a worker thread the task lands on that
  // worker's own deque (stolen from the far end if another lane goes idle).
  void Submit(std::function<void()> task);

  // One entry per worker. Safe to call while the pool is live; counts are
  // relaxed-atomic snapshots. The destructor folds these into the global telemetry
  // registry (pool/tasks, pool/steals, pool/idle_ns, pool/tasks_per_lane) when
  // telemetry is enabled.
  std::vector<PoolLaneStats> WorkerStats() const;

  // Folds the fork-join caller's lane-0 execution into this pool's accounting:
  // indices the calling thread ran inside ParallelFor, its time inside task bodies,
  // and its wait at the join barrier. ParallelFor reports these; the destructor
  // publishes lane 0 alongside the worker lanes (profiler lane record + pool/*
  // counters), so utilization reports see every lane, not just the spawned ones.
  // Granularity caveat: lane 0's tasks count fork-join *indices*, while a worker
  // lane's count *pool tasks* (one ParallelFor region submits at most one task per
  // worker) — compare lanes by busy/idle time, not by task counts.
  void AddCallerStats(uint64_t tasks, uint64_t busy_ns, uint64_t idle_ns);

 private:
  struct Worker;

  void WorkerLoop(size_t self);
  // Pops one task (own deque first, then steals) and runs it. Returns false when no
  // task was found anywhere.
  bool RunOneTask(size_t self);

  std::vector<std::unique_ptr<Worker>> workers_;
  // Lane-0 (fork-join caller) accounting, accumulated by ParallelFor via
  // AddCallerStats. Atomics: several ParallelFor regions may share one pool.
  std::atomic<uint64_t> caller_tasks_{0};
  std::atomic<uint64_t> caller_busy_ns_{0};
  std::atomic<uint64_t> caller_idle_ns_{0};
  std::mutex wake_mu_;
  std::condition_variable wake_cv_;
  bool stop_ = false;                   // Guarded by wake_mu_.
  std::atomic<size_t> next_worker_{0};  // Round-robin for external submissions.
};

// Fork-join: runs body(i) for every i in [0, n), distributing indices dynamically
// across the pool's workers and the calling thread, and blocks until all complete.
// body must be safe to call concurrently from different threads for different i.
void ParallelFor(ThreadPool& pool, size_t n, const std::function<void(size_t)>& body);

// Outcome of a short-circuiting trial reduction. results[i] is engaged iff trial i
// ran. Determinism contract: with first_failure == f, every trial i <= f ran and its
// result is schedule-independent; trials above f may or may not have run (they were
// racing the cancellation), so deterministic aggregates must fold over i <= f only —
// or over everything when first_failure is empty, since then all n trials ran.
template <typename R>
struct ParallelReduceOutcome {
  std::vector<std::optional<R>> results;
  std::optional<size_t> first_failure;
};

// Runs body(i) for i in [0, n) in parallel; failed(result) marks a trial as a
// failure. Once a failure at index f is known, not-yet-started trials with index
// above f are skipped (first-failure short-circuit), but everything below f still
// runs — so the *lowest* failing index is always settled, independent of thread
// count and scheduling (see the file comment).
template <typename R>
ParallelReduceOutcome<R> ParallelReduce(ThreadPool& pool, size_t n,
                                        const std::function<R(size_t)>& body,
                                        const std::function<bool(const R&)>& failed) {
  ParallelReduceOutcome<R> out;
  out.results.resize(n);
  std::atomic<uint64_t> first{std::numeric_limits<uint64_t>::max()};
  ParallelFor(pool, n, [&](size_t i) {
    if (first.load(std::memory_order_acquire) < i) {
      return;  // A strictly lower failure is already known; skipping is safe.
    }
    R result = body(i);
    bool is_failure = failed(result);
    out.results[i] = std::move(result);
    if (is_failure) {
      uint64_t seen = first.load(std::memory_order_acquire);
      while (i < seen &&
             !first.compare_exchange_weak(seen, i, std::memory_order_acq_rel)) {
      }
    }
  });
  uint64_t f = first.load(std::memory_order_acquire);
  if (f != std::numeric_limits<uint64_t>::max()) {
    out.first_failure = static_cast<size_t>(f);
  }
  return out;
}

}  // namespace parfait

#endif  // PARFAIT_SUPPORT_PARALLEL_H_
