#include "src/support/loc.h"

#include <fstream>

namespace parfait {

size_t CountLoc(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return 0;
  }
  size_t count = 0;
  bool in_block_comment = false;
  std::string line;
  while (std::getline(in, line)) {
    bool has_code = false;
    for (size_t i = 0; i < line.size(); i++) {
      if (in_block_comment) {
        if (line[i] == '*' && i + 1 < line.size() && line[i + 1] == '/') {
          in_block_comment = false;
          i++;
        }
        continue;
      }
      char c = line[i];
      if (c == ' ' || c == '\t' || c == '\r') {
        continue;
      }
      if (c == '/' && i + 1 < line.size() && line[i + 1] == '/') {
        break;  // Rest of line is a comment.
      }
      if (c == '/' && i + 1 < line.size() && line[i + 1] == '*') {
        in_block_comment = true;
        i++;
        continue;
      }
      has_code = true;
    }
    if (has_code) {
      count++;
    }
  }
  return count;
}

size_t CountLocAll(const std::vector<std::string>& paths) {
  size_t total = 0;
  for (const auto& p : paths) {
    total += CountLoc(p);
  }
  return total;
}

}  // namespace parfait
