#include "src/support/profiler.h"

#include <algorithm>
#include <cstring>

#include "src/support/telemetry.h"

namespace parfait::profiler {

const char* ProbeName(Probe p) {
  switch (p) {
    case Probe::kTranslateLock:
      return "translate_lock";
    case Probe::kPoolQueue:
      return "pool_queue";
    case Probe::kPoolWake:
      return "pool_wake";
    case Probe::kTelemetryRegistry:
      return "telemetry_registry";
    case Probe::kCount:
      break;
  }
  return "unknown";
}

// A fixed-size event chunk. The owning thread is the only writer: it fills
// events[count] and publishes with a release store of count, linking a fresh chunk
// through `next` (release) when full. Readers acquire-load count/next and see every
// published event — the single-writer/release-acquire pairing is what makes the
// buffer lock-free for the recording thread.
struct Profiler::Chunk {
  static constexpr uint32_t kCapacity = 256;
  std::atomic<uint32_t> count{0};
  std::array<ProfEvent, kCapacity> events;
  std::atomic<Chunk*> next{nullptr};
};

struct Profiler::ThreadBuffer {
  explicit ThreadBuffer(int tid_in) : tid(tid_in), tail(&head) {}
  ~ThreadBuffer() {
    Chunk* c = head.next.load(std::memory_order_acquire);
    while (c != nullptr) {
      Chunk* n = c->next.load(std::memory_order_acquire);
      delete c;
      c = n;
    }
  }

  int tid;
  Chunk head;
  Chunk* tail;  // Owner-thread-only cursor; always reachable from head via next.
};

namespace {
// Unique-forever profiler ids so a thread's cached buffer pointer can never be
// revived by a new Profiler allocated at a dead one's address.
std::atomic<uint64_t> g_next_profiler_id{1};
// void*: ThreadBuffer is a private nested type; member functions cast.
thread_local std::vector<std::pair<uint64_t, void*>> t_buffers;

// Per-instance id storage: the Profiler object itself cannot hold it in the header
// without widening the class, so keep a side map keyed by address with generation
// safety via explicit registration in the constructor.
std::mutex g_id_mu;
std::vector<std::pair<const Profiler*, uint64_t>> g_ids;

uint64_t RegisterProfiler(const Profiler* p) {
  uint64_t id = g_next_profiler_id.fetch_add(1, std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(g_id_mu);
  g_ids.emplace_back(p, id);
  return id;
}

void UnregisterProfiler(const Profiler* p) {
  std::lock_guard<std::mutex> lock(g_id_mu);
  for (auto it = g_ids.begin(); it != g_ids.end(); ++it) {
    if (it->first == p) {
      g_ids.erase(it);
      return;
    }
  }
}

uint64_t ProfilerId(const Profiler* p) {
  std::lock_guard<std::mutex> lock(g_id_mu);
  for (const auto& [ptr, id] : g_ids) {
    if (ptr == p) {
      return id;
    }
  }
  return 0;
}
}  // namespace

Profiler::Profiler() { RegisterProfiler(this); }

Profiler::~Profiler() { UnregisterProfiler(this); }

Profiler& Profiler::Global() {
  static Profiler* instance = new Profiler();  // Leaked: outlives all static spans.
  return *instance;
}

Profiler::ThreadBuffer* Profiler::BufferForThisThread() {
  uint64_t my_id = ProfilerId(this);
  for (const auto& [id, buffer] : t_buffers) {
    if (id == my_id) {
      return static_cast<ThreadBuffer*>(buffer);
    }
  }
  ThreadBuffer* buffer;
  {
    std::lock_guard<std::mutex> lock(mu_);
    buffers_.push_back(std::make_unique<ThreadBuffer>(next_tid_++));
    buffer = buffers_.back().get();
  }
  t_buffers.emplace_back(my_id, buffer);
  return buffer;
}

void Profiler::RecordEvent(const char* category, std::string unit, uint64_t start_ns,
                           uint64_t dur_ns) {
  if (!enabled()) {
    return;
  }
  ThreadBuffer* buffer = BufferForThisThread();
  Chunk* tail = buffer->tail;
  uint32_t n = tail->count.load(std::memory_order_relaxed);  // Single writer.
  if (n == Chunk::kCapacity) {
    // Reuse a chunk left over from Reset (its count is already zero) before
    // allocating, so reset/refill cycles never orphan a chain.
    Chunk* fresh = tail->next.load(std::memory_order_relaxed);
    if (fresh == nullptr) {
      fresh = new Chunk();
      tail->next.store(fresh, std::memory_order_release);
    }
    buffer->tail = fresh;
    tail = fresh;
    n = 0;
  }
  ProfEvent& e = tail->events[n];
  e.category = category;
  e.unit = std::move(unit);
  e.start_ns = start_ns;
  e.dur_ns = dur_ns;
  e.tid = buffer->tid;
  tail->count.store(n + 1, std::memory_order_release);
}

void Profiler::AddLaneRecord(int lane, const LaneRecord& record) {
  if (!enabled()) {
    return;
  }
  std::lock_guard<std::mutex> lock(mu_);
  LaneRecord& merged = lanes_[lane];
  merged.tasks += record.tasks;
  merged.steals += record.steals;
  merged.busy_ns += record.busy_ns;
  merged.idle_ns += record.idle_ns;
  merged.queue_depth_sum += record.queue_depth_sum;
  merged.queue_depth_samples += record.queue_depth_samples;
  merged.queue_depth_max = std::max(merged.queue_depth_max, record.queue_depth_max);
}

std::vector<ProfEvent> Profiler::Collect() const {
  std::vector<ProfEvent> events;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& buffer : buffers_) {
      const Chunk* c = &buffer->head;
      while (c != nullptr) {
        uint32_t n = c->count.load(std::memory_order_acquire);
        for (uint32_t i = 0; i < n; i++) {
          events.push_back(c->events[i]);
        }
        c = c->next.load(std::memory_order_acquire);
      }
    }
  }
  std::sort(events.begin(), events.end(), [](const ProfEvent& a, const ProfEvent& b) {
    if (a.start_ns != b.start_ns) {
      return a.start_ns < b.start_ns;
    }
    if (a.tid != b.tid) {
      return a.tid < b.tid;
    }
    int c = std::strcmp(a.category, b.category);
    if (c != 0) {
      return c < 0;
    }
    return a.unit < b.unit;
  });
  return events;
}

WaitStats Profiler::waits(Probe p) const {
  const AtomicWaitStats& w = waits_[static_cast<size_t>(p)];
  WaitStats out;
  out.acquires = w.acquires.load(std::memory_order_relaxed);
  out.contended = w.contended.load(std::memory_order_relaxed);
  out.wait_ns = w.wait_ns.load(std::memory_order_relaxed);
  return out;
}

std::map<int, LaneRecord> Profiler::lanes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return lanes_;
}

void Profiler::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& buffer : buffers_) {
    // Zero every chunk's published count; the chain and the owner's tail cursor
    // stay valid (quiescence required, as documented).
    Chunk* c = &buffer->head;
    while (c != nullptr) {
      c->count.store(0, std::memory_order_relaxed);
      c = c->next.load(std::memory_order_relaxed);
    }
    buffer->tail = &buffer->head;
  }
  for (auto& w : waits_) {
    w.acquires.store(0, std::memory_order_relaxed);
    w.contended.store(0, std::memory_order_relaxed);
    w.wait_ns.store(0, std::memory_order_relaxed);
  }
  lanes_.clear();
}

uint64_t Profiler::NowNs() const { return telemetry::Telemetry::Global().NowNs(); }

WorkSpan::~WorkSpan() {
  if (!active_) {
    return;
  }
  uint64_t end_ns = profiler_->NowNs();
  uint64_t dur_ns = end_ns - start_ns_;
  // Mirror into the Chrome trace (when armed) before the unit string is moved out,
  // so Perfetto shows the same attribution the profile JSON carries.
  auto& telemetry = telemetry::Telemetry::Global();
  if (telemetry.tracing()) {
    std::vector<std::pair<std::string, std::string>> args;
    if (!unit_.empty()) {
      args.emplace_back("unit", unit_);
    }
    telemetry.AddCompleteEvent(category_, start_ns_, dur_ns, std::move(args));
  }
  profiler_->RecordEvent(category_, std::move(unit_), start_ns_, dur_ns);
}

}  // namespace parfait::profiler
