// Multi-process sharding of fine-grained verification work units.
//
// The work-unit scheduler (src/knox2/units.h, bench/table4) decomposes a
// verification suite into a flat, globally-ordered list of independent units:
// checker × command × power-on state × instruction segment (or trial batch). Every
// participating process derives the *same* unit list deterministically (plans are a
// pure function of the inputs and backend), then runs only the units it owns under
// a round-robin ownership rule — unit `ordinal` belongs to shard K of M iff
// `ordinal % M == K - 1`. Each shard serializes its per-unit outcomes (verdict,
// divergence, cycles, telemetry delta) as a shard JSON file; `parfait-prof merge`
// (or shard_test) recombines the files and folds them with exactly the code an
// unsharded run uses, so the merged report — rows, verdicts, settled
// lowest-ordinal divergences, and merged telemetry — is byte-identical to a
// single-process run at any M.
//
// What deliberately does NOT merge: the runtime-only "profile" section. Profiles
// attribute wall time to the schedule that actually ran; shards have disjoint
// schedules on different machines/processes, and gluing their timelines together
// would fabricate a run that never happened. Merge therefore reconstructs only the
// deterministic report (rows + telemetry); per-shard profiles stay with their
// shard's own JSON.
#ifndef PARFAIT_SUPPORT_SHARD_H_
#define PARFAIT_SUPPORT_SHARD_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "src/support/json.h"
#include "src/support/telemetry.h"

namespace parfait::shard {

// One fine-grained work unit's outcome. `ordinal` is the unit's position in the
// deterministic global enumeration (row-major across suite rows); `row` groups
// units back into report rows at fold time. `telemetry` is the unit's own additive
// delta — the row snapshot is the ordinal-ordered merge of its units' deltas.
struct UnitRecord {
  uint64_t ordinal = 0;
  uint32_t row = 0;
  std::string row_label;  // e.g. "IbexLite/ecdsa-p256"; identical across a row.
  std::string kind;       // "cosim", "selfcomp", "starling", ...
  std::string label;      // e.g. "unit=3/12" or "mono".
  bool ok = false;
  std::string divergence;
  uint64_t cycles = 0;    // This unit's contribution to the row's simulated cycles.
  telemetry::TelemetrySnapshot telemetry;
};

// One report row folded from its units: verdicts AND together, the divergence is
// the lowest-ordinal failure's (the same settlement rule ParallelReduce uses, so
// sharding cannot change which failure a suite reports), cycles and telemetry sum.
struct RowOutcome {
  uint32_t row = 0;
  std::string label;
  bool ok = true;
  std::string divergence;
  uint64_t cycles = 0;
  uint64_t units = 0;
  telemetry::TelemetrySnapshot telemetry;
};

// The "--shards=K/M" coordinate: this process is shard K (1-based) of M.
struct ShardSpec {
  int index = 1;
  int count = 1;

  bool active() const { return count > 1; }
  // Round-robin ownership over the global ordinal space; a 1/1 spec owns all.
  bool Owns(uint64_t ordinal) const {
    return count <= 1 || ordinal % static_cast<uint64_t>(count) ==
                             static_cast<uint64_t>(index - 1);
  }
};

// Parses "K/M" (as passed to --shards=). Requires 1 <= K <= M. Returns nullopt and
// sets `error` on malformed input.
std::optional<ShardSpec> ParseShardSpec(const std::string& text, std::string* error);

// One shard's serialized unit outcomes, read back from disk.
struct ShardFile {
  std::string bench;
  ShardSpec spec;
  std::vector<UnitRecord> records;
};

// {"bench":...,"shard":{"index":K,"count":M},"meta":<meta_json>,"records":[...]}
// `meta_json` must be a complete JSON value (pass "{}" when there is none).
std::string ShardFileJson(const std::string& bench, const ShardSpec& spec,
                          const std::string& meta_json,
                          const std::vector<UnitRecord>& records);

// Parses a shard file previously written via ShardFileJson.
bool ParseShardFile(const json::Value& root, ShardFile* out, std::string* error);

// Validates a set of shard files (same bench, same shard count, distinct shard
// indices, every record owned by its shard, and the union covering ordinals
// 0..N-1 exactly once) and returns all records sorted by ordinal.
bool MergeShardRecords(const std::vector<ShardFile>& shards,
                       std::vector<UnitRecord>* out, std::string* error);

// Folds a complete, ordinal-sorted record list into report rows (ascending row
// index). Used identically by the unsharded bench path and the post-merge path.
std::vector<RowOutcome> FoldRows(const std::vector<UnitRecord>& records);

// Canonical row serialization — the byte-comparable section of a merged report.
std::string RowsJson(const std::vector<RowOutcome>& rows);

// The full canonical merged report: {"bench":...,"rows":[...],"telemetry":{...}}
// with a trailing newline. Deliberately carries no meta/shard provenance so that a
// K-shard merge and an unsharded run produce byte-identical files.
std::string MergedReportJson(const std::string& bench,
                             const std::vector<RowOutcome>& rows);

}  // namespace parfait::shard

#endif  // PARFAIT_SUPPORT_SHARD_H_
