// Profile reporting and regression diffing for `parfait-prof` (tools/parfait_prof.cc)
// and for the benches that embed a "profile" section in their BENCH_*.json.
//
// Three pieces, all deliberately in the support library (not in the tool) so tests
// can link them directly:
//
//   1. ProfileJson: serializes the global profiler's state — per-(category, unit)
//      wall-time totals, lane timelines, contention probes, and a wall-time
//      attribution summary — as the runtime-only "profile" object of a bench report.
//   2. RenderReport: renders a human-readable profile report from a parsed
//      BENCH_*.json (phases, legs with Amdahl serial-fraction estimates, profile
//      section) or from a Chrome trace.json ("traceEvents"), whichever the file is.
//   3. Diff: compares the numeric leaves of two bench JSON files and flags
//      regressions beyond a tolerance. Only metrics whose name declares a direction
//      are gated (see ClassifyMetric); runtime-only subtrees ("profile", "meta",
//      "evidence") are excluded because they are schedule-dependent noise.
//
// Attribution model: every profiler event is an interval of thread time. Per thread,
// the *attributed* time is the union of intervals carrying a work-unit tag (unions,
// not sums, so nested spans are not double counted), and the *window* is the span
// from that thread's first event to its last. The attribution fraction is
// sum(attributed) / (sum(window) - pool idle), pool idle being time workers
// measurably slept between fork-join regions — reported separately as lane
// utilization rather than smeared into attribution.
#ifndef PARFAIT_SUPPORT_PROF_H_
#define PARFAIT_SUPPORT_PROF_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "src/support/json.h"
#include "src/support/profiler.h"

namespace parfait::prof {

// One attributed interval of thread time, decoupled from profiler::ProfEvent so the
// same aggregation runs over Chrome-trace events read back from disk.
struct SpanEvent {
  std::string category;
  std::string unit;
  uint64_t start_ns = 0;
  uint64_t dur_ns = 0;
  int tid = 0;
};

// Wall-time attribution summary (see the file comment for the model).
struct Attribution {
  uint64_t attributed_ns = 0;  // Union of unit-tagged intervals, summed over threads.
  uint64_t window_ns = 0;      // First-to-last event span, summed over threads.
  uint64_t pool_idle_ns = 0;   // Worker sleep time (from lane records), reported out.
  double fraction = 0;         // attributed / max(1, window - pool_idle), clamped to 1.
};
Attribution ComputeAttribution(const std::vector<SpanEvent>& events,
                               uint64_t pool_idle_ns);

// Amdahl's law solved for the serial fraction: t_n = t_1 * (s + (1 - s) / n), so
// s = (n * t_n / t_1 - 1) / (n - 1). Clamped to [0, 1]; returns 1 when n < 2 or the
// inputs are degenerate (a 1-thread "parallel" leg estimates nothing).
double AmdahlSerialFraction(double t1_seconds, double tn_seconds, int n_threads);

// Serializes the profiler's current state as the `{"waits":...,"lanes":...,
// "units":[...],"attribution":{...}}` object. Units are aggregated per
// (category, unit), sorted by total time descending (ties by category then unit);
// at most `max_units` rows are kept, with the remainder rolled into an "(other)"
// row so totals still add up.
std::string ProfileJson(const profiler::Profiler& prof, size_t max_units = 40);

// Renders the report for a parsed input file (BENCH json or Chrome trace). Returns
// false and sets `error` when the document has neither bench nor trace shape.
bool RenderReport(const json::Value& root, std::string* out, std::string* error);

// Metric gating direction, decided from the dot-joined leaf path (lowercased
// matching). kHigherBetter: *per_s*, *speedup*, *throughput*, *utilization*.
// kLowerBetter: *seconds*, *_us*, *_ms*, *serial_fraction*. Everything else is
// kInfo — printed in a diff, never gated.
enum class Direction { kHigherBetter, kLowerBetter, kInfo };
Direction ClassifyMetric(std::string_view path);

struct DiffOptions {
  double max_regression_pct = 5.0;
};

struct DiffEntry {
  std::string path;       // Dot-joined, e.g. "machine_dbt.dbt_instr_per_s".
  double before = 0;
  double after = 0;
  double change_pct = 0;  // (after - before) / |before| * 100; 0 when before == 0.
  Direction direction = Direction::kInfo;
  bool regression = false;
};

struct DiffResult {
  std::vector<DiffEntry> entries;  // Document order of `before`.
  int regressions = 0;
};

// Compares numeric leaves present in both documents (matched by path; array
// elements by index). Skips the "profile", "meta", "pool", and "evidence" subtrees —
// those are runtime-only and schedule-dependent. A gated metric regresses when it
// moves in its bad direction by more than max_regression_pct.
DiffResult Diff(const json::Value& before, const json::Value& after,
                const DiffOptions& options);

// Human-readable diff table; regressed lines are marked "REGRESSION".
std::string RenderDiff(const DiffResult& result);

}  // namespace parfait::prof

#endif  // PARFAIT_SUPPORT_PROF_H_
