// Verification profiler: work-unit attribution spans, per-thread lock-free event
// buffers, thread-pool lane timelines, and mutex-contention probes.
//
// The telemetry subsystem (telemetry.h) answers *what* the checkers did — counters
// and histograms folded deterministically into every report. The profiler answers
// *where the wall time went*: which work unit (checker × command × power-on state ×
// trial batch) each span of thread time belongs to, how busy each pool lane was, and
// how long threads sat blocked on the hot mutexes. These are scheduling facts — they
// vary run to run and are deliberately OUTSIDE the determinism contract (checker
// reports never embed them); they surface in the separate "profile" section of
// BENCH_*.json and in the Chrome trace, consumed by `parfait-prof report/diff`.
//
// Three facilities:
//
//   1. WorkSpan. Like telemetry::Span but carrying a work-unit tag: the RAII scope's
//      wall time is recorded into the calling thread's event buffer as
//      (category, unit, start, duration, tid). Buffers are lock-free for the owner:
//      events are written into fixed-size chunks and published with a release store
//      of the chunk's count; a full chunk links a fresh one with a release store of
//      its `next` pointer. Collect() walks all buffers with acquire loads and merges
//      events sorted by (start, tid, category) — a deterministic flush order given
//      the recorded timestamps, independent of which thread drains first.
//   2. Contention probes. TimedLock wraps a mutex acquisition: an uncontended
//      try_lock is counted, a contended acquisition is timed and attributed to a
//      fixed Probe id (translate lock, pool queues, pool wake, telemetry registry).
//      Counters are plain atomics — probes never allocate and never take a lock
//      themselves, so they are safe inside the telemetry registry's own mutex path.
//   3. Lane records. ~ThreadPool folds per-worker busy/idle/steal time and queue-
//      depth samples into the profiler keyed by lane index, so a run that creates
//      many pools (one per suite pass) still reports one timeline per lane.
//
// Disabled-mode cost contract (same as telemetry): constructing a WorkSpan or
// TimedLock on a disabled profiler is one relaxed atomic load and a branch — no
// clock read, no allocation. The profiler is armed by --profile=1 / PARFAIT_PROFILE
// (see bench/bench_util.h) and implied by tracing.
#ifndef PARFAIT_SUPPORT_PROFILER_H_
#define PARFAIT_SUPPORT_PROFILER_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace parfait::profiler {

// One attributed span of thread time. `category` is a static string (the span's
// code-site name, e.g. "knox2/cosim"); `unit` is the dynamic work-unit tag, e.g.
// "app=ecdsa cpu=IbexLite cmd=2" — empty when the span was not annotated.
struct ProfEvent {
  const char* category = "";
  std::string unit;
  uint64_t start_ns = 0;
  uint64_t dur_ns = 0;
  int tid = 0;
};

// Fixed identities for the contention probes on the hot mutexes. A fixed enum (not
// a name registry) keeps AddWait/AddAcquire allocation- and lock-free.
enum class Probe : int {
  kTranslateLock = 0,  // SharedTranslationCache::Get translate mutex.
  kPoolQueue,          // ThreadPool per-worker deque mutexes (push/pop/steal).
  kPoolWake,           // ThreadPool wake_mu_ (submit fence + sleep/wake).
  kTelemetryRegistry,  // telemetry::Telemetry::mu_ (Count/Record/Merge/EndSpan).
  kCount,
};
const char* ProbeName(Probe p);

// Aggregated contention statistics for one probe.
struct WaitStats {
  uint64_t acquires = 0;   // Total timed acquisitions (contended + uncontended).
  uint64_t contended = 0;  // Acquisitions that blocked.
  uint64_t wait_ns = 0;    // Total time spent blocked.
};

// Per-lane scheduling record folded from ThreadPool::WorkerStats at pool teardown.
// Lane 0 is the calling thread of fork-join regions (untracked by pools); worker
// lanes are 1..N-1 and merge across pools by index.
struct LaneRecord {
  uint64_t tasks = 0;
  uint64_t steals = 0;
  uint64_t busy_ns = 0;
  uint64_t idle_ns = 0;
  uint64_t queue_depth_sum = 0;      // Sum of sampled depths (at task push).
  uint64_t queue_depth_samples = 0;  // Number of samples.
  uint64_t queue_depth_max = 0;
};

// The process-wide profiler (plus independently constructible instances for tests).
class Profiler {
 public:
  Profiler();
  ~Profiler();

  Profiler(const Profiler&) = delete;
  Profiler& operator=(const Profiler&) = delete;

  static Profiler& Global();

  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  void Enable() { enabled_.store(true, std::memory_order_relaxed); }
  void Disable() { enabled_.store(false, std::memory_order_relaxed); }

  // Appends one event to the calling thread's buffer (no-op when disabled). The
  // owner-side append takes no lock; first use on a thread registers its buffer
  // under the registry mutex once.
  void RecordEvent(const char* category, std::string unit, uint64_t start_ns,
                   uint64_t dur_ns);

  // Contention probes (no-ops when disabled; plain atomic adds otherwise).
  void AddAcquire(Probe p) {
    if (enabled()) {
      waits_[static_cast<size_t>(p)].acquires.fetch_add(1, std::memory_order_relaxed);
    }
  }
  void AddWait(Probe p, uint64_t wait_ns) {
    if (enabled()) {
      auto& w = waits_[static_cast<size_t>(p)];
      w.acquires.fetch_add(1, std::memory_order_relaxed);
      w.contended.fetch_add(1, std::memory_order_relaxed);
      w.wait_ns.fetch_add(wait_ns, std::memory_order_relaxed);
    }
  }

  // Folds one lane's scheduling stats (merged by lane index across pools).
  void AddLaneRecord(int lane, const LaneRecord& record);

  // Snapshot of every recorded event, sorted by (start_ns, tid, category, unit) —
  // the deterministic flush order. Safe to call while other threads record (acquire
  // reads see a consistent prefix of each buffer); call it after joining workers
  // for a complete picture.
  std::vector<ProfEvent> Collect() const;
  WaitStats waits(Probe p) const;
  std::map<int, LaneRecord> lanes() const;

  // Clears recorded events, waits, and lane records; flags and registered thread
  // buffers are untouched. Requires quiescence (no concurrent recorders), same as
  // telemetry::Telemetry::Reset.
  void Reset();

  // Nanoseconds on the shared telemetry timeline (telemetry::Telemetry::Global()'s
  // epoch), so profile events and Chrome-trace events line up.
  uint64_t NowNs() const;

 private:
  struct Chunk;
  struct ThreadBuffer;

  ThreadBuffer* BufferForThisThread();

  std::atomic<bool> enabled_{false};

  struct AtomicWaitStats {
    std::atomic<uint64_t> acquires{0};
    std::atomic<uint64_t> contended{0};
    std::atomic<uint64_t> wait_ns{0};
  };
  std::array<AtomicWaitStats, static_cast<size_t>(Probe::kCount)> waits_;

  mutable std::mutex mu_;
  std::vector<std::unique_ptr<ThreadBuffer>> buffers_;  // Guarded by mu_.
  std::map<int, LaneRecord> lanes_;                     // Guarded by mu_.
  int next_tid_ = 0;                                    // Guarded by mu_.
};

// RAII work-unit span. Construction on a disabled profiler is one relaxed load and
// a branch; Annotate and destruction are no-ops in that case. When telemetry tracing
// is armed the completed span is also mirrored into the Chrome trace with the unit
// as an argument, so Perfetto shows the same attribution the profile JSON carries.
class WorkSpan {
 public:
  explicit WorkSpan(const char* category) : WorkSpan(Profiler::Global(), category) {}
  WorkSpan(Profiler& profiler, const char* category)
      : profiler_(&profiler), category_(category), active_(profiler.enabled()) {
    if (active_) {
      start_ns_ = profiler_->NowNs();
    }
  }
  ~WorkSpan();

  WorkSpan(const WorkSpan&) = delete;
  WorkSpan& operator=(const WorkSpan&) = delete;

  bool active() const { return active_; }
  // Attaches the work-unit tag. Call behind active() when building the tag is not
  // free — the typical pattern is:
  //   profiler::WorkSpan span("knox2/cosim");
  //   if (span.active()) span.Annotate("app=" + app.name() + ...);
  void Annotate(std::string unit) {
    if (active_) {
      unit_ = std::move(unit);
    }
  }

 private:
  Profiler* profiler_;
  const char* category_;
  bool active_;
  uint64_t start_ns_ = 0;
  std::string unit_;
};

// Mutex acquisition with contention attribution. Disabled: one relaxed load, a
// branch, and the plain lock. Enabled: an uncontended try_lock costs one atomic
// add; a contended path times the block and attributes it to the probe.
class TimedLock {
 public:
  TimedLock(std::mutex& mu, Probe probe) : mu_(mu) {
    Profiler& profiler = Profiler::Global();
    if (!profiler.enabled()) {
      mu_.lock();
      return;
    }
    if (mu_.try_lock()) {
      profiler.AddAcquire(probe);
      return;
    }
    uint64_t start = profiler.NowNs();
    mu_.lock();
    profiler.AddWait(probe, profiler.NowNs() - start);
  }
  ~TimedLock() { mu_.unlock(); }

  TimedLock(const TimedLock&) = delete;
  TimedLock& operator=(const TimedLock&) = delete;

 private:
  std::mutex& mu_;
};

}  // namespace parfait::profiler

#endif  // PARFAIT_SUPPORT_PROFILER_H_
