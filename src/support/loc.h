// Line-of-code counting, used by the Table 2 reproduction (developer-effort inventory).
#ifndef PARFAIT_SUPPORT_LOC_H_
#define PARFAIT_SUPPORT_LOC_H_

#include <string>
#include <vector>

namespace parfait {

// Counts non-blank, non-comment lines in a file. Understands //, /* */, and # comments
// well enough for the C++/MiniC sources in this repository. Returns 0 if unreadable.
size_t CountLoc(const std::string& path);

// Sums CountLoc over files; missing files count as 0.
size_t CountLocAll(const std::vector<std::string>& paths);

}  // namespace parfait

#endif  // PARFAIT_SUPPORT_LOC_H_
