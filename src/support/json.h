// Minimal JSON value model and recursive-descent parser.
//
// Parfait's benches and telemetry emit JSON by direct string construction (see
// telemetry.cc and bench/bench_util.h) — that direction never needed a library. The
// profiler's report/diff tooling (`parfait-prof`, src/support/prof.h) needs the
// opposite direction: read back BENCH_*.json, telemetry snapshots, and Chrome-trace
// files and walk them structurally. This is a deliberately small parser for that
// job: full JSON syntax, objects preserved in insertion order (so reports render in
// the order the bench wrote), numbers as double (bench payloads are counters and
// seconds; 2^53 integer precision is far beyond any counter we emit), and \uXXXX
// escapes decoded to UTF-8. No streaming, no writer.
#ifndef PARFAIT_SUPPORT_JSON_H_
#define PARFAIT_SUPPORT_JSON_H_

#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace parfait::json {

class Value;

// Object members keep file order; duplicate keys keep the last occurrence wins
// semantics of Find (first match returned, parser stores in order — our emitters
// never produce duplicates).
using Member = std::pair<std::string, Value>;

class Value {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_bool() const { return kind_ == Kind::kBool; }
  bool is_number() const { return kind_ == Kind::kNumber; }
  bool is_string() const { return kind_ == Kind::kString; }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_object() const { return kind_ == Kind::kObject; }

  bool AsBool() const { return bool_; }
  double AsNumber() const { return number_; }
  const std::string& AsString() const { return string_; }
  const std::vector<Value>& AsArray() const { return array_; }
  const std::vector<Member>& AsObject() const { return object_; }

  // Object member lookup; nullptr when this is not an object or the key is absent.
  const Value* Find(std::string_view key) const;
  // Chained lookup: Find(key) when it exists and is a number/string, else fallback.
  double NumberOr(std::string_view key, double fallback) const;
  std::string StringOr(std::string_view key, std::string_view fallback) const;

  static Value MakeNull() { return Value(); }
  static Value MakeBool(bool b);
  static Value MakeNumber(double n);
  static Value MakeString(std::string s);
  static Value MakeArray(std::vector<Value> items);
  static Value MakeObject(std::vector<Member> members);

 private:
  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double number_ = 0;
  std::string string_;
  std::vector<Value> array_;
  std::vector<Member> object_;
};

// Parses one JSON document (leading/trailing whitespace allowed; trailing garbage is
// an error). On failure returns nullopt and, when `error` is non-null, stores a
// message with the byte offset of the problem.
std::optional<Value> Parse(std::string_view text, std::string* error = nullptr);

// Reads `path` and parses it. Distinguishes I/O failure from syntax errors in the
// message.
std::optional<Value> ParseFile(const std::string& path, std::string* error = nullptr);

}  // namespace parfait::json

#endif  // PARFAIT_SUPPORT_JSON_H_
