#include "src/support/json.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace parfait::json {

const Value* Value::Find(std::string_view key) const {
  if (kind_ != Kind::kObject) {
    return nullptr;
  }
  for (const Member& member : object_) {
    if (member.first == key) {
      return &member.second;
    }
  }
  return nullptr;
}

double Value::NumberOr(std::string_view key, double fallback) const {
  const Value* v = Find(key);
  return (v != nullptr && v->is_number()) ? v->AsNumber() : fallback;
}

std::string Value::StringOr(std::string_view key, std::string_view fallback) const {
  const Value* v = Find(key);
  return (v != nullptr && v->is_string()) ? v->AsString() : std::string(fallback);
}

Value Value::MakeBool(bool b) {
  Value v;
  v.kind_ = Kind::kBool;
  v.bool_ = b;
  return v;
}

Value Value::MakeNumber(double n) {
  Value v;
  v.kind_ = Kind::kNumber;
  v.number_ = n;
  return v;
}

Value Value::MakeString(std::string s) {
  Value v;
  v.kind_ = Kind::kString;
  v.string_ = std::move(s);
  return v;
}

Value Value::MakeArray(std::vector<Value> items) {
  Value v;
  v.kind_ = Kind::kArray;
  v.array_ = std::move(items);
  return v;
}

Value Value::MakeObject(std::vector<Member> members) {
  Value v;
  v.kind_ = Kind::kObject;
  v.object_ = std::move(members);
  return v;
}

namespace {

class Parser {
 public:
  Parser(std::string_view text, std::string* error) : text_(text), error_(error) {}

  std::optional<Value> Run() {
    SkipWs();
    std::optional<Value> value = ParseValue();
    if (!value.has_value()) {
      return std::nullopt;
    }
    SkipWs();
    if (pos_ != text_.size()) {
      return Fail("trailing characters after the document");
    }
    return value;
  }

 private:
  std::optional<Value> Fail(const char* message) {
    if (error_ != nullptr && error_->empty()) {
      *error_ = std::string(message) + " at byte " + std::to_string(pos_);
    }
    return std::nullopt;
  }

  void SkipWs() {
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') {
        break;
      }
      pos_++;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      pos_++;
      return true;
    }
    return false;
  }

  bool ConsumeWord(const char* word) {
    size_t len = std::strlen(word);
    if (text_.substr(pos_, len) == word) {
      pos_ += len;
      return true;
    }
    return false;
  }

  std::optional<Value> ParseValue() {
    if (depth_ > kMaxDepth) {
      return Fail("nesting too deep");
    }
    if (pos_ >= text_.size()) {
      return Fail("unexpected end of input");
    }
    char c = text_[pos_];
    switch (c) {
      case '{':
        return ParseObject();
      case '[':
        return ParseArray();
      case '"': {
        std::optional<std::string> s = ParseString();
        if (!s.has_value()) {
          return std::nullopt;
        }
        return Value::MakeString(std::move(*s));
      }
      case 't':
        if (ConsumeWord("true")) {
          return Value::MakeBool(true);
        }
        return Fail("invalid literal");
      case 'f':
        if (ConsumeWord("false")) {
          return Value::MakeBool(false);
        }
        return Fail("invalid literal");
      case 'n':
        if (ConsumeWord("null")) {
          return Value::MakeNull();
        }
        return Fail("invalid literal");
      default:
        return ParseNumber();
    }
  }

  std::optional<Value> ParseObject() {
    depth_++;
    pos_++;  // '{'
    std::vector<Member> members;
    SkipWs();
    if (Consume('}')) {
      depth_--;
      return Value::MakeObject(std::move(members));
    }
    for (;;) {
      SkipWs();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return Fail("expected object key");
      }
      std::optional<std::string> key = ParseString();
      if (!key.has_value()) {
        return std::nullopt;
      }
      SkipWs();
      if (!Consume(':')) {
        return Fail("expected ':' after object key");
      }
      SkipWs();
      std::optional<Value> value = ParseValue();
      if (!value.has_value()) {
        return std::nullopt;
      }
      members.emplace_back(std::move(*key), std::move(*value));
      SkipWs();
      if (Consume(',')) {
        continue;
      }
      if (Consume('}')) {
        depth_--;
        return Value::MakeObject(std::move(members));
      }
      return Fail("expected ',' or '}' in object");
    }
  }

  std::optional<Value> ParseArray() {
    depth_++;
    pos_++;  // '['
    std::vector<Value> items;
    SkipWs();
    if (Consume(']')) {
      depth_--;
      return Value::MakeArray(std::move(items));
    }
    for (;;) {
      SkipWs();
      std::optional<Value> value = ParseValue();
      if (!value.has_value()) {
        return std::nullopt;
      }
      items.push_back(std::move(*value));
      SkipWs();
      if (Consume(',')) {
        continue;
      }
      if (Consume(']')) {
        depth_--;
        return Value::MakeArray(std::move(items));
      }
      return Fail("expected ',' or ']' in array");
    }
  }

  // Called with text_[pos_] == '"'. Decodes escapes; \uXXXX becomes UTF-8 (surrogate
  // pairs supported; a lone surrogate is an error).
  std::optional<std::string> ParseString() {
    pos_++;  // '"'
    std::string out;
    for (;;) {
      if (pos_ >= text_.size()) {
        Fail("unterminated string");
        return std::nullopt;
      }
      char c = text_[pos_++];
      if (c == '"') {
        return out;
      }
      if (static_cast<unsigned char>(c) < 0x20) {
        Fail("unescaped control character in string");
        return std::nullopt;
      }
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) {
        Fail("unterminated escape");
        return std::nullopt;
      }
      char e = text_[pos_++];
      switch (e) {
        case '"':
        case '\\':
        case '/':
          out.push_back(e);
          break;
        case 'b':
          out.push_back('\b');
          break;
        case 'f':
          out.push_back('\f');
          break;
        case 'n':
          out.push_back('\n');
          break;
        case 'r':
          out.push_back('\r');
          break;
        case 't':
          out.push_back('\t');
          break;
        case 'u': {
          unsigned cp;
          if (!ParseHex4(&cp)) {
            return std::nullopt;
          }
          if (cp >= 0xD800 && cp <= 0xDBFF) {
            // High surrogate: must pair with \uDC00..\uDFFF.
            if (pos_ + 1 >= text_.size() || text_[pos_] != '\\' || text_[pos_ + 1] != 'u') {
              Fail("lone high surrogate");
              return std::nullopt;
            }
            pos_ += 2;
            unsigned lo;
            if (!ParseHex4(&lo)) {
              return std::nullopt;
            }
            if (lo < 0xDC00 || lo > 0xDFFF) {
              Fail("invalid low surrogate");
              return std::nullopt;
            }
            cp = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
          } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
            Fail("lone low surrogate");
            return std::nullopt;
          }
          AppendUtf8(cp, &out);
          break;
        }
        default:
          Fail("unknown escape");
          return std::nullopt;
      }
    }
  }

  bool ParseHex4(unsigned* out) {
    if (pos_ + 4 > text_.size()) {
      Fail("truncated \\u escape");
      return false;
    }
    unsigned value = 0;
    for (int i = 0; i < 4; i++) {
      char c = text_[pos_++];
      value <<= 4;
      if (c >= '0' && c <= '9') {
        value |= static_cast<unsigned>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        value |= static_cast<unsigned>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        value |= static_cast<unsigned>(c - 'A' + 10);
      } else {
        Fail("bad hex digit in \\u escape");
        return false;
      }
    }
    *out = value;
    return true;
  }

  static void AppendUtf8(unsigned cp, std::string* out) {
    if (cp < 0x80) {
      out->push_back(static_cast<char>(cp));
    } else if (cp < 0x800) {
      out->push_back(static_cast<char>(0xC0 | (cp >> 6)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else if (cp < 0x10000) {
      out->push_back(static_cast<char>(0xE0 | (cp >> 12)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else {
      out->push_back(static_cast<char>(0xF0 | (cp >> 18)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    }
  }

  std::optional<Value> ParseNumber() {
    size_t start = pos_;
    if (Consume('-')) {
    }
    if (pos_ >= text_.size() || text_[pos_] < '0' || text_[pos_] > '9') {
      return Fail("invalid number");
    }
    if (text_[pos_] == '0') {
      pos_++;  // JSON forbids leading zeros: "0" stands alone before '.'/'e'.
    } else {
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
        pos_++;
      }
    }
    if (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
      return Fail("leading zero in number");
    }
    if (Consume('.')) {
      if (pos_ >= text_.size() || text_[pos_] < '0' || text_[pos_] > '9') {
        return Fail("digits required after decimal point");
      }
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
        pos_++;
      }
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      pos_++;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        pos_++;
      }
      if (pos_ >= text_.size() || text_[pos_] < '0' || text_[pos_] > '9') {
        return Fail("digits required in exponent");
      }
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
        pos_++;
      }
    }
    // The matched range is a valid strtod input by construction.
    std::string number(text_.substr(start, pos_ - start));
    return Value::MakeNumber(std::strtod(number.c_str(), nullptr));
  }

  static constexpr int kMaxDepth = 200;

  std::string_view text_;
  std::string* error_;
  size_t pos_ = 0;
  int depth_ = 0;
};

}  // namespace

std::optional<Value> Parse(std::string_view text, std::string* error) {
  return Parser(text, error).Run();
}

std::optional<Value> ParseFile(const std::string& path, std::string* error) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    if (error != nullptr) {
      *error = "cannot open " + path;
    }
    return std::nullopt;
  }
  std::string text;
  char buf[65536];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    text.append(buf, n);
  }
  std::fclose(f);
  std::string parse_error;
  std::optional<Value> value = Parse(text, &parse_error);
  if (!value.has_value() && error != nullptr) {
    *error = path + ": " + parse_error;
  }
  return value;
}

}  // namespace parfait::json
