#include "src/support/telemetry.h"

#include <chrono>
#include <cstdio>

#include "src/support/profiler.h"

namespace parfait::telemetry {

namespace {

uint64_t SteadyNowNs() {
  return static_cast<uint64_t>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                   std::chrono::steady_clock::now().time_since_epoch())
                                   .count());
}

// Escapes a string for embedding in a JSON string literal (quotes, backslashes,
// control characters — failure messages carry newlines and arbitrary punctuation).
void AppendJsonEscaped(std::string& out, std::string_view s) {
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

void AppendJsonString(std::string& out, std::string_view s) {
  out += '"';
  AppendJsonEscaped(out, s);
  out += '"';
}

}  // namespace

void HistogramSummary::Record(uint64_t value) {
  count++;
  sum += value;
  if (value < min) {
    min = value;
  }
  if (value > max) {
    max = value;
  }
}

void HistogramSummary::Merge(const HistogramSummary& other) {
  count += other.count;
  sum += other.sum;
  if (other.min < min) {
    min = other.min;
  }
  if (other.max > max) {
    max = other.max;
  }
}

void TelemetrySnapshot::AddCounter(std::string_view name, uint64_t delta) {
  counters_[std::string(name)] += delta;
}

void TelemetrySnapshot::RecordValue(std::string_view name, uint64_t value) {
  histograms_[std::string(name)].Record(value);
}

void TelemetrySnapshot::AddHistogram(std::string_view name, const HistogramSummary& summary) {
  histograms_[std::string(name)].Merge(summary);
}

void TelemetrySnapshot::Merge(const TelemetrySnapshot& other) {
  for (const auto& [name, value] : other.counters_) {
    counters_[name] += value;
  }
  for (const auto& [name, summary] : other.histograms_) {
    histograms_[name].Merge(summary);
  }
}

uint64_t TelemetrySnapshot::CounterValue(std::string_view name) const {
  auto it = counters_.find(std::string(name));
  return it == counters_.end() ? 0 : it->second;
}

std::string TelemetrySnapshot::ToJson() const {
  std::string out = "{\"counters\":{";
  bool first = true;
  for (const auto& [name, value] : counters_) {
    if (!first) {
      out += ',';
    }
    first = false;
    AppendJsonString(out, name);
    out += ':';
    out += std::to_string(value);
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : histograms_) {
    if (!first) {
      out += ',';
    }
    first = false;
    AppendJsonString(out, name);
    out += ":{\"count\":" + std::to_string(h.count) + ",\"sum\":" + std::to_string(h.sum) +
           ",\"min\":" + std::to_string(h.count == 0 ? 0 : h.min) +
           ",\"max\":" + std::to_string(h.max) + "}";
  }
  out += "}}";
  return out;
}

void Evidence::Add(std::string_view key, std::string_view value) {
  fields.emplace_back(std::string(key), std::string(value));
}

void Evidence::Add(std::string_view key, uint64_t value) {
  fields.emplace_back(std::string(key), std::to_string(value));
}

std::string Evidence::ToJson() const {
  std::string out = "{\"checker\":";
  AppendJsonString(out, checker);
  out += ",\"fields\":{";
  bool first = true;
  for (const auto& [key, value] : fields) {
    if (!first) {
      out += ',';
    }
    first = false;
    AppendJsonString(out, key);
    out += ':';
    AppendJsonString(out, value);
  }
  out += "}}";
  return out;
}

Telemetry::Telemetry() : epoch_ns_(SteadyNowNs()) {}

Telemetry& Telemetry::Global() {
  static Telemetry* instance = new Telemetry();  // Leaked: outlives all static spans.
  return *instance;
}

void Telemetry::EnableTracing() {
  tracing_.store(true, std::memory_order_relaxed);
  enabled_.store(true, std::memory_order_relaxed);
}

void Telemetry::Disable() {
  tracing_.store(false, std::memory_order_relaxed);
  enabled_.store(false, std::memory_order_relaxed);
}

void Telemetry::Count(std::string_view name, uint64_t delta) {
  if (!enabled()) {
    return;
  }
  profiler::TimedLock lock(mu_, profiler::Probe::kTelemetryRegistry);
  aggregate_.AddCounter(name, delta);
}

void Telemetry::Record(std::string_view name, uint64_t value) {
  if (!enabled()) {
    return;
  }
  profiler::TimedLock lock(mu_, profiler::Probe::kTelemetryRegistry);
  aggregate_.RecordValue(name, value);
}

void Telemetry::Merge(const TelemetrySnapshot& snapshot) {
  if (!enabled()) {
    return;
  }
  profiler::TimedLock lock(mu_, profiler::Probe::kTelemetryRegistry);
  aggregate_.Merge(snapshot);
}

void Telemetry::RecordEvidence(const Evidence& evidence) {
  if (!enabled()) {
    return;
  }
  uint64_t now = NowNs();
  int tid = TraceThreadId();
  std::lock_guard<std::mutex> lock(mu_);
  evidence_.push_back(evidence);
  if (tracing_.load(std::memory_order_relaxed)) {
    TraceEvent event;
    event.name = evidence.checker + "/counterexample";
    event.ph = 'i';
    event.ts_ns = now;
    event.tid = tid;
    event.args = evidence.fields;
    trace_.push_back(std::move(event));
  }
}

void Telemetry::AddCompleteEvent(const char* name, uint64_t ts_ns, uint64_t dur_ns,
                                 std::vector<std::pair<std::string, std::string>> args) {
  if (!tracing()) {
    return;
  }
  int tid = TraceThreadId();
  profiler::TimedLock lock(mu_, profiler::Probe::kTelemetryRegistry);
  TraceEvent event;
  event.name = name;
  event.ph = 'X';
  event.ts_ns = ts_ns;
  event.dur_ns = dur_ns;
  event.tid = tid;
  event.args = std::move(args);
  trace_.push_back(std::move(event));
}

TelemetrySnapshot Telemetry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return aggregate_;
}

std::vector<Evidence> Telemetry::evidence() const {
  std::lock_guard<std::mutex> lock(mu_);
  return evidence_;
}

std::vector<TraceEvent> Telemetry::trace_events() const {
  std::lock_guard<std::mutex> lock(mu_);
  return trace_;
}

void Telemetry::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  aggregate_ = TelemetrySnapshot();
  trace_.clear();
  evidence_.clear();
}

std::string Telemetry::TraceJson() const {
  std::vector<TraceEvent> events = trace_events();
  std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  char buf[64];
  for (const TraceEvent& event : events) {
    if (!first) {
      out += ',';
    }
    first = false;
    out += "{\"name\":";
    AppendJsonString(out, event.name);
    out += ",\"cat\":\"parfait\",\"ph\":\"";
    out += event.ph;
    out += "\",\"pid\":1,\"tid\":" + std::to_string(event.tid);
    std::snprintf(buf, sizeof(buf), ",\"ts\":%.3f", event.ts_ns / 1000.0);
    out += buf;
    if (event.ph == 'X') {
      std::snprintf(buf, sizeof(buf), ",\"dur\":%.3f", event.dur_ns / 1000.0);
      out += buf;
    } else if (event.ph == 'i') {
      out += ",\"s\":\"g\"";
    }
    if (!event.args.empty()) {
      out += ",\"args\":{";
      bool first_arg = true;
      for (const auto& [key, value] : event.args) {
        if (!first_arg) {
          out += ',';
        }
        first_arg = false;
        AppendJsonString(out, key);
        out += ':';
        AppendJsonString(out, value);
      }
      out += '}';
    }
    out += '}';
  }
  out += "]}";
  return out;
}

bool Telemetry::WriteTrace(const std::string& path) const {
  FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return false;
  }
  std::string json = TraceJson();
  bool ok = std::fwrite(json.data(), 1, json.size(), f) == json.size();
  ok = std::fclose(f) == 0 && ok;
  return ok;
}

uint64_t Telemetry::NowNs() const { return SteadyNowNs() - epoch_ns_; }

void Telemetry::EndSpan(const char* name, uint64_t start_ns) {
  uint64_t end_ns = NowNs();
  uint64_t dur_ns = end_ns - start_ns;
  int tid = TraceThreadId();
  profiler::TimedLock lock(mu_, profiler::Probe::kTelemetryRegistry);
  aggregate_.RecordValue(std::string("span/") + name, dur_ns);
  if (tracing_.load(std::memory_order_relaxed)) {
    TraceEvent event;
    event.name = name;
    event.ph = 'X';
    event.ts_ns = start_ns;
    event.dur_ns = dur_ns;
    event.tid = tid;
    trace_.push_back(std::move(event));
  }
}

int Telemetry::TraceThreadId() {
  // One dense id per (registry, thread) pair; assigned on first use. thread_local
  // storage would be shared across registries, so keep a per-registry map instead.
  thread_local std::vector<std::pair<const Telemetry*, int>> ids;
  for (const auto& [registry, id] : ids) {
    if (registry == this) {
      return id;
    }
  }
  int id;
  {
    std::lock_guard<std::mutex> lock(mu_);
    id = next_thread_id_++;
  }
  ids.emplace_back(this, id);
  return id;
}

}  // namespace parfait::telemetry
