#include "src/support/shard.h"

#include <algorithm>
#include <cstdio>
#include <map>

namespace parfait::shard {

namespace {

void AppendEscaped(std::string& out, std::string_view s) {
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out += '"';
}

// json.h numbers are double; every counter we emit is far below 2^53, so the
// narrowing round-trip is exact.
uint64_t AsU64(double d) { return d <= 0 ? 0 : static_cast<uint64_t>(d); }

bool ParseSnapshot(const json::Value& v, telemetry::TelemetrySnapshot* out,
                   std::string* error) {
  const json::Value* counters = v.Find("counters");
  if (counters != nullptr && counters->is_object()) {
    for (const auto& [name, value] : counters->AsObject()) {
      if (!value.is_number()) {
        *error = "counter '" + name + "' is not a number";
        return false;
      }
      out->AddCounter(name, AsU64(value.AsNumber()));
    }
  }
  const json::Value* histograms = v.Find("histograms");
  if (histograms != nullptr && histograms->is_object()) {
    for (const auto& [name, h] : histograms->AsObject()) {
      telemetry::HistogramSummary summary;
      summary.count = AsU64(h.NumberOr("count", 0));
      summary.sum = AsU64(h.NumberOr("sum", 0));
      summary.min = AsU64(h.NumberOr("min", 0));
      summary.max = AsU64(h.NumberOr("max", 0));
      if (summary.count == 0) {
        continue;  // ToJson never emits one; ignore rather than corrupt min.
      }
      out->AddHistogram(name, summary);
    }
  }
  return true;
}

std::string RecordJson(const UnitRecord& r) {
  std::string out = "{\"ordinal\":" + std::to_string(r.ordinal) +
                    ",\"row\":" + std::to_string(r.row) + ",\"row_label\":";
  AppendEscaped(out, r.row_label);
  out += ",\"kind\":";
  AppendEscaped(out, r.kind);
  out += ",\"label\":";
  AppendEscaped(out, r.label);
  out += ",\"ok\":";
  out += r.ok ? "true" : "false";
  out += ",\"divergence\":";
  AppendEscaped(out, r.divergence);
  out += ",\"cycles\":" + std::to_string(r.cycles);
  out += ",\"telemetry\":" + r.telemetry.ToJson() + "}";
  return out;
}

bool ParseRecord(const json::Value& v, UnitRecord* out, std::string* error) {
  if (!v.is_object()) {
    *error = "record is not an object";
    return false;
  }
  out->ordinal = AsU64(v.NumberOr("ordinal", 0));
  out->row = static_cast<uint32_t>(v.NumberOr("row", 0));
  out->row_label = v.StringOr("row_label", "");
  out->kind = v.StringOr("kind", "");
  out->label = v.StringOr("label", "");
  const json::Value* ok = v.Find("ok");
  out->ok = ok != nullptr && ok->is_bool() && ok->AsBool();
  out->divergence = v.StringOr("divergence", "");
  out->cycles = AsU64(v.NumberOr("cycles", 0));
  const json::Value* telemetry = v.Find("telemetry");
  if (telemetry != nullptr && !ParseSnapshot(*telemetry, &out->telemetry, error)) {
    return false;
  }
  return true;
}

}  // namespace

std::optional<ShardSpec> ParseShardSpec(const std::string& text, std::string* error) {
  int index = 0;
  int count = 0;
  char trailing = 0;
  int fields = std::sscanf(text.c_str(), "%d/%d%c", &index, &count, &trailing);
  if (fields != 2 || index < 1 || count < 1 || index > count) {
    if (error != nullptr) {
      *error = "--shards=" + text + " is not K/M with 1 <= K <= M";
    }
    return std::nullopt;
  }
  return ShardSpec{index, count};
}

std::string ShardFileJson(const std::string& bench, const ShardSpec& spec,
                          const std::string& meta_json,
                          const std::vector<UnitRecord>& records) {
  std::string out = "{\"bench\":";
  AppendEscaped(out, bench);
  out += ",\"shard\":{\"index\":" + std::to_string(spec.index) +
         ",\"count\":" + std::to_string(spec.count) + "}";
  out += ",\"meta\":" + (meta_json.empty() ? std::string("{}") : meta_json);
  out += ",\"records\":[";
  for (size_t i = 0; i < records.size(); i++) {
    if (i > 0) {
      out += ',';
    }
    out += RecordJson(records[i]);
  }
  out += "]}\n";
  return out;
}

bool ParseShardFile(const json::Value& root, ShardFile* out, std::string* error) {
  if (!root.is_object()) {
    *error = "shard file is not a JSON object";
    return false;
  }
  out->bench = root.StringOr("bench", "");
  if (out->bench.empty()) {
    *error = "shard file has no \"bench\" name";
    return false;
  }
  const json::Value* spec = root.Find("shard");
  if (spec == nullptr || !spec->is_object()) {
    *error = "shard file has no \"shard\" object";
    return false;
  }
  out->spec.index = static_cast<int>(spec->NumberOr("index", 0));
  out->spec.count = static_cast<int>(spec->NumberOr("count", 0));
  if (out->spec.index < 1 || out->spec.count < 1 || out->spec.index > out->spec.count) {
    *error = "shard file has an invalid shard/index/count";
    return false;
  }
  const json::Value* records = root.Find("records");
  if (records == nullptr || !records->is_array()) {
    *error = "shard file has no \"records\" array";
    return false;
  }
  out->records.clear();
  out->records.reserve(records->AsArray().size());
  for (const json::Value& r : records->AsArray()) {
    UnitRecord record;
    if (!ParseRecord(r, &record, error)) {
      return false;
    }
    out->records.push_back(std::move(record));
  }
  return true;
}

bool MergeShardRecords(const std::vector<ShardFile>& shards,
                       std::vector<UnitRecord>* out, std::string* error) {
  if (shards.empty()) {
    *error = "no shard files to merge";
    return false;
  }
  const std::string& bench = shards[0].bench;
  int count = shards[0].spec.count;
  std::vector<bool> seen_shard(static_cast<size_t>(count) + 1, false);
  out->clear();
  for (const ShardFile& shard : shards) {
    if (shard.bench != bench) {
      *error = "shard files mix benches ('" + bench + "' vs '" + shard.bench + "')";
      return false;
    }
    if (shard.spec.count != count) {
      *error = "shard files disagree on the shard count (" + std::to_string(count) +
               " vs " + std::to_string(shard.spec.count) + ")";
      return false;
    }
    if (seen_shard[shard.spec.index]) {
      *error = "shard " + std::to_string(shard.spec.index) + "/" +
               std::to_string(count) + " appears twice";
      return false;
    }
    seen_shard[shard.spec.index] = true;
    for (const UnitRecord& record : shard.records) {
      if (!shard.spec.Owns(record.ordinal)) {
        *error = "shard " + std::to_string(shard.spec.index) + "/" +
                 std::to_string(count) + " holds foreign unit ordinal " +
                 std::to_string(record.ordinal);
        return false;
      }
      out->push_back(record);
    }
  }
  for (int k = 1; k <= count; k++) {
    if (!seen_shard[k]) {
      *error = "missing shard " + std::to_string(k) + "/" + std::to_string(count);
      return false;
    }
  }
  std::sort(out->begin(), out->end(),
            [](const UnitRecord& a, const UnitRecord& b) { return a.ordinal < b.ordinal; });
  for (size_t i = 0; i < out->size(); i++) {
    if ((*out)[i].ordinal != i) {
      *error = "merged records do not cover ordinal " + std::to_string(i) +
               " exactly once";
      return false;
    }
  }
  return true;
}

std::vector<RowOutcome> FoldRows(const std::vector<UnitRecord>& records) {
  // Records arrive ordinal-sorted; a std::map keyed by row index gives ascending
  // rows while each row's units fold in ordinal order — the deterministic order
  // every process (sharded or not) reproduces.
  std::map<uint32_t, RowOutcome> rows;
  for (const UnitRecord& record : records) {
    RowOutcome& row = rows[record.row];
    row.row = record.row;
    if (row.label.empty()) {
      row.label = record.row_label;
    }
    if (!record.ok && row.ok) {
      // Ordinal order makes this the lowest failing ordinal in the row.
      row.ok = false;
      row.divergence = record.divergence;
    }
    row.cycles += record.cycles;
    row.units++;
    row.telemetry.Merge(record.telemetry);
  }
  std::vector<RowOutcome> out;
  out.reserve(rows.size());
  for (auto& [index, row] : rows) {
    out.push_back(std::move(row));
  }
  return out;
}

std::string RowsJson(const std::vector<RowOutcome>& rows) {
  std::string out = "[";
  for (size_t i = 0; i < rows.size(); i++) {
    const RowOutcome& row = rows[i];
    if (i > 0) {
      out += ',';
    }
    out += "{\"row\":" + std::to_string(row.row) + ",\"label\":";
    AppendEscaped(out, row.label);
    out += ",\"ok\":";
    out += row.ok ? "true" : "false";
    out += ",\"divergence\":";
    AppendEscaped(out, row.divergence);
    out += ",\"cycles\":" + std::to_string(row.cycles) +
           ",\"units\":" + std::to_string(row.units);
    out += ",\"telemetry\":" + row.telemetry.ToJson() + "}";
  }
  out += "]";
  return out;
}

std::string MergedReportJson(const std::string& bench,
                             const std::vector<RowOutcome>& rows) {
  telemetry::TelemetrySnapshot merged;
  for (const RowOutcome& row : rows) {
    merged.Merge(row.telemetry);
  }
  std::string out = "{\"bench\":";
  AppendEscaped(out, bench);
  out += ",\"rows\":" + RowsJson(rows);
  out += ",\"telemetry\":" + merged.ToJson() + "}\n";
  return out;
}

}  // namespace parfait::shard
