// Verification telemetry: deterministic counters/histograms, RAII spans, and
// machine-readable evidence trails for every checker.
//
// The paper's evaluation is entirely about *measured* verification behaviour —
// cycles/s per CPU (table 4), sync-point statistics (figure 11), which checker catches
// which bug (section 7.2) — so the checkers must emit structured, attributable
// evidence, not just a boolean. Three facilities, one registry:
//
//   1. Counters and histograms. Named monotonic counters and value distributions.
//      Determinism contract: every checker *folds its per-trial deltas in trial-index
//      order* into a TelemetrySnapshot embedded in its report (only trials at or below
//      the settled lowest failure index contribute — see src/support/parallel.h), so
//      report counters are bit-identical at 1 vs N threads. The process-wide registry
//      additionally aggregates merged snapshots plus runtime-only metrics (span
//      durations, pool utilization) that are *not* part of the determinism contract.
//   2. Spans. TELEMETRY_SPAN("starling/valid_trial") records wall-time and thread id
//      for the enclosing scope (RAII: closes on any exit path, including exceptions)
//      and emits a Chrome-trace-format "complete" event when tracing is on. Benches
//      enable tracing via --trace=<path> or the PARFAIT_TRACE environment variable;
//      the resulting JSON opens in chrome://tracing or Perfetto.
//   3. Evidence. On a checker failure, the seed, trial index, and the encoded
//      command/state bytes (hex) that reproduce it are recorded as a counterexample
//      artifact — embedded in the report, mirrored into the trace as an instant
//      event, and serializable to JSON — so every failure is replayable.
//
// Disabled-mode cost: a Span constructor is one relaxed atomic load and a branch; no
// allocation, no clock read. Count/Record/Merge on a disabled registry are no-ops
// behind the same single load. Checkers still fill their report snapshots (plain
// integer folds, no atomics), which is what the benches serialize.
#ifndef PARFAIT_SUPPORT_TELEMETRY_H_
#define PARFAIT_SUPPORT_TELEMETRY_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace parfait::telemetry {

// Order-independent summary of a value distribution. Merging summaries built from
// per-trial folds in index order yields bit-identical results at any thread count
// (count/sum are associative-commutative; min/max are lattice joins).
struct HistogramSummary {
  uint64_t count = 0;
  uint64_t sum = 0;
  uint64_t min = UINT64_MAX;  // UINT64_MAX until the first Record.
  uint64_t max = 0;

  void Record(uint64_t value);
  void Merge(const HistogramSummary& other);
  bool operator==(const HistogramSummary& other) const = default;
};

// A value-type bag of named counters and histogram summaries. Checkers build one per
// report by folding per-trial deltas in trial-index order; benches merge report
// snapshots in a fixed program order. std::map keeps serialization deterministic.
class TelemetrySnapshot {
 public:
  void AddCounter(std::string_view name, uint64_t delta);
  void RecordValue(std::string_view name, uint64_t value);
  // Merges a whole summary under `name` — the deserialization path for snapshots
  // read back from JSON (src/support/shard.cc), where per-value Records are gone.
  void AddHistogram(std::string_view name, const HistogramSummary& summary);
  void Merge(const TelemetrySnapshot& other);

  // Value of a counter, or 0 if absent.
  uint64_t CounterValue(std::string_view name) const;
  bool empty() const { return counters_.empty() && histograms_.empty(); }

  const std::map<std::string, uint64_t>& counters() const { return counters_; }
  const std::map<std::string, HistogramSummary>& histograms() const { return histograms_; }

  // {"counters":{...},"histograms":{name:{"count":..,"sum":..,"min":..,"max":..}}}
  // with keys in sorted order — byte-identical for equal snapshots.
  std::string ToJson() const;

  bool operator==(const TelemetrySnapshot& other) const = default;

 private:
  std::map<std::string, uint64_t> counters_;
  std::map<std::string, HistogramSummary> histograms_;
};

// A machine-readable counterexample artifact: which checker failed and the key/value
// fields (seed, trial index, hex-encoded command/state bytes, failure message) needed
// to replay the failure. Fields keep insertion order.
struct Evidence {
  std::string checker;
  std::vector<std::pair<std::string, std::string>> fields;

  void Add(std::string_view key, std::string_view value);
  void Add(std::string_view key, uint64_t value);
  // {"checker":"starling","fields":{"seed":"1234",...}} (fields in insertion order).
  std::string ToJson() const;

  bool operator==(const Evidence& other) const = default;
};

// One Chrome-trace event: ph 'X' (complete, from a Span) or 'i' (instant, from
// RecordEvidence). Timestamps are nanoseconds since the registry was constructed.
struct TraceEvent {
  std::string name;
  char ph = 'X';
  uint64_t ts_ns = 0;
  uint64_t dur_ns = 0;  // 'X' only.
  int tid = 0;
  std::vector<std::pair<std::string, std::string>> args;  // 'i' only (evidence fields).
};

// The process-wide registry (plus independently constructible instances for tests).
// All mutating entry points are guarded by a single relaxed atomic load: a disabled
// registry records nothing and allocates nothing.
class Telemetry {
 public:
  Telemetry();

  Telemetry(const Telemetry&) = delete;
  Telemetry& operator=(const Telemetry&) = delete;

  static Telemetry& Global();

  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  bool tracing() const { return tracing_.load(std::memory_order_relaxed); }
  void Enable() { enabled_.store(true, std::memory_order_relaxed); }
  // Tracing implies enabled: spans need the metric path live to time themselves.
  void EnableTracing();
  void Disable();

  // Aggregation (no-ops when disabled).
  void Count(std::string_view name, uint64_t delta = 1);
  void Record(std::string_view name, uint64_t value);
  void Merge(const TelemetrySnapshot& snapshot);
  void RecordEvidence(const Evidence& evidence);

  // Appends a pre-timed 'X' event to the trace buffer (no-op unless tracing). Used
  // by the profiler's WorkSpan to mirror attributed spans — with the work-unit tag
  // as an argument — onto the same timeline the plain Spans draw on.
  void AddCompleteEvent(const char* name, uint64_t ts_ns, uint64_t dur_ns,
                        std::vector<std::pair<std::string, std::string>> args);

  TelemetrySnapshot Snapshot() const;
  std::vector<Evidence> evidence() const;
  std::vector<TraceEvent> trace_events() const;

  // Clears all recorded data (metrics, trace events, evidence); flags are untouched.
  void Reset();

  // Serializes the trace buffer as Chrome trace format ("traceEvents" object form,
  // microsecond timestamps) — loadable in chrome://tracing and Perfetto.
  std::string TraceJson() const;
  // Writes TraceJson() to `path`; returns false on I/O failure.
  bool WriteTrace(const std::string& path) const;

  // Nanoseconds since this registry was constructed (steady clock).
  uint64_t NowNs() const;

 private:
  friend class Span;

  // Span completion: records the duration histogram and, when tracing, the event.
  void EndSpan(const char* name, uint64_t start_ns);
  // Small dense id for the calling thread, assigned on first use.
  int TraceThreadId();

  std::atomic<bool> enabled_{false};
  std::atomic<bool> tracing_{false};
  uint64_t epoch_ns_;  // Steady-clock origin for trace timestamps.

  mutable std::mutex mu_;
  TelemetrySnapshot aggregate_;          // Guarded by mu_.
  std::vector<TraceEvent> trace_;        // Guarded by mu_.
  std::vector<Evidence> evidence_;       // Guarded by mu_.
  int next_thread_id_ = 0;               // Guarded by mu_.
};

// RAII span: measures the enclosing scope's wall time on the calling thread and
// reports it to the registry on destruction — on every exit path, exceptions
// included. When the registry is disabled, construction is a relaxed load + branch.
class Span {
 public:
  explicit Span(const char* name) : Span(Telemetry::Global(), name) {}
  Span(Telemetry& telemetry, const char* name)
      : telemetry_(&telemetry), name_(name), active_(telemetry.enabled()) {
    if (active_) {
      start_ns_ = telemetry_->NowNs();
    }
  }
  ~Span() {
    if (active_) {
      telemetry_->EndSpan(name_, start_ns_);
    }
  }

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  Telemetry* telemetry_;
  const char* name_;
  bool active_;
  uint64_t start_ns_ = 0;
};

}  // namespace parfait::telemetry

// Names a span after its source line so several can coexist in one scope.
#define PARFAIT_TELEMETRY_CONCAT2(a, b) a##b
#define PARFAIT_TELEMETRY_CONCAT(a, b) PARFAIT_TELEMETRY_CONCAT2(a, b)
#define TELEMETRY_SPAN(name) \
  ::parfait::telemetry::Span PARFAIT_TELEMETRY_CONCAT(parfait_telemetry_span_, __LINE__)(name)

#endif  // PARFAIT_SUPPORT_TELEMETRY_H_
