#include "src/support/prof.h"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdio>
#include <map>
#include <utility>

namespace parfait::prof {

namespace {

std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

std::string Fmt(const char* format, double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), format, value);
  return buf;
}

// Length of the union of [start, end) intervals.
uint64_t UnionLength(std::vector<std::pair<uint64_t, uint64_t>>& intervals) {
  if (intervals.empty()) {
    return 0;
  }
  std::sort(intervals.begin(), intervals.end());
  uint64_t total = 0;
  uint64_t cur_start = intervals[0].first;
  uint64_t cur_end = intervals[0].second;
  for (size_t i = 1; i < intervals.size(); i++) {
    if (intervals[i].first > cur_end) {
      total += cur_end - cur_start;
      cur_start = intervals[i].first;
      cur_end = intervals[i].second;
    } else {
      cur_end = std::max(cur_end, intervals[i].second);
    }
  }
  total += cur_end - cur_start;
  return total;
}

// Per-(category, unit) aggregate used by both ProfileJson and the report renderer.
struct UnitRow {
  std::string category;
  std::string unit;
  uint64_t count = 0;
  uint64_t total_ns = 0;
  uint64_t max_ns = 0;  // Longest single span — the unit-granularity ceiling.
};

std::vector<UnitRow> AggregateUnits(const std::vector<SpanEvent>& events) {
  std::map<std::pair<std::string, std::string>, UnitRow> by_unit;
  for (const SpanEvent& e : events) {
    UnitRow& row = by_unit[{e.category, e.unit}];
    row.category = e.category;
    row.unit = e.unit;
    row.count++;
    row.total_ns += e.dur_ns;
    row.max_ns = std::max(row.max_ns, e.dur_ns);
  }
  std::vector<UnitRow> rows;
  rows.reserve(by_unit.size());
  for (auto& [key, row] : by_unit) {
    rows.push_back(std::move(row));
  }
  std::sort(rows.begin(), rows.end(), [](const UnitRow& a, const UnitRow& b) {
    if (a.total_ns != b.total_ns) {
      return a.total_ns > b.total_ns;
    }
    if (a.category != b.category) {
      return a.category < b.category;
    }
    return a.unit < b.unit;
  });
  return rows;
}

}  // namespace

Attribution ComputeAttribution(const std::vector<SpanEvent>& events,
                               uint64_t pool_idle_ns) {
  // Per thread: the window is first event start to last event end; attributed time
  // is the union (not sum — nesting) of the unit-tagged intervals.
  struct PerThread {
    uint64_t window_start = UINT64_MAX;
    uint64_t window_end = 0;
    std::vector<std::pair<uint64_t, uint64_t>> tagged;
  };
  std::map<int, PerThread> threads;
  for (const SpanEvent& e : events) {
    PerThread& t = threads[e.tid];
    t.window_start = std::min(t.window_start, e.start_ns);
    t.window_end = std::max(t.window_end, e.start_ns + e.dur_ns);
    if (!e.unit.empty()) {
      t.tagged.emplace_back(e.start_ns, e.start_ns + e.dur_ns);
    }
  }
  Attribution out;
  out.pool_idle_ns = pool_idle_ns;
  for (auto& [tid, t] : threads) {
    out.window_ns += t.window_end - t.window_start;
    out.attributed_ns += UnionLength(t.tagged);
  }
  uint64_t denom = out.window_ns > pool_idle_ns ? out.window_ns - pool_idle_ns : 0;
  if (denom == 0) {
    out.fraction = 0;
  } else {
    out.fraction = std::min(1.0, static_cast<double>(out.attributed_ns) /
                                     static_cast<double>(denom));
  }
  return out;
}

double AmdahlSerialFraction(double t1_seconds, double tn_seconds, int n_threads) {
  if (n_threads < 2 || t1_seconds <= 0 || tn_seconds <= 0) {
    return 1.0;
  }
  double s = (n_threads * tn_seconds / t1_seconds - 1.0) / (n_threads - 1.0);
  return std::clamp(s, 0.0, 1.0);
}

std::string ProfileJson(const profiler::Profiler& prof, size_t max_units) {
  std::vector<profiler::ProfEvent> raw = prof.Collect();
  std::vector<SpanEvent> events;
  events.reserve(raw.size());
  for (const profiler::ProfEvent& e : raw) {
    events.push_back({e.category, e.unit, e.start_ns, e.dur_ns, e.tid});
  }
  std::map<int, profiler::LaneRecord> lanes = prof.lanes();
  uint64_t pool_idle_ns = 0;
  for (const auto& [lane, record] : lanes) {
    pool_idle_ns += record.idle_ns;
  }
  Attribution attribution = ComputeAttribution(events, pool_idle_ns);

  std::string out = "{\"waits\":{";
  for (int p = 0; p < static_cast<int>(profiler::Probe::kCount); p++) {
    profiler::WaitStats w = prof.waits(static_cast<profiler::Probe>(p));
    if (p > 0) {
      out += ",";
    }
    out += "\"" + std::string(profiler::ProbeName(static_cast<profiler::Probe>(p))) +
           "\":{\"acquires\":" + std::to_string(w.acquires) +
           ",\"contended\":" + std::to_string(w.contended) +
           ",\"wait_ns\":" + std::to_string(w.wait_ns) + "}";
  }
  out += "},\"lanes\":{";
  bool first = true;
  for (const auto& [lane, r] : lanes) {
    if (!first) {
      out += ",";
    }
    first = false;
    out += "\"" + std::to_string(lane) + "\":{\"tasks\":" + std::to_string(r.tasks) +
           ",\"steals\":" + std::to_string(r.steals) +
           ",\"busy_ns\":" + std::to_string(r.busy_ns) +
           ",\"idle_ns\":" + std::to_string(r.idle_ns) +
           ",\"queue_depth_sum\":" + std::to_string(r.queue_depth_sum) +
           ",\"queue_depth_samples\":" + std::to_string(r.queue_depth_samples) +
           ",\"queue_depth_max\":" + std::to_string(r.queue_depth_max) + "}";
  }
  out += "},\"units\":[";
  std::vector<UnitRow> rows = AggregateUnits(events);
  UnitRow other;
  other.category = "(other)";
  size_t kept = std::min(rows.size(), max_units);
  for (size_t i = kept; i < rows.size(); i++) {
    other.count += rows[i].count;
    other.total_ns += rows[i].total_ns;
  }
  rows.resize(kept);
  if (other.count > 0) {
    rows.push_back(other);
  }
  for (size_t i = 0; i < rows.size(); i++) {
    if (i > 0) {
      out += ",";
    }
    out += "{\"category\":\"" + JsonEscape(rows[i].category) + "\",\"unit\":\"" +
           JsonEscape(rows[i].unit) + "\",\"count\":" + std::to_string(rows[i].count) +
           ",\"total_ns\":" + std::to_string(rows[i].total_ns) +
           ",\"max_ns\":" + std::to_string(rows[i].max_ns) + "}";
  }
  // Work-unit parallelism: how many tagged units each lane (trace thread) ran,
  // and the granularity ceiling — the longest single unit against the total unit
  // time. A max_unit_fraction near 1/lanes is as fine as slicing needs to be; near
  // 1.0 it means one indivisible unit dominates and more lanes cannot help.
  std::map<int, uint64_t> units_per_lane;
  uint64_t max_unit_ns = 0;
  uint64_t total_unit_ns = 0;
  for (const SpanEvent& e : events) {
    if (e.unit.empty()) {
      continue;
    }
    units_per_lane[e.tid]++;
    total_unit_ns += e.dur_ns;
    max_unit_ns = std::max(max_unit_ns, e.dur_ns);
  }
  out += "],\"parallelism\":{\"units_per_lane\":{";
  first = true;
  for (const auto& [tid, n] : units_per_lane) {
    if (!first) {
      out += ",";
    }
    first = false;
    out += "\"" + std::to_string(tid) + "\":" + std::to_string(n);
  }
  out += "},\"max_unit_ns\":" + std::to_string(max_unit_ns) +
         ",\"total_unit_ns\":" + std::to_string(total_unit_ns) +
         ",\"max_unit_fraction\":" +
         Fmt("%.4f", total_unit_ns > 0
                         ? static_cast<double>(max_unit_ns) /
                               static_cast<double>(total_unit_ns)
                         : 0.0);
  out += "},\"attribution\":{\"attributed_ns\":" +
         std::to_string(attribution.attributed_ns) +
         ",\"window_ns\":" + std::to_string(attribution.window_ns) +
         ",\"pool_idle_ns\":" + std::to_string(attribution.pool_idle_ns) +
         ",\"fraction\":" + Fmt("%.4f", attribution.fraction) + "}}";
  return out;
}

namespace {

// --- report rendering -----------------------------------------------------------

void RenderUnitsTable(const std::vector<UnitRow>& rows, std::string* out) {
  *out += "top work units (by total thread time):\n";
  *out += "      total_s      count  category              unit\n";
  size_t shown = 0;
  for (const UnitRow& row : rows) {
    if (shown++ >= 20) {
      *out += "  ... (" + std::to_string(rows.size() - 20) + " more)\n";
      break;
    }
    char buf[512];
    std::snprintf(buf, sizeof(buf), "  %11.3f  %9llu  %-20s  %s\n",
                  row.total_ns / 1e9, static_cast<unsigned long long>(row.count),
                  row.category.c_str(), row.unit.empty() ? "-" : row.unit.c_str());
    *out += buf;
  }
}

// Groups unit rows by their row-level work unit — the annotation with any
// " unit=k/N" segment suffix stripped — and reports, per group, the longest single
// unit against the group's total thread time. This is the slicing-quality gauge:
// a dominant row whose max unit is a small fraction of its total decomposes well
// across lanes (and shards); a fraction near 1.0 is an indivisible row.
void RenderUnitBalance(const std::vector<UnitRow>& rows, std::string* out) {
  struct Group {
    uint64_t total_ns = 0;
    uint64_t max_ns = 0;
    uint64_t count = 0;
  };
  std::map<std::string, Group> groups;
  bool any_sliced = false;
  for (const UnitRow& row : rows) {
    if (row.unit.empty() || row.category == "(other)") {
      continue;
    }
    std::string key = row.unit;
    size_t cut = key.find(" unit=");
    if (cut != std::string::npos) {
      key.resize(cut);
      any_sliced = true;
    }
    Group& g = groups[row.category + " " + key];
    g.total_ns += row.total_ns;
    g.max_ns = std::max(g.max_ns, row.max_ns);
    g.count += row.count;
  }
  if (!any_sliced || groups.empty()) {
    return;  // Nothing was sliced into units; the table above says it all.
  }
  std::vector<std::pair<std::string, Group>> ordered(groups.begin(), groups.end());
  std::sort(ordered.begin(), ordered.end(), [](const auto& a, const auto& b) {
    return a.second.total_ns > b.second.total_ns;
  });
  *out += "work-unit balance (longest single unit / group thread time):\n";
  *out += "  max_unit%    total_s      units  group\n";
  size_t shown = 0;
  for (const auto& [name, g] : ordered) {
    if (shown++ >= 12) {
      *out += "  ... (" + std::to_string(ordered.size() - 12) + " more)\n";
      break;
    }
    char buf[512];
    std::snprintf(buf, sizeof(buf), "  %9.1f  %9.3f  %9llu  %s\n",
                  g.total_ns > 0 ? 100.0 * g.max_ns / g.total_ns : 0.0,
                  g.total_ns / 1e9, static_cast<unsigned long long>(g.count),
                  name.c_str());
    *out += buf;
  }
}

void RenderAttribution(const Attribution& a, std::string* out) {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "attribution: %.1f%% of %.3f thread-seconds attributed to named work "
                "units (pool idle %.3f s accounted separately)\n",
                a.fraction * 100.0, (a.window_ns - std::min(a.window_ns, a.pool_idle_ns)) / 1e9,
                a.pool_idle_ns / 1e9);
  *out += buf;
}

// Renders a Chrome trace ("traceEvents"): rebuild SpanEvents from the 'X' events
// (timestamps are microseconds in trace format) and report units + attribution.
bool RenderTraceReport(const json::Value& root, std::string* out, std::string* error) {
  const json::Value* trace_events = root.Find("traceEvents");
  if (trace_events == nullptr || !trace_events->is_array()) {
    *error = "no traceEvents array";
    return false;
  }
  std::vector<SpanEvent> events;
  for (const json::Value& e : trace_events->AsArray()) {
    if (!e.is_object() || e.StringOr("ph", "") != "X") {
      continue;
    }
    SpanEvent span;
    span.category = e.StringOr("name", "");
    span.start_ns = static_cast<uint64_t>(e.NumberOr("ts", 0) * 1000.0);
    span.dur_ns = static_cast<uint64_t>(e.NumberOr("dur", 0) * 1000.0);
    span.tid = static_cast<int>(e.NumberOr("tid", 0));
    const json::Value* args = e.Find("args");
    if (args != nullptr) {
      span.unit = args->StringOr("unit", "");
    }
    events.push_back(std::move(span));
  }
  *out += "chrome trace: " + std::to_string(events.size()) + " complete events\n";
  RenderUnitsTable(AggregateUnits(events), out);
  // A trace has no lane records, so pool idle cannot be subtracted here; the
  // bench-JSON report is the authoritative attribution number.
  RenderAttribution(ComputeAttribution(events, 0), out);
  return true;
}

void RenderProfileSection(const json::Value& profile, std::string* out) {
  const json::Value* units = profile.Find("units");
  if (units != nullptr && units->is_array()) {
    std::vector<UnitRow> rows;
    for (const json::Value& u : units->AsArray()) {
      UnitRow row;
      row.category = u.StringOr("category", "");
      row.unit = u.StringOr("unit", "");
      row.count = static_cast<uint64_t>(u.NumberOr("count", 0));
      row.total_ns = static_cast<uint64_t>(u.NumberOr("total_ns", 0));
      row.max_ns = static_cast<uint64_t>(u.NumberOr("max_ns", 0));
      rows.push_back(std::move(row));
    }
    RenderUnitsTable(rows, out);
    RenderUnitBalance(rows, out);
  }
  const json::Value* parallelism = profile.Find("parallelism");
  if (parallelism != nullptr && parallelism->is_object()) {
    const json::Value* per_lane = parallelism->Find("units_per_lane");
    *out += "parallelism: units per lane {";
    if (per_lane != nullptr && per_lane->is_object()) {
      bool first = true;
      for (const auto& [lane, n] : per_lane->AsObject()) {
        if (!first) {
          *out += ", ";
        }
        first = false;
        *out += lane + ": " + Fmt("%g", n.AsNumber());
      }
    }
    char buf[160];
    std::snprintf(buf, sizeof(buf),
                  "}; max unit %.3f s = %.1f%% of %.3f s unit time\n",
                  parallelism->NumberOr("max_unit_ns", 0) / 1e9,
                  parallelism->NumberOr("max_unit_fraction", 0) * 100.0,
                  parallelism->NumberOr("total_unit_ns", 0) / 1e9);
    *out += buf;
  }
  const json::Value* attribution = profile.Find("attribution");
  if (attribution != nullptr && attribution->is_object()) {
    Attribution a;
    a.attributed_ns = static_cast<uint64_t>(attribution->NumberOr("attributed_ns", 0));
    a.window_ns = static_cast<uint64_t>(attribution->NumberOr("window_ns", 0));
    a.pool_idle_ns = static_cast<uint64_t>(attribution->NumberOr("pool_idle_ns", 0));
    a.fraction = attribution->NumberOr("fraction", 0);
    RenderAttribution(a, out);
  }
  const json::Value* lanes = profile.Find("lanes");
  if (lanes != nullptr && lanes->is_object() && !lanes->AsObject().empty()) {
    *out += "lanes (lane 0 = fork-join caller):\n";
    *out += "  lane      tasks  steals    busy_s    idle_s   util%  avg_depth  max_depth\n";
    for (const auto& [name, lane] : lanes->AsObject()) {
      double busy = lane.NumberOr("busy_ns", 0) / 1e9;
      double idle = lane.NumberOr("idle_ns", 0) / 1e9;
      double util = (busy + idle) > 0 ? busy / (busy + idle) * 100.0 : 0;
      double samples = lane.NumberOr("queue_depth_samples", 0);
      double avg_depth = samples > 0 ? lane.NumberOr("queue_depth_sum", 0) / samples : 0;
      char buf[256];
      std::snprintf(buf, sizeof(buf),
                    "  %4s  %9.0f  %6.0f  %8.3f  %8.3f  %6.1f  %9.2f  %9.0f\n",
                    name.c_str(), lane.NumberOr("tasks", 0), lane.NumberOr("steals", 0),
                    busy, idle, util, avg_depth, lane.NumberOr("queue_depth_max", 0));
      *out += buf;
    }
  }
  const json::Value* waits = profile.Find("waits");
  if (waits != nullptr && waits->is_object()) {
    *out += "contention probes:\n";
    *out += "  probe               acquires  contended    wait_ms\n";
    for (const auto& [name, w] : waits->AsObject()) {
      char buf[256];
      std::snprintf(buf, sizeof(buf), "  %-18s  %8.0f  %9.0f  %9.3f\n", name.c_str(),
                    w.NumberOr("acquires", 0), w.NumberOr("contended", 0),
                    w.NumberOr("wait_ns", 0) / 1e6);
      *out += buf;
    }
  }
}

void RenderMeta(const json::Value& root, std::string* out) {
  const json::Value* meta = root.Find("meta");
  if (meta == nullptr || !meta->is_object()) {
    return;
  }
  *out += "meta:";
  for (const auto& [key, value] : meta->AsObject()) {
    *out += " " + key + "=";
    if (value.is_string()) {
      *out += value.AsString();
    } else if (value.is_number()) {
      *out += Fmt("%g", value.AsNumber());
    }
  }
  *out += "\n";
}

bool RenderBenchReport(const json::Value& root, std::string* out, std::string* error) {
  *out += "bench: " + root.StringOr("bench", "(unnamed)");
  const json::Value* threads = root.Find("threads");
  if (threads != nullptr && threads->is_number()) {
    *out += "  threads: " + Fmt("%g", threads->AsNumber());
  }
  *out += "\n";
  RenderMeta(root, out);

  const json::Value* phases = root.Find("phases");
  if (phases != nullptr && phases->is_array() && !phases->AsArray().empty()) {
    *out += "phases:\n";
    for (const json::Value& phase : phases->AsArray()) {
      char buf[256];
      std::snprintf(buf, sizeof(buf), "  %-32s %10.3f s\n",
                    phase.StringOr("name", "?").c_str(), phase.NumberOr("seconds", 0));
      *out += buf;
    }
  }

  const json::Value* legs = root.Find("legs");
  if (legs != nullptr && legs->is_array() && !legs->AsArray().empty()) {
    *out += "legs (Amdahl serial fraction from 1-thread vs N-thread wall time):\n";
    *out += "  backend  threads  serial_s  parallel_s  speedup  serial_fraction\n";
    for (const json::Value& leg : legs->AsArray()) {
      double t1 = leg.NumberOr("serial_seconds", 0);
      double tn = leg.NumberOr("parallel_seconds", 0);
      int n = static_cast<int>(leg.NumberOr("threads", 0));
      char buf[256];
      std::snprintf(buf, sizeof(buf), "  %-7s  %7d  %8.3f  %10.3f  %7.3f  %15.3f\n",
                    leg.StringOr("backend", "?").c_str(), n, t1, tn,
                    tn > 0 ? t1 / tn : 0, AmdahlSerialFraction(t1, tn, n));
      *out += buf;
    }
  }

  const json::Value* profile = root.Find("profile");
  if (profile != nullptr && profile->is_object()) {
    RenderProfileSection(*profile, out);
  }

  if ((phases == nullptr || !phases->is_array()) && legs == nullptr &&
      profile == nullptr && root.Find("telemetry") == nullptr &&
      root.Find("bench") == nullptr) {
    *error = "document has neither bench-report nor trace shape";
    return false;
  }
  return true;
}

}  // namespace

bool RenderReport(const json::Value& root, std::string* out, std::string* error) {
  if (!root.is_object()) {
    *error = "top-level JSON value is not an object";
    return false;
  }
  if (root.Find("traceEvents") != nullptr) {
    return RenderTraceReport(root, out, error);
  }
  return RenderBenchReport(root, out, error);
}

// --- diff -----------------------------------------------------------------------

Direction ClassifyMetric(std::string_view path) {
  std::string lower(path);
  for (char& c : lower) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  auto contains = [&lower](const char* needle) {
    return lower.find(needle) != std::string::npos;
  };
  // Order matters: "serial_fraction" must win before any higher-better pattern.
  if (contains("serial_fraction")) {
    return Direction::kLowerBetter;
  }
  if (contains("per_s") || contains("speedup") || contains("throughput") ||
      contains("utilization")) {
    return Direction::kHigherBetter;
  }
  if (contains("seconds") || contains("_us") || contains("_ms")) {
    return Direction::kLowerBetter;
  }
  return Direction::kInfo;
}

namespace {

bool SkippedSubtree(const std::string& key) {
  // Runtime-only sections: schedule-dependent, not meaningful to gate.
  return key == "profile" || key == "meta" || key == "pool" || key == "evidence";
}

void DiffWalk(const json::Value& before, const json::Value& after,
              const std::string& path, const DiffOptions& options, DiffResult* out) {
  if (before.is_number() && after.is_number()) {
    DiffEntry entry;
    entry.path = path;
    entry.before = before.AsNumber();
    entry.after = after.AsNumber();
    if (entry.before != 0) {
      entry.change_pct = (entry.after - entry.before) / std::abs(entry.before) * 100.0;
    }
    entry.direction = ClassifyMetric(path);
    if (entry.direction == Direction::kHigherBetter) {
      entry.regression = entry.change_pct < -options.max_regression_pct;
    } else if (entry.direction == Direction::kLowerBetter) {
      entry.regression = entry.change_pct > options.max_regression_pct;
    }
    if (entry.regression) {
      out->regressions++;
    }
    out->entries.push_back(std::move(entry));
    return;
  }
  if (before.is_object() && after.is_object()) {
    for (const auto& [key, value] : before.AsObject()) {
      if (SkippedSubtree(key)) {
        continue;
      }
      const json::Value* other = after.Find(key);
      if (other != nullptr) {
        DiffWalk(value, *other, path.empty() ? key : path + "." + key, options, out);
      }
    }
    return;
  }
  if (before.is_array() && after.is_array()) {
    size_t n = std::min(before.AsArray().size(), after.AsArray().size());
    for (size_t i = 0; i < n; i++) {
      DiffWalk(before.AsArray()[i], after.AsArray()[i],
               path + "[" + std::to_string(i) + "]", options, out);
    }
    return;
  }
  // Kind mismatch or non-numeric scalars: nothing to compare.
}

}  // namespace

DiffResult Diff(const json::Value& before, const json::Value& after,
                const DiffOptions& options) {
  DiffResult result;
  DiffWalk(before, after, "", options, &result);
  return result;
}

std::string RenderDiff(const DiffResult& result) {
  std::string out;
  out += "  metric                                              before          after  change\n";
  for (const DiffEntry& entry : result.entries) {
    const char* marker = "";
    if (entry.regression) {
      marker = "  REGRESSION";
    } else if (entry.direction == Direction::kInfo) {
      marker = "  (info)";
    }
    char buf[512];
    std::snprintf(buf, sizeof(buf), "  %-44s  %14.6g  %13.6g  %+6.1f%%%s\n",
                  entry.path.c_str(), entry.before, entry.after, entry.change_pct,
                  marker);
    out += buf;
  }
  char buf[128];
  std::snprintf(buf, sizeof(buf), "  %d gated metric(s) regressed\n", result.regressions);
  out += buf;
  return out;
}

}  // namespace parfait::prof
