// Byte-buffer utilities shared across the Parfait reproduction.
//
// Every level of abstraction below the application specification traffics in raw byte
// buffers (the paper's `bytes` I/O type, table 1), so these helpers are used everywhere:
// hex round-tripping for test vectors, little/big-endian packing for the wire protocol
// and crypto code, and constant-time comparison for the leakage-sensitive paths.
#ifndef PARFAIT_SUPPORT_BYTES_H_
#define PARFAIT_SUPPORT_BYTES_H_

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace parfait {

using Bytes = std::vector<uint8_t>;

// Parses a hex string ("deadbeef", case-insensitive, optional "0x" prefix) into bytes.
// Aborts on malformed input; intended for literals in tests and tools.
Bytes FromHex(std::string_view hex);

// Formats bytes as lowercase hex.
std::string ToHex(std::span<const uint8_t> data);

// Little-endian packing (the RISC-V side of the system is little-endian).
uint32_t LoadLe32(const uint8_t* p);
uint64_t LoadLe64(const uint8_t* p);
void StoreLe32(uint8_t* p, uint32_t v);
void StoreLe64(uint8_t* p, uint64_t v);

// Big-endian packing (crypto serialization: SHA-256 schedules, P-256 field elements).
uint32_t LoadBe32(const uint8_t* p);
uint64_t LoadBe64(const uint8_t* p);
void StoreBe32(uint8_t* p, uint32_t v);
void StoreBe64(uint8_t* p, uint64_t v);

// Constant-time equality: runtime does not depend on where the buffers differ.
// Returns true iff a and b have equal length and contents.
bool ConstantTimeEqual(std::span<const uint8_t> a, std::span<const uint8_t> b);

// Constant-time select: writes (mask ? a : b) into out, where mask is 0x00 or 0xff per
// byte semantics. Used by the ECDSA error-masking trick (paper section 7.1).
void ConstantTimeSelect(uint8_t mask, std::span<const uint8_t> a, std::span<const uint8_t> b,
                        std::span<uint8_t> out);

// Concatenates buffers.
Bytes Concat(std::span<const uint8_t> a, std::span<const uint8_t> b);

}  // namespace parfait

#endif  // PARFAIT_SUPPORT_BYTES_H_
