#include "src/support/bytes.h"

#include <cstdio>
#include <cstdlib>

namespace parfait {

namespace {

int HexNibble(char c) {
  if (c >= '0' && c <= '9') {
    return c - '0';
  }
  if (c >= 'a' && c <= 'f') {
    return c - 'a' + 10;
  }
  if (c >= 'A' && c <= 'F') {
    return c - 'A' + 10;
  }
  return -1;
}

}  // namespace

Bytes FromHex(std::string_view hex) {
  if (hex.size() >= 2 && hex[0] == '0' && (hex[1] == 'x' || hex[1] == 'X')) {
    hex.remove_prefix(2);
  }
  if (hex.size() % 2 != 0) {
    std::fprintf(stderr, "FromHex: odd-length hex string\n");
    std::abort();
  }
  Bytes out;
  out.reserve(hex.size() / 2);
  for (size_t i = 0; i < hex.size(); i += 2) {
    int hi = HexNibble(hex[i]);
    int lo = HexNibble(hex[i + 1]);
    if (hi < 0 || lo < 0) {
      std::fprintf(stderr, "FromHex: bad hex character\n");
      std::abort();
    }
    out.push_back(static_cast<uint8_t>((hi << 4) | lo));
  }
  return out;
}

std::string ToHex(std::span<const uint8_t> data) {
  static const char kDigits[] = "0123456789abcdef";
  std::string out;
  out.reserve(data.size() * 2);
  for (uint8_t b : data) {
    out.push_back(kDigits[b >> 4]);
    out.push_back(kDigits[b & 0xf]);
  }
  return out;
}

uint32_t LoadLe32(const uint8_t* p) {
  return static_cast<uint32_t>(p[0]) | (static_cast<uint32_t>(p[1]) << 8) |
         (static_cast<uint32_t>(p[2]) << 16) | (static_cast<uint32_t>(p[3]) << 24);
}

uint64_t LoadLe64(const uint8_t* p) {
  return static_cast<uint64_t>(LoadLe32(p)) | (static_cast<uint64_t>(LoadLe32(p + 4)) << 32);
}

void StoreLe32(uint8_t* p, uint32_t v) {
  p[0] = static_cast<uint8_t>(v);
  p[1] = static_cast<uint8_t>(v >> 8);
  p[2] = static_cast<uint8_t>(v >> 16);
  p[3] = static_cast<uint8_t>(v >> 24);
}

void StoreLe64(uint8_t* p, uint64_t v) {
  StoreLe32(p, static_cast<uint32_t>(v));
  StoreLe32(p + 4, static_cast<uint32_t>(v >> 32));
}

uint32_t LoadBe32(const uint8_t* p) {
  return (static_cast<uint32_t>(p[0]) << 24) | (static_cast<uint32_t>(p[1]) << 16) |
         (static_cast<uint32_t>(p[2]) << 8) | static_cast<uint32_t>(p[3]);
}

uint64_t LoadBe64(const uint8_t* p) {
  return (static_cast<uint64_t>(LoadBe32(p)) << 32) | static_cast<uint64_t>(LoadBe32(p + 4));
}

void StoreBe32(uint8_t* p, uint32_t v) {
  p[0] = static_cast<uint8_t>(v >> 24);
  p[1] = static_cast<uint8_t>(v >> 16);
  p[2] = static_cast<uint8_t>(v >> 8);
  p[3] = static_cast<uint8_t>(v);
}

void StoreBe64(uint8_t* p, uint64_t v) {
  StoreBe32(p, static_cast<uint32_t>(v >> 32));
  StoreBe32(p + 4, static_cast<uint32_t>(v));
}

bool ConstantTimeEqual(std::span<const uint8_t> a, std::span<const uint8_t> b) {
  if (a.size() != b.size()) {
    return false;
  }
  uint8_t acc = 0;
  for (size_t i = 0; i < a.size(); i++) {
    acc |= static_cast<uint8_t>(a[i] ^ b[i]);
  }
  return acc == 0;
}

void ConstantTimeSelect(uint8_t mask, std::span<const uint8_t> a, std::span<const uint8_t> b,
                        std::span<uint8_t> out) {
  for (size_t i = 0; i < out.size(); i++) {
    out[i] = static_cast<uint8_t>((a[i] & mask) | (b[i] & static_cast<uint8_t>(~mask)));
  }
}

Bytes Concat(std::span<const uint8_t> a, std::span<const uint8_t> b) {
  Bytes out;
  out.reserve(a.size() + b.size());
  out.insert(out.end(), a.begin(), a.end());
  out.insert(out.end(), b.begin(), b.end());
  return out;
}

}  // namespace parfait
