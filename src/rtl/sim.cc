#include "src/rtl/sim.h"

#include <cstdio>

namespace parfait::rtl {

int64_t FirstDivergence(const WireTrace& a, const WireTrace& b) {
  size_t n = std::min(a.size(), b.size());
  for (size_t i = 0; i < n; i++) {
    if (!(a[i] == b[i])) {
      return static_cast<int64_t>(i);
    }
  }
  if (a.size() != b.size()) {
    return static_cast<int64_t>(n);
  }
  return -1;
}

std::string FormatSample(const WireSample& s) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "tx_valid=%d tx_data=0x%02x rx_ready=%d", s.tx_valid,
                s.tx_data, s.rx_ready);
  return buf;
}

}  // namespace parfait::rtl
