// Cycle-level simulation framework for the SoC models.
//
// The paper's SoCs are Verilog designs simulated (and verified) at the cycle-precise
// register-transfer level. This framework provides the equivalent substrate for our C++
// CPU/peripheral models: a taint-carrying word type (for the leakage-model checker), a
// wire-level I/O sample type (the adversary's per-cycle view, section 2's threat
// model), and trace recording used by the Knox2-style equivalence checks.
#ifndef PARFAIT_RTL_SIM_H_
#define PARFAIT_RTL_SIM_H_

#include <cstdint>
#include <string>
#include <vector>

namespace parfait::rtl {

// A 32-bit hardware word with a taint mask. Taint bits mark data derived from secrets;
// the taint checker (a leakage-model analysis, contrasted with the cycle-accurate
// self-composition check in the paper's related-work discussion) propagates them
// through every datapath operation and flags any flow into control or output wires.
struct Word {
  uint32_t bits = 0;
  uint32_t taint = 0;  // Per-bit taint is overkill; a word-granular mask is kept per bit
                       // anyway so shifted subfields stay tainted.

  static Word Clean(uint32_t v) { return Word{v, 0}; }
  static Word Tainted(uint32_t v) { return Word{v, 0xffffffffu}; }
  bool AnyTaint() const { return taint != 0; }
};

// One cycle of wire-level I/O as seen by the adversary: everything observable on the
// HSM's digital pins. The paper's threat model gives the adversary the ability to set
// input wires and read output wires every cycle; equality of WireSample traces is
// exactly "observational equivalence" at the SoC level.
struct WireSample {
  // Outputs driven by the HSM.
  bool tx_valid = false;
  uint8_t tx_data = 0;
  bool rx_ready = false;  // Flow control back to the host.

  friend bool operator==(const WireSample&, const WireSample&) = default;
};

// Inputs driven by the host/adversary each cycle.
struct WireInput {
  bool rx_valid = false;
  uint8_t rx_data = 0;
  bool tx_ready = true;

  friend bool operator==(const WireInput&, const WireInput&) = default;
};

// A recorded wire trace; the unit of comparison for IPR at the circuit level.
using WireTrace = std::vector<WireSample>;

// Returns the first cycle index at which the traces differ, or -1 if equal (length
// differences count as a difference at the shorter length).
int64_t FirstDivergence(const WireTrace& a, const WireTrace& b);

// Formats a sample for diagnostics.
std::string FormatSample(const WireSample& s);

}  // namespace parfait::rtl

#endif  // PARFAIT_RTL_SIM_H_
