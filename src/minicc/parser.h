// MiniC recursive-descent parser.
#ifndef PARFAIT_MINICC_PARSER_H_
#define PARFAIT_MINICC_PARSER_H_

#include <string>

#include "src/minicc/ast.h"
#include "src/support/status.h"

namespace parfait::minicc {

// Parses a MiniC translation unit. Enum constants are folded into array sizes and
// global initializers at parse time and also recorded for expression references.
Result<TranslationUnit> Parse(const std::string& source);

}  // namespace parfait::minicc

#endif  // PARFAIT_MINICC_PARSER_H_
