// MiniC -> RV32IM code generation.
//
// Two code generators reproduce the paper's Table 5 compiler comparison:
//   - O0: fully naive. Every local lives in the stack frame, every intermediate value
//     is materialized, no folding. This plays the role of CompCert -O1 (the verified
//     but slow compiler in the paper's pipeline).
//   - O2: scalar locals and parameters are promoted to callee-saved registers,
//     constants fold at compile time, and immediate instruction forms are used. This
//     plays the role of GCC -O2 (the paper's unverified fast baseline).
//
// Both generators use the same calling convention as the paper's CompCert RISC-V
// backend: arguments in a0..a7, result in a0, sp 16-byte aligned, ra/callee-saved
// registers preserved.
#ifndef PARFAIT_MINICC_CODEGEN_H_
#define PARFAIT_MINICC_CODEGEN_H_

#include <string>

#include "src/minicc/ast.h"
#include "src/riscv/assembler.h"
#include "src/support/status.h"

namespace parfait::minicc {

struct CodegenOptions {
  int opt_level = 0;  // 0 or 2.
};

// Appends code and data for the translation unit to `program` (functions into .text,
// const globals into .rodata, initialized globals into .data, the rest into .bss).
// Returns an error string on the first semantic error.
Result<bool> Generate(const TranslationUnit& unit, const CodegenOptions& options,
                      riscv::Program* program);

}  // namespace parfait::minicc

#endif  // PARFAIT_MINICC_CODEGEN_H_
