// MiniC -> RV32IM code generation.
//
// Two code generators reproduce the paper's Table 5 compiler comparison:
//   - O0: fully naive. Every local lives in the stack frame, every intermediate value
//     is materialized, no folding. This plays the role of CompCert -O1 (the verified
//     but slow compiler in the paper's pipeline).
//   - O2: scalar locals and parameters are promoted to callee-saved registers,
//     constants fold at compile time, and immediate instruction forms are used. This
//     plays the role of GCC -O2 (the paper's unverified fast baseline).
//
// Both generators use the same calling convention as the paper's CompCert RISC-V
// backend: arguments in a0..a7, result in a0, sp 16-byte aligned, ra/callee-saved
// registers preserved.
#ifndef PARFAIT_MINICC_CODEGEN_H_
#define PARFAIT_MINICC_CODEGEN_H_

#include <string>

#include "src/minicc/ast.h"
#include "src/riscv/assembler.h"
#include "src/riscv/witness.h"
#include "src/support/status.h"

namespace parfait::minicc {

// Seeded miscompilation classes for the translation-validator mutation harness
// (tests only; kNone in every production build). Each injects one classic compiler
// bug at the `site`-th eligible emission point within `function`:
//   kWrongRegister      swaps the operand registers of a subtraction,
//   kDroppedStore       omits the store instruction of an assignment,
//   kSwappedBranch      inverts an if/while branch polarity (beq -> bne),
//   kStrengthReducedMul replaces a mul with a data-dependent repeated-addition
//                       loop (the compiler-introduced timing channel of the
//                       leakage-preservation story: correct value, secret-dependent
//                       trip count).
// O2-only classes targeting the optimizer's witness transformers:
//   kClobberedSavedReg  skips the prologue save of the first promoted
//                       callee-saved register (the promotion clobbers the
//                       caller's value),
//   kWrongConstFold     folds `a + b` of two constants to a+b+1,
//   kBadAddrFold        adds 4 to the offset a folded address computation
//                       merges into a load/store,
//   kDroppedRestore     omits the epilogue reload of the first saved
//                       callee-saved register.
enum class MutationKind : uint8_t {
  kNone,
  kWrongRegister,
  kDroppedStore,
  kSwappedBranch,
  kStrengthReducedMul,
  kClobberedSavedReg,
  kWrongConstFold,
  kBadAddrFold,
  kDroppedRestore,
};

struct Mutation {
  MutationKind kind = MutationKind::kNone;
  std::string function;  // Mutate inside this function only.
  int site = 0;          // Which eligible site (0-based, in emission order).
};

struct CodegenOptions {
  int opt_level = 0;  // 0 or 2.
  // When non-null, codegen fills in the per-function translation witness
  // (source-stmt <-> asm-range map, stack-slot and register-allocation maps).
  riscv::Witness* witness = nullptr;
  Mutation mutation;
};

// Appends code and data for the translation unit to `program` (functions into .text,
// const globals into .rodata, initialized globals into .data, the rest into .bss).
// Returns an error string on the first semantic error.
Result<bool> Generate(const TranslationUnit& unit, const CodegenOptions& options,
                      riscv::Program* program);

}  // namespace parfait::minicc

#endif  // PARFAIT_MINICC_CODEGEN_H_
