// MiniC lexer.
#ifndef PARFAIT_MINICC_LEXER_H_
#define PARFAIT_MINICC_LEXER_H_

#include <cstdint>
#include <string>
#include <vector>

namespace parfait::minicc {

struct Token {
  enum class Kind : uint8_t {
    kIdent,
    kNumber,
    kPunct,   // Operators and punctuation, text holds the exact spelling.
    kEof,
  };
  Kind kind;
  std::string text;
  uint32_t number = 0;
  int line = 0;
};

// Tokenizes MiniC source. '#'-lines are skipped; // and /* */ comments are removed.
// Returns false and sets *error on a malformed token.
bool Lex(const std::string& source, std::vector<Token>* tokens, std::string* error);

}  // namespace parfait::minicc

#endif  // PARFAIT_MINICC_LEXER_H_
