#include "src/minicc/parser.h"

#include <map>

#include "src/minicc/lexer.h"

namespace parfait::minicc {

namespace {

std::string TypeName(const Type& t) {
  std::string s;
  switch (t.base) {
    case Type::Base::kVoid: s = "void"; break;
    case Type::Base::kU8: s = "u8"; break;
    case Type::Base::kU32: s = "u32"; break;
  }
  for (int i = 0; i < t.ptr; i++) {
    s += "*";
  }
  return s;
}

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<TranslationUnit> Parse() {
    while (!AtEof()) {
      if (!ParseTopLevel()) {
        return Result<TranslationUnit>::Error(error_);
      }
    }
    return std::move(unit_);
  }

 private:
  const Token& Cur() const { return tokens_[pos_]; }
  const Token& Ahead(size_t n) const {
    size_t i = pos_ + n;
    return i < tokens_.size() ? tokens_[i] : tokens_.back();
  }
  bool AtEof() const { return Cur().kind == Token::Kind::kEof; }
  void Advance() {
    if (!AtEof()) {
      pos_++;
    }
  }

  bool Fail(const std::string& msg) {
    error_ = "line " + std::to_string(Cur().line) + ": " + msg +
             (Cur().text.empty() ? "" : " (at '" + Cur().text + "')");
    return false;
  }

  bool IsPunct(const char* p) const {
    return Cur().kind == Token::Kind::kPunct && Cur().text == p;
  }
  bool IsIdent(const char* name) const {
    return Cur().kind == Token::Kind::kIdent && Cur().text == name;
  }
  bool AcceptPunct(const char* p) {
    if (IsPunct(p)) {
      Advance();
      return true;
    }
    return false;
  }
  bool ExpectPunct(const char* p) {
    if (AcceptPunct(p)) {
      return true;
    }
    return Fail(std::string("expected '") + p + "'");
  }
  bool AcceptIdent(const char* name) {
    if (IsIdent(name)) {
      Advance();
      return true;
    }
    return false;
  }

  bool IsTypeStart(size_t lookahead = 0) const {
    const Token& t = Ahead(lookahead);
    if (t.kind != Token::Kind::kIdent) {
      return false;
    }
    return t.text == "u8" || t.text == "u32" || t.text == "void" || t.text == "const" ||
           t.text == "volatile" || t.text == "static" || t.text == "unsigned" ||
           t.text == "secret";
  }

  // Parses qualifiers + base type + pointer stars. Sets *is_const for rodata placement
  // and *is_secret for the taint-seed annotation in the symbol side table.
  bool ParseType(Type* out, bool* is_const, bool* is_secret = nullptr) {
    bool saw_const = false;
    bool saw_secret = false;
    bool saw_base = false;
    Type t;
    while (Cur().kind == Token::Kind::kIdent) {
      const std::string& w = Cur().text;
      if (w == "const") {
        saw_const = true;
        Advance();
      } else if (w == "secret") {
        saw_secret = true;
        Advance();
      } else if (w == "volatile" || w == "static") {
        Advance();
      } else if (w == "u8") {
        t.base = Type::Base::kU8;
        saw_base = true;
        Advance();
        break;
      } else if (w == "u32") {
        t.base = Type::Base::kU32;
        saw_base = true;
        Advance();
        break;
      } else if (w == "void") {
        t.base = Type::Base::kVoid;
        saw_base = true;
        Advance();
        break;
      } else {
        break;
      }
    }
    if (!saw_base) {
      return Fail("expected type name");
    }
    while (true) {
      // Allow qualifiers between stars: `u32 * volatile p` etc.
      if (AcceptIdent("volatile") || AcceptIdent("const")) {
        continue;
      }
      if (AcceptPunct("*")) {
        t.ptr++;
        continue;
      }
      break;
    }
    *out = t;
    if (is_const != nullptr) {
      *is_const = saw_const;
    }
    if (is_secret != nullptr) {
      *is_secret = saw_secret;
    } else if (saw_secret) {
      return Fail("secret qualifier is only valid on globals");
    }
    return true;
  }

  bool ParseConstValue(uint32_t* out) {
    bool negate = false;
    if (AcceptPunct("-")) {
      negate = true;
    }
    if (Cur().kind == Token::Kind::kNumber) {
      *out = Cur().number;
      Advance();
    } else if (Cur().kind == Token::Kind::kIdent && enums_.count(Cur().text) != 0) {
      *out = enums_.at(Cur().text);
      Advance();
    } else {
      return Fail("expected constant");
    }
    if (negate) {
      *out = 0u - *out;
    }
    return true;
  }

  bool ParseTopLevel() {
    if (AcceptIdent("enum")) {
      return ParseEnum();
    }
    if (!IsTypeStart()) {
      return Fail("expected declaration");
    }
    Type type;
    bool is_const = false;
    bool is_secret = false;
    if (!ParseType(&type, &is_const, &is_secret)) {
      return false;
    }
    if (Cur().kind != Token::Kind::kIdent) {
      return Fail("expected identifier");
    }
    std::string name = Cur().text;
    int line = Cur().line;
    Advance();
    if (IsPunct("(")) {
      if (is_secret) {
        return Fail("secret qualifier is only valid on globals");
      }
      return ParseFunction(type, name, line);
    }
    return ParseGlobal(type, is_const, is_secret, name, line);
  }

  bool ParseEnum() {
    if (!ExpectPunct("{")) {
      return false;
    }
    uint32_t next_value = 0;
    while (!IsPunct("}")) {
      if (Cur().kind != Token::Kind::kIdent) {
        return Fail("expected enum constant name");
      }
      std::string name = Cur().text;
      Advance();
      uint32_t value = next_value;
      if (AcceptPunct("=")) {
        if (!ParseConstValue(&value)) {
          return false;
        }
      }
      enums_[name] = value;
      unit_.enums.push_back(EnumConst{name, value});
      next_value = value + 1;
      if (!AcceptPunct(",")) {
        break;
      }
    }
    return ExpectPunct("}") && ExpectPunct(";");
  }

  bool ParseGlobal(Type type, bool is_const, bool is_secret, const std::string& name,
                   int line) {
    Global g;
    g.name = name;
    g.type = type;
    g.is_const = is_const;
    g.is_secret = is_secret;
    g.line = line;
    if (AcceptPunct("[")) {
      if (!ParseConstValue(&g.array_size)) {
        return false;
      }
      if (g.array_size == 0) {
        return Fail("zero-sized array");
      }
      if (!ExpectPunct("]")) {
        return false;
      }
    }
    if (AcceptPunct("=")) {
      if (AcceptPunct("{")) {
        while (!IsPunct("}")) {
          uint32_t v;
          if (!ParseConstValue(&v)) {
            return false;
          }
          g.init.push_back(v);
          if (!AcceptPunct(",")) {
            break;
          }
        }
        if (!ExpectPunct("}")) {
          return false;
        }
        if (g.array_size == 0) {
          return Fail("brace initializer on scalar");
        }
        if (g.init.size() > g.array_size) {
          return Fail("too many initializers");
        }
      } else {
        uint32_t v;
        if (!ParseConstValue(&v)) {
          return false;
        }
        g.init.push_back(v);
      }
    }
    unit_.globals.push_back(std::move(g));
    return ExpectPunct(";");
  }

  bool ParseFunction(Type return_type, const std::string& name, int line) {
    Function fn;
    fn.name = name;
    fn.return_type = return_type;
    fn.line = line;
    if (!ExpectPunct("(")) {
      return false;
    }
    if (AcceptIdent("void") && IsPunct(")")) {
      // `void` parameter list.
    } else if (!IsPunct(")")) {
      // Back up if we consumed 'void' as a parameter base type... handled by re-parse:
      // AcceptIdent above only consumed when followed by ')', else it was not consumed
      // unless the first param type is void* — handle below.
      if (tokens_[pos_ - 1].kind == Token::Kind::kIdent && tokens_[pos_ - 1].text == "void" &&
          !IsPunct(")")) {
        pos_--;  // It was actually the start of a parameter type like `void *p`.
      }
      while (true) {
        Param p;
        if (!ParseType(&p.type, nullptr)) {
          return false;
        }
        if (Cur().kind != Token::Kind::kIdent) {
          return Fail("expected parameter name");
        }
        p.name = Cur().text;
        Advance();
        if (!p.type.IsScalar()) {
          return Fail("parameter of non-scalar type");
        }
        fn.params.push_back(std::move(p));
        if (!AcceptPunct(",")) {
          break;
        }
      }
    }
    if (!ExpectPunct(")")) {
      return false;
    }
    StmtPtr body;
    if (!ParseBlock(&body)) {
      return false;
    }
    fn.body = std::move(body);
    unit_.functions.push_back(std::move(fn));
    return true;
  }

  bool ParseBlock(StmtPtr* out) {
    if (!ExpectPunct("{")) {
      return false;
    }
    auto block = std::make_unique<Stmt>();
    block->kind = Stmt::Kind::kBlock;
    block->line = Cur().line;
    while (!IsPunct("}")) {
      if (AtEof()) {
        return Fail("unterminated block");
      }
      StmtPtr s;
      if (!ParseStatement(&s)) {
        return false;
      }
      block->stmts.push_back(std::move(s));
    }
    Advance();  // '}'.
    *out = std::move(block);
    return true;
  }

  bool ParseStatement(StmtPtr* out) {
    int line = Cur().line;
    if (IsPunct("{")) {
      return ParseBlock(out);
    }
    if (AcceptIdent("if")) {
      auto s = std::make_unique<Stmt>();
      s->kind = Stmt::Kind::kIf;
      s->line = line;
      if (!ExpectPunct("(") || !ParseExpr(&s->expr) || !ExpectPunct(")")) {
        return false;
      }
      if (!ParseStatement(&s->body)) {
        return false;
      }
      if (AcceptIdent("else")) {
        if (!ParseStatement(&s->else_body)) {
          return false;
        }
      }
      *out = std::move(s);
      return true;
    }
    if (AcceptIdent("while")) {
      auto s = std::make_unique<Stmt>();
      s->kind = Stmt::Kind::kWhile;
      s->line = line;
      if (!ExpectPunct("(") || !ParseExpr(&s->expr) || !ExpectPunct(")")) {
        return false;
      }
      if (!ParseStatement(&s->body)) {
        return false;
      }
      *out = std::move(s);
      return true;
    }
    if (AcceptIdent("for")) {
      auto s = std::make_unique<Stmt>();
      s->kind = Stmt::Kind::kFor;
      s->line = line;
      if (!ExpectPunct("(")) {
        return false;
      }
      if (!IsPunct(";")) {
        if (IsTypeStart()) {
          if (!ParseDecl(&s->init)) {
            return false;
          }
          // ParseDecl consumed the ';'.
        } else {
          auto init = std::make_unique<Stmt>();
          init->kind = Stmt::Kind::kExpr;
          init->line = line;
          if (!ParseExpr(&init->expr) || !ExpectPunct(";")) {
            return false;
          }
          s->init = std::move(init);
        }
      } else {
        Advance();
      }
      if (!IsPunct(";")) {
        if (!ParseExpr(&s->expr)) {
          return false;
        }
      }
      if (!ExpectPunct(";")) {
        return false;
      }
      if (!IsPunct(")")) {
        if (!ParseExpr(&s->post)) {
          return false;
        }
      }
      if (!ExpectPunct(")")) {
        return false;
      }
      if (!ParseStatement(&s->body)) {
        return false;
      }
      *out = std::move(s);
      return true;
    }
    if (AcceptIdent("return")) {
      auto s = std::make_unique<Stmt>();
      s->kind = Stmt::Kind::kReturn;
      s->line = line;
      if (!IsPunct(";")) {
        if (!ParseExpr(&s->expr)) {
          return false;
        }
      }
      *out = std::move(s);
      return ExpectPunct(";");
    }
    if (AcceptIdent("break")) {
      auto s = std::make_unique<Stmt>();
      s->kind = Stmt::Kind::kBreak;
      s->line = line;
      *out = std::move(s);
      return ExpectPunct(";");
    }
    if (AcceptIdent("continue")) {
      auto s = std::make_unique<Stmt>();
      s->kind = Stmt::Kind::kContinue;
      s->line = line;
      *out = std::move(s);
      return ExpectPunct(";");
    }
    if (IsTypeStart()) {
      return ParseDecl(out);
    }
    auto s = std::make_unique<Stmt>();
    s->kind = Stmt::Kind::kExpr;
    s->line = line;
    if (!ParseExpr(&s->expr)) {
      return false;
    }
    *out = std::move(s);
    return ExpectPunct(";");
  }

  bool ParseDecl(StmtPtr* out) {
    auto s = std::make_unique<Stmt>();
    s->kind = Stmt::Kind::kDecl;
    s->line = Cur().line;
    bool is_const = false;
    if (!ParseType(&s->decl_type, &is_const)) {
      return false;
    }
    if (!s->decl_type.IsScalar()) {
      return Fail("local of type " + TypeName(s->decl_type));
    }
    if (Cur().kind != Token::Kind::kIdent) {
      return Fail("expected local variable name");
    }
    s->decl_name = Cur().text;
    Advance();
    if (AcceptPunct("[")) {
      if (!ParseConstValue(&s->decl_array_size)) {
        return false;
      }
      if (s->decl_array_size == 0) {
        return Fail("zero-sized array");
      }
      if (!ExpectPunct("]")) {
        return false;
      }
    }
    if (AcceptPunct("=")) {
      if (s->decl_array_size != 0) {
        return Fail("local array initializers are not supported");
      }
      if (!ParseExpr(&s->decl_init)) {
        return false;
      }
    }
    *out = std::move(s);
    return ExpectPunct(";");
  }

  // ----- Expressions -----

  bool ParseExpr(ExprPtr* out) { return ParseAssign(out); }

  bool ParseAssign(ExprPtr* out) {
    ExprPtr lhs;
    if (!ParseBinary(&lhs, 0)) {
      return false;
    }
    if (IsPunct("=")) {
      int line = Cur().line;
      Advance();
      ExprPtr rhs;
      if (!ParseAssign(&rhs)) {
        return false;
      }
      auto e = std::make_unique<Expr>();
      e->kind = Expr::Kind::kAssign;
      e->line = line;
      e->lhs = std::move(lhs);
      e->rhs = std::move(rhs);
      *out = std::move(e);
      return true;
    }
    if (Cur().kind == Token::Kind::kPunct && Cur().text.size() >= 2 &&
        Cur().text.back() == '=' && Cur().text != "==" && Cur().text != "!=" &&
        Cur().text != "<=" && Cur().text != ">=") {
      return Fail("compound assignment is outside the MiniC subset");
    }
    *out = std::move(lhs);
    return true;
  }

  struct Level {
    const char* ops[5];
  };

  bool ParseBinary(ExprPtr* out, int level) {
    static const Level kLevels[] = {
        {{"||", nullptr}},
        {{"&&", nullptr}},
        {{"|", nullptr}},
        {{"^", nullptr}},
        {{"&", nullptr}},
        {{"==", "!=", nullptr}},
        {{"<", ">", "<=", ">=", nullptr}},
        {{"<<", ">>", nullptr}},
        {{"+", "-", nullptr}},
        {{"*", "/", "%", nullptr}},
    };
    constexpr int kNumLevels = 10;
    if (level >= kNumLevels) {
      return ParseUnary(out);
    }
    ExprPtr lhs;
    if (!ParseBinary(&lhs, level + 1)) {
      return false;
    }
    while (Cur().kind == Token::Kind::kPunct) {
      const char* matched = nullptr;
      for (const char* op : kLevels[level].ops) {
        if (op == nullptr) {
          break;
        }
        if (Cur().text == op) {
          matched = op;
          break;
        }
      }
      if (matched == nullptr) {
        break;
      }
      int line = Cur().line;
      Advance();
      ExprPtr rhs;
      if (!ParseBinary(&rhs, level + 1)) {
        return false;
      }
      auto e = std::make_unique<Expr>();
      e->kind = Expr::Kind::kBinary;
      e->op = matched;
      e->line = line;
      e->lhs = std::move(lhs);
      e->rhs = std::move(rhs);
      lhs = std::move(e);
    }
    *out = std::move(lhs);
    return true;
  }

  bool ParseUnary(ExprPtr* out) {
    int line = Cur().line;
    if (IsPunct("-") || IsPunct("~") || IsPunct("!")) {
      std::string op = Cur().text;
      Advance();
      ExprPtr operand;
      if (!ParseUnary(&operand)) {
        return false;
      }
      auto e = std::make_unique<Expr>();
      e->kind = Expr::Kind::kUnary;
      e->op = op;
      e->line = line;
      e->lhs = std::move(operand);
      *out = std::move(e);
      return true;
    }
    if (AcceptPunct("*")) {
      ExprPtr operand;
      if (!ParseUnary(&operand)) {
        return false;
      }
      auto e = std::make_unique<Expr>();
      e->kind = Expr::Kind::kDeref;
      e->line = line;
      e->lhs = std::move(operand);
      *out = std::move(e);
      return true;
    }
    if (AcceptPunct("&")) {
      ExprPtr operand;
      if (!ParseUnary(&operand)) {
        return false;
      }
      auto e = std::make_unique<Expr>();
      e->kind = Expr::Kind::kAddrOf;
      e->line = line;
      e->lhs = std::move(operand);
      *out = std::move(e);
      return true;
    }
    // Cast: '(' type ')' unary.
    if (IsPunct("(") && IsTypeStart(1)) {
      Advance();
      Type t;
      if (!ParseType(&t, nullptr)) {
        return false;
      }
      if (!ExpectPunct(")")) {
        return false;
      }
      ExprPtr operand;
      if (!ParseUnary(&operand)) {
        return false;
      }
      auto e = std::make_unique<Expr>();
      e->kind = Expr::Kind::kCast;
      e->cast_type = t;
      e->line = line;
      e->lhs = std::move(operand);
      *out = std::move(e);
      return true;
    }
    return ParsePostfix(out);
  }

  bool ParsePostfix(ExprPtr* out) {
    ExprPtr base;
    if (!ParsePrimary(&base)) {
      return false;
    }
    while (true) {
      int line = Cur().line;
      if (AcceptPunct("[")) {
        ExprPtr index;
        if (!ParseExpr(&index) || !ExpectPunct("]")) {
          return false;
        }
        auto e = std::make_unique<Expr>();
        e->kind = Expr::Kind::kIndex;
        e->line = line;
        e->lhs = std::move(base);
        e->rhs = std::move(index);
        base = std::move(e);
        continue;
      }
      if (IsPunct("(")) {
        if (base->kind != Expr::Kind::kVar) {
          return Fail("call target must be a function name");
        }
        Advance();
        auto e = std::make_unique<Expr>();
        e->kind = Expr::Kind::kCall;
        e->name = base->name;
        e->line = line;
        if (!IsPunct(")")) {
          while (true) {
            ExprPtr arg;
            if (!ParseAssign(&arg)) {
              return false;
            }
            e->args.push_back(std::move(arg));
            if (!AcceptPunct(",")) {
              break;
            }
          }
        }
        if (!ExpectPunct(")")) {
          return false;
        }
        base = std::move(e);
        continue;
      }
      break;
    }
    *out = std::move(base);
    return true;
  }

  bool ParsePrimary(ExprPtr* out) {
    int line = Cur().line;
    if (Cur().kind == Token::Kind::kNumber) {
      auto e = std::make_unique<Expr>();
      e->kind = Expr::Kind::kIntLit;
      e->int_value = Cur().number;
      e->line = line;
      Advance();
      *out = std::move(e);
      return true;
    }
    if (Cur().kind == Token::Kind::kIdent) {
      auto e = std::make_unique<Expr>();
      if (enums_.count(Cur().text) != 0) {
        e->kind = Expr::Kind::kIntLit;
        e->int_value = enums_.at(Cur().text);
      } else {
        e->kind = Expr::Kind::kVar;
        e->name = Cur().text;
      }
      e->line = line;
      Advance();
      *out = std::move(e);
      return true;
    }
    if (AcceptPunct("(")) {
      if (!ParseExpr(out)) {
        return false;
      }
      return ExpectPunct(")");
    }
    return Fail("expected expression");
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
  TranslationUnit unit_;
  std::map<std::string, uint32_t> enums_;
  std::string error_;
};

}  // namespace

std::string Type::Name() const { return TypeName(*this); }

Result<TranslationUnit> Parse(const std::string& source) {
  std::vector<Token> tokens;
  std::string error;
  if (!Lex(source, &tokens, &error)) {
    return Result<TranslationUnit>::Error(error);
  }
  return Parser(std::move(tokens)).Parse();
}

}  // namespace parfait::minicc
