// MiniC abstract syntax.
//
// MiniC is a strict, unsigned-only C subset that plays the role Low*/C play in the
// paper: the application's handle function and its crypto substrate are written once in
// MiniC, compiled natively (for differential oracles and Starling checks) and by this
// compiler to RV32IM (for the firmware that the SoC executes and Knox2 verifies).
//
// Subset summary: types u8/u32/void with pointers; global scalars/arrays (const ->
// rodata, initialized -> data, else bss); enum constants; functions with scalar/pointer
// parameters; statements: block/decl/if/while/for/return/break/continue/expression;
// expressions: integer literals, variables, unary - ~ ! * &, binary arithmetic/logic/
// comparison with C semantics (all unsigned), assignment, array indexing, calls, casts,
// short-circuit && and ||, and the __mulhu builtin (RV32M mulhu). Lines beginning with
// '#' are ignored so sources can #include a host compatibility header.
#ifndef PARFAIT_MINICC_AST_H_
#define PARFAIT_MINICC_AST_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace parfait::minicc {

struct Type {
  enum class Base : uint8_t { kVoid, kU8, kU32 };
  Base base = Base::kU32;
  int ptr = 0;  // Pointer depth: u8* has ptr=1.

  bool IsVoid() const { return base == Base::kVoid && ptr == 0; }
  bool IsPointer() const { return ptr > 0; }
  bool IsScalar() const { return !IsVoid(); }
  // Size of a value of this type.
  int Size() const { return IsPointer() ? 4 : (base == Type::Base::kU8 ? 1 : 4); }
  // Size of the pointed-to element (requires IsPointer()).
  int PointeeSize() const {
    Type t = *this;
    t.ptr--;
    return t.Size();
  }
  std::string Name() const;

  friend bool operator==(const Type&, const Type&) = default;
};

struct Expr;
using ExprPtr = std::unique_ptr<Expr>;

struct Expr {
  enum class Kind : uint8_t {
    kIntLit,
    kVar,
    kUnary,    // op in {'-', '~', '!'}
    kDeref,    // *e
    kAddrOf,   // &e
    kBinary,   // op string: + - * / % & | ^ << >> < > <= >= == != && ||
    kAssign,   // lhs = rhs
    kIndex,    // base[index]
    kCall,
    kCast,
  };
  Kind kind;
  int line = 0;

  uint32_t int_value = 0;              // kIntLit.
  std::string name;                    // kVar, kCall (callee).
  std::string op;                      // kUnary, kBinary.
  ExprPtr lhs;                         // Operand / base / assign target.
  ExprPtr rhs;                         // Second operand / index / assign value.
  std::vector<ExprPtr> args;           // kCall.
  Type cast_type;                      // kCast.
};

struct Stmt;
using StmtPtr = std::unique_ptr<Stmt>;

struct Stmt {
  enum class Kind : uint8_t {
    kExpr,
    kDecl,
    kIf,
    kWhile,
    kFor,
    kReturn,
    kBlock,
    kBreak,
    kContinue,
  };
  Kind kind;
  int line = 0;

  ExprPtr expr;                  // kExpr, kReturn (may be null), kIf/kWhile/kFor condition.
  std::string decl_name;         // kDecl.
  Type decl_type;                // kDecl.
  uint32_t decl_array_size = 0;  // kDecl: 0 for scalars, else element count.
  ExprPtr decl_init;             // kDecl (may be null).
  StmtPtr init;                  // kFor init (decl or expr statement, may be null).
  ExprPtr post;                  // kFor post expression (may be null).
  StmtPtr body;                  // kIf then / loop body.
  StmtPtr else_body;             // kIf else (may be null).
  std::vector<StmtPtr> stmts;    // kBlock.
};

struct Param {
  std::string name;
  Type type;
};

struct Function {
  std::string name;
  Type return_type;
  std::vector<Param> params;
  StmtPtr body;
  int line = 0;
};

struct Global {
  std::string name;
  Type type;                     // Element type for arrays.
  uint32_t array_size = 0;       // 0 for scalars, else element count.
  bool is_const = false;
  bool is_secret = false;        // `secret` storage qualifier -> symbol annotation.
  std::vector<uint32_t> init;    // Element initializers (empty -> zero).
  int line = 0;
};

struct EnumConst {
  std::string name;
  uint32_t value;
};

struct TranslationUnit {
  std::vector<Global> globals;
  std::vector<Function> functions;
  std::vector<EnumConst> enums;
};

}  // namespace parfait::minicc

#endif  // PARFAIT_MINICC_AST_H_
