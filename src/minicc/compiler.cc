#include "src/minicc/compiler.h"

#include <fstream>
#include <sstream>

#include "src/minicc/parser.h"

namespace parfait::minicc {

Result<bool> CompileSource(const std::string& source, const CodegenOptions& options,
                           riscv::Program* program) {
  auto unit = Parse(source);
  if (!unit.ok()) {
    return Result<bool>::Error(unit.error());
  }
  auto generated = Generate(unit.value(), options, program);
  if (!generated.ok()) {
    return Result<bool>::Error(generated.error());
  }
  return true;
}

Result<bool> CompileFile(const std::string& path, const CodegenOptions& options,
                         riscv::Program* program) {
  std::ifstream in(path);
  if (!in) {
    return Result<bool>::Error("cannot open " + path);
  }
  std::stringstream ss;
  ss << in.rdbuf();
  auto result = CompileSource(ss.str(), options, program);
  if (!result.ok()) {
    return Result<bool>::Error(path + ": " + result.error());
  }
  return true;
}

std::string ReadFileOrDie(const std::string& path) {
  std::ifstream in(path);
  PARFAIT_CHECK_MSG(in.good(), "cannot open %s", path.c_str());
  std::stringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

}  // namespace parfait::minicc
