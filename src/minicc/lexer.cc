#include "src/minicc/lexer.h"

#include <cctype>
#include <cstring>

namespace parfait::minicc {

namespace {

bool IsIdentStart(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_';
}

bool IsIdentChar(char c) { return IsIdentStart(c) || (c >= '0' && c <= '9'); }

// Multi-character punctuators, longest first.
const char* kPuncts[] = {"<<=", ">>=", "==", "!=", "<=", ">=", "&&", "||", "<<", ">>",
                         "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "(",  ")",
                         "{",  "}",  "[",  "]",  ";",  ",",  "=",  "+",  "-",  "*",
                         "/",  "%",  "&",  "|",  "^",  "~",  "!",  "<",  ">"};

}  // namespace

bool Lex(const std::string& source, std::vector<Token>* tokens, std::string* error) {
  size_t i = 0;
  int line = 1;
  bool at_line_start = true;
  while (i < source.size()) {
    char c = source[i];
    if (c == '\n') {
      line++;
      at_line_start = true;
      i++;
      continue;
    }
    if (c == ' ' || c == '\t' || c == '\r') {
      i++;
      continue;
    }
    if (c == '#' && at_line_start) {
      while (i < source.size() && source[i] != '\n') {
        i++;
      }
      continue;
    }
    at_line_start = false;
    if (c == '/' && i + 1 < source.size() && source[i + 1] == '/') {
      while (i < source.size() && source[i] != '\n') {
        i++;
      }
      continue;
    }
    if (c == '/' && i + 1 < source.size() && source[i + 1] == '*') {
      i += 2;
      while (i + 1 < source.size() && !(source[i] == '*' && source[i + 1] == '/')) {
        if (source[i] == '\n') {
          line++;
        }
        i++;
      }
      if (i + 1 >= source.size()) {
        *error = "unterminated block comment at line " + std::to_string(line);
        return false;
      }
      i += 2;
      continue;
    }
    if (IsIdentStart(c)) {
      size_t start = i;
      while (i < source.size() && IsIdentChar(source[i])) {
        i++;
      }
      tokens->push_back(Token{Token::Kind::kIdent, source.substr(start, i - start), 0, line});
      continue;
    }
    if (c >= '0' && c <= '9') {
      size_t start = i;
      uint64_t value = 0;
      if (c == '0' && i + 1 < source.size() && (source[i + 1] == 'x' || source[i + 1] == 'X')) {
        i += 2;
        if (i >= source.size() || !isxdigit(source[i])) {
          *error = "bad hex literal at line " + std::to_string(line);
          return false;
        }
        while (i < source.size() && isxdigit(source[i])) {
          char d = source[i];
          int v = (d >= '0' && d <= '9') ? d - '0' : (tolower(d) - 'a' + 10);
          value = value * 16 + static_cast<uint64_t>(v);
          i++;
        }
      } else {
        while (i < source.size() && source[i] >= '0' && source[i] <= '9') {
          value = value * 10 + static_cast<uint64_t>(source[i] - '0');
          i++;
        }
      }
      // Accept C suffixes (u, U, l, L) so shared sources stay valid C.
      while (i < source.size() && (source[i] == 'u' || source[i] == 'U' || source[i] == 'l' ||
                                   source[i] == 'L')) {
        i++;
      }
      if (value > 0xffffffffULL) {
        *error = "integer literal overflows 32 bits at line " + std::to_string(line) + ": " +
                 source.substr(start, i - start);
        return false;
      }
      Token t{Token::Kind::kNumber, source.substr(start, i - start), 0, line};
      t.number = static_cast<uint32_t>(value);
      tokens->push_back(t);
      continue;
    }
    bool matched = false;
    for (const char* p : kPuncts) {
      size_t len = strlen(p);
      if (source.compare(i, len, p) == 0) {
        tokens->push_back(Token{Token::Kind::kPunct, p, 0, line});
        i += len;
        matched = true;
        break;
      }
    }
    if (!matched) {
      *error = "unexpected character '" + std::string(1, c) + "' at line " +
               std::to_string(line);
      return false;
    }
  }
  tokens->push_back(Token{Token::Kind::kEof, "", 0, line});
  return true;
}

}  // namespace parfait::minicc
