// MiniC compiler driver: source text / files -> riscv::Program items.
#ifndef PARFAIT_MINICC_COMPILER_H_
#define PARFAIT_MINICC_COMPILER_H_

#include <string>
#include <vector>

#include "src/minicc/codegen.h"
#include "src/riscv/assembler.h"
#include "src/support/status.h"

namespace parfait::minicc {

// Parses and code-generates one MiniC source, appending to `program`.
Result<bool> CompileSource(const std::string& source, const CodegenOptions& options,
                           riscv::Program* program);

// Reads and compiles a file (diagnostics are prefixed with the path).
Result<bool> CompileFile(const std::string& path, const CodegenOptions& options,
                         riscv::Program* program);

// Reads a file into a string; aborts if unreadable (firmware sources ship in-tree).
std::string ReadFileOrDie(const std::string& path);

}  // namespace parfait::minicc

#endif  // PARFAIT_MINICC_COMPILER_H_
