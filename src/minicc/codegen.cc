#include "src/minicc/codegen.h"

#include <algorithm>
#include <map>
#include <set>

#include "src/riscv/isa.h"

namespace parfait::minicc {

namespace {

using riscv::AsmInstr;
using riscv::Instr;
using riscv::Op;
using riscv::Reloc;
using riscv::Section;

// Temp registers used as the expression stack: t0..t6, then a7..a3 (all caller-saved;
// a0..a2 stay reserved for arguments/results, and every live temp is spilled around
// calls anyway).
constexpr uint8_t kTemps[] = {5, 6, 7, 28, 29, 30, 31, 17, 16, 15, 14, 13};
constexpr int kNumTemps = 12;
// Callee-saved registers available for O2 local promotion: s1..s11 (s0 kept free to
// stay recognizable as a frame pointer in listings, though we never use one).
constexpr uint8_t kSavedRegs[] = {9, 18, 19, 20, 21, 22, 23, 24, 25, 26, 27};
constexpr int kNumSavedRegs = 11;

constexpr uint8_t kRegZero = 0;
constexpr uint8_t kRegRa = 1;
constexpr uint8_t kRegSp = 2;
constexpr uint8_t kRegA0 = 10;

bool FitsImm12(int64_t v) { return v >= -2048 && v <= 2047; }

struct FuncSig {
  Type return_type;
  std::vector<Type> params;
};

struct GlobalInfo {
  Type type;
  uint32_t array_size;  // 0 = scalar.
};

struct LocalSlot {
  std::string name;
  Type type;
  uint32_t array_size = 0;   // 0 = scalar.
  int frame_offset = -1;     // Valid when reg < 0.
  int reg = -1;              // s-register number when promoted (O2).
};

class FuncError {};  // Thrown via return codes; we use bool + message instead.

class Codegen {
 public:
  Codegen(const TranslationUnit& unit, const CodegenOptions& options, riscv::Program* program)
      : unit_(unit), options_(options), prog_(*program) {}

  bool Run() {
    if (options_.witness != nullptr) {
      *options_.witness = riscv::Witness{};
      options_.witness->opt_level = options_.opt_level;
    }
    // Collect signatures and globals.
    for (const auto& fn : unit_.functions) {
      if (sigs_.count(fn.name) != 0) {
        return Fail(fn.line, "duplicate function " + fn.name);
      }
      FuncSig sig;
      sig.return_type = fn.return_type;
      for (const auto& p : fn.params) {
        sig.params.push_back(p.type);
      }
      sigs_[fn.name] = sig;
    }
    for (const auto& g : unit_.globals) {
      if (globals_.count(g.name) != 0 || sigs_.count(g.name) != 0) {
        return Fail(g.line, "duplicate global " + g.name);
      }
      globals_[g.name] = GlobalInfo{g.type, g.array_size};
    }
    EmitGlobals();
    prog_.SetSection(Section::kText);
    for (const auto& fn : unit_.functions) {
      if (!GenFunction(fn)) {
        return false;
      }
    }
    return true;
  }

  const std::string& error() const { return error_; }

 private:
  bool Fail(int line, const std::string& msg) {
    error_ = "line " + std::to_string(line) + ": " + msg;
    return false;
  }

  void EmitGlobals() {
    for (const auto& g : unit_.globals) {
      uint32_t count = g.array_size == 0 ? 1 : g.array_size;
      uint32_t elem_size = static_cast<uint32_t>(g.type.Size());
      uint32_t total = count * elem_size;
      bool initialized = !g.init.empty();
      Section section = g.is_const ? Section::kRodata
                        : initialized ? Section::kData
                                      : Section::kBss;
      prog_.SetSection(section);
      prog_.Align(4);
      prog_.DefineLabel(g.name);
      prog_.MarkObject(g.name, total);
      if (g.is_secret) {
        prog_.Annotate(g.name, "secret");
      }
      if (section == Section::kBss) {
        prog_.Zero(total);
        continue;
      }
      parfait::Bytes bytes(total, 0);
      for (size_t i = 0; i < g.init.size(); i++) {
        uint32_t v = g.init[i];
        if (elem_size == 1) {
          bytes[i] = static_cast<uint8_t>(v);
        } else {
          parfait::StoreLe32(bytes.data() + 4 * i, v);
        }
      }
      prog_.ByteData(bytes);
    }
  }

  // ----- Per-function state -----

  struct StackEntry {
    Type type;
    bool is_const = false;   // O2: value known at compile time, not yet materialized.
    uint32_t cval = 0;
    int sreg = -1;           // O2: alias of a register-promoted local (read-only).
  };

  std::string NewLabel() { return ".L" + std::to_string(label_counter_++); }

  void Emit(const Instr& i) { prog_.Emit(i); }
  void EmitLa(uint8_t rd, const std::string& symbol) {
    prog_.Emit(AsmInstr{Instr{Op::kLui, rd, 0, 0, 0}, Reloc::kHi, symbol, 0});
    prog_.Emit(AsmInstr{Instr{Op::kAddi, rd, rd, 0, 0}, Reloc::kLo, symbol, 0});
  }
  void EmitLi(uint8_t rd, uint32_t value) {
    int32_t sv = static_cast<int32_t>(value);
    if (FitsImm12(sv)) {
      Emit(Instr{Op::kAddi, rd, kRegZero, 0, sv});
      return;
    }
    uint32_t hi = (value + 0x800) & 0xfffff000u;
    int32_t lo = static_cast<int32_t>(value << 20) >> 20;
    Emit(Instr{Op::kLui, rd, 0, 0, static_cast<int32_t>(hi)});
    if (lo != 0) {
      Emit(Instr{Op::kAddi, rd, rd, 0, lo});
    }
  }
  void EmitBranchTo(Op op, uint8_t rs1, uint8_t rs2, const std::string& label) {
    prog_.Emit(AsmInstr{Instr{op, 0, rs1, rs2, 0}, Reloc::kBranch, label, 0});
  }
  void EmitJump(const std::string& label) {
    prog_.Emit(AsmInstr{Instr{Op::kJal, 0, 0, 0, 0}, Reloc::kJal, label, 0});
  }
  void EmitCall(const std::string& symbol) {
    prog_.Emit(AsmInstr{Instr{Op::kJal, kRegRa, 0, 0, 0}, Reloc::kJal, symbol, 0});
  }

  // Expression stack helpers. Entry i lives in kTemps[i] once materialized.
  uint8_t TempReg(int depth) const { return kTemps[depth]; }

  bool Push(const Type& t, int line) {
    if (static_cast<int>(stack_.size()) >= kNumTemps) {
      Fail(line, "expression too deep for the MiniC register stack");
      return false;
    }
    stack_.push_back(StackEntry{t, false, 0});
    return true;
  }

  bool PushConst(const Type& t, uint32_t value, int line) {
    if (static_cast<int>(stack_.size()) >= kNumTemps) {
      Fail(line, "expression too deep for the MiniC register stack");
      return false;
    }
    if (options_.opt_level >= 2) {
      stack_.push_back(StackEntry{t, true, value, -1});
    } else {
      stack_.push_back(StackEntry{t, false, 0, -1});
      EmitLi(TempReg(static_cast<int>(stack_.size()) - 1), value);
    }
    return true;
  }

  // O2: pushes a read-only alias of a register-promoted local; no copy is emitted
  // until the value is materialized or the alias is read via OperandReg.
  bool PushSreg(const Type& t, int sreg, int line) {
    if (static_cast<int>(stack_.size()) >= kNumTemps) {
      Fail(line, "expression too deep for the MiniC register stack");
      return false;
    }
    stack_.push_back(StackEntry{t, false, 0, sreg});
    return true;
  }

  // Ensures the entry at stack index i lives in its own temp register.
  void Materialize(int i) {
    if (stack_[i].is_const) {
      EmitLi(TempReg(i), stack_[i].cval);
      stack_[i].is_const = false;
    } else if (stack_[i].sreg >= 0) {
      Emit(Instr{Op::kAdd, TempReg(i), static_cast<uint8_t>(stack_[i].sreg), kRegZero, 0});
      stack_[i].sreg = -1;
    }
  }
  void MaterializeTop() { Materialize(static_cast<int>(stack_.size()) - 1); }

  // Returns a register holding the value at stack index i for *read-only* use:
  // the promoted local's own register for aliases, the temp otherwise (constants are
  // materialized). Destinations must always be TempReg(i).
  uint8_t OperandReg(int i) {
    if (stack_[i].sreg >= 0) {
      return static_cast<uint8_t>(stack_[i].sreg);
    }
    Materialize(i);
    return TempReg(i);
  }
  uint8_t OperandRegTop() { return OperandReg(static_cast<int>(stack_.size()) - 1); }

  // Marks entry i as a plain register value (after writing TempReg(i) directly).
  void SetPlain(int i, const Type& t) {
    stack_[i].type = t;
    stack_[i].is_const = false;
    stack_[i].sreg = -1;
  }

  void Pop() { stack_.pop_back(); }
  StackEntry& Top() { return stack_.back(); }
  int TopIndex() const { return static_cast<int>(stack_.size()) - 1; }

  // ----- Locals -----

  struct Scope {
    std::map<std::string, int> names;  // name -> slot index.
  };

  int LookupLocal(const std::string& name) const {
    for (auto it = scopes_.rbegin(); it != scopes_.rend(); ++it) {
      auto found = it->names.find(name);
      if (found != it->names.end()) {
        return found->second;
      }
    }
    return -1;
  }

  // Pre-pass: walks the function body in the same order as codegen, collecting every
  // declaration into slots_ (no reuse across scopes — frames are small) and counting
  // uses / address-taking for O2 promotion.
  struct PrepassInfo {
    std::vector<std::pair<std::string, int>> decl_order;  // (name, slot).
    std::map<std::string, int> use_counts;                // By slot via name chain.
  };

  void PrepassExpr(const Expr& e, std::map<int, int>& uses, std::set<int>& addr_taken,
                   std::vector<Scope>& scopes) {
    auto lookup = [&](const std::string& name) {
      for (auto it = scopes.rbegin(); it != scopes.rend(); ++it) {
        auto found = it->names.find(name);
        if (found != it->names.end()) {
          return found->second;
        }
      }
      return -1;
    };
    switch (e.kind) {
      case Expr::Kind::kVar: {
        int slot = lookup(e.name);
        if (slot >= 0) {
          uses[slot]++;
        }
        break;
      }
      case Expr::Kind::kAddrOf:
        if (e.lhs->kind == Expr::Kind::kVar) {
          int slot = lookup(e.lhs->name);
          if (slot >= 0) {
            addr_taken.insert(slot);
          }
        }
        PrepassExpr(*e.lhs, uses, addr_taken, scopes);
        break;
      default:
        if (e.lhs) {
          PrepassExpr(*e.lhs, uses, addr_taken, scopes);
        }
        if (e.rhs) {
          PrepassExpr(*e.rhs, uses, addr_taken, scopes);
        }
        for (const auto& a : e.args) {
          PrepassExpr(*a, uses, addr_taken, scopes);
        }
        break;
    }
  }

  void PrepassStmt(const Stmt& s, std::map<int, int>& uses, std::set<int>& addr_taken,
                   std::vector<Scope>& scopes) {
    switch (s.kind) {
      case Stmt::Kind::kBlock: {
        scopes.push_back({});
        for (const auto& sub : s.stmts) {
          PrepassStmt(*sub, uses, addr_taken, scopes);
        }
        scopes.pop_back();
        break;
      }
      case Stmt::Kind::kDecl: {
        if (s.decl_init) {
          PrepassExpr(*s.decl_init, uses, addr_taken, scopes);
        }
        LocalSlot slot;
        slot.name = s.decl_name;
        slot.type = s.decl_type;
        slot.array_size = s.decl_array_size;
        int index = static_cast<int>(slots_.size());
        slots_.push_back(slot);
        scopes.back().names[s.decl_name] = index;
        break;
      }
      case Stmt::Kind::kIf:
        PrepassExpr(*s.expr, uses, addr_taken, scopes);
        PrepassStmt(*s.body, uses, addr_taken, scopes);
        if (s.else_body) {
          PrepassStmt(*s.else_body, uses, addr_taken, scopes);
        }
        break;
      case Stmt::Kind::kWhile:
        PrepassExpr(*s.expr, uses, addr_taken, scopes);
        PrepassStmt(*s.body, uses, addr_taken, scopes);
        break;
      case Stmt::Kind::kFor: {
        scopes.push_back({});
        if (s.init) {
          PrepassStmt(*s.init, uses, addr_taken, scopes);
        }
        if (s.expr) {
          PrepassExpr(*s.expr, uses, addr_taken, scopes);
        }
        if (s.post) {
          PrepassExpr(*s.post, uses, addr_taken, scopes);
        }
        PrepassStmt(*s.body, uses, addr_taken, scopes);
        scopes.pop_back();
        break;
      }
      case Stmt::Kind::kReturn:
      case Stmt::Kind::kExpr:
        if (s.expr) {
          PrepassExpr(*s.expr, uses, addr_taken, scopes);
        }
        break;
      case Stmt::Kind::kBreak:
      case Stmt::Kind::kContinue:
        break;
    }
  }

  // ----- Function generation -----

  bool GenFunction(const Function& fn) {
    slots_.clear();
    scopes_.clear();
    stack_.clear();
    decl_counter_ = 0;
    break_labels_.clear();
    continue_labels_.clear();
    wstmts_.clear();
    wxforms_.clear();
    mutation_sites_ = 0;
    current_fn_ = &fn;

    // Parameter slots come first (slot index == parameter index).
    for (const auto& p : fn.params) {
      LocalSlot slot;
      slot.name = p.name;
      slot.type = p.type;
      slots_.push_back(slot);
    }
    std::map<int, int> uses;
    std::set<int> addr_taken;
    {
      std::vector<Scope> scopes;
      scopes.push_back({});
      for (size_t i = 0; i < fn.params.size(); i++) {
        scopes.back().names[fn.params[i].name] = static_cast<int>(i);
      }
      PrepassStmt(*fn.body, uses, addr_taken, scopes);
    }

    // O2: promote the most-used scalar locals to callee-saved registers.
    used_saved_regs_.clear();
    if (options_.opt_level >= 2) {
      std::vector<std::pair<int, int>> candidates;  // (use count, slot).
      for (size_t i = 0; i < slots_.size(); i++) {
        int slot = static_cast<int>(i);
        // u8 scalars stay in the frame: the sb/lbu access discipline is what
        // truncates them, and a promoted register would carry unmasked high bits.
        bool is_u8 = !slots_[i].type.IsPointer() && slots_[i].type.Size() == 1;
        if (slots_[i].array_size == 0 && addr_taken.count(slot) == 0 && !is_u8) {
          int count = uses.count(slot) != 0 ? uses.at(slot) : 0;
          // Parameters are used at least once (the incoming copy).
          candidates.push_back({count, slot});
        }
      }
      std::sort(candidates.begin(), candidates.end(),
                [](const auto& a, const auto& b) { return a.first > b.first; });
      for (const auto& [count, slot] : candidates) {
        if (static_cast<int>(used_saved_regs_.size()) >= kNumSavedRegs) {
          break;
        }
        uint8_t reg = kSavedRegs[used_saved_regs_.size()];
        slots_[slot].reg = reg;
        used_saved_regs_.push_back(reg);
      }
    }

    // Frame layout: [spill slots][locals][saved s-regs][ra], sp at the bottom.
    int offset = 0;
    spill_base_ = offset;
    offset += 4 * kNumTemps;
    for (auto& slot : slots_) {
      if (slot.reg >= 0) {
        continue;
      }
      uint32_t count = slot.array_size == 0 ? 1 : slot.array_size;
      uint32_t bytes = count * static_cast<uint32_t>(slot.type.Size());
      bytes = (bytes + 3) & ~3u;
      slot.frame_offset = offset;
      offset += static_cast<int>(bytes);
    }
    saved_base_ = offset;
    offset += 4 * static_cast<int>(used_saved_regs_.size());
    ra_offset_ = offset;
    offset += 4;
    frame_size_ = (offset + 15) & ~15;

    // Prologue.
    prog_.SetSection(Section::kText);
    prog_.Align(4);
    const uint32_t w_begin = prog_.CurrentOffset();
    prog_.DefineLabel(fn.name);
    prog_.MarkFunction(fn.name);
    Emit(Instr{Op::kAddi, kRegSp, kRegSp, 0, -frame_size_});
    Emit(Instr{Op::kSw, 0, kRegSp, kRegRa, ra_offset_});
    std::map<int, uint32_t> save_site;  // reg -> offset of its prologue save.
    for (size_t i = 0; i < used_saved_regs_.size(); i++) {
      save_site[used_saved_regs_[i]] = prog_.CurrentOffset();
      if (MutateHere(MutationKind::kClobberedSavedReg)) {
        continue;  // The promotion clobbers the caller's value.
      }
      Emit(Instr{Op::kSw, 0, kRegSp, used_saved_regs_[i], saved_base_ + 4 * static_cast<int>(i)});
    }
    for (size_t i = 0; i < slots_.size(); i++) {
      if (slots_[i].reg >= 0) {
        RecordXform(riscv::WitnessXform::kPromoteReg, static_cast<int>(i), slots_[i].reg,
                    save_site[slots_[i].reg], 0, 0);
      }
    }
    // Spill or move incoming parameters.
    for (size_t i = 0; i < fn.params.size(); i++) {
      uint8_t areg = static_cast<uint8_t>(kRegA0 + i);
      const LocalSlot& slot = slots_[i];
      if (slot.reg >= 0) {
        Emit(Instr{Op::kAdd, static_cast<uint8_t>(slot.reg), areg, kRegZero, 0});
      } else {
        Emit(Instr{Op::kSw, 0, kRegSp, areg, slot.frame_offset});
      }
    }

    const uint32_t w_body_begin = prog_.CurrentOffset();
    epilogue_label_ = NewLabel();
    scopes_.push_back({});
    for (size_t i = 0; i < fn.params.size(); i++) {
      scopes_.back().names[fn.params[i].name] = static_cast<int>(i);
    }
    decl_counter_ = static_cast<int>(fn.params.size());
    if (!GenStmt(*fn.body)) {
      return false;
    }
    scopes_.pop_back();

    // Epilogue (also the fall-through path for void functions).
    const uint32_t w_epilogue = prog_.CurrentOffset();
    prog_.DefineLabel(epilogue_label_);
    for (size_t i = 0; i < used_saved_regs_.size(); i++) {
      if (MutateHere(MutationKind::kDroppedRestore)) {
        continue;  // Caller sees the promoted local's final value instead.
      }
      Emit(Instr{Op::kLw, used_saved_regs_[i], kRegSp, 0, saved_base_ + 4 * static_cast<int>(i)});
    }
    Emit(Instr{Op::kLw, kRegRa, kRegSp, 0, ra_offset_});
    Emit(Instr{Op::kAddi, kRegSp, kRegSp, 0, frame_size_});
    Emit(Instr{Op::kJalr, 0, kRegRa, 0, 0});

    if (options_.witness != nullptr) {
      riscv::WitnessFunction wf;
      wf.name = fn.name;
      wf.line = fn.line;
      wf.begin = w_begin;
      wf.end = prog_.CurrentOffset();
      wf.body_begin = w_body_begin;
      wf.epilogue = w_epilogue;
      wf.frame_size = frame_size_;
      wf.spill_base = spill_base_;
      wf.saved_base = saved_base_;
      wf.ra_offset = ra_offset_;
      wf.saved_regs = used_saved_regs_;
      for (size_t i = 0; i < slots_.size(); i++) {
        const LocalSlot& slot = slots_[i];
        riscv::WitnessLocal wl;
        wl.name = slot.name;
        wl.array_size = slot.array_size;
        wl.elem_size = static_cast<uint8_t>(slot.type.Size());
        wl.frame_offset = slot.frame_offset;
        wl.reg = static_cast<int8_t>(slot.reg);
        wl.is_param = i < fn.params.size() ? 1 : 0;
        wl.is_ptr = slot.type.IsPointer() ? 1 : 0;
        wl.is_u8 = (!slot.type.IsPointer() && slot.type.Size() == 1) ? 1 : 0;
        wf.locals.push_back(std::move(wl));
      }
      wf.stmts = wstmts_;
      wf.xforms = wxforms_;
      options_.witness->functions.push_back(std::move(wf));
    }
    return true;
  }

  // ----- Statements -----

  // Wrapper recording the witness stmt range (pre-order, matching the validator's
  // AST walk); the index is passed down so loops can patch in their landmarks.
  bool GenStmt(const Stmt& s) {
    size_t wi = wstmts_.size();
    riscv::WitnessStmt ws;
    ws.kind = static_cast<uint8_t>(s.kind);
    ws.line = s.line;
    ws.begin = prog_.CurrentOffset();
    wstmts_.push_back(ws);
    bool ok = GenStmtInner(s, wi);
    wstmts_[wi].end = prog_.CurrentOffset();
    return ok;
  }

  // Stable small-integer discriminator for binary operators, carried in
  // WitnessXform.op so the validator can name the folded operation.
  static uint8_t BinopCode(const std::string& op) {
    static constexpr const char* kOps[] = {"+",  "-",  "*",  "/", "%", "&", "|", "^",
                                           "<<", ">>", "==", "!=", "<", ">", "<=", ">="};
    for (size_t i = 0; i < sizeof(kOps) / sizeof(kOps[0]); i++) {
      if (op == kOps[i]) {
        return static_cast<uint8_t>(i + 1);
      }
    }
    return 0;
  }

  // Records one O2 witness transformer entry (no-op at O0 or without a witness).
  void RecordXform(riscv::WitnessXform::Pass pass, int slot, int reg, uint32_t site,
                   int32_t imm, uint8_t op) {
    if (options_.witness == nullptr || options_.opt_level < 2) {
      return;
    }
    riscv::WitnessXform x;
    x.pass = static_cast<uint8_t>(pass);
    x.slot = slot;
    x.reg = static_cast<int8_t>(reg);
    x.site = site;
    x.imm = imm;
    x.op = op;
    wxforms_.push_back(x);
  }

  // True when the seeded miscompilation should fire at this emission point: the
  // active mutation matches `kind`, we are in the target function, and this is the
  // site-th eligible site (counted in emission order).
  bool MutateHere(MutationKind kind) {
    if (options_.mutation.kind != kind || current_fn_ == nullptr ||
        current_fn_->name != options_.mutation.function) {
      return false;
    }
    return mutation_sites_++ == options_.mutation.site;
  }

  bool GenStmtInner(const Stmt& s, size_t wi) {
    switch (s.kind) {
      case Stmt::Kind::kBlock: {
        scopes_.push_back({});
        for (const auto& sub : s.stmts) {
          if (!GenStmt(*sub)) {
            return false;
          }
        }
        scopes_.pop_back();
        return true;
      }
      case Stmt::Kind::kDecl: {
        int slot_index = decl_counter_++;
        const LocalSlot& slot = slots_[slot_index];
        if (s.decl_init) {
          Type t;
          if (!GenExpr(*s.decl_init, &t)) {
            return false;
          }
          uint8_t r = OperandRegTop();
          if (slot.reg >= 0) {
            Emit(Instr{Op::kAdd, static_cast<uint8_t>(slot.reg), r, kRegZero, 0});
          } else if (slot.type.Size() == 1) {
            Emit(Instr{Op::kSb, 0, kRegSp, r, slot.frame_offset});
          } else {
            Emit(Instr{Op::kSw, 0, kRegSp, r, slot.frame_offset});
          }
          Pop();
        }
        scopes_.back().names[s.decl_name] = slot_index;
        return true;
      }
      case Stmt::Kind::kExpr: {
        Type t;
        if (!GenExpr(*s.expr, &t)) {
          return false;
        }
        if (!t.IsVoid()) {
          Pop();
        }
        return true;
      }
      case Stmt::Kind::kIf: {
        Type t;
        if (!GenExpr(*s.expr, &t)) {
          return false;
        }
        uint8_t cond = OperandRegTop();
        Pop();
        std::string else_label = NewLabel();
        EmitBranchTo(MutateHere(MutationKind::kSwappedBranch) ? Op::kBne : Op::kBeq, cond,
                     kRegZero, else_label);
        if (!GenStmt(*s.body)) {
          return false;
        }
        if (s.else_body) {
          std::string end_label = NewLabel();
          EmitJump(end_label);
          prog_.DefineLabel(else_label);
          if (!GenStmt(*s.else_body)) {
            return false;
          }
          prog_.DefineLabel(end_label);
        } else {
          prog_.DefineLabel(else_label);
        }
        return true;
      }
      case Stmt::Kind::kWhile: {
        std::string head = NewLabel();
        std::string end = NewLabel();
        wstmts_[wi].aux0 = prog_.CurrentOffset();
        prog_.DefineLabel(head);
        Type t;
        if (!GenExpr(*s.expr, &t)) {
          return false;
        }
        uint8_t cond = OperandRegTop();
        Pop();
        EmitBranchTo(MutateHere(MutationKind::kSwappedBranch) ? Op::kBne : Op::kBeq, cond,
                     kRegZero, end);
        break_labels_.push_back(end);
        continue_labels_.push_back(head);
        if (!GenStmt(*s.body)) {
          return false;
        }
        break_labels_.pop_back();
        continue_labels_.pop_back();
        EmitJump(head);
        prog_.DefineLabel(end);
        return true;
      }
      case Stmt::Kind::kFor: {
        scopes_.push_back({});
        if (s.init && !GenStmt(*s.init)) {
          return false;
        }
        std::string head = NewLabel();
        std::string post_label = NewLabel();
        std::string end = NewLabel();
        wstmts_[wi].aux0 = prog_.CurrentOffset();
        prog_.DefineLabel(head);
        if (s.expr) {
          Type t;
          if (!GenExpr(*s.expr, &t)) {
            return false;
          }
          uint8_t cond = OperandRegTop();
          Pop();
          EmitBranchTo(MutateHere(MutationKind::kSwappedBranch) ? Op::kBne : Op::kBeq, cond,
                       kRegZero, end);
        }
        break_labels_.push_back(end);
        continue_labels_.push_back(post_label);
        if (!GenStmt(*s.body)) {
          return false;
        }
        break_labels_.pop_back();
        continue_labels_.pop_back();
        wstmts_[wi].aux1 = prog_.CurrentOffset();
        prog_.DefineLabel(post_label);
        if (s.post) {
          Type t;
          if (!GenExpr(*s.post, &t)) {
            return false;
          }
          if (!t.IsVoid()) {
            Pop();
          }
        }
        EmitJump(head);
        prog_.DefineLabel(end);
        scopes_.pop_back();
        return true;
      }
      case Stmt::Kind::kReturn: {
        if (s.expr) {
          Type t;
          if (!GenExpr(*s.expr, &t)) {
            return false;
          }
          Emit(Instr{Op::kAdd, kRegA0, OperandRegTop(), kRegZero, 0});
          Pop();
        }
        EmitJump(epilogue_label_);
        return true;
      }
      case Stmt::Kind::kBreak:
        if (break_labels_.empty()) {
          return Fail(s.line, "break outside loop");
        }
        EmitJump(break_labels_.back());
        return true;
      case Stmt::Kind::kContinue:
        if (continue_labels_.empty()) {
          return Fail(s.line, "continue outside loop");
        }
        EmitJump(continue_labels_.back());
        return true;
    }
    return Fail(s.line, "unhandled statement");
  }

  // ----- Expressions -----

  // Generates an lvalue address onto the stack. Fails for register-promoted locals
  // (callers handle those cases first). Sets *value_type to the pointed-to type.
  bool GenAddr(const Expr& e, Type* value_type) {
    switch (e.kind) {
      case Expr::Kind::kVar: {
        int slot_index = LookupLocal(e.name);
        if (slot_index >= 0) {
          const LocalSlot& slot = slots_[slot_index];
          if (slot.reg >= 0) {
            return Fail(e.line, "internal: address of register-promoted local");
          }
          if (!Push(Type{slot.type.base, slot.type.ptr + 1}, e.line)) {
            return false;
          }
          Emit(Instr{Op::kAddi, TempReg(TopIndex()), kRegSp, 0, slot.frame_offset});
          *value_type = slot.type;
          return true;
        }
        auto g = globals_.find(e.name);
        if (g != globals_.end()) {
          if (!Push(Type{g->second.type.base, g->second.type.ptr + 1}, e.line)) {
            return false;
          }
          EmitLa(TempReg(TopIndex()), e.name);
          *value_type = g->second.type;
          return true;
        }
        return Fail(e.line, "undefined variable " + e.name);
      }
      case Expr::Kind::kDeref: {
        Type t;
        if (!GenExpr(*e.lhs, &t)) {
          return false;
        }
        if (!t.IsPointer()) {
          return Fail(e.line, "dereference of non-pointer");
        }
        *value_type = Type{t.base, t.ptr - 1};
        return true;
      }
      case Expr::Kind::kIndex: {
        Type base_type;
        if (!GenExpr(*e.lhs, &base_type)) {
          return false;
        }
        if (!base_type.IsPointer()) {
          return Fail(e.line, "indexing a non-pointer");
        }
        Type index_type;
        if (!GenExpr(*e.rhs, &index_type)) {
          return false;
        }
        int elem_size = base_type.PointeeSize();
        int idx = TopIndex();
        int base = idx - 1;
        Type result_ptr{base_type.base, base_type.ptr};
        if (stack_[idx].is_const) {
          // Fold constant indexes: into the base constant, or into an addi.
          int64_t disp = static_cast<int64_t>(stack_[idx].cval) * elem_size;
          if (stack_[base].is_const) {
            // Folds into the symbolic base constant; no instruction to witness
            // (the combined address materializes later as a plain constant).
            stack_[base].cval += static_cast<uint32_t>(disp);
            Pop();
            stack_[base].type = result_ptr;
            *value_type = Type{base_type.base, base_type.ptr - 1};
            return true;
          }
          if (FitsImm12(disp)) {
            if (disp != 0) {
              RecordXform(riscv::WitnessXform::kAddrFold, -1, -1, prog_.CurrentOffset(),
                          static_cast<int32_t>(disp), 0);
              Emit(Instr{Op::kAddi, TempReg(base), OperandReg(base), 0,
                         static_cast<int32_t>(disp)});
              SetPlain(base, result_ptr);
            }
            Pop();
            stack_[base].type = result_ptr;
            *value_type = Type{base_type.base, base_type.ptr - 1};
            return true;
          }
        }
        if (elem_size == 4) {
          Emit(Instr{Op::kSlli, TempReg(idx), OperandReg(idx), 0, 2});
          SetPlain(idx, stack_[idx].type);
        }
        Emit(Instr{Op::kAdd, TempReg(base), OperandReg(base), OperandReg(idx), 0});
        SetPlain(base, result_ptr);
        Pop();
        *value_type = Type{base_type.base, base_type.ptr - 1};
        return true;
      }
      default:
        return Fail(e.line, "expression is not an lvalue");
    }
  }

  // If the last emitted instruction computed `addi *base, X, imm` (with *base a dead
  // address temp being consumed right now), folds it into the memory operand. O2 only.
  void FuseAddress(uint8_t* base, int32_t* offset) {
    if (options_.opt_level < 2 || *offset != 0) {
      return;
    }
    auto last = prog_.PopLastPlainInstr();
    if (!last.has_value()) {
      return;
    }
    if (last->op == Op::kAddi && last->rd == *base) {
      *base = last->rs1;
      *offset = last->imm;
      if (MutateHere(MutationKind::kBadAddrFold)) {
        *offset += 4;  // Fused memory operand points one word past the address.
      }
      RecordXform(riscv::WitnessXform::kAddrFold, -1, -1, prog_.CurrentOffset(), *offset, 0);
      return;
    }
    prog_.Emit(*last);  // Not fusable; put it back.
  }

  // Loads the value at the address on top of the stack (in place).
  void LoadFromTop(const Type& value_type) {
    int i = TopIndex();
    uint8_t base = OperandReg(i);
    int32_t offset = 0;
    FuseAddress(&base, &offset);
    Op op = value_type.IsPointer() || value_type.Size() == 4 ? Op::kLw : Op::kLbu;
    Emit(Instr{op, TempReg(i), base, 0, offset});
    SetPlain(i, value_type);
  }

  bool GenExpr(const Expr& e, Type* out_type) {
    switch (e.kind) {
      case Expr::Kind::kIntLit:
        if (!PushConst(Type{Type::Base::kU32, 0}, e.int_value, e.line)) {
          return false;
        }
        *out_type = Top().type;
        return true;
      case Expr::Kind::kVar: {
        int slot_index = LookupLocal(e.name);
        if (slot_index >= 0) {
          const LocalSlot& slot = slots_[slot_index];
          if (slot.array_size != 0) {
            // Array decays to pointer.
            Type ptr{slot.type.base, slot.type.ptr + 1};
            if (!Push(ptr, e.line)) {
              return false;
            }
            Emit(Instr{Op::kAddi, TempReg(TopIndex()), kRegSp, 0, slot.frame_offset});
            *out_type = ptr;
            return true;
          }
          if (slot.reg >= 0) {
            if (!PushSreg(slot.type, slot.reg, e.line)) {
              return false;
            }
            *out_type = slot.type;
            return true;
          }
          if (!Push(slot.type, e.line)) {
            return false;
          }
          uint8_t r = TempReg(TopIndex());
          if (slot.type.Size() == 1 && !slot.type.IsPointer()) {
            Emit(Instr{Op::kLbu, r, kRegSp, 0, slot.frame_offset});
          } else {
            Emit(Instr{Op::kLw, r, kRegSp, 0, slot.frame_offset});
          }
          *out_type = slot.type;
          return true;
        }
        auto g = globals_.find(e.name);
        if (g != globals_.end()) {
          if (g->second.array_size != 0) {
            Type ptr{g->second.type.base, g->second.type.ptr + 1};
            if (!Push(ptr, e.line)) {
              return false;
            }
            EmitLa(TempReg(TopIndex()), e.name);
            *out_type = ptr;
            return true;
          }
          if (!Push(g->second.type, e.line)) {
            return false;
          }
          uint8_t r = TempReg(TopIndex());
          EmitLa(r, e.name);
          Op op = g->second.type.IsPointer() || g->second.type.Size() == 4 ? Op::kLw : Op::kLbu;
          Emit(Instr{op, r, r, 0, 0});
          *out_type = g->second.type;
          return true;
        }
        return Fail(e.line, "undefined variable " + e.name);
      }
      case Expr::Kind::kUnary: {
        Type t;
        if (!GenExpr(*e.lhs, &t)) {
          return false;
        }
        if (Top().is_const) {
          uint32_t v = Top().cval;
          uint32_t r = e.op == "-" ? 0u - v : e.op == "~" ? ~v : (v == 0 ? 1u : 0u);
          Top().cval = r;
          *out_type = Top().type;
          return true;
        }
        int i = TopIndex();
        uint8_t src = OperandReg(i);
        uint8_t dst = TempReg(i);
        if (e.op == "-") {
          Emit(Instr{Op::kSub, dst, kRegZero, src, 0});
        } else if (e.op == "~") {
          Emit(Instr{Op::kXori, dst, src, 0, -1});
        } else {  // "!"
          Emit(Instr{Op::kSltiu, dst, src, 0, 1});
        }
        *out_type = Type{Type::Base::kU32, 0};
        SetPlain(i, *out_type);
        return true;
      }
      case Expr::Kind::kDeref: {
        Type value_type;
        if (!GenAddr(e, &value_type)) {
          return false;
        }
        LoadFromTop(value_type);
        *out_type = value_type;
        return true;
      }
      case Expr::Kind::kAddrOf: {
        Type value_type;
        if (!GenAddr(*e.lhs, &value_type)) {
          return false;
        }
        *out_type = Type{value_type.base, value_type.ptr + 1};
        Top().type = *out_type;
        return true;
      }
      case Expr::Kind::kIndex: {
        Type value_type;
        if (!GenAddr(e, &value_type)) {
          return false;
        }
        LoadFromTop(value_type);
        *out_type = value_type;
        return true;
      }
      case Expr::Kind::kCast: {
        Type t;
        if (!GenExpr(*e.lhs, &t)) {
          return false;
        }
        // Truncation when casting a wider value into u8.
        if (e.cast_type.base == Type::Base::kU8 && e.cast_type.ptr == 0) {
          if (Top().is_const) {
            Top().cval &= 0xff;
          } else {
            int i = TopIndex();
            Emit(Instr{Op::kAndi, TempReg(i), OperandReg(i), 0, 0xff});
            SetPlain(i, Top().type);
          }
        }
        Top().type = e.cast_type;
        *out_type = e.cast_type;
        return true;
      }
      case Expr::Kind::kAssign:
        return GenAssign(e, out_type);
      case Expr::Kind::kBinary:
        return GenBinary(e, out_type);
      case Expr::Kind::kCall:
        return GenCall(e, out_type);
    }
    return Fail(e.line, "unhandled expression");
  }

  bool GenAssign(const Expr& e, Type* out_type) {
    // Register-promoted scalar local: evaluate rhs, move into the register.
    if (e.lhs->kind == Expr::Kind::kVar) {
      int slot_index = LookupLocal(e.lhs->name);
      if (slot_index >= 0 && slots_[slot_index].reg >= 0) {
        Type rt;
        if (!GenExpr(*e.rhs, &rt)) {
          return false;
        }
        uint8_t sreg = static_cast<uint8_t>(slots_[slot_index].reg);
        if (Top().is_const) {
          EmitLi(sreg, Top().cval);
        } else {
          Emit(Instr{Op::kAdd, sreg, OperandRegTop(), kRegZero, 0});
        }
        *out_type = slots_[slot_index].type;
        Top().type = *out_type;
        return true;
      }
    }
    Type value_type;
    if (!GenAddr(*e.lhs, &value_type)) {
      return false;
    }
    Type rt;
    if (!GenExpr(*e.rhs, &rt)) {
      return false;
    }
    int value_idx = TopIndex();
    int addr_idx = value_idx - 1;
    uint8_t value_reg = OperandReg(value_idx);
    uint8_t addr_reg = OperandReg(addr_idx);
    Op op = value_type.IsPointer() || value_type.Size() == 4 ? Op::kSw : Op::kSb;
    if (!MutateHere(MutationKind::kDroppedStore)) {
      Emit(Instr{op, 0, addr_reg, value_reg, 0});
    }
    // The value of the assignment expression is the stored value; keep it as the new
    // top of stack (constants and register aliases carry over without a copy).
    StackEntry val = stack_[value_idx];
    if (!val.is_const && val.sreg < 0) {
      Emit(Instr{Op::kAdd, TempReg(addr_idx), TempReg(value_idx), kRegZero, 0});
    }
    Pop();
    stack_[addr_idx] = val;
    stack_[addr_idx].type = value_type;
    *out_type = value_type;
    return true;
  }

  bool GenShortCircuit(const Expr& e, Type* out_type) {
    bool is_and = e.op == "&&";
    std::string short_label = NewLabel();
    std::string end_label = NewLabel();
    Type t;
    if (!GenExpr(*e.lhs, &t)) {
      return false;
    }
    MaterializeTop();
    uint8_t r = TempReg(TopIndex());
    Pop();
    EmitBranchTo(is_and ? Op::kBeq : Op::kBne, r, kRegZero, short_label);
    if (!GenExpr(*e.rhs, &t)) {
      return false;
    }
    MaterializeTop();
    uint8_t r2 = TempReg(TopIndex());
    Pop();
    // Normalize to 0/1.
    Emit(Instr{Op::kSltu, r, kRegZero, r2, 0});
    EmitJump(end_label);
    prog_.DefineLabel(short_label);
    EmitLi(r, is_and ? 0 : 1);
    prog_.DefineLabel(end_label);
    if (!Push(Type{Type::Base::kU32, 0}, e.line)) {
      return false;
    }
    // Result is already in the pushed slot's register (r == TempReg(TopIndex())).
    *out_type = Top().type;
    return true;
  }

  bool GenBinary(const Expr& e, Type* out_type) {
    if (e.op == "&&" || e.op == "||") {
      return GenShortCircuit(e, out_type);
    }
    Type lt;
    if (!GenExpr(*e.lhs, &lt)) {
      return false;
    }
    Type rt;
    if (!GenExpr(*e.rhs, &rt)) {
      return false;
    }
    int rhs_idx = TopIndex();
    int lhs_idx = rhs_idx - 1;

    // Constant folding (O2 keeps constants symbolic; O0 never has is_const entries).
    if (stack_[lhs_idx].is_const && stack_[rhs_idx].is_const && !lt.IsPointer() &&
        !rt.IsPointer()) {
      uint32_t a = stack_[lhs_idx].cval;
      uint32_t b = stack_[rhs_idx].cval;
      uint32_t r = 0;
      if (e.op == "+") r = a + b;
      else if (e.op == "-") r = a - b;
      else if (e.op == "*") r = a * b;
      else if (e.op == "/") r = (b == 0) ? 0xffffffffu : a / b;
      else if (e.op == "%") r = (b == 0) ? a : a % b;
      else if (e.op == "&") r = a & b;
      else if (e.op == "|") r = a | b;
      else if (e.op == "^") r = a ^ b;
      else if (e.op == "<<") r = a << (b & 31);
      else if (e.op == ">>") r = a >> (b & 31);
      else if (e.op == "==") r = a == b;
      else if (e.op == "!=") r = a != b;
      else if (e.op == "<") r = a < b;
      else if (e.op == ">") r = a > b;
      else if (e.op == "<=") r = a <= b;
      else if (e.op == ">=") r = a >= b;
      else return Fail(e.line, "unknown operator " + e.op);
      if (MutateHere(MutationKind::kWrongConstFold)) {
        r += 1;  // Off-by-one fold: correct shape, wrong constant.
      }
      RecordXform(riscv::WitnessXform::kConstFold, -1, -1, prog_.CurrentOffset(),
                  static_cast<int32_t>(r), BinopCode(e.op));
      Pop();
      Top().cval = r;
      Top().type = Type{Type::Base::kU32, 0};
      *out_type = Top().type;
      return true;
    }

    // Pointer arithmetic scaling.
    auto scale_index = [&](int idx, int elem_size) {
      if (elem_size == 1) {
        return;
      }
      if (stack_[idx].is_const) {
        stack_[idx].cval *= static_cast<uint32_t>(elem_size);
        return;
      }
      Emit(Instr{Op::kSlli, TempReg(idx), OperandReg(idx), 0, 2});
      SetPlain(idx, stack_[idx].type);
    };
    Type result_type{Type::Base::kU32, 0};
    if (e.op == "+" && lt.IsPointer() && !rt.IsPointer()) {
      scale_index(rhs_idx, lt.PointeeSize());
      result_type = lt;
    } else if (e.op == "+" && rt.IsPointer() && !lt.IsPointer()) {
      scale_index(lhs_idx, rt.PointeeSize());
      result_type = rt;
    } else if (e.op == "-" && lt.IsPointer() && !rt.IsPointer()) {
      scale_index(rhs_idx, lt.PointeeSize());
      result_type = lt;
    } else if (lt.IsPointer() || rt.IsPointer()) {
      if (e.op == "==" || e.op == "!=" || e.op == "<" || e.op == ">" || e.op == "<=" ||
          e.op == ">=") {
        result_type = Type{Type::Base::kU32, 0};
      } else {
        return Fail(e.line, "unsupported pointer arithmetic with " + e.op);
      }
    }

    // Immediate forms when the rhs is a small constant (O2).
    if (stack_[rhs_idx].is_const && !stack_[lhs_idx].is_const) {
      uint32_t b = stack_[rhs_idx].cval;
      int64_t sb = static_cast<int64_t>(static_cast<int32_t>(b));
      uint8_t dst = TempReg(lhs_idx);
      uint32_t imm_site = prog_.CurrentOffset();
      bool handled = true;
      bool emitted = true;
      if (((e.op == "+" || e.op == "-" || e.op == "<<" || e.op == ">>" || e.op == "^" ||
            e.op == "|") && b == 0) ||
          (e.op == "*" && b == 1)) {
        // Identity: keep the lhs entry untouched (it may still be an alias/const).
        emitted = false;
      } else if (e.op == "+" && FitsImm12(sb)) {
        Emit(Instr{Op::kAddi, dst, OperandReg(lhs_idx), 0, static_cast<int32_t>(b)});
      } else if (e.op == "-" && FitsImm12(-sb)) {
        Emit(Instr{Op::kAddi, dst, OperandReg(lhs_idx), 0, static_cast<int32_t>(-sb)});
      } else if (e.op == "&" && FitsImm12(sb)) {
        Emit(Instr{Op::kAndi, dst, OperandReg(lhs_idx), 0, static_cast<int32_t>(b)});
      } else if (e.op == "|" && FitsImm12(sb)) {
        Emit(Instr{Op::kOri, dst, OperandReg(lhs_idx), 0, static_cast<int32_t>(b)});
      } else if (e.op == "^" && FitsImm12(sb)) {
        Emit(Instr{Op::kXori, dst, OperandReg(lhs_idx), 0, static_cast<int32_t>(b)});
      } else if (e.op == "<<" && b < 32) {
        Emit(Instr{Op::kSlli, dst, OperandReg(lhs_idx), 0, static_cast<int32_t>(b)});
      } else if (e.op == ">>" && b < 32) {
        Emit(Instr{Op::kSrli, dst, OperandReg(lhs_idx), 0, static_cast<int32_t>(b)});
      } else if (e.op == "*" && b != 0 && (b & (b - 1)) == 0) {
        int shift = 0;
        while ((b >> shift) != 1) {
          shift++;
        }
        Emit(Instr{Op::kSlli, dst, OperandReg(lhs_idx), 0, shift});
      } else if (e.op == "<" && b != 0 && FitsImm12(sb)) {
        Emit(Instr{Op::kSltiu, dst, OperandReg(lhs_idx), 0, static_cast<int32_t>(b)});
      } else {
        handled = false;
      }
      if (handled) {
        if (emitted) {
          // Identity elisions leave no instruction to witness; only selected
          // immediate forms get a transformer entry.
          RecordXform(riscv::WitnessXform::kImmForm, -1, -1, imm_site,
                      static_cast<int32_t>(b), BinopCode(e.op));
        }
        Pop();
        if (emitted) {
          SetPlain(lhs_idx, result_type);
        } else {
          stack_[lhs_idx].type = result_type;
        }
        *out_type = result_type;
        return true;
      }
    }

    uint8_t srcl = OperandReg(lhs_idx);
    uint8_t srcr = OperandReg(rhs_idx);
    uint8_t rl = TempReg(lhs_idx);
    uint8_t rr = srcr;
    (void)rr;
    if (e.op == "+") {
      Emit(Instr{Op::kAdd, rl, srcl, srcr, 0});
    } else if (e.op == "-") {
      if (MutateHere(MutationKind::kWrongRegister)) {
        Emit(Instr{Op::kSub, rl, srcr, srcl, 0});  // Operands swapped.
      } else {
        Emit(Instr{Op::kSub, rl, srcl, srcr, 0});
      }
    } else if (e.op == "*") {
      if (MutateHere(MutationKind::kStrengthReducedMul) &&
          static_cast<int>(stack_.size()) < kNumTemps) {
        // Repeated addition: the product is correct, but the loop's trip count is
        // the rhs value — a data-dependent timing channel the validator's leakage
        // pass must reject when the operand is secret.
        uint8_t cnt = TempReg(rhs_idx);
        uint8_t acc = TempReg(rhs_idx + 1);
        std::string loop = NewLabel();
        std::string done = NewLabel();
        if (cnt != srcr) {
          Emit(Instr{Op::kAdd, cnt, srcr, kRegZero, 0});
        }
        Emit(Instr{Op::kAddi, acc, kRegZero, 0, 0});
        prog_.DefineLabel(loop);
        EmitBranchTo(Op::kBeq, cnt, kRegZero, done);
        Emit(Instr{Op::kAdd, acc, acc, srcl, 0});
        Emit(Instr{Op::kAddi, cnt, cnt, 0, -1});
        EmitJump(loop);
        prog_.DefineLabel(done);
        Emit(Instr{Op::kAdd, rl, acc, kRegZero, 0});
      } else {
        Emit(Instr{Op::kMul, rl, srcl, srcr, 0});
      }
    } else if (e.op == "/") {
      Emit(Instr{Op::kDivu, rl, srcl, srcr, 0});
    } else if (e.op == "%") {
      Emit(Instr{Op::kRemu, rl, srcl, srcr, 0});
    } else if (e.op == "&") {
      Emit(Instr{Op::kAnd, rl, srcl, srcr, 0});
    } else if (e.op == "|") {
      Emit(Instr{Op::kOr, rl, srcl, srcr, 0});
    } else if (e.op == "^") {
      Emit(Instr{Op::kXor, rl, srcl, srcr, 0});
    } else if (e.op == "<<") {
      Emit(Instr{Op::kSll, rl, srcl, srcr, 0});
    } else if (e.op == ">>") {
      Emit(Instr{Op::kSrl, rl, srcl, srcr, 0});
    } else if (e.op == "==") {
      Emit(Instr{Op::kSub, rl, srcl, srcr, 0});
      Emit(Instr{Op::kSltiu, rl, rl, 0, 1});
    } else if (e.op == "!=") {
      Emit(Instr{Op::kSub, rl, srcl, srcr, 0});
      Emit(Instr{Op::kSltu, rl, kRegZero, rl, 0});
    } else if (e.op == "<") {
      Emit(Instr{Op::kSltu, rl, srcl, srcr, 0});
    } else if (e.op == ">") {
      Emit(Instr{Op::kSltu, rl, srcr, srcl, 0});
    } else if (e.op == "<=") {
      Emit(Instr{Op::kSltu, rl, srcr, srcl, 0});
      Emit(Instr{Op::kXori, rl, rl, 0, 1});
    } else if (e.op == ">=") {
      Emit(Instr{Op::kSltu, rl, srcl, srcr, 0});
      Emit(Instr{Op::kXori, rl, rl, 0, 1});
    } else {
      return Fail(e.line, "unknown operator " + e.op);
    }
    Pop();
    SetPlain(lhs_idx, result_type);
    *out_type = result_type;
    return true;
  }

  bool GenCall(const Expr& e, Type* out_type) {
    // Builtin: __mulhu(a, b) -> mulhu instruction (the RV32M high-multiply the bignum
    // code needs; HACL* gets this from 64-bit arithmetic, MiniC exposes it directly).
    if (e.name == "__mulhu") {
      if (e.args.size() != 2) {
        return Fail(e.line, "__mulhu takes 2 arguments");
      }
      Type t;
      if (!GenExpr(*e.args[0], &t) || !GenExpr(*e.args[1], &t)) {
        return false;
      }
      int rhs_idx = TopIndex();
      int lhs_idx = rhs_idx - 1;
      uint8_t srcl = OperandReg(lhs_idx);
      uint8_t srcr = OperandReg(rhs_idx);
      Emit(Instr{Op::kMulhu, TempReg(lhs_idx), srcl, srcr, 0});
      Pop();
      SetPlain(lhs_idx, Type{Type::Base::kU32, 0});
      *out_type = Top().type;
      return true;
    }
    auto sig = sigs_.find(e.name);
    if (sig == sigs_.end()) {
      return Fail(e.line, "call to undefined function " + e.name);
    }
    if (e.args.size() != sig->second.params.size()) {
      return Fail(e.line, "wrong argument count for " + e.name);
    }
    if (e.args.size() > 7) {
      return Fail(e.line, "too many arguments (max 7)");
    }
    int depth_before = static_cast<int>(stack_.size());
    for (const auto& arg : e.args) {
      Type t;
      if (!GenExpr(*arg, &t)) {
        return false;
      }
    }
    // Spill the whole live expression stack (the temps are caller-saved).
    for (int i = 0; i < static_cast<int>(stack_.size()); i++) {
      Materialize(i);
      Emit(Instr{Op::kSw, 0, kRegSp, TempReg(i), spill_base_ + 4 * i});
    }
    // Load the arguments into a0..; they sit at stack indices [depth_before, size).
    for (size_t i = 0; i < e.args.size(); i++) {
      Emit(Instr{Op::kLw, static_cast<uint8_t>(kRegA0 + i), kRegSp, 0,
                 spill_base_ + 4 * (depth_before + static_cast<int>(i))});
    }
    EmitCall(e.name);
    // Restore live temps below the arguments.
    for (int i = 0; i < depth_before; i++) {
      Emit(Instr{Op::kLw, TempReg(i), kRegSp, 0, spill_base_ + 4 * i});
    }
    stack_.resize(depth_before);
    *out_type = sig->second.return_type;
    if (!out_type->IsVoid()) {
      if (!Push(*out_type, e.line)) {
        return false;
      }
      Emit(Instr{Op::kAdd, TempReg(TopIndex()), kRegA0, kRegZero, 0});
    }
    return true;
  }

  const TranslationUnit& unit_;
  CodegenOptions options_;
  riscv::Program& prog_;
  std::string error_;

  std::map<std::string, FuncSig> sigs_;
  std::map<std::string, GlobalInfo> globals_;

  // Per-function state.
  const Function* current_fn_ = nullptr;
  std::vector<LocalSlot> slots_;
  std::vector<Scope> scopes_;
  std::vector<StackEntry> stack_;
  std::vector<uint8_t> used_saved_regs_;
  std::vector<std::string> break_labels_;
  std::vector<std::string> continue_labels_;
  std::vector<riscv::WitnessStmt> wstmts_;
  std::vector<riscv::WitnessXform> wxforms_;
  std::string epilogue_label_;
  int mutation_sites_ = 0;
  int decl_counter_ = 0;
  int spill_base_ = 0;
  int saved_base_ = 0;
  int ra_offset_ = 0;
  int frame_size_ = 0;
  int label_counter_ = 0;
};

}  // namespace

Result<bool> Generate(const TranslationUnit& unit, const CodegenOptions& options,
                      riscv::Program* program) {
  Codegen gen(unit, options, program);
  if (!gen.Run()) {
    return Result<bool>::Error(gen.error());
  }
  return true;
}

}  // namespace parfait::minicc
