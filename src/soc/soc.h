// SoC top level: CPU + bus + peripherals, plus the host-side wire driver.
//
// A Soc instance is the unit that the paper calls "the circuit": firmware in ROM,
// volatile RAM, persistent FRAM, a UART, and one of the two CPUs, advanced one clock
// cycle at a time under adversary-controlled wire inputs. Power-cycling (for crash
// safety, figure 9) is modeled by constructing a fresh Soc with the previous FRAM
// contents.
#ifndef PARFAIT_SOC_SOC_H_
#define PARFAIT_SOC_SOC_H_

#include <memory>
#include <optional>

#include "src/riscv/assembler.h"
#include "src/soc/bus.h"
#include "src/soc/cpu.h"

namespace parfait::soc {

enum class CpuKind : uint8_t { kIbexLite, kPicoLite };

const char* CpuKindName(CpuKind kind);

struct SocConfig {
  BusConfig bus;
  CpuConfig cpu;
  CpuKind cpu_kind = CpuKind::kIbexLite;
  bool taint_tracking = false;
};

class Soc {
 public:
  // Builds the SoC with the firmware image in ROM and resets the CPU at the image's
  // `_start` symbol. FRAM starts zeroed unless loaded explicitly.
  Soc(const riscv::Image& image, const SocConfig& config);

  // Advances one clock cycle under the given wire inputs; returns the output wires.
  rtl::WireSample Tick(const rtl::WireInput& in);

  uint64_t cycles() const { return cycles_; }
  Bus& bus() { return bus_; }
  const Bus& bus() const { return bus_; }
  Cpu& cpu() { return *cpu_; }
  const Cpu& cpu() const { return *cpu_; }
  const riscv::Image& image() const { return image_; }

 private:
  riscv::Image image_;
  SocConfig config_;
  Bus bus_;
  std::unique_ptr<Cpu> cpu_;
  uint64_t cycles_ = 0;
};

// Host-side driver for the byte-handshake wire protocol (the circuit-level driver of
// section 5.2): sends a fixed-size command, then collects the fixed-size response.
// Records the full wire trace for IPR comparisons.
class WireHost {
 public:
  explicit WireHost(Soc* soc) : soc_(soc) {
    last_sample_.rx_ready = true;  // The UART rx buffer is empty at reset.
  }

  // Runs the SoC for exactly `cycles` with idle inputs.
  void RunIdle(uint64_t cycles);

  // Sends `command` byte-by-byte (respecting rx_ready flow control), then reads
  // `response_size` bytes from the tx stream. Returns std::nullopt on timeout.
  std::optional<Bytes> Transact(std::span<const uint8_t> command, size_t response_size,
                                uint64_t max_cycles);

  const rtl::WireTrace& trace() const { return trace_; }
  void ClearTrace() { trace_.clear(); }

 private:
  rtl::WireSample Step(const rtl::WireInput& in);

  Soc* soc_;
  rtl::WireTrace trace_;
  rtl::WireSample last_sample_;
};

}  // namespace parfait::soc

#endif  // PARFAIT_SOC_SOC_H_
