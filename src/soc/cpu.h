// CPU model interface and the shared RV32IM execution core.
//
// Two implementations mirror the paper's hardware platforms (section 7.1):
//   - IbexLite: a 2-stage pipelined core (IF / ID-EX) modeled on the OpenTitan Ibex,
//     with single-cycle ALU ops, 2-cycle loads/stores, branch-taken bubbles, a
//     multi-cycle multiplier (optionally with data-dependent latency, the §7.2
//     "variable-latency arithmetic" bug), and a 37-cycle divider.
//   - PicoLite: a size-optimized multi-cycle core modeled on the PicoRV32: every
//     instruction pays a separate fetch state, so CPI is much higher, but each
//     simulated cycle does less work — reproducing Table 4's cycles/s inversion.
//
// Both expose the figure 10 synchronization signals: the instruction word sitting in
// the execute stage, its validity, and the architectural register file.
#ifndef PARFAIT_SOC_CPU_H_
#define PARFAIT_SOC_CPU_H_

#include <array>
#include <cstdint>
#include <memory>
#include <string>

#include "src/riscv/isa.h"
#include "src/rtl/sim.h"
#include "src/soc/bus.h"

namespace parfait::soc {

// Shared architectural state operated on by the execution core.
struct ExecState {
  std::array<rtl::Word, 32> regs{};
  uint32_t pc = 0;
  uint64_t retired = 0;
  uint32_t last_retired_pc = 0;
  bool halted = false;
  std::string fault;

  void SetReg(uint8_t r, rtl::Word v) {
    if (r != 0) {
      regs[r] = v;
    }
  }
};

// Timing class of an executed instruction, consumed by each CPU's timing model.
enum class ExecClass : uint8_t {
  kAlu,
  kLoad,
  kStore,
  kBranchNotTaken,
  kBranchTaken,
  kJump,
  kMul,
  kDiv,
  kHalt,
  kFault,
};

struct ExecOutcome {
  ExecClass cls = ExecClass::kAlu;
  uint32_t next_pc = 0;
  // Operand info for data-dependent timing models (variable-latency multiplier).
  uint32_t rs2_bits = 0;
  bool operands_tainted = false;
};

// Executes one instruction against the architectural state and bus, updating
// state.pc/retired and recording taint-policy leaks (secret-dependent branch targets,
// memory addresses, and multiplier/divider operands) into the bus when taint tracking
// is enabled. Returns the timing class.
ExecOutcome ExecuteOne(ExecState& state, const riscv::Instr& instr, Bus& bus);

class Cpu {
 public:
  virtual ~Cpu() = default;

  virtual void Reset(uint32_t pc) = 0;
  // Advances one clock cycle.
  virtual void Cycle(Bus& bus) = 0;

  virtual const char* name() const = 0;
  virtual bool halted() const = 0;
  virtual const std::string& fault() const = 0;

  // Figure 10 sync signals.
  virtual bool instr_valid_id() const = 0;
  virtual uint32_t instr_rdata_id() const = 0;
  virtual uint32_t instr_pc_id() const = 0;

  // Architectural state access (register mapping + emulator injection).
  virtual rtl::Word reg(uint8_t index) const = 0;
  virtual void set_reg(uint8_t index, rtl::Word value) = 0;
  virtual uint32_t pc() const = 0;

  // Retirement stream (drives assembly-circuit synchronization).
  virtual uint64_t retired() const = 0;
  virtual uint32_t last_retired_pc() const = 0;

  // True when the core sits at a quiescent inter-instruction point whose full
  // microarchitectural state equals Reset(pc()): no instruction in flight, no
  // pending stall counters. Both cores reach such a point immediately after a
  // *taken* control transfer retires (the pipeline was flushed / the FSM returns
  // to fetch), which is where the work-unit slicer places segment boundaries — a
  // fresh core Reset() to the boundary pc is cycle-exact from there on.
  virtual bool at_boundary() const = 0;
};

struct CpuConfig {
  // IbexLite multiplier: fixed latency in cycles, or data-dependent when
  // variable_latency_mul is set (the paper replaced the Ibex multiplier to *avoid*
  // this; we keep it as an injectable hardware bug).
  int mul_cycles = 3;
  bool variable_latency_mul = false;
  // Injected hardware bug (§7.2 "pipeline hazard"): a missing load-use forwarding
  // path — an instruction issued right after a load reads the *stale* value of the
  // loaded register.
  bool load_use_hazard_bug = false;
};

std::unique_ptr<Cpu> MakeIbexLite(const CpuConfig& config);
std::unique_ptr<Cpu> MakePicoLite(const CpuConfig& config);

}  // namespace parfait::soc

#endif  // PARFAIT_SOC_CPU_H_
