#include "src/soc/bus.h"

#include <cstring>

#include "src/support/status.h"

namespace parfait::soc {

void Uart::LatchInput(const rtl::WireInput& in) {
  host_tx_ready_ = in.tx_ready;
  if (in.rx_valid && !rx_full_) {
    rx_full_ = true;
    rx_byte_ = rtl::Word::Clean(in.rx_data);
  }
}

rtl::WireSample Uart::DriveOutput() {
  rtl::WireSample out;
  out.rx_ready = !rx_full_;
  if (tx_full_) {
    out.tx_valid = true;
    out.tx_data = static_cast<uint8_t>(tx_byte_.bits);
    if (host_tx_ready_) {
      tx_full_ = false;
    }
  }
  return out;
}

uint32_t Uart::ReadStatus() const {
  return (rx_full_ ? 1u : 0u) | (tx_full_ ? 0u : 2u);
}

rtl::Word Uart::ReadRxData() {
  rtl::Word b = rx_byte_;
  rx_full_ = false;
  return b;
}

void Uart::WriteTxData(rtl::Word value) {
  tx_byte_ = rtl::Word{value.bits & 0xff, value.taint & 0xff};
  tx_full_ = true;
}

Bus::Bus(const BusConfig& config) : config_(config) {
  rom_ = Mem{kRomBase, std::vector<uint8_t>(config.rom_size), std::vector<uint8_t>(config.rom_size),
             false};
  ram_ = Mem{kRamBase, std::vector<uint8_t>(config.ram_size), std::vector<uint8_t>(config.ram_size),
             true};
  fram_ = Mem{kFramBase, std::vector<uint8_t>(config.fram_size),
              std::vector<uint8_t>(config.fram_size), true};
  decoded_.resize(config.rom_size / 4);
  decoded_raw_.resize(config.rom_size / 4, 0);
  decode_state_.resize(config.rom_size / 4, 0);
}

void Bus::LoadRom(std::span<const uint8_t> image) {
  PARFAIT_CHECK_MSG(image.size() <= rom_.data.size(), "firmware too large for ROM");
  std::memcpy(rom_.data.data(), image.data(), image.size());
  std::fill(decode_state_.begin(), decode_state_.end(), 0);
}

void Bus::LoadFram(std::span<const uint8_t> contents, std::span<const uint8_t> taint_mask) {
  PARFAIT_CHECK(contents.size() <= fram_.data.size());
  std::memcpy(fram_.data.data(), contents.data(), contents.size());
  if (!taint_mask.empty()) {
    PARFAIT_CHECK(taint_mask.size() == contents.size());
    std::memcpy(fram_.taint.data(), taint_mask.data(), taint_mask.size());
  }
}

Bytes Bus::DumpFram() const { return fram_.data; }

void Bus::SetFramTaint(uint32_t offset, uint32_t size, bool tainted) {
  PARFAIT_CHECK(static_cast<size_t>(offset) + size <= fram_.taint.size());
  std::memset(fram_.taint.data() + offset, tainted ? 0xff : 0, size);
}

const Bus::Mem* Bus::FindMemImpl(uint32_t addr, uint32_t size) const {
  const Mem* mems[] = {&ram_, &rom_, &fram_};
  const Mem* hint = mems[last_mem_];
  if (addr >= hint->base && static_cast<uint64_t>(addr) + size <=
                                static_cast<uint64_t>(hint->base) + hint->data.size()) {
    return hint;
  }
  for (uint8_t i = 0; i < 3; i++) {
    const Mem* m = mems[i];
    uint64_t end = static_cast<uint64_t>(m->base) + m->data.size();
    if (addr >= m->base && static_cast<uint64_t>(addr) + size <= end) {
      last_mem_ = i;
      return m;
    }
  }
  return nullptr;
}

bool Bus::Read(uint32_t addr, uint32_t size, rtl::Word* out) {
  if (addr >= kUartBase) {
    if (size != 4) {
      return false;
    }
    if (addr == kUartStatus) {
      *out = rtl::Word::Clean(uart_.ReadStatus());
      return true;
    }
    if (addr == kUartRxData) {
      *out = uart_.ReadRxData();
      return true;
    }
    return false;
  }
  const Mem* m = FindMem(addr, size);
  if (m == nullptr) {
    return false;
  }
  uint32_t offset = addr - m->base;
  uint32_t bits = 0;
  uint32_t taint = 0;
  for (uint32_t i = 0; i < size; i++) {
    bits |= static_cast<uint32_t>(m->data[offset + i]) << (8 * i);
    if (m->taint[offset + i] != 0) {
      taint |= 0xffu << (8 * i);
    }
  }
  *out = rtl::Word{bits, taint_tracking_ ? taint : 0};
  return true;
}

bool Bus::Write(uint32_t addr, uint32_t size, rtl::Word value) {
  if (addr >= kUartBase) {
    if (size != 4 || addr != kUartTxData) {
      return false;
    }
    uart_.WriteTxData(value);
    return true;
  }
  Mem* m = FindMem(addr, size);
  if (m == nullptr || !m->writable) {
    return false;
  }
  uint32_t offset = addr - m->base;
  for (uint32_t i = 0; i < size; i++) {
    m->data[offset + i] = static_cast<uint8_t>(value.bits >> (8 * i));
    m->taint[offset + i] = ((value.taint >> (8 * i)) & 0xff) != 0 ? 1 : 0;
  }
  return true;
}

const riscv::Instr* Bus::Fetch(uint32_t addr, uint32_t* raw_word) {
  if ((addr & 3) != 0) {
    return nullptr;
  }
  // Fast path: cached ROM decode.
  if (addr >= rom_.base && addr - rom_.base + 4 <= rom_.data.size()) {
    uint32_t index = (addr - rom_.base) / 4;
    if (decode_state_[index] == 0) {
      uint32_t word = parfait::LoadLe32(rom_.data.data() + (addr - rom_.base));
      decoded_raw_[index] = word;
      auto decoded = riscv::Decode(word);
      if (decoded.has_value()) {
        decoded_[index] = *decoded;
        decode_state_[index] = 1;
      } else {
        decode_state_[index] = 2;
      }
    }
    if (raw_word != nullptr) {
      *raw_word = decoded_raw_[index];
    }
    return decode_state_[index] == 1 ? &decoded_[index] : nullptr;
  }
  // Execution from RAM (legal but uncached).
  rtl::Word w;
  if (!Read(addr, 4, &w)) {
    return nullptr;
  }
  if (raw_word != nullptr) {
    *raw_word = w.bits;
  }
  static thread_local riscv::Instr scratch;
  auto decoded = riscv::Decode(w.bits);
  if (!decoded.has_value()) {
    return nullptr;
  }
  scratch = *decoded;
  return &scratch;
}

Bytes Bus::ReadBytes(uint32_t addr, uint32_t size) const {
  const Mem* m = FindMem(addr, size);
  PARFAIT_CHECK_MSG(m != nullptr, "ReadBytes out of range at 0x%08x", addr);
  const uint8_t* p = m->data.data() + (addr - m->base);
  return Bytes(p, p + size);
}

void Bus::WriteBytes(uint32_t addr, std::span<const uint8_t> data) {
  Mem* m = FindMem(addr, static_cast<uint32_t>(data.size()));
  PARFAIT_CHECK_MSG(m != nullptr, "WriteBytes out of range at 0x%08x", addr);
  std::memcpy(m->data.data() + (addr - m->base), data.data(), data.size());
  if (m == &rom_) {
    // WriteBytes is the one path that can change ROM after LoadRom (it is the
    // harness/emulator backdoor and skips the writable check), so it must follow the
    // same store-invalidation contract as the machine's decode and block caches:
    // every fetch-cache word the write overlaps is re-decoded on next fetch.
    uint32_t first = (addr - rom_.base) / 4;
    uint32_t last = (addr - rom_.base + static_cast<uint32_t>(data.size()) + 3) / 4;
    for (uint32_t i = first; i < last && i < decode_state_.size(); i++) {
      decode_state_[i] = 0;
    }
  }
}

}  // namespace parfait::soc
