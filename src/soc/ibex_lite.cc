#include "src/soc/cpu.h"

namespace parfait::soc {

namespace {

// 2-stage pipelined core: IF fetches into a one-entry instruction buffer; ID/EX
// executes from it. Timing model:
//   ALU / fence / not-taken branch     1 cycle
//   load / store                       2 cycles (1-cycle memory stall)
//   taken branch / jump                2 cycles (fetch bubble after redirect)
//   multiply                           mul_cycles (default 3), or 1 + bytes(rs2) when
//                                      variable_latency_mul is set (the §7.2 hardware
//                                      timing bug)
//   divide                             37 cycles
class IbexLite final : public Cpu {
 public:
  explicit IbexLite(const CpuConfig& config) : config_(config) {}

  void Reset(uint32_t pc) override {
    state_ = ExecState{};
    state_.pc = pc;
    pc_if_ = pc;
    id_valid_ = false;
    busy_ = 0;
    hazard_reg_ = 0;
  }

  void Cycle(Bus& bus) override {
    if (state_.halted) {
      return;
    }
    // Multi-cycle stall (memory wait states, iterative multiply/divide).
    if (busy_ > 0) {
      busy_--;
      return;
    }
    bool redirect = false;
    if (id_valid_) {
      const riscv::Instr* instr = bus.Fetch(id_pc_, nullptr);
      if (instr == nullptr) {
        state_.halted = true;
        state_.fault = "undecodable instruction in ID/EX";
        return;
      }
      // The execute stage operates on the buffered instruction; state_.pc tracks it.
      state_.pc = id_pc_;
      // Injected pipeline bug: if the previous instruction was a load and this one
      // reads its destination, substitute the stale (pre-load) value.
      rtl::Word saved{};
      bool substituted = false;
      if (config_.load_use_hazard_bug && hazard_reg_ != 0 &&
          (instr->rs1 == hazard_reg_ || instr->rs2 == hazard_reg_)) {
        saved = state_.regs[hazard_reg_];
        state_.regs[hazard_reg_] = hazard_stale_;
        substituted = true;
      }
      uint8_t load_rd = riscv::IsLoad(instr->op) ? instr->rd : 0;
      rtl::Word pre_load_value = load_rd != 0 ? state_.regs[load_rd] : rtl::Word{};
      ExecOutcome out = ExecuteOne(state_, *instr, bus);
      if (substituted) {
        // The stale read already happened; restore the architecturally correct value
        // unless this instruction overwrote the register itself.
        if (instr->rd != hazard_reg_) {
          state_.regs[hazard_reg_] = saved;
        }
      }
      hazard_reg_ = load_rd;
      hazard_stale_ = pre_load_value;
      id_valid_ = false;
      switch (out.cls) {
        case ExecClass::kAlu:
        case ExecClass::kBranchNotTaken:
          break;
        case ExecClass::kLoad:
        case ExecClass::kStore:
          busy_ = 1;
          break;
        case ExecClass::kBranchTaken:
        case ExecClass::kJump:
          redirect = true;
          break;
        case ExecClass::kMul: {
          int latency = config_.mul_cycles;
          if (config_.variable_latency_mul) {
            // Early-terminating multiplier: latency grows with the magnitude of the
            // second operand (the ARM Cortex-M3 behaviour cited in the paper's intro).
            uint32_t b = out.rs2_bits;
            latency = 1;
            while (b != 0) {
              latency++;
              b >>= 8;
            }
          }
          busy_ = latency > 0 ? latency - 1 : 0;
          break;
        }
        case ExecClass::kDiv:
          busy_ = 36;
          break;
        case ExecClass::kHalt:
        case ExecClass::kFault:
          return;
      }
      if (redirect) {
        pc_if_ = state_.pc;  // ExecuteOne set the architectural pc to the target.
        return;              // Fetch bubble: the buffer refills next cycle.
      }
    }
    // IF stage: refill the instruction buffer.
    uint32_t raw = 0;
    if (bus.Fetch(pc_if_, &raw) == nullptr) {
      // Leave the buffer invalid; executing this pc will fault if ever reached.
      id_word_ = 0;
      id_pc_ = pc_if_;
      id_valid_ = true;  // Execute stage reports the decode fault.
      return;
    }
    id_word_ = raw;
    id_pc_ = pc_if_;
    id_valid_ = true;
    pc_if_ += 4;
  }

  const char* name() const override { return "IbexLite"; }
  bool halted() const override { return state_.halted; }
  const std::string& fault() const override { return state_.fault; }

  bool instr_valid_id() const override { return id_valid_ && busy_ == 0; }
  uint32_t instr_rdata_id() const override { return id_word_; }
  uint32_t instr_pc_id() const override { return id_pc_; }

  rtl::Word reg(uint8_t index) const override { return state_.regs[index]; }
  void set_reg(uint8_t index, rtl::Word value) override { state_.SetReg(index, value); }
  uint32_t pc() const override { return state_.pc; }

  uint64_t retired() const override { return state_.retired; }
  uint32_t last_retired_pc() const override { return state_.last_retired_pc; }

  // Only a taken control transfer leaves the buffer empty between cycles (the
  // redirect's fetch bubble); the transfer writes no hazard_reg_ and holds busy_
  // at 0, so this state is exactly Reset(state_.pc) with pc_if_ == state_.pc.
  bool at_boundary() const override { return !id_valid_ && busy_ == 0; }

 private:
  CpuConfig config_;
  ExecState state_;
  uint32_t pc_if_ = 0;
  bool id_valid_ = false;
  uint32_t id_word_ = 0;
  uint32_t id_pc_ = 0;
  int busy_ = 0;
  uint8_t hazard_reg_ = 0;      // Destination of the previously executed load.
  rtl::Word hazard_stale_{};    // Its pre-load value (for the injected hazard bug).
};

}  // namespace

std::unique_ptr<Cpu> MakeIbexLite(const CpuConfig& config) {
  return std::make_unique<IbexLite>(config);
}

}  // namespace parfait::soc
