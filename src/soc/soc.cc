#include "src/soc/soc.h"

#include "src/support/status.h"

namespace parfait::soc {

const char* CpuKindName(CpuKind kind) {
  return kind == CpuKind::kIbexLite ? "IbexLite" : "PicoLite";
}

Soc::Soc(const riscv::Image& image, const SocConfig& config)
    : image_(image), config_(config), bus_(config.bus) {
  bus_.LoadRom(image.rom);
  bus_.set_taint_tracking(config.taint_tracking);
  cpu_ = config.cpu_kind == CpuKind::kIbexLite ? MakeIbexLite(config.cpu)
                                               : MakePicoLite(config.cpu);
  cpu_->Reset(image.SymbolOrDie("_start"));
}

rtl::WireSample Soc::Tick(const rtl::WireInput& in) {
  bus_.BeginCycle(in);
  cpu_->Cycle(bus_);
  cycles_++;
  return bus_.EndCycle();
}

rtl::WireSample WireHost::Step(const rtl::WireInput& in) {
  rtl::WireSample s = soc_->Tick(in);
  trace_.push_back(s);
  last_sample_ = s;
  return s;
}

void WireHost::RunIdle(uint64_t cycles) {
  rtl::WireInput idle;
  for (uint64_t i = 0; i < cycles; i++) {
    Step(idle);
  }
}

std::optional<Bytes> WireHost::Transact(std::span<const uint8_t> command, size_t response_size,
                                        uint64_t max_cycles) {
  uint64_t budget = max_cycles;
  Bytes response;
  size_t sent = 0;
  // The host presents each command byte until the device's rx_ready indicates it was
  // latched, then moves on; response bytes are collected from the tx handshake. Note
  // rx_ready in the *previous* cycle's sample tells whether the byte we present this
  // cycle will be accepted.
  while (budget-- > 0) {
    rtl::WireInput in;
    in.tx_ready = true;
    bool offering = sent < command.size() && last_sample_.rx_ready;
    if (offering) {
      in.rx_valid = true;
      in.rx_data = command[sent];
    }
    rtl::WireSample s = Step(in);
    if (offering) {
      sent++;
    }
    if (s.tx_valid) {
      response.push_back(s.tx_data);
      if (response.size() == response_size) {
        return response;
      }
    }
    if (soc_->cpu().halted()) {
      return std::nullopt;
    }
  }
  return std::nullopt;
}

}  // namespace parfait::soc
