// SoC bus, memories, and UART peripheral.
//
// Memory map (shared with the abstract-machine harnesses so the Knox2 pointer mapping
// is the identity on flat addresses, figure 10):
//   0x00000000  ROM   (firmware image; read-only, instruction decode cache)
//   0x20000000  RAM   (data, bss, stack)
//   0x40000000  FRAM  (persistent memory; survives power cycles via the harness)
//   0x80000000  UART  (4-wire byte-handshake interface with flow control)
//
// The paper's platform uses a 4-wire UART with flow control; we model it at byte
// granularity: the serial shift register is abstracted away, but per-cycle handshake
// timing — which is what the wire-level adversary observes — is preserved. This
// substitution is recorded in DESIGN.md.
#ifndef PARFAIT_SOC_BUS_H_
#define PARFAIT_SOC_BUS_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "src/riscv/isa.h"
#include "src/rtl/sim.h"
#include "src/support/bytes.h"

namespace parfait::soc {

constexpr uint32_t kRomBase = 0x00000000;
constexpr uint32_t kRamBase = 0x20000000;
constexpr uint32_t kFramBase = 0x40000000;
constexpr uint32_t kUartBase = 0x80000000;

constexpr uint32_t kUartStatus = kUartBase + 0x0;  // bit0: rx byte ready, bit1: tx free.
constexpr uint32_t kUartRxData = kUartBase + 0x4;  // Reading pops the rx buffer.
constexpr uint32_t kUartTxData = kUartBase + 0x8;  // Writing pushes the tx buffer.

struct BusConfig {
  uint32_t rom_size = 256 * 1024;
  uint32_t ram_size = 128 * 1024;
  uint32_t fram_size = 8 * 1024;
};

// Byte-handshake UART with flow control.
class Uart {
 public:
  // Wire-side input latch, called at the start of each cycle.
  void LatchInput(const rtl::WireInput& in);
  // Wire-side output sample, called at the end of each cycle.
  rtl::WireSample DriveOutput();

  // CPU-side MMIO.
  uint32_t ReadStatus() const;
  rtl::Word ReadRxData();
  void WriteTxData(rtl::Word value);

 private:
  bool rx_full_ = false;
  rtl::Word rx_byte_;
  bool tx_full_ = false;
  rtl::Word tx_byte_;
  bool host_tx_ready_ = true;
};

// A taint-propagation policy violation observed during simulation (the leakage-model
// checker's findings: secret-dependent branch, address, or variable-latency operand).
struct TaintLeak {
  uint32_t pc;
  std::string what;
};

// Which instruction classes the taint monitor treats as leak sinks. The default is
// all-on: with no leakage contract configured, the monitor stays conservative and
// records every secret-dependent observation site (including fixed-latency
// multiplies — the timing model decides whether they matter; the monitor records
// the operand taint). A parsed contract (src/contract/contract.h) narrows this to
// exactly the observations the SoC declares; see knox2::TaintCheckOptions.
struct TaintSinks {
  bool branch = true;  // Branch on a secret-derived condition.
  bool jump = true;    // jalr target derived from secret.
  bool load = true;    // Load address derived from secret.
  bool store = true;   // Store address derived from secret.
  bool mul = true;     // Multiply with a tainted operand.
  bool div = true;     // Divide/remainder with a tainted operand.
};

class Bus {
 public:
  explicit Bus(const BusConfig& config);

  // Loads the firmware image into ROM (resets the decode cache).
  void LoadRom(std::span<const uint8_t> image);
  // FRAM persistence: the harness transplants these bytes across power cycles.
  void LoadFram(std::span<const uint8_t> contents, std::span<const uint8_t> taint_mask);
  Bytes DumpFram() const;
  void SetFramTaint(uint32_t offset, uint32_t size, bool tainted);

  // Data access (size in {1, 2, 4}; addr must be size-aligned). Returns false on a bus
  // error (unmapped address, write to ROM).
  bool Read(uint32_t addr, uint32_t size, rtl::Word* out);
  bool Write(uint32_t addr, uint32_t size, rtl::Word value);

  // Instruction fetch with a ROM decode cache (ROM is immutable after LoadRom).
  // Returns nullptr on fetch error or undecodable word.
  const riscv::Instr* Fetch(uint32_t addr, uint32_t* raw_word);

  // Peripheral cycle hooks (called by the SoC top).
  void BeginCycle(const rtl::WireInput& in) { uart_.LatchInput(in); }
  rtl::WireSample EndCycle() { return uart_.DriveOutput(); }

  void RecordLeak(uint32_t pc, const std::string& what) { leaks_.push_back({pc, what}); }
  const std::vector<TaintLeak>& leaks() const { return leaks_; }
  bool taint_tracking() const { return taint_tracking_; }
  void set_taint_tracking(bool on) { taint_tracking_ = on; }
  const TaintSinks& taint_sinks() const { return taint_sinks_; }
  void set_taint_sinks(const TaintSinks& sinks) { taint_sinks_ = sinks; }

  // Introspection for checkers and the emulator template.
  Bytes ReadBytes(uint32_t addr, uint32_t size) const;
  void WriteBytes(uint32_t addr, std::span<const uint8_t> data);

  const BusConfig& config() const { return config_; }

 private:
  struct Mem {
    uint32_t base;
    std::vector<uint8_t> data;
    std::vector<uint8_t> taint;  // Per-byte.
    bool writable;
  };

  // The one const-correct lookup; checks the last-hit slot before scanning. The slot
  // is an index (not a pointer) so copying a Bus cannot leave it dangling.
  const Mem* FindMemImpl(uint32_t addr, uint32_t size) const;
  Mem* FindMem(uint32_t addr, uint32_t size) {
    return const_cast<Mem*>(FindMemImpl(addr, size));
  }
  const Mem* FindMem(uint32_t addr, uint32_t size) const { return FindMemImpl(addr, size); }

  BusConfig config_;
  Mem rom_;
  Mem ram_;
  Mem fram_;
  Uart uart_;
  std::vector<TaintLeak> leaks_;
  bool taint_tracking_ = false;
  TaintSinks taint_sinks_;

  // Decode cache for ROM words. decoded_raw_ keeps the encoded word next to the
  // decode so a warm Fetch never re-reads ROM.
  std::vector<riscv::Instr> decoded_;
  std::vector<uint32_t> decoded_raw_;
  std::vector<uint8_t> decode_state_;  // 0 = unknown, 1 = valid, 2 = invalid.

  // Last-hit memory for FindMem (index into {ram_, rom_, fram_} scan order).
  mutable uint8_t last_mem_ = 0;
};

}  // namespace parfait::soc

#endif  // PARFAIT_SOC_BUS_H_
