#include "src/soc/cpu.h"

namespace parfait::soc {

namespace {

// Size-optimized multi-cycle core: a PicoRV32-style FSM that spends a dedicated fetch
// cycle on every instruction, then executes with additional wait states:
//   fetch                              1 cycle (every instruction)
//   ALU / fence / not-taken branch     +1 cycle
//   load                               +3 cycles
//   store                              +2 cycles
//   taken branch / jump                +2 cycles
//   multiply                           +32 cycles (shift-and-add)
//   divide                             +38 cycles
// Much higher CPI than IbexLite, but each simulated cycle is cheaper — reproducing the
// paper's Table 4 observation that PicoRV32 verification runs at higher cycles/s yet
// longer wall-clock.
class PicoLite final : public Cpu {
 public:
  explicit PicoLite(const CpuConfig& config) { (void)config; }

  void Reset(uint32_t pc) override {
    state_ = ExecState{};
    state_.pc = pc;
    phase_ = Phase::kFetch;
    wait_ = 0;
  }

  void Cycle(Bus& bus) override {
    if (state_.halted) {
      return;
    }
    switch (phase_) {
      case Phase::kFetch: {
        uint32_t raw = 0;
        const riscv::Instr* instr = bus.Fetch(state_.pc, &raw);
        fetched_word_ = raw;
        fetched_pc_ = state_.pc;
        fetched_ = instr;
        phase_ = Phase::kExecute;
        break;
      }
      case Phase::kExecute: {
        if (fetched_ == nullptr) {
          state_.halted = true;
          state_.fault = "undecodable instruction";
          return;
        }
        ExecOutcome out = ExecuteOne(state_, *fetched_, bus);
        int extra = 0;
        switch (out.cls) {
          case ExecClass::kAlu:
          case ExecClass::kBranchNotTaken:
            extra = 0;
            break;
          case ExecClass::kLoad:
            extra = 2;
            break;
          case ExecClass::kStore:
            extra = 1;
            break;
          case ExecClass::kBranchTaken:
          case ExecClass::kJump:
            extra = 1;
            break;
          case ExecClass::kMul:
            extra = 31;
            break;
          case ExecClass::kDiv:
            extra = 37;
            break;
          case ExecClass::kHalt:
          case ExecClass::kFault:
            return;
        }
        if (extra > 0) {
          wait_ = extra;
          phase_ = Phase::kWait;
        } else {
          phase_ = Phase::kFetch;
        }
        break;
      }
      case Phase::kWait:
        if (--wait_ == 0) {
          phase_ = Phase::kFetch;
        }
        break;
    }
  }

  const char* name() const override { return "PicoLite"; }
  bool halted() const override { return state_.halted; }
  const std::string& fault() const override { return state_.fault; }

  bool instr_valid_id() const override { return phase_ == Phase::kExecute; }
  uint32_t instr_rdata_id() const override { return fetched_word_; }
  uint32_t instr_pc_id() const override { return fetched_pc_; }

  rtl::Word reg(uint8_t index) const override { return state_.regs[index]; }
  void set_reg(uint8_t index, rtl::Word value) override { state_.SetReg(index, value); }
  uint32_t pc() const override { return state_.pc; }

  uint64_t retired() const override { return state_.retired; }
  uint32_t last_retired_pc() const override { return state_.last_retired_pc; }

  // The FSM re-enters kFetch with wait_ exhausted after every completed
  // instruction; at that point the core state is exactly Reset(state_.pc).
  bool at_boundary() const override { return phase_ == Phase::kFetch; }

 private:
  enum class Phase : uint8_t { kFetch, kExecute, kWait };

  ExecState state_;
  Phase phase_ = Phase::kFetch;
  int wait_ = 0;
  const riscv::Instr* fetched_ = nullptr;
  uint32_t fetched_word_ = 0;
  uint32_t fetched_pc_ = 0;
};

}  // namespace

std::unique_ptr<Cpu> MakePicoLite(const CpuConfig& config) {
  return std::make_unique<PicoLite>(config);
}

}  // namespace parfait::soc
