#include "src/soc/cpu.h"

namespace parfait::soc {

using riscv::Instr;
using riscv::Op;
using rtl::Word;

namespace {

Word Alu(Op op, Word a, Word b, int32_t imm, uint32_t pc) {
  uint32_t x = a.bits;
  uint32_t y = b.bits;
  int32_t sx = static_cast<int32_t>(x);
  int32_t sy = static_cast<int32_t>(y);
  uint32_t r = 0;
  switch (op) {
    case Op::kLui: return Word{static_cast<uint32_t>(imm), 0};
    case Op::kAuipc: return Word{pc + static_cast<uint32_t>(imm), 0};
    case Op::kAddi: r = x + static_cast<uint32_t>(imm); break;
    case Op::kSlti: r = sx < imm ? 1 : 0; break;
    case Op::kSltiu: r = x < static_cast<uint32_t>(imm) ? 1 : 0; break;
    case Op::kXori: r = x ^ static_cast<uint32_t>(imm); break;
    case Op::kOri: r = x | static_cast<uint32_t>(imm); break;
    case Op::kAndi: r = x & static_cast<uint32_t>(imm); break;
    case Op::kSlli: r = x << (imm & 31); break;
    case Op::kSrli: r = x >> (imm & 31); break;
    case Op::kSrai: r = static_cast<uint32_t>(sx >> (imm & 31)); break;
    case Op::kAdd: r = x + y; break;
    case Op::kSub: r = x - y; break;
    case Op::kSll: r = x << (y & 31); break;
    case Op::kSlt: r = sx < sy ? 1 : 0; break;
    case Op::kSltu: r = x < y ? 1 : 0; break;
    case Op::kXor: r = x ^ y; break;
    case Op::kSrl: r = x >> (y & 31); break;
    case Op::kSra: r = static_cast<uint32_t>(sx >> (y & 31)); break;
    case Op::kOr: r = x | y; break;
    case Op::kAnd: r = x & y; break;
    case Op::kMul: r = x * y; break;
    case Op::kMulh:
      r = static_cast<uint32_t>((static_cast<int64_t>(sx) * static_cast<int64_t>(sy)) >> 32);
      break;
    case Op::kMulhsu:
      r = static_cast<uint32_t>((static_cast<int64_t>(sx) * static_cast<uint64_t>(y)) >> 32);
      break;
    case Op::kMulhu:
      r = static_cast<uint32_t>((static_cast<uint64_t>(x) * static_cast<uint64_t>(y)) >> 32);
      break;
    case Op::kDiv:
      r = (y == 0) ? 0xffffffffu
          : (x == 0x80000000u && y == 0xffffffffu) ? 0x80000000u
                                                   : static_cast<uint32_t>(sx / sy);
      break;
    case Op::kDivu: r = (y == 0) ? 0xffffffffu : x / y; break;
    case Op::kRem:
      r = (y == 0) ? x : (x == 0x80000000u && y == 0xffffffffu) ? 0 : static_cast<uint32_t>(sx % sy);
      break;
    case Op::kRemu: r = (y == 0) ? x : x % y; break;
    default: break;
  }
  // Taint propagates through every datapath operation (immediates are clean).
  uint32_t taint = (a.taint != 0 || b.taint != 0) ? 0xffffffffu : 0;
  // Immediate-only ops do not read rs2.
  bool uses_rs2 = op == Op::kAdd || op == Op::kSub || op == Op::kSll || op == Op::kSlt ||
                  op == Op::kSltu || op == Op::kXor || op == Op::kSrl || op == Op::kSra ||
                  op == Op::kOr || op == Op::kAnd || riscv::IsMulDiv(op);
  if (!uses_rs2) {
    taint = a.taint != 0 ? 0xffffffffu : 0;
  }
  return Word{r, taint};
}

}  // namespace

ExecOutcome ExecuteOne(ExecState& state, const Instr& in, Bus& bus) {
  ExecOutcome out;
  out.next_pc = state.pc + 4;
  Word rs1 = state.regs[in.rs1];
  Word rs2 = state.regs[in.rs2];
  out.rs2_bits = rs2.bits;
  // Data-dependent multiplier latency models key on operand magnitude; expose the
  // union of both operands so either secret operand perturbs the timing.
  if (riscv::IsMulDiv(in.op)) {
    out.rs2_bits = rs1.bits | rs2.bits;
  }
  out.operands_tainted = rs1.AnyTaint() || rs2.AnyTaint();
  bool tracking = bus.taint_tracking();
  // Per-class sink gating: all-on by default; a leakage contract narrows it.
  const TaintSinks& sinks = bus.taint_sinks();

  switch (in.op) {
    case Op::kLui:
    case Op::kAuipc:
    case Op::kAddi:
    case Op::kSlti:
    case Op::kSltiu:
    case Op::kXori:
    case Op::kOri:
    case Op::kAndi:
    case Op::kSlli:
    case Op::kSrli:
    case Op::kSrai:
    case Op::kAdd:
    case Op::kSub:
    case Op::kSll:
    case Op::kSlt:
    case Op::kSltu:
    case Op::kXor:
    case Op::kSrl:
    case Op::kSra:
    case Op::kOr:
    case Op::kAnd:
      state.SetReg(in.rd, Alu(in.op, rs1, rs2, in.imm, state.pc));
      out.cls = ExecClass::kAlu;
      break;
    case Op::kMul:
    case Op::kMulh:
    case Op::kMulhsu:
    case Op::kMulhu:
      if (tracking && sinks.mul && out.operands_tainted) {
        // Only a policy violation on hardware with data-dependent multiply timing; the
        // CPU timing model decides, but we record the operand taint site here.
        bus.RecordLeak(state.pc, "multiply with tainted operand");
      }
      state.SetReg(in.rd, Alu(in.op, rs1, rs2, in.imm, state.pc));
      out.cls = ExecClass::kMul;
      break;
    case Op::kDiv:
    case Op::kDivu:
    case Op::kRem:
    case Op::kRemu:
      if (tracking && sinks.div && out.operands_tainted) {
        bus.RecordLeak(state.pc, "divide with tainted operand");
      }
      state.SetReg(in.rd, Alu(in.op, rs1, rs2, in.imm, state.pc));
      out.cls = ExecClass::kDiv;
      break;
    case Op::kJal:
      state.SetReg(in.rd, Word::Clean(state.pc + 4));
      out.next_pc = state.pc + static_cast<uint32_t>(in.imm);
      out.cls = ExecClass::kJump;
      break;
    case Op::kJalr: {
      if (tracking && sinks.jump && rs1.AnyTaint()) {
        bus.RecordLeak(state.pc, "jump target derived from secret");
      }
      uint32_t target = (rs1.bits + static_cast<uint32_t>(in.imm)) & ~1u;
      state.SetReg(in.rd, Word::Clean(state.pc + 4));
      out.next_pc = target;
      out.cls = ExecClass::kJump;
      break;
    }
    case Op::kBeq:
    case Op::kBne:
    case Op::kBlt:
    case Op::kBge:
    case Op::kBltu:
    case Op::kBgeu: {
      if (tracking && sinks.branch && out.operands_tainted) {
        bus.RecordLeak(state.pc, "branch on secret-derived condition");
      }
      bool taken = false;
      int32_t s1 = static_cast<int32_t>(rs1.bits);
      int32_t s2 = static_cast<int32_t>(rs2.bits);
      switch (in.op) {
        case Op::kBeq: taken = rs1.bits == rs2.bits; break;
        case Op::kBne: taken = rs1.bits != rs2.bits; break;
        case Op::kBlt: taken = s1 < s2; break;
        case Op::kBge: taken = s1 >= s2; break;
        case Op::kBltu: taken = rs1.bits < rs2.bits; break;
        case Op::kBgeu: taken = rs1.bits >= rs2.bits; break;
        default: break;
      }
      if (taken) {
        out.next_pc = state.pc + static_cast<uint32_t>(in.imm);
        out.cls = ExecClass::kBranchTaken;
      } else {
        out.cls = ExecClass::kBranchNotTaken;
      }
      break;
    }
    case Op::kLb:
    case Op::kLh:
    case Op::kLw:
    case Op::kLbu:
    case Op::kLhu: {
      if (tracking && sinks.load && rs1.AnyTaint()) {
        bus.RecordLeak(state.pc, "load address derived from secret");
      }
      uint32_t addr = rs1.bits + static_cast<uint32_t>(in.imm);
      uint32_t size = (in.op == Op::kLw) ? 4 : (in.op == Op::kLh || in.op == Op::kLhu) ? 2 : 1;
      Word value;
      if ((addr & (size - 1)) != 0 || !bus.Read(addr, size, &value)) {
        state.halted = true;
        state.fault = "bus error on load";
        out.cls = ExecClass::kFault;
        return out;
      }
      uint32_t bits = value.bits;
      if (in.op == Op::kLb) {
        bits = static_cast<uint32_t>(static_cast<int32_t>(static_cast<int8_t>(bits)));
      } else if (in.op == Op::kLh) {
        bits = static_cast<uint32_t>(static_cast<int32_t>(static_cast<int16_t>(bits)));
      }
      state.SetReg(in.rd, Word{bits, value.taint != 0 ? 0xffffffffu : 0});
      out.cls = ExecClass::kLoad;
      break;
    }
    case Op::kSb:
    case Op::kSh:
    case Op::kSw: {
      if (tracking && sinks.store && rs1.AnyTaint()) {
        bus.RecordLeak(state.pc, "store address derived from secret");
      }
      uint32_t addr = rs1.bits + static_cast<uint32_t>(in.imm);
      uint32_t size = (in.op == Op::kSw) ? 4 : (in.op == Op::kSh) ? 2 : 1;
      if ((addr & (size - 1)) != 0 || !bus.Write(addr, size, rs2)) {
        state.halted = true;
        state.fault = "bus error on store";
        out.cls = ExecClass::kFault;
        return out;
      }
      out.cls = ExecClass::kStore;
      break;
    }
    case Op::kFence:
      out.cls = ExecClass::kAlu;
      break;
    case Op::kEcall:
    case Op::kEbreak:
      state.halted = true;
      out.cls = ExecClass::kHalt;
      break;
  }
  state.last_retired_pc = state.pc;
  state.pc = out.next_pc;
  state.retired++;
  return out;
}

}  // namespace parfait::soc
