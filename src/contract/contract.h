// ISA-level leakage contracts (Wang et al., "Leakage Contracts", PAPERS.md).
//
// A contract is the single declarative statement of a SoC's leakage surface: for
// each RV32IM instruction class, which observations an adversary on the wire may
// learn when that class executes. `branch: target` says control flow is visible;
// `load: address` / `store: address` say the memory system's timing keys on the
// address; `mul: latency(operands)` says the multiplier's cycle count keys on its
// operand magnitudes (the variable-latency configuration). `none` says the class
// is architecturally constant-time on this SoC.
//
// Every verification layer consumes the same parsed artifact instead of a private
// policy table: the abstract-interpretation lint derives its secret-operand checks
// from it (src/analysis/lint.h), the translation validator classifies unjustified
// observation-bearing instructions with it (src/analysis/tv/tv.h), and the Knox2
// dynamic taint emulator configures its sink set from it (src/knox2/leakage.h).
// Committed artifacts live in tools/contracts/<soc>.contract; `parfait-contract`
// lints, diffs, and checks firmware against them.
//
// The text format round-trips byte-identically: SerializeContract(ParseContract(t))
// == t for any canonical-form t, and committed artifacts are pinned to canonical
// form by `parfait-contract lint` in CI.
#ifndef PARFAIT_CONTRACT_CONTRACT_H_
#define PARFAIT_CONTRACT_CONTRACT_H_

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "src/riscv/isa.h"
#include "src/support/status.h"

namespace parfait::contract {

// Instruction classes at contract granularity. Every RV32IM opcode maps to exactly
// one class (ClassOf); kAlu is the catch-all for classes with no observable
// microarchitectural knob on the modeled SoCs.
enum class InstrClass : uint8_t {
  kBranch,  // Conditional branches.
  kJump,    // jal / jalr.
  kLoad,
  kStore,
  kMul,  // mul / mulh / mulhsu / mulhu.
  kDiv,  // div / divu / rem / remu.
  kAlu,  // Everything else (ALU ops, lui/auipc, fence, ecall/ebreak).
};
inline constexpr int kNumInstrClasses = 7;

const char* InstrClassName(InstrClass cls);
InstrClass ClassOf(riscv::Op op);

// What a class may leak, as a bitmask. Applicability is restricted per class and
// enforced by the parser: target for branch/jump, address for load/store,
// latency(operands) for mul/div; alu may only be `none`.
enum Obs : uint8_t {
  kObsNone = 0,
  kObsTarget = 1,   // The control-transfer target (taken/not-taken, jump target).
  kObsAddress = 2,  // The effective memory address.
  kObsLatency = 4,  // Cycle count as a function of the operand values.
};

struct LeakageContract {
  std::string soc;  // SoC id, lowercase snake_case: ibex_lite, pico_lite, *_vlm.
  int version = 1;
  std::array<uint8_t, kNumInstrClasses> obs{};  // Obs bitmask, indexed by InstrClass.

  uint8_t ObsFor(InstrClass cls) const { return obs[static_cast<size_t>(cls)]; }
  bool Leaks(InstrClass cls, Obs o) const { return (ObsFor(cls) & o) != 0; }

  friend bool operator==(const LeakageContract&, const LeakageContract&) = default;
};

// Strict parse: a `contract <soc> v<version>` header followed by exactly one entry
// per class (any order). Unknown classes, duplicate entries, missing classes,
// unknown or inapplicable observation kinds, and malformed headers are errors.
Result<LeakageContract> ParseContract(const std::string& text);

// Canonical text form: fixed comment header, then the classes in declaration order
// with their observation sets. ParseContract(SerializeContract(c)) == c always.
std::string SerializeContract(const LeakageContract& contract);

Result<LeakageContract> LoadContractFile(const std::string& path);

// The in-tree contracts for the modeled SoCs (ibex_lite, pico_lite, and their
// variable-latency-multiplier `_vlm` variants). CHECK-fails on an unknown id;
// probe with HasBuiltinContract first for user input.
bool HasBuiltinContract(const std::string& soc_id);
LeakageContract BuiltinContract(const std::string& soc_id);

// Human-readable per-class differences ("mul: latency(operands) -> none"), plus
// soc/version differences. Empty iff a == b.
std::vector<std::string> DiffContracts(const LeakageContract& a, const LeakageContract& b);

// "" when `contract` is the contract for `target_soc_id`; otherwise a diagnostic.
// Every layer refuses to run with a mismatched contract via this single check.
std::string ContractMismatch(const LeakageContract& contract, const std::string& target_soc_id);

}  // namespace parfait::contract

#endif  // PARFAIT_CONTRACT_CONTRACT_H_
