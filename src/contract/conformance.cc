#include "src/contract/conformance.h"

#include "src/knox2/leakage.h"
#include "src/support/rng.h"

namespace parfait::contract {

ConformanceReport CheckConformance(const hsm::HsmSystem& system,
                                   const LeakageContract& contract,
                                   const ConformanceOptions& options) {
  TELEMETRY_SPAN("contract/check_conformance");
  ConformanceReport report;
  report.soc_id = system.soc_id();
  std::string mismatch = ContractMismatch(contract, report.soc_id);
  if (!mismatch.empty()) {
    report.error = mismatch;
    return report;
  }

  // Static leg: the system's lint configuration with the given contract swapped in
  // (the point of `check` is validating against an edited artifact, not the
  // builtin the system was constructed with).
  analysis::LintConfig config = analysis::ConfigForSystem(system);
  config.contract = contract;
  report.lint = analysis::RunLint(system.image(), config);
  if (!report.lint.ok) {
    report.error = "lint: " + report.lint.error;
    return report;
  }

  if (options.dynamic_check) {
    if (!system.options().taint_tracking) {
      report.error = "--dynamic needs a system built with taint_tracking";
      return report;
    }
    Rng rng(options.seed);
    std::vector<Bytes> commands;
    commands.reserve(static_cast<size_t>(options.commands));
    for (int i = 0; i < options.commands; i++) {
      commands.push_back(system.app().RandomValidCommand(rng));
    }
    knox2::TaintCheckOptions taint_options;
    taint_options.max_cycles_per_command = options.max_cycles_per_command;
    taint_options.num_threads = options.num_threads;
    taint_options.contract = &contract;
    knox2::TaintCheckResult dynamic =
        knox2::RunTaintCheck(system, system.app().InitStateEncoded(), commands, taint_options);
    if (!dynamic.error.empty()) {
      report.error = "taint replay: " + dynamic.error;
      return report;
    }
    report.dynamic_leaks = std::move(dynamic.leaks);
    report.dynamic_commands = dynamic.checks_run;
  }

  report.ok = true;
  report.telemetry.AddCounter("contract/static_findings", report.lint.findings.size());
  report.telemetry.AddCounter("contract/static_checks",
                              report.lint.telemetry.CounterValue("lint/contract_checks"));
  report.telemetry.AddCounter("contract/dynamic_leaks", report.dynamic_leaks.size());
  report.telemetry.AddCounter("contract/dynamic_commands",
                              static_cast<uint64_t>(report.dynamic_commands));
  telemetry::Telemetry::Global().Merge(report.telemetry);
  return report;
}

}  // namespace parfait::contract
