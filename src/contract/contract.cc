#include "src/contract/contract.h"

#include <fstream>
#include <sstream>

namespace parfait::contract {

namespace {

// Classes in canonical (serialization) order == enum order.
constexpr InstrClass kAllClasses[kNumInstrClasses] = {
    InstrClass::kBranch, InstrClass::kJump, InstrClass::kLoad, InstrClass::kStore,
    InstrClass::kMul,    InstrClass::kDiv,  InstrClass::kAlu,
};

// Which observations may be declared for each class. The restriction is semantic:
// an ALU op has no address, a load has no operand-latency knob on these cores.
uint8_t AllowedObs(InstrClass cls) {
  switch (cls) {
    case InstrClass::kBranch:
    case InstrClass::kJump:
      return kObsTarget;
    case InstrClass::kLoad:
    case InstrClass::kStore:
      return kObsAddress;
    case InstrClass::kMul:
    case InstrClass::kDiv:
      return kObsLatency;
    case InstrClass::kAlu:
      return kObsNone;
  }
  return kObsNone;
}

struct ObsKind {
  const char* name;
  Obs bit;
};
constexpr ObsKind kObsKinds[] = {
    {"target", kObsTarget},
    {"address", kObsAddress},
    {"latency(operands)", kObsLatency},
};

std::string ObsSetName(uint8_t mask) {
  if (mask == 0) {
    return "none";
  }
  std::string out;
  for (const ObsKind& kind : kObsKinds) {
    if ((mask & kind.bit) != 0) {
      if (!out.empty()) {
        out += ", ";
      }
      out += kind.name;
    }
  }
  return out;
}

std::string Trim(const std::string& s) {
  size_t b = s.find_first_not_of(" \t\r");
  if (b == std::string::npos) {
    return "";
  }
  size_t e = s.find_last_not_of(" \t\r");
  return s.substr(b, e - b + 1);
}

bool ValidSocId(const std::string& soc) {
  if (soc.empty()) {
    return false;
  }
  for (char c : soc) {
    if (!((c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') || c == '_')) {
      return false;
    }
  }
  return true;
}

const char* kHeaderComment =
    "# Parfait ISA-level leakage contract.\n"
    "# One observation set per RV32IM instruction class; `none` means the class is\n"
    "# architecturally constant-time on this SoC. Validate with `parfait-contract\n"
    "# lint` (well-formedness + canonical form) and verify firmware against it with\n"
    "# `parfait-contract check`.\n";

}  // namespace

const char* InstrClassName(InstrClass cls) {
  switch (cls) {
    case InstrClass::kBranch: return "branch";
    case InstrClass::kJump: return "jump";
    case InstrClass::kLoad: return "load";
    case InstrClass::kStore: return "store";
    case InstrClass::kMul: return "mul";
    case InstrClass::kDiv: return "div";
    case InstrClass::kAlu: return "alu";
  }
  return "?";
}

InstrClass ClassOf(riscv::Op op) {
  using riscv::Op;
  if (riscv::IsBranch(op)) {
    return InstrClass::kBranch;
  }
  if (riscv::IsJump(op)) {
    return InstrClass::kJump;
  }
  if (riscv::IsLoad(op)) {
    return InstrClass::kLoad;
  }
  if (riscv::IsStore(op)) {
    return InstrClass::kStore;
  }
  switch (op) {
    case Op::kMul:
    case Op::kMulh:
    case Op::kMulhsu:
    case Op::kMulhu:
      return InstrClass::kMul;
    case Op::kDiv:
    case Op::kDivu:
    case Op::kRem:
    case Op::kRemu:
      return InstrClass::kDiv;
    default:
      return InstrClass::kAlu;
  }
}

Result<LeakageContract> ParseContract(const std::string& text) {
  LeakageContract c;
  bool have_header = false;
  std::array<bool, kNumInstrClasses> seen{};
  std::istringstream in(text);
  std::string raw;
  int lineno = 0;
  while (std::getline(in, raw)) {
    lineno++;
    std::string line = Trim(raw);
    if (line.empty() || line[0] == '#') {
      continue;
    }
    auto err = [&](const std::string& what) {
      return Result<LeakageContract>::Error("line " + std::to_string(lineno) + ": " + what);
    };
    if (!have_header) {
      std::istringstream hdr(line);
      std::string kw, soc, ver;
      hdr >> kw >> soc >> ver;
      std::string extra;
      if (kw != "contract" || (hdr >> extra) || ver.size() < 2 || ver.size() > 7 ||
          ver[0] != 'v') {
        return err("expected header `contract <soc> v<version>`, got '" + line + "'");
      }
      if (!ValidSocId(soc)) {
        return err("bad SoC id '" + soc + "' (lowercase snake_case required)");
      }
      for (size_t i = 1; i < ver.size(); i++) {
        if (ver[i] < '0' || ver[i] > '9') {
          return err("bad version '" + ver + "'");
        }
      }
      c.soc = soc;
      c.version = std::stoi(ver.substr(1));
      have_header = true;
      continue;
    }
    size_t colon = line.find(':');
    if (colon == std::string::npos) {
      return err("expected `<class>: <observations>`, got '" + line + "'");
    }
    std::string cls_name = Trim(line.substr(0, colon));
    const InstrClass* cls = nullptr;
    for (const InstrClass& candidate : kAllClasses) {
      if (cls_name == InstrClassName(candidate)) {
        cls = &candidate;
        break;
      }
    }
    if (cls == nullptr) {
      return err("unknown instruction class '" + cls_name + "'");
    }
    if (seen[static_cast<size_t>(*cls)]) {
      return err("duplicate entry for class '" + cls_name + "'");
    }
    seen[static_cast<size_t>(*cls)] = true;
    std::string rest = Trim(line.substr(colon + 1));
    if (rest.empty()) {
      return err("missing observation kind for class '" + cls_name + "'");
    }
    uint8_t mask = 0;
    if (rest != "none") {
      // Comma-separated observation kinds. `latency(operands)` contains no comma,
      // so a flat split is unambiguous.
      size_t pos = 0;
      while (pos <= rest.size()) {
        size_t comma = rest.find(',', pos);
        std::string tok = Trim(rest.substr(pos, comma == std::string::npos
                                                    ? std::string::npos
                                                    : comma - pos));
        pos = comma == std::string::npos ? rest.size() + 1 : comma + 1;
        const ObsKind* kind = nullptr;
        for (const ObsKind& candidate : kObsKinds) {
          if (tok == candidate.name) {
            kind = &candidate;
            break;
          }
        }
        if (kind == nullptr) {
          return err("unknown observation kind '" + tok + "' (use none, target, "
                     "address, or latency(operands))");
        }
        if ((AllowedObs(*cls) & kind->bit) == 0) {
          return err("observation '" + tok + "' does not apply to class '" + cls_name + "'");
        }
        if ((mask & kind->bit) != 0) {
          return err("duplicate observation '" + tok + "' for class '" + cls_name + "'");
        }
        mask |= kind->bit;
      }
    }
    c.obs[static_cast<size_t>(*cls)] = mask;
  }
  if (!have_header) {
    return Result<LeakageContract>::Error("missing `contract <soc> v<version>` header");
  }
  for (const InstrClass& cls : kAllClasses) {
    if (!seen[static_cast<size_t>(cls)]) {
      return Result<LeakageContract>::Error(std::string("missing entry for class '") +
                                            InstrClassName(cls) + "'");
    }
  }
  return c;
}

std::string SerializeContract(const LeakageContract& contract) {
  std::string out = kHeaderComment;
  out += "contract " + contract.soc + " v" + std::to_string(contract.version) + "\n";
  for (const InstrClass& cls : kAllClasses) {
    out += std::string(InstrClassName(cls)) + ": " + ObsSetName(contract.ObsFor(cls)) + "\n";
  }
  return out;
}

Result<LeakageContract> LoadContractFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return Result<LeakageContract>::Error("cannot read contract file " + path);
  }
  std::ostringstream text;
  text << in.rdbuf();
  auto parsed = ParseContract(text.str());
  if (!parsed.ok()) {
    return Result<LeakageContract>::Error(path + ": " + parsed.error());
  }
  return parsed;
}

bool HasBuiltinContract(const std::string& soc_id) {
  return soc_id == "ibex_lite" || soc_id == "pico_lite" || soc_id == "ibex_lite_vlm" ||
         soc_id == "pico_lite_vlm";
}

LeakageContract BuiltinContract(const std::string& soc_id) {
  PARFAIT_CHECK_MSG(HasBuiltinContract(soc_id), "no builtin contract for SoC '%s'",
                    soc_id.c_str());
  LeakageContract c;
  c.soc = soc_id;
  c.version = 1;
  // Both modeled cores: in-order, blocking memory system, iterative divider. The
  // timing channels are control flow, memory addresses, and divide latency.
  c.obs[static_cast<size_t>(InstrClass::kBranch)] = kObsTarget;
  c.obs[static_cast<size_t>(InstrClass::kJump)] = kObsTarget;
  c.obs[static_cast<size_t>(InstrClass::kLoad)] = kObsAddress;
  c.obs[static_cast<size_t>(InstrClass::kStore)] = kObsAddress;
  c.obs[static_cast<size_t>(InstrClass::kDiv)] = kObsLatency;
  // The `_vlm` build swaps in the data-dependent-latency multiplier.
  if (soc_id.size() > 4 && soc_id.compare(soc_id.size() - 4, 4, "_vlm") == 0) {
    c.obs[static_cast<size_t>(InstrClass::kMul)] = kObsLatency;
  }
  return c;
}

std::vector<std::string> DiffContracts(const LeakageContract& a, const LeakageContract& b) {
  std::vector<std::string> out;
  if (a.soc != b.soc) {
    out.push_back("soc: " + a.soc + " -> " + b.soc);
  }
  if (a.version != b.version) {
    out.push_back("version: v" + std::to_string(a.version) + " -> v" +
                  std::to_string(b.version));
  }
  for (const InstrClass& cls : kAllClasses) {
    if (a.ObsFor(cls) != b.ObsFor(cls)) {
      out.push_back(std::string(InstrClassName(cls)) + ": " + ObsSetName(a.ObsFor(cls)) +
                    " -> " + ObsSetName(b.ObsFor(cls)));
    }
  }
  return out;
}

std::string ContractMismatch(const LeakageContract& contract, const std::string& target_soc_id) {
  if (contract.soc == target_soc_id) {
    return "";
  }
  return "leakage contract is for SoC '" + contract.soc + "' but the target is '" +
         target_soc_id + "'";
}

}  // namespace parfait::contract
