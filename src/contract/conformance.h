// Static contract-conformance pass: checks one firmware build against one leakage
// contract, with an optional dynamic replay leg.
//
// The static leg is the abstract-interpretation lint driven by the given contract
// (instead of the system's own): every finding carries the usual provenance chain
// back to the FRAM secret seed. The dynamic leg replays a deterministic command
// workload under the Knox2 taint emulator with the sink set configured from the
// same contract, so both legs answer the same question — "does this firmware keep
// secrets away from every observation the contract declares?" — from two
// independent directions. Reports are deterministic and thread-count independent.
#ifndef PARFAIT_CONTRACT_CONFORMANCE_H_
#define PARFAIT_CONTRACT_CONFORMANCE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/analysis/lint.h"
#include "src/contract/contract.h"
#include "src/hsm/hsm_system.h"
#include "src/soc/bus.h"
#include "src/support/telemetry.h"

namespace parfait::contract {

struct ConformanceOptions {
  bool dynamic_check = false;  // Also replay under the Knox2 taint emulator
                               // (requires a system built with taint_tracking).
  int commands = 8;            // Dynamic replay workload size.
  uint64_t seed = 0x5eed;      // Command seed; fixed so reports are reproducible.
  int num_threads = 1;         // Dynamic-leg scheduling; results are identical at
                               // any value.
  uint64_t max_cycles_per_command = 600'000'000;
};

struct ConformanceReport {
  bool ok = false;    // The pass ran (contract applicable, analysis completed).
  std::string error;  // When !ok.
  std::string soc_id;
  // Static leg: contract-driven lint findings with provenance chains.
  analysis::LintReport lint;
  // Dynamic leg (when enabled): taint-policy violations under the contract's sinks.
  std::vector<soc::TaintLeak> dynamic_leaks;
  int dynamic_commands = 0;
  telemetry::TelemetrySnapshot telemetry;

  bool Clean() const { return ok && lint.findings.empty() && dynamic_leaks.empty(); }
};

// Refuses (ok = false) when the contract's SoC id mismatches the system's, when the
// lint cannot complete, or when dynamic_check is requested on a system built
// without taint_tracking.
ConformanceReport CheckConformance(const hsm::HsmSystem& system,
                                   const LeakageContract& contract,
                                   const ConformanceOptions& options = {});

}  // namespace parfait::contract

#endif  // PARFAIT_CONTRACT_CONFORMANCE_H_
