// The abstract RV32IM machine — this repository's analog of Riscette, the executable
// CompCert RISC-V assembly semantics described in section 5.1 of the paper.
//
// The machine is single-steppable instruction-by-instruction (the property Knox2's
// assembly-circuit synchronization relies on), uses a structured memory model (named
// regions with bounds, an effectively unbounded stack), and tracks undefined register
// values (CompCert's `undef`), which the synchronization rules treat specially.
#ifndef PARFAIT_RISCV_MACHINE_H_
#define PARFAIT_RISCV_MACHINE_H_

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "src/riscv/isa.h"
#include "src/support/bytes.h"

namespace parfait::riscv {

// A register value: a 32-bit pattern plus a definedness flag (CompCert's Vundef).
struct Value {
  uint32_t bits = 0;
  bool defined = false;

  static Value Defined(uint32_t v) { return Value{v, true}; }
  static Value Undef() { return Value{0, false}; }

  friend bool operator==(const Value&, const Value&) = default;
};

class Machine {
 public:
  enum class StepResult {
    kOk,       // Instruction retired.
    kHalt,     // ecall/ebreak, or pc reached the return sentinel.
    kFault,    // Semantics got stuck (bad access, bad decode, undefined operand, ...).
  };

  // Jumping here (e.g. `ret` with ra set by CallFunction) halts the machine cleanly.
  static constexpr uint32_t kReturnSentinel = 0xfffffff0;

  Machine();

  // Adds a named memory region. Regions must not overlap. Data is zero-initialized.
  // When initially_defined is false, reads of never-written bytes yield Undef (the
  // CompCert treatment of fresh stack memory).
  void AddRegion(const std::string& name, uint32_t base, uint32_t size, bool writable,
                 bool initially_defined = true);

  // Bulk access for harnesses; addresses must fall inside one region.
  void WriteMemory(uint32_t addr, std::span<const uint8_t> data);
  Bytes ReadMemory(uint32_t addr, uint32_t size) const;

  Value reg(uint8_t index) const { return regs_[index]; }
  void set_reg(uint8_t index, Value v) {
    if (index != 0) {
      regs_[index] = v;
    }
  }

  uint32_t pc() const { return pc_; }
  void set_pc(uint32_t pc) { pc_ = pc; }

  uint64_t instret() const { return instret_; }
  const std::string& fault_reason() const { return fault_reason_; }

  // Decodes the instruction at the current pc without executing (used by the Knox2
  // synchronization logic to classify the next sync point).
  std::optional<Instr> PeekInstr() const;

  // Executes one instruction.
  StepResult Step();

  // Runs until halt, fault, or the step limit; returns the final condition.
  StepResult Run(uint64_t max_steps);

  // Call-frame helper mirroring the paper's figure 8 harness: sets ra to the return
  // sentinel, pc to `function`, and a0..a{n-1} to args, then runs.
  StepResult CallFunction(uint32_t function, const std::vector<uint32_t>& args,
                          uint64_t max_steps);

 private:
  struct Region {
    std::string name;
    uint32_t base;
    bool writable;
    std::vector<uint8_t> data;
    std::vector<uint8_t> defined;  // Byte-granular definedness (CompCert Vundef bytes).
  };

  Region* FindRegion(uint32_t addr, uint32_t size);
  const Region* FindRegion(uint32_t addr, uint32_t size) const;
  bool LoadBytes(uint32_t addr, uint32_t size, uint32_t* out, bool* out_defined);
  bool StoreBytes(uint32_t addr, uint32_t size, uint32_t value, bool value_defined);
  StepResult Fault(const std::string& reason);

  std::array<Value, 32> regs_;
  uint32_t pc_ = 0;
  uint64_t instret_ = 0;
  std::vector<Region> regions_;
  std::string fault_reason_;
};

}  // namespace parfait::riscv

#endif  // PARFAIT_RISCV_MACHINE_H_
