// The abstract RV32IM machine — this repository's analog of Riscette, the executable
// CompCert RISC-V assembly semantics described in section 5.1 of the paper.
//
// The machine is single-steppable instruction-by-instruction (the property Knox2's
// assembly-circuit synchronization relies on), uses a structured memory model (named
// regions with bounds, an effectively unbounded stack), and tracks undefined register
// values (CompCert's `undef`), which the synchronization rules treat specially.
//
// Performance architecture (the substrate under every checker's instr/s number):
//   - Fetch goes through decode caches instead of re-running Decode() per step. A
//     read-only code region can carry a shared immutable DecodeCache (built once per
//     firmware image, shared across machines *and* threads); fetches from writable
//     regions fall back to a lazy per-machine cache whose entries are evicted by
//     stores, so self-modifying code stays correct.
//   - Definedness is a word-packed per-byte bitmap plus a per-region `all_defined`
//     fast flag, instead of a byte-per-byte vector walked on every access.
//   - Region lookup keeps the region list sorted by base and consults a last-hit
//     cache first (fetch and data accesses each keep their own hint so the two
//     streams do not thrash a single slot).
//   - A dirty-page journal (EnableDirtyJournal/ResetTo) lets a harness reuse one
//     machine across trials: reset restores only the pages the previous run touched
//     instead of rebuilding ~1.5 MiB of regions per trial.
// None of this changes semantics: every fast path produces bit-identical results to
// the plain interpretation (tests/machine_test.cc holds the equivalence proofs).
#ifndef PARFAIT_RISCV_MACHINE_H_
#define PARFAIT_RISCV_MACHINE_H_

#include <array>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "src/riscv/isa.h"
#include "src/support/bytes.h"

namespace parfait::riscv {

class SharedTranslationCache;
class LocalBlockCache;
class Dbt;

// Owning handle for a per-machine translated-block cache (see translator.h).
// Copying a Machine must not share translated blocks — invalidation is per-machine
// state — so copies start with a cold cache; moves transfer ownership.
struct LocalBlockHandle {
  LocalBlockHandle();
  ~LocalBlockHandle();
  LocalBlockHandle(const LocalBlockHandle&);
  LocalBlockHandle& operator=(const LocalBlockHandle&);
  LocalBlockHandle(LocalBlockHandle&&) noexcept;
  LocalBlockHandle& operator=(LocalBlockHandle&&) noexcept;

  std::unique_ptr<LocalBlockCache> cache;
};

// A register value: a 32-bit pattern plus a definedness flag (CompCert's Vundef).
struct Value {
  uint32_t bits = 0;
  bool defined = false;

  static Value Defined(uint32_t v) { return Value{v, true}; }
  static Value Undef() { return Value{0, false}; }

  friend bool operator==(const Value&, const Value&) = default;
};

// An immutable decode cache over a code region: one entry per 4-byte word, built
// once from the region's bytes. Because entries are never mutated after
// construction, one cache (held through shared_ptr) is safely shared by any number
// of machines on any number of threads — provided the backing bytes cannot change,
// i.e. the covered region is read-only.
class DecodeCache {
 public:
  struct Entry {
    Instr instr{};        // Valid only when `valid` is set.
    uint32_t raw = 0;     // The encoded word (callers get it without re-reading ROM).
    bool valid = false;   // False: the word does not decode in RV32IM.
  };

  DecodeCache(uint32_t base, std::span<const uint8_t> bytes);

  uint32_t base() const { return base_; }
  size_t words() const { return entries_.size(); }
  const Entry* entries() const { return entries_.data(); }

  // Entry for the 4-aligned word at `addr`, or nullptr when out of range.
  const Entry* Lookup(uint32_t addr) const {
    uint32_t offset = addr - base_;
    if (addr < base_ || (offset >> 2) >= entries_.size()) {
      return nullptr;
    }
    return &entries_[offset >> 2];
  }

 private:
  uint32_t base_;
  std::vector<Entry> entries_;
};

class Machine {
 public:
  enum class StepResult {
    kOk,       // Instruction retired.
    kHalt,     // ecall/ebreak, or pc reached the return sentinel.
    kFault,    // Semantics got stuck (bad access, bad decode, undefined operand, ...).
  };

  // Jumping here (e.g. `ret` with ra set by CallFunction) halts the machine cleanly.
  static constexpr uint32_t kReturnSentinel = 0xfffffff0;

  // Which engine Run() uses. kInterpreter is the per-instruction StepImpl loop;
  // kDBT executes translated superblocks (see translator.h) with bit-identical
  // results. Step()/PeekInstr() always interpret — Knox2's instruction-granular
  // synchronization depends on single-stepping — so the backend only changes how
  // Run() covers the distance between observations.
  enum class Backend {
    kInterpreter,
    kDBT,
  };

  // Process default from the PARFAIT_BACKEND environment variable ("dbt" selects
  // Backend::kDBT; anything else the interpreter), read once. New machines start
  // on this backend, which is how CI runs the whole test suite under DBT.
  static Backend DefaultBackend();

  Machine();

  // Adds a named memory region. Regions must not overlap. Data is zero-initialized.
  // When initially_defined is false, reads of never-written bytes yield Undef (the
  // CompCert treatment of fresh stack memory).
  void AddRegion(const std::string& name, uint32_t base, uint32_t size, bool writable,
                 bool initially_defined = true);

  // Attaches a shared immutable decode cache to the (read-only) region containing
  // cache->base(). Fetches covered by the cache skip Decode() entirely. The cache
  // must have been built from the exact bytes the region holds.
  void AttachDecodeCache(std::shared_ptr<const DecodeCache> cache);

  // Selects the Run() engine. Backend::kDBT is ignored (falls back to the
  // interpreter) when the threaded-dispatch build is unavailable (Dbt::Supported())
  // or after DisableDecodeCache() — the reference interpreter is the oracle and
  // never translates.
  void SetBackend(Backend backend) { backend_ = backend; }
  Backend backend() const { return backend_; }

  // Attaches a shared translated-block cache to the (read-only) region containing
  // cache->base(). The cache must have been built over the same DecodeCache the
  // region carries (AttachDecodeCache); DBT fetches covered by it skip translation.
  // Writable regions instead get a lazy per-machine block cache invalidated by
  // stores, exactly like the local decode cache.
  void AttachTranslationCache(std::shared_ptr<SharedTranslationCache> cache);

  // Fast reset. EnableDirtyJournal() arms page-granular write tracking on every
  // region; ResetTo(prototype) then restores only the journaled pages (plus
  // registers, pc, and counters), leaving this machine semantically identical to a
  // fresh copy of `prototype` at a cost proportional to what the last run touched.
  // The prototype must have the same region layout (it normally is the machine this
  // one was copied from) and is only read — sharing one prototype across threads is
  // safe.
  void EnableDirtyJournal();
  void ResetTo(const Machine& prototype);

  // Reference-interpreter mode: re-enacts the original interpreter's memory path —
  // linear region scan, per-byte definedness walks, Decode() on every fetch — with
  // no decode cache, hinted lookup, or word-packed fast path. Semantically
  // identical, only slower; this is the "before" leg of bench/micro_sim's
  // before/after record. There is no way back to cached mode on this machine.
  void DisableDecodeCache();

  // Bulk access for harnesses; addresses must fall inside one region.
  void WriteMemory(uint32_t addr, std::span<const uint8_t> data);
  Bytes ReadMemory(uint32_t addr, uint32_t size) const;

  // True iff every byte of [addr, addr+size) is inside one region and defined.
  bool AllDefined(uint32_t addr, uint32_t size) const;

  // Architectural snapshot at a work-unit boundary: the raw bits of every register,
  // the pc, and the raw bytes of every journaled (dirty-since-prototype) page.
  // Definedness is deliberately not captured — snapshots are exchanged with the
  // circuit, which has no undef notion, so restore re-materializes every byte as a
  // defined value with the same bits (see src/knox2/units.h for why that is sound
  // for sliced runs: the continuous pre-run that produced the snapshot keeps full
  // undef tracking and faults exactly where a monolithic run would).
  struct PageSnapshot {
    uint32_t addr = 0;  // Absolute base address of the page.
    Bytes bytes;        // kPageSize bytes (clipped at the region end).
  };
  struct Snapshot {
    uint32_t pc = 0;
    std::array<uint32_t, 32> regs{};  // Raw bits; regs[0] is always 0.
    std::vector<PageSnapshot> pages;  // Sorted by addr (region order, page order).
  };

  // Captures the dirty-page journal without clearing it (the journal is monotone
  // over a run, so later snapshots are supersets). Requires EnableDirtyJournal().
  Snapshot CaptureSnapshot() const;

  // Applies a snapshot on top of this machine's current state: bulk-writes every
  // page (journaled + marked defined, so a later ResetTo still cleans them up),
  // sets every register to the snapshot bits (defined), and jumps to snapshot.pc.
  void RestoreSnapshot(const Snapshot& snapshot);

  // Page granularity of the dirty journal and of Snapshot pages.
  static constexpr uint32_t kSnapshotPageSize = 256;

  Value reg(uint8_t index) const { return regs_[index]; }
  void set_reg(uint8_t index, Value v) {
    if (index != 0) {
      regs_[index] = v;
    }
  }

  uint32_t pc() const { return pc_; }
  void set_pc(uint32_t pc) { pc_ = pc; }

  uint64_t instret() const { return instret_; }
  const std::string& fault_reason() const { return fault_reason_; }

  // Decodes the instruction at the current pc without executing (used by the Knox2
  // synchronization logic to classify the next sync point). Served from the decode
  // caches, so peeking before stepping costs one lookup, not a second Decode().
  std::optional<Instr> PeekInstr() const;

  // Executes one instruction.
  StepResult Step();

  // Runs until halt, fault, or the step limit; returns the final condition.
  StepResult Run(uint64_t max_steps);

  // Call-frame helper mirroring the paper's figure 8 harness: sets ra to the return
  // sentinel, pc to `function`, and a0..a{n-1} to args, then runs.
  StepResult CallFunction(uint32_t function, const std::vector<uint32_t>& args,
                          uint64_t max_steps);

  // Substrate counters since the last TakePerfCounters() call. Harnesses flush these
  // into the telemetry registry; they are diagnostics, not semantic state.
  struct PerfCounters {
    uint64_t decode_hits = 0;        // Fetches served by a decode cache.
    uint64_t region_cache_hits = 0;  // Region lookups served by a last-hit slot.
    uint64_t fast_resets = 0;        // ResetTo() calls.
    // DBT backend counters. All four are deterministic for a given workload at any
    // thread count: dispatches, links, and invalidations depend only on the
    // executed trace, and a shared cache translates each block exactly once
    // process-wide regardless of which machine triggers it.
    uint64_t block_translations = 0;  // Blocks translated by this machine's runs.
    uint64_t block_hits = 0;          // Block dispatches served by a translation cache.
    uint64_t block_invalidations = 0; // Translated blocks killed by stores/resets.
    uint64_t block_links = 0;         // Direct block-to-block link transitions.
  };
  PerfCounters TakePerfCounters();

 private:
  // Dirty-journal page size. Must be a multiple of 64 so a page's definedness bits
  // occupy whole words of the bitmap.
  static constexpr uint32_t kPageSize = 256;

  struct Region {
    std::string name;
    uint32_t base = 0;
    bool writable = false;
    std::vector<uint8_t> data;
    // Per-byte definedness, bit-packed (bit i of defined_bits[i / 64] covers byte
    // i). Empty while the region is uniformly defined (all_defined == true) or
    // uniformly undefined (all_defined == false); materialized by the first store
    // that breaks uniformity.
    std::vector<uint64_t> defined_bits;
    bool all_defined = false;
    // Shared immutable decode cache (read-only regions; see AttachDecodeCache).
    std::shared_ptr<const DecodeCache> shared_decode;
    // Lazy per-machine decode cache for fetches not covered by shared_decode.
    // Mutable: filling it from PeekInstr()/Step() does not change machine state.
    // Entries are evicted by stores to the covered word (self-modifying code).
    mutable std::vector<uint8_t> local_state;  // See LocalDecode* constants.
    mutable std::vector<Instr> local_decode;
    // Shared immutable translated-block cache (read-only regions; see
    // AttachTranslationCache). Dropped alongside shared_decode if the harness
    // writes the region.
    std::shared_ptr<SharedTranslationCache> shared_blocks;
    // Lazy per-machine translated-block cache for DBT execution from writable
    // regions (or bytes past the shared cache). Blocks are invalidated by stores
    // to any covered word; copies of the machine start cold (see LocalBlockHandle).
    LocalBlockHandle local_blocks;
    // Dirty-page journal, bit-packed (allocated by EnableDirtyJournal).
    std::vector<uint64_t> dirty_pages;
    // Reference-mode byte-per-byte definedness shadow (see DisableDecodeCache):
    // the original interpreter's representation, kept so the "before" benchmark
    // leg pays the original cache footprint. Reads go through the shadow; stores
    // keep shadow and bitmap coherent. Empty outside reference mode.
    std::vector<uint8_t> reference_defined;

    uint32_t size() const { return static_cast<uint32_t>(data.size()); }
  };

  // Local decode cache entry states.
  static constexpr uint8_t kLocalUnknown = 0;
  static constexpr uint8_t kLocalValid = 1;
  static constexpr uint8_t kLocalUndecodable = 2;
  static constexpr uint8_t kLocalUndefined = 3;

  // The one const-correct region lookup: sorted-by-base search behind a caller-owned
  // last-hit slot. Both the mutable and the const entry points funnel here. The
  // hint check stays inline (one subtract + two compares on the hot path); the
  // sorted search lives out of line in FindRegionSlow.
  const Region* FindRegionSlow(uint32_t addr, uint32_t size, size_t* hint) const;
  const Region* FindRegionImpl(uint32_t addr, uint32_t size, size_t* hint) const {
    if (*hint < regions_.size()) {
      const Region& r = regions_[*hint];
      // 32-bit bounds check: addr < base wraps offset high and fails the compare.
      uint32_t offset = addr - r.base;
      if (__builtin_expect(offset < r.size() && size <= r.size() - offset, 1)) {
        region_cache_hits_++;
        return &r;
      }
    }
    return FindRegionSlow(addr, size, hint);
  }
  Region* FindRegion(uint32_t addr, uint32_t size) {
    return const_cast<Region*>(FindRegionImpl(addr, size, &last_data_region_));
  }
  const Region* FindRegion(uint32_t addr, uint32_t size) const {
    return FindRegionImpl(addr, size, &last_data_region_);
  }

  // True iff bytes [offset, offset+size) of r are defined. `size` is 1, 2, or 4 and
  // offset is size-aligned (the aligned-access invariant Step enforces), so the bits
  // never straddle a bitmap word. Inline below the class: both interpreter and DBT
  // translation units must fold the size switch away.
  static bool RangeDefined(const Region& r, uint32_t offset, uint32_t size);
  // Sets or clears the definedness bits for an arbitrary byte range.
  static void SetDefinedRange(Region& r, uint32_t offset, uint32_t size, bool defined);
  // Materializes the bitmap as uniformly `defined` (the state the flags encode).
  static void MaterializeBits(Region& r, bool defined);

  void MarkDirty(Region& r, uint32_t offset, uint32_t size);
  // Evicts local decode entries covering bytes [offset, offset+size).
  static void EvictLocalDecode(const Region& r, uint32_t offset, uint32_t size);

  // Decoded fetch at pc_ through the caches; returns nullptr and sets *out on
  // success, or the fault reason. Shared by Step() and PeekInstr().
  const char* FetchDecoded(const Instr** out) const;
  // Reference-mode fetch: linear scan + per-byte walk + Decode() every time.
  const char* ReferenceFetch(const Instr** out) const;

  // The interpreter body, instantiated for the cached and the reference memory
  // path; both share one execution switch (see machine.cc).
  template <bool kCached>
  StepResult StepImpl();
  template <bool kCached>
  StepResult RunImpl(uint64_t max_steps);
  // Out-of-line reference step (see machine.cc for why it is never inlined).
  StepResult ReferenceStep();
  // Non-template wrapper around StepImpl<true> for the DBT dispatch loop, which
  // single-steps the last few instructions when the step budget is smaller than
  // the next block.
  StepResult StepCachedOnce();

  // The aligned 1/2/4-byte data paths. Inline below the class so every caller —
  // StepImpl in machine.cc and the DBT dispatch loop in translator.cc — specializes
  // them for a constant `size`; the cold invalidation tail stays out of line. The
  // *FromRegion/*ToRegion halves take an already-resolved in-bounds region so the
  // DBT loop can memoize region resolution across a whole block chain.
  bool LoadBytes(uint32_t addr, uint32_t size, uint32_t* out, bool* out_defined);
  bool StoreBytes(uint32_t addr, uint32_t size, uint32_t value, bool value_defined);
  void LoadFromRegion(const Region& r, uint32_t offset, uint32_t size, uint32_t* out,
                      bool* out_defined);
  void StoreToRegion(Region& r, uint32_t addr, uint32_t offset, uint32_t size,
                     uint32_t value, bool value_defined);
  // Out-of-line tail of StoreBytes: kills translated blocks overlapping the store
  // (needs the complete LocalBlockCache type, which the header forward-declares).
  void InvalidateLocalBlocks(Region& r, uint32_t addr, uint32_t size);

  // Reference-mode slow paths (see DisableDecodeCache): the original interpreter's
  // memory accesses, kept byte-for-byte equivalent to the fast paths above.
  const Region* ReferenceFindRegion(uint32_t addr, uint32_t size) const;
  static void MaterializeReferenceShadow(Region& r);
  static bool ByteDefined(const Region& r, uint32_t byte);
  static void SetByteDefined(Region& r, uint32_t byte, bool defined);
  bool ReferenceLoadBytes(uint32_t addr, uint32_t size, uint32_t* out,
                          bool* out_defined) const;
  bool ReferenceStoreBytes(uint32_t addr, uint32_t size, uint32_t value,
                           bool value_defined);
  StepResult Fault(const std::string& reason);

  // The DBT engine executes through the same private state and LoadBytes/
  // StoreBytes/Fault paths StepImpl uses (translator.cc).
  friend class Dbt;

  std::array<Value, 32> regs_;
  uint32_t pc_ = 0;
  uint64_t instret_ = 0;
  std::vector<Region> regions_;  // Sorted by base.
  std::string fault_reason_;
  bool journal_ = false;
  bool decode_caching_ = true;
  Backend backend_ = DefaultBackend();
  mutable Instr reference_scratch_{};  // Fetch result in reference mode.

  // Last-hit region slots and perf counters. Mutable: lookup caches and counters are
  // not semantic state, so const reads (ReadMemory, PeekInstr) may update them.
  mutable size_t last_data_region_ = 0;
  mutable size_t last_fetch_region_ = 0;
  // Direct-mapped fetch window over the last shared decode cache that served a
  // fetch: `pc - base < len` resolves a fetch with one subtract and one compare.
  // Points into immutable DecodeCache entries (kept alive by the region's
  // shared_ptr), so a machine copy can carry it verbatim. len is region size minus 3
  // so the compare also proves pc+4 stays in range. Dropped whenever the region set
  // or cache attachment changes.
  mutable uint32_t fetch_win_base_ = 0;
  mutable uint32_t fetch_win_len_ = 0;
  mutable const DecodeCache::Entry* fetch_win_ = nullptr;
  mutable uint64_t decode_hits_ = 0;
  mutable uint64_t region_cache_hits_ = 0;
  uint64_t fast_resets_ = 0;
  uint64_t block_translations_ = 0;
  uint64_t block_hits_ = 0;
  uint64_t block_invalidations_ = 0;
  uint64_t block_links_ = 0;
};

inline bool Machine::RangeDefined(const Region& r, uint32_t offset, uint32_t size) {
  if (r.all_defined) {
    return true;
  }
  if (r.defined_bits.empty()) {
    return false;  // Uniformly undefined.
  }
  // Aligned 1/2/4-byte ranges never straddle a 64-bit bitmap word.
  uint64_t mask = ((uint64_t{1} << size) - 1) << (offset & 63);
  return (r.defined_bits[offset >> 6] & mask) == mask;
}

inline void Machine::LoadFromRegion(const Region& r, uint32_t offset, uint32_t size,
                                    uint32_t* out, bool* out_defined) {
  const uint8_t* p = r.data.data() + offset;
  switch (size) {
    case 4:
      *out = LoadLe32(p);
      break;
    case 2:
      *out = static_cast<uint32_t>(p[0]) | static_cast<uint32_t>(p[1]) << 8;
      break;
    default:
      *out = p[0];
      break;
  }
  *out_defined = RangeDefined(r, offset, size);
}

inline void Machine::StoreToRegion(Region& r, uint32_t addr, uint32_t offset,
                                   uint32_t size, uint32_t value, bool value_defined) {
  uint8_t* p = r.data.data() + offset;
  switch (size) {
    case 4:
      StoreLe32(p, value);
      break;
    case 2:
      p[0] = static_cast<uint8_t>(value);
      p[1] = static_cast<uint8_t>(value >> 8);
      break;
    default:
      p[0] = static_cast<uint8_t>(value);
      break;
  }
  // Aligned 1/2/4-byte stores never straddle a bitmap word or a journal page, so the
  // bookkeeping is one masked OR each (Step enforces the alignment).
  if (value_defined) {
    if (!r.all_defined) {
      if (r.defined_bits.empty()) {
        MaterializeBits(r, false);
      }
      uint64_t mask = ((uint64_t{1} << size) - 1) << (offset & 63);
      r.defined_bits[offset >> 6] |= mask;
    }
  } else {
    if (r.all_defined) {
      MaterializeBits(r, true);
      r.all_defined = false;
    } else if (r.defined_bits.empty()) {
      MaterializeBits(r, false);
    }
    uint64_t mask = ((uint64_t{1} << size) - 1) << (offset & 63);
    r.defined_bits[offset >> 6] &= ~mask;
  }
  if (journal_) {
    uint32_t page = offset / kPageSize;
    r.dirty_pages[page >> 6] |= uint64_t{1} << (page & 63);
  }
  if (__builtin_expect(!r.local_state.empty(), 0)) {
    EvictLocalDecode(r, offset, size);
  }
  if (__builtin_expect(r.local_blocks.cache != nullptr, 0)) {
    InvalidateLocalBlocks(r, addr, size);
  }
}

inline bool Machine::LoadBytes(uint32_t addr, uint32_t size, uint32_t* out,
                               bool* out_defined) {
  const Region* r = FindRegionImpl(addr, size, &last_data_region_);
  if (r == nullptr) {
    return false;
  }
  LoadFromRegion(*r, addr - r->base, size, out, out_defined);
  return true;
}

inline bool Machine::StoreBytes(uint32_t addr, uint32_t size, uint32_t value,
                                bool value_defined) {
  Region* r = const_cast<Region*>(FindRegionImpl(addr, size, &last_data_region_));
  if (r == nullptr || !r->writable) {
    return false;
  }
  StoreToRegion(*r, addr, addr - r->base, size, value, value_defined);
  return true;
}

}  // namespace parfait::riscv

#endif  // PARFAIT_RISCV_MACHINE_H_
