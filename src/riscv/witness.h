// Secure-compilation witness side table.
//
// The MiniC compiler emits, next to the assembler's symbol side table, a per-function
// record of *how* it translated the source: the frame geometry, where every local
// lives (stack slot or promoted callee-saved register), and the text-section range
// each source statement compiled to, plus the loop landmark offsets the translation
// validator needs to align control flow. This is the witness in the sense of
// Namjoshi & Tabajara's "Witnessing Secure Compilation": the compiler is untrusted,
// the witness is untrusted, and the validator (src/analysis/tv) re-checks every
// semantic claim — a wrong witness makes validation fail, never pass vacuously.
//
// Offsets are byte offsets into the .text section (Program::CurrentOffset at emission
// time). The linker lays .text first, so absolute pc = image.rom_base + offset.
#ifndef PARFAIT_RISCV_WITNESS_H_
#define PARFAIT_RISCV_WITNESS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/support/status.h"

namespace parfait::riscv {

// Where one MiniC local lives for the whole function (slots are never reused).
// Parameters come first (slot index == parameter index), then declarations in the
// compiler's pre-pass order — the validator re-walks the AST in the same order, so
// slot indices line up without name resolution at validation time.
struct WitnessLocal {
  std::string name;
  uint32_t array_size = 0;  // 0 = scalar, else element count.
  uint8_t elem_size = 4;    // Bytes per element (1 for u8, 4 for u32/pointers).
  int32_t frame_offset = -1;  // sp-relative byte offset; valid when reg < 0.
  int8_t reg = -1;            // Callee-saved register when promoted (O2).
  uint8_t is_param = 0;
  uint8_t is_ptr = 0;
  uint8_t is_u8 = 0;  // Scalar u8 (sb/lbu access discipline).

  friend bool operator==(const WitnessLocal&, const WitnessLocal&) = default;
};

// The text range one statement compiled to, in emission (AST pre-order) order.
// aux0/aux1 carry loop landmarks: kWhile head = aux0; kFor head = aux0 and
// post-expression label = aux1 (the `continue` target).
struct WitnessStmt {
  uint8_t kind = 0;  // minicc::Stmt::Kind value.
  int32_t line = 0;
  uint32_t begin = 0;
  uint32_t end = 0;
  uint32_t aux0 = 0;
  uint32_t aux1 = 0;

  friend bool operator==(const WitnessStmt&, const WitnessStmt&) = default;
};

// One optimization the O2 generator applied, in the sense of a witness
// transformer (Namjoshi & Tabajara): each pass records enough of its decision
// that the validator can re-check the relaxed simulation relation *and* the
// leakage-preservation obligation for that pass. Like everything else here the
// entries are untrusted claims — the validator verifies each one structurally
// (site inside the function, decoded instruction in the pass's allowed class)
// and the lockstep walk re-proves the semantics.
struct WitnessXform {
  // Pass identifiers (serialized as small integers; keep values stable).
  enum Pass : uint8_t {
    kPromoteReg = 0,  // Callee-saved register promotion: slot -> reg.
    kConstFold = 1,   // Constant folding / symbolic constant materialization.
    kImmForm = 2,     // Immediate-form selection (addi/andi/.../slli, mul->slli).
    kAddrFold = 3,    // Address-computation folding into a load/store offset.
  };
  uint8_t pass = 0;
  int32_t slot = -1;   // Local slot index (kPromoteReg), else -1.
  int8_t reg = -1;     // Promoted register (kPromoteReg), else -1.
  uint32_t site = 0;   // Text offset of the affected/emitted instruction.
  int32_t imm = 0;     // Folded constant / selected immediate / folded offset.
  uint8_t op = 0;      // minicc binop discriminator for kConstFold/kImmForm.

  friend bool operator==(const WitnessXform&, const WitnessXform&) = default;
};

struct WitnessFunction {
  std::string name;
  int32_t line = 0;
  uint32_t begin = 0;       // Offset of the function label.
  uint32_t end = 0;         // One past the final jalr.
  uint32_t body_begin = 0;  // First offset after the prologue and parameter homing.
  uint32_t epilogue = 0;    // Offset of the shared epilogue.
  int32_t frame_size = 0;
  int32_t spill_base = 0;  // Start of the expression-stack spill area.
  int32_t saved_base = 0;  // Start of the callee-saved save area.
  int32_t ra_offset = 0;
  std::vector<uint8_t> saved_regs;  // Callee-saved registers this function uses.
  std::vector<WitnessLocal> locals;
  std::vector<WitnessStmt> stmts;
  std::vector<WitnessXform> xforms;  // O2 per-pass transformer entries (empty at O0).

  friend bool operator==(const WitnessFunction&, const WitnessFunction&) = default;
};

// The whole translation unit's witness.
struct Witness {
  int opt_level = 0;
  std::vector<WitnessFunction> functions;

  const WitnessFunction* Find(const std::string& name) const;

  // Deterministic line-oriented serialization (round-trips through FromText). The
  // witness travels next to the firmware image in evidence bundles, so it has a
  // stable text form rather than an in-memory-only representation.
  std::string ToText() const;
  static Result<Witness> FromText(const std::string& text);

  friend bool operator==(const Witness&, const Witness&) = default;
};

}  // namespace parfait::riscv

#endif  // PARFAIT_RISCV_WITNESS_H_
