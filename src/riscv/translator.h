// Dynamic binary translation backend for the RV32IM machine.
//
// The interpreter in machine.cc pays a fetch lookup, an operand read, and a large
// execution switch per instruction. The translator removes all three from the hot
// path: straight-line code (plus unconditional jal chains) is translated once into a
// superblock of pre-decoded micro-ops, and a threaded dispatch loop (computed goto
// under GCC/Clang) executes whole blocks between pc/instret updates, chaining
// directly into the successor block on static control edges.
//
// Caching mirrors the decode-cache design (machine.h):
//   - SharedTranslationCache: built over a region's shared immutable DecodeCache
//     (read-only ROM). Blocks are translated in transitive closure under a mutex and
//     published with release stores into per-word atomic slots, so one cache is
//     shared by any number of machines on any number of threads. Blocks in a shared
//     cache link to each other with plain pointers — links never change after
//     publication. ROM blocks are never invalidated (a harness WriteMemory into the
//     region drops the whole cache, exactly like shared_decode).
//   - LocalBlockCache: lazy per-machine cache for writable regions. Stores evict
//     every block whose source words overlap the store (self-modifying code), and a
//     block that invalidates *itself* mid-execution bails out to the dispatch loop
//     after the store retires. Local blocks carry no links; machine copies start
//     with a cold cache (see LocalBlockHandle in machine.h).
//
// The oracle guarantee: every translated trace replays bit-identical to the
// reference interpreter — registers, memory, definedness, instret, and fault
// pc/reason — enforced by tests/machine_test.cc and tests/dbt_fuzz_test.cc.
#ifndef PARFAIT_RISCV_TRANSLATOR_H_
#define PARFAIT_RISCV_TRANSLATOR_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/riscv/machine.h"

namespace parfait::riscv {

// Micro-op kinds. The X-macro keeps the enum and the threaded-dispatch jump table
// in translator.cc in lockstep by construction.
//
// Non-terminators retire exactly one instruction each. Terminators end the block:
// kJal/kJ/kJalr/kBxx retire the transfer instruction, kHalt retires the
// ecall/ebreak, kFallthrough and kFetchFault are synthetic (retire nothing).
#define PARFAIT_DBT_KINDS(X)                                                        \
  X(kNop)     /* fence, or any ALU op with rd == x0 */                              \
  X(kConst)   /* rd <- imm (lui, auipc, inlined jal link; pc folded at translate) */\
  X(kAddi) X(kSlti) X(kSltiu) X(kXori) X(kOri) X(kAndi) X(kSlli) X(kSrli) X(kSrai)  \
  X(kAdd) X(kSub) X(kSll) X(kSlt) X(kSltu) X(kXor) X(kSrl) X(kSra) X(kOr) X(kAnd)   \
  X(kMul) X(kMulh) X(kMulhsu) X(kMulhu) X(kDiv) X(kDivu) X(kRem) X(kRemu)           \
  X(kLb) X(kLh) X(kLw) X(kLbu) X(kLhu)                                              \
  X(kSb) X(kSh) X(kSw)                                                              \
  X(kBeq) X(kBne) X(kBlt) X(kBge) X(kBltu) X(kBgeu) /* imm = absolute target */     \
  X(kJal)        /* not-inlined jal: link rd, jump to imm (absolute) */             \
  X(kJ)          /* jal rd=x0 cut by the cycle guard or length cap */               \
  X(kJalr)                                                                          \
  X(kHalt)       /* ecall / ebreak */                                               \
  X(kFallthrough)/* block cut: continue dispatch at pc = imm */                     \
  X(kFetchFault) /* untranslatable word: imm 0 = undecodable, 1 = undefined */

enum class Mk : uint8_t {
#define PARFAIT_DBT_ENUM(name) name,
  PARFAIT_DBT_KINDS(PARFAIT_DBT_ENUM)
#undef PARFAIT_DBT_ENUM
};

struct MicroOp {
  Mk kind = Mk::kNop;
  uint8_t rd = 0;
  uint8_t rs1 = 0;
  uint8_t rs2 = 0;
  int32_t imm = 0;   // Immediate; absolute branch/jump target; folded constant.
  uint32_t pc = 0;   // The source instruction's pc (fault attribution, fallthrough).
};

// A translated superblock. ops is never empty and always ends in a terminator.
struct Block {
  uint32_t start_pc = 0;
  uint32_t num_instrs = 0;  // Instructions retired when the block runs to its end.
  bool watch_stores = false;  // Local block: executed stores may invalidate it.
  bool dead = false;          // Set by LocalBlockCache::Invalidate.
  // Static successors (chained without returning to the dispatch loop). Filled by
  // SharedTranslationCache only; immutable after publication. Local blocks leave
  // them null — every local block exit re-enters the dispatch loop.
  const Block* link_taken = nullptr;
  const Block* link_fall = nullptr;
  // Successor pcs the terminator encodes, used to resolve links.
  uint32_t taken_target = 0;
  uint32_t fall_target = 0;
  bool has_taken = false;
  bool has_fall = false;
  std::vector<MicroOp> ops;
  // Source byte ranges (absolute addr, len) the block was translated from, merged
  // contiguously. Only filled for watch_stores blocks (invalidation needs them).
  std::vector<std::pair<uint32_t, uint32_t>> ranges;
};

// Shared, thread-safe translation cache over a read-only region's DecodeCache.
// Lookup is one acquire load; misses translate the transitive static-successor
// closure under a mutex and publish every new block before returning, so links
// between shared blocks are always resolvable and never mutated after publication.
class SharedTranslationCache {
 public:
  explicit SharedTranslationCache(std::shared_ptr<const DecodeCache> decode);

  uint32_t base() const { return decode_->base(); }

  // Block starting at `pc` (4-aligned), or nullptr when pc is outside the cache.
  // `*translated` is incremented by the number of blocks this call translated.
  const Block* Get(uint32_t pc, uint64_t* translated);

 private:
  bool InRange(uint32_t pc) const {
    uint32_t offset = pc - decode_->base();
    return pc >= decode_->base() && (offset >> 2) < slots_.size() && (pc & 3) == 0;
  }

  std::shared_ptr<const DecodeCache> decode_;
  std::vector<std::atomic<const Block*>> slots_;  // One per word; null until built.
  std::mutex mu_;
  std::deque<std::unique_ptr<Block>> blocks_;  // Guarded by mu_; stable addresses.
};

// Per-machine block cache for one writable region. Not thread-safe (a Machine is
// single-threaded by contract). Invalidated blocks are marked dead and parked in a
// graveyard — the executing block may be among them — and freed at the next
// dispatch-loop safe point (CollectGarbage).
class LocalBlockCache {
 public:
  const Block* Lookup(uint32_t pc) const {
    auto it = blocks_.find(pc);
    return it == blocks_.end() ? nullptr : it->second.get();
  }

  const Block* Insert(std::unique_ptr<Block> block);

  // Kills every block whose source ranges overlap [addr, addr+size); returns how
  // many blocks died. Cheap when no block covers the range (bitmap probe).
  uint64_t Invalidate(uint32_t addr, uint32_t size);

  void CollectGarbage() { graveyard_.clear(); }

 private:
  std::unordered_map<uint32_t, std::shared_ptr<Block>> blocks_;  // By start_pc.
  // Bounding interval [cover_lo_, cover_hi_) of every covered byte, so Invalidate
  // rejects stores outside the translated area (the common case: data stores in a
  // region whose code sits elsewhere) with two compares.
  uint32_t cover_lo_ = 0xffffffffu;
  uint32_t cover_hi_ = 0;
  std::vector<std::shared_ptr<Block>> graveyard_;
};

// The execution engine. A friend of Machine: it reads and writes the same private
// state StepImpl does, through the same LoadBytes/StoreBytes/Fault paths, which is
// what keeps the two backends bit-equivalent by construction on the memory side.
class Dbt {
 public:
  // True when the threaded-dispatch build is available (GCC/Clang computed goto).
  // When false, Machine::Run ignores Backend::kDBT and interprets.
  static bool Supported();

  // Runs `m` until halt, fault, or the step limit — the DBT analog of RunImpl<true>.
  static Machine::StepResult Run(Machine& m, uint64_t max_steps);

 private:
  static std::unique_ptr<Block> TranslateLocal(const Machine::Region& r, uint32_t pc);
  static Machine::StepResult ExecChain(Machine& m, const Block* b, uint64_t* remaining);

  friend class SharedTranslationCache;
  template <typename FetchFn>
  static std::unique_ptr<Block> BuildBlock(uint32_t start_pc, FetchFn&& fetch,
                                           bool watch_stores);
};

}  // namespace parfait::riscv

#endif  // PARFAIT_RISCV_TRANSLATOR_H_
