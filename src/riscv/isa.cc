#include "src/riscv/isa.h"

#include <map>

#include "src/support/status.h"

namespace parfait::riscv {

namespace {

// Base opcodes.
constexpr uint32_t kOpLui = 0x37;
constexpr uint32_t kOpAuipc = 0x17;
constexpr uint32_t kOpJal = 0x6f;
constexpr uint32_t kOpJalr = 0x67;
constexpr uint32_t kOpBranch = 0x63;
constexpr uint32_t kOpLoad = 0x03;
constexpr uint32_t kOpStore = 0x23;
constexpr uint32_t kOpImm = 0x13;
constexpr uint32_t kOpReg = 0x33;
constexpr uint32_t kOpFence = 0x0f;
constexpr uint32_t kOpSystem = 0x73;

uint32_t EncodeR(uint32_t funct7, uint8_t rs2, uint8_t rs1, uint32_t funct3, uint8_t rd,
                 uint32_t opcode) {
  return (funct7 << 25) | (static_cast<uint32_t>(rs2) << 20) |
         (static_cast<uint32_t>(rs1) << 15) | (funct3 << 12) | (static_cast<uint32_t>(rd) << 7) |
         opcode;
}

uint32_t EncodeI(int32_t imm, uint8_t rs1, uint32_t funct3, uint8_t rd, uint32_t opcode) {
  return (static_cast<uint32_t>(imm & 0xfff) << 20) | (static_cast<uint32_t>(rs1) << 15) |
         (funct3 << 12) | (static_cast<uint32_t>(rd) << 7) | opcode;
}

uint32_t EncodeS(int32_t imm, uint8_t rs2, uint8_t rs1, uint32_t funct3, uint32_t opcode) {
  uint32_t u = static_cast<uint32_t>(imm) & 0xfff;
  return ((u >> 5) << 25) | (static_cast<uint32_t>(rs2) << 20) |
         (static_cast<uint32_t>(rs1) << 15) | (funct3 << 12) | ((u & 0x1f) << 7) | opcode;
}

uint32_t EncodeB(int32_t imm, uint8_t rs2, uint8_t rs1, uint32_t funct3, uint32_t opcode) {
  uint32_t u = static_cast<uint32_t>(imm);
  uint32_t bit12 = (u >> 12) & 1;
  uint32_t bits10_5 = (u >> 5) & 0x3f;
  uint32_t bits4_1 = (u >> 1) & 0xf;
  uint32_t bit11 = (u >> 11) & 1;
  return (bit12 << 31) | (bits10_5 << 25) | (static_cast<uint32_t>(rs2) << 20) |
         (static_cast<uint32_t>(rs1) << 15) | (funct3 << 12) | (bits4_1 << 8) | (bit11 << 7) |
         opcode;
}

uint32_t EncodeU(int32_t imm, uint8_t rd, uint32_t opcode) {
  return (static_cast<uint32_t>(imm) & 0xfffff000u) | (static_cast<uint32_t>(rd) << 7) | opcode;
}

uint32_t EncodeJ(int32_t imm, uint8_t rd, uint32_t opcode) {
  uint32_t u = static_cast<uint32_t>(imm);
  uint32_t bit20 = (u >> 20) & 1;
  uint32_t bits10_1 = (u >> 1) & 0x3ff;
  uint32_t bit11 = (u >> 11) & 1;
  uint32_t bits19_12 = (u >> 12) & 0xff;
  return (bit20 << 31) | (bits10_1 << 21) | (bit11 << 20) | (bits19_12 << 12) |
         (static_cast<uint32_t>(rd) << 7) | opcode;
}

int32_t SignExtend(uint32_t value, int bits) {
  uint32_t mask = 1u << (bits - 1);
  return static_cast<int32_t>((value ^ mask) - mask);
}

struct OpInfo {
  const char* mnemonic;
};

const std::map<Op, OpInfo>& OpTable() {
  static const std::map<Op, OpInfo> table = {
      {Op::kLui, {"lui"}},      {Op::kAuipc, {"auipc"}}, {Op::kJal, {"jal"}},
      {Op::kJalr, {"jalr"}},    {Op::kBeq, {"beq"}},     {Op::kBne, {"bne"}},
      {Op::kBlt, {"blt"}},      {Op::kBge, {"bge"}},     {Op::kBltu, {"bltu"}},
      {Op::kBgeu, {"bgeu"}},    {Op::kLb, {"lb"}},       {Op::kLh, {"lh"}},
      {Op::kLw, {"lw"}},        {Op::kLbu, {"lbu"}},     {Op::kLhu, {"lhu"}},
      {Op::kSb, {"sb"}},        {Op::kSh, {"sh"}},       {Op::kSw, {"sw"}},
      {Op::kAddi, {"addi"}},    {Op::kSlti, {"slti"}},   {Op::kSltiu, {"sltiu"}},
      {Op::kXori, {"xori"}},    {Op::kOri, {"ori"}},     {Op::kAndi, {"andi"}},
      {Op::kSlli, {"slli"}},    {Op::kSrli, {"srli"}},   {Op::kSrai, {"srai"}},
      {Op::kAdd, {"add"}},      {Op::kSub, {"sub"}},     {Op::kSll, {"sll"}},
      {Op::kSlt, {"slt"}},      {Op::kSltu, {"sltu"}},   {Op::kXor, {"xor"}},
      {Op::kSrl, {"srl"}},      {Op::kSra, {"sra"}},     {Op::kOr, {"or"}},
      {Op::kAnd, {"and"}},      {Op::kFence, {"fence"}}, {Op::kEcall, {"ecall"}},
      {Op::kEbreak, {"ebreak"}}, {Op::kMul, {"mul"}},    {Op::kMulh, {"mulh"}},
      {Op::kMulhsu, {"mulhsu"}}, {Op::kMulhu, {"mulhu"}}, {Op::kDiv, {"div"}},
      {Op::kDivu, {"divu"}},    {Op::kRem, {"rem"}},     {Op::kRemu, {"remu"}},
  };
  return table;
}

const char* kRegNames[32] = {"zero", "ra", "sp", "gp", "tp", "t0", "t1", "t2", "s0", "s1", "a0",
                             "a1",   "a2", "a3", "a4", "a5", "a6", "a7", "s2", "s3", "s4", "s5",
                             "s6",   "s7", "s8", "s9", "s10", "s11", "t3", "t4", "t5", "t6"};

}  // namespace

uint32_t Encode(const Instr& instr) {
  switch (instr.op) {
    case Op::kLui:
      return EncodeU(instr.imm, instr.rd, kOpLui);
    case Op::kAuipc:
      return EncodeU(instr.imm, instr.rd, kOpAuipc);
    case Op::kJal:
      return EncodeJ(instr.imm, instr.rd, kOpJal);
    case Op::kJalr:
      return EncodeI(instr.imm, instr.rs1, 0, instr.rd, kOpJalr);
    case Op::kBeq:
      return EncodeB(instr.imm, instr.rs2, instr.rs1, 0, kOpBranch);
    case Op::kBne:
      return EncodeB(instr.imm, instr.rs2, instr.rs1, 1, kOpBranch);
    case Op::kBlt:
      return EncodeB(instr.imm, instr.rs2, instr.rs1, 4, kOpBranch);
    case Op::kBge:
      return EncodeB(instr.imm, instr.rs2, instr.rs1, 5, kOpBranch);
    case Op::kBltu:
      return EncodeB(instr.imm, instr.rs2, instr.rs1, 6, kOpBranch);
    case Op::kBgeu:
      return EncodeB(instr.imm, instr.rs2, instr.rs1, 7, kOpBranch);
    case Op::kLb:
      return EncodeI(instr.imm, instr.rs1, 0, instr.rd, kOpLoad);
    case Op::kLh:
      return EncodeI(instr.imm, instr.rs1, 1, instr.rd, kOpLoad);
    case Op::kLw:
      return EncodeI(instr.imm, instr.rs1, 2, instr.rd, kOpLoad);
    case Op::kLbu:
      return EncodeI(instr.imm, instr.rs1, 4, instr.rd, kOpLoad);
    case Op::kLhu:
      return EncodeI(instr.imm, instr.rs1, 5, instr.rd, kOpLoad);
    case Op::kSb:
      return EncodeS(instr.imm, instr.rs2, instr.rs1, 0, kOpStore);
    case Op::kSh:
      return EncodeS(instr.imm, instr.rs2, instr.rs1, 1, kOpStore);
    case Op::kSw:
      return EncodeS(instr.imm, instr.rs2, instr.rs1, 2, kOpStore);
    case Op::kAddi:
      return EncodeI(instr.imm, instr.rs1, 0, instr.rd, kOpImm);
    case Op::kSlti:
      return EncodeI(instr.imm, instr.rs1, 2, instr.rd, kOpImm);
    case Op::kSltiu:
      return EncodeI(instr.imm, instr.rs1, 3, instr.rd, kOpImm);
    case Op::kXori:
      return EncodeI(instr.imm, instr.rs1, 4, instr.rd, kOpImm);
    case Op::kOri:
      return EncodeI(instr.imm, instr.rs1, 6, instr.rd, kOpImm);
    case Op::kAndi:
      return EncodeI(instr.imm, instr.rs1, 7, instr.rd, kOpImm);
    case Op::kSlli:
      return EncodeR(0x00, static_cast<uint8_t>(instr.imm & 0x1f), instr.rs1, 1, instr.rd,
                     kOpImm);
    case Op::kSrli:
      return EncodeR(0x00, static_cast<uint8_t>(instr.imm & 0x1f), instr.rs1, 5, instr.rd,
                     kOpImm);
    case Op::kSrai:
      return EncodeR(0x20, static_cast<uint8_t>(instr.imm & 0x1f), instr.rs1, 5, instr.rd,
                     kOpImm);
    case Op::kAdd:
      return EncodeR(0x00, instr.rs2, instr.rs1, 0, instr.rd, kOpReg);
    case Op::kSub:
      return EncodeR(0x20, instr.rs2, instr.rs1, 0, instr.rd, kOpReg);
    case Op::kSll:
      return EncodeR(0x00, instr.rs2, instr.rs1, 1, instr.rd, kOpReg);
    case Op::kSlt:
      return EncodeR(0x00, instr.rs2, instr.rs1, 2, instr.rd, kOpReg);
    case Op::kSltu:
      return EncodeR(0x00, instr.rs2, instr.rs1, 3, instr.rd, kOpReg);
    case Op::kXor:
      return EncodeR(0x00, instr.rs2, instr.rs1, 4, instr.rd, kOpReg);
    case Op::kSrl:
      return EncodeR(0x00, instr.rs2, instr.rs1, 5, instr.rd, kOpReg);
    case Op::kSra:
      return EncodeR(0x20, instr.rs2, instr.rs1, 5, instr.rd, kOpReg);
    case Op::kOr:
      return EncodeR(0x00, instr.rs2, instr.rs1, 6, instr.rd, kOpReg);
    case Op::kAnd:
      return EncodeR(0x00, instr.rs2, instr.rs1, 7, instr.rd, kOpReg);
    case Op::kFence:
      return EncodeI(0, 0, 0, 0, kOpFence);
    case Op::kEcall:
      return EncodeI(0, 0, 0, 0, kOpSystem);
    case Op::kEbreak:
      return EncodeI(1, 0, 0, 0, kOpSystem);
    case Op::kMul:
      return EncodeR(0x01, instr.rs2, instr.rs1, 0, instr.rd, kOpReg);
    case Op::kMulh:
      return EncodeR(0x01, instr.rs2, instr.rs1, 1, instr.rd, kOpReg);
    case Op::kMulhsu:
      return EncodeR(0x01, instr.rs2, instr.rs1, 2, instr.rd, kOpReg);
    case Op::kMulhu:
      return EncodeR(0x01, instr.rs2, instr.rs1, 3, instr.rd, kOpReg);
    case Op::kDiv:
      return EncodeR(0x01, instr.rs2, instr.rs1, 4, instr.rd, kOpReg);
    case Op::kDivu:
      return EncodeR(0x01, instr.rs2, instr.rs1, 5, instr.rd, kOpReg);
    case Op::kRem:
      return EncodeR(0x01, instr.rs2, instr.rs1, 6, instr.rd, kOpReg);
    case Op::kRemu:
      return EncodeR(0x01, instr.rs2, instr.rs1, 7, instr.rd, kOpReg);
  }
  PARFAIT_CHECK_MSG(false, "unreachable opcode");
  return 0;
}

std::optional<Instr> Decode(uint32_t word) {
  uint32_t opcode = word & 0x7f;
  uint8_t rd = static_cast<uint8_t>((word >> 7) & 0x1f);
  uint32_t funct3 = (word >> 12) & 0x7;
  uint8_t rs1 = static_cast<uint8_t>((word >> 15) & 0x1f);
  uint8_t rs2 = static_cast<uint8_t>((word >> 20) & 0x1f);
  uint32_t funct7 = word >> 25;
  int32_t imm_i = SignExtend(word >> 20, 12);
  int32_t imm_s = SignExtend(((word >> 25) << 5) | ((word >> 7) & 0x1f), 12);
  int32_t imm_b = SignExtend((((word >> 31) & 1) << 12) | (((word >> 7) & 1) << 11) |
                                 (((word >> 25) & 0x3f) << 5) | (((word >> 8) & 0xf) << 1),
                             13);
  int32_t imm_u = static_cast<int32_t>(word & 0xfffff000u);
  int32_t imm_j = SignExtend((((word >> 31) & 1) << 20) | (((word >> 12) & 0xff) << 12) |
                                 (((word >> 20) & 1) << 11) | (((word >> 21) & 0x3ff) << 1),
                             21);

  switch (opcode) {
    case kOpLui:
      return Instr{Op::kLui, rd, 0, 0, imm_u};
    case kOpAuipc:
      return Instr{Op::kAuipc, rd, 0, 0, imm_u};
    case kOpJal:
      return Instr{Op::kJal, rd, 0, 0, imm_j};
    case kOpJalr:
      if (funct3 != 0) {
        return std::nullopt;
      }
      return Instr{Op::kJalr, rd, rs1, 0, imm_i};
    case kOpBranch: {
      Op op;
      switch (funct3) {
        case 0: op = Op::kBeq; break;
        case 1: op = Op::kBne; break;
        case 4: op = Op::kBlt; break;
        case 5: op = Op::kBge; break;
        case 6: op = Op::kBltu; break;
        case 7: op = Op::kBgeu; break;
        default: return std::nullopt;
      }
      return Instr{op, 0, rs1, rs2, imm_b};
    }
    case kOpLoad: {
      Op op;
      switch (funct3) {
        case 0: op = Op::kLb; break;
        case 1: op = Op::kLh; break;
        case 2: op = Op::kLw; break;
        case 4: op = Op::kLbu; break;
        case 5: op = Op::kLhu; break;
        default: return std::nullopt;
      }
      return Instr{op, rd, rs1, 0, imm_i};
    }
    case kOpStore: {
      Op op;
      switch (funct3) {
        case 0: op = Op::kSb; break;
        case 1: op = Op::kSh; break;
        case 2: op = Op::kSw; break;
        default: return std::nullopt;
      }
      return Instr{op, 0, rs1, rs2, imm_s};
    }
    case kOpImm:
      switch (funct3) {
        case 0: return Instr{Op::kAddi, rd, rs1, 0, imm_i};
        case 2: return Instr{Op::kSlti, rd, rs1, 0, imm_i};
        case 3: return Instr{Op::kSltiu, rd, rs1, 0, imm_i};
        case 4: return Instr{Op::kXori, rd, rs1, 0, imm_i};
        case 6: return Instr{Op::kOri, rd, rs1, 0, imm_i};
        case 7: return Instr{Op::kAndi, rd, rs1, 0, imm_i};
        case 1:
          if (funct7 != 0) {
            return std::nullopt;
          }
          return Instr{Op::kSlli, rd, rs1, 0, static_cast<int32_t>(rs2)};
        case 5:
          if (funct7 == 0x00) {
            return Instr{Op::kSrli, rd, rs1, 0, static_cast<int32_t>(rs2)};
          }
          if (funct7 == 0x20) {
            return Instr{Op::kSrai, rd, rs1, 0, static_cast<int32_t>(rs2)};
          }
          return std::nullopt;
      }
      return std::nullopt;
    case kOpReg: {
      if (funct7 == 0x01) {
        switch (funct3) {
          case 0: return Instr{Op::kMul, rd, rs1, rs2, 0};
          case 1: return Instr{Op::kMulh, rd, rs1, rs2, 0};
          case 2: return Instr{Op::kMulhsu, rd, rs1, rs2, 0};
          case 3: return Instr{Op::kMulhu, rd, rs1, rs2, 0};
          case 4: return Instr{Op::kDiv, rd, rs1, rs2, 0};
          case 5: return Instr{Op::kDivu, rd, rs1, rs2, 0};
          case 6: return Instr{Op::kRem, rd, rs1, rs2, 0};
          case 7: return Instr{Op::kRemu, rd, rs1, rs2, 0};
        }
        return std::nullopt;
      }
      if (funct7 == 0x00) {
        switch (funct3) {
          case 0: return Instr{Op::kAdd, rd, rs1, rs2, 0};
          case 1: return Instr{Op::kSll, rd, rs1, rs2, 0};
          case 2: return Instr{Op::kSlt, rd, rs1, rs2, 0};
          case 3: return Instr{Op::kSltu, rd, rs1, rs2, 0};
          case 4: return Instr{Op::kXor, rd, rs1, rs2, 0};
          case 5: return Instr{Op::kSrl, rd, rs1, rs2, 0};
          case 6: return Instr{Op::kOr, rd, rs1, rs2, 0};
          case 7: return Instr{Op::kAnd, rd, rs1, rs2, 0};
        }
        return std::nullopt;
      }
      if (funct7 == 0x20) {
        if (funct3 == 0) {
          return Instr{Op::kSub, rd, rs1, rs2, 0};
        }
        if (funct3 == 5) {
          return Instr{Op::kSra, rd, rs1, rs2, 0};
        }
        return std::nullopt;
      }
      return std::nullopt;
    }
    case kOpFence:
      return Instr{Op::kFence, 0, 0, 0, 0};
    case kOpSystem:
      if (word == 0x00000073) {
        return Instr{Op::kEcall, 0, 0, 0, 0};
      }
      if (word == 0x00100073) {
        return Instr{Op::kEbreak, 0, 0, 0, 0};
      }
      return std::nullopt;
    default:
      return std::nullopt;
  }
}

const char* Mnemonic(Op op) { return OpTable().at(op).mnemonic; }

std::optional<Op> OpFromMnemonic(const std::string& name) {
  for (const auto& [op, info] : OpTable()) {
    if (name == info.mnemonic) {
      return op;
    }
  }
  return std::nullopt;
}

const char* RegName(uint8_t reg) {
  PARFAIT_CHECK(reg < 32);
  return kRegNames[reg];
}

std::optional<uint8_t> RegFromName(const std::string& name) {
  for (uint8_t i = 0; i < 32; i++) {
    if (name == kRegNames[i]) {
      return i;
    }
  }
  if (name.size() >= 2 && name[0] == 'x') {
    int v = 0;
    for (size_t i = 1; i < name.size(); i++) {
      if (name[i] < '0' || name[i] > '9') {
        return std::nullopt;
      }
      v = v * 10 + (name[i] - '0');
    }
    if (v < 32) {
      return static_cast<uint8_t>(v);
    }
  }
  if (name == "fp") {
    return 8;  // Alias for s0.
  }
  return std::nullopt;
}

bool IsBranch(Op op) {
  return op == Op::kBeq || op == Op::kBne || op == Op::kBlt || op == Op::kBge ||
         op == Op::kBltu || op == Op::kBgeu;
}

bool IsJump(Op op) { return op == Op::kJal || op == Op::kJalr; }

bool IsLoad(Op op) {
  return op == Op::kLb || op == Op::kLh || op == Op::kLw || op == Op::kLbu || op == Op::kLhu;
}

bool IsStore(Op op) { return op == Op::kSb || op == Op::kSh || op == Op::kSw; }

bool IsMulDiv(Op op) {
  return op == Op::kMul || op == Op::kMulh || op == Op::kMulhsu || op == Op::kMulhu ||
         op == Op::kDiv || op == Op::kDivu || op == Op::kRem || op == Op::kRemu;
}

}  // namespace parfait::riscv
