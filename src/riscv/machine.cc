#include "src/riscv/machine.h"

#include <cstring>

#include "src/support/status.h"

namespace parfait::riscv {

Machine::Machine() {
  regs_.fill(Value::Undef());
  regs_[0] = Value::Defined(0);
}

void Machine::AddRegion(const std::string& name, uint32_t base, uint32_t size, bool writable,
                        bool initially_defined) {
  PARFAIT_CHECK_MSG(size > 0, "empty region %s", name.c_str());
  for (const auto& r : regions_) {
    uint64_t r_end = static_cast<uint64_t>(r.base) + r.data.size();
    uint64_t end = static_cast<uint64_t>(base) + size;
    PARFAIT_CHECK_MSG(end <= r.base || r_end <= base, "region %s overlaps %s", name.c_str(),
                      r.name.c_str());
  }
  Region region;
  region.name = name;
  region.base = base;
  region.writable = writable;
  region.data.resize(size);
  region.defined.resize(size, initially_defined ? 1 : 0);
  regions_.push_back(std::move(region));
}

Machine::Region* Machine::FindRegion(uint32_t addr, uint32_t size) {
  for (auto& r : regions_) {
    uint64_t end = static_cast<uint64_t>(r.base) + r.data.size();
    if (addr >= r.base && static_cast<uint64_t>(addr) + size <= end) {
      return &r;
    }
  }
  return nullptr;
}

const Machine::Region* Machine::FindRegion(uint32_t addr, uint32_t size) const {
  return const_cast<Machine*>(this)->FindRegion(addr, size);
}

void Machine::WriteMemory(uint32_t addr, std::span<const uint8_t> data) {
  Region* r = FindRegion(addr, static_cast<uint32_t>(data.size()));
  PARFAIT_CHECK_MSG(r != nullptr, "WriteMemory out of bounds at 0x%08x", addr);
  std::memcpy(r->data.data() + (addr - r->base), data.data(), data.size());
  std::memset(r->defined.data() + (addr - r->base), 1, data.size());
}

Bytes Machine::ReadMemory(uint32_t addr, uint32_t size) const {
  const Region* r = FindRegion(addr, size);
  PARFAIT_CHECK_MSG(r != nullptr, "ReadMemory out of bounds at 0x%08x", addr);
  const uint8_t* p = r->data.data() + (addr - r->base);
  return Bytes(p, p + size);
}

bool Machine::LoadBytes(uint32_t addr, uint32_t size, uint32_t* out, bool* out_defined) {
  Region* r = FindRegion(addr, size);
  if (r == nullptr) {
    return false;
  }
  uint32_t offset = addr - r->base;
  const uint8_t* p = r->data.data() + offset;
  uint32_t v = 0;
  bool defined = true;
  for (uint32_t i = 0; i < size; i++) {
    v |= static_cast<uint32_t>(p[i]) << (8 * i);
    defined = defined && r->defined[offset + i] != 0;
  }
  *out = v;
  *out_defined = defined;
  return true;
}

bool Machine::StoreBytes(uint32_t addr, uint32_t size, uint32_t value, bool value_defined) {
  Region* r = FindRegion(addr, size);
  if (r == nullptr || !r->writable) {
    return false;
  }
  uint32_t offset = addr - r->base;
  uint8_t* p = r->data.data() + offset;
  for (uint32_t i = 0; i < size; i++) {
    p[i] = static_cast<uint8_t>(value >> (8 * i));
    r->defined[offset + i] = value_defined ? 1 : 0;
  }
  return true;
}

std::optional<Instr> Machine::PeekInstr() const {
  uint32_t word;
  bool defined;
  if (!const_cast<Machine*>(this)->LoadBytes(pc_, 4, &word, &defined) || !defined) {
    return std::nullopt;
  }
  return Decode(word);
}

Machine::StepResult Machine::Fault(const std::string& reason) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), " (pc=0x%08x, instret=%llu)", pc_,
                static_cast<unsigned long long>(instret_));
  fault_reason_ = reason + buf;
  return StepResult::kFault;
}

Machine::StepResult Machine::Step() {
  if (pc_ == kReturnSentinel) {
    return StepResult::kHalt;
  }
  if ((pc_ & 3) != 0) {
    return Fault("misaligned pc");
  }
  uint32_t word;
  bool fetch_defined;
  if (!LoadBytes(pc_, 4, &word, &fetch_defined)) {
    return Fault("instruction fetch out of bounds");
  }
  if (!fetch_defined) {
    return Fault("instruction fetch of undefined memory");
  }
  std::optional<Instr> decoded = Decode(word);
  if (!decoded.has_value()) {
    return Fault("undecodable instruction");
  }
  const Instr& in = *decoded;
  Value rs1 = regs_[in.rs1];
  Value rs2 = regs_[in.rs2];
  uint32_t next_pc = pc_ + 4;

  auto require_defined = [&](const Value& v) { return v.defined; };
  auto binop_defined = rs1.defined && rs2.defined;

  switch (in.op) {
    case Op::kLui:
      set_reg(in.rd, Value::Defined(static_cast<uint32_t>(in.imm)));
      break;
    case Op::kAuipc:
      set_reg(in.rd, Value::Defined(pc_ + static_cast<uint32_t>(in.imm)));
      break;
    case Op::kJal:
      set_reg(in.rd, Value::Defined(pc_ + 4));
      next_pc = pc_ + static_cast<uint32_t>(in.imm);
      break;
    case Op::kJalr: {
      if (!require_defined(rs1)) {
        return Fault("jalr through undefined register");
      }
      uint32_t target = (rs1.bits + static_cast<uint32_t>(in.imm)) & ~1u;
      set_reg(in.rd, Value::Defined(pc_ + 4));
      next_pc = target;
      break;
    }
    case Op::kBeq:
    case Op::kBne:
    case Op::kBlt:
    case Op::kBge:
    case Op::kBltu:
    case Op::kBgeu: {
      if (!binop_defined) {
        return Fault("branch on undefined operand");
      }
      bool taken = false;
      int32_t s1 = static_cast<int32_t>(rs1.bits);
      int32_t s2 = static_cast<int32_t>(rs2.bits);
      switch (in.op) {
        case Op::kBeq: taken = rs1.bits == rs2.bits; break;
        case Op::kBne: taken = rs1.bits != rs2.bits; break;
        case Op::kBlt: taken = s1 < s2; break;
        case Op::kBge: taken = s1 >= s2; break;
        case Op::kBltu: taken = rs1.bits < rs2.bits; break;
        case Op::kBgeu: taken = rs1.bits >= rs2.bits; break;
        default: break;
      }
      if (taken) {
        next_pc = pc_ + static_cast<uint32_t>(in.imm);
      }
      break;
    }
    case Op::kLb:
    case Op::kLh:
    case Op::kLw:
    case Op::kLbu:
    case Op::kLhu: {
      if (!require_defined(rs1)) {
        return Fault("load through undefined address");
      }
      uint32_t addr = rs1.bits + static_cast<uint32_t>(in.imm);
      uint32_t size = (in.op == Op::kLw) ? 4 : (in.op == Op::kLh || in.op == Op::kLhu) ? 2 : 1;
      if ((addr & (size - 1)) != 0) {
        return Fault("misaligned load");
      }
      uint32_t raw;
      bool load_defined;
      if (!LoadBytes(addr, size, &raw, &load_defined)) {
        return Fault("load out of bounds");
      }
      if (!load_defined) {
        set_reg(in.rd, Value::Undef());
        break;
      }
      uint32_t result = raw;
      if (in.op == Op::kLb) {
        result = static_cast<uint32_t>(static_cast<int32_t>(static_cast<int8_t>(raw)));
      } else if (in.op == Op::kLh) {
        result = static_cast<uint32_t>(static_cast<int32_t>(static_cast<int16_t>(raw)));
      }
      set_reg(in.rd, Value::Defined(result));
      break;
    }
    case Op::kSb:
    case Op::kSh:
    case Op::kSw: {
      if (!require_defined(rs1)) {
        return Fault("store through undefined address");
      }
      uint32_t addr = rs1.bits + static_cast<uint32_t>(in.imm);
      uint32_t size = (in.op == Op::kSw) ? 4 : (in.op == Op::kSh) ? 2 : 1;
      if ((addr & (size - 1)) != 0) {
        return Fault("misaligned store");
      }
      // Storing an undefined value is legal (CompCert stores Vundef bytes); the taint
      // of undefinedness travels through memory instead.
      if (!StoreBytes(addr, size, rs2.bits, rs2.defined)) {
        return Fault("store out of bounds or read-only");
      }
      break;
    }
    case Op::kAddi:
    case Op::kSlti:
    case Op::kSltiu:
    case Op::kXori:
    case Op::kOri:
    case Op::kAndi:
    case Op::kSlli:
    case Op::kSrli:
    case Op::kSrai: {
      if (!rs1.defined) {
        set_reg(in.rd, Value::Undef());
        break;
      }
      uint32_t a = rs1.bits;
      uint32_t imm = static_cast<uint32_t>(in.imm);
      uint32_t result = 0;
      switch (in.op) {
        case Op::kAddi: result = a + imm; break;
        case Op::kSlti: result = static_cast<int32_t>(a) < in.imm ? 1 : 0; break;
        case Op::kSltiu: result = a < imm ? 1 : 0; break;
        case Op::kXori: result = a ^ imm; break;
        case Op::kOri: result = a | imm; break;
        case Op::kAndi: result = a & imm; break;
        case Op::kSlli: result = a << (imm & 31); break;
        case Op::kSrli: result = a >> (imm & 31); break;
        case Op::kSrai: result = static_cast<uint32_t>(static_cast<int32_t>(a) >> (imm & 31));
          break;
        default: break;
      }
      set_reg(in.rd, Value::Defined(result));
      break;
    }
    case Op::kAdd:
    case Op::kSub:
    case Op::kSll:
    case Op::kSlt:
    case Op::kSltu:
    case Op::kXor:
    case Op::kSrl:
    case Op::kSra:
    case Op::kOr:
    case Op::kAnd:
    case Op::kMul:
    case Op::kMulh:
    case Op::kMulhsu:
    case Op::kMulhu:
    case Op::kDiv:
    case Op::kDivu:
    case Op::kRem:
    case Op::kRemu: {
      if (!binop_defined) {
        set_reg(in.rd, Value::Undef());
        break;
      }
      uint32_t a = rs1.bits;
      uint32_t b = rs2.bits;
      int32_t sa = static_cast<int32_t>(a);
      int32_t sb = static_cast<int32_t>(b);
      uint32_t result = 0;
      switch (in.op) {
        case Op::kAdd: result = a + b; break;
        case Op::kSub: result = a - b; break;
        case Op::kSll: result = a << (b & 31); break;
        case Op::kSlt: result = sa < sb ? 1 : 0; break;
        case Op::kSltu: result = a < b ? 1 : 0; break;
        case Op::kXor: result = a ^ b; break;
        case Op::kSrl: result = a >> (b & 31); break;
        case Op::kSra: result = static_cast<uint32_t>(sa >> (b & 31)); break;
        case Op::kOr: result = a | b; break;
        case Op::kAnd: result = a & b; break;
        case Op::kMul: result = a * b; break;
        case Op::kMulh:
          result = static_cast<uint32_t>(
              (static_cast<int64_t>(sa) * static_cast<int64_t>(sb)) >> 32);
          break;
        case Op::kMulhsu:
          result = static_cast<uint32_t>(
              (static_cast<int64_t>(sa) * static_cast<uint64_t>(b)) >> 32);
          break;
        case Op::kMulhu:
          result = static_cast<uint32_t>(
              (static_cast<uint64_t>(a) * static_cast<uint64_t>(b)) >> 32);
          break;
        case Op::kDiv:
          result = (b == 0) ? 0xffffffffu
                            : (a == 0x80000000u && b == 0xffffffffu)
                                  ? 0x80000000u
                                  : static_cast<uint32_t>(sa / sb);
          break;
        case Op::kDivu: result = (b == 0) ? 0xffffffffu : a / b; break;
        case Op::kRem:
          result = (b == 0) ? a
                            : (a == 0x80000000u && b == 0xffffffffu)
                                  ? 0
                                  : static_cast<uint32_t>(sa % sb);
          break;
        case Op::kRemu: result = (b == 0) ? a : a % b; break;
        default: break;
      }
      set_reg(in.rd, Value::Defined(result));
      break;
    }
    case Op::kFence:
      break;
    case Op::kEcall:
    case Op::kEbreak:
      instret_++;
      pc_ = next_pc;
      return StepResult::kHalt;
  }
  instret_++;
  pc_ = next_pc;
  return StepResult::kOk;
}

Machine::StepResult Machine::Run(uint64_t max_steps) {
  for (uint64_t i = 0; i < max_steps; i++) {
    StepResult r = Step();
    if (r != StepResult::kOk) {
      return r;
    }
  }
  fault_reason_ = "step limit exceeded";
  return StepResult::kFault;
}

Machine::StepResult Machine::CallFunction(uint32_t function, const std::vector<uint32_t>& args,
                                          uint64_t max_steps) {
  PARFAIT_CHECK(args.size() <= 8);
  set_reg(1, Value::Defined(kReturnSentinel));  // ra.
  for (size_t i = 0; i < args.size(); i++) {
    set_reg(static_cast<uint8_t>(10 + i), Value::Defined(args[i]));  // a0..a7.
  }
  set_pc(function);
  return Run(max_steps);
}

}  // namespace parfait::riscv
