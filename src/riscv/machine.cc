#include "src/riscv/machine.h"

#include <algorithm>
#include <bit>
#include <cstdlib>
#include <cstring>
#include <string_view>

#include "src/riscv/translator.h"
#include "src/support/status.h"

namespace parfait::riscv {

// Out of line: LocalBlockCache is incomplete in machine.h. Copies start cold —
// translated blocks carry per-machine invalidation state (the dead flag) that must
// not be shared between machines.
LocalBlockHandle::LocalBlockHandle() = default;
LocalBlockHandle::~LocalBlockHandle() = default;
LocalBlockHandle::LocalBlockHandle(const LocalBlockHandle&) {}
LocalBlockHandle& LocalBlockHandle::operator=(const LocalBlockHandle&) {
  cache.reset();
  return *this;
}
LocalBlockHandle::LocalBlockHandle(LocalBlockHandle&&) noexcept = default;
LocalBlockHandle& LocalBlockHandle::operator=(LocalBlockHandle&&) noexcept = default;

Machine::Backend Machine::DefaultBackend() {
  static const Backend kDefault = [] {
    const char* env = std::getenv("PARFAIT_BACKEND");
    if (env != nullptr && std::string_view(env) == "dbt") {
      return Backend::kDBT;
    }
    return Backend::kInterpreter;
  }();
  return kDefault;
}

DecodeCache::DecodeCache(uint32_t base, std::span<const uint8_t> bytes) : base_(base) {
  PARFAIT_CHECK_MSG((base & 3) == 0, "decode cache base 0x%08x is not word-aligned", base);
  entries_.resize(bytes.size() / 4);
  for (size_t i = 0; i < entries_.size(); i++) {
    uint32_t word = LoadLe32(bytes.data() + 4 * i);
    entries_[i].raw = word;
    std::optional<Instr> decoded = Decode(word);
    if (decoded.has_value()) {
      entries_[i].instr = *decoded;
      entries_[i].valid = true;
    }
  }
}

Machine::Machine() {
  regs_.fill(Value::Undef());
  regs_[0] = Value::Defined(0);
}

void Machine::AddRegion(const std::string& name, uint32_t base, uint32_t size, bool writable,
                        bool initially_defined) {
  PARFAIT_CHECK_MSG(size > 0, "empty region %s", name.c_str());
  for (const auto& r : regions_) {
    uint64_t r_end = static_cast<uint64_t>(r.base) + r.data.size();
    uint64_t end = static_cast<uint64_t>(base) + size;
    PARFAIT_CHECK_MSG(end <= r.base || r_end <= base, "region %s overlaps %s", name.c_str(),
                      r.name.c_str());
  }
  Region region;
  region.name = name;
  region.base = base;
  region.writable = writable;
  region.data.resize(size);
  region.all_defined = initially_defined;
  if (journal_) {
    region.dirty_pages.assign((size / kPageSize + 64) / 64, 0);
  }
  // Keep the list sorted by base so lookup can binary-search; the last-hit slots are
  // indices, so invalidate them across the insertion.
  auto pos = std::upper_bound(regions_.begin(), regions_.end(), base,
                              [](uint32_t b, const Region& r) { return b < r.base; });
  regions_.insert(pos, std::move(region));
  last_data_region_ = regions_.size();
  last_fetch_region_ = regions_.size();
  fetch_win_len_ = 0;
}

void Machine::AttachDecodeCache(std::shared_ptr<const DecodeCache> cache) {
  PARFAIT_CHECK(cache != nullptr);
  Region* r = FindRegion(cache->base(), 4);
  PARFAIT_CHECK_MSG(r != nullptr, "no region contains decode cache base 0x%08x",
                    cache->base());
  PARFAIT_CHECK_MSG(!r->writable, "shared decode cache on writable region %s",
                    r->name.c_str());
  r->shared_decode = std::move(cache);
  fetch_win_len_ = 0;
}

void Machine::AttachTranslationCache(std::shared_ptr<SharedTranslationCache> cache) {
  PARFAIT_CHECK(cache != nullptr);
  Region* r = FindRegion(cache->base(), 4);
  PARFAIT_CHECK_MSG(r != nullptr, "no region contains translation cache base 0x%08x",
                    cache->base());
  PARFAIT_CHECK_MSG(!r->writable, "shared translation cache on writable region %s",
                    r->name.c_str());
  r->shared_blocks = std::move(cache);
}

void Machine::DisableDecodeCache() {
  decode_caching_ = false;
  fetch_win_len_ = 0;
  for (Region& r : regions_) {
    r.shared_decode = nullptr;
    r.shared_blocks = nullptr;
    r.local_blocks.cache.reset();
    r.local_state.clear();
    r.local_decode.clear();
    // Materialize the original byte-per-byte definedness shadow the reference
    // paths read, so the reference leg pays the original memory footprint.
    MaterializeReferenceShadow(r);
  }
}

void Machine::MaterializeReferenceShadow(Region& r) {
  if (r.defined_bits.empty()) {
    // Uniform region: memset-speed, the cost the original region setup paid.
    r.reference_defined.assign(r.data.size(), r.all_defined ? 1 : 0);
    return;
  }
  r.reference_defined.resize(r.data.size());
  for (uint32_t i = 0; i < r.size(); i++) {
    r.reference_defined[i] = (r.defined_bits[i >> 6] >> (i & 63) & 1) != 0 ? 1 : 0;
  }
}

void Machine::EnableDirtyJournal() {
  journal_ = true;
  for (Region& r : regions_) {
    r.dirty_pages.assign((r.size() / kPageSize + 64) / 64, 0);
  }
}

const Machine::Region* Machine::FindRegionSlow(uint32_t addr, uint32_t size,
                                               size_t* hint) const {
  // Sorted by base: the only candidate is the last region starting at or below addr.
  auto pos = std::upper_bound(regions_.begin(), regions_.end(), addr,
                              [](uint32_t a, const Region& r) { return a < r.base; });
  if (pos == regions_.begin()) {
    return nullptr;
  }
  --pos;
  if (static_cast<uint64_t>(addr) + size >
      static_cast<uint64_t>(pos->base) + pos->data.size()) {
    return nullptr;
  }
  *hint = static_cast<size_t>(pos - regions_.begin());
  return &*pos;
}

void Machine::MaterializeBits(Region& r, bool defined) {
  r.defined_bits.assign((r.data.size() + 63) / 64, defined ? ~uint64_t{0} : 0);
}

void Machine::SetDefinedRange(Region& r, uint32_t offset, uint32_t size, bool defined) {
  uint32_t first = offset;
  uint32_t last = offset + size;  // Exclusive.
  for (uint32_t word = first >> 6; word <= (last - 1) >> 6; word++) {
    uint32_t lo = std::max(first, word << 6) & 63;
    uint64_t span = std::min(last - (word << 6), uint32_t{64}) - lo;
    uint64_t mask = (span == 64 ? ~uint64_t{0} : (uint64_t{1} << span) - 1) << lo;
    if (defined) {
      r.defined_bits[word] |= mask;
    } else {
      r.defined_bits[word] &= ~mask;
    }
  }
}

void Machine::MarkDirty(Region& r, uint32_t offset, uint32_t size) {
  for (uint32_t page = offset / kPageSize; page <= (offset + size - 1) / kPageSize;
       page++) {
    r.dirty_pages[page >> 6] |= uint64_t{1} << (page & 63);
  }
}

void Machine::EvictLocalDecode(const Region& r, uint32_t offset, uint32_t size) {
  for (uint32_t word = offset >> 2; word <= (offset + size - 1) >> 2; word++) {
    r.local_state[word] = kLocalUnknown;
  }
}

void Machine::ResetTo(const Machine& prototype) {
  PARFAIT_CHECK_MSG(journal_, "ResetTo requires EnableDirtyJournal");
  PARFAIT_CHECK(regions_.size() == prototype.regions_.size());
  for (size_t i = 0; i < regions_.size(); i++) {
    Region& r = regions_[i];
    const Region& p = prototype.regions_[i];
    PARFAIT_CHECK_MSG(r.base == p.base && r.data.size() == p.data.size(),
                      "ResetTo region layout mismatch on %s", r.name.c_str());
    for (size_t w = 0; w < r.dirty_pages.size(); w++) {
      uint64_t bits = r.dirty_pages[w];
      r.dirty_pages[w] = 0;
      while (bits != 0) {
        uint32_t page = static_cast<uint32_t>(w * 64 + std::countr_zero(bits));
        bits &= bits - 1;
        uint32_t offset = page * kPageSize;
        uint32_t len = std::min(kPageSize, r.size() - offset);
        std::memcpy(r.data.data() + offset, p.data.data() + offset, len);
        if (!r.local_state.empty()) {
          EvictLocalDecode(r, offset, len);
        }
        if (r.local_blocks.cache != nullptr) {
          block_invalidations_ += r.local_blocks.cache->Invalidate(r.base + offset, len);
        }
        if (!r.defined_bits.empty()) {
          // kPageSize is a multiple of 64, so a page covers whole bitmap words.
          uint32_t w0 = offset >> 6;
          uint32_t w1 = (offset + len - 1) >> 6;
          if (p.defined_bits.empty()) {
            uint64_t fill = p.all_defined ? ~uint64_t{0} : 0;
            std::fill(r.defined_bits.begin() + w0, r.defined_bits.begin() + w1 + 1, fill);
          } else {
            std::copy(p.defined_bits.begin() + w0, p.defined_bits.begin() + w1 + 1,
                      r.defined_bits.begin() + w0);
          }
        }
      }
    }
    r.all_defined = p.all_defined;
  }
  if (__builtin_expect(!decode_caching_, 0)) {
    // Reference machines are never reset on any hot path; just rebuild the
    // byte-per-byte shadow from the restored bitmaps.
    for (Region& r : regions_) {
      MaterializeReferenceShadow(r);
    }
  }
  regs_ = prototype.regs_;
  pc_ = prototype.pc_;
  instret_ = prototype.instret_;
  fault_reason_ = prototype.fault_reason_;
  fast_resets_++;
}

Machine::Snapshot Machine::CaptureSnapshot() const {
  static_assert(kSnapshotPageSize == kPageSize);
  PARFAIT_CHECK_MSG(journal_, "CaptureSnapshot requires EnableDirtyJournal");
  Snapshot snap;
  snap.pc = pc_;
  for (uint8_t r = 0; r < 32; r++) {
    snap.regs[r] = regs_[r].bits;
  }
  for (const Region& r : regions_) {
    for (size_t w = 0; w < r.dirty_pages.size(); w++) {
      uint64_t bits = r.dirty_pages[w];
      while (bits != 0) {
        uint32_t page = static_cast<uint32_t>(w * 64 + std::countr_zero(bits));
        bits &= bits - 1;
        uint32_t offset = page * kPageSize;
        uint32_t len = std::min(kPageSize, r.size() - offset);
        PageSnapshot ps;
        ps.addr = r.base + offset;
        ps.bytes.assign(r.data.begin() + offset, r.data.begin() + offset + len);
        snap.pages.push_back(std::move(ps));
      }
    }
  }
  return snap;
}

void Machine::RestoreSnapshot(const Snapshot& snapshot) {
  for (const PageSnapshot& page : snapshot.pages) {
    WriteMemory(page.addr, page.bytes);
  }
  for (uint8_t r = 1; r < 32; r++) {
    set_reg(r, Value{snapshot.regs[r], true});
  }
  pc_ = snapshot.pc;
}

Machine::PerfCounters Machine::TakePerfCounters() {
  PerfCounters counters{decode_hits_,        region_cache_hits_,   fast_resets_,
                        block_translations_, block_hits_,          block_invalidations_,
                        block_links_};
  decode_hits_ = 0;
  region_cache_hits_ = 0;
  fast_resets_ = 0;
  block_translations_ = 0;
  block_hits_ = 0;
  block_invalidations_ = 0;
  block_links_ = 0;
  return counters;
}

void Machine::WriteMemory(uint32_t addr, std::span<const uint8_t> data) {
  Region* r = FindRegion(addr, static_cast<uint32_t>(data.size()));
  PARFAIT_CHECK_MSG(r != nullptr, "WriteMemory out of bounds at 0x%08x", addr);
  if (data.empty()) {
    return;
  }
  uint32_t offset = addr - r->base;
  uint32_t size = static_cast<uint32_t>(data.size());
  std::memcpy(r->data.data() + offset, data.data(), size);
  if (!r->all_defined) {
    if (r->defined_bits.empty()) {
      MaterializeBits(*r, false);
    }
    SetDefinedRange(*r, offset, size, true);
  }
  if (!r->reference_defined.empty()) {
    std::memset(r->reference_defined.data() + offset, 1, size);
  }
  if (journal_) {
    MarkDirty(*r, offset, size);
  }
  if (!r->local_state.empty()) {
    EvictLocalDecode(*r, offset, size);
  }
  if (r->local_blocks.cache != nullptr) {
    block_invalidations_ += r->local_blocks.cache->Invalidate(addr, size);
  }
  if (r->shared_decode != nullptr) {
    // The cache no longer matches the bytes; fall back to per-machine decode.
    r->shared_decode = nullptr;
    fetch_win_len_ = 0;
  }
  if (r->shared_blocks != nullptr) {
    // Same for translated ROM blocks: the harness rewrote the code under them.
    r->shared_blocks = nullptr;
  }
}

Bytes Machine::ReadMemory(uint32_t addr, uint32_t size) const {
  const Region* r = FindRegion(addr, size);
  PARFAIT_CHECK_MSG(r != nullptr, "ReadMemory out of bounds at 0x%08x", addr);
  const uint8_t* p = r->data.data() + (addr - r->base);
  return Bytes(p, p + size);
}

bool Machine::AllDefined(uint32_t addr, uint32_t size) const {
  const Region* r = FindRegion(addr, size);
  if (r == nullptr) {
    return false;
  }
  if (!r->reference_defined.empty()) {
    // Reference mode: the byte shadow is authoritative (see SetByteDefined).
    for (uint32_t i = 0; i < size; i++) {
      if (r->reference_defined[addr - r->base + i] == 0) {
        return false;
      }
    }
    return true;
  }
  if (r->all_defined) {
    return true;
  }
  if (r->defined_bits.empty()) {
    return size == 0;
  }
  uint32_t offset = addr - r->base;
  for (uint32_t i = 0; i < size; i++) {
    uint32_t byte = offset + i;
    if ((r->defined_bits[byte >> 6] >> (byte & 63) & 1) == 0) {
      return false;
    }
  }
  return true;
}

const Machine::Region* Machine::ReferenceFindRegion(uint32_t addr, uint32_t size) const {
  for (const auto& r : regions_) {
    uint64_t end = static_cast<uint64_t>(r.base) + r.data.size();
    if (addr >= r.base && static_cast<uint64_t>(addr) + size <= end) {
      return &r;
    }
  }
  return nullptr;
}

bool Machine::ByteDefined(const Region& r, uint32_t byte) {
  // Reference-mode read: the original byte-per-byte shadow (materialized by
  // DisableDecodeCache, which is the only way into the reference paths).
  return r.reference_defined[byte] != 0;
}

void Machine::SetByteDefined(Region& r, uint32_t byte, bool defined) {
  // Reference-mode write: one shadow byte, exactly the original store cost. While
  // the shadow exists it is authoritative (AllDefined consults it); the packed
  // bitmap is not maintained here — every reference store is journaled, so ResetTo
  // restores accurate bitmap state from the prototype before rebuilding the shadow.
  r.reference_defined[byte] = defined ? 1 : 0;
}

bool Machine::ReferenceLoadBytes(uint32_t addr, uint32_t size, uint32_t* out,
                                 bool* out_defined) const {
  const Region* r = ReferenceFindRegion(addr, size);
  if (r == nullptr) {
    return false;
  }
  uint32_t offset = addr - r->base;
  const uint8_t* p = r->data.data() + offset;
  uint32_t v = 0;
  bool defined = true;
  for (uint32_t i = 0; i < size; i++) {
    v |= static_cast<uint32_t>(p[i]) << (8 * i);
    defined = defined && ByteDefined(*r, offset + i);
  }
  *out = v;
  *out_defined = defined;
  return true;
}

bool Machine::ReferenceStoreBytes(uint32_t addr, uint32_t size, uint32_t value,
                                  bool value_defined) {
  Region* r = const_cast<Region*>(ReferenceFindRegion(addr, size));
  if (r == nullptr || !r->writable) {
    return false;
  }
  uint32_t offset = addr - r->base;
  uint8_t* p = r->data.data() + offset;
  for (uint32_t i = 0; i < size; i++) {
    p[i] = static_cast<uint8_t>(value >> (8 * i));
    SetByteDefined(*r, offset + i, value_defined);
  }
  // Unlike the original, keep the journal and decode eviction honest: a reference
  // machine is still a correct Machine (resettable, peekable), just slow.
  if (journal_) {
    MarkDirty(*r, offset, size);
  }
  if (!r->local_state.empty()) {
    EvictLocalDecode(*r, offset, size);
  }
  if (r->local_blocks.cache != nullptr) {
    block_invalidations_ += r->local_blocks.cache->Invalidate(addr, size);
  }
  return true;
}

void Machine::InvalidateLocalBlocks(Region& r, uint32_t addr, uint32_t size) {
  block_invalidations_ += r.local_blocks.cache->Invalidate(addr, size);
}

const char* Machine::ReferenceFetch(const Instr** out) const {
  // Reference mode: the original fetch — linear region scan, per-byte definedness
  // walk, Decode() every time.
  uint32_t word;
  bool fetch_defined;
  if (!ReferenceLoadBytes(pc_, 4, &word, &fetch_defined)) {
    return "instruction fetch out of bounds";
  }
  if (!fetch_defined) {
    return "instruction fetch of undefined memory";
  }
  std::optional<Instr> decoded = Decode(word);
  if (!decoded.has_value()) {
    return "undecodable instruction";
  }
  reference_scratch_ = *decoded;
  *out = &reference_scratch_;
  return nullptr;
}

const char* Machine::FetchDecoded(const Instr** out) const {
  uint32_t pc = pc_;
  // Hot path: the direct-mapped window over the last shared cache that served a
  // fetch. One subtract + compare proves pc and pc+4 are in a read-only,
  // all-defined, cache-covered region.
  uint32_t win_off = pc - fetch_win_base_;
  if (__builtin_expect(win_off < fetch_win_len_, 1)) {
    decode_hits_++;
    const DecodeCache::Entry* entry = fetch_win_ + (win_off >> 2);
    if (__builtin_expect(!entry->valid, 0)) {
      return "undecodable instruction";
    }
    *out = &entry->instr;
    return nullptr;
  }
  const Region* r = nullptr;
  if (last_fetch_region_ < regions_.size()) {
    const Region& hint = regions_[last_fetch_region_];
    uint32_t offset = pc - hint.base;
    if (offset < hint.size() && 4 <= hint.size() - offset) {
      region_cache_hits_++;
      r = &hint;
    }
  }
  if (r == nullptr) {
    r = FindRegionImpl(pc, 4, &last_fetch_region_);
    if (r == nullptr) {
      return "instruction fetch out of bounds";
    }
  }
  uint32_t offset = pc - r->base;
  if (r->shared_decode != nullptr && r->all_defined) {
    const DecodeCache::Entry* entry = r->shared_decode->Lookup(pc);
    if (entry != nullptr) {
      decode_hits_++;
      // Arm the window over the intersection of the cache and the region, indexed
      // from the cache base (entry i covers cache_base + 4*i).
      uint32_t cache_base = r->shared_decode->base();
      uint64_t end = std::min<uint64_t>(
          static_cast<uint64_t>(cache_base) + r->shared_decode->words() * 4,
          static_cast<uint64_t>(r->base) + r->size());
      if (end >= static_cast<uint64_t>(cache_base) + 4) {
        fetch_win_base_ = cache_base;
        fetch_win_len_ = static_cast<uint32_t>(end - cache_base) - 3;
        fetch_win_ = r->shared_decode->entries();
      }
      if (!entry->valid) {
        return "undecodable instruction";
      }
      *out = &entry->instr;
      return nullptr;
    }
  }
  // Per-machine path (writable regions, or bytes past a shared cache): cache the
  // decode per word; stores evict, so self-modifying code re-decodes.
  if (r->local_state.empty()) {
    size_t words = r->data.size() / 4;
    r->local_state.assign(words, kLocalUnknown);
    r->local_decode.resize(words);
  }
  uint32_t index = offset >> 2;
  uint8_t state = r->local_state[index];
  if (state == kLocalUnknown) {
    if (!RangeDefined(*r, offset, 4)) {
      state = kLocalUndefined;
    } else {
      std::optional<Instr> decoded = Decode(LoadLe32(r->data.data() + offset));
      if (decoded.has_value()) {
        r->local_decode[index] = *decoded;
        state = kLocalValid;
      } else {
        state = kLocalUndecodable;
      }
    }
    r->local_state[index] = state;
  } else {
    decode_hits_++;
  }
  switch (state) {
    case kLocalValid:
      *out = &r->local_decode[index];
      return nullptr;
    case kLocalUndefined:
      return "instruction fetch of undefined memory";
    default:
      return "undecodable instruction";
  }
}

std::optional<Instr> Machine::PeekInstr() const {
  if ((pc_ & 3) != 0) {
    return std::nullopt;
  }
  const Instr* decoded = nullptr;
  const char* fault =
      decode_caching_ ? FetchDecoded(&decoded) : ReferenceFetch(&decoded);
  if (fault != nullptr) {
    return std::nullopt;
  }
  return *decoded;
}

Machine::StepResult Machine::Fault(const std::string& reason) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), " (pc=0x%08x, instret=%llu)", pc_,
                static_cast<unsigned long long>(instret_));
  fault_reason_ = reason + buf;
  return StepResult::kFault;
}

// The one interpreter body, instantiated twice: kCached = true is the production
// hot path (decode caches, hinted lookup, packed bitmaps) with no reference-mode
// branches compiled in; kCached = false is the reference interpreter. Both run the
// identical execution switch below, which is what keeps them bit-equivalent.
template <bool kCached>
Machine::StepResult Machine::StepImpl() {
  if (__builtin_expect(pc_ == kReturnSentinel, 0)) {
    return StepResult::kHalt;
  }
  if (__builtin_expect((pc_ & 3) != 0, 0)) {
    return Fault("misaligned pc");
  }
  const Instr* decoded = nullptr;
  const char* fetch_fault = kCached ? FetchDecoded(&decoded) : ReferenceFetch(&decoded);
  if (__builtin_expect(fetch_fault != nullptr, 0)) {
    return Fault(fetch_fault);
  }
  const Instr& in = *decoded;
  Value rs1 = regs_[in.rs1];
  Value rs2 = regs_[in.rs2];
  uint32_t next_pc = pc_ + 4;

  auto require_defined = [&](const Value& v) { return v.defined; };
  auto binop_defined = rs1.defined && rs2.defined;

  switch (in.op) {
    case Op::kLui:
      set_reg(in.rd, Value::Defined(static_cast<uint32_t>(in.imm)));
      break;
    case Op::kAuipc:
      set_reg(in.rd, Value::Defined(pc_ + static_cast<uint32_t>(in.imm)));
      break;
    case Op::kJal:
      set_reg(in.rd, Value::Defined(pc_ + 4));
      next_pc = pc_ + static_cast<uint32_t>(in.imm);
      break;
    case Op::kJalr: {
      if (!require_defined(rs1)) {
        return Fault("jalr through undefined register");
      }
      uint32_t target = (rs1.bits + static_cast<uint32_t>(in.imm)) & ~1u;
      set_reg(in.rd, Value::Defined(pc_ + 4));
      next_pc = target;
      break;
    }
    case Op::kBeq:
    case Op::kBne:
    case Op::kBlt:
    case Op::kBge:
    case Op::kBltu:
    case Op::kBgeu: {
      if (!binop_defined) {
        return Fault("branch on undefined operand");
      }
      bool taken = false;
      int32_t s1 = static_cast<int32_t>(rs1.bits);
      int32_t s2 = static_cast<int32_t>(rs2.bits);
      switch (in.op) {
        case Op::kBeq: taken = rs1.bits == rs2.bits; break;
        case Op::kBne: taken = rs1.bits != rs2.bits; break;
        case Op::kBlt: taken = s1 < s2; break;
        case Op::kBge: taken = s1 >= s2; break;
        case Op::kBltu: taken = rs1.bits < rs2.bits; break;
        case Op::kBgeu: taken = rs1.bits >= rs2.bits; break;
        default: break;
      }
      if (taken) {
        next_pc = pc_ + static_cast<uint32_t>(in.imm);
      }
      break;
    }
    case Op::kLb:
    case Op::kLh:
    case Op::kLw:
    case Op::kLbu:
    case Op::kLhu: {
      if (!require_defined(rs1)) {
        return Fault("load through undefined address");
      }
      uint32_t addr = rs1.bits + static_cast<uint32_t>(in.imm);
      uint32_t size = (in.op == Op::kLw) ? 4 : (in.op == Op::kLh || in.op == Op::kLhu) ? 2 : 1;
      if ((addr & (size - 1)) != 0) {
        return Fault("misaligned load");
      }
      uint32_t raw;
      bool load_defined;
      bool in_bounds = kCached ? LoadBytes(addr, size, &raw, &load_defined)
                               : ReferenceLoadBytes(addr, size, &raw, &load_defined);
      if (!in_bounds) {
        return Fault("load out of bounds");
      }
      if (!load_defined) {
        set_reg(in.rd, Value::Undef());
        break;
      }
      uint32_t result = raw;
      if (in.op == Op::kLb) {
        result = static_cast<uint32_t>(static_cast<int32_t>(static_cast<int8_t>(raw)));
      } else if (in.op == Op::kLh) {
        result = static_cast<uint32_t>(static_cast<int32_t>(static_cast<int16_t>(raw)));
      }
      set_reg(in.rd, Value::Defined(result));
      break;
    }
    case Op::kSb:
    case Op::kSh:
    case Op::kSw: {
      if (!require_defined(rs1)) {
        return Fault("store through undefined address");
      }
      uint32_t addr = rs1.bits + static_cast<uint32_t>(in.imm);
      uint32_t size = (in.op == Op::kSw) ? 4 : (in.op == Op::kSh) ? 2 : 1;
      if ((addr & (size - 1)) != 0) {
        return Fault("misaligned store");
      }
      // Storing an undefined value is legal (CompCert stores Vundef bytes); the taint
      // of undefinedness travels through memory instead.
      bool stored = kCached ? StoreBytes(addr, size, rs2.bits, rs2.defined)
                            : ReferenceStoreBytes(addr, size, rs2.bits, rs2.defined);
      if (!stored) {
        return Fault("store out of bounds or read-only");
      }
      break;
    }
    case Op::kAddi:
    case Op::kSlti:
    case Op::kSltiu:
    case Op::kXori:
    case Op::kOri:
    case Op::kAndi:
    case Op::kSlli:
    case Op::kSrli:
    case Op::kSrai: {
      if (!rs1.defined) {
        set_reg(in.rd, Value::Undef());
        break;
      }
      uint32_t a = rs1.bits;
      uint32_t imm = static_cast<uint32_t>(in.imm);
      uint32_t result = 0;
      switch (in.op) {
        case Op::kAddi: result = a + imm; break;
        case Op::kSlti: result = static_cast<int32_t>(a) < in.imm ? 1 : 0; break;
        case Op::kSltiu: result = a < imm ? 1 : 0; break;
        case Op::kXori: result = a ^ imm; break;
        case Op::kOri: result = a | imm; break;
        case Op::kAndi: result = a & imm; break;
        case Op::kSlli: result = a << (imm & 31); break;
        case Op::kSrli: result = a >> (imm & 31); break;
        case Op::kSrai: result = static_cast<uint32_t>(static_cast<int32_t>(a) >> (imm & 31));
          break;
        default: break;
      }
      set_reg(in.rd, Value::Defined(result));
      break;
    }
    case Op::kAdd:
    case Op::kSub:
    case Op::kSll:
    case Op::kSlt:
    case Op::kSltu:
    case Op::kXor:
    case Op::kSrl:
    case Op::kSra:
    case Op::kOr:
    case Op::kAnd:
    case Op::kMul:
    case Op::kMulh:
    case Op::kMulhsu:
    case Op::kMulhu:
    case Op::kDiv:
    case Op::kDivu:
    case Op::kRem:
    case Op::kRemu: {
      if (!binop_defined) {
        set_reg(in.rd, Value::Undef());
        break;
      }
      uint32_t a = rs1.bits;
      uint32_t b = rs2.bits;
      int32_t sa = static_cast<int32_t>(a);
      int32_t sb = static_cast<int32_t>(b);
      uint32_t result = 0;
      switch (in.op) {
        case Op::kAdd: result = a + b; break;
        case Op::kSub: result = a - b; break;
        case Op::kSll: result = a << (b & 31); break;
        case Op::kSlt: result = sa < sb ? 1 : 0; break;
        case Op::kSltu: result = a < b ? 1 : 0; break;
        case Op::kXor: result = a ^ b; break;
        case Op::kSrl: result = a >> (b & 31); break;
        case Op::kSra: result = static_cast<uint32_t>(sa >> (b & 31)); break;
        case Op::kOr: result = a | b; break;
        case Op::kAnd: result = a & b; break;
        case Op::kMul: result = a * b; break;
        case Op::kMulh:
          result = static_cast<uint32_t>(
              (static_cast<int64_t>(sa) * static_cast<int64_t>(sb)) >> 32);
          break;
        case Op::kMulhsu:
          result = static_cast<uint32_t>(
              (static_cast<int64_t>(sa) * static_cast<uint64_t>(b)) >> 32);
          break;
        case Op::kMulhu:
          result = static_cast<uint32_t>(
              (static_cast<uint64_t>(a) * static_cast<uint64_t>(b)) >> 32);
          break;
        case Op::kDiv:
          result = (b == 0) ? 0xffffffffu
                            : (a == 0x80000000u && b == 0xffffffffu)
                                  ? 0x80000000u
                                  : static_cast<uint32_t>(sa / sb);
          break;
        case Op::kDivu: result = (b == 0) ? 0xffffffffu : a / b; break;
        case Op::kRem:
          result = (b == 0) ? a
                            : (a == 0x80000000u && b == 0xffffffffu)
                                  ? 0
                                  : static_cast<uint32_t>(sa % sb);
          break;
        case Op::kRemu: result = (b == 0) ? a : a % b; break;
        default: break;
      }
      set_reg(in.rd, Value::Defined(result));
      break;
    }
    case Op::kFence:
      break;
    case Op::kEcall:
    case Op::kEbreak:
      instret_++;
      pc_ = next_pc;
      return StepResult::kHalt;
  }
  instret_++;
  pc_ = next_pc;
  return StepResult::kOk;
}

// The reference interpreter keeps the original compilation structure too: one
// out-of-line Step call per instruction (the original Step was far too large to
// inline into Run), so the recorded "before" leg measures what the original
// binary measured, not a better-compiled version of it.
__attribute__((noinline)) Machine::StepResult Machine::ReferenceStep() {
  return StepImpl<false>();
}

Machine::StepResult Machine::Step() {
  return decode_caching_ ? StepImpl<true>() : ReferenceStep();
}

Machine::StepResult Machine::StepCachedOnce() { return StepImpl<true>(); }

template <bool kCached>
Machine::StepResult Machine::RunImpl(uint64_t max_steps) {
  for (uint64_t i = 0; i < max_steps; i++) {
    StepResult r = kCached ? StepImpl<true>() : ReferenceStep();
    if (r != StepResult::kOk) {
      return r;
    }
  }
  fault_reason_ = "step limit exceeded";
  return StepResult::kFault;
}

Machine::StepResult Machine::Run(uint64_t max_steps) {
  // Dispatch on the mode once, outside the loop, so the hot loop runs the chosen
  // engine with no per-step mode check. Reference mode always interprets — it is
  // the oracle the DBT backend is checked against.
  if (__builtin_expect(!decode_caching_, 0)) {
    return RunImpl<false>(max_steps);
  }
  if (backend_ == Backend::kDBT && Dbt::Supported()) {
    return Dbt::Run(*this, max_steps);
  }
  return RunImpl<true>(max_steps);
}

Machine::StepResult Machine::CallFunction(uint32_t function, const std::vector<uint32_t>& args,
                                          uint64_t max_steps) {
  PARFAIT_CHECK(args.size() <= 8);
  set_reg(1, Value::Defined(kReturnSentinel));  // ra.
  for (size_t i = 0; i < args.size(); i++) {
    set_reg(static_cast<uint8_t>(10 + i), Value::Defined(args[i]));  // a0..a7.
  }
  set_pc(function);
  return Run(max_steps);
}

}  // namespace parfait::riscv
