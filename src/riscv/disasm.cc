#include "src/riscv/disasm.h"

#include <cstdio>
#include <map>
#include <sstream>

#include "src/support/bytes.h"

namespace parfait::riscv {

namespace {

std::string Imm(int32_t v) { return std::to_string(v); }

std::string Addr(uint32_t a) {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "0x%08x", a);
  return buf;
}

}  // namespace

SymbolNamer::SymbolNamer(const Image& image) {
  // symbol_table is sorted by (addr, name); keep functions and objects, skip plain
  // labels (codegen's .L* jump targets would otherwise shadow the function name).
  for (const SymbolInfo& sym : image.symbol_table) {
    if (sym.kind == SymbolKind::kLabel) {
      continue;
    }
    spans_.push_back(Span{sym.addr, sym.size, sym.name});
  }
}

std::string SymbolNamer::Name(uint32_t addr) const {
  // Find the last span starting at or before addr that covers it. Spans are sorted;
  // extents don't nest in practice (functions and objects are laid out back to back),
  // so a short backwards walk suffices.
  size_t lo = 0, hi = spans_.size();
  while (lo < hi) {
    size_t mid = (lo + hi) / 2;
    if (spans_[mid].addr <= addr) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  for (size_t i = lo; i-- > 0;) {
    const Span& s = spans_[i];
    uint32_t size = s.size == 0 ? 4 : s.size;
    if (addr < s.addr) {
      continue;
    }
    if (addr >= s.addr + size) {
      break;
    }
    if (addr == s.addr) {
      return s.name;
    }
    char buf[16];
    std::snprintf(buf, sizeof(buf), "+0x%x", addr - s.addr);
    return s.name + buf;
  }
  return "";
}

std::string Disassemble(const Instr& in, uint32_t pc, const SymbolNamer& namer) {
  std::string base = Disassemble(in, pc);
  if (pc == 0) {
    return base;
  }
  bool targeted = in.op == Op::kJal || IsBranch(in.op);
  if (!targeted) {
    return base;
  }
  std::string name = namer.Name(pc + static_cast<uint32_t>(in.imm));
  if (name.empty()) {
    return base;
  }
  return base + " <" + name + ">";
}

std::string Disassemble(const Instr& in, uint32_t pc) {
  std::string m = Mnemonic(in.op);
  auto rd = [&] { return std::string(RegName(in.rd)); };
  auto rs1 = [&] { return std::string(RegName(in.rs1)); };
  auto rs2 = [&] { return std::string(RegName(in.rs2)); };
  switch (in.op) {
    case Op::kLui:
    case Op::kAuipc: {
      // GNU style: the 20-bit immediate, not the shifted value (round-trips through
      // the assembler, which shifts by 12 when parsing).
      char buf[16];
      std::snprintf(buf, sizeof(buf), "0x%x", static_cast<uint32_t>(in.imm) >> 12);
      return m + " " + rd() + ", " + buf;
    }
    case Op::kJal:
      return m + " " + rd() + ", " +
             (pc != 0 ? Addr(pc + static_cast<uint32_t>(in.imm)) : Imm(in.imm));
    case Op::kJalr:
      return m + " " + rd() + ", " + Imm(in.imm) + "(" + rs1() + ")";
    case Op::kBeq:
    case Op::kBne:
    case Op::kBlt:
    case Op::kBge:
    case Op::kBltu:
    case Op::kBgeu:
      return m + " " + rs1() + ", " + rs2() + ", " +
             (pc != 0 ? Addr(pc + static_cast<uint32_t>(in.imm)) : Imm(in.imm));
    case Op::kLb:
    case Op::kLh:
    case Op::kLw:
    case Op::kLbu:
    case Op::kLhu:
      return m + " " + rd() + ", " + Imm(in.imm) + "(" + rs1() + ")";
    case Op::kSb:
    case Op::kSh:
    case Op::kSw:
      return m + " " + rs2() + ", " + Imm(in.imm) + "(" + rs1() + ")";
    case Op::kAddi:
    case Op::kSlti:
    case Op::kSltiu:
    case Op::kXori:
    case Op::kOri:
    case Op::kAndi:
    case Op::kSlli:
    case Op::kSrli:
    case Op::kSrai:
      return m + " " + rd() + ", " + rs1() + ", " + Imm(in.imm);
    case Op::kFence:
    case Op::kEcall:
    case Op::kEbreak:
      return m;
    default:
      return m + " " + rd() + ", " + rs1() + ", " + rs2();
  }
}

std::string DisassembleImage(const Image& image) {
  // Invert the symbol table for labels.
  std::multimap<uint32_t, std::string> by_addr;
  for (const auto& [name, addr] : image.symbols) {
    if (name.rfind("__", 0) != 0) {
      by_addr.emplace(addr, name);
    }
  }
  SymbolNamer namer(image);
  std::ostringstream out;
  for (size_t offset = 0; offset + 4 <= image.rom.size(); offset += 4) {
    uint32_t addr = image.rom_base + static_cast<uint32_t>(offset);
    auto [lo, hi] = by_addr.equal_range(addr);
    for (auto it = lo; it != hi; ++it) {
      out << it->second << ":\n";
    }
    uint32_t word = LoadLe32(image.rom.data() + offset);
    auto decoded = Decode(word);
    char prefix[32];
    std::snprintf(prefix, sizeof(prefix), "  %08x:  %08x  ", addr, word);
    out << prefix
        << (decoded.has_value() ? Disassemble(*decoded, addr, namer) : std::string(".word"))
        << "\n";
  }
  return out.str();
}

}  // namespace parfait::riscv
