// Disassembler: formats instructions and linked images as human-readable listings.
// Used by the devtools (objdump-style listing) and by checker diagnostics.
#ifndef PARFAIT_RISCV_DISASM_H_
#define PARFAIT_RISCV_DISASM_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "src/riscv/assembler.h"
#include "src/riscv/isa.h"

namespace parfait::riscv {

// Resolves addresses to names using an image's symbol side table, objdump style:
// "handle" at an exact symbol address, "handle+0x18" inside a symbol's extent,
// empty string on a miss. Used to print `call <name>` / `<name+off>` targets in
// checker diagnostics and Evidence artifacts.
class SymbolNamer {
 public:
  SymbolNamer() = default;
  explicit SymbolNamer(const Image& image);

  // Name for an address, or "" when no symbol covers it.
  std::string Name(uint32_t addr) const;

  bool empty() const { return spans_.empty(); }

 private:
  struct Span {
    uint32_t addr;
    uint32_t size;
    std::string name;
  };
  std::vector<Span> spans_;  // Sorted by address.
};

// One instruction, e.g. "addi sp, sp, -32" or "bne t0, t1, 0x00000140" (branch/jump
// targets are shown as absolute addresses when `pc` is provided).
std::string Disassemble(const Instr& instr, uint32_t pc = 0);

// Symbol-aware variant: branch/jump targets resolved through `namer` render as
// "jal ra, 0x00000120 <sha256_init>". Identical to the two-argument form when the
// target has no covering symbol.
std::string Disassemble(const Instr& instr, uint32_t pc, const SymbolNamer& namer);

// A full listing of the image's ROM: address, raw word, mnemonic, and symbol labels.
// Branch and call targets are symbolized through the image's own symbol table.
std::string DisassembleImage(const Image& image);

}  // namespace parfait::riscv

#endif  // PARFAIT_RISCV_DISASM_H_
