// Disassembler: formats instructions and linked images as human-readable listings.
// Used by the devtools (objdump-style listing) and by checker diagnostics.
#ifndef PARFAIT_RISCV_DISASM_H_
#define PARFAIT_RISCV_DISASM_H_

#include <string>

#include "src/riscv/assembler.h"
#include "src/riscv/isa.h"

namespace parfait::riscv {

// One instruction, e.g. "addi sp, sp, -32" or "bne t0, t1, 0x00000140" (branch/jump
// targets are shown as absolute addresses when `pc` is provided).
std::string Disassemble(const Instr& instr, uint32_t pc = 0);

// A full listing of the image's ROM: address, raw word, mnemonic, and symbol labels.
std::string DisassembleImage(const Image& image);

}  // namespace parfait::riscv

#endif  // PARFAIT_RISCV_DISASM_H_
