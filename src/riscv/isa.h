// RV32IM instruction set definitions shared by the assembler, the abstract machine
// (the paper's Riscette analog, section 5.1), and the SoC CPU models.
#ifndef PARFAIT_RISCV_ISA_H_
#define PARFAIT_RISCV_ISA_H_

#include <cstdint>
#include <optional>
#include <string>

namespace parfait::riscv {

enum class Op : uint8_t {
  // RV32I.
  kLui,
  kAuipc,
  kJal,
  kJalr,
  kBeq,
  kBne,
  kBlt,
  kBge,
  kBltu,
  kBgeu,
  kLb,
  kLh,
  kLw,
  kLbu,
  kLhu,
  kSb,
  kSh,
  kSw,
  kAddi,
  kSlti,
  kSltiu,
  kXori,
  kOri,
  kAndi,
  kSlli,
  kSrli,
  kSrai,
  kAdd,
  kSub,
  kSll,
  kSlt,
  kSltu,
  kXor,
  kSrl,
  kSra,
  kOr,
  kAnd,
  kFence,
  kEcall,
  kEbreak,
  // RV32M.
  kMul,
  kMulh,
  kMulhsu,
  kMulhu,
  kDiv,
  kDivu,
  kRem,
  kRemu,
};

// A decoded instruction. imm is sign-extended where the ISA sign-extends.
struct Instr {
  Op op;
  uint8_t rd = 0;
  uint8_t rs1 = 0;
  uint8_t rs2 = 0;
  int32_t imm = 0;

  friend bool operator==(const Instr&, const Instr&) = default;
};

// Encodes a decoded instruction into its 32-bit RISC-V representation.
uint32_t Encode(const Instr& instr);

// Decodes a 32-bit word; returns std::nullopt for anything outside the RV32IM subset.
std::optional<Instr> Decode(uint32_t word);

// Returns the canonical mnemonic ("addi", "mulhu", ...).
const char* Mnemonic(Op op);

// Looks up a mnemonic; returns std::nullopt if unknown.
std::optional<Op> OpFromMnemonic(const std::string& name);

// ABI register name ("zero", "ra", "sp", "a0", ...) for x0..x31.
const char* RegName(uint8_t reg);

// Parses "x7", "a0", "sp", ... into a register number.
std::optional<uint8_t> RegFromName(const std::string& name);

// Instruction classification used by the Knox2 synchronization heuristics (figure 11).
bool IsBranch(Op op);       // Conditional branches.
bool IsJump(Op op);         // jal / jalr.
bool IsLoad(Op op);
bool IsStore(Op op);
bool IsMulDiv(Op op);       // RV32M.

}  // namespace parfait::riscv

#endif  // PARFAIT_RISCV_ISA_H_
