#include "src/riscv/witness.h"

#include <cstdio>
#include <cstdlib>
#include <map>
#include <sstream>

namespace parfait::riscv {

namespace {

// One key=value token scanner for FromText. Witness lines are space-separated
// `key=value` pairs after the record tag; names are the only free-form field and
// MiniC identifiers never contain spaces.
class FieldMap {
 public:
  explicit FieldMap(std::istringstream& in) {
    std::string token;
    while (in >> token) {
      size_t eq = token.find('=');
      if (eq != std::string::npos) {
        fields_[token.substr(0, eq)] = token.substr(eq + 1);
      }
    }
  }

  bool Has(const std::string& key) const { return fields_.count(key) != 0; }
  std::string Str(const std::string& key) const {
    auto it = fields_.find(key);
    return it != fields_.end() ? it->second : "";
  }
  int64_t Int(const std::string& key) const {
    auto it = fields_.find(key);
    return it != fields_.end() ? std::strtoll(it->second.c_str(), nullptr, 10) : 0;
  }

 private:
  std::map<std::string, std::string> fields_;
};

}  // namespace

const WitnessFunction* Witness::Find(const std::string& name) const {
  for (const WitnessFunction& fn : functions) {
    if (fn.name == name) {
      return &fn;
    }
  }
  return nullptr;
}

std::string Witness::ToText() const {
  std::ostringstream out;
  out << "witness v1 opt=" << opt_level << "\n";
  char buf[256];
  for (const WitnessFunction& fn : functions) {
    std::snprintf(buf, sizeof(buf),
                  "func %s line=%d begin=%u end=%u body=%u epi=%u frame=%d spill=%d "
                  "saved=%d ra=%d sregs=",
                  fn.name.c_str(), fn.line, fn.begin, fn.end, fn.body_begin, fn.epilogue,
                  fn.frame_size, fn.spill_base, fn.saved_base, fn.ra_offset);
    out << buf;
    for (size_t i = 0; i < fn.saved_regs.size(); i++) {
      out << (i > 0 ? "," : "") << static_cast<int>(fn.saved_regs[i]);
    }
    out << "\n";
    for (const WitnessLocal& l : fn.locals) {
      std::snprintf(buf, sizeof(buf),
                    "local %s array=%u elem=%d off=%d reg=%d param=%d ptr=%d u8=%d\n",
                    l.name.c_str(), l.array_size, static_cast<int>(l.elem_size),
                    l.frame_offset, static_cast<int>(l.reg), static_cast<int>(l.is_param),
                    static_cast<int>(l.is_ptr), static_cast<int>(l.is_u8));
      out << buf;
    }
    for (const WitnessStmt& s : fn.stmts) {
      std::snprintf(buf, sizeof(buf),
                    "stmt kind=%d line=%d begin=%u end=%u aux0=%u aux1=%u\n",
                    static_cast<int>(s.kind), s.line, s.begin, s.end, s.aux0, s.aux1);
      out << buf;
    }
    for (const WitnessXform& x : fn.xforms) {
      std::snprintf(buf, sizeof(buf),
                    "xform pass=%d slot=%d reg=%d site=%u imm=%d op=%d\n",
                    static_cast<int>(x.pass), x.slot, static_cast<int>(x.reg), x.site,
                    x.imm, static_cast<int>(x.op));
      out << buf;
    }
  }
  return out.str();
}

Result<Witness> Witness::FromText(const std::string& text) {
  Witness w;
  std::istringstream lines(text);
  std::string line;
  bool saw_header = false;
  int lineno = 0;
  while (std::getline(lines, line)) {
    lineno++;
    if (line.empty() || line[0] == '#') {
      continue;
    }
    std::istringstream in(line);
    std::string tag;
    in >> tag;
    if (tag == "witness") {
      std::string version;
      in >> version;
      if (version != "v1") {
        return Result<Witness>::Error("witness line " + std::to_string(lineno) +
                                      ": unsupported version " + version);
      }
      FieldMap f(in);
      w.opt_level = static_cast<int>(f.Int("opt"));
      saw_header = true;
    } else if (tag == "func") {
      std::string name;
      in >> name;
      FieldMap f(in);
      WitnessFunction fn;
      fn.name = name;
      fn.line = static_cast<int32_t>(f.Int("line"));
      fn.begin = static_cast<uint32_t>(f.Int("begin"));
      fn.end = static_cast<uint32_t>(f.Int("end"));
      fn.body_begin = static_cast<uint32_t>(f.Int("body"));
      fn.epilogue = static_cast<uint32_t>(f.Int("epi"));
      fn.frame_size = static_cast<int32_t>(f.Int("frame"));
      fn.spill_base = static_cast<int32_t>(f.Int("spill"));
      fn.saved_base = static_cast<int32_t>(f.Int("saved"));
      fn.ra_offset = static_cast<int32_t>(f.Int("ra"));
      std::string sregs = f.Str("sregs");
      std::istringstream rs(sregs);
      std::string r;
      while (std::getline(rs, r, ',')) {
        if (!r.empty()) {
          fn.saved_regs.push_back(static_cast<uint8_t>(std::strtol(r.c_str(), nullptr, 10)));
        }
      }
      w.functions.push_back(std::move(fn));
    } else if (tag == "local") {
      if (w.functions.empty()) {
        return Result<Witness>::Error("witness line " + std::to_string(lineno) +
                                      ": local before func");
      }
      std::string name;
      in >> name;
      FieldMap f(in);
      WitnessLocal l;
      l.name = name;
      l.array_size = static_cast<uint32_t>(f.Int("array"));
      l.elem_size = static_cast<uint8_t>(f.Int("elem"));
      l.frame_offset = static_cast<int32_t>(f.Int("off"));
      l.reg = static_cast<int8_t>(f.Int("reg"));
      l.is_param = static_cast<uint8_t>(f.Int("param"));
      l.is_ptr = static_cast<uint8_t>(f.Int("ptr"));
      l.is_u8 = static_cast<uint8_t>(f.Int("u8"));
      w.functions.back().locals.push_back(std::move(l));
    } else if (tag == "stmt") {
      if (w.functions.empty()) {
        return Result<Witness>::Error("witness line " + std::to_string(lineno) +
                                      ": stmt before func");
      }
      FieldMap f(in);
      WitnessStmt s;
      s.kind = static_cast<uint8_t>(f.Int("kind"));
      s.line = static_cast<int32_t>(f.Int("line"));
      s.begin = static_cast<uint32_t>(f.Int("begin"));
      s.end = static_cast<uint32_t>(f.Int("end"));
      s.aux0 = static_cast<uint32_t>(f.Int("aux0"));
      s.aux1 = static_cast<uint32_t>(f.Int("aux1"));
      w.functions.back().stmts.push_back(s);
    } else if (tag == "xform") {
      if (w.functions.empty()) {
        return Result<Witness>::Error("witness line " + std::to_string(lineno) +
                                      ": xform before func");
      }
      FieldMap f(in);
      WitnessXform x;
      x.pass = static_cast<uint8_t>(f.Int("pass"));
      x.slot = static_cast<int32_t>(f.Int("slot"));
      x.reg = static_cast<int8_t>(f.Int("reg"));
      x.site = static_cast<uint32_t>(f.Int("site"));
      x.imm = static_cast<int32_t>(f.Int("imm"));
      x.op = static_cast<uint8_t>(f.Int("op"));
      w.functions.back().xforms.push_back(x);
    } else {
      return Result<Witness>::Error("witness line " + std::to_string(lineno) +
                                    ": unknown record " + tag);
    }
  }
  if (!saw_header) {
    return Result<Witness>::Error("witness: missing header");
  }
  return w;
}

}  // namespace parfait::riscv
