#include "src/riscv/assembler.h"

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <sstream>

namespace parfait::riscv {

namespace {

uint32_t AlignUp(uint32_t v, uint32_t a) { return (v + a - 1) & ~(a - 1); }

bool FitsSigned12(int64_t v) { return v >= -2048 && v <= 2047; }

// %hi with compensation for the sign-extended %lo.
uint32_t HiPart(uint32_t addr) { return (addr + 0x800) & 0xfffff000u; }
int32_t LoPart(uint32_t addr) {
  return static_cast<int32_t>(addr << 20) >> 20;  // Sign-extended low 12 bits.
}

}  // namespace

bool SymbolInfo::HasAnnotation(const std::string& a) const {
  for (const auto& annotation : annotations) {
    if (annotation == a) {
      return true;
    }
  }
  return false;
}

uint32_t Image::SymbolOrDie(const std::string& name) const {
  auto it = symbols.find(name);
  PARFAIT_CHECK_MSG(it != symbols.end(), "undefined symbol %s", name.c_str());
  return it->second;
}

const SymbolInfo* Image::FindSymbol(const std::string& name) const {
  for (const SymbolInfo& info : symbol_table) {
    if (info.name == name) {
      return &info;
    }
  }
  return nullptr;
}

uint32_t Program::SectionSize(Section s) const {
  uint32_t size = 0;
  for (const auto& item : Items(s)) {
    switch (item.kind) {
      case Item::Kind::kInstr:
      case Item::Kind::kWord:
      case Item::Kind::kWordSymbol:
        size += 4;
        break;
      case Item::Kind::kBytes:
        size += static_cast<uint32_t>(item.bytes.size());
        break;
      case Item::Kind::kZero:
        size += item.value;
        break;
      case Item::Kind::kAlign:
        size = AlignUp(size, item.value);
        break;
    }
  }
  return size;
}

void Program::DefineLabel(const std::string& name) {
  labels_[name] = LabelDef{section_, SectionSize(section_)};
}

void Program::DefineConstant(const std::string& name, uint32_t value) {
  constants_[name] = value;
}

void Program::MarkFunction(const std::string& name) {
  meta_[name].kind = SymbolKind::kFunction;
}

void Program::MarkObject(const std::string& name, uint32_t size) {
  SymbolMeta& meta = meta_[name];
  meta.kind = SymbolKind::kObject;
  meta.size = size;
}

void Program::Annotate(const std::string& name, const std::string& annotation) {
  meta_[name].annotations.push_back(annotation);
}

void Program::Emit(const AsmInstr& ai) {
  Item item;
  item.kind = Item::Kind::kInstr;
  item.instr = ai;
  Items(section_).push_back(std::move(item));
}

std::optional<Instr> Program::PopLastPlainInstr() {
  auto& items = Items(section_);
  if (items.empty() || items.back().kind != Item::Kind::kInstr ||
      items.back().instr.reloc != Reloc::kNone) {
    return std::nullopt;
  }
  // A label defined at the current end of section would bind to this instruction's
  // successor; removing the instruction would silently move it. Bail out if any label
  // in this section sits at or beyond the instruction's offset.
  uint32_t end = SectionSize(section_);
  for (const auto& [name, def] : labels_) {
    if (def.section == section_ && def.offset >= end - 4) {
      return std::nullopt;
    }
  }
  Instr instr = items.back().instr.instr;
  items.pop_back();
  return instr;
}

void Program::Word(uint32_t value) {
  Item item;
  item.kind = Item::Kind::kWord;
  item.value = value;
  Items(section_).push_back(std::move(item));
}

void Program::WordSymbol(const std::string& symbol) {
  Item item;
  item.kind = Item::Kind::kWordSymbol;
  item.symbol = symbol;
  Items(section_).push_back(std::move(item));
}

void Program::ByteData(std::span<const uint8_t> data) {
  Item item;
  item.kind = Item::Kind::kBytes;
  item.bytes.assign(data.begin(), data.end());
  Items(section_).push_back(std::move(item));
}

void Program::Zero(uint32_t count) {
  Item item;
  item.kind = Item::Kind::kZero;
  item.value = count;
  Items(section_).push_back(std::move(item));
}

void Program::Align(uint32_t alignment) {
  PARFAIT_CHECK(alignment != 0 && (alignment & (alignment - 1)) == 0);
  Item item;
  item.kind = Item::Kind::kAlign;
  item.value = alignment;
  Items(section_).push_back(std::move(item));
}

Result<Image> Program::Link(uint32_t rom_base, uint32_t ram_base) const {
  // Section layout.
  uint32_t text_size = AlignUp(SectionSize(Section::kText), 4);
  uint32_t rodata_size = AlignUp(SectionSize(Section::kRodata), 4);
  uint32_t data_size = AlignUp(SectionSize(Section::kData), 4);
  uint32_t bss_size = AlignUp(SectionSize(Section::kBss), 4);

  uint32_t text_addr = rom_base;
  uint32_t rodata_addr = text_addr + text_size;
  uint32_t data_lma = rodata_addr + rodata_size;
  uint32_t data_addr = ram_base;
  uint32_t bss_addr = data_addr + data_size;

  std::map<std::string, uint32_t> symbols = constants_;
  for (const auto& [name, def] : labels_) {
    uint32_t base = 0;
    switch (def.section) {
      case Section::kText: base = text_addr; break;
      case Section::kRodata: base = rodata_addr; break;
      case Section::kData: base = data_addr; break;
      case Section::kBss: base = bss_addr; break;
    }
    if (symbols.count(name) != 0) {
      return Result<Image>::Error("duplicate symbol: " + name);
    }
    symbols[name] = base + static_cast<uint32_t>(def.offset);
  }
  symbols["__data_lma"] = data_lma;
  symbols["__data_start"] = data_addr;
  symbols["__data_size"] = data_size;
  symbols["__bss_start"] = bss_addr;
  symbols["__bss_size"] = bss_size;

  auto lookup = [&](const std::string& name, uint32_t* out) {
    auto it = symbols.find(name);
    if (it == symbols.end()) {
      return false;
    }
    *out = it->second;
    return true;
  };

  Image image;
  image.rom_base = rom_base;
  image.ram_base = ram_base;
  image.bss_size = bss_size;
  image.data_size = data_size;
  image.symbols = symbols;
  image.rom.resize(text_size + rodata_size + data_size);

  // Build the symbol side table. Extents for symbols without a producer-declared size
  // come from the label layout: a function spans to the next *function* in its section
  // (local branch labels inside it do not end it), an object to the next label of any
  // kind. The section end bounds both.
  uint32_t section_sizes[4] = {text_size, rodata_size, data_size, bss_size};
  for (const auto& [name, def] : labels_) {
    SymbolInfo info;
    info.name = name;
    info.addr = symbols.at(name);
    info.section = def.section;
    auto meta_it = meta_.find(name);
    if (meta_it != meta_.end()) {
      info.kind = meta_it->second.kind;
      info.size = meta_it->second.size;
      info.annotations = meta_it->second.annotations;
    }
    if (info.size == 0 && info.kind != SymbolKind::kLabel) {
      uint32_t end = section_sizes[static_cast<size_t>(def.section)];
      for (const auto& [other, other_def] : labels_) {
        if (other_def.section != def.section || other_def.offset <= def.offset ||
            other == name) {
          continue;
        }
        if (info.kind == SymbolKind::kFunction) {
          auto other_meta = meta_.find(other);
          if (other_meta == meta_.end() ||
              other_meta->second.kind != SymbolKind::kFunction) {
            continue;
          }
        }
        end = std::min(end, static_cast<uint32_t>(other_def.offset));
      }
      info.size = end - static_cast<uint32_t>(def.offset);
    }
    image.symbol_table.push_back(std::move(info));
  }
  std::sort(image.symbol_table.begin(), image.symbol_table.end(),
            [](const SymbolInfo& a, const SymbolInfo& b) {
              return a.addr != b.addr ? a.addr < b.addr : a.name < b.name;
            });

  std::string error;
  auto emit_section = [&](Section s, uint32_t section_addr, uint32_t rom_offset) -> bool {
    uint32_t offset = 0;
    for (const auto& item : Items(s)) {
      uint32_t addr = section_addr + offset;
      switch (item.kind) {
        case Item::Kind::kInstr: {
          Instr instr = item.instr.instr;
          if (item.instr.reloc != Reloc::kNone) {
            uint32_t target;
            if (!lookup(item.instr.symbol, &target)) {
              error = "undefined symbol: " + item.instr.symbol;
              return false;
            }
            target += static_cast<uint32_t>(item.instr.addend);
            switch (item.instr.reloc) {
              case Reloc::kBranch: {
                int64_t delta = static_cast<int64_t>(target) - addr;
                if (delta < -4096 || delta > 4094 || (delta & 1) != 0) {
                  error = "branch target out of range: " + item.instr.symbol;
                  return false;
                }
                instr.imm = static_cast<int32_t>(delta);
                break;
              }
              case Reloc::kJal: {
                int64_t delta = static_cast<int64_t>(target) - addr;
                if (delta < -(1 << 20) || delta >= (1 << 20) || (delta & 1) != 0) {
                  error = "jal target out of range: " + item.instr.symbol;
                  return false;
                }
                instr.imm = static_cast<int32_t>(delta);
                break;
              }
              case Reloc::kHi:
                instr.imm = static_cast<int32_t>(HiPart(target));
                break;
              case Reloc::kLo:
                instr.imm = LoPart(target);
                break;
              case Reloc::kNone:
                break;
            }
          }
          StoreLe32(image.rom.data() + rom_offset + offset, Encode(instr));
          offset += 4;
          break;
        }
        case Item::Kind::kWord:
          StoreLe32(image.rom.data() + rom_offset + offset, item.value);
          offset += 4;
          break;
        case Item::Kind::kWordSymbol: {
          uint32_t target;
          if (!lookup(item.symbol, &target)) {
            error = "undefined symbol: " + item.symbol;
            return false;
          }
          StoreLe32(image.rom.data() + rom_offset + offset, target);
          offset += 4;
          break;
        }
        case Item::Kind::kBytes:
          std::memcpy(image.rom.data() + rom_offset + offset, item.bytes.data(),
                      item.bytes.size());
          offset += static_cast<uint32_t>(item.bytes.size());
          break;
        case Item::Kind::kZero:
          offset += item.value;
          break;
        case Item::Kind::kAlign:
          offset = AlignUp(offset, item.value);
          break;
      }
    }
    return true;
  };

  if (!emit_section(Section::kText, text_addr, 0) ||
      !emit_section(Section::kRodata, rodata_addr, text_size) ||
      !emit_section(Section::kData, data_addr, text_size + rodata_size)) {
    return Result<Image>::Error(error);
  }
  // .bss emits nothing; it only contributes symbols and bss_size.
  if (SectionSize(Section::kBss) != 0) {
    for (const auto& item : Items(Section::kBss)) {
      if (item.kind != Item::Kind::kZero && item.kind != Item::Kind::kAlign) {
        return Result<Image>::Error(".bss may only contain .zero/.align");
      }
    }
  }
  return image;
}

namespace {

// ----- Text parsing -----

struct Operand {
  enum class Kind { kReg, kImm, kSym, kHi, kLo, kMem } kind;
  uint8_t reg = 0;       // kReg / kMem base register.
  int32_t imm = 0;       // kImm / kMem offset / addend for kHi/kLo.
  std::string symbol;    // kSym / kHi / kLo / kMem-with-symbol (unused).
};

class Parser {
 public:
  explicit Parser(const std::string& source) : source_(source) {}

  Result<Program> Parse() {
    std::istringstream in(source_);
    std::string line;
    int line_no = 0;
    while (std::getline(in, line)) {
      line_no++;
      if (!ParseLine(line)) {
        return Result<Program>::Error("line " + std::to_string(line_no) + ": " + error_ +
                                      " [" + line + "]");
      }
    }
    return std::move(program_);
  }

 private:
  static std::string Strip(const std::string& s) {
    size_t b = s.find_first_not_of(" \t\r");
    if (b == std::string::npos) {
      return "";
    }
    size_t e = s.find_last_not_of(" \t\r");
    return s.substr(b, e - b + 1);
  }

  bool Fail(const std::string& msg) {
    error_ = msg;
    return false;
  }

  bool ParseLine(std::string line) {
    // Strip comments.
    for (const char* marker : {"#", "//", ";"}) {
      size_t pos = line.find(marker);
      if (pos != std::string::npos) {
        line = line.substr(0, pos);
      }
    }
    line = Strip(line);
    if (line.empty()) {
      return true;
    }
    // Labels (possibly several per line).
    while (true) {
      size_t colon = line.find(':');
      if (colon == std::string::npos) {
        break;
      }
      std::string label = Strip(line.substr(0, colon));
      if (label.empty() || label.find(' ') != std::string::npos) {
        break;  // Not a label (e.g. an operand list with ':').
      }
      program_.DefineLabel(label);
      line = Strip(line.substr(colon + 1));
      if (line.empty()) {
        return true;
      }
    }
    if (line[0] == '.') {
      return ParseDirective(line);
    }
    return ParseInstruction(line);
  }

  bool ParseDirective(const std::string& line) {
    std::string name;
    std::string rest;
    size_t space = line.find_first_of(" \t");
    if (space == std::string::npos) {
      name = line;
    } else {
      name = line.substr(0, space);
      rest = Strip(line.substr(space + 1));
    }
    if (name == ".text") {
      program_.SetSection(Section::kText);
    } else if (name == ".rodata" || name == ".section.rodata") {
      program_.SetSection(Section::kRodata);
    } else if (name == ".data") {
      program_.SetSection(Section::kData);
    } else if (name == ".bss") {
      program_.SetSection(Section::kBss);
    } else if (name == ".type") {
      // `.type name, @function` / `.type name, @object` feeds the symbol side table.
      std::vector<std::string> parts = SplitCommas(rest);
      if (parts.size() != 2) {
        return Fail(".type needs name, @kind");
      }
      if (parts[1] == "@function" || parts[1] == "%function") {
        program_.MarkFunction(parts[0]);
      } else if (parts[1] == "@object" || parts[1] == "%object") {
        program_.MarkObject(parts[0], 0);
      } else {
        return Fail("unknown .type kind " + parts[1]);
      }
    } else if (name == ".globl" || name == ".global" || name == ".size" ||
               name == ".option" || name == ".attribute" || name == ".file" ||
               name == ".ident" || name == ".section") {
      // Accepted and ignored; all symbols are global here.
    } else if (name == ".equ" || name == ".set") {
      size_t comma = rest.find(',');
      if (comma == std::string::npos) {
        return Fail(".equ needs name, value");
      }
      std::string sym = Strip(rest.substr(0, comma));
      int64_t value;
      if (!ParseNumber(Strip(rest.substr(comma + 1)), &value)) {
        return Fail(".equ value must be numeric");
      }
      program_.DefineConstant(sym, static_cast<uint32_t>(value));
    } else if (name == ".word") {
      for (const std::string& tok : SplitCommas(rest)) {
        int64_t value;
        if (ParseNumber(tok, &value)) {
          program_.Word(static_cast<uint32_t>(value));
        } else {
          program_.WordSymbol(tok);
        }
      }
    } else if (name == ".byte") {
      Bytes bytes;
      for (const std::string& tok : SplitCommas(rest)) {
        int64_t value;
        if (!ParseNumber(tok, &value)) {
          return Fail("bad .byte value");
        }
        bytes.push_back(static_cast<uint8_t>(value));
      }
      program_.ByteData(bytes);
    } else if (name == ".zero" || name == ".space" || name == ".skip") {
      int64_t value;
      if (!ParseNumber(rest, &value) || value < 0) {
        return Fail("bad .zero size");
      }
      program_.Zero(static_cast<uint32_t>(value));
    } else if (name == ".align" || name == ".balign" || name == ".p2align") {
      int64_t value;
      if (!ParseNumber(rest, &value) || value < 0) {
        return Fail("bad alignment");
      }
      uint32_t alignment = (name == ".balign") ? static_cast<uint32_t>(value)
                                               : 1u << static_cast<uint32_t>(value);
      program_.Align(alignment);
    } else {
      return Fail("unknown directive " + name);
    }
    return true;
  }

  static std::vector<std::string> SplitCommas(const std::string& s) {
    std::vector<std::string> out;
    std::string cur;
    int depth = 0;
    for (char c : s) {
      if (c == '(') {
        depth++;
      }
      if (c == ')') {
        depth--;
      }
      if (c == ',' && depth == 0) {
        out.push_back(Strip(cur));
        cur.clear();
      } else {
        cur.push_back(c);
      }
    }
    std::string last = Strip(cur);
    if (!last.empty()) {
      out.push_back(last);
    }
    return out;
  }

  static bool ParseNumber(const std::string& s, int64_t* out) {
    if (s.empty()) {
      return false;
    }
    char* end = nullptr;
    errno = 0;
    long long v = strtoll(s.c_str(), &end, 0);
    if (end != s.c_str() + s.size() || errno != 0) {
      return false;
    }
    *out = v;
    return true;
  }

  bool ParseOperand(const std::string& tok, Operand* out) {
    if (auto reg = RegFromName(tok); reg.has_value()) {
      out->kind = Operand::Kind::kReg;
      out->reg = *reg;
      return true;
    }
    if (int64_t value; ParseNumber(tok, &value)) {
      out->kind = Operand::Kind::kImm;
      out->imm = static_cast<int32_t>(value);
      return true;
    }
    if (tok.rfind("%hi(", 0) == 0 || tok.rfind("%lo(", 0) == 0) {
      bool hi = tok[1] == 'h';
      size_t close = tok.rfind(')');
      if (close == std::string::npos) {
        return Fail("unterminated %hi/%lo");
      }
      std::string inner = tok.substr(4, close - 4);
      int32_t addend = 0;
      size_t plus = inner.find('+');
      if (plus != std::string::npos) {
        int64_t a;
        if (!ParseNumber(Strip(inner.substr(plus + 1)), &a)) {
          return Fail("bad %hi/%lo addend");
        }
        addend = static_cast<int32_t>(a);
        inner = Strip(inner.substr(0, plus));
      }
      out->kind = hi ? Operand::Kind::kHi : Operand::Kind::kLo;
      out->symbol = inner;
      out->imm = addend;
      return true;
    }
    // Memory operand: imm(reg) or (reg) or %lo(sym)(reg).
    size_t open = tok.rfind('(');
    if (open != std::string::npos && tok.back() == ')') {
      std::string reg_str = tok.substr(open + 1, tok.size() - open - 2);
      auto reg = RegFromName(reg_str);
      if (reg.has_value()) {
        std::string offset_str = Strip(tok.substr(0, open));
        out->kind = Operand::Kind::kMem;
        out->reg = *reg;
        out->imm = 0;
        out->symbol.clear();
        if (!offset_str.empty()) {
          if (offset_str.rfind("%lo(", 0) == 0 && offset_str.back() == ')') {
            out->symbol = offset_str.substr(4, offset_str.size() - 5);
          } else {
            int64_t value;
            if (!ParseNumber(offset_str, &value)) {
              return Fail("bad memory offset: " + offset_str);
            }
            out->imm = static_cast<int32_t>(value);
          }
        }
        return true;
      }
    }
    // Bare symbol.
    out->kind = Operand::Kind::kSym;
    out->symbol = tok;
    return true;
  }

  void EmitLi(uint8_t rd, int64_t value) {
    if (FitsSigned12(value)) {
      program_.Emit(Instr{Op::kAddi, rd, 0, 0, static_cast<int32_t>(value)});
      return;
    }
    uint32_t v = static_cast<uint32_t>(value);
    uint32_t hi = HiPart(v);
    int32_t lo = LoPart(v);
    program_.Emit(Instr{Op::kLui, rd, 0, 0, static_cast<int32_t>(hi)});
    if (lo != 0) {
      program_.Emit(Instr{Op::kAddi, rd, rd, 0, lo});
    }
  }

  bool ParseInstruction(const std::string& line) {
    std::string mnem;
    std::string rest;
    size_t space = line.find_first_of(" \t");
    if (space == std::string::npos) {
      mnem = line;
    } else {
      mnem = line.substr(0, space);
      rest = Strip(line.substr(space + 1));
    }
    std::vector<std::string> toks = SplitCommas(rest);
    std::vector<Operand> ops(toks.size());
    for (size_t i = 0; i < toks.size(); i++) {
      if (!ParseOperand(toks[i], &ops[i])) {
        return false;
      }
    }
    auto is_reg = [&](size_t i) { return i < ops.size() && ops[i].kind == Operand::Kind::kReg; };
    auto is_imm = [&](size_t i) { return i < ops.size() && ops[i].kind == Operand::Kind::kImm; };
    auto is_sym = [&](size_t i) { return i < ops.size() && ops[i].kind == Operand::Kind::kSym; };
    auto is_mem = [&](size_t i) { return i < ops.size() && ops[i].kind == Operand::Kind::kMem; };

    // Pseudo-instructions first.
    if (mnem == "nop") {
      program_.Emit(Instr{Op::kAddi, 0, 0, 0, 0});
      return true;
    }
    if (mnem == "mv") {
      if (!is_reg(0) || !is_reg(1)) {
        return Fail("mv rd, rs");
      }
      program_.Emit(Instr{Op::kAddi, ops[0].reg, ops[1].reg, 0, 0});
      return true;
    }
    if (mnem == "li") {
      if (!is_reg(0) || !is_imm(1)) {
        return Fail("li rd, imm");
      }
      EmitLi(ops[0].reg, ops[1].imm);
      return true;
    }
    if (mnem == "la") {
      if (!is_reg(0) || !is_sym(1)) {
        return Fail("la rd, symbol");
      }
      program_.Emit(AsmInstr{Instr{Op::kLui, ops[0].reg, 0, 0, 0}, Reloc::kHi, ops[1].symbol, 0});
      program_.Emit(AsmInstr{Instr{Op::kAddi, ops[0].reg, ops[0].reg, 0, 0}, Reloc::kLo,
                             ops[1].symbol, 0});
      return true;
    }
    if (mnem == "j") {
      if (!is_sym(0)) {
        return Fail("j label");
      }
      program_.Emit(AsmInstr{Instr{Op::kJal, 0, 0, 0, 0}, Reloc::kJal, ops[0].symbol, 0});
      return true;
    }
    if (mnem == "jr") {
      if (!is_reg(0)) {
        return Fail("jr rs");
      }
      program_.Emit(Instr{Op::kJalr, 0, ops[0].reg, 0, 0});
      return true;
    }
    if (mnem == "ret") {
      program_.Emit(Instr{Op::kJalr, 0, 1, 0, 0});
      return true;
    }
    if (mnem == "call") {
      if (!is_sym(0)) {
        return Fail("call symbol");
      }
      program_.Emit(AsmInstr{Instr{Op::kJal, 1, 0, 0, 0}, Reloc::kJal, ops[0].symbol, 0});
      return true;
    }
    if (mnem == "beqz" || mnem == "bnez") {
      if (!is_reg(0) || !is_sym(1)) {
        return Fail(mnem + " rs, label");
      }
      Op op = (mnem == "beqz") ? Op::kBeq : Op::kBne;
      program_.Emit(AsmInstr{Instr{op, 0, ops[0].reg, 0, 0}, Reloc::kBranch, ops[1].symbol, 0});
      return true;
    }
    if (mnem == "not") {
      if (!is_reg(0) || !is_reg(1)) {
        return Fail("not rd, rs");
      }
      program_.Emit(Instr{Op::kXori, ops[0].reg, ops[1].reg, 0, -1});
      return true;
    }
    if (mnem == "neg") {
      if (!is_reg(0) || !is_reg(1)) {
        return Fail("neg rd, rs");
      }
      program_.Emit(Instr{Op::kSub, ops[0].reg, 0, ops[1].reg, 0});
      return true;
    }
    if (mnem == "seqz") {
      if (!is_reg(0) || !is_reg(1)) {
        return Fail("seqz rd, rs");
      }
      program_.Emit(Instr{Op::kSltiu, ops[0].reg, ops[1].reg, 0, 1});
      return true;
    }
    if (mnem == "snez") {
      if (!is_reg(0) || !is_reg(1)) {
        return Fail("snez rd, rs");
      }
      program_.Emit(Instr{Op::kSltu, ops[0].reg, 0, ops[1].reg, 0});
      return true;
    }
    if (mnem == "bgt" || mnem == "ble" || mnem == "bgtu" || mnem == "bleu") {
      if (!is_reg(0) || !is_reg(1) || !is_sym(2)) {
        return Fail(mnem + " rs1, rs2, label");
      }
      Op op = (mnem == "bgt") ? Op::kBlt : (mnem == "ble") ? Op::kBge
              : (mnem == "bgtu") ? Op::kBltu : Op::kBgeu;
      // Swapped operands.
      program_.Emit(AsmInstr{Instr{op, 0, ops[1].reg, ops[0].reg, 0}, Reloc::kBranch,
                             ops[2].symbol, 0});
      return true;
    }

    auto op = OpFromMnemonic(mnem);
    if (!op.has_value()) {
      return Fail("unknown mnemonic " + mnem);
    }
    Instr instr{*op, 0, 0, 0, 0};
    switch (*op) {
      case Op::kLui:
      case Op::kAuipc:
        if (!is_reg(0)) {
          return Fail("lui/auipc rd, imm");
        }
        instr.rd = ops[0].reg;
        if (is_imm(1)) {
          instr.imm = static_cast<int32_t>(static_cast<uint32_t>(ops[1].imm) << 12);
          program_.Emit(instr);
        } else if (ops.size() > 1 && ops[1].kind == Operand::Kind::kHi) {
          program_.Emit(AsmInstr{instr, Reloc::kHi, ops[1].symbol, ops[1].imm});
        } else {
          return Fail("lui operand must be imm or %hi()");
        }
        return true;
      case Op::kJal:
        if (ops.size() == 1 && is_sym(0)) {
          program_.Emit(AsmInstr{Instr{Op::kJal, 1, 0, 0, 0}, Reloc::kJal, ops[0].symbol, 0});
          return true;
        }
        if (is_reg(0) && is_sym(1)) {
          program_.Emit(AsmInstr{Instr{Op::kJal, ops[0].reg, 0, 0, 0}, Reloc::kJal,
                                 ops[1].symbol, 0});
          return true;
        }
        if (is_reg(0) && is_imm(1)) {
          // Numeric pc-relative offset (disassembler round-trip form).
          program_.Emit(Instr{Op::kJal, ops[0].reg, 0, 0, ops[1].imm});
          return true;
        }
        return Fail("jal [rd,] label");
      case Op::kJalr:
        if (ops.size() == 1 && is_reg(0)) {
          program_.Emit(Instr{Op::kJalr, 1, ops[0].reg, 0, 0});
          return true;
        }
        if (is_reg(0) && is_mem(1)) {
          program_.Emit(Instr{Op::kJalr, ops[0].reg, ops[1].reg, 0, ops[1].imm});
          return true;
        }
        if (is_reg(0) && is_reg(1) && is_imm(2)) {
          program_.Emit(Instr{Op::kJalr, ops[0].reg, ops[1].reg, 0, ops[2].imm});
          return true;
        }
        return Fail("jalr forms: jalr rs | jalr rd, imm(rs1) | jalr rd, rs1, imm");
      case Op::kBeq:
      case Op::kBne:
      case Op::kBlt:
      case Op::kBge:
      case Op::kBltu:
      case Op::kBgeu:
        if (!is_reg(0) || !is_reg(1) || (!is_sym(2) && !is_imm(2))) {
          return Fail("branch rs1, rs2, label");
        }
        instr.rs1 = ops[0].reg;
        instr.rs2 = ops[1].reg;
        if (is_imm(2)) {
          // Numeric pc-relative offset (disassembler round-trip form).
          instr.imm = ops[2].imm;
          program_.Emit(instr);
        } else {
          program_.Emit(AsmInstr{instr, Reloc::kBranch, ops[2].symbol, 0});
        }
        return true;
      case Op::kLb:
      case Op::kLh:
      case Op::kLw:
      case Op::kLbu:
      case Op::kLhu:
        if (!is_reg(0) || !is_mem(1)) {
          return Fail("load rd, imm(rs1)");
        }
        instr.rd = ops[0].reg;
        instr.rs1 = ops[1].reg;
        if (!ops[1].symbol.empty()) {
          program_.Emit(AsmInstr{instr, Reloc::kLo, ops[1].symbol, 0});
        } else {
          instr.imm = ops[1].imm;
          program_.Emit(instr);
        }
        return true;
      case Op::kSb:
      case Op::kSh:
      case Op::kSw:
        if (!is_reg(0) || !is_mem(1)) {
          return Fail("store rs2, imm(rs1)");
        }
        instr.rs2 = ops[0].reg;
        instr.rs1 = ops[1].reg;
        if (!ops[1].symbol.empty()) {
          program_.Emit(AsmInstr{instr, Reloc::kLo, ops[1].symbol, 0});
        } else {
          instr.imm = ops[1].imm;
          program_.Emit(instr);
        }
        return true;
      case Op::kAddi:
      case Op::kSlti:
      case Op::kSltiu:
      case Op::kXori:
      case Op::kOri:
      case Op::kAndi:
      case Op::kSlli:
      case Op::kSrli:
      case Op::kSrai:
        if (!is_reg(0) || !is_reg(1)) {
          return Fail("imm-op rd, rs1, imm");
        }
        instr.rd = ops[0].reg;
        instr.rs1 = ops[1].reg;
        if (is_imm(2)) {
          instr.imm = ops[2].imm;
          program_.Emit(instr);
        } else if (ops.size() > 2 && ops[2].kind == Operand::Kind::kLo) {
          program_.Emit(AsmInstr{instr, Reloc::kLo, ops[2].symbol, ops[2].imm});
        } else {
          return Fail("imm-op operand 3 must be imm or %lo()");
        }
        return true;
      case Op::kFence:
      case Op::kEcall:
      case Op::kEbreak:
        program_.Emit(instr);
        return true;
      default:
        // R-type.
        if (!is_reg(0) || !is_reg(1) || !is_reg(2)) {
          return Fail("r-op rd, rs1, rs2");
        }
        instr.rd = ops[0].reg;
        instr.rs1 = ops[1].reg;
        instr.rs2 = ops[2].reg;
        program_.Emit(instr);
        return true;
    }
  }

  const std::string& source_;
  Program program_;
  std::string error_;
};

}  // namespace

Result<Program> ParseAssembly(const std::string& source) { return Parser(source).Parse(); }

}  // namespace parfait::riscv
