// Block translation and threaded execution for the DBT backend (see translator.h).
//
// Correctness is anchored to StepImpl in machine.cc: every handler below reproduces
// that switch's semantics for its opcode — operand definedness propagation, fault
// strings, the no-advance-on-fault rule, and exact instret accounting — while memory
// traffic goes through the same LoadBytes/StoreBytes the interpreter uses. pc_ and
// instret_ are only materialized at block boundaries (or at the faulting
// instruction), which is where the speedup comes from.
#include "src/riscv/translator.h"

#include <optional>

#include "src/support/bytes.h"
#include "src/support/profiler.h"
#include "src/support/status.h"

#if defined(__GNUC__) || defined(__clang__)
#define PARFAIT_DBT_THREADED 1
#else
#define PARFAIT_DBT_THREADED 0
#endif

namespace parfait::riscv {

namespace {

// Superblock length cap, in micro-ops. Long enough that straight-line crypto code
// amortizes dispatch, short enough that the step-budget tail (interpreted one
// instruction at a time) stays negligible.
constexpr size_t kMaxBlockInstrs = 64;

// What the translator sees at one word: a decoded instruction, or why not.
struct FetchedWord {
  enum Kind : uint8_t {
    kInstr,
    kUndecodable,  // In range, defined, does not decode in RV32IM.
    kUndefined,    // In range, at least one undefined byte.
    kOutside,      // Past the cache / region.
  };
  Kind kind = kOutside;
  Instr instr{};
};

// kFetchFault reason selectors (MicroOp::imm).
constexpr int32_t kFaultUndecodable = 0;
constexpr int32_t kFaultUndefined = 1;
constexpr int32_t kFaultOutside = 2;

}  // namespace

// Translates one superblock starting at start_pc. Straight-line code is appended
// op by op; unconditional jal edges are followed inline (the link write becomes a
// kConst, the jump disappears) until a cycle, the length cap, or an untranslatable
// word cuts the block. The fetch callback abstracts the source: shared DecodeCache
// entries for ROM, region bytes + definedness for writable memory.
template <typename FetchFn>
std::unique_ptr<Block> Dbt::BuildBlock(uint32_t start_pc, FetchFn&& fetch,
                                       bool watch_stores) {
  auto b = std::make_unique<Block>();
  b->start_pc = start_pc;
  b->watch_stores = watch_stores;
  uint32_t pc = start_pc;
  bool synthetic_tail = false;  // Last op retires nothing (kFallthrough/kFetchFault).

  auto push = [&](Mk kind, uint8_t rd, uint8_t rs1, uint8_t rs2, int32_t imm,
                  uint32_t at) {
    b->ops.push_back(MicroOp{kind, rd, rs1, rs2, imm, at});
  };
  // Source coverage for store invalidation (watch_stores blocks only).
  auto cover = [&](uint32_t word_pc) {
    if (!watch_stores) {
      return;
    }
    if (!b->ranges.empty() &&
        b->ranges.back().first + b->ranges.back().second == word_pc) {
      b->ranges.back().second += 4;
    } else {
      b->ranges.emplace_back(word_pc, 4);
    }
  };
  // Cycle guard for jal inlining: true iff this block already emitted an op for
  // `target` (following it again would loop forever at translation or run time).
  auto already_emitted = [&](uint32_t target) {
    for (const MicroOp& op : b->ops) {
      if (op.pc == target) {
        return true;
      }
    }
    return false;
  };

  for (;;) {
    if (b->ops.size() >= kMaxBlockInstrs) {
      push(Mk::kFallthrough, 0, 0, 0, static_cast<int32_t>(pc), pc);
      b->has_taken = true;
      b->taken_target = pc;
      synthetic_tail = true;
      break;
    }
    FetchedWord w = fetch(pc);
    if (w.kind != FetchedWord::kInstr) {
      if (b->ops.empty()) {
        // The block *starts* on an untranslatable word: cache the fault itself.
        // (kOutside cannot happen here — dispatch proved the pc readable — but is
        // handled for robustness.)
        int32_t reason = w.kind == FetchedWord::kUndecodable ? kFaultUndecodable
                         : w.kind == FetchedWord::kUndefined ? kFaultUndefined
                                                             : kFaultOutside;
        if (w.kind != FetchedWord::kOutside) {
          cover(pc);
        }
        push(Mk::kFetchFault, 0, 0, 0, reason, pc);
      } else {
        // Mid-block cut: retire what we have and let dispatch fault (or find a
        // fresher translation) at `pc`.
        push(Mk::kFallthrough, 0, 0, 0, static_cast<int32_t>(pc), pc);
        b->has_taken = true;
        b->taken_target = pc;
      }
      synthetic_tail = true;
      break;
    }
    const Instr& in = w.instr;
    cover(pc);
    bool terminated = false;
    switch (in.op) {
      case Op::kLui:
        if (in.rd != 0) {
          push(Mk::kConst, in.rd, 0, 0, in.imm, pc);
        } else {
          push(Mk::kNop, 0, 0, 0, 0, pc);
        }
        break;
      case Op::kAuipc:
        if (in.rd != 0) {
          push(Mk::kConst, in.rd, 0, 0,
               static_cast<int32_t>(pc + static_cast<uint32_t>(in.imm)), pc);
        } else {
          push(Mk::kNop, 0, 0, 0, 0, pc);
        }
        break;
      case Op::kJal: {
        uint32_t target = pc + static_cast<uint32_t>(in.imm);
        bool can_inline = (target & 3) == 0 && target != pc && !already_emitted(target) &&
                          b->ops.size() + 1 < kMaxBlockInstrs;
        if (can_inline) {
          // The jump dissolves: retire the jal as its link write and keep
          // translating at the target.
          if (in.rd != 0) {
            push(Mk::kConst, in.rd, 0, 0, static_cast<int32_t>(pc + 4), pc);
          } else {
            push(Mk::kNop, 0, 0, 0, 0, pc);
          }
          pc = target;
          continue;
        }
        push(in.rd != 0 ? Mk::kJal : Mk::kJ, in.rd, 0, 0, static_cast<int32_t>(target),
             pc);
        b->has_taken = true;
        b->taken_target = target;
        terminated = true;
        break;
      }
      case Op::kJalr:
        push(Mk::kJalr, in.rd, in.rs1, 0, in.imm, pc);
        terminated = true;
        break;
      case Op::kBeq:
      case Op::kBne:
      case Op::kBlt:
      case Op::kBge:
      case Op::kBltu:
      case Op::kBgeu: {
        Mk kind = in.op == Op::kBeq    ? Mk::kBeq
                  : in.op == Op::kBne  ? Mk::kBne
                  : in.op == Op::kBlt  ? Mk::kBlt
                  : in.op == Op::kBge  ? Mk::kBge
                  : in.op == Op::kBltu ? Mk::kBltu
                                       : Mk::kBgeu;
        uint32_t target = pc + static_cast<uint32_t>(in.imm);
        push(kind, 0, in.rs1, in.rs2, static_cast<int32_t>(target), pc);
        b->has_taken = true;
        b->taken_target = target;
        b->has_fall = true;
        b->fall_target = pc + 4;
        terminated = true;
        break;
      }
      case Op::kLb:
        push(Mk::kLb, in.rd, in.rs1, 0, in.imm, pc);
        break;
      case Op::kLh:
        push(Mk::kLh, in.rd, in.rs1, 0, in.imm, pc);
        break;
      case Op::kLw:
        push(Mk::kLw, in.rd, in.rs1, 0, in.imm, pc);
        break;
      case Op::kLbu:
        push(Mk::kLbu, in.rd, in.rs1, 0, in.imm, pc);
        break;
      case Op::kLhu:
        push(Mk::kLhu, in.rd, in.rs1, 0, in.imm, pc);
        break;
      case Op::kSb:
        push(Mk::kSb, 0, in.rs1, in.rs2, in.imm, pc);
        break;
      case Op::kSh:
        push(Mk::kSh, 0, in.rs1, in.rs2, in.imm, pc);
        break;
      case Op::kSw:
        push(Mk::kSw, 0, in.rs1, in.rs2, in.imm, pc);
        break;
      case Op::kAddi:
      case Op::kSlti:
      case Op::kSltiu:
      case Op::kXori:
      case Op::kOri:
      case Op::kAndi:
      case Op::kSlli:
      case Op::kSrli:
      case Op::kSrai: {
        if (in.rd == 0) {
          // Writes to x0 are architectural no-ops; the operand read cannot fault.
          push(Mk::kNop, 0, 0, 0, 0, pc);
          break;
        }
        Mk kind = in.op == Op::kAddi    ? Mk::kAddi
                  : in.op == Op::kSlti  ? Mk::kSlti
                  : in.op == Op::kSltiu ? Mk::kSltiu
                  : in.op == Op::kXori  ? Mk::kXori
                  : in.op == Op::kOri   ? Mk::kOri
                  : in.op == Op::kAndi  ? Mk::kAndi
                  : in.op == Op::kSlli  ? Mk::kSlli
                  : in.op == Op::kSrli  ? Mk::kSrli
                                        : Mk::kSrai;
        bool shift = in.op == Op::kSlli || in.op == Op::kSrli || in.op == Op::kSrai;
        push(kind, in.rd, in.rs1, 0, shift ? (in.imm & 31) : in.imm, pc);
        break;
      }
      case Op::kAdd:
      case Op::kSub:
      case Op::kSll:
      case Op::kSlt:
      case Op::kSltu:
      case Op::kXor:
      case Op::kSrl:
      case Op::kSra:
      case Op::kOr:
      case Op::kAnd:
      case Op::kMul:
      case Op::kMulh:
      case Op::kMulhsu:
      case Op::kMulhu:
      case Op::kDiv:
      case Op::kDivu:
      case Op::kRem:
      case Op::kRemu: {
        if (in.rd == 0) {
          push(Mk::kNop, 0, 0, 0, 0, pc);
          break;
        }
        Mk kind;
        switch (in.op) {
          case Op::kAdd: kind = Mk::kAdd; break;
          case Op::kSub: kind = Mk::kSub; break;
          case Op::kSll: kind = Mk::kSll; break;
          case Op::kSlt: kind = Mk::kSlt; break;
          case Op::kSltu: kind = Mk::kSltu; break;
          case Op::kXor: kind = Mk::kXor; break;
          case Op::kSrl: kind = Mk::kSrl; break;
          case Op::kSra: kind = Mk::kSra; break;
          case Op::kOr: kind = Mk::kOr; break;
          case Op::kAnd: kind = Mk::kAnd; break;
          case Op::kMul: kind = Mk::kMul; break;
          case Op::kMulh: kind = Mk::kMulh; break;
          case Op::kMulhsu: kind = Mk::kMulhsu; break;
          case Op::kMulhu: kind = Mk::kMulhu; break;
          case Op::kDiv: kind = Mk::kDiv; break;
          case Op::kDivu: kind = Mk::kDivu; break;
          case Op::kRem: kind = Mk::kRem; break;
          default: kind = Mk::kRemu; break;
        }
        push(kind, in.rd, in.rs1, in.rs2, 0, pc);
        break;
      }
      case Op::kFence:
        push(Mk::kNop, 0, 0, 0, 0, pc);
        break;
      case Op::kEcall:
      case Op::kEbreak:
        push(Mk::kHalt, 0, 0, 0, 0, pc);
        terminated = true;
        break;
    }
    if (terminated) {
      break;
    }
    pc += 4;
  }

  b->num_instrs = static_cast<uint32_t>(b->ops.size()) - (synthetic_tail ? 1 : 0);
  return b;
}

SharedTranslationCache::SharedTranslationCache(std::shared_ptr<const DecodeCache> decode)
    : decode_(std::move(decode)), slots_(decode_->words()) {
  PARFAIT_CHECK(decode_ != nullptr);
}

const Block* SharedTranslationCache::Get(uint32_t pc, uint64_t* translated) {
  if (!InRange(pc)) {
    return nullptr;
  }
  size_t idx = (pc - base()) >> 2;
  const Block* hit = slots_[idx].load(std::memory_order_acquire);
  if (hit != nullptr) {
    return hit;
  }

  profiler::TimedLock lock(mu_, profiler::Probe::kTranslateLock);
  hit = slots_[idx].load(std::memory_order_relaxed);
  if (hit != nullptr) {
    return hit;
  }

  auto fetch = [this](uint32_t p) {
    FetchedWord w;
    const DecodeCache::Entry* e = decode_->Lookup(p);
    if (e == nullptr) {
      w.kind = FetchedWord::kOutside;
    } else if (!e->valid) {
      w.kind = FetchedWord::kUndecodable;
    } else {
      w.kind = FetchedWord::kInstr;
      w.instr = e->instr;
    }
    return w;
  };

  // Translate the transitive closure of static successors (branch taken/
  // fallthrough, non-inlined jal, block cuts) in one batch. Because the closure is
  // transitive, every in-range aligned target of every new block is either in this
  // batch or already published — so links resolve completely now and are never
  // touched again, which is what lets readers follow them with plain loads.
  std::unordered_map<uint32_t, Block*> fresh;
  std::vector<uint32_t> work{pc};
  while (!work.empty()) {
    uint32_t p = work.back();
    work.pop_back();
    if (!InRange(p) || fresh.count(p) != 0 ||
        slots_[(p - base()) >> 2].load(std::memory_order_relaxed) != nullptr) {
      continue;
    }
    std::unique_ptr<Block> nb = Dbt::BuildBlock(p, fetch, /*watch_stores=*/false);
    if (nb->has_taken) {
      work.push_back(nb->taken_target);
    }
    if (nb->has_fall) {
      work.push_back(nb->fall_target);
    }
    fresh.emplace(p, nb.get());
    blocks_.push_back(std::move(nb));
  }

  auto resolve = [&](uint32_t target) -> const Block* {
    if (!InRange(target)) {
      return nullptr;
    }
    auto it = fresh.find(target);
    if (it != fresh.end()) {
      return it->second;
    }
    return slots_[(target - base()) >> 2].load(std::memory_order_relaxed);
  };
  for (auto& [p, blk] : fresh) {
    if (blk->has_taken) {
      blk->link_taken = resolve(blk->taken_target);
    }
    if (blk->has_fall) {
      blk->link_fall = resolve(blk->fall_target);
    }
  }
  // Publish the whole batch. A reader's acquire on any slot sees every block and
  // link of this batch (and, transitively through the mutex, of all prior batches).
  for (auto& [p, blk] : fresh) {
    slots_[(p - base()) >> 2].store(blk, std::memory_order_release);
  }
  *translated += fresh.size();
  return fresh.at(pc);
}

const Block* LocalBlockCache::Insert(std::unique_ptr<Block> block) {
  Block* raw = block.get();
  for (auto [addr, len] : raw->ranges) {
    cover_lo_ = std::min(cover_lo_, addr);
    cover_hi_ = std::max(cover_hi_, addr + len);
  }
  blocks_[raw->start_pc] = std::shared_ptr<Block>(std::move(block));
  return raw;
}

uint64_t LocalBlockCache::Invalidate(uint32_t addr, uint32_t size) {
  uint64_t end = static_cast<uint64_t>(addr) + size;
  if (addr >= cover_hi_ || end <= cover_lo_) {
    return 0;
  }
  uint64_t killed = 0;
  for (auto it = blocks_.begin(); it != blocks_.end();) {
    Block& blk = *it->second;
    bool overlaps = false;
    for (auto [a, len] : blk.ranges) {
      if (addr < a + len && a < end) {
        overlaps = true;
        break;
      }
    }
    if (overlaps) {
      // The block may be the one executing this store: mark it dead (the executor
      // bails at the next safe point) and keep the storage alive in the graveyard
      // until dispatch collects it.
      blk.dead = true;
      graveyard_.push_back(std::move(it->second));
      it = blocks_.erase(it);
      killed++;
    } else {
      ++it;
    }
  }
  cover_lo_ = 0xffffffffu;
  cover_hi_ = 0;
  for (const auto& [p, blk] : blocks_) {
    for (auto [a, len] : blk->ranges) {
      cover_lo_ = std::min(cover_lo_, a);
      cover_hi_ = std::max(cover_hi_, a + len);
    }
  }
  return killed;
}

std::unique_ptr<Block> Dbt::TranslateLocal(const Machine::Region& r, uint32_t pc) {
  auto fetch = [&r](uint32_t p) {
    FetchedWord w;
    uint32_t offset = p - r.base;
    if (p < r.base || r.size() < 4 || offset > r.size() - 4 || (p & 3) != 0) {
      w.kind = FetchedWord::kOutside;
    } else if (!Machine::RangeDefined(r, offset, 4)) {
      w.kind = FetchedWord::kUndefined;
    } else {
      std::optional<Instr> decoded = Decode(LoadLe32(r.data.data() + offset));
      if (!decoded.has_value()) {
        w.kind = FetchedWord::kUndecodable;
      } else {
        w.kind = FetchedWord::kInstr;
        w.instr = *decoded;
      }
    }
    return w;
  };
  return BuildBlock(pc, fetch, /*watch_stores=*/true);
}

bool Dbt::Supported() {
#if PARFAIT_DBT_THREADED
  return true;
#else
  return false;
#endif
}

// Executes `b`, chaining through static links while the step budget allows, and
// returns kOk when control must go back to the dispatch loop (pc_/instret_ are
// committed). Fault accounting matches the interpreter exactly: the faulting
// instruction retires nothing, so pc_/instret_ are rewound to it before Fault().
Machine::StepResult Dbt::ExecChain(Machine& m, const Block* b, uint64_t* remaining) {
  Value* const regs = m.regs_.data();
  // Data-region memos, hoisted across the whole chain (the region list cannot
  // change during Run, so the pointers stay valid). Loads keep two slots because
  // firmware alternates constant-table loads from ROM with data loads from RAM;
  // stores keep one (they only ever hit writable regions). A memo hit replaces the
  // member last-hit machinery with one subtract and two compares, no counter
  // traffic; misses fall back to FindRegion and refill.
  const Machine::Region* lreg0 = nullptr;
  const Machine::Region* lreg1 = nullptr;
  Machine::Region* sreg = nullptr;
#define VM_REGION_HIT(r, adr, sz, off)                                 \
  ((r) != nullptr && ((off) = (adr) - (r)->base) < (r)->size() &&      \
   (sz) <= (r)->size() - (off))

#if PARFAIT_DBT_THREADED
  static const void* const kJump[] = {
#define PARFAIT_DBT_LABEL_ADDR(name) &&L_##name,
      PARFAIT_DBT_KINDS(PARFAIT_DBT_LABEL_ADDR)
#undef PARFAIT_DBT_LABEL_ADDR
  };
#define VM_CASE(name) L_##name:
#define VM_DISPATCH() goto* kJump[static_cast<size_t>(op->kind)]
#else
#define VM_CASE(name) case Mk::name:
#define VM_DISPATCH() goto vm_dispatch
#endif
#define VM_NEXT()     \
  do {                \
    ++op;             \
    VM_DISPATCH();    \
  } while (0)
#define VM_FAULT(reason)                            \
  do {                                              \
    m.instret_ += static_cast<uint64_t>(op - ops0); \
    m.pc_ = op->pc;                                 \
    return m.Fault(reason);                         \
  } while (0)

  for (;;) {
    const MicroOp* const ops0 = b->ops.data();
    const MicroOp* op = ops0;
    const bool watch = b->watch_stores;
    uint32_t next_pc = 0;
    const Block* link = nullptr;

#if PARFAIT_DBT_THREADED
    VM_DISPATCH();
#else
  vm_dispatch:
    switch (op->kind) {
#endif

    VM_CASE(kNop) { VM_NEXT(); }

    VM_CASE(kConst) {
      regs[op->rd] = Value::Defined(static_cast<uint32_t>(op->imm));
      VM_NEXT();
    }

// ALU with immediate operand. rd != x0 by construction (x0 writes fold to kNop at
// translation). An undefined rs1 poisons rd instead of faulting — CompCert's
// Vundef propagation, same as the interpreter.
#define VM_ALU_RI(name, expr)                             \
  VM_CASE(name) {                                         \
    Value a = regs[op->rs1];                              \
    if (__builtin_expect(!a.defined, 0)) {                \
      asm volatile("");                                   \
      regs[op->rd] = Value::Undef();                      \
      VM_NEXT();                                          \
    }                                                     \
    uint32_t lhs = a.bits;                                \
    (void)lhs;                                            \
    regs[op->rd] = Value::Defined((expr));                \
    VM_NEXT();                                            \
  }

    VM_ALU_RI(kAddi, lhs + static_cast<uint32_t>(op->imm))
    VM_ALU_RI(kSlti, static_cast<int32_t>(lhs) < op->imm ? 1u : 0u)
    VM_ALU_RI(kSltiu, lhs < static_cast<uint32_t>(op->imm) ? 1u : 0u)
    VM_ALU_RI(kXori, lhs ^ static_cast<uint32_t>(op->imm))
    VM_ALU_RI(kOri, lhs | static_cast<uint32_t>(op->imm))
    VM_ALU_RI(kAndi, lhs & static_cast<uint32_t>(op->imm))
    // Shift amounts were masked to [0, 31] at translation.
    VM_ALU_RI(kSlli, lhs << op->imm)
    VM_ALU_RI(kSrli, lhs >> op->imm)
    VM_ALU_RI(kSrai, static_cast<uint32_t>(static_cast<int32_t>(lhs) >> op->imm))

// ALU with two register operands; any undefined operand poisons rd.
#define VM_ALU_RR(name, expr)                                  \
  VM_CASE(name) {                                              \
    Value a = regs[op->rs1];                                   \
    Value c = regs[op->rs2];                                   \
    if (__builtin_expect(!(a.defined && c.defined), 0)) {      \
      asm volatile("");                                        \
      regs[op->rd] = Value::Undef();                           \
      VM_NEXT();                                               \
    }                                                          \
    uint32_t lhs = a.bits;                                     \
    uint32_t rhs = c.bits;                                     \
    (void)lhs;                                                 \
    (void)rhs;                                                 \
    regs[op->rd] = Value::Defined((expr));                     \
    VM_NEXT();                                                 \
  }

    VM_ALU_RR(kAdd, lhs + rhs)
    VM_ALU_RR(kSub, lhs - rhs)
    VM_ALU_RR(kSll, lhs << (rhs & 31))
    VM_ALU_RR(kSlt, static_cast<int32_t>(lhs) < static_cast<int32_t>(rhs) ? 1u : 0u)
    VM_ALU_RR(kSltu, lhs < rhs ? 1u : 0u)
    VM_ALU_RR(kXor, lhs ^ rhs)
    VM_ALU_RR(kSrl, lhs >> (rhs & 31))
    VM_ALU_RR(kSra, static_cast<uint32_t>(static_cast<int32_t>(lhs) >> (rhs & 31)))
    VM_ALU_RR(kOr, lhs | rhs)
    VM_ALU_RR(kAnd, lhs & rhs)
    VM_ALU_RR(kMul, lhs * rhs)
    VM_ALU_RR(kMulh,
              static_cast<uint32_t>((static_cast<int64_t>(static_cast<int32_t>(lhs)) *
                                     static_cast<int64_t>(static_cast<int32_t>(rhs))) >>
                                    32))
    VM_ALU_RR(kMulhsu,
              static_cast<uint32_t>((static_cast<int64_t>(static_cast<int32_t>(lhs)) *
                                     static_cast<uint64_t>(rhs)) >>
                                    32))
    VM_ALU_RR(kMulhu, static_cast<uint32_t>(
                          (static_cast<uint64_t>(lhs) * static_cast<uint64_t>(rhs)) >> 32))
    // RISC-V division corner cases, verbatim from the interpreter.
    VM_ALU_RR(kDiv, (rhs == 0) ? 0xffffffffu
                    : (lhs == 0x80000000u && rhs == 0xffffffffu)
                        ? 0x80000000u
                        : static_cast<uint32_t>(static_cast<int32_t>(lhs) /
                                                static_cast<int32_t>(rhs)))
    VM_ALU_RR(kDivu, (rhs == 0) ? 0xffffffffu : lhs / rhs)
    VM_ALU_RR(kRem, (rhs == 0) ? lhs
                    : (lhs == 0x80000000u && rhs == 0xffffffffu)
                        ? 0u
                        : static_cast<uint32_t>(static_cast<int32_t>(lhs) %
                                                static_cast<int32_t>(rhs)))
    VM_ALU_RR(kRemu, (rhs == 0) ? lhs : lhs % rhs)

// Loads resolve their region through the chain-local memos, then read through the
// same LoadFromRegion the interpreter's LoadBytes uses. A load from undefined
// memory writes Undef to rd; it does not fault.
#define VM_LOAD(name, size, convert)                                         \
  VM_CASE(name) {                                                            \
    Value a = regs[op->rs1];                                                 \
    if (__builtin_expect(!a.defined, 0)) {                                   \
      VM_FAULT("load through undefined address");                            \
    }                                                                        \
    uint32_t addr = a.bits + static_cast<uint32_t>(op->imm);                 \
    if (__builtin_expect((addr & ((size) - 1)) != 0, 0)) {                   \
      VM_FAULT("misaligned load");                                           \
    }                                                                        \
    uint32_t off;                                                            \
    const Machine::Region* r = lreg0;                                        \
    if (__builtin_expect(!VM_REGION_HIT(r, addr, (size), off), 0)) {         \
      r = lreg1;                                                             \
      if (!VM_REGION_HIT(r, addr, (size), off)) {                            \
        r = m.FindRegion(addr, (size));                                      \
        if (__builtin_expect(r == nullptr, 0)) {                             \
          VM_FAULT("load out of bounds");                                    \
        }                                                                    \
        off = addr - r->base;                                                \
      }                                                                      \
      lreg1 = lreg0;                                                         \
      lreg0 = r;                                                             \
    }                                                                        \
    uint32_t raw;                                                            \
    bool loaded_defined;                                                     \
    m.LoadFromRegion(*r, off, (size), &raw, &loaded_defined);                \
    if (__builtin_expect(!loaded_defined, 0)) {                              \
      /* The empty asm keeps this arm a real branch: if-converted to a cmov, \
         the definedness probe would join the register dependency chain and  \
         stall every consumer of rd. */                                      \
      asm volatile("");                                                      \
      if (op->rd != 0) {                                                     \
        regs[op->rd] = Value::Undef();                                       \
      }                                                                      \
      VM_NEXT();                                                             \
    }                                                                        \
    if (op->rd != 0) {                                                       \
      regs[op->rd] = Value::Defined((convert));                              \
    }                                                                        \
    VM_NEXT();                                                               \
  }

    VM_LOAD(kLb, 1,
            static_cast<uint32_t>(static_cast<int32_t>(static_cast<int8_t>(raw))))
    VM_LOAD(kLh, 2,
            static_cast<uint32_t>(static_cast<int32_t>(static_cast<int16_t>(raw))))
    VM_LOAD(kLw, 4, raw)
    VM_LOAD(kLbu, 1, raw)
    VM_LOAD(kLhu, 2, raw)

// Stores may invalidate translated blocks — including this one (self-modifying
// code). StoreBytes marks overlapped local blocks dead; if we are the victim, the
// store still retires, then control bails to dispatch for a fresh translation.
#define VM_STORE(name, size)                                                  \
  VM_CASE(name) {                                                             \
    Value a = regs[op->rs1];                                                  \
    if (__builtin_expect(!a.defined, 0)) {                                    \
      VM_FAULT("store through undefined address");                            \
    }                                                                         \
    uint32_t addr = a.bits + static_cast<uint32_t>(op->imm);                  \
    if (__builtin_expect((addr & ((size) - 1)) != 0, 0)) {                    \
      VM_FAULT("misaligned store");                                           \
    }                                                                         \
    Value v = regs[op->rs2];                                                  \
    uint32_t off;                                                             \
    Machine::Region* r = sreg;                                                \
    if (__builtin_expect(!VM_REGION_HIT(r, addr, (size), off), 0)) {          \
      r = m.FindRegion(addr, (size));                                         \
      if (__builtin_expect(r == nullptr || !r->writable, 0)) {                \
        VM_FAULT("store out of bounds or read-only");                         \
      }                                                                       \
      sreg = r;  /* Only ever holds a writable region. */                     \
      off = addr - r->base;                                                   \
    }                                                                         \
    m.StoreToRegion(*r, addr, off, (size), v.bits, v.defined);                \
    if (__builtin_expect(watch && b->dead, 0)) {                              \
      uint64_t retired = static_cast<uint64_t>(op - ops0) + 1;                \
      m.instret_ += retired;                                                  \
      *remaining -= retired;                                                  \
      m.pc_ = op->pc + 4;                                                     \
      return Machine::StepResult::kOk;                                        \
    }                                                                         \
    VM_NEXT();                                                                \
  }

    VM_STORE(kSb, 1)
    VM_STORE(kSh, 2)
    VM_STORE(kSw, 4)

// Conditional branches terminate the block; imm holds the absolute taken target.
#define VM_BRANCH(name, cond)                              \
  VM_CASE(name) {                                          \
    Value a = regs[op->rs1];                               \
    Value c = regs[op->rs2];                               \
    if (__builtin_expect(!(a.defined && c.defined), 0)) {  \
      VM_FAULT("branch on undefined operand");             \
    }                                                      \
    uint32_t lhs = a.bits;                                 \
    uint32_t rhs = c.bits;                                 \
    (void)lhs;                                             \
    (void)rhs;                                             \
    if (cond) {                                            \
      next_pc = static_cast<uint32_t>(op->imm);            \
      link = b->link_taken;                                \
    } else {                                               \
      next_pc = op->pc + 4;                                \
      link = b->link_fall;                                 \
    }                                                      \
    goto block_done;                                       \
  }

    VM_BRANCH(kBeq, lhs == rhs)
    VM_BRANCH(kBne, lhs != rhs)
    VM_BRANCH(kBlt, static_cast<int32_t>(lhs) < static_cast<int32_t>(rhs))
    VM_BRANCH(kBge, static_cast<int32_t>(lhs) >= static_cast<int32_t>(rhs))
    VM_BRANCH(kBltu, lhs < rhs)
    VM_BRANCH(kBgeu, lhs >= rhs)

    VM_CASE(kJal) {
      // rd != x0 (x0 variants translate to kJ).
      regs[op->rd] = Value::Defined(op->pc + 4);
      next_pc = static_cast<uint32_t>(op->imm);
      link = b->link_taken;
      goto block_done;
    }

    VM_CASE(kJ) {
      next_pc = static_cast<uint32_t>(op->imm);
      link = b->link_taken;
      goto block_done;
    }

    VM_CASE(kJalr) {
      Value a = regs[op->rs1];
      if (__builtin_expect(!a.defined, 0)) {
        VM_FAULT("jalr through undefined register");
      }
      // Read rs1 before writing rd: `jalr rd, rd` must use the old value.
      uint32_t target = (a.bits + static_cast<uint32_t>(op->imm)) & ~1u;
      if (op->rd != 0) {
        regs[op->rd] = Value::Defined(op->pc + 4);
      }
      next_pc = target;
      link = nullptr;  // Indirect: always resolved by the dispatch loop.
      goto block_done;
    }

    VM_CASE(kHalt) {
      // ecall/ebreak retires (the interpreter bumps instret and pc before kHalt).
      m.instret_ += b->num_instrs;
      *remaining -= b->num_instrs;
      m.pc_ = op->pc + 4;
      return Machine::StepResult::kHalt;
    }

    VM_CASE(kFallthrough) {
      next_pc = static_cast<uint32_t>(op->imm);
      link = b->link_taken;
      goto block_done;
    }

    VM_CASE(kFetchFault) {
      // Zero instructions retired; pc_ already sits on the block start (== op->pc).
      return m.Fault(op->imm == kFaultUndecodable ? "undecodable instruction"
                     : op->imm == kFaultUndefined ? "instruction fetch of undefined memory"
                                                  : "instruction fetch out of bounds");
    }

#if !PARFAIT_DBT_THREADED
    }
    return Machine::StepResult::kOk;  // Unreachable: every case jumps or returns.
#endif

  block_done:
    m.instret_ += b->num_instrs;
    *remaining -= b->num_instrs;
    m.pc_ = next_pc;
    if (__builtin_expect(link == nullptr, 0)) {
      // Indirect target (jalr) or an edge translated after this block was linked.
      // Resolve through the shared cache without leaving the dispatch loop: the
      // firmware's helper calls return via jalr, so bouncing through Run would tear
      // down and rebuild the chain state (including the region memos) on every
      // call. Sentinel, misaligned, unmapped, and writable-region targets fall back
      // to Run, which owns those paths; counter semantics are identical either way
      // (Get translates-once under the shared mutex, and each dispatch counts one
      // block hit).
      if (*remaining == 0 || next_pc == Machine::kReturnSentinel ||
          (next_pc & 3) != 0) {
        return Machine::StepResult::kOk;
      }
      const Machine::Region* fr =
          m.FindRegionImpl(next_pc, 4, &m.last_fetch_region_);
      if (fr == nullptr || fr->shared_blocks == nullptr || !fr->all_defined) {
        return Machine::StepResult::kOk;
      }
      const Block* nb = fr->shared_blocks->Get(next_pc, &m.block_translations_);
      if (nb == nullptr || nb->num_instrs > *remaining) {
        return Machine::StepResult::kOk;
      }
      m.block_hits_++;
      b = nb;
      continue;
    }
    if (*remaining == 0 || link->num_instrs > *remaining) {
      return Machine::StepResult::kOk;
    }
    m.block_links_++;
    b = link;
  }

#undef VM_BRANCH
#undef VM_STORE
#undef VM_REGION_HIT
#undef VM_LOAD
#undef VM_ALU_RR
#undef VM_ALU_RI
#undef VM_FAULT
#undef VM_NEXT
#undef VM_DISPATCH
#undef VM_CASE
}

Machine::StepResult Dbt::Run(Machine& m, uint64_t max_steps) {
  uint64_t remaining = max_steps;
  for (;;) {
    // Order matters: an exhausted budget wins over a sentinel pc, exactly like the
    // interpreter's RunImpl (the halt is only observed by a step that never runs).
    if (__builtin_expect(remaining == 0, 0)) {
      m.fault_reason_ = "step limit exceeded";
      return Machine::StepResult::kFault;
    }
    if (__builtin_expect(m.pc_ == Machine::kReturnSentinel, 0)) {
      return Machine::StepResult::kHalt;
    }
    if (__builtin_expect((m.pc_ & 3) != 0, 0)) {
      return m.Fault("misaligned pc");
    }
    const Machine::Region* r = m.FindRegionImpl(m.pc_, 4, &m.last_fetch_region_);
    if (r == nullptr) {
      return m.Fault("instruction fetch out of bounds");
    }
    const Block* b = nullptr;
    if (r->shared_blocks != nullptr && r->all_defined) {
      b = r->shared_blocks->Get(m.pc_, &m.block_translations_);
    }
    if (b == nullptr) {
      // Writable region (or bytes past the shared cache): per-machine blocks,
      // translated lazily and invalidated by stores.
      auto* mr = const_cast<Machine::Region*>(r);
      if (mr->local_blocks.cache == nullptr) {
        mr->local_blocks.cache = std::make_unique<LocalBlockCache>();
      }
      LocalBlockCache& cache = *mr->local_blocks.cache;
      // Safe point: no block is executing, so invalidated storage can go.
      cache.CollectGarbage();
      b = cache.Lookup(m.pc_);
      if (b == nullptr) {
        b = cache.Insert(TranslateLocal(*mr, m.pc_));
        m.block_translations_++;
      }
    }
    m.block_hits_++;
    if (__builtin_expect(b->num_instrs > remaining, 0)) {
      // The budget ends inside this block: interpret the tail one instruction at a
      // time so partial blocks retire exactly like the interpreter.
      while (remaining > 0) {
        Machine::StepResult sr = m.StepCachedOnce();
        if (sr != Machine::StepResult::kOk) {
          return sr;
        }
        remaining--;
      }
      continue;
    }
    Machine::StepResult sr = ExecChain(m, b, &remaining);
    if (sr != Machine::StepResult::kOk) {
      return sr;
    }
  }
}

}  // namespace parfait::riscv
